package journal

import "dyncontract/internal/telemetry"

// Metric names exported by the journal when Options.Metrics is set,
// following the repo-wide dyncontract_<pkg>_<name> scheme.
const (
	// MetricAppendSeconds is the per-record encode+write latency (the
	// user-space cost; strict-mode syncs land in MetricFsyncSeconds).
	MetricAppendSeconds = "dyncontract_journal_append_seconds"
	// MetricFsyncSeconds is the per-sync flush+fsync latency.
	MetricFsyncSeconds = "dyncontract_journal_fsync_seconds"
	// MetricBytes counts journal bytes written (records + snapshots).
	MetricBytes = "dyncontract_journal_bytes_total"
	// MetricRecords counts records appended.
	MetricRecords = "dyncontract_journal_records_total"
	// MetricSnapshotSeconds is the snapshot commit duration (marshal
	// excluded — encode, write, fsync, rename, truncate old segments).
	MetricSnapshotSeconds = "dyncontract_journal_snapshot_seconds"
	// MetricSnapshots counts committed snapshots.
	MetricSnapshots = "dyncontract_journal_snapshots_total"
	// MetricReplayedRecords counts records replayed during recovery.
	MetricReplayedRecords = "dyncontract_journal_replayed_records_total"
	// MetricRecoveredSessions counts sessions recovered at startup.
	MetricRecoveredSessions = "dyncontract_journal_recovered_sessions_total"
	// MetricRecoveryErrors counts sessions whose recovery failed.
	MetricRecoveryErrors = "dyncontract_journal_recovery_errors_total"
	// MetricTornBytes counts torn-tail bytes truncated during recovery.
	MetricTornBytes = "dyncontract_journal_torn_bytes_total"
)

// Histogram bins (the stats.Histogram clamping convention): appends are
// user-space buffer writes — single-digit microseconds — binned over
// [0, 1ms); fsyncs are device flushes binned over [0, 50ms); snapshot
// commits over [0, 1s).
const (
	appendSecLo, appendSecHi, appendSecBins = 0, 0.001, 50
	fsyncSecLo, fsyncSecHi, fsyncSecBins    = 0, 0.05, 50
	snapSecLo, snapSecHi, snapSecBins       = 0, 1.0, 50
)

// journalMetrics resolves the store's metric handles once at Open. A nil
// *journalMetrics (Metrics unset) disables collection — callers nil-check
// the struct, and the handles are only reached through it.
type journalMetrics struct {
	appendSec   *telemetry.Histogram
	fsyncSec    *telemetry.Histogram
	snapshotSec *telemetry.Histogram
	bytes       *telemetry.Counter
	records     *telemetry.Counter
	snapshots   *telemetry.Counter
	replayed    *telemetry.Counter
	recovered   *telemetry.Counter
	recoveryErr *telemetry.Counter
	tornBytes   *telemetry.Counter
}

func newJournalMetrics(reg *telemetry.Registry) *journalMetrics {
	if reg == nil {
		return nil
	}
	return &journalMetrics{
		appendSec:   reg.Histogram(MetricAppendSeconds, appendSecLo, appendSecHi, appendSecBins),
		fsyncSec:    reg.Histogram(MetricFsyncSeconds, fsyncSecLo, fsyncSecHi, fsyncSecBins),
		snapshotSec: reg.Histogram(MetricSnapshotSeconds, snapSecLo, snapSecHi, snapSecBins),
		bytes:       reg.Counter(MetricBytes),
		records:     reg.Counter(MetricRecords),
		snapshots:   reg.Counter(MetricSnapshots),
		replayed:    reg.Counter(MetricReplayedRecords),
		recovered:   reg.Counter(MetricRecoveredSessions),
		recoveryErr: reg.Counter(MetricRecoveryErrors),
		tornBytes:   reg.Counter(MetricTornBytes),
	}
}
