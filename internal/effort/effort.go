// Package effort models the paper's effort functions ψ: the mapping from a
// worker's effort level y to the feedback q the worker's review earns
// (Eq. (2) of the paper). The contract-design algorithm of §IV-C requires ψ
// to be concave, strictly increasing on the working range, and twice
// differentiable; the paper fits quadratics ψ(y) = r₂y² + r₁y + r₀ to the
// Amazon trace (Table III) and all closed-form expressions in the paper
// specialize to that quadratic form.
//
// The package exposes the general Function interface (used by the simulator
// and the grid-search reference solver, which only need evaluation and
// derivatives) plus the Quadratic concrete type the closed-form contract
// builder requires.
package effort

import (
	"errors"
	"fmt"
	"math"
)

// Function is a concave, twice-differentiable effort→feedback mapping ψ.
type Function interface {
	// Eval returns ψ(y).
	Eval(y float64) float64
	// Deriv returns ψ′(y).
	Deriv(y float64) float64
	// Deriv2 returns ψ″(y).
	Deriv2(y float64) float64
	// InverseDeriv returns the y with ψ′(y) = z. The second return is
	// false when z is outside the range of ψ′ on [0, ∞).
	InverseDeriv(z float64) (float64, bool)
}

// ErrNotConcave is returned when a quadratic with r₂ ≥ 0 is supplied where
// a strictly concave effort function is required.
var ErrNotConcave = errors.New("effort: quadratic is not strictly concave (need r2 < 0)")

// ErrNotIncreasing is returned when ψ would not be strictly increasing over
// the requested working range [0, yMax].
var ErrNotIncreasing = errors.New("effort: function not strictly increasing on working range")

// Quadratic is the paper's fitted effort function ψ(y) = R2·y² + R1·y + R0
// with R2 < 0 (concavity) and R1 > 0 (increasing at zero effort).
type Quadratic struct {
	R2, R1, R0 float64
}

var _ Function = Quadratic{}

// NewQuadratic validates and returns a quadratic effort function that is
// strictly concave and strictly increasing on [0, yMax].
func NewQuadratic(r2, r1, r0, yMax float64) (Quadratic, error) {
	q := Quadratic{R2: r2, R1: r1, R0: r0}
	if err := q.Validate(yMax); err != nil {
		return Quadratic{}, err
	}
	return q, nil
}

// Validate checks concavity and strict monotonicity of q on [0, yMax].
func (q Quadratic) Validate(yMax float64) error {
	for _, v := range []float64{q.R2, q.R1, q.R0, yMax} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("effort: non-finite coefficient in %+v", q)
		}
	}
	if q.R2 >= 0 {
		return fmt.Errorf("r2=%v: %w", q.R2, ErrNotConcave)
	}
	if q.R1 <= 0 {
		return fmt.Errorf("r1=%v (need r1 > 0): %w", q.R1, ErrNotIncreasing)
	}
	if yMax < 0 {
		return fmt.Errorf("effort: negative working range %v", yMax)
	}
	// ψ′(yMax) = 2·r2·yMax + r1 must stay positive so ψ is strictly
	// increasing across every effort interval the contract partitions.
	if q.Deriv(yMax) <= 0 {
		return fmt.Errorf("psi'(%v)=%v: %w", yMax, q.Deriv(yMax), ErrNotIncreasing)
	}
	return nil
}

// Eval returns ψ(y).
func (q Quadratic) Eval(y float64) float64 {
	return (q.R2*y+q.R1)*y + q.R0
}

// Deriv returns ψ′(y) = 2·R2·y + R1.
func (q Quadratic) Deriv(y float64) float64 {
	return 2*q.R2*y + q.R1
}

// Deriv2 returns ψ″(y) = 2·R2.
func (q Quadratic) Deriv2(float64) float64 {
	return 2 * q.R2
}

// InverseDeriv solves ψ′(y) = z for y. Because R2 < 0, ψ′ is strictly
// decreasing, so the inverse is y = (z − R1)/(2·R2). The boolean is false
// when the solution would be negative effort (z > ψ′(0) = R1).
func (q Quadratic) InverseDeriv(z float64) (float64, bool) {
	y := (z - q.R1) / (2 * q.R2)
	if y < 0 {
		return 0, false
	}
	return y, true
}

// Apex returns the effort level at which ψ peaks, −R1/(2·R2). Contracts must
// not push workers past the apex: beyond it extra effort reduces feedback.
func (q Quadratic) Apex() float64 {
	return -q.R1 / (2 * q.R2)
}

// String implements fmt.Stringer.
func (q Quadratic) String() string {
	return fmt.Sprintf("psi(y) = %.6g*y^2 + %.6g*y + %.6g", q.R2, q.R1, q.R0)
}

// Partition describes the uniform discretization of the effort axis used by
// the piecewise-linear contract approximation of §III-A: m intervals of
// width δ, i.e. [0, δ), [δ, 2δ), …, [(m−1)δ, mδ).
type Partition struct {
	M     int     // number of intervals
	Delta float64 // interval width δ
}

// NewPartition validates and returns a Partition.
func NewPartition(m int, delta float64) (Partition, error) {
	if m <= 0 {
		return Partition{}, fmt.Errorf("effort: partition needs m >= 1, got %d", m)
	}
	if !(delta > 0) || math.IsInf(delta, 0) {
		return Partition{}, fmt.Errorf("effort: partition needs delta > 0, got %v", delta)
	}
	return Partition{M: m, Delta: delta}, nil
}

// YMax returns the right edge of the last interval, m·δ.
func (p Partition) YMax() float64 {
	return float64(p.M) * p.Delta
}

// Edge returns the l-th knot l·δ for l in [0, m].
func (p Partition) Edge(l int) float64 {
	return float64(l) * p.Delta
}

// IntervalOf returns the 1-based interval index l such that
// y ∈ [(l−1)δ, lδ), clamping to [1, m]. Effort at or beyond mδ reports m.
func (p Partition) IntervalOf(y float64) int {
	if y < 0 {
		return 1
	}
	l := int(y/p.Delta) + 1
	if l > p.M {
		return p.M
	}
	return l
}

// Knots returns the feedback values d_l = ψ(lδ) for l = 0..m — the knot
// positions of the piecewise-linear contract in feedback space.
func (p Partition) Knots(psi Function) []float64 {
	d := make([]float64, p.M+1)
	for l := 0; l <= p.M; l++ {
		d[l] = psi.Eval(p.Edge(l))
	}
	return d
}
