package contract

import (
	"math"
	"testing"
)

// FuzzEval drives contract construction and evaluation with arbitrary
// float inputs: construction must reject bad shapes, and accepted
// contracts must evaluate monotonically within bounds for any query.
func FuzzEval(f *testing.F) {
	f.Add(0.0, 1.0, 2.0, 0.0, 0.5, 1.0, 0.7)
	f.Add(-5.0, 0.0, 5.0, 1.0, 1.0, 1.0, 100.0)
	f.Add(0.0, 0.0, 1.0, 0.0, 1.0, 2.0, 0.5) // duplicate knot: must reject
	f.Fuzz(func(t *testing.T, d0, d1, d2, x0, x1, x2, q float64) {
		c, err := New([]float64{d0, d1, d2}, []float64{x0, x1, x2})
		if err != nil {
			return // invalid shape rejected; nothing more to check
		}
		v := c.Eval(q)
		if math.IsNaN(q) {
			return // NaN queries have unspecified results but must not panic
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("Eval(%v) = %v on valid contract", q, v)
		}
		if v < x0-1e-9 || v > x2+1e-9 {
			t.Fatalf("Eval(%v) = %v outside [%v, %v]", q, v, x0, x2)
		}
		// Monotonicity against a nearby larger query.
		if !math.IsInf(q, 0) {
			q2 := q + math.Abs(q)*0.01 + 0.01
			if v2 := c.Eval(q2); v2 < v-1e-9 {
				t.Fatalf("Eval not monotone: Eval(%v)=%v > Eval(%v)=%v", q, v, q2, v2)
			}
		}
	})
}

// FuzzUnmarshalJSON hammers the JSON decoder: invalid payloads must be
// rejected, valid ones must round-trip.
func FuzzUnmarshalJSON(f *testing.F) {
	f.Add(`{"knots":[0,1],"comps":[0,1]}`)
	f.Add(`{"knots":[1,0],"comps":[0,1]}`)
	f.Add(`{}`)
	f.Add(`garbage`)
	f.Fuzz(func(t *testing.T, input string) {
		var c PiecewiseLinear
		if err := c.UnmarshalJSON([]byte(input)); err != nil {
			return
		}
		// Accepted contracts must be structurally valid.
		if c.Pieces() < 1 {
			t.Fatalf("decoder accepted contract with %d pieces", c.Pieces())
		}
		data, err := c.MarshalJSON()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		var back PiecewiseLinear
		if err := back.UnmarshalJSON(data); err != nil {
			t.Fatalf("re-unmarshal: %v", err)
		}
		if !c.Equal(&back) {
			t.Fatal("JSON round trip changed the contract")
		}
	})
}
