// Command contractd serves long-lived contract-design sessions over the
// versioned JSON API of internal/server: create a session (synthetic or
// explicit population), advance rounds, run design-only queries (coalesced
// into micro-batches), and drift the population between rounds.
//
// Usage:
//
//	contractd [-listen addr] [-batch-window d] [-batch-max n]
//	          [-queue n] [-design-queue n] [-max-inflight n]
//	          [-max-sessions n] [-timeout d] [-drain-timeout d]
//
// The server exposes /metrics (Prometheus text) and /debug/pprof/ beside
// the API. On SIGINT/SIGTERM it drains: in-flight work completes, queued
// work is answered 503, then the listener closes and the per-route request
// statistics are printed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dyncontract/internal/obs"
	"dyncontract/internal/server"
	"dyncontract/internal/telemetry"
)

// testHookReady, when set by a test, is called with the bound address and
// a function that triggers the same drain-and-exit path as SIGTERM.
var testHookReady func(addr string, shutdown func())

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "contractd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("contractd", flag.ContinueOnError)
	var (
		listen       = fs.String("listen", "127.0.0.1:8080", "listen address")
		batchWindow  = fs.Duration("batch-window", 2*time.Millisecond, "design micro-batch window")
		batchMax     = fs.Int("batch-max", 64, "design micro-batch size trigger")
		cmdQueue     = fs.Int("queue", 16, "per-session round/drift queue bound")
		designQueue  = fs.Int("design-queue", 1024, "per-session design-query queue bound")
		maxInFlight  = fs.Int("max-inflight", 256, "per-session in-flight request cap")
		maxSessions  = fs.Int("max-sessions", 64, "live session cap")
		timeout      = fs.Duration("timeout", 30*time.Second, "per-request server-side deadline")
		drainTimeout = fs.Duration("drain-timeout", 15*time.Second, "graceful drain deadline on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg := telemetry.NewRegistry()
	srv := server.New(server.Config{
		BatchWindow:    *batchWindow,
		BatchMax:       *batchMax,
		CommandQueue:   *cmdQueue,
		DesignQueue:    *designQueue,
		MaxInFlight:    *maxInFlight,
		MaxSessions:    *maxSessions,
		RequestTimeout: *timeout,
		Metrics:        reg,
	})

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(out, "contractd: listening on http://%s (metrics at /metrics, pprof at /debug/pprof/)\n", lis.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if testHookReady != nil {
		testHookReady(lis.Addr().String(), stop)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(lis) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(out, "contractd: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(out, "contractd: drain incomplete: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}

	obs.FprintHTTPStats(out, obs.HTTPStatsFrom(reg.Snapshot()))
	fmt.Fprintln(out, "contractd: bye")
	return nil
}
