package core

import (
	"math"
	"testing"

	"dyncontract/internal/effort"
	"dyncontract/internal/worker"
)

// TestDesignCandidateUtilityIncreasesUpToK verifies Eq. (36)'s design
// intent directly: under candidate ξ^(k), the worker's achievable utility
// per interval strictly increases up to interval k and does not increase
// after it (the flat continuation).
func TestDesignCandidateUtilityIncreasesUpToK(t *testing.T) {
	a := honestAgent(t)
	cfg := stdConfig(t, 8)
	res, err := Design(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cand := range res.Candidates {
		if cand.Clamped {
			continue
		}
		// Utility at the best effort within each interval, computed by a
		// fine grid (independent of the analytic machinery).
		intervalBest := make([]float64, cfg.Part.M+1)
		for l := 1; l <= cfg.Part.M; l++ {
			lo, hi := cfg.Part.Edge(l-1), cfg.Part.Edge(l)
			best := math.Inf(-1)
			for i := 0; i <= 200; i++ {
				y := lo + (hi-lo)*float64(i)/200
				if u := a.Utility(cand.Contract, y); u > best {
					best = u
				}
			}
			intervalBest[l] = best
		}
		for l := 2; l <= cand.K; l++ {
			if intervalBest[l] <= intervalBest[l-1]-1e-9 {
				t.Errorf("k=%d: interval %d best utility %v <= interval %d's %v (should increase up to k)",
					cand.K, l, intervalBest[l], l-1, intervalBest[l-1])
			}
		}
		for l := cand.K + 1; l <= cfg.Part.M; l++ {
			if intervalBest[l] > intervalBest[cand.K]+1e-9 {
				t.Errorf("k=%d: interval %d best utility %v exceeds target interval's %v",
					cand.K, l, intervalBest[l], intervalBest[cand.K])
			}
		}
	}
}

// TestDesignLargeOmegaClamps exercises the clamped branch: with ω huge the
// Case III windows go negative, slopes clamp at zero, and the design must
// still return a valid monotone contract with an exact best response.
func TestDesignLargeOmegaClamps(t *testing.T) {
	psi := stdPsi(t)
	part, err := effort.NewPartition(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := worker.NewMalicious("omega-huge", psi, 1, 10, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Design(a, Config{Part: part, Mu: 1, W: 1, WantCandidates: true})
	if err != nil {
		t.Fatalf("Design with huge omega: %v", err)
	}
	clamped := false
	for _, cand := range res.Candidates {
		if cand.Clamped {
			clamped = true
		}
	}
	if !clamped {
		t.Error("expected clamped candidates with omega=10")
	}
	// The worker self-motivates: near-max effort even with flat contracts.
	if res.Response.Effort <= 0 {
		t.Errorf("effort = %v; omega-driven worker should work regardless", res.Response.Effort)
	}
	// And the requester should pay (almost) nothing for it.
	if res.Response.Compensation > 1 {
		t.Errorf("compensation = %v; requester overpays an intrinsically motivated worker",
			res.Response.Compensation)
	}
}

// TestDesignCommunityMetaWorker checks the collusive-community path: a
// community is designed for as one meta-worker, and scaling the community
// size via the Size field does not break design invariants.
func TestDesignCommunityMetaWorker(t *testing.T) {
	psi := stdPsi(t)
	part, err := effort.NewPartition(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	comm, err := worker.NewCommunity("ring", psi, 1, 0.5, 5, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Design(comm, Config{Part: part, Mu: 1, W: 0.5})
	if err != nil {
		t.Fatalf("Design for community: %v", err)
	}
	if res.Agent.Size != 5 {
		t.Errorf("Size = %d, want 5", res.Agent.Size)
	}
	if res.Response.Interval != res.KOpt {
		t.Errorf("community best response interval %d != k_opt %d", res.Response.Interval, res.KOpt)
	}
	// Identical parameters as an individual malicious worker: the contract
	// itself is the same (the meta-worker treatment changes accounting,
	// not the subproblem mathematics).
	indiv, err := worker.NewMalicious("lone", psi, 1, 0.5, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	ires, err := Design(indiv, Config{Part: part, Mu: 1, W: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contract.Equal(ires.Contract) {
		t.Error("community contract differs from identically-parameterized individual")
	}
}

// TestDesignZeroCompensationAtZeroFeedbackKnot: contracts must pay x₀ = 0
// at the zero-effort knot — no free money.
func TestDesignZeroCompensationAtZeroFeedbackKnot(t *testing.T) {
	a := honestAgent(t)
	cfg := stdConfig(t, 10)
	res, err := Design(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cand := range res.Candidates {
		if cand.Contract.Comp(0) != 0 {
			t.Errorf("k=%d: x0 = %v, want 0", cand.K, cand.Contract.Comp(0))
		}
	}
}

// TestDesignMuScaling: a more cost-averse requester (higher μ) never
// induces more effort.
func TestDesignMuScaling(t *testing.T) {
	a := honestAgent(t)
	prevEffort := math.Inf(1)
	for _, mu := range []float64{0.5, 1, 2, 5, 20} {
		cfg := stdConfig(t, 20)
		cfg.Mu = mu
		res, err := Design(a, cfg)
		if err != nil {
			t.Fatalf("mu=%v: %v", mu, err)
		}
		if res.Response.Effort > prevEffort+1e-9 {
			t.Errorf("mu=%v: effort %v exceeds effort at lower mu %v", mu, res.Response.Effort, prevEffort)
		}
		prevEffort = res.Response.Effort
	}
}

// TestDesignWeightScaling: a requester who values feedback more (higher w)
// never induces less effort.
func TestDesignWeightScaling(t *testing.T) {
	a := honestAgent(t)
	prevEffort := -1.0
	for _, w := range []float64{0.2, 0.5, 1, 2, 5} {
		cfg := stdConfig(t, 20)
		cfg.W = w
		res, err := Design(a, cfg)
		if err != nil {
			t.Fatalf("w=%v: %v", w, err)
		}
		if res.Response.Effort < prevEffort-1e-9 {
			t.Errorf("w=%v: effort %v below effort at lower w %v", w, res.Response.Effort, prevEffort)
		}
		prevEffort = res.Response.Effort
	}
}

// TestCompensationBoundOrdering: Lemma 4.2's upper bound dominates Lemma
// 4.3's lower bound at every k.
func TestCompensationBoundOrdering(t *testing.T) {
	a := honestAgent(t)
	part, err := effort.NewPartition(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= part.M; k++ {
		lb := CompensationLowerBound(a, part, k)
		ub := CompensationUpperBound(a, part, k)
		if lb > ub+1e-9 {
			t.Errorf("k=%d: comp LB %v > UB %v", k, lb, ub)
		}
		if lb < 0 {
			t.Errorf("k=%d: negative comp LB %v", k, lb)
		}
	}
}

// TestUpperBoundNeverBelowNoContractUtility: the requester can always post
// a zero contract; the Theorem 4.1 UB must respect that floor.
func TestUpperBoundNeverBelowNoContractUtility(t *testing.T) {
	a := honestAgent(t)
	cfg := stdConfig(t, 10)
	cfg.W = 0.1 // low-value worker: contracting is barely worth it
	ub := UpperBound(a, cfg)
	floor := cfg.W * a.Psi.Eval(0)
	if ub < floor-1e-12 {
		t.Errorf("UB %v below zero-contract floor %v", ub, floor)
	}
}
