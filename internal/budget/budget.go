// Package budget adds the budget-feasibility dimension the paper's
// related work revolves around (Singer's budget-feasible mechanisms [8],
// budget-limited labeling [4], [5]): choose, for every worker, which
// candidate contract to post — or none — so the requester's total benefit
// is maximized while total expected compensation stays within a budget B.
//
// core.Design already produces a per-worker *menu*: one candidate ξ^(k)
// per target interval k, each with a predicted cost (the compensation the
// worker will collect) and benefit (w·ψ(y*)). Selecting one option per
// menu under a budget is the multiple-choice knapsack problem (MCKP). The
// package provides:
//
//   - SolveDP — exact (up to cost discretization) dynamic program, the
//     reference for small instances;
//   - SolveGreedy — the classic LP-relaxation greedy on the dominance-
//     filtered efficiency frontier, with the best-single-option fallback
//     that yields the standard 1/2-approximation guarantee.
package budget

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dyncontract/internal/core"
)

// ErrBadInput is returned for invalid menus or budgets.
var ErrBadInput = errors.New("budget: invalid input")

// Option is one postable contract for an agent: its predicted cost and
// benefit. K = 0 encodes "post no contract" (zero cost, zero benefit).
type Option struct {
	// K is the candidate's target interval (0 = no contract).
	K int
	// Cost is the predicted compensation to be paid.
	Cost float64
	// Benefit is the requester's predicted gross benefit w·ψ(y*).
	Benefit float64
}

// Menu is one agent's option set. A valid menu always contains the K = 0
// option.
type Menu struct {
	// AgentID identifies the agent.
	AgentID string
	// Options are the postable choices, including K = 0.
	Options []Option
}

// Validate checks the menu.
func (m Menu) Validate() error {
	if m.AgentID == "" {
		return fmt.Errorf("menu with empty agent ID: %w", ErrBadInput)
	}
	if len(m.Options) == 0 {
		return fmt.Errorf("menu %s has no options: %w", m.AgentID, ErrBadInput)
	}
	hasZero := false
	for _, o := range m.Options {
		if math.IsNaN(o.Cost) || math.IsNaN(o.Benefit) || o.Cost < 0 {
			return fmt.Errorf("menu %s option %+v invalid: %w", m.AgentID, o, ErrBadInput)
		}
		if o.K == 0 && o.Cost == 0 {
			hasZero = true
		}
	}
	if !hasZero {
		return fmt.Errorf("menu %s lacks the no-contract option: %w", m.AgentID, ErrBadInput)
	}
	return nil
}

// MenuFromResult converts a core.Design result into a budget menu: each
// candidate becomes an option with its predicted compensation as cost and
// w times its predicted feedback as benefit, plus the no-contract option.
func MenuFromResult(res *core.Result, w float64) Menu {
	menu := Menu{
		AgentID: res.Agent.ID,
		Options: []Option{{K: 0, Cost: 0, Benefit: 0}},
	}
	for _, cand := range res.Candidates {
		menu.Options = append(menu.Options, Option{
			K:       cand.K,
			Cost:    cand.Response.Compensation,
			Benefit: w * cand.Response.Feedback,
		})
	}
	return menu
}

// Allocation is a chosen option per agent.
type Allocation struct {
	// Choice maps agent ID to the chosen option.
	Choice map[string]Option
	// TotalCost and TotalBenefit aggregate the selection.
	TotalCost, TotalBenefit float64
}

// SolveDP solves the MCKP by dynamic programming over a discretized
// budget axis with the given number of steps (≥ 1). Costs are rounded UP
// to grid points, so the returned allocation never exceeds the true
// budget; finer grids lose less value. Complexity O(Σ|options| × steps).
func SolveDP(menus []Menu, budget float64, steps int) (*Allocation, error) {
	if err := validateInput(menus, budget); err != nil {
		return nil, err
	}
	if steps < 1 {
		return nil, fmt.Errorf("steps=%d must be >= 1: %w", steps, ErrBadInput)
	}
	unit := budget / float64(steps)
	if budget == 0 {
		// Degenerate budget: only zero-cost options are feasible, so the
		// grid collapses to a single state.
		steps = 0
		unit = 1
	}

	// dp[b] = best benefit using budget grid b; choice[i][b] = option
	// index chosen for menu i at that state.
	dp := make([]float64, steps+1)
	chosen := make([][]int16, len(menus))
	for i := range chosen {
		chosen[i] = make([]int16, steps+1)
	}
	next := make([]float64, steps+1)
	for i, m := range menus {
		for b := 0; b <= steps; b++ {
			best := math.Inf(-1)
			var bestOpt int16
			for oi, o := range m.Options {
				gridCost := int(math.Ceil(o.Cost/unit - 1e-12))
				if o.Cost == 0 {
					gridCost = 0
				}
				if gridCost > b {
					continue
				}
				if v := dp[b-gridCost] + o.Benefit; v > best {
					best = v
					bestOpt = int16(oi)
				}
			}
			next[b] = best
			chosen[i][b] = bestOpt
		}
		dp, next = next, dp
	}

	// Trace back the choices from the full budget.
	alloc := &Allocation{Choice: make(map[string]Option, len(menus))}
	b := steps
	// Recompute forward tables per menu in reverse using the stored
	// choices (chosen[i][b] was computed against the dp state after menus
	// 0..i-1, so replay backwards).
	for i := len(menus) - 1; i >= 0; i-- {
		oi := chosen[i][b]
		o := menus[i].Options[oi]
		alloc.Choice[menus[i].AgentID] = o
		alloc.TotalCost += o.Cost
		alloc.TotalBenefit += o.Benefit
		gridCost := int(math.Ceil(o.Cost/unit - 1e-12))
		if o.Cost == 0 {
			gridCost = 0
		}
		b -= gridCost
	}
	return alloc, nil
}

// SolveGreedy solves the MCKP by the LP-relaxation greedy: per menu, keep
// the efficiency frontier (dominance-filtered, concavified), then take
// incremental upgrades in decreasing benefit-per-cost order while the
// budget allows. Finally, if a single option beats the greedy total, take
// it alone — the classic fix that guarantees ≥ 1/2 of the optimum.
func SolveGreedy(menus []Menu, budget float64) (*Allocation, error) {
	if err := validateInput(menus, budget); err != nil {
		return nil, err
	}

	type increment struct {
		menuIdx    int
		optIdx     int // index into the frontier
		deltaCost  float64
		deltaBen   float64
		efficiency float64
	}
	frontiers := make([][]Option, len(menus))
	var incs []increment
	for i, m := range menus {
		f := frontier(m.Options)
		frontiers[i] = f
		for j := 1; j < len(f); j++ {
			dc := f[j].Cost - f[j-1].Cost
			db := f[j].Benefit - f[j-1].Benefit
			incs = append(incs, increment{
				menuIdx: i, optIdx: j,
				deltaCost: dc, deltaBen: db,
				efficiency: db / dc,
			})
		}
	}
	// Concavified frontiers have decreasing per-menu efficiency, so a
	// global sort yields a valid upgrade order (a menu's j-th upgrade
	// always precedes its (j+1)-th).
	sort.SliceStable(incs, func(a, b int) bool { return incs[a].efficiency > incs[b].efficiency })

	level := make([]int, len(menus)) // current frontier index per menu
	var cost, benefit float64
	for _, inc := range incs {
		if level[inc.menuIdx] != inc.optIdx-1 {
			continue // out-of-order upgrade (can happen after skips); drop
		}
		if cost+inc.deltaCost > budget+1e-12 {
			continue
		}
		level[inc.menuIdx] = inc.optIdx
		cost += inc.deltaCost
		benefit += inc.deltaBen
	}

	alloc := &Allocation{Choice: make(map[string]Option, len(menus))}
	for i, m := range menus {
		o := frontiers[i][level[i]]
		alloc.Choice[m.AgentID] = o
		alloc.TotalCost += o.Cost
		alloc.TotalBenefit += o.Benefit
	}

	// Best-single fallback: the highest-benefit affordable option alone.
	bestSingle := Option{}
	bestMenu := -1
	for i, m := range menus {
		for _, o := range m.Options {
			if o.Cost <= budget && o.Benefit > bestSingle.Benefit {
				bestSingle = o
				bestMenu = i
			}
		}
	}
	if bestMenu >= 0 && bestSingle.Benefit > alloc.TotalBenefit {
		single := &Allocation{Choice: make(map[string]Option, len(menus))}
		for i, m := range menus {
			if i == bestMenu {
				single.Choice[m.AgentID] = bestSingle
				continue
			}
			single.Choice[m.AgentID] = zeroOption(m)
		}
		single.TotalCost = bestSingle.Cost
		single.TotalBenefit = bestSingle.Benefit
		return single, nil
	}
	return alloc, nil
}

// frontier dominance-filters and concavifies a menu's options: sorted by
// cost, strictly increasing benefit, and decreasing incremental
// efficiency (upper-left convex hull). The K = 0 origin is always first.
func frontier(options []Option) []Option {
	sorted := append([]Option(nil), options...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Cost != sorted[b].Cost {
			return sorted[a].Cost < sorted[b].Cost
		}
		return sorted[a].Benefit > sorted[b].Benefit
	})
	// Dominance filter: keep options whose benefit strictly improves.
	var dom []Option
	bestBen := math.Inf(-1)
	for _, o := range sorted {
		if o.Benefit > bestBen {
			dom = append(dom, o)
			bestBen = o.Benefit
		}
	}
	// Ensure the zero-cost origin exists (Validate guarantees one, but a
	// zero-cost positive-benefit option may have displaced it; then that
	// option IS the origin).
	if dom[0].Cost > 0 {
		dom = append([]Option{{K: 0}}, dom...)
	}
	// Concavify: upper convex hull over (cost, benefit).
	hull := dom[:1]
	for _, o := range dom[1:] {
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			// Efficiency of b over a must exceed that of o over b;
			// otherwise b is LP-dominated.
			if (b.Benefit-a.Benefit)*(o.Cost-b.Cost) >= (o.Benefit-b.Benefit)*(b.Cost-a.Cost) {
				break
			}
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, o)
	}
	return hull
}

// zeroOption returns a menu's no-contract option.
func zeroOption(m Menu) Option {
	for _, o := range m.Options {
		if o.K == 0 && o.Cost == 0 {
			return o
		}
	}
	return Option{}
}

func validateInput(menus []Menu, budget float64) error {
	if len(menus) == 0 {
		return fmt.Errorf("no menus: %w", ErrBadInput)
	}
	if budget < 0 || math.IsNaN(budget) || math.IsInf(budget, 0) {
		return fmt.Errorf("budget=%v: %w", budget, ErrBadInput)
	}
	seen := make(map[string]bool, len(menus))
	for _, m := range menus {
		if err := m.Validate(); err != nil {
			return err
		}
		if seen[m.AgentID] {
			return fmt.Errorf("duplicate menu for %s: %w", m.AgentID, ErrBadInput)
		}
		seen[m.AgentID] = true
	}
	return nil
}
