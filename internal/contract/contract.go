// Package contract implements the piecewise-linear contract functions of
// §III-A: monotonically increasing mappings from a worker's feedback q to a
// compensation c, represented by discrete compensations x_l at knot
// feedbacks d_l = ψ(lδ) and interpolated linearly in between (Eq. (6)).
//
// A PiecewiseLinear value is immutable after construction; the design
// algorithm in internal/core builds candidates through a Builder and
// freezes them.
package contract

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
)

// ErrNotMonotone is returned when knots or compensations are not
// non-decreasing, violating the paper's monotone-contract assumption.
var ErrNotMonotone = errors.New("contract: knots/compensations must be non-decreasing")

// ErrBadShape is returned for structurally invalid inputs (too few knots,
// mismatched lengths, non-finite values).
var ErrBadShape = errors.New("contract: invalid shape")

// PiecewiseLinear is the contract approximation ζ(x, q) of Eq. (6): for
// q ∈ [d_{l−1}, d_l), compensation is x_{l−1} + α_l·(q − d_{l−1}) with
// α_l = (x_l − x_{l−1}) / (d_l − d_{l−1}).
//
// Knots has length m+1 (d_0..d_m) and Comps has length m+1 (x_0..x_m), with
// x_0 the compensation at the zero-effort feedback d_0 = ψ(0).
type PiecewiseLinear struct {
	knots []float64
	comps []float64
}

// New validates knots and compensations and returns the contract. Both
// slices are copied; callers may reuse their buffers.
func New(knots, comps []float64) (*PiecewiseLinear, error) {
	if len(knots) != len(comps) {
		return nil, fmt.Errorf("%d knots vs %d compensations: %w", len(knots), len(comps), ErrBadShape)
	}
	if len(knots) < 2 {
		return nil, fmt.Errorf("need at least 2 knots, got %d: %w", len(knots), ErrBadShape)
	}
	for i := range knots {
		if math.IsNaN(knots[i]) || math.IsInf(knots[i], 0) || math.IsNaN(comps[i]) || math.IsInf(comps[i], 0) {
			return nil, fmt.Errorf("non-finite entry at %d: %w", i, ErrBadShape)
		}
		if comps[i] < 0 {
			return nil, fmt.Errorf("negative compensation %v at %d: %w", comps[i], i, ErrBadShape)
		}
	}
	for i := 1; i < len(knots); i++ {
		if knots[i] <= knots[i-1] {
			return nil, fmt.Errorf("knot %d (%v) <= knot %d (%v): %w", i, knots[i], i-1, knots[i-1], ErrNotMonotone)
		}
		if comps[i] < comps[i-1] {
			return nil, fmt.Errorf("compensation %d (%v) < %d (%v): %w", i, comps[i], i-1, comps[i-1], ErrNotMonotone)
		}
	}
	return &PiecewiseLinear{
		knots: append([]float64(nil), knots...),
		comps: append([]float64(nil), comps...),
	}, nil
}

// Pieces returns m, the number of linear pieces.
func (c *PiecewiseLinear) Pieces() int { return len(c.knots) - 1 }

// Knot returns d_l for l in [0, m].
func (c *PiecewiseLinear) Knot(l int) float64 { return c.knots[l] }

// Comp returns x_l for l in [0, m].
func (c *PiecewiseLinear) Comp(l int) float64 { return c.comps[l] }

// Knots returns a copy of the knot feedbacks d_0..d_m.
func (c *PiecewiseLinear) Knots() []float64 { return append([]float64(nil), c.knots...) }

// Comps returns a copy of the knot compensations x_0..x_m.
func (c *PiecewiseLinear) Comps() []float64 { return append([]float64(nil), c.comps...) }

// Slope returns the contract slope α_l on piece l (1-based, l in [1, m]).
func (c *PiecewiseLinear) Slope(l int) float64 {
	if l < 1 || l > c.Pieces() {
		panic(fmt.Sprintf("contract: slope index %d out of [1, %d]", l, c.Pieces()))
	}
	return (c.comps[l] - c.comps[l-1]) / (c.knots[l] - c.knots[l-1])
}

// Increment returns the contract increment Δx_l = x_l − x_{l−1} for piece l.
func (c *PiecewiseLinear) Increment(l int) float64 {
	if l < 1 || l > c.Pieces() {
		panic(fmt.Sprintf("contract: increment index %d out of [1, %d]", l, c.Pieces()))
	}
	return c.comps[l] - c.comps[l-1]
}

// Eval computes the compensation ζ(x, q) for feedback q. Feedback below d_0
// pays x_0; feedback at or above d_m pays x_m (the contract is flat outside
// its knot range, matching the paper's flat continuation after the target
// interval).
func (c *PiecewiseLinear) Eval(q float64) float64 {
	m := c.Pieces()
	if q <= c.knots[0] {
		return c.comps[0]
	}
	if q >= c.knots[m] {
		return c.comps[m]
	}
	// Binary search for the piece with knots[l-1] <= q < knots[l].
	lo, hi := 0, m
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if c.knots[mid] <= q {
			lo = mid
		} else {
			hi = mid
		}
	}
	alpha := (c.comps[hi] - c.comps[lo]) / (c.knots[hi] - c.knots[lo])
	return c.comps[lo] + alpha*(q-c.knots[lo])
}

// MaxComp returns the largest compensation the contract can pay, x_m.
func (c *PiecewiseLinear) MaxComp() float64 { return c.comps[len(c.comps)-1] }

// Equal reports whether two contracts have identical knots and
// compensations (exact float equality; used by tests and codecs).
func (c *PiecewiseLinear) Equal(o *PiecewiseLinear) bool {
	if c.Pieces() != o.Pieces() {
		return false
	}
	for i := range c.knots {
		if c.knots[i] != o.knots[i] || c.comps[i] != o.comps[i] {
			return false
		}
	}
	return true
}

// contractJSON is the serialized form.
type contractJSON struct {
	Knots []float64 `json:"knots"`
	Comps []float64 `json:"comps"`
}

// MarshalJSON implements json.Marshaler.
func (c *PiecewiseLinear) MarshalJSON() ([]byte, error) {
	return json.Marshal(contractJSON{Knots: c.knots, Comps: c.comps})
}

// UnmarshalJSON implements json.Unmarshaler, revalidating the payload.
func (c *PiecewiseLinear) UnmarshalJSON(data []byte) error {
	var raw contractJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("contract: decode: %w", err)
	}
	built, err := New(raw.Knots, raw.Comps)
	if err != nil {
		return err
	}
	*c = *built
	return nil
}

// String renders the contract compactly.
func (c *PiecewiseLinear) String() string {
	return fmt.Sprintf("contract{m=%d, d=[%.4g..%.4g], x=[%.4g..%.4g]}",
		c.Pieces(), c.knots[0], c.knots[len(c.knots)-1], c.comps[0], c.comps[len(c.comps)-1])
}

// Flat returns a constant contract paying amount for any feedback over the
// given knot range. Used by baselines (fixed-payment pricing).
func Flat(dLo, dHi, amount float64) (*PiecewiseLinear, error) {
	if amount < 0 {
		return nil, fmt.Errorf("negative flat amount %v: %w", amount, ErrBadShape)
	}
	return New([]float64{dLo, dHi}, []float64{amount, amount})
}

// Builder incrementally constructs a PiecewiseLinear contract from left to
// right, the access pattern of the candidate-construction algorithm
// (§IV-C Part 2).
type Builder struct {
	knots []float64
	comps []float64
}

// NewBuilder starts a contract at the zero-effort knot (d0, x0).
func NewBuilder(d0, x0 float64) *Builder {
	return &Builder{knots: []float64{d0}, comps: []float64{x0}}
}

// Append adds the next knot with the given compensation.
func (b *Builder) Append(d, x float64) {
	b.knots = append(b.knots, d)
	b.comps = append(b.comps, x)
}

// AppendSlope adds the next knot d, deriving compensation from the previous
// knot and the given slope α: x = x_prev + α·(d − d_prev).
func (b *Builder) AppendSlope(d, alpha float64) {
	prevD := b.knots[len(b.knots)-1]
	prevX := b.comps[len(b.comps)-1]
	b.Append(d, prevX+alpha*(d-prevD))
}

// Len returns the number of knots appended so far.
func (b *Builder) Len() int { return len(b.knots) }

// Build validates and freezes the contract.
func (b *Builder) Build() (*PiecewiseLinear, error) {
	return New(b.knots, b.comps)
}
