// Package graph provides the small graph substrate §IV-A needs: an
// undirected graph over string-identified vertices, connected components by
// iterative depth-first search (the paper's stated method), and a
// union-find used both as an independent cross-check and by callers that
// build components incrementally.
package graph

import (
	"fmt"
	"sort"
)

// Undirected is an undirected graph over string vertex IDs. The zero value
// is ready to use.
type Undirected struct {
	adj map[string]map[string]struct{}
}

// NewUndirected returns an empty graph.
func NewUndirected() *Undirected {
	return &Undirected{adj: make(map[string]map[string]struct{})}
}

// AddVertex ensures v exists (isolated vertices form singleton components).
func (g *Undirected) AddVertex(v string) {
	if g.adj == nil {
		g.adj = make(map[string]map[string]struct{})
	}
	if _, ok := g.adj[v]; !ok {
		g.adj[v] = make(map[string]struct{})
	}
}

// AddEdge inserts the undirected edge {u, v}, creating vertices as needed.
// Self-loops are recorded as the vertex alone (no effect on components).
func (g *Undirected) AddEdge(u, v string) {
	g.AddVertex(u)
	g.AddVertex(v)
	if u == v {
		return
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
}

// HasEdge reports whether {u, v} is present.
func (g *Undirected) HasEdge(u, v string) bool {
	if g.adj == nil {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// NumVertices returns the vertex count.
func (g *Undirected) NumVertices() int { return len(g.adj) }

// NumEdges returns the undirected edge count.
func (g *Undirected) NumEdges() int {
	var twice int
	for _, nbrs := range g.adj {
		twice += len(nbrs)
	}
	return twice / 2
}

// Degree returns the degree of v (0 if absent).
func (g *Undirected) Degree(v string) int {
	return len(g.adj[v])
}

// Vertices returns all vertex IDs in sorted order (deterministic output for
// tests and reports).
func (g *Undirected) Vertices() []string {
	out := make([]string, 0, len(g.adj))
	for v := range g.adj {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Neighbors returns v's neighbors in sorted order.
func (g *Undirected) Neighbors(v string) []string {
	nbrs := g.adj[v]
	out := make([]string, 0, len(nbrs))
	for u := range nbrs {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// ConnectedComponents returns the connected components of g found by
// iterative DFS ([18] in the paper). Each component's members are sorted,
// and components are sorted by their first member, so output is
// deterministic.
func (g *Undirected) ConnectedComponents() [][]string {
	visited := make(map[string]bool, len(g.adj))
	var components [][]string
	for _, start := range g.Vertices() {
		if visited[start] {
			continue
		}
		// Iterative DFS with an explicit stack: real traces have
		// communities large enough that recursion depth would be a risk.
		stack := []string{start}
		visited[start] = true
		var comp []string
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Strings(comp)
		components = append(components, comp)
	}
	sort.Slice(components, func(i, j int) bool {
		return components[i][0] < components[j][0]
	})
	return components
}

// UnionFind is a disjoint-set forest with union by rank and path
// compression over string IDs.
type UnionFind struct {
	parent map[string]string
	rank   map[string]int
	count  int
}

// NewUnionFind returns an empty disjoint-set forest.
func NewUnionFind() *UnionFind {
	return &UnionFind{parent: make(map[string]string), rank: make(map[string]int)}
}

// Add registers x as its own set if not yet present.
func (u *UnionFind) Add(x string) {
	if _, ok := u.parent[x]; !ok {
		u.parent[x] = x
		u.rank[x] = 0
		u.count++
	}
}

// Find returns the representative of x's set, adding x if absent.
func (u *UnionFind) Find(x string) string {
	u.Add(x)
	root := x
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[x] != root {
		u.parent[x], x = root, u.parent[x]
	}
	return root
}

// Union merges the sets containing x and y.
func (u *UnionFind) Union(x, y string) {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.count--
}

// Connected reports whether x and y share a set.
func (u *UnionFind) Connected(x, y string) bool {
	return u.Find(x) == u.Find(y)
}

// Count returns the number of disjoint sets.
func (u *UnionFind) Count() int { return u.count }

// Sets returns the disjoint sets with sorted members, sorted by first
// member.
func (u *UnionFind) Sets() [][]string {
	byRoot := make(map[string][]string)
	for x := range u.parent {
		r := u.Find(x)
		byRoot[r] = append(byRoot[r], x)
	}
	out := make([][]string, 0, len(byRoot))
	for _, members := range byRoot {
		sort.Strings(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// String implements fmt.Stringer for Undirected.
func (g *Undirected) String() string {
	return fmt.Sprintf("graph{V=%d, E=%d}", g.NumVertices(), g.NumEdges())
}
