package solver

import (
	"context"
	"math"
	"testing"

	"dyncontract/internal/core"
	"dyncontract/internal/effort"
	"dyncontract/internal/telemetry"
	"dyncontract/internal/worker"
)

// TestSolveAllMetrics pins the pool's instrumentation: with Options.Metrics
// set, every subproblem that actually runs increments MetricDesigns,
// failures increment MetricDesignErrors, and each design's latency lands in
// MetricDesignSeconds.
func TestSolveAllMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	subs := solverFixture(t, 12)
	subs[3].Config.Mu = -1
	subs[9].Config.Mu = -1
	outcomes, err := SolveAll(context.Background(), subs, Options{
		Parallelism:     3,
		ContinueOnError: true,
		Metrics:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.Counters[MetricDesigns]; got != uint64(len(subs)) {
		t.Errorf("%s = %d, want %d", MetricDesigns, got, len(subs))
	}
	if got := s.Counters[MetricDesignErrors]; got != 2 {
		t.Errorf("%s = %d, want 2", MetricDesignErrors, got)
	}
	h, ok := s.Histograms[MetricDesignSeconds]
	if !ok {
		t.Fatalf("missing histogram %s", MetricDesignSeconds)
	}
	if h.Count != uint64(len(subs)) {
		t.Errorf("%s count = %d, want %d", MetricDesignSeconds, h.Count, len(subs))
	}
	if h.Sum < 0 || math.IsNaN(h.Sum) || math.IsInf(h.Sum, 0) {
		t.Errorf("%s sum = %v, want finite ≥ 0", MetricDesignSeconds, h.Sum)
	}
	// One SolveAll call = one batch-size observation carrying the
	// subproblem count.
	bh, ok := s.Histograms[MetricBatchSize]
	if !ok {
		t.Fatalf("missing histogram %s", MetricBatchSize)
	}
	if bh.Count != 1 || bh.Sum != float64(len(subs)) {
		t.Errorf("%s count/sum = %d/%v, want 1/%d", MetricBatchSize, bh.Count, bh.Sum, len(subs))
	}

	// The instrumented outcomes must match an un-instrumented run.
	clean := solverFixture(t, 12)
	want, err := SolveAll(context.Background(), clean, Options{Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, oc := range outcomes {
		if i == 3 || i == 9 {
			continue
		}
		if oc.Result.RequesterUtility != want[i].Result.RequesterUtility {
			t.Errorf("outcome %d: instrumented utility %v != plain %v",
				i, oc.Result.RequesterUtility, want[i].Result.RequesterUtility)
		}
	}
}

// TestSolveAllSequentialScratch pins the Parallelism=1 fast path: every
// design runs inline over the caller's scratch (no goroutines), outcomes
// — including per-entry errors under ContinueOnError — match the pooled
// route, and the metrics counters stay in parity.
func TestSolveAllSequentialScratch(t *testing.T) {
	subs := solverFixture(t, 10)
	subs[4].Config.Mu = -1
	reg := telemetry.NewRegistry()
	scratch := &core.Scratch{}
	outcomes, err := SolveAll(context.Background(), subs, Options{
		Parallelism:     1,
		ContinueOnError: true,
		Metrics:         reg,
		Scratch:         scratch,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The failing subproblem bails in config validation before the
	// scratch is touched; the other nine designs all reuse it.
	if got := scratch.Uses(); got != 9 {
		t.Errorf("scratch uses = %d, want 9", got)
	}
	s := reg.Snapshot()
	if got := s.Counters[MetricDesigns]; got != uint64(len(subs)) {
		t.Errorf("%s = %d, want %d", MetricDesigns, got, len(subs))
	}
	if got := s.Counters[MetricDesignErrors]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricDesignErrors, got)
	}

	pooled, err := SolveAll(context.Background(), subs, Options{Parallelism: 4, ContinueOnError: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range outcomes {
		seqErr, poolErr := outcomes[i].Err, pooled[i].Err
		if (seqErr == nil) != (poolErr == nil) {
			t.Fatalf("outcome %d: sequential err %v, pooled err %v", i, seqErr, poolErr)
		}
		if seqErr != nil {
			if seqErr.Error() != poolErr.Error() {
				t.Errorf("outcome %d: error %q != pooled %q", i, seqErr, poolErr)
			}
			continue
		}
		if outcomes[i].Result.RequesterUtility != pooled[i].Result.RequesterUtility {
			t.Errorf("outcome %d: sequential utility %v != pooled %v",
				i, outcomes[i].Result.RequesterUtility, pooled[i].Result.RequesterUtility)
		}
	}
}

// degenerateSub builds a subproblem whose feedback knots collapse in
// float64: ψ passes Quadratic.Validate (the derivative stays positive),
// but its huge constant term makes the per-knot increment r1·δ vanish
// below one ulp of R0, so the batched solve sees non-increasing knots
// and must route through the scalar core.Design fallback.
func degenerateSub(t *testing.T) Subproblem {
	t.Helper()
	part, err := effort.NewPartition(4, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	psi, err := effort.NewQuadratic(-0.02, 2, 1e17, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	a, err := worker.NewHonest("degenerate", psi, 1, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	return Subproblem{Agent: a, Config: core.Config{Part: part, Mu: 1, W: 1}}
}

// TestSolveAllScalarFallbackMetric pins MetricScalarFallbacks: healthy
// populations report zero, and each design the batched solve cannot
// handle adds exactly one — on both the sequential and pooled routes,
// whose per-scratch counts are exported as call deltas.
func TestSolveAllScalarFallbackMetric(t *testing.T) {
	reg := telemetry.NewRegistry()
	if _, err := SolveAll(context.Background(), solverFixture(t, 8), Options{
		Parallelism: 1,
		Metrics:     reg,
	}); err != nil {
		t.Fatal(err)
	}
	healthy := reg.Snapshot()
	if got := healthy.Counters[MetricScalarFallbacks]; got != 0 {
		t.Errorf("%s = %d on healthy fixture, want 0", MetricScalarFallbacks, got)
	}
	if h := healthy.Histograms[MetricScalarFallbackSeconds]; h.Count != 0 {
		t.Errorf("%s count = %d on healthy fixture, want 0", MetricScalarFallbackSeconds, h.Count)
	}

	subs := solverFixture(t, 6)
	subs[1] = degenerateSub(t)
	subs[4] = degenerateSub(t)

	for name, par := range map[string]int{"sequential": 1, "pooled": 3} {
		reg := telemetry.NewRegistry()
		outcomes, err := SolveAll(context.Background(), subs, Options{
			Parallelism:     par,
			ContinueOnError: true,
			Metrics:         reg,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := reg.Snapshot()
		if got := s.Counters[MetricScalarFallbacks]; got != 2 {
			t.Errorf("%s: %s = %d, want 2", name, MetricScalarFallbacks, got)
		}
		// The latency histogram records exactly the fallback designs: one
		// observation per degenerate subproblem, its mass a subset of the
		// all-designs histogram on the same bins.
		fh, ok := s.Histograms[MetricScalarFallbackSeconds]
		if !ok {
			t.Fatalf("%s: missing histogram %s", name, MetricScalarFallbackSeconds)
		}
		if fh.Count != 2 {
			t.Errorf("%s: %s count = %d, want 2", name, MetricScalarFallbackSeconds, fh.Count)
		}
		dh := s.Histograms[MetricDesignSeconds]
		if fh.Count > dh.Count || fh.Sum > dh.Sum {
			t.Errorf("%s: %s (count %d, sum %v) exceeds %s (count %d, sum %v)",
				name, MetricScalarFallbackSeconds, fh.Count, fh.Sum,
				MetricDesignSeconds, dh.Count, dh.Sum)
		}
		if fh.Sum < 0 || math.IsNaN(fh.Sum) || math.IsInf(fh.Sum, 0) {
			t.Errorf("%s: %s sum = %v, want finite ≥ 0", name, MetricScalarFallbackSeconds, fh.Sum)
		}
		// The fallback must still produce the scalar path's exact outcome.
		for _, i := range []int{1, 4} {
			want, wantErr := core.Design(subs[i].Agent, subs[i].Config)
			got, gotErr := outcomes[i].Result, outcomes[i].Err
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%s: outcome %d err %v, scalar err %v", name, i, gotErr, wantErr)
			}
			if gotErr != nil {
				if gotErr.Error() != wantErr.Error() {
					t.Errorf("%s: outcome %d error %q != scalar %q", name, i, gotErr, wantErr)
				}
				continue
			}
			if got.RequesterUtility != want.RequesterUtility || got.KOpt != want.KOpt {
				t.Errorf("%s: outcome %d (%v, k=%d) != scalar (%v, k=%d)",
					name, i, got.RequesterUtility, got.KOpt, want.RequesterUtility, want.KOpt)
			}
		}
	}
}

// TestSolveAllNopMetrics checks the disabled path: telemetry.Nop behaves
// exactly like no registry at all.
func TestSolveAllNopMetrics(t *testing.T) {
	subs := solverFixture(t, 6)
	outcomes, err := SolveAll(context.Background(), subs, Options{Metrics: telemetry.Nop})
	if err != nil {
		t.Fatal(err)
	}
	for i, oc := range outcomes {
		if oc.Err != nil || oc.Result == nil {
			t.Errorf("outcome %d: %+v", i, oc)
		}
	}
}
