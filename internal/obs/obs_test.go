package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"dyncontract/internal/engine"
	"dyncontract/internal/telemetry"
)

func TestHandlerServesPrometheusText(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter(engine.MetricRounds).Add(7)
	reg.Gauge(engine.MetricRoundUtility).Set(12.5)
	reg.Histogram(engine.MetricRoundSeconds, 0, 0.25, 50).Observe(0.01)

	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		engine.MetricRounds + " 7\n",
		engine.MetricRoundUtility + " 12.5\n",
		engine.MetricRoundSeconds + `_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\n---\n%s", want, text)
		}
	}
	assertParseableExposition(t, text)
}

func TestHandlerServesPprofIndex(t *testing.T) {
	srv := httptest.NewServer(Handler(telemetry.NewRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/: %s", resp.Status)
	}
}

// assertParseableExposition walks every line the way a Prometheus scraper
// would: comments pass through, every sample line splits into a name (with
// optional {labels}) and a parseable float value.
func assertParseableExposition(t *testing.T, text string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Errorf("unparseable sample line %q", line)
			continue
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Errorf("sample %q: bad value: %v", line, err)
		}
	}
}

func TestSessionLifecycle(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	reg.Counter("dyncontract_test_total").Add(5)

	f := Flags{
		MetricsPath:   filepath.Join(dir, "out.jsonl"),
		MetricsListen: "127.0.0.1:0",
		MemProfile:    filepath.Join(dir, "mem.pprof"),
	}
	sess, err := f.Start(reg)
	if err != nil {
		t.Fatal(err)
	}
	addr := sess.Addr()
	if addr == "" {
		t.Fatal("Addr() empty with -metrics-listen set")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("live /metrics: %v", err)
	}
	resp.Body.Close()
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("second Close must be a no-op, got %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still reachable after Close")
	}

	data, err := os.ReadFile(f.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var rec telemetry.JSONLRecord
	if err := json.Unmarshal(bytes.TrimSpace(data), &rec); err != nil {
		t.Fatalf("metrics file line is not JSON: %v", err)
	}
	if rec.Counters["dyncontract_test_total"] != 5 {
		t.Errorf("flushed snapshot wrong: %+v", rec.Counters)
	}
	if fi, err := os.Stat(f.MemProfile); err != nil || fi.Size() == 0 {
		t.Errorf("heap profile not written: err=%v", err)
	}
}

func TestSessionInertWhenDisabled(t *testing.T) {
	var f Flags
	if f.Enabled() {
		t.Fatal("zero Flags reports enabled")
	}
	sess, err := f.Start(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Addr() != "" {
		t.Error("inert session has an address")
	}
	if err := sess.Flush(); err != nil {
		t.Error(err)
	}
	if err := sess.Close(); err != nil {
		t.Error(err)
	}
	var nilSess *Session
	if nilSess.Addr() != "" || nilSess.Flush() != nil || nilSess.Close() != nil {
		t.Error("nil Session methods must be no-ops")
	}
}

func TestFlagsRegister(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var f Flags
	f.Register(fs)
	err := fs.Parse([]string{
		"-metrics", "m.jsonl", "-metrics-listen", ":9", "-cpuprofile", "c.pprof", "-memprofile", "m.pprof",
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.MetricsPath != "m.jsonl" || f.MetricsListen != ":9" || f.CPUProfile != "c.pprof" || f.MemProfile != "m.pprof" {
		t.Fatalf("flags not bound: %+v", f)
	}
	if !f.Enabled() {
		t.Error("Enabled() false with every flag set")
	}
}

func TestCacheStatsHelpers(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter(engine.MetricCacheHits).Add(10)
	reg.Counter(engine.MetricCacheMisses).Add(4)
	reg.Gauge(engine.MetricCacheEntries).Set(3)
	got := CacheStatsFrom(reg.Snapshot())
	want := engine.CacheStats{Hits: 10, Misses: 4, Entries: 3}
	if got != want {
		t.Fatalf("CacheStatsFrom = %+v, want %+v", got, want)
	}

	delta := DeltaCacheStats(engine.CacheStats{Hits: 6, Misses: 1, Entries: 2}, got)
	if (delta != engine.CacheStats{Hits: 4, Misses: 3, Entries: 3}) {
		t.Fatalf("DeltaCacheStats = %+v", delta)
	}

	var buf bytes.Buffer
	FprintCacheStats(&buf, got)
	want2 := "  design cache: 10 hits, 4 misses (3 distinct designs held)\n"
	if buf.String() != want2 {
		t.Fatalf("FprintCacheStats = %q, want %q", buf.String(), want2)
	}
}

func TestRespondStatsHelpers(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter(engine.MetricRespondHits).Add(12)
	reg.Counter(engine.MetricRespondMisses).Add(3)
	reg.Gauge(engine.MetricRespondEntries).Set(3)
	got := RespondStatsFrom(reg.Snapshot())
	want := engine.RespondStats{Hits: 12, Misses: 3, Entries: 3}
	if got != want {
		t.Fatalf("RespondStatsFrom = %+v, want %+v", got, want)
	}

	delta := DeltaRespondStats(engine.RespondStats{Hits: 5, Misses: 1, Entries: 2}, got)
	if (delta != engine.RespondStats{Hits: 7, Misses: 2, Entries: 3}) {
		t.Fatalf("DeltaRespondStats = %+v", delta)
	}

	var buf bytes.Buffer
	FprintRespondStats(&buf, got)
	want2 := "  respond memo: 12 hits, 3 misses (3 responses held)\n"
	if buf.String() != want2 {
		t.Fatalf("FprintRespondStats = %q, want %q", buf.String(), want2)
	}
}

func TestShardStatsHelpers(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Gauge(engine.MetricShards).Set(4)
	d := reg.Histogram(engine.MetricShardDesignSeconds, 0, 0.25, 50)
	d.Observe(0.01)
	d.Observe(0.03)
	r := reg.Histogram(engine.MetricShardRespondSeconds, 0, 0.25, 50)
	r.Observe(0.02)
	got := ShardStatsFrom(reg.Snapshot())
	want := ShardStats{Shards: 4, DesignRuns: 2, RespondRuns: 1, DesignSeconds: 0.04, RespondSeconds: 0.02}
	if got != want {
		t.Fatalf("ShardStatsFrom = %+v, want %+v", got, want)
	}

	delta := DeltaShardStats(ShardStats{Shards: 4, DesignRuns: 1, RespondRuns: 1, DesignSeconds: 0.01, RespondSeconds: 0.02}, got)
	if (delta != ShardStats{Shards: 4, DesignRuns: 1, RespondRuns: 0, DesignSeconds: 0.03, RespondSeconds: 0}) {
		t.Fatalf("DeltaShardStats = %+v", delta)
	}

	var buf bytes.Buffer
	FprintShardStats(&buf, got)
	want2 := "  shards: 4\n" +
		"  shard design:       2 runs, mean 0.020000s\n" +
		"  shard respond:      1 runs, mean 0.020000s\n"
	if buf.String() != want2 {
		t.Fatalf("FprintShardStats = %q, want %q", buf.String(), want2)
	}

	buf.Reset()
	FprintShardStats(&buf, ShardStats{})
	if want3 := "  shards: sequential pipeline (no shard metrics)\n"; buf.String() != want3 {
		t.Fatalf("FprintShardStats(zero) = %q, want %q", buf.String(), want3)
	}
}

func TestDriftStatsHelpers(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter(engine.MetricDriftTouchedAgents).Add(12)
	reg.Counter(engine.MetricDriftShardsRebuilt).Add(3)
	reg.Counter(engine.MetricDriftShardsSkipped).Add(13)
	reg.Counter(engine.MetricDriftJoins).Add(5)
	reg.Counter(engine.MetricDriftLeaves).Add(4)
	reg.Counter(engine.MetricDriftCompactions).Add(1)
	h := reg.Histogram(engine.MetricDriftRebuildSeconds, 0, 0.25, 50)
	h.Observe(0.01)
	h.Observe(0.03)
	got := DriftStatsFrom(reg.Snapshot())
	want := DriftStats{TouchedAgents: 12, JoinedAgents: 5, LeftAgents: 4, Compactions: 1, ShardsRebuilt: 3, ShardsSkipped: 13, RebuildRuns: 2, RebuildSeconds: 0.04}
	if got != want {
		t.Fatalf("DriftStatsFrom = %+v, want %+v", got, want)
	}

	delta := DeltaDriftStats(DriftStats{TouchedAgents: 2, JoinedAgents: 1, LeftAgents: 1, ShardsRebuilt: 1, ShardsSkipped: 3, RebuildRuns: 1, RebuildSeconds: 0.01}, got)
	if (delta != DriftStats{TouchedAgents: 10, JoinedAgents: 4, LeftAgents: 3, Compactions: 1, ShardsRebuilt: 2, ShardsSkipped: 10, RebuildRuns: 1, RebuildSeconds: 0.03}) {
		t.Fatalf("DeltaDriftStats = %+v", delta)
	}

	var buf bytes.Buffer
	FprintDriftStats(&buf, got)
	want2 := "  drift touched: 12 agents across 2 sparse refreshes\n" +
		"  drift churn:   5 joined, 4 left, 1 compactions\n" +
		"  drift shards:  3 rebuilt, 13 skipped\n" +
		"  drift refresh: 0.040000s total, mean 0.020000s\n"
	if buf.String() != want2 {
		t.Fatalf("FprintDriftStats = %q, want %q", buf.String(), want2)
	}

	buf.Reset()
	FprintDriftStats(&buf, DriftStats{})
	if want3 := "  drift: no scoped drift (Touch/TouchJoin/TouchLeave) observed\n"; buf.String() != want3 {
		t.Fatalf("FprintDriftStats(zero) = %q, want %q", buf.String(), want3)
	}
}

// TestHTTPStatsHelpers drives requests through telemetry.InstrumentHandler
// and checks HTTPStatsFrom recovers the route's counts and latency
// aggregates, and FprintHTTPStats renders one line per route.
func TestHTTPStatsHelpers(t *testing.T) {
	reg := telemetry.NewRegistry()
	okHandler := telemetry.InstrumentHandler(reg, "design", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	busyHandler := telemetry.InstrumentHandler(reg, "rounds", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	for i := 0; i < 5; i++ {
		okHandler.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/design", nil))
	}
	busyHandler.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/rounds", nil))

	stats := HTTPStatsFrom(reg.Snapshot())
	if len(stats) != 2 {
		t.Fatalf("HTTPStatsFrom found %d routes, want 2: %+v", len(stats), stats)
	}
	if stats[0].Route != "design" || stats[1].Route != "rounds" {
		t.Fatalf("routes not sorted: %+v", stats)
	}
	if stats[0].Requests != 5 || stats[0].Status2xx != 5 || stats[0].Rejected != 0 {
		t.Errorf("design stats = %+v", stats[0])
	}
	if stats[1].Requests != 1 || stats[1].Rejected != 1 || stats[1].Status4xx != 1 {
		t.Errorf("rounds stats = %+v", stats[1])
	}
	if stats[0].P95Seconds < stats[0].P50Seconds {
		t.Errorf("p95 %v < p50 %v", stats[0].P95Seconds, stats[0].P50Seconds)
	}

	var buf bytes.Buffer
	FprintHTTPStats(&buf, stats)
	out := buf.String()
	if !strings.Contains(out, "http design") || !strings.Contains(out, "http rounds") {
		t.Errorf("FprintHTTPStats output missing routes:\n%s", out)
	}
	if !strings.Contains(out, "1 rejected") {
		t.Errorf("FprintHTTPStats output missing rejected count:\n%s", out)
	}

	buf.Reset()
	FprintHTTPStats(&buf, nil)
	if !strings.Contains(buf.String(), "no instrumented routes") {
		t.Errorf("empty FprintHTTPStats = %q", buf.String())
	}
}
