package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dyncontract/internal/synth"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, id := range []string{"fig6", "table2", "fig7", "table3", "fig8a", "fig8b", "fig8c", "ablation"} {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("-list output missing %s", id)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "table2", "-seed", "11"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "== table2:") {
		t.Errorf("missing table2 report:\n%s", out)
	}
	if strings.Contains(out, "== fig6:") {
		t.Error("unrequested experiment ran")
	}
	if strings.Contains(out, "false") {
		t.Errorf("shape check failed:\n%s", out)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig6, fig7"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "== fig6:") || !strings.Contains(buf.String(), "== fig7:") {
		t.Error("both requested experiments should run")
	}
}

func TestRunFromTraceFile(t *testing.T) {
	tr, err := synth.Generate(synth.SmallScale(3))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-trace", path, "-run", "fig7"}, &buf); err != nil {
		t.Fatalf("run -trace: %v", err)
	}
	if !strings.Contains(buf.String(), "== fig7:") {
		t.Error("fig7 missing from trace-file run")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig99"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-scale", "mega"}, &buf); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run([]string{"-trace", "/no/such/file.jsonl"}, &buf); err == nil {
		t.Error("missing trace file accepted")
	}
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "table2", "-json"}, &buf); err != nil {
		t.Fatalf("run -json: %v", err)
	}
	var rep struct {
		ID    string     `json:"ID"`
		Rows  [][]string `json:"Rows"`
		Notes []string   `json:"Notes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, buf.String())
	}
	if rep.ID != "table2" || len(rep.Rows) == 0 {
		t.Errorf("unexpected JSON payload: %+v", rep)
	}
	if err := run([]string{"-json", "-plot"}, &buf); err == nil {
		t.Error("-json with -plot accepted")
	}
}

func TestRunOutDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "reports")
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig7", "-out", dir}, &buf); err != nil {
		t.Fatalf("run -out: %v", err)
	}
	txt, err := os.ReadFile(filepath.Join(dir, "fig7.txt"))
	if err != nil {
		t.Fatalf("report txt missing: %v", err)
	}
	if !strings.Contains(string(txt), "fig7") {
		t.Error("txt report lacks experiment id")
	}
	raw, err := os.ReadFile(filepath.Join(dir, "fig7.json"))
	if err != nil {
		t.Fatalf("report json missing: %v", err)
	}
	var rep struct {
		ID string `json:"ID"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil || rep.ID != "fig7" {
		t.Errorf("json report malformed: %v %+v", err, rep)
	}
}

func TestRunMOverride(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig8b", "-m", "8"}, &buf); err != nil {
		t.Fatalf("run -m: %v", err)
	}
	if strings.Contains(buf.String(), "false") {
		t.Errorf("shape check failed at m=8:\n%s", buf.String())
	}
}

func TestRunRespondStats(t *testing.T) {
	// fig8c drives simulations through the engine, so the respond memo
	// accumulates counters the -respondstats delta printer reads back.
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig8c", "-seed", "7", "-respondstats", "-cachestats"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "respond memo:") {
		t.Errorf("-respondstats output missing memo line:\n%s", out)
	}
	if !strings.Contains(out, "design cache:") {
		t.Errorf("-cachestats output missing cache line:\n%s", out)
	}
}

func TestRunNoMemoIdenticalReports(t *testing.T) {
	var with, without bytes.Buffer
	if err := run([]string{"-run", "fig8c", "-seed", "7"}, &with); err != nil {
		t.Fatalf("memo run: %v", err)
	}
	if err := run([]string{"-run", "fig8c", "-seed", "7", "-nomemo", "-respond-parallel", "2"}, &without); err != nil {
		t.Fatalf("nomemo run: %v", err)
	}
	if with.String() != without.String() {
		t.Errorf("memoized and memo-free reports disagree")
	}
}

func TestRunShardStats(t *testing.T) {
	// fig8c runs simulations through the engine; with -shards the sharded
	// pipeline records per-shard stage timings the -shardstats delta
	// printer reads back. The report itself must not change.
	var sharded, plain bytes.Buffer
	if err := run([]string{"-run", "fig8c", "-seed", "7", "-shards", "2", "-shardstats"}, &sharded); err != nil {
		t.Fatalf("run -shardstats: %v", err)
	}
	out := sharded.String()
	if !strings.Contains(out, "shards: 2") {
		t.Errorf("-shardstats output missing shard count:\n%s", out)
	}
	if !strings.Contains(out, "shard design:") || !strings.Contains(out, "shard respond:") {
		t.Errorf("-shardstats output missing stage lines:\n%s", out)
	}
	if err := run([]string{"-run", "fig8c", "-seed", "7"}, &plain); err != nil {
		t.Fatalf("plain run: %v", err)
	}
	// Strip the stats block: every remaining line must match the
	// sequential run's report exactly.
	var kept []string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "shard") || strings.HasSuffix(line, "fig8c:") {
			continue
		}
		kept = append(kept, line)
	}
	if strings.Join(kept, "\n") != plain.String() {
		t.Errorf("sharded report differs from sequential:\n--- sharded ---\n%s\n--- plain ---\n%s",
			strings.Join(kept, "\n"), plain.String())
	}
}

func TestRunShardStatsSequential(t *testing.T) {
	// Without -shards the printer reports the sequential pipeline rather
	// than silence.
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig8c", "-seed", "7", "-shardstats"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "sequential pipeline (no shard metrics)") {
		t.Errorf("-shardstats without -shards missing sequential note:\n%s", buf.String())
	}
}
