package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dyncontract/internal/contract"
	"dyncontract/internal/effort"
	"dyncontract/internal/engine"
	"dyncontract/internal/journal"
	"dyncontract/internal/spans"
	"dyncontract/internal/worker"
)

// errDraining is the reply queued work receives when the session shuts
// down before reaching it; handlers map it to 503.
var errDraining = errors.New("server: session draining")

// cmdKind discriminates the single-writer loop's commands.
type cmdKind int

const (
	cmdRound cmdKind = iota
	cmdDrift
	cmdSnapshot
)

// command is one unit of serialized session work: advance a round or apply
// a drift. Both run through the same bounded queue and the same writer
// goroutine, so their interleaving is a total order — the ledger a session
// produces is exactly the ledger a bare engine produces for that order.
type command struct {
	ctx   context.Context
	kind  cmdKind
	round AdvanceRoundRequest
	drift *DriftRequest
	reply chan cmdReply // buffered(1): the writer never blocks on a gone waiter

	// enq is when submit accepted the command; the writer turns it into
	// the queue-wait observation on dequeue.
	enq time.Time
	// span is the request's root span (nil when untraced); qspan is its
	// "session.queue" child, open from submit until the writer dequeues.
	span  *spans.Span
	qspan *spans.Span
}

// cmdReply carries the writer's answer; code is the HTTP status for err.
type cmdReply struct {
	round RoundJSON
	drift DriftResponse
	snap  SnapshotResponse
	err   error
	code  int
}

// designCall is one design-only query waiting to ride a micro-batch.
type designCall struct {
	ctx     context.Context
	agentID string
	req     engine.DesignRequest
	reply   chan designReply // buffered(1)
}

type designReply struct {
	contract *contract.PiecewiseLinear
	batch    int
	err      error
	code     int
}

// captureObserver records the round a Step just completed (outcomes
// copied out of the engine's reusable backing array) and, when asked, the
// round's contract map. It lives on the writer goroutine only.
type captureObserver struct {
	wantContracts bool
	contracts     map[string]*contract.PiecewiseLinear
	last          engine.Round
}

var _ engine.Observer = (*captureObserver)(nil)

func (c *captureObserver) OnContracts(_ int, m map[string]*contract.PiecewiseLinear) {
	if !c.wantContracts {
		c.contracts = nil
		return
	}
	// The engine's map is reused across rounds; copy to retain.
	c.contracts = make(map[string]*contract.PiecewiseLinear, len(m))
	for id, con := range m {
		c.contracts[id] = con
	}
}

func (c *captureObserver) OnOutcome(int, engine.AgentOutcome) {}

func (c *captureObserver) OnRoundEnd(r engine.Round) error {
	r.Outcomes = append([]engine.AgentOutcome(nil), r.Outcomes...)
	c.last = r
	return nil
}

// session is one long-lived engine behind the API: population, policy,
// cache, ledger, and the two goroutines that own all mutation — the
// single-writer command loop (rounds + drift) and the design batcher.
type session struct {
	id         string
	name       string
	policyName string
	srv        *Server

	pop      *engine.Population
	eng      *engine.Engine
	capture  *captureObserver
	designer *engine.Designer // shares the round loop's Cache

	// mu guards the population's mutable parameters (weights, β, ω, ψ —
	// written only by drift on the writer goroutine) against concurrent
	// reads from design-query resolution on request goroutines. Engine
	// reads during Step need no lock: Step and drift share the writer.
	mu sync.Mutex

	// ledgerMu guards ledger (writer appends, GET handlers read).
	ledgerMu sync.RWMutex
	ledger   []engine.Round

	cmds     chan command
	designCh chan *designCall
	quit     chan struct{}
	done     chan struct{} // writer exited
	batchDn  chan struct{} // batcher exited

	inFlight atomic.Int64
	draining atomic.Bool

	// jw is the session's write-ahead journal; nil when durability is off.
	// Append, Flush, and BeginSnapshot belong to the writer goroutine.
	jw *journal.Writer
	// req is the create request the session was built from, retained so
	// snapshots can store the policy knobs and name verbatim.
	req *CreateSessionRequest
	// sinceSnap counts successful commands since the last snapshot
	// (writer goroutine only); Config.SnapshotEvery triggers on it.
	sinceSnap int
	// snapBusy is set while a snapshot commit runs in the background.
	snapBusy atomic.Bool
	// recovered marks a session restored from the journal at boot;
	// replayed is how many command records its replay re-executed.
	recovered bool
	replayed  int
}

// start launches the session's writer and batcher goroutines.
func (s *session) start() {
	go s.writerLoop()
	go s.batcherLoop()
}

// close begins drain: no new admissions, queued work answered 503, the
// command or batch currently executing runs to completion.
func (s *session) close() {
	if s.draining.CompareAndSwap(false, true) {
		close(s.quit)
	}
}

// admit reserves an in-flight slot, or reports why it cannot.
func (s *session) admit() (release func(), code int, err error) {
	if s.draining.Load() {
		return nil, http.StatusServiceUnavailable, errDraining
	}
	m := s.srv.metrics
	if n := s.inFlight.Add(1); n > int64(s.srv.cfg.MaxInFlight) {
		s.inFlight.Add(-1)
		m.reject()
		return nil, http.StatusTooManyRequests,
			fmt.Errorf("session %s: %d requests in flight (limit %d)", s.id, n-1, s.srv.cfg.MaxInFlight)
	}
	m.addInFlight(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			s.inFlight.Add(-1)
			m.addInFlight(-1)
		})
	}, 0, nil
}

// submit enqueues a command without blocking; a full queue is backpressure.
func (s *session) submit(cmd command) (code int, err error) {
	cmd.enq = time.Now()
	if parent := spans.FromContext(cmd.ctx); parent != nil {
		cmd.span = parent
		cmd.qspan = parent.StartChild("session.queue")
	}
	select {
	case s.cmds <- cmd:
		s.srv.metrics.addRoundQueue(1)
		s.srv.metrics.addSessionQueue(1)
		return 0, nil
	default:
		cmd.qspan.End() // rejected, never waited
		s.srv.metrics.reject()
		return http.StatusTooManyRequests, fmt.Errorf("session %s: command queue full", s.id)
	}
}

// submitDesign enqueues a design call without blocking.
func (s *session) submitDesign(dc *designCall) (code int, err error) {
	select {
	case s.designCh <- dc:
		s.srv.metrics.addDesignQueue(1)
		return 0, nil
	default:
		s.srv.metrics.reject()
		return http.StatusTooManyRequests, fmt.Errorf("session %s: design queue full", s.id)
	}
}

// writerLoop is the session's single writer: every round advance and every
// drift flows through here, one at a time, in arrival order.
func (s *session) writerLoop() {
	defer func() {
		if s.jw != nil {
			if err := s.jw.Close(); err != nil && s.srv.logger != nil {
				s.srv.logger.Error("journal close failed", "session", s.id, "err", err)
			}
		}
		close(s.done)
	}()
	for {
		// Quit wins over queued work: once drain begins, commands still in
		// the queue were never started and are answered 503 — only the
		// command already executing when quit closed runs to completion.
		select {
		case <-s.quit:
			s.drainCmds()
			return
		default:
		}
		select {
		case <-s.quit:
			s.drainCmds()
			return
		case cmd := <-s.cmds:
			s.srv.metrics.addRoundQueue(-1)
			s.srv.metrics.addSessionQueue(-1)
			cmd.qspan.End()
			ctx := cmd.ctx
			var exec *spans.Span
			var waitLabel string
			if cmd.span != nil {
				waitLabel = cmd.span.TraceID().String()
				exec = cmd.span.StartChild("session.execute")
				ctx = spans.ContextWith(ctx, exec)
			}
			s.srv.metrics.queueWait(time.Since(cmd.enq).Seconds(), waitLabel)
			// Write-ahead: the command is journaled before it executes, so
			// the log is a superset of the executed history; replay skips
			// the over-approximation via abort records and deterministic
			// re-execution.
			switch cmd.kind {
			case cmdRound:
				exec.SetAttr("kind", "round")
				rep, ok := s.journalCmd(journal.KindRound, cmd.round)
				if ok {
					rep = s.runRound(ctx, cmd.round)
				}
				cmd.reply <- rep
				s.afterCommand(ok, rep.err)
			case cmdDrift:
				exec.SetAttr("kind", "drift")
				rep, ok := s.journalCmd(journal.KindDrift, cmd.drift)
				if ok {
					rep = s.runDrift(cmd.drift)
				}
				cmd.reply <- rep
				s.afterCommand(ok, rep.err)
			case cmdSnapshot:
				exec.SetAttr("kind", "snapshot")
				s.startSnapshot(cmd.reply)
			}
			exec.End()
		}
	}
}

// drainCmds answers everything still queued with 503.
func (s *session) drainCmds() {
	for {
		select {
		case cmd := <-s.cmds:
			s.srv.metrics.addRoundQueue(-1)
			s.srv.metrics.addSessionQueue(-1)
			cmd.qspan.End()
			cmd.reply <- cmdReply{err: errDraining, code: http.StatusServiceUnavailable}
		default:
			return
		}
	}
}

// runRound advances the engine one round on the writer goroutine and
// appends the completed round to the ledger.
func (s *session) runRound(ctx context.Context, req AdvanceRoundRequest) cmdReply {
	if err := ctx.Err(); err != nil {
		return cmdReply{err: err, code: statusForCtx(err)}
	}
	s.capture.wantContracts = req.IncludeContracts
	err := s.eng.Step(ctx)
	if err != nil && !errors.Is(err, engine.ErrStop) {
		// A failed Step leaves no trace: nothing to roll back, safe to retry.
		return cmdReply{err: err, code: statusForCtx(err)}
	}
	round := s.capture.last
	s.ledgerMu.Lock()
	s.ledger = append(s.ledger, round)
	s.ledgerMu.Unlock()
	s.srv.metrics.roundDone()
	// A sparse or structural drift scope that escalated to a full view
	// rebuild mid-round means the declarations did not hold against the
	// retained views — worth a warning, because the client paid cold-round
	// latency for what it declared as a small drift.
	if declared, applied := s.eng.LastDriftClass(); (declared == "viewSparse" || declared == "viewStructural") && applied == "viewFull" {
		if lg := s.srv.logger; lg != nil {
			lg.LogAttrs(ctx, slog.LevelWarn, "drift scope escalated",
				slog.String("session", s.id),
				slog.Int("round", round.Index),
				slog.String("declared", declared),
				slog.String("applied", applied),
			)
		}
	}
	out := roundJSON(round, req.IncludeOutcomes)
	if req.IncludeContracts {
		out.Contracts = s.capture.contracts
		s.capture.contracts = nil
	}
	return cmdReply{round: out}
}

// runDrift applies the request's mutations atomically: structural adds
// and removes first, then the scalar mutations, all under the population
// lock, then a full validation; any failure reverts every mutation in
// reverse order and leaves the session exactly as it was.
func (s *session) runDrift(req *DriftRequest) cmdReply {
	s.mu.Lock()
	defer s.mu.Unlock()

	byID := make(map[string]*worker.Agent, len(s.pop.Agents))
	for _, a := range s.pop.Agents {
		byID[a.ID] = a
	}
	var undo []func()
	fail := func(err error) cmdReply {
		for i := len(undo) - 1; i >= 0; i-- {
			undo[i]()
		}
		return cmdReply{err: err, code: http.StatusBadRequest}
	}

	// Structural mutations. Adds append (the population's slice order is
	// presentation-free — engines sort by ID); removes splice their exact
	// position so an undo restores the original slice byte for byte.
	addIDs := make([]string, 0, len(req.Add))
	for i := range req.Add {
		spec := &req.Add[i]
		if _, exists := byID[spec.ID]; exists {
			return fail(fmt.Errorf("add %q: agent already in session: %w", spec.ID, ErrBadRequest))
		}
		a, err := spec.Agent()
		if err != nil {
			return fail(err)
		}
		s.pop.Agents = append(s.pop.Agents, a)
		s.pop.Weights[a.ID] = spec.Weight
		s.pop.MaliceProb[a.ID] = spec.Malice
		byID[a.ID] = a
		id := a.ID
		undo = append(undo, func() {
			s.pop.Agents = s.pop.Agents[:len(s.pop.Agents)-1]
			delete(s.pop.Weights, id)
			delete(s.pop.MaliceProb, id)
			delete(byID, id)
		})
		addIDs = append(addIDs, id)
	}
	added := make(map[string]struct{}, len(addIDs))
	for _, id := range addIDs {
		added[id] = struct{}{}
	}
	removeIDs := make([]string, 0, len(req.Remove))
	for _, id := range req.Remove {
		if _, both := added[id]; both {
			return fail(fmt.Errorf("agent %q both added and removed: %w", id, ErrBadRequest))
		}
		if _, exists := byID[id]; !exists {
			return fail(fmt.Errorf("remove %q: unknown agent: %w", id, ErrBadRequest))
		}
		idx := -1
		for i, a := range s.pop.Agents {
			if a.ID == id {
				idx = i
				break
			}
		}
		a := s.pop.Agents[idx]
		w := s.pop.Weights[id]
		mal, hadMal := s.pop.MaliceProb[id]
		s.pop.Agents = append(s.pop.Agents[:idx], s.pop.Agents[idx+1:]...)
		delete(s.pop.Weights, id)
		delete(s.pop.MaliceProb, id)
		delete(byID, id)
		gone, at := a, idx
		undo = append(undo, func() {
			s.pop.Agents = append(s.pop.Agents, nil)
			copy(s.pop.Agents[at+1:], s.pop.Agents[at:])
			s.pop.Agents[at] = gone
			s.pop.Weights[gone.ID] = w
			if hadMal {
				s.pop.MaliceProb[gone.ID] = mal
			}
			byID[gone.ID] = gone
		})
		removeIDs = append(removeIDs, id)
	}
	// touched collects the distinct agent IDs this drift mutates, declared
	// through Population.Touch only after validation passes — a rejected
	// drift reverts every mutation and leaves the drift scope (and with it
	// every engine view) exactly as it was.
	touched := make(map[string]struct{}, len(req.Weights)+len(req.Beta)+len(req.Omega)+len(req.Psi))
	updated := 0
	for id, w := range req.Weights {
		old, ok := s.pop.Weights[id]
		if !ok {
			return fail(fmt.Errorf("weight for unknown agent %q: %w", id, ErrBadRequest))
		}
		s.pop.Weights[id] = w
		undo = append(undo, func() { s.pop.Weights[id] = old })
		touched[id] = struct{}{}
		updated++
	}
	for id, b := range req.Beta {
		a, ok := byID[id]
		if !ok {
			return fail(fmt.Errorf("beta for unknown agent %q: %w", id, ErrBadRequest))
		}
		old := a.Beta
		a.Beta = b
		undo = append(undo, func() { a.Beta = old })
		touched[id] = struct{}{}
		updated++
	}
	for id, o := range req.Omega {
		a, ok := byID[id]
		if !ok {
			return fail(fmt.Errorf("omega for unknown agent %q: %w", id, ErrBadRequest))
		}
		old := a.Omega
		a.Omega = o
		undo = append(undo, func() { a.Omega = old })
		touched[id] = struct{}{}
		updated++
	}
	for id, p := range req.Psi {
		a, ok := byID[id]
		if !ok {
			return fail(fmt.Errorf("psi for unknown agent %q: %w", id, ErrBadRequest))
		}
		old := a.Psi
		a.Psi = effort.Quadratic{R2: p.R2, R1: p.R1, R0: p.R0}
		undo = append(undo, func() { a.Psi = old })
		touched[id] = struct{}{}
		updated++
	}
	if err := s.pop.Validate(); err != nil {
		return fail(err)
	}
	// Declare what moved, only now that validation passed — a rejected
	// drift reverts every mutation and leaves the drift scope (and with it
	// every engine view) exactly as it was. Scalar mutations Touch exactly
	// the mutated agents; adds and removes declare a structural scope
	// (TouchJoin/TouchLeave), so a sharded engine splices only the shards
	// owning those agents instead of rebuilding every view. The design
	// cache needs nothing — mutated fingerprints simply miss and redesign,
	// and a leaver's orphaned fingerprint is refcount-evicted.
	ids := make([]string, 0, len(touched))
	for id := range touched {
		ids = append(ids, id)
	}
	s.pop.Touch(ids...)
	s.pop.TouchJoin(addIDs...)
	s.pop.TouchLeave(removeIDs...)
	s.srv.metrics.driftDone()
	s.ledgerMu.RLock()
	rounds := len(s.ledger)
	s.ledgerMu.RUnlock()
	return cmdReply{drift: DriftResponse{
		Updated: updated,
		Touched: len(ids),
		Joined:  len(addIDs),
		Left:    len(removeIDs),
		Rounds:  rounds,
	}}
}

// batcherLoop coalesces design-only queries into micro-batches: the first
// waiting call opens a window (Config.BatchWindow); the batch executes when
// the window closes or Config.BatchMax calls have gathered, whichever is
// first. One engine pass serves the whole batch, and the session's design
// cache — shared with the round loop — makes warm queries pure lookups.
func (s *session) batcherLoop() {
	defer close(s.batchDn)
	var (
		pending []*designCall
		timer   *time.Timer
		expired <-chan time.Time
	)
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
			expired = nil
		}
	}
	flush := func() {
		stopTimer()
		if len(pending) > 0 {
			s.runBatch(pending)
			pending = nil
		}
	}
	drain := func() {
		// Gathered calls were admitted: serve them. Anything still in the
		// queue behind them was not started — 503.
		flush()
		for {
			select {
			case dc := <-s.designCh:
				s.srv.metrics.addDesignQueue(-1)
				dc.reply <- designReply{err: errDraining, code: http.StatusServiceUnavailable}
			default:
				return
			}
		}
	}
	for {
		select {
		case <-s.quit:
			drain()
			return
		default:
		}
		select {
		case <-s.quit:
			drain()
			return
		case dc := <-s.designCh:
			s.srv.metrics.addDesignQueue(-1)
			pending = append(pending, dc)
			if len(pending) >= s.srv.cfg.BatchMax {
				flush()
				continue
			}
			if timer == nil {
				timer = time.NewTimer(s.srv.cfg.BatchWindow)
				expired = timer.C
			}
		case <-expired:
			timer = nil
			expired = nil
			flush()
		}
	}
}

// runBatch executes one micro-batch through Designer.DesignBatch. Calls
// whose context died while waiting are answered without solving; the rest
// share one engine pass (and, within it, one solve per distinct
// fingerprint).
func (s *session) runBatch(calls []*designCall) {
	live := calls[:0]
	for _, dc := range calls {
		if err := dc.ctx.Err(); err != nil {
			dc.reply <- designReply{err: err, code: statusForCtx(err)}
			continue
		}
		live = append(live, dc)
	}
	if len(live) == 0 {
		return
	}
	reqs := make([]engine.DesignRequest, len(live))
	for i, dc := range live {
		reqs[i] = dc.req
	}
	// The batch's own work lives in a carrier trace of its own (it serves
	// many callers, so it belongs to none of their traces); each traced
	// caller gets a "session.design" span in its trace linked to the
	// carrier by batch.trace/batch.span attributes.
	bspan := s.srv.tracer.Root("design.batch")
	bspan.SetAttr("session", s.id)
	bspan.SetInt("batch.size", int64(len(live)))
	var links []*spans.Span
	if bspan != nil {
		bTrace, bSpan := bspan.TraceID().String(), bspan.ID().String()
		for _, dc := range live {
			if caller := spans.FromContext(dc.ctx); caller != nil {
				dsp := caller.StartChild("session.design")
				dsp.SetAttr("agent", dc.agentID)
				dsp.SetAttr("batch.trace", bTrace)
				dsp.SetAttr("batch.span", bSpan)
				links = append(links, dsp)
			}
		}
	}
	endSpans := func() {
		for _, dsp := range links {
			dsp.End()
		}
		bspan.End()
	}
	// The batch outlives any single caller's deadline; it runs under the
	// server's lifetime context so one impatient client cannot cancel its
	// batchmates' work.
	ctx := spans.ContextWith(s.srv.baseCtx, bspan)
	contracts, err := s.designer.DesignBatch(ctx, s.pop.Part, s.pop.Mu, reqs)
	endSpans()
	if err != nil {
		for _, dc := range live {
			dc.reply <- designReply{err: err, code: http.StatusInternalServerError}
		}
		return
	}
	s.srv.metrics.batchDone(len(live))
	for i, dc := range live {
		dc.reply <- designReply{contract: contracts[i], batch: len(live)}
	}
}

// resolveDesign turns a validated DesignQueryRequest into an engine
// request. Session agents are copied under the population lock so the
// solver never reads an agent a concurrent drift is writing; inline agents
// are validated against the session's partition.
func (s *session) resolveDesign(req *DesignQueryRequest) (engine.DesignRequest, string, error) {
	if req.AgentID != "" {
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, a := range s.pop.Agents {
			if a.ID == req.AgentID {
				cp := *a
				return engine.DesignRequest{Agent: &cp, W: s.pop.Weights[a.ID]}, a.ID, nil
			}
		}
		return engine.DesignRequest{}, "", fmt.Errorf("unknown agent %q: %w", req.AgentID, ErrBadRequest)
	}
	a, err := req.Agent.Agent()
	if err != nil {
		return engine.DesignRequest{}, "", err
	}
	if err := a.Validate(s.pop.Part.YMax()); err != nil {
		return engine.DesignRequest{}, "", fmt.Errorf("%v: %w", err, ErrBadRequest)
	}
	return engine.DesignRequest{Agent: a, W: req.Agent.Weight}, a.ID, nil
}

// info snapshots the session for GET /v1/sessions/{id}.
func (s *session) info() SessionInfo {
	s.ledgerMu.RLock()
	rounds := len(s.ledger)
	total := engine.TotalUtility(s.ledger)
	s.ledgerMu.RUnlock()
	s.mu.Lock()
	agents := len(s.pop.Agents)
	s.mu.Unlock()
	cs := s.eng.CacheStats()
	info := SessionInfo{
		ID:           s.id,
		Name:         s.name,
		Policy:       s.policyName,
		Agents:       agents,
		Rounds:       rounds,
		TotalUtility: total,
		Cache:        CacheStatsJSON{Hits: cs.Hits, Misses: cs.Misses, Entries: cs.Entries},
		Draining:     s.draining.Load(),
	}
	if s.jw != nil {
		info.Journal = &JournalInfo{
			Seq:       s.jw.Seq(),
			Recovered: s.recovered,
			Replayed:  s.replayed,
		}
	}
	return info
}

// rounds snapshots the ledger as wire rounds (outcomes always included —
// this is the audit endpoint determinism checks diff).
func (s *session) rounds() []RoundJSON {
	s.ledgerMu.RLock()
	defer s.ledgerMu.RUnlock()
	out := make([]RoundJSON, len(s.ledger))
	for i, r := range s.ledger {
		out[i] = roundJSON(r, true)
	}
	return out
}

// statusForCtx maps context errors to HTTP: a deadline is a timeout, a
// cancellation means the client went away (the exact code is moot — 499 is
// nginx lore, 503 is honest about not having served).
func statusForCtx(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}
