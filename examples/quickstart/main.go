// Quickstart: design a dynamic contract for one honest worker and inspect
// what the theory promises.
//
// Run with:
//
//	go run ./examples/quickstart
//
// It walks the public API end to end: define an effort function ψ,
// partition the effort axis, design the contract with core.Design, and
// compare the worker's predicted best response and the requester's utility
// against the Theorem 4.1 bounds.
package main

import (
	"fmt"
	"log"

	"dyncontract/internal/core"
	"dyncontract/internal/effort"
	"dyncontract/internal/worker"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// 1. The worker's effort→feedback curve ψ(y) = −0.02y² + 2y + 1:
	//    concave (diminishing returns to effort) and increasing up to the
	//    apex at y = 50. We work on [0, 40].
	const yMax = 40.0
	psi, err := effort.NewQuadratic(-0.02, 2, 1, yMax)
	if err != nil {
		log.Fatalf("effort function: %v", err)
	}
	fmt.Println("effort function:", psi)

	// 2. Discretize the effort axis into m = 10 intervals (§III-A). Finer
	//    partitions approach the optimal contract (Fig. 6).
	part, err := effort.NewPartition(10, yMax/10)
	if err != nil {
		log.Fatalf("partition: %v", err)
	}

	// 3. An honest worker with effort-cost weight β = 1 (utility
	//    = compensation − β·effort).
	alice, err := worker.NewHonest("alice", psi, 1, part.YMax())
	if err != nil {
		log.Fatalf("worker: %v", err)
	}

	// 4. Design the contract: the requester weighs Alice's feedback at
	//    w = 1 and compensation at μ = 1 (utility = w·feedback − μ·pay).
	res, err := core.Design(alice, core.Config{Part: part, Mu: 1, W: 1})
	if err != nil {
		log.Fatalf("design: %v", err)
	}

	fmt.Printf("\ndesigned contract: %v\n", res.Contract)
	fmt.Printf("target effort interval: k_opt = %d of %d\n", res.KOpt, part.M)
	fmt.Printf("\npredicted best response when Alice maximizes her own utility:\n")
	fmt.Printf("  effort        %.3f\n", res.Response.Effort)
	fmt.Printf("  feedback      %.3f\n", res.Response.Feedback)
	fmt.Printf("  compensation  %.3f\n", res.Response.Compensation)
	fmt.Printf("  her utility   %.3f\n", res.Response.Utility)

	fmt.Printf("\nrequester utility: %.3f\n", res.RequesterUtility)
	fmt.Printf("Theorem 4.1 bounds: [%.3f, %.3f]\n", res.LowerBound, res.UpperBound)

	// 5. Sanity check the incentive: Alice cannot do better by slacking
	//    off or overworking.
	for _, y := range []float64{0, res.Response.Effort / 2, res.Response.Effort * 1.2} {
		u := alice.Utility(res.Contract, y)
		fmt.Printf("  if Alice worked y=%.2f instead, her utility would be %.3f (vs %.3f)\n",
			y, u, res.Response.Utility)
	}
}
