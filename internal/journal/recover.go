package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// RecoveredSession is one session's journaled history, ready to replay:
// the latest valid snapshot (if any) plus every command record past it,
// in sequence order.
type RecoveredSession struct {
	// ID is the session's journal directory name (its session ID).
	ID string
	// SnapshotSeq is the sequence number the snapshot covers; 0 when the
	// session has no snapshot and Tail starts from its create record.
	SnapshotSeq uint64
	// Snapshot is the snapshot record's body (nil when none).
	Snapshot []byte
	// Tail holds the command records with Seq > SnapshotSeq, in order.
	Tail []Record
	// LastSeq is the highest durable sequence number; Resume continues
	// after it.
	LastSeq uint64
	// TornBytes counts bytes truncated off the final segment — the
	// partial record of a crash mid-append.
	TornBytes int
}

// SessionError is one session whose recovery failed. Other sessions are
// unaffected.
type SessionError struct {
	ID  string
	Err error
}

func (e SessionError) Error() string {
	return fmt.Sprintf("journal: session %s: %v", e.ID, e.Err)
}

// Recover scans the store for journaled sessions. Torn tails — a partial
// final record in the last segment, the signature of kill -9 mid-append
// — are truncated on disk and reported per session, not fatal. A corrupt
// record in the middle of a session's log (checksum mismatch with data
// behind it, a sequence gap, a missing segment) fails that session alone:
// it lands in failed and every other session still recovers. Incomplete
// snapshot temp files are deleted; a corrupt snapshot falls back to the
// previous one when the segments for the longer replay still exist.
func (st *Store) Recover() (sessions []RecoveredSession, failed []SessionError, err error) {
	ids, err := st.sessionDirs()
	if err != nil {
		return nil, nil, err
	}
	for _, id := range ids {
		rec, rerr := st.recoverSession(id)
		if rerr != nil {
			failed = append(failed, SessionError{ID: id, Err: rerr})
			if st.m != nil {
				st.m.recoveryErr.Inc()
			}
			continue
		}
		sessions = append(sessions, rec)
		if st.m != nil {
			st.m.recovered.Inc()
			st.m.replayed.Add(uint64(len(rec.Tail)))
			st.m.tornBytes.Add(uint64(rec.TornBytes))
		}
	}
	return sessions, failed, nil
}

func (st *Store) recoverSession(id string) (RecoveredSession, error) {
	rec := RecoveredSession{ID: id}
	dir := filepath.Join(st.dir, id)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return rec, err
	}
	var segs, snaps []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// An uncommitted snapshot: the rename never happened, so the
			// pre-snapshot recovery path is intact. Drop the debris.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if s, ok := parseSeq(name, "wal-", ".log"); ok {
			segs = append(segs, s)
		}
		if s, ok := parseSeq(name, "snap-", ".snap"); ok {
			snaps = append(snaps, s)
		}
	}
	if len(segs) == 0 && len(snaps) == 0 {
		return rec, fmt.Errorf("no journal segments")
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })

	// Latest decodable snapshot wins. A corrupt newer snapshot falls
	// through to an older one; whether the replay still closes the gap is
	// decided by the sequence-continuity check below (if its segments were
	// already truncated, recovery fails loudly rather than silently
	// serving a shorter history).
	for _, s := range snaps {
		body, ok := st.readSnapshot(filepath.Join(dir, snapName(s)), s)
		if ok {
			rec.Snapshot = body
			rec.SnapshotSeq = s
			break
		}
	}

	expect := rec.SnapshotSeq + 1
	for i, start := range segs {
		path := filepath.Join(dir, segName(start))
		buf, err := os.ReadFile(path)
		if err != nil {
			return rec, err
		}
		recs, clean, derr := decodeRecords(buf)
		if derr != nil {
			return rec, fmt.Errorf("segment %s: %w", segName(start), derr)
		}
		if clean < len(buf) {
			if i != len(segs)-1 {
				// A torn tail can only be the last thing written; a short
				// frame mid-journal means the bytes behind it are gone.
				return rec, fmt.Errorf("segment %s: %w: torn record with later segments present", segName(start), ErrCorrupt)
			}
			if err := os.Truncate(path, int64(clean)); err != nil {
				return rec, fmt.Errorf("segment %s: truncate torn tail: %w", segName(start), err)
			}
			rec.TornBytes = len(buf) - clean
		}
		for _, r := range recs {
			if r.Seq <= rec.SnapshotSeq {
				continue // superseded by the snapshot
			}
			if r.Seq != expect {
				return rec, fmt.Errorf("segment %s: %w: record seq %d, want %d", segName(start), ErrCorrupt, r.Seq, expect)
			}
			r.Body = append([]byte(nil), r.Body...) // detach from the file buffer
			rec.Tail = append(rec.Tail, r)
			expect++
		}
	}
	rec.LastSeq = expect - 1
	// A kill right after a snapshot seal — or a tail torn down to zero
	// bytes — leaves the freshly opened last segment with no records. Its
	// name is exactly the segment Resume will create for the next append,
	// so drop the empty file rather than collide with it.
	if n := len(segs); n > 0 && rec.LastSeq > 0 && segs[n-1] == rec.LastSeq+1 {
		if err := os.Remove(filepath.Join(dir, segName(segs[n-1]))); err != nil {
			return rec, fmt.Errorf("segment %s: remove empty tail segment: %w", segName(segs[n-1]), err)
		}
	}
	if rec.Snapshot == nil {
		if len(rec.Tail) == 0 {
			return rec, fmt.Errorf("empty journal")
		}
		if rec.Tail[0].Kind != KindCreate {
			return rec, fmt.Errorf("%w: first record is %s, want create", ErrCorrupt, rec.Tail[0].Kind)
		}
	}
	return rec, nil
}

// readSnapshot loads and validates one snapshot file: a single clean
// KindSnapshot record whose sequence matches the file name.
func (st *Store) readSnapshot(path string, seq uint64) ([]byte, bool) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	recs, clean, derr := decodeRecords(buf)
	if derr != nil || clean != len(buf) || len(recs) != 1 {
		return nil, false
	}
	r := recs[0]
	if r.Kind != KindSnapshot || r.Seq != seq {
		return nil, false
	}
	return append([]byte(nil), r.Body...), true
}
