package experiments

import (
	"fmt"

	"dyncontract/internal/polyfit"
	"dyncontract/internal/worker"
)

// RunTable3 regenerates Table III: the norm of residual (NoR) of polynomial
// fits of order 1 through 6 to each class's (effort, feedback) points. The
// paper's conclusion — the NoRs are nearly flat across orders, so the
// quadratic is chosen on parsimony — is asserted in the notes.
func RunTable3(p *Pipeline, _ Params) (*Report, error) {
	rep := &Report{
		ID:     "table3",
		Title:  "norm of residual for polynomial effort-function fits",
		Header: []string{"class", "points", "linear", "quad", "cubic", "4th", "5th", "6th", "chosen"},
	}
	classes := []struct {
		name  string
		class worker.Class
	}{
		{"honest", worker.Honest},
		{"nc-malicious", worker.NonCollusiveMalicious},
		{"c-malicious", worker.CollusiveMalicious},
	}
	for _, c := range classes {
		efforts, feedbacks, err := p.ClassPoints(c.class)
		if err != nil {
			return nil, err
		}
		fits, err := polyfit.Sweep(efforts, feedbacks, 1, 6)
		if err != nil {
			return nil, fmt.Errorf("table3: sweep %s: %w", c.name, err)
		}
		row := []string{c.name, fmt.Sprintf("%d", len(efforts))}
		for _, f := range fits {
			row = append(row, f2(f.NoR))
		}
		// The paper selects the quadratic for every class: it is the
		// lowest-order form that is strictly concave (the theory of §IV-C
		// requires ψ″ < 0, ruling the linear fit out) and its NoR is
		// within a whisker of the higher orders.
		row = append(row, "quad")
		rep.Rows = append(rep.Rows, row)

		// Flatness check: quadratic within 5% of the 6th-order NoR.
		quad, last := fits[1].NoR, fits[5].NoR
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s: quadratic NoR within 5%% of 6th-order: %v (paper: NoRs of all fitting curves are close)",
			c.name, quad <= last*1.05))
	}
	return rep, nil
}
