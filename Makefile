# Standard-library Go module; no codegen, no vendoring. `make check` is
# the pre-PR gate (ROADMAP.md).

GO ?= go

.PHONY: build test bench check fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

check:
	./scripts/check.sh
