// Command loadgen hammers a running contractd with a mixed workload of
// round advances and design-only queries, then prints a latency and error
// summary. It drives either closed-loop load (each client issues its next
// request as soon as the previous answers) or open-loop load (-rate fixes
// total request arrivals per second regardless of response times — the
// honest way to measure latency under load).
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8080 [-clients n] [-duration d]
//	        [-requests n] [-rate qps] [-round-every k] [-weights n]
//	        [-scale small|paper] [-seed n] [-per-class n] [-strict]
//	loadgen -addr ... -healthcheck [-healthcheck-timeout d]
//
// With -healthcheck it instead polls /healthz until the server answers 200
// (exit 0) or the timeout passes (exit 1) — a curl-free readiness probe
// for scripts.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"dyncontract/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// result is one request's fate.
type result struct {
	kind    string // "round" or "design"
	status  int    // 0 on transport error
	latency time.Duration
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "http://127.0.0.1:8080", "contractd base URL")
		healthcheck = fs.Bool("healthcheck", false, "poll /healthz until ready, then exit")
		healthTO    = fs.Duration("healthcheck-timeout", 10*time.Second, "healthcheck deadline")
		clients     = fs.Int("clients", 8, "concurrent clients")
		duration    = fs.Duration("duration", 3*time.Second, "run length (ignored when -requests > 0)")
		requests    = fs.Int("requests", 0, "requests per client (0 = run for -duration)")
		rate        = fs.Float64("rate", 0, "open-loop total arrivals per second (0 = closed loop)")
		roundEvery  = fs.Int("round-every", 10, "every k-th request advances a round (0 = designs only)")
		weights     = fs.Int("weights", 4, "distinct feedback weights cycled through design queries")
		scale       = fs.String("scale", "", "create a synthetic session (small or paper) instead of the inline population")
		seed        = fs.Int64("seed", 42, "synthetic session seed")
		perClass    = fs.Int("per-class", 50, "synthetic session agents per class")
		strict      = fs.Bool("strict", false, "fail on any transport error or non-2xx/429 status")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := &http.Client{Timeout: 30 * time.Second}

	if *healthcheck {
		return waitHealthy(client, *addr, *healthTO, out)
	}
	if *weights < 1 {
		*weights = 1
	}

	sessID, err := createSession(client, *addr, *scale, *seed, *perClass)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "loadgen: session %s at %s; %d clients, ", sessID, *addr, *clients)
	if *rate > 0 {
		fmt.Fprintf(out, "open loop at %.0f req/s, ", *rate)
	} else {
		fmt.Fprint(out, "closed loop, ")
	}
	if *requests > 0 {
		fmt.Fprintf(out, "%d requests/client\n", *requests)
	} else {
		fmt.Fprintf(out, "%s\n", *duration)
	}

	// Open loop: a token channel paced by a global ticker; clients consume
	// tokens. A full channel means the fleet cannot keep up — those
	// arrivals are counted, not silently absorbed into the pacing.
	var tokens chan struct{}
	var overload int64
	var overloadMu sync.Mutex
	stop := make(chan struct{})
	if *rate > 0 {
		tokens = make(chan struct{}, (*clients)*4)
		interval := time.Duration(float64(time.Second) / *rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					select {
					case tokens <- struct{}{}:
					default:
						overloadMu.Lock()
						overload++
						overloadMu.Unlock()
					}
				}
			}
		}()
	}

	start := time.Now()
	deadline := start.Add(*duration)
	resCh := make(chan []result, *clients)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var res []result
			for i := 0; ; i++ {
				if *requests > 0 {
					if i >= *requests {
						break
					}
				} else if time.Now().After(deadline) {
					break
				}
				if tokens != nil {
					select {
					case <-tokens:
					case <-time.After(time.Until(deadline)):
						break
					}
					if *requests == 0 && time.Now().After(deadline) {
						break
					}
				}
				n := c*1_000_000 + i
				if *roundEvery > 0 && n%*roundEvery == 0 {
					res = append(res, doJSON(client, "round", *addr+"/v1/sessions/"+sessID+"/rounds", server.AdvanceRoundRequest{}))
				} else {
					w := 0.5 + 0.25*float64(n%*weights)
					q := server.DesignQueryRequest{Agent: &server.AgentSpec{
						ID:    "probe",
						Class: "honest",
						Psi:   server.PsiSpec{R2: -0.25, R1: 2},
						Beta:  1, Weight: w,
					}}
					res = append(res, doJSON(client, "design", *addr+"/v1/sessions/"+sessID+"/design", q))
				}
			}
			resCh <- res
		}(c)
	}
	wg.Wait()
	close(stop)
	close(resCh)
	elapsed := time.Since(start)

	var all []result
	for res := range resCh {
		all = append(all, res...)
	}
	return summarize(out, all, elapsed, overload, *strict)
}

// waitHealthy polls /healthz until 200 or the deadline.
func waitHealthy(client *http.Client, addr string, timeout time.Duration, out io.Writer) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				fmt.Fprintln(out, "loadgen: server healthy")
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("healthcheck: %w", err)
			}
			return fmt.Errorf("healthcheck: server not healthy within %s", timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// createSession mints the session the load runs against.
func createSession(client *http.Client, addr, scale string, seed int64, perClass int) (string, error) {
	var req server.CreateSessionRequest
	if scale != "" {
		req = server.CreateSessionRequest{Scale: scale, Seed: seed, PerClass: perClass}
	} else {
		psi := server.PsiSpec{R2: -0.25, R1: 2}
		req = server.CreateSessionRequest{
			Agents: []server.AgentSpec{
				{ID: "h1", Class: "honest", Psi: psi, Beta: 1, Weight: 1},
				{ID: "h2", Class: "honest", Psi: psi, Beta: 1.2, Weight: 1},
				{ID: "m1", Class: "malicious", Psi: psi, Beta: 1, Omega: 0.5, Weight: 0.8, Malice: 0.9},
				{ID: "c1", Class: "community", Psi: psi, Beta: 1, Omega: 0.3, Size: 3, Weight: 0.5},
			},
			M: 10, Delta: 0.2, Mu: 1,
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	resp, err := client.Post(addr+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", fmt.Errorf("create session: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("create session: status %d: %s", resp.StatusCode, raw)
	}
	var created server.CreateSessionResponse
	if err := json.Unmarshal(raw, &created); err != nil {
		return "", fmt.Errorf("create session: decode %q: %w", raw, err)
	}
	return created.ID, nil
}

// doJSON issues one POST and records its fate; bodies are drained so the
// client reuses connections.
func doJSON(client *http.Client, kind, url string, payload any) result {
	body, err := json.Marshal(payload)
	if err != nil {
		return result{kind: kind}
	}
	start := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	lat := time.Since(start)
	if err != nil {
		return result{kind: kind, latency: lat}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return result{kind: kind, status: resp.StatusCode, latency: lat}
}

// summarize prints counts and latency percentiles, and enforces -strict.
func summarize(out io.Writer, all []result, elapsed time.Duration, overload int64, strict bool) error {
	type agg struct{ ok, rejected, errors int }
	byKind := map[string]*agg{"round": {}, "design": {}}
	var lats []time.Duration
	for _, r := range all {
		a := byKind[r.kind]
		switch {
		case r.status >= 200 && r.status < 300:
			a.ok++
			lats = append(lats, r.latency)
		case r.status == http.StatusTooManyRequests:
			a.rejected++
		default:
			a.errors++
		}
	}
	fmt.Fprintf(out, "loadgen: %d requests in %.2fs (%.1f req/s)\n",
		len(all), elapsed.Seconds(), float64(len(all))/elapsed.Seconds())
	for _, kind := range []string{"round", "design"} {
		a := byKind[kind]
		fmt.Fprintf(out, "  %-7s %6d ok  %5d rejected (429)  %4d errors\n", kind+"s:", a.ok, a.rejected, a.errors)
	}
	if overload > 0 {
		fmt.Fprintf(out, "  open loop: %d arrivals dropped (clients saturated)\n", overload)
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(q float64) time.Duration {
			i := int(q * float64(len(lats)-1))
			return lats[i]
		}
		fmt.Fprintf(out, "  latency: p50 %s  p95 %s  p99 %s  max %s\n",
			pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
			pct(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	}
	bad := byKind["round"].errors + byKind["design"].errors
	if strict && bad > 0 {
		return fmt.Errorf("strict: %d requests failed with transport errors or non-2xx/429 statuses", bad)
	}
	if len(all) == 0 {
		return fmt.Errorf("no requests issued")
	}
	return nil
}
