package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"dyncontract/internal/effort"
	"dyncontract/internal/engine"
	"dyncontract/internal/journal"
	"dyncontract/internal/worker"
)

// errNoJournal answers durability endpoints on a server without a journal.
var errNoJournal = errors.New("server: journaling disabled")

// errSnapshotBusy rejects a snapshot while another is still committing.
var errSnapshotBusy = errors.New("server: snapshot already in progress")

// snapshotVersion versions the snapshot body. Bump on incompatible
// changes; recovery refuses versions it does not know.
const snapshotVersion = 1

// sessionSnapshot is the body of a journal.KindSnapshot record: the full
// restorable state of one session. Population parameters are stored
// verbatim (post-default), rounds as the audit wire form — Go's float64
// JSON encoding is shortest-exact, so the ledger round-trips bit for bit.
type sessionSnapshot struct {
	Version   int         `json:"version"`
	Name      string      `json:"name,omitempty"`
	Policy    string      `json:"policy,omitempty"`
	Threshold float64     `json:"threshold,omitempty"`
	Amount    float64     `json:"amount,omitempty"`
	Shards    int         `json:"shards,omitempty"`
	M         int         `json:"m"`
	Delta     float64     `json:"delta"`
	Mu        float64     `json:"mu"`
	Agents    []AgentSpec `json:"agents"`
	Stepped   int         `json:"stepped"`
	Rounds    []RoundJSON `json:"rounds"`
}

// journalCmd appends one command record ahead of execution — the log is
// always a superset of the executed history. A failed append refuses the
// command: executing it would create state the journal cannot replay.
// Runs on the writer goroutine. The second return reports whether the
// command may execute.
func (s *session) journalCmd(kind journal.Kind, v any) (cmdReply, bool) {
	if s.jw == nil {
		return cmdReply{}, true
	}
	body, err := json.Marshal(v)
	if err == nil {
		_, err = s.jw.Append(kind, body)
	}
	if err != nil {
		if lg := s.srv.logger; lg != nil {
			lg.Error("journal append failed", "session", s.id, "kind", kind.String(), "err", err)
		}
		return cmdReply{err: fmt.Errorf("journal append: %w", err), code: http.StatusInternalServerError}, false
	}
	return cmdReply{}, true
}

// afterCommand closes out one command on the writer goroutine: a failed
// execution gets an abort record (so replay skips it), a successful one
// counts toward the auto-snapshot cadence, and an idle queue flushes the
// write-behind buffer — in buffered mode that is the moment served
// responses become durable against process death.
func (s *session) afterCommand(journaled bool, execErr error) {
	if s.jw == nil {
		return
	}
	if execErr != nil {
		if journaled {
			if _, err := s.jw.Append(journal.KindAbort, nil); err != nil && s.srv.logger != nil {
				s.srv.logger.Error("journal abort append failed", "session", s.id, "err", err)
			}
		}
	} else {
		s.sinceSnap++
		if every := s.srv.cfg.SnapshotEvery; every > 0 && s.sinceSnap >= every && !s.snapBusy.Load() {
			s.startSnapshot(nil)
		}
	}
	if len(s.cmds) == 0 {
		if err := s.jw.Flush(); err != nil && s.srv.logger != nil {
			s.srv.logger.Error("journal flush failed", "session", s.id, "err", err)
		}
	}
}

// startSnapshot runs the snapshot protocol from the writer goroutine:
// seal the segment at the current sequence, capture the session state
// in-line (no command can be mid-flight here), then serialize, fsync,
// and truncate on a background goroutine so rounds keep flowing. reply
// is nil for auto-snapshots, which report failures to the log instead.
func (s *session) startSnapshot(reply chan cmdReply) {
	fail := func(err error, code int) {
		if reply != nil {
			reply <- cmdReply{err: err, code: code}
		} else if s.srv.logger != nil {
			s.srv.logger.Error("snapshot failed", "session", s.id, "err", err)
		}
	}
	if s.jw == nil {
		fail(errNoJournal, http.StatusConflict)
		return
	}
	if !s.snapBusy.CompareAndSwap(false, true) {
		fail(errSnapshotBusy, http.StatusConflict)
		return
	}
	seq, err := s.jw.BeginSnapshot()
	if err != nil {
		s.snapBusy.Store(false)
		fail(err, http.StatusInternalServerError)
		return
	}
	snap, ledger := s.captureState()
	s.sinceSnap = 0
	go func() {
		defer s.snapBusy.Store(false)
		snap.Rounds = make([]RoundJSON, len(ledger))
		for i, r := range ledger {
			snap.Rounds[i] = roundJSON(r, true)
		}
		body, err := json.Marshal(snap)
		if err == nil {
			err = s.jw.CommitSnapshot(seq, body)
		}
		if err != nil {
			fail(err, http.StatusInternalServerError)
			return
		}
		if reply != nil {
			reply <- cmdReply{snap: SnapshotResponse{Seq: seq, Bytes: len(body), Rounds: len(snap.Rounds)}}
		}
	}()
}

// captureState snapshots the session's restorable state on the writer
// goroutine. The ledger slice is shared, not copied: completed rounds
// are immutable and appends only ever extend past the captured length,
// so the background commit can serialize it without a lock.
func (s *session) captureState() (*sessionSnapshot, []engine.Round) {
	s.mu.Lock()
	agents := make([]AgentSpec, 0, len(s.pop.Agents))
	for _, a := range s.pop.Agents {
		agents = append(agents, agentSpecOf(a, s.pop.Weights[a.ID], s.pop.MaliceProb[a.ID]))
	}
	m, delta, mu := s.pop.Part.M, s.pop.Part.Delta, s.pop.Mu
	s.mu.Unlock()
	s.ledgerMu.RLock()
	ledger := s.ledger
	s.ledgerMu.RUnlock()
	return &sessionSnapshot{
		Version:   snapshotVersion,
		Name:      s.req.Name,
		Policy:    s.req.Policy,
		Threshold: s.req.Threshold,
		Amount:    s.req.Amount,
		Shards:    s.req.Shards,
		M:         m,
		Delta:     delta,
		Mu:        mu,
		Agents:    agents,
		Stepped:   s.eng.Stepped(),
	}, ledger
}

// agentSpecOf inverts AgentSpec.Agent. Size is stored explicitly (agents
// carry the resolved >= 1 value, which Agent keeps), and a zero malice
// stays zero — popFromSnapshot then skips the map entry, matching
// buildExplicit; an entry's presence with value zero is unobservable.
func agentSpecOf(a *worker.Agent, weight, malice float64) AgentSpec {
	return AgentSpec{
		ID:          a.ID,
		Class:       classString(a.Class),
		Psi:         PsiSpec{R2: a.Psi.R2, R1: a.Psi.R1, R0: a.Psi.R0},
		Beta:        a.Beta,
		Omega:       a.Omega,
		Size:        a.Size,
		Reservation: a.Reservation,
		Weight:      weight,
		Malice:      malice,
	}
}

// popFromSnapshot rebuilds the population with the snapshot's verbatim
// values. It must not ride buildExplicit: the wire decoder maps m=0 and
// mu=0 to defaults, and a snapshot stores the real post-default values.
func popFromSnapshot(snap *sessionSnapshot) (*engine.Population, error) {
	part, err := effort.NewPartition(snap.M, snap.Delta)
	if err != nil {
		return nil, fmt.Errorf("snapshot partition: %w", err)
	}
	pop := &engine.Population{
		Weights:    make(map[string]float64, len(snap.Agents)),
		MaliceProb: make(map[string]float64),
		Part:       part,
		Mu:         snap.Mu,
	}
	for i := range snap.Agents {
		spec := &snap.Agents[i]
		a, err := spec.Agent()
		if err != nil {
			return nil, fmt.Errorf("snapshot agent %q: %w", spec.ID, err)
		}
		pop.Agents = append(pop.Agents, a)
		pop.Weights[a.ID] = spec.Weight
		if spec.Malice != 0 {
			pop.MaliceProb[a.ID] = spec.Malice
		}
	}
	if err := pop.Validate(); err != nil {
		return nil, fmt.Errorf("snapshot population: %w", err)
	}
	return pop, nil
}

// outcomeFromJSON inverts outcomeJSON.
func outcomeFromJSON(oj OutcomeJSON) (engine.AgentOutcome, error) {
	cls, err := parseClass(oj.Class)
	if err != nil {
		return engine.AgentOutcome{}, err
	}
	return engine.AgentOutcome{
		AgentID:      oj.AgentID,
		Class:        cls,
		Size:         oj.Size,
		Excluded:     oj.Excluded,
		Declined:     oj.Declined,
		Effort:       oj.Effort,
		Feedback:     oj.Feedback,
		Compensation: oj.Compensation,
		Weight:       oj.Weight,
	}, nil
}

// roundFromJSON inverts roundJSON(r, true): the derived counters are
// dropped (roundJSON recomputes them) and every stored field is verbatim.
func roundFromJSON(rj RoundJSON) (engine.Round, error) {
	r := engine.Round{
		Index:   rj.Round,
		Benefit: rj.Benefit,
		Cost:    rj.Cost,
		Utility: rj.Utility,
	}
	for _, oj := range rj.Outcomes {
		oc, err := outcomeFromJSON(oj)
		if err != nil {
			return engine.Round{}, err
		}
		r.Outcomes = append(r.Outcomes, oc)
	}
	return r, nil
}

// openJournal starts a brand-new session's write-ahead log and appends
// its create record. The record reaches the OS even in buffered mode, so
// a session that crashes before serving a single command still recovers.
func (s *Server) openJournal(sess *session, req *CreateSessionRequest) error {
	jw, err := s.cfg.Journal.Create(sess.id)
	if err != nil {
		return err
	}
	body, err := json.Marshal(req)
	if err == nil {
		_, err = jw.Append(journal.KindCreate, body)
	}
	if err == nil {
		err = jw.Flush()
	}
	if err != nil {
		jw.Close()
		return err
	}
	sess.jw = jw
	return nil
}

// RecoveryStats summarizes one Recover pass.
type RecoveryStats struct {
	// Sessions is the number of sessions restored and running again.
	Sessions int
	// Replayed is the total command records re-executed past snapshots.
	Replayed int
	// Failed is the number of sessions whose journal could not be
	// recovered; each failure is logged and leaves its files in place.
	Failed int
}

// Recover restores every journaled session from Config.Journal: snapshot
// (when one exists) plus deterministic replay of the command tail, in
// the exact order the original writer loop executed. Ledgers come back
// byte-identical to an uninterrupted run over the journaled prefix. A
// session whose journal is corrupt fails alone — its files stay on disk
// for forensics, its ID is retired, and every other session recovers.
// Call it after New and before serving traffic.
func (s *Server) Recover() (RecoveryStats, error) {
	var stats RecoveryStats
	if s.cfg.Journal == nil {
		return stats, nil
	}
	recs, failed, err := s.cfg.Journal.Recover()
	if err != nil {
		return stats, err
	}
	for _, f := range failed {
		stats.Failed++
		s.retireID(f.ID)
		if s.logger != nil {
			s.logger.Error("session recovery failed", "session", f.ID, "err", f.Err)
		}
	}
	for _, rec := range recs {
		s.retireID(rec.ID)
		sess, err := s.restoreSession(rec)
		if err != nil {
			stats.Failed++
			if s.logger != nil {
				s.logger.Error("session recovery failed", "session", rec.ID, "err", err)
			}
			continue
		}
		s.mu.Lock()
		s.sessions[rec.ID] = sess
		s.mu.Unlock()
		s.metrics.addSessions(1)
		sess.start()
		stats.Sessions++
		stats.Replayed += sess.replayed
		if s.logger != nil {
			s.logger.Info("session recovered",
				"session", rec.ID,
				"rounds", len(sess.ledger),
				"replayed", sess.replayed,
				"snapshot_seq", rec.SnapshotSeq,
				"last_seq", rec.LastSeq,
				"torn_bytes", rec.TornBytes,
			)
		}
	}
	return stats, nil
}

// restoreSession rebuilds one session from its journal: base state from
// the snapshot (or the create record), then replay. Replay re-executes
// each command through the same runRound/runDrift the live loop uses —
// the engine is deterministic, so the rebuilt ledger is the ledger the
// crashed process had. A command that fails on replay is skipped with a
// warning: it either failed identically live (its abort record was lost
// with the tail) or never finished executing; both left no state.
func (s *Server) restoreSession(rec journal.RecoveredSession) (*session, error) {
	tail := rec.Tail
	var sess *session
	if rec.Snapshot != nil {
		var snap sessionSnapshot
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		var err error
		if sess, err = s.sessionFromSnapshot(&snap); err != nil {
			return nil, err
		}
	} else {
		var req CreateSessionRequest
		if err := json.Unmarshal(tail[0].Body, &req); err != nil {
			return nil, fmt.Errorf("create record: %w", err)
		}
		if err := req.Validate(); err != nil {
			return nil, fmt.Errorf("create record: %w", err)
		}
		var err error
		if sess, err = s.buildSession(&req); err != nil {
			return nil, err
		}
		tail = tail[1:]
	}
	sess.id = rec.ID
	for i, r := range tail {
		if r.Kind == journal.KindAbort {
			continue
		}
		if i+1 < len(tail) && tail[i+1].Kind == journal.KindAbort {
			continue // executed live, failed, left no state
		}
		var rep cmdReply
		switch r.Kind {
		case journal.KindRound:
			var req AdvanceRoundRequest
			if err := json.Unmarshal(r.Body, &req); err != nil {
				return nil, fmt.Errorf("record %d (%s): %w", r.Seq, r.Kind, err)
			}
			rep = sess.runRound(s.baseCtx, req)
		case journal.KindDrift:
			var req DriftRequest
			if err := json.Unmarshal(r.Body, &req); err != nil {
				return nil, fmt.Errorf("record %d (%s): %w", r.Seq, r.Kind, err)
			}
			rep = sess.runDrift(&req)
		default:
			return nil, fmt.Errorf("record %d: unexpected %s record in tail", r.Seq, r.Kind)
		}
		if rep.err != nil && s.logger != nil {
			s.logger.Warn("replayed command failed",
				"session", rec.ID, "seq", r.Seq, "kind", r.Kind.String(), "err", rep.err)
		}
		sess.replayed++
	}
	jw, err := s.cfg.Journal.Resume(rec.ID, rec.LastSeq)
	if err != nil {
		return nil, err
	}
	sess.jw = jw
	sess.recovered = true
	return sess, nil
}

// sessionFromSnapshot rebuilds a session's base state from a snapshot
// body: verbatim population, the original policy knobs (buildPolicy
// re-applies the same defaults it applied at creation), the captured
// ledger, and the engine's round counter.
func (s *Server) sessionFromSnapshot(snap *sessionSnapshot) (*session, error) {
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("snapshot version %d (supported: %d)", snap.Version, snapshotVersion)
	}
	pop, err := popFromSnapshot(snap)
	if err != nil {
		return nil, err
	}
	req := &CreateSessionRequest{
		Name:      snap.Name,
		Agents:    snap.Agents,
		M:         snap.M,
		Delta:     snap.Delta,
		Mu:        snap.Mu,
		Policy:    snap.Policy,
		Threshold: snap.Threshold,
		Amount:    snap.Amount,
		Shards:    snap.Shards,
	}
	pol, polName, err := buildPolicy(req)
	if err != nil {
		return nil, err
	}
	sess, err := s.assembleSession(req, pop, pol, polName)
	if err != nil {
		return nil, err
	}
	for _, rj := range snap.Rounds {
		r, err := roundFromJSON(rj)
		if err != nil {
			return nil, fmt.Errorf("snapshot round %d: %w", rj.Round, err)
		}
		sess.ledger = append(sess.ledger, r)
	}
	sess.eng.SetStepped(snap.Stepped)
	return sess, nil
}

// retireID keeps freshly minted session IDs ahead of journaled history,
// recovered and failed alike — a new session must never collide with an
// existing journal directory.
func (s *Server) retireID(id string) {
	num, ok := strings.CutPrefix(id, "s")
	if !ok {
		return
	}
	n, err := strconv.Atoi(num)
	if err != nil {
		return
	}
	s.mu.Lock()
	if n > s.nextID {
		s.nextID = n
	}
	s.mu.Unlock()
}

// handleSnapshot serves POST /v1/sessions/{id}/snapshot: force a
// snapshot now, through the writer loop so it lands on a command
// boundary.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if sess.jw == nil {
		writeError(w, http.StatusConflict, errNoJournal)
		return
	}
	release, code, err := sess.admit()
	if err != nil {
		writeError(w, code, err)
		return
	}
	defer release()
	cmd := command{ctx: r.Context(), kind: cmdSnapshot, reply: make(chan cmdReply, 1)}
	if code, err := sess.submit(cmd); err != nil {
		writeError(w, code, err)
		return
	}
	rep := <-cmd.reply
	if rep.err != nil {
		writeError(w, rep.code, rep.err)
		return
	}
	writeJSON(w, http.StatusOK, rep.snap)
}
