// Budgetedcampaign: running a campaign under a payment budget and worker
// outside options.
//
// Run with:
//
//	go run ./examples/budgetedcampaign
//
// Two practical constraints the paper's related work motivates are layered
// onto the dynamic contract: a per-round compensation budget (the
// requester cannot spend more than B, solved as a multiple-choice knapsack
// over each worker's candidate-contract menu) and worker reservation
// utilities (workers with outside options decline offers that don't clear
// them; the design lifts compensation minimally to retain who is worth
// retaining).
package main

import (
	"context"
	"fmt"
	"log"

	"dyncontract/internal/budget"
	"dyncontract/internal/experiments"
	"dyncontract/internal/platform"
	"dyncontract/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("budgetedcampaign: ")

	pipe, err := experiments.BuildPipeline(synth.SmallScale(77))
	if err != nil {
		log.Fatalf("pipeline: %v", err)
	}
	params := experiments.DefaultParams()
	ctx := context.Background()

	// Reference: what the unconstrained dynamic policy spends and earns.
	pop, err := pipe.BuildPopulation(params, 60)
	if err != nil {
		log.Fatalf("population: %v", err)
	}
	free, err := platform.Simulate(ctx, pop, &platform.DynamicPolicy{}, 1, platform.Options{})
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}
	fmt.Printf("unconstrained: benefit %.1f at cost %.1f (%d agents)\n\n",
		free[0].Benefit, free[0].Cost, len(pop.Agents))

	fmt.Println("budget sweep (greedy MCKP over candidate menus):")
	fmt.Printf("  %-10s %12s %12s %14s\n", "budget", "benefit", "cost", "contracted")
	for _, frac := range []float64{0.1, 0.25, 0.5, 1.0} {
		b := frac * free[0].Cost
		ledger, err := platform.Simulate(ctx, pop, &budget.Policy{Budget: b}, 1, platform.Options{})
		if err != nil {
			log.Fatalf("budget %v: %v", b, err)
		}
		contracted := 0
		for _, oc := range ledger[0].Outcomes {
			if !oc.Excluded && !oc.Declined {
				contracted++
			}
		}
		fmt.Printf("  %-10.1f %12.1f %12.1f %10d/%d\n",
			b, ledger[0].Benefit, ledger[0].Cost, contracted, len(pop.Agents))
	}

	fmt.Println("\nnow give every worker an outside option u0 = 2:")
	pop2, err := pipe.BuildPopulation(params, 60)
	if err != nil {
		log.Fatalf("population: %v", err)
	}
	for _, a := range pop2.Agents {
		a.Reservation = 2
	}
	withIR, err := platform.Simulate(ctx, pop2, &platform.DynamicPolicy{}, 1, platform.Options{})
	if err != nil {
		log.Fatalf("simulate IR: %v", err)
	}
	declined := 0
	for _, oc := range withIR[0].Outcomes {
		if oc.Declined {
			declined++
		}
	}
	fmt.Printf("  dynamic contract with IR lift: %d declined, benefit %.1f, cost %.1f\n",
		declined, withIR[0].Benefit, withIR[0].Cost)
	fmt.Printf("  (vs unconstrained cost %.1f — the delta is the retention premium)\n",
		free[0].Cost)
}
