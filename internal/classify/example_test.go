package classify_test

import (
	"fmt"
	"log"
	"math/rand"

	"dyncontract/internal/classify"
	"dyncontract/internal/effort"
	"dyncontract/internal/worker"
)

// Example runs the classification extension end to end: design contracts
// on gold-question feedback, let labelers best-respond, and aggregate by
// accuracy-weighted majority vote.
func Example() {
	part, err := effort.NewPartition(10, 1)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	task, err := classify.NewTask(rng, 200, 40, 0.5, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	labelers := []classify.Labeler{
		{ID: "ann", Class: worker.Honest, Curve: classify.DefaultCurve(), Beta: 0.2},
		{ID: "bob", Class: worker.Honest, Curve: classify.DefaultCurve(), Beta: 0.2},
		{ID: "cal", Class: worker.Honest, Curve: classify.DefaultCurve(), Beta: 0.2},
	}
	contracts, err := classify.DesignContracts(labelers, task, part, 5)
	if err != nil {
		log.Fatal(err)
	}
	res, err := classify.RunBatch(rng, labelers, task, contracts, part)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("labelers exert effort: %v\n", res.PerWorker[0].Effort > 5)
	fmt.Printf("aggregate beats any individual: %v\n",
		res.AggregateAccuracy > res.PerWorker[0].Accuracy)
	fmt.Printf("positive requester utility: %v\n", res.RequesterUtility > 0)
	// Output:
	// labelers exert effort: true
	// aggregate beats any individual: true
	// positive requester utility: true
}
