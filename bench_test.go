// Package dyncontract's root benchmark harness: one benchmark per table
// and figure of the paper's evaluation (see DESIGN.md §4 for the index),
// plus micro-benchmarks for the hot paths (contract design, best response,
// parallel decomposition).
//
// Run everything with:
//
//	go test -bench=. -benchmem .
package dyncontract

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"dyncontract/internal/baseline"
	"dyncontract/internal/cluster"
	"dyncontract/internal/contract"
	"dyncontract/internal/core"
	"dyncontract/internal/effort"
	"dyncontract/internal/engine"
	"dyncontract/internal/experiments"
	"dyncontract/internal/platform"
	"dyncontract/internal/polyfit"
	"dyncontract/internal/solver"
	"dyncontract/internal/synth"
	"dyncontract/internal/worker"
)

var (
	benchOnce sync.Once
	benchPipe *experiments.Pipeline
	benchErr  error
)

func benchPipeline(b *testing.B) *experiments.Pipeline {
	b.Helper()
	benchOnce.Do(func() {
		benchPipe, benchErr = experiments.BuildPipeline(synth.SmallScale(123))
	})
	if benchErr != nil {
		b.Fatalf("pipeline: %v", benchErr)
	}
	return benchPipe
}

func benchAgent(b *testing.B) (*worker.Agent, core.Config) {
	b.Helper()
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		b.Fatal(err)
	}
	part, err := effort.NewPartition(20, 2)
	if err != nil {
		b.Fatal(err)
	}
	a, err := worker.NewHonest("bench", psi, 1, part.YMax())
	if err != nil {
		b.Fatal(err)
	}
	return a, core.Config{Part: part, Mu: 1, W: 1}
}

// BenchmarkFig6Bounds regenerates Fig. 6's data: designs and bounds across
// the m sweep for a single honest worker.
func BenchmarkFig6Bounds(b *testing.B) {
	p := benchPipeline(b)
	params := experiments.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig6(p, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Clustering regenerates Table II: collusive community
// detection over the malicious worker set.
func BenchmarkTable2Clustering(b *testing.B) {
	p := benchPipeline(b)
	ids := p.Trace.MaliciousWorkerIDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comms := cluster.FindCommunities(p.Trace, ids)
		if len(comms) == 0 {
			b.Fatal("no communities found")
		}
	}
}

// BenchmarkFig7ClassProfiles regenerates Fig. 7: per-class effort and
// feedback aggregates.
func BenchmarkFig7ClassProfiles(b *testing.B) {
	p := benchPipeline(b)
	params := experiments.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig7(p, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Fitting regenerates Table III: the degree-1..6 polynomial
// NoR sweep on the honest class's point cloud.
func BenchmarkTable3Fitting(b *testing.B) {
	p := benchPipeline(b)
	efforts, feedbacks, err := p.ClassPoints(worker.Honest)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := polyfit.Sweep(efforts, feedbacks, 1, 6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8aCompensation regenerates Fig. 8(a): per-worker contract
// design with individual effort functions for m = 10, 20, 40.
func BenchmarkFig8aCompensation(b *testing.B) {
	p := benchPipeline(b)
	params := experiments.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8a(p, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8bCompensationByClass regenerates Fig. 8(b): class-level
// compensation statistics across μ ∈ {1.0, 0.9, 0.8}.
func BenchmarkFig8bCompensationByClass(b *testing.B) {
	p := benchPipeline(b)
	params := experiments.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8b(p, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8cVsBaseline regenerates Fig. 8(c): the multi-round
// marketplace under the dynamic policy vs the exclusion baseline.
func BenchmarkFig8cVsBaseline(b *testing.B) {
	p := benchPipeline(b)
	params := experiments.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8c(p, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGridSearch runs the near-optimality ablation: designed
// contract vs brute-force grid optimum.
func BenchmarkAblationGridSearch(b *testing.B) {
	p := benchPipeline(b)
	params := experiments.DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblation(p, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesignSingle measures one §IV-C contract design (m = 20).
func BenchmarkDesignSingle(b *testing.B) {
	a, cfg := benchAgent(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Design(a, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBestResponse measures one exact worker best-response
// computation against a designed contract.
func BenchmarkBestResponse(b *testing.B) {
	a, cfg := benchAgent(b)
	res, err := core.Design(a, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.BestResponse(res.Contract, cfg.Part); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveAllParallel measures the decomposed solver fanning 256
// subproblems across the pool — the §IV-B parallel decomposition claim.
func BenchmarkSolveAllParallel(b *testing.B) {
	a, cfg := benchAgent(b)
	subs := make([]solver.Subproblem, 256)
	for i := range subs {
		subs[i] = solver.Subproblem{Agent: a, Config: cfg}
	}
	ctx := context.Background()
	for _, par := range []struct {
		name string
		n    int
	}{{"sequential", 1}, {"parallel", 0}} {
		b.Run(par.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				outcomes, err := solver.SolveAll(ctx, subs, solver.Options{Parallelism: par.n})
				if err != nil {
					b.Fatal(err)
				}
				if len(solver.Results(outcomes)) != len(subs) {
					b.Fatal("lost results")
				}
			}
		})
	}
}

// BenchmarkPlatformRound measures one full marketplace round (design +
// best responses + accounting) for ~200 agents.
func BenchmarkPlatformRound(b *testing.B) {
	p := benchPipeline(b)
	params := experiments.DefaultParams()
	pop, err := p.BuildPopulation(params, 200)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := platform.Simulate(ctx, pop, &platform.DynamicPolicy{}, 1, platform.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExclusionBaselineRound measures the baseline policy's round for
// comparison with BenchmarkPlatformRound.
func BenchmarkExclusionBaselineRound(b *testing.B) {
	p := benchPipeline(b)
	params := experiments.DefaultParams()
	pop, err := p.BuildPopulation(params, 200)
	if err != nil {
		b.Fatal(err)
	}
	pol := &baseline.ExcludeMalicious{Threshold: 0.5}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := platform.Simulate(ctx, pop, pol, 1, platform.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthGeneration measures small-scale trace synthesis.
func BenchmarkSynthGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Generate(synth.SmallScale(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// benchArchetypePopulation builds n agents drawn from exactly three
// archetypes (honest, non-collusive malicious, collusive community), each
// archetype sharing cost parameters and requester weight — so the whole
// population collapses to three design fingerprints.
func benchArchetypePopulation(b *testing.B, n int) *platform.Population {
	b.Helper()
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		b.Fatal(err)
	}
	part, err := effort.NewPartition(8, 5)
	if err != nil {
		b.Fatal(err)
	}
	pop := &platform.Population{
		Weights:    make(map[string]float64, n),
		MaliceProb: make(map[string]float64, n),
		Part:       part,
		Mu:         1,
	}
	for i := 0; i < n; i++ {
		var a *worker.Agent
		var w float64
		switch i % 3 {
		case 0:
			a, err = worker.NewHonest(fmt.Sprintf("h%05d", i), psi, 1, part.YMax())
			w = 1
		case 1:
			a, err = worker.NewMalicious(fmt.Sprintf("m%05d", i), psi, 1, 0.5, part.YMax())
			w = 0.8
		default:
			a, err = worker.NewCommunity(fmt.Sprintf("c%05d", i), psi, 1, 0.5, 3, part.YMax())
			w = 0.5
		}
		if err != nil {
			b.Fatal(err)
		}
		pop.Agents = append(pop.Agents, a)
		pop.Weights[a.ID] = w
		pop.MaliceProb[a.ID] = 0.1
	}
	return pop
}

// perAgentPolicy replicates the pre-engine design path: one solver
// subproblem per agent, no fingerprint dedup, no cache. It is the baseline
// the engine's Designer is measured against.
type perAgentPolicy struct{}

func (perAgentPolicy) Name() string { return "per-agent-design" }

func (perAgentPolicy) Contracts(ctx context.Context, pop *platform.Population) (map[string]*contract.PiecewiseLinear, error) {
	subs := make([]solver.Subproblem, len(pop.Agents))
	for i, a := range pop.Agents {
		subs[i] = solver.Subproblem{Agent: a, Config: core.Config{Part: pop.Part, Mu: pop.Mu, W: pop.Weights[a.ID]}}
	}
	outs, err := solver.SolveAll(ctx, subs, solver.Options{})
	if err != nil {
		return nil, err
	}
	contracts := make(map[string]*contract.PiecewiseLinear, len(subs))
	for _, o := range outs {
		contracts[subs[o.Index].Agent.ID] = o.Result.Contract
	}
	return contracts, nil
}

// BenchmarkEngineRound1k measures one engine round over a 1000-agent,
// 3-archetype population in three design regimes:
//
//   - nodedup: the pre-engine baseline, 1000 core.Design calls per round;
//   - dedup-cold: fingerprint dedup with a fresh cache per round, 3 calls;
//   - dedup-warm: a warmed cross-round cache, 0 calls.
func BenchmarkEngineRound1k(b *testing.B) {
	pop := benchArchetypePopulation(b, 1000)
	ctx := context.Background()

	runRound := func(b *testing.B, cfg engine.Config) {
		b.Helper()
		cfg.Rounds = 1
		if _, err := engine.RunLedger(ctx, pop, cfg); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("nodedup", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runRound(b, engine.Config{Policy: perAgentPolicy{}})
		}
	})
	b.Run("dedup-cold", func(b *testing.B) {
		// Cold DESIGN, warm infrastructure: a persistent engine (views,
		// buffers, memo all retained) whose design cache is invalidated
		// before every round, so each iteration pays exactly 3 batched
		// cold solves plus the round's respond/settle floor. This is the
		// drifted-fingerprint shape churn and bandit policies produce —
		// engine construction is deliberately off the clock.
		cache := engine.NewCache()
		eng, err := engine.New(pop, engine.Config{
			Policy: &platform.DynamicPolicy{},
			Rounds: 1,
			Cache:  cache,
			Memo:   engine.NewRespondMemo(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Run(ctx); err != nil { // warm views and buffers
			b.Fatal(err)
		}
		before := cache.Stats().Misses
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cache.Invalidate()
			if err := eng.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if s := cache.Stats(); s.Misses-before != uint64(3*b.N) {
			b.Fatalf("cold rounds performed %d Design calls, want %d", s.Misses-before, 3*b.N)
		}
	})
	b.Run("dedup-warm", func(b *testing.B) {
		cache := engine.NewCache()
		pol := &platform.DynamicPolicy{}
		runRound(b, engine.Config{Policy: pol, Cache: cache}) // warm the cache
		warmed := cache.Stats().Misses
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runRound(b, engine.Config{Policy: pol, Cache: cache})
		}
		b.StopTimer()
		if s := cache.Stats(); s.Misses != warmed {
			b.Fatalf("warm rounds performed %d Design calls, want 0", s.Misses-warmed)
		}
	})
	b.Run("respond-memo-cold", func(b *testing.B) {
		// Design cache and respond memo both cold each iteration: 3
		// core.Design calls and 3 BestResponse calls per round.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			memo := engine.NewRespondMemo()
			runRound(b, engine.Config{Policy: &platform.DynamicPolicy{}, Cache: engine.NewCache(), Memo: memo})
			if s := memo.Stats(); s.Misses != 3 {
				b.Fatalf("cold round BestResponse calls = %d, want 3", s.Misses)
			}
		}
	})
	b.Run("respond-memo-warm", func(b *testing.B) {
		// Both layers warm on a persistent engine: zero core.Design and
		// zero BestResponse calls per round, and every buffer — the
		// sorted-agent view, the outcomes array, the contracts map, the
		// respond scratch — reused, so the steady-state round allocates
		// nothing.
		memo := engine.NewRespondMemo()
		eng, err := engine.New(pop, engine.Config{
			Policy: &platform.DynamicPolicy{},
			Rounds: 1,
			Cache:  engine.NewCache(),
			Memo:   memo,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Run(ctx); err != nil { // warm both layers
			b.Fatal(err)
		}
		warmed := memo.Stats().Misses
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if s := memo.Stats(); s.Misses != warmed {
			b.Fatalf("warm rounds performed %d BestResponse calls, want 0", s.Misses-warmed)
		}
	})
}

// BenchmarkEngineRound100k measures one warm engine round over a
// 100,000-agent, 3-archetype population on the sequential pipeline vs the
// sharded pipeline (Config.Shards = 8). Both run a persistent engine with
// the design cache and respond memo warmed. The sequential warm round
// still walks every agent through the memo in design and respond; the
// sharded warm round validates each shard's plan in O(distinct
// fingerprints) and skips the respond stage outright on retained
// outcomes, so only settle remains O(n) — the speedup is algorithmic and
// does not depend on spare cores. Ledgers are byte-identical (pinned by
// TestShardedLedgerIdentical in internal/engine).
//
// Two drift variants bracket the mutation path: sharded-rebuild bumps
// the whole population before every round (the sharded-cold proxy — all
// shards re-partition), while sparse-drift-1pct drifts 1% of agents
// through Population.Touch, so only the shards owning touched IDs
// refresh in place. The sparse round is required to stay within 10% of
// the full-rebuild round (scripts/bench.sh gates sparse-drift-1pct in
// its warm-regression set); ledger equivalence with the full rebuild is
// pinned by TestSparseDriftLedgerIdentical in internal/engine.
func BenchmarkEngineRound100k(b *testing.B) {
	pop := benchArchetypePopulation(b, 100_000)
	ctx := context.Background()

	warmEngine := func(b *testing.B, shards int) *engine.Engine {
		b.Helper()
		eng, err := engine.New(pop, engine.Config{
			Policy: &platform.DynamicPolicy{},
			Rounds: 1,
			Cache:  engine.NewCache(),
			Memo:   engine.NewRespondMemo(),
			Shards: shards,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Run(ctx); err != nil { // warm caches, views, buffers
			b.Fatal(err)
		}
		return eng
	}

	b.Run("sequential-warm", func(b *testing.B) {
		eng := warmEngine(b, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sharded-warm", func(b *testing.B) {
		eng := warmEngine(b, 8)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dedup-cold", func(b *testing.B) {
		// Cold design at 100k: the sharded engine's design cache is
		// invalidated before every round, so each shard re-runs its
		// distinct fingerprints through the batched solver over retained
		// scratch. The round cost is the warm floor plus distinct-
		// fingerprint-count × the batched per-design constant — not
		// O(agents) design work. Shards race to re-fill the 3 shared
		// fingerprints, so the per-round miss count lands between 3 and
		// 3 × shards.
		cache := engine.NewCache()
		eng, err := engine.New(pop, engine.Config{
			Policy: &platform.DynamicPolicy{},
			Rounds: 1,
			Cache:  cache,
			Memo:   engine.NewRespondMemo(),
			Shards: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Run(ctx); err != nil { // warm views and buffers
			b.Fatal(err)
		}
		before := cache.Stats().Misses
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cache.Invalidate()
			if err := eng.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		misses := cache.Stats().Misses - before
		if misses < uint64(3*b.N) || misses > uint64(3*8*b.N) {
			b.Fatalf("cold rounds performed %d Design calls, want within [%d, %d]", misses, 3*b.N, 3*8*b.N)
		}
	})
	b.Run("sharded-rebuild", func(b *testing.B) {
		// Whole-population drift each round: Bump forces every shard to
		// re-partition and re-plan — the cost floor sparse drift is
		// measured against.
		eng := warmEngine(b, 8)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pop.Bump()
			if err := eng.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sparse-drift-1pct", func(b *testing.B) {
		// 1000 of 100k agents swap between two feedback weights each
		// round, declared via Touch. The two halves alternate in
		// antiphase so both fingerprints always have holders — nothing is
		// evicted, and after two warm rounds every drifted state resolves
		// in the design cache and respond memo. Steady-state rounds then
		// take the pure patch route: only the 1000 touched slots are
		// re-pointed and re-filled. A fresh population keeps the shared
		// bench population pristine.
		drifted := benchArchetypePopulation(b, 100_000)
		ids := make([]string, 0, 1000)
		for i := 0; len(ids) < 1000; i += 3 {
			ids = append(ids, fmt.Sprintf("h%05d", i))
		}
		step := 0
		hook := func(r int, p *engine.Population) {
			step++
			for k, id := range ids {
				w := 1.0
				if (k+step)%2 == 1 {
					w = 1.01
				}
				p.Weights[id] = w
			}
			p.Touch(ids...)
		}
		eng, err := engine.New(drifted, engine.Config{
			Policy: &platform.DynamicPolicy{},
			Rounds: 1,
			Cache:  engine.NewCache(),
			Memo:   engine.NewRespondMemo(),
			Shards: 8,
			Drift:  hook,
		})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 2; i++ { // warm both weight states
			if err := eng.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("structural-churn-1pct", func(b *testing.B) {
		// 1% structural churn: every round 500 agents leave and 500 fresh
		// ones join, declared via TouchLeave/TouchJoin. Two pre-built
		// 500-agent sets alternate — the round's leavers are the previous
		// round's joiners — so the steady population holds at ~100.5k and
		// the same agent objects recycle without allocation. Joiners clone
		// the honest archetype under fresh IDs: their fingerprint always
		// resolves in the warm design cache, so each round splices only
		// the owning shards' slots (joins take tail outcome slots, leaves
		// tombstone theirs; compaction amortizes at the fragmentation
		// threshold). The full-rebuild cost of the same churn is the
		// sharded-rebuild arm above.
		drifted := benchArchetypePopulation(b, 100_000)
		proto := drifted.Agents[0] // honest archetype
		protoW := drifted.Weights[proto.ID]
		protoMal := drifted.MaliceProb[proto.ID]
		mkSet := func(prefix string) ([]*worker.Agent, []string) {
			set := make([]*worker.Agent, 500)
			ids := make([]string, 500)
			for i := range set {
				na := *proto
				na.ID = fmt.Sprintf("%s%04d", prefix, i)
				set[i] = &na
				ids[i] = na.ID
			}
			return set, ids
		}
		setA, idsA := mkSet("ja")
		setB, idsB := mkSet("jb")
		sets := [2][]*worker.Agent{setA, setB}
		idSets := [2][]string{idsA, idsB}
		turn := 0
		hook := func(r int, p *engine.Population) {
			next := turn % 2
			if turn > 0 {
				// The previous set was appended last, so it occupies the
				// population tail — truncate it off and declare the leave.
				prev := 1 - next
				p.Agents = p.Agents[:len(p.Agents)-500]
				for _, id := range idSets[prev] {
					delete(p.Weights, id)
					delete(p.MaliceProb, id)
				}
				p.TouchLeave(idSets[prev]...)
			}
			for _, a := range sets[next] {
				p.Agents = append(p.Agents, a)
				p.Weights[a.ID] = protoW
				p.MaliceProb[a.ID] = protoMal
			}
			p.TouchJoin(idSets[next]...)
			turn++
		}
		eng, err := engine.New(drifted, engine.Config{
			Policy: &platform.DynamicPolicy{},
			Rounds: 1,
			Cache:  engine.NewCache(),
			Memo:   engine.NewRespondMemo(),
			Shards: 8,
			Drift:  hook,
		})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 2; i++ { // warm caches and both churn sets
			if err := eng.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}
