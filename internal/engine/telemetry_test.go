package engine_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"dyncontract/internal/engine"
	"dyncontract/internal/telemetry"
)

// TestMetricsLeaveLedgerUnchanged pins the tentpole's core invariant:
// enabling Config.Metrics (which also auto-stacks a TelemetryObserver)
// must not change a single ledger value.
func TestMetricsLeaveLedgerUnchanged(t *testing.T) {
	ctx := context.Background()
	run := func(reg *telemetry.Registry) []engine.Round {
		t.Helper()
		ledger, err := engine.RunLedger(ctx, archetypePopulation(t, 30), engine.Config{
			Policy:  &designPolicy{},
			Rounds:  3,
			Cache:   engine.NewCache(),
			Metrics: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ledger
	}
	plain := run(telemetry.Nop)
	instrumented := run(telemetry.NewRegistry())
	if !reflect.DeepEqual(plain, instrumented) {
		t.Error("instrumented run produced a different ledger")
	}
}

// TestStackedTelemetryObserver pins the satellite requirement: the
// ready-made observer, stacked manually alongside user observers, exports
// the ledger without altering it and without erroring.
func TestStackedTelemetryObserver(t *testing.T) {
	pop := archetypePopulation(t, 9)
	reg := telemetry.NewRegistry()
	const rounds = 4
	ledger, err := engine.RunLedger(context.Background(), pop, engine.Config{
		Policy:    &designPolicy{},
		Rounds:    rounds,
		Observers: []engine.Observer{engine.TelemetryObserver(reg)},
	})
	if err != nil {
		t.Fatal(err)
	}
	bare, err := engine.RunLedger(context.Background(), archetypePopulation(t, 9), engine.Config{
		Policy: &designPolicy{},
		Rounds: rounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ledger, bare) {
		t.Error("stacked telemetry observer altered the ledger")
	}

	s := reg.Snapshot()
	if got := s.Counters[engine.MetricRounds]; got != rounds {
		t.Errorf("%s = %d, want %d", engine.MetricRounds, got, rounds)
	}
	if got := s.Counters[engine.MetricOutcomes]; got != rounds*uint64(len(pop.Agents)) {
		t.Errorf("%s = %d, want %d", engine.MetricOutcomes, got, rounds*len(pop.Agents))
	}
	last := ledger[len(ledger)-1]
	for name, want := range map[string]float64{
		engine.MetricRoundUtility:      last.Utility,
		engine.MetricRoundBenefit:      last.Benefit,
		engine.MetricRoundCompensation: last.Cost,
		engine.MetricRoundAgents:       float64(len(pop.Agents)),
	} {
		if got := s.Gauges[name]; got != want {
			t.Errorf("%s = %v, want %v (last round)", name, got, want)
		}
	}
}

// TestStageTimings checks the per-stage instrumentation: with
// Config.Metrics set, every stage histogram records exactly one
// observation per completed round, with finite non-negative durations.
func TestStageTimings(t *testing.T) {
	reg := telemetry.NewRegistry()
	const rounds = 5
	_, err := engine.RunLedger(context.Background(), archetypePopulation(t, 12), engine.Config{
		Policy:  &designPolicy{},
		Rounds:  rounds,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	stages := []string{
		engine.MetricStageDesignSeconds,
		engine.MetricStageRespondSeconds,
		engine.MetricStageSettleSeconds,
		engine.MetricStageObserveSeconds,
		engine.MetricRoundSeconds,
	}
	var stageSum float64
	for _, name := range stages {
		h, ok := s.Histograms[name]
		if !ok {
			t.Errorf("missing histogram %s", name)
			continue
		}
		if h.Count != rounds {
			t.Errorf("%s count = %d, want %d (one observation per round)", name, h.Count, rounds)
		}
		if h.Sum < 0 || math.IsNaN(h.Sum) || math.IsInf(h.Sum, 0) {
			t.Errorf("%s sum = %v, want finite ≥ 0", name, h.Sum)
		}
		if name != engine.MetricRoundSeconds {
			stageSum += h.Sum
		}
	}
	// The four stages partition the round (minus inter-stage clock reads),
	// so their total cannot exceed the whole-round total.
	if round := s.Histograms[engine.MetricRoundSeconds].Sum; stageSum > round*1.5+1e-3 {
		t.Errorf("stage sums (%v s) wildly exceed round total (%v s)", stageSum, round)
	}
	// Worker utility is only computable inside the respond loop; the gauge
	// must have been exported (honest workers accept, so it is nonzero).
	if wu := s.Gauges[engine.MetricRoundWorkerUtility]; wu == 0 {
		t.Errorf("%s = 0, want last round's summed worker utility", engine.MetricRoundWorkerUtility)
	}
}

// TestCacheExportTo pins the "Stats() stays a thin view" contract: after
// ExportTo, the registry snapshot and Stats() read the same counters.
func TestCacheExportTo(t *testing.T) {
	reg := telemetry.NewRegistry()
	cache := engine.NewCache()
	_, err := engine.RunLedger(context.Background(), archetypePopulation(t, 30), engine.Config{
		Policy:  &designPolicy{},
		Rounds:  3,
		Cache:   cache,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := cache.Stats()
	if stats.Hits == 0 || stats.Misses == 0 {
		t.Fatalf("archetype population must hit and miss the cache, got %+v", stats)
	}
	s := reg.Snapshot()
	if got := s.Counters[engine.MetricCacheHits]; got != stats.Hits {
		t.Errorf("registry hits = %d, Stats().Hits = %d", got, stats.Hits)
	}
	if got := s.Counters[engine.MetricCacheMisses]; got != stats.Misses {
		t.Errorf("registry misses = %d, Stats().Misses = %d", got, stats.Misses)
	}
	if got := int(s.Gauges[engine.MetricCacheEntries]); got != stats.Entries {
		t.Errorf("registry entries = %d, Stats().Entries = %d", got, stats.Entries)
	}
}

// metricsUserPolicy records whether the engine wired a registry in.
type metricsUserPolicy struct {
	designPolicy
	got *telemetry.Registry
}

func (p *metricsUserPolicy) UseMetrics(reg *telemetry.Registry) { p.got = reg }

func TestMetricsUserWiring(t *testing.T) {
	reg := telemetry.NewRegistry()
	pol := &metricsUserPolicy{}
	if _, err := engine.New(archetypePopulation(t, 3), engine.Config{
		Policy: pol, Rounds: 1, Metrics: reg,
	}); err != nil {
		t.Fatal(err)
	}
	if pol.got != reg {
		t.Error("MetricsUser policy did not receive Config.Metrics")
	}
	pol2 := &metricsUserPolicy{}
	if _, err := engine.New(archetypePopulation(t, 3), engine.Config{
		Policy: pol2, Rounds: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if pol2.got != nil {
		t.Error("UseMetrics called without Config.Metrics")
	}
}

// TestObserverErrorVerbatimWithMetrics strengthens the propagation pin: a
// non-ErrStop observer error aborts the run and is returned verbatim
// (err == boom, not a wrap) even with the auto-stacked TelemetryObserver
// in the chain, and a wrapped ErrStop still ends the run cleanly.
func TestObserverErrorVerbatimWithMetrics(t *testing.T) {
	boom := errors.New("observer exploded")
	fail := engine.Hooks{RoundEnd: func(engine.Round) error { return boom }}
	eng, err := engine.New(archetypePopulation(t, 3), engine.Config{
		Policy:    &designPolicy{},
		Rounds:    3,
		Observers: []engine.Observer{fail},
		Metrics:   telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Run(context.Background()); got != boom {
		t.Errorf("err = %v, want the observer's error verbatim", got)
	}

	stop := engine.Hooks{RoundEnd: func(r engine.Round) error {
		return fmt.Errorf("converged at %d: %w", r.Index, engine.ErrStop)
	}}
	reg := telemetry.NewRegistry()
	eng2, err := engine.New(archetypePopulation(t, 3), engine.Config{
		Policy:    &designPolicy{},
		Rounds:    10,
		Observers: []engine.Observer{stop},
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := eng2.Run(context.Background()); got != nil {
		t.Errorf("wrapped ErrStop leaked: %v", got)
	}
	// The stopped round still lands in the stage histograms (timings are
	// observed before the stop short-circuits the loop).
	if h := reg.Snapshot().Histograms[engine.MetricRoundSeconds]; h.Count != 1 {
		t.Errorf("round histogram count = %d, want 1 (the stopped round)", h.Count)
	}
}
