package optimal

import (
	"errors"
	"testing"

	"dyncontract/internal/core"
	"dyncontract/internal/effort"
	"dyncontract/internal/worker"
)

func optFixture(t *testing.T, m int) (*worker.Agent, core.Config) {
	t.Helper()
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	part, err := effort.NewPartition(m, 40.0/float64(m))
	if err != nil {
		t.Fatal(err)
	}
	a, err := worker.NewHonest("h", psi, 1, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	return a, core.Config{Part: part, Mu: 1, W: 1}
}

func TestSearchFindsPositiveUtility(t *testing.T) {
	a, cfg := optFixture(t, 4)
	res, err := Search(a, cfg, Options{SlopeGrid: 8})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if res.RequesterUtility <= 0 {
		t.Errorf("grid utility = %v, want positive", res.RequesterUtility)
	}
	if res.Evaluated != 8*8*8*8 {
		t.Errorf("Evaluated = %d, want 4096", res.Evaluated)
	}
	if res.Contract == nil {
		t.Fatal("nil contract")
	}
}

func TestSearchRespectsUpperBound(t *testing.T) {
	a, cfg := optFixture(t, 4)
	res, err := Search(a, cfg, Options{SlopeGrid: 10})
	if err != nil {
		t.Fatal(err)
	}
	ub := core.UpperBound(a, cfg)
	if res.RequesterUtility > ub+1e-9 {
		t.Errorf("grid utility %v exceeds theoretical UB %v", res.RequesterUtility, ub)
	}
}

func TestDesignNearGridOptimum(t *testing.T) {
	// The paper's claim: the candidate algorithm is near-optimal. Compare
	// against an independent grid search on a small instance.
	a, cfg := optFixture(t, 5)
	grid, err := Search(a, cfg, Options{SlopeGrid: 12})
	if err != nil {
		t.Fatal(err)
	}
	designed, err := core.Design(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The algorithm must capture at least 90% of the grid optimum (both
	// are upper-bounded by core.UpperBound, and the theoretical LB/UB gap
	// shrinks with m; 0.9 is conservative for m=5).
	if designed.RequesterUtility < 0.9*grid.RequesterUtility {
		t.Errorf("designed utility %v < 90%% of grid optimum %v",
			designed.RequesterUtility, grid.RequesterUtility)
	}
}

func TestSearchBudget(t *testing.T) {
	a, cfg := optFixture(t, 10)
	_, err := Search(a, cfg, Options{SlopeGrid: 10, Budget: 1000})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestSearchInvalidInputs(t *testing.T) {
	a, cfg := optFixture(t, 3)
	if _, err := Search(a, cfg, Options{SlopeGrid: 1}); err == nil {
		t.Error("grid=1 accepted")
	}
	bad := cfg
	bad.Mu = 0
	if _, err := Search(a, bad, Options{SlopeGrid: 4}); err == nil {
		t.Error("mu=0 accepted")
	}
}

func TestSearchMaliciousAgent(t *testing.T) {
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	part, err := effort.NewPartition(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	a, err := worker.NewMalicious("m", psi, 1, 0.5, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Part: part, Mu: 1, W: 1}
	res, err := Search(a, cfg, Options{SlopeGrid: 8})
	if err != nil {
		t.Fatal(err)
	}
	// A malicious worker works for free (ω pulls them): even the zero
	// contract extracts positive feedback, so utility must be positive.
	if res.RequesterUtility <= 0 {
		t.Errorf("utility = %v, want positive for malicious agent", res.RequesterUtility)
	}
}
