# Standard-library Go module; no codegen, no vendoring. `make check` is
# the pre-PR gate (ROADMAP.md).

GO ?= go

.PHONY: build test bench benchall check fmt vet serve loadgen smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Round-loop benchmarks (EngineRound1k + TelemetryOverhead) with -benchmem,
# parsed into BENCH_engine.json; `make benchall` runs every benchmark.
bench:
	./scripts/bench.sh

benchall:
	$(GO) test -run '^$$' -bench . -benchmem .

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

check:
	./scripts/check.sh

# Serving layer: `make serve` runs the contract-design daemon on
# localhost:8080, `make loadgen` fires a short burst at it, and
# `make smoke` does the whole boot → burst → SIGTERM-drain cycle
# unattended (same script CI runs).
serve:
	$(GO) run ./cmd/contractd

loadgen:
	$(GO) run ./cmd/loadgen -addr http://127.0.0.1:8080 -healthcheck -clients 4 -duration 3s -round-every 10

smoke:
	./scripts/smoke_server.sh
