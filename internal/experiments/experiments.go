// Package experiments regenerates every table and figure of the paper's
// evaluation (§V, plus Fig. 6 of §IV) on the synthetic Amazon-like trace.
// Each experiment is a Runner producing a Report — an aligned text table
// with notes — and the package exposes a registry so cmd/experiments and
// the benchmark harness can run them by ID.
//
// The full pipeline mirrors §IV's strategy framework (Fig. 4): generate
// (stand-in for "collect") the trace, estimate malice probabilities,
// cluster collusive communities, fit per-class effort functions, weigh
// workers, and design contracts.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"dyncontract/internal/cluster"
	"dyncontract/internal/effort"
	"dyncontract/internal/engine"
	"dyncontract/internal/platform"
	"dyncontract/internal/requester"
	"dyncontract/internal/stats"
	"dyncontract/internal/synth"
	"dyncontract/internal/telemetry"
	"dyncontract/internal/textplot"
	"dyncontract/internal/trace"
	"dyncontract/internal/worker"
)

// ErrPipeline is returned when the shared pipeline cannot be built.
var ErrPipeline = errors.New("experiments: pipeline failed")

// Report is one experiment's regenerated table.
type Report struct {
	// ID is the registry key ("fig6", "table2", …).
	ID string
	// Title restates what the paper's table/figure shows.
	Title string
	// Header labels the columns.
	Header []string
	// Rows holds formatted cells.
	Rows [][]string
	// Notes records shape checks and caveats.
	Notes []string
	// Series optionally carries line-chart data for figure-style
	// experiments (rendered by Render when plotting is requested).
	Series []textplot.Series
	// XLabel labels the chart's x axis.
	XLabel string
	// BarLabels and BarValues optionally carry bar-chart data for
	// distribution-style experiments.
	BarLabels []string
	BarValues []float64
}

// String renders the report as an aligned text table (no charts).
func (r *Report) String() string {
	return r.Render(false)
}

// Render renders the report; with plot=true, any attached figure data is
// drawn as an ASCII chart below the table.
func (r *Report) Render(plot bool) string {
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if plot {
		if len(r.Series) > 0 {
			chart, err := textplot.Chart(r.Series, textplot.Options{XLabel: r.XLabel})
			if err == nil {
				b.WriteByte('\n')
				b.WriteString(chart)
			}
		}
		if len(r.BarLabels) > 0 {
			bars, err := textplot.Bar(r.BarLabels, r.BarValues, 40)
			if err == nil {
				b.WriteByte('\n')
				b.WriteString(bars)
			}
		}
	}
	return b.String()
}

// EffortScaleTarget is the effort value the 95th-percentile trace effort is
// mapped to. Raw trace efforts (expertise × characters) are in the
// thousands; effort units are arbitrary in the model, and the paper's
// parameter regime (β = 1) implicitly assumes a scale where the marginal
// feedback w·ψ′(0) exceeds the marginal effort cost β — otherwise no
// contract can profitably incentivize work. Mapping the 95th percentile to
// 5 puts the fitted ψ′(0) near 1.5–2, which reproduces that regime.
const EffortScaleTarget = 5.0

// Params bundles the model parameters shared by experiments, defaulting to
// the paper's evaluation setting (§IV-C: β = 1, κ = γ = 0.1; ω is the
// malicious feedback weight).
type Params struct {
	// Beta is the workers' effort-cost weight β.
	Beta float64
	// Omega is the malicious workers' feedback weight ω.
	Omega float64
	// Mu is the requester's compensation weight μ.
	Mu float64
	// M is the number of effort intervals.
	M int
	// Weight holds the Eq. (5) coefficients.
	Weight requester.WeightParams
	// NoDesignCache disables the engine's cross-round design cache in the
	// simulation-driven experiments (fig8c, sensitivity, retention);
	// results are identical either way — designs are deterministic — so
	// this exists for A/B timing and debugging.
	NoDesignCache bool
	// NoRespondMemo disables the engine's cross-round best-response memo
	// in the same experiments; like NoDesignCache it never changes a
	// report — the memo is a pure optimization — and exists for A/B
	// timing and debugging.
	NoRespondMemo bool
	// RespondParallelism caps the respond stage's parallel fan-out (see
	// engine.Config.ParallelRespond); 0 keeps the defaults.
	RespondParallelism int
	// Shards runs the simulation-driven experiments on the sharded round
	// pipeline (see engine.Config.Shards); 0 keeps the sequential path.
	// Ledgers — and therefore reports — are byte-identical either way.
	Shards int
	// Metrics, when non-nil, instruments the simulation-driven experiments'
	// engine runs (see engine.Config.Metrics). Reports are identical either
	// way.
	Metrics *telemetry.Registry
}

// runLedger simulates rounds through the engine, attaching a fresh design
// cache and respond memo unless the params disable them.
func runLedger(ctx context.Context, pop *platform.Population, pol platform.Policy, rounds int, params Params) ([]platform.Round, error) {
	cfg := engine.Config{Policy: pol, Rounds: rounds, Metrics: params.Metrics, ParallelRespond: params.RespondParallelism, Shards: params.Shards}
	if !params.NoDesignCache {
		cfg.Cache = engine.NewCache()
	}
	if !params.NoRespondMemo {
		cfg.Memo = engine.NewRespondMemo()
	}
	return engine.RunLedger(ctx, pop, cfg)
}

// DefaultParams returns the paper's setting.
func DefaultParams() Params {
	return Params{
		Beta:   1,
		Omega:  0.5,
		Mu:     1,
		M:      20,
		Weight: requester.DefaultWeightParams(),
	}
}

// Pipeline is the shared state every experiment consumes: the trace and
// everything §IV derives from it.
type Pipeline struct {
	// Trace is the (synthetic) review trace.
	Trace *trace.Trace
	// Stats caches per-worker statistics.
	Stats map[string]trace.WorkerStats
	// MaliceProb is the estimated e_i^mal per worker.
	MaliceProb map[string]float64
	// Communities are the detected collusive communities.
	Communities []cluster.Community
	// Partners caches A_i per collusive worker.
	Partners map[string]int
	// HonestIDs, NCMIDs, CMIDs classify workers by ground truth plus
	// detection: honest (label false), non-collusive malicious (label
	// true, no community), collusive malicious (community member).
	HonestIDs, NCMIDs, CMIDs []string
	// EffortScale divides raw trace efforts into model efforts.
	EffortScale float64
	// ClassFit holds the fitted effort function per behavioural class.
	ClassFit map[worker.Class]effort.FitResult
	// Seed is carried for experiments needing extra randomness.
	Seed int64
}

// BuildPipeline generates the trace and runs the §IV preprocessing.
func BuildPipeline(cfg synth.Config) (*Pipeline, error) {
	tr, err := synth.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPipeline, err)
	}
	return BuildPipelineFromTrace(tr, cfg.Seed)
}

// BuildPipelineFromTrace runs the preprocessing on an existing trace.
func BuildPipelineFromTrace(tr *trace.Trace, seed int64) (*Pipeline, error) {
	p := &Pipeline{Trace: tr, Seed: seed}
	p.Stats = tr.ComputeWorkerStats()

	est, err := cluster.DefaultEstimator(seed).Estimate(tr)
	if err != nil {
		return nil, fmt.Errorf("%w: estimate malice: %v", ErrPipeline, err)
	}
	p.MaliceProb = est

	malicious := tr.MaliciousWorkerIDs()
	p.Communities = cluster.FindCommunities(tr, malicious)
	p.Partners = cluster.PartnerCounts(p.Communities)

	inCommunity := make(map[string]bool)
	for _, c := range p.Communities {
		for _, m := range c.Members {
			inCommunity[m] = true
		}
	}
	for _, id := range tr.HonestWorkerIDs() {
		p.HonestIDs = append(p.HonestIDs, id)
	}
	for _, id := range malicious {
		if inCommunity[id] {
			p.CMIDs = append(p.CMIDs, id)
		} else {
			p.NCMIDs = append(p.NCMIDs, id)
		}
	}
	sort.Strings(p.HonestIDs)
	sort.Strings(p.NCMIDs)
	sort.Strings(p.CMIDs)

	if err := p.computeEffortScale(); err != nil {
		return nil, err
	}
	if err := p.fitClassEffortFunctions(); err != nil {
		return nil, err
	}
	return p, nil
}

// computeEffortScale sets EffortScale so the 95th-percentile raw effort
// maps to EffortScaleTarget.
func (p *Pipeline) computeEffortScale() error {
	var efforts []float64
	stats95 := p.Stats
	for _, r := range p.Trace.Reviews {
		st, ok := stats95[r.WorkerID]
		if !ok {
			continue
		}
		efforts = append(efforts, st.Expertise*float64(r.Length))
	}
	if len(efforts) == 0 {
		return fmt.Errorf("%w: no effort observations", ErrPipeline)
	}
	p95, err := stats.Percentile(efforts, 95)
	if err != nil || p95 <= 0 {
		return fmt.Errorf("%w: effort scale: %v", ErrPipeline, err)
	}
	p.EffortScale = p95 / EffortScaleTarget
	return nil
}

// ClassPoints returns the scaled (effort, feedback) cloud of one class.
func (p *Pipeline) ClassPoints(class worker.Class) (efforts, feedbacks []float64, err error) {
	var ids []string
	switch class {
	case worker.Honest:
		ids = p.HonestIDs
	case worker.NonCollusiveMalicious:
		ids = p.NCMIDs
	case worker.CollusiveMalicious:
		ids = p.CMIDs
	default:
		return nil, nil, fmt.Errorf("%w: unknown class %v", ErrPipeline, class)
	}
	raw, fb := p.Trace.EffortFeedbackPoints(ids)
	efforts = make([]float64, len(raw))
	for i, y := range raw {
		efforts[i] = y / p.EffortScale
	}
	return efforts, fb, nil
}

// fitClassEffortFunctions fits one concave quadratic per class (§IV-B).
func (p *Pipeline) fitClassEffortFunctions() error {
	p.ClassFit = make(map[worker.Class]effort.FitResult, 3)
	for _, class := range []worker.Class{worker.Honest, worker.NonCollusiveMalicious, worker.CollusiveMalicious} {
		efforts, feedbacks, err := p.ClassPoints(class)
		if err != nil {
			return err
		}
		if len(efforts) < 3 {
			return fmt.Errorf("%w: class %v has %d points", ErrPipeline, class, len(efforts))
		}
		fit, err := effort.FitConcaveQuadratic(efforts, feedbacks)
		if err != nil {
			return fmt.Errorf("%w: fit class %v: %v", ErrPipeline, class, err)
		}
		p.ClassFit[class] = fit
	}
	return nil
}

// Partition builds the m-interval partition over the scaled effort range.
// The range ends at the smallest class apex (clipped to the scale target's
// neighbourhood) so every fitted ψ is strictly increasing across it.
func (p *Pipeline) Partition(m int) (effort.Partition, error) {
	yMax := EffortScaleTarget
	for _, fit := range p.ClassFit {
		if apex := fit.Quadratic.Apex(); 0.999*apex < yMax {
			yMax = 0.999 * apex
		}
	}
	if yMax <= 0 {
		return effort.Partition{}, fmt.Errorf("%w: degenerate effort range", ErrPipeline)
	}
	return effort.NewPartition(m, yMax/float64(m))
}

// WorkerWeight computes the Eq. (5) weight for one worker from its trace
// signals.
func (p *Pipeline) WorkerWeight(id string, params Params) (float64, error) {
	st, ok := p.Stats[id]
	if !ok {
		return 0, fmt.Errorf("%w: worker %s has no stats", ErrPipeline, id)
	}
	dist := st.AvgAccuracyDist
	if math.IsNaN(dist) {
		dist = params.Weight.DistFloor
	}
	sig := requester.WorkerSignal{
		ReviewScore: st.AvgScore,
		ExpertScore: st.AvgScore - dist, // encode the measured distance
		MaliceProb:  p.MaliceProb[id],
		Partners:    p.Partners[id],
	}
	return requester.Weight(params.Weight, sig)
}

// Agent materializes one worker (by ID) as a design-ready agent using the
// class effort function; class is decided by the pipeline's classification.
func (p *Pipeline) Agent(id string, params Params, part effort.Partition) (*worker.Agent, error) {
	class := p.ClassOf(id)
	fit, ok := p.ClassFit[class]
	if !ok {
		return nil, fmt.Errorf("%w: no fit for class %v", ErrPipeline, class)
	}
	switch class {
	case worker.Honest:
		return worker.NewHonest(id, fit.Quadratic, params.Beta, part.YMax())
	case worker.NonCollusiveMalicious:
		return worker.NewMalicious(id, fit.Quadratic, params.Beta, params.Omega, part.YMax())
	default:
		// Collusive members are designed for at community level; an
		// individual CM agent is only needed for per-member reporting.
		return worker.NewMalicious(id, fit.Quadratic, params.Beta, params.Omega, part.YMax())
	}
}

// CommunityAgent materializes a collusive community as a meta-agent.
func (p *Pipeline) CommunityAgent(idx int, params Params, part effort.Partition) (*worker.Agent, error) {
	if idx < 0 || idx >= len(p.Communities) {
		return nil, fmt.Errorf("%w: community %d out of range", ErrPipeline, idx)
	}
	c := p.Communities[idx]
	fit := p.ClassFit[worker.CollusiveMalicious]
	return worker.NewCommunity(fmt.Sprintf("community%03d", idx), fit.Quadratic,
		params.Beta, params.Omega, c.Size(), part.YMax())
}

// ClassOf returns the pipeline's classification for a worker ID.
func (p *Pipeline) ClassOf(id string) worker.Class {
	if p.Partners[id] > 0 {
		return worker.CollusiveMalicious
	}
	if w, ok := p.Trace.Workers[id]; ok && w.Malicious {
		return worker.NonCollusiveMalicious
	}
	return worker.Honest
}

// Runner is one experiment.
type Runner func(p *Pipeline, params Params) (*Report, error)

// Registry maps experiment IDs to runners, in presentation order.
func Registry() []struct {
	ID     string
	Run    Runner
	Abouts string
} {
	return []struct {
		ID     string
		Run    Runner
		Abouts string
	}{
		{"fig6", RunFig6, "requester utility vs Theorem 4.1 bounds as m grows"},
		{"table2", RunTable2, "collusive community size distribution"},
		{"fig7", RunFig7, "per-class average effort and feedback"},
		{"table3", RunTable3, "norm of residual for polynomial fits of order 1..6"},
		{"fig8a", RunFig8a, "compensation vs Lemma 4.3 lower bound for m=10,20,40"},
		{"fig8b", RunFig8b, "compensation by worker class for mu=1.0,0.9,0.8"},
		{"fig8c", RunFig8c, "requester utility: dynamic contract vs exclusion baseline"},
		{"ablation", RunAblation, "designed contract vs brute-force grid optimum"},
		{"adversary", RunAdversary, "extension: strategic attackers vs adaptive defense"},
		{"sensitivity", RunSensitivity, "ablation: policy utility vs malice-estimator quality"},
		{"classify", RunClassify, "extension: dynamic contracts on binary labeling"},
		{"dynamics", RunDynamics, "extension: fixed-point convergence of adaptive pricing"},
		{"params", RunParams, "ablation: designed contract vs omega and beta sweeps"},
		{"calibration", RunCalibration, "extension: fitted effort functions scored against the trace"},
		{"budget", RunBudget, "extension: budget-feasible contracts (MCKP over candidate menus)"},
		{"retention", RunRetention, "extension: worker retention under outside options (IR lift)"},
		{"stationarity", RunStationarity, "extension: cross-round stability of fitted effort functions"},
		{"assignment", RunAssignment, "extension: worker-task matching (Hungarian vs greedy)"},
	}
}

// Lookup finds a runner by ID.
func Lookup(id string) (Runner, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
