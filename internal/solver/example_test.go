package solver_test

import (
	"context"
	"fmt"
	"log"

	"dyncontract/internal/core"
	"dyncontract/internal/effort"
	"dyncontract/internal/solver"
	"dyncontract/internal/worker"
)

// Example fans three decomposed subproblems across the pool and collects
// the designed contracts in input order.
func Example() {
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		log.Fatal(err)
	}
	part, err := effort.NewPartition(10, 4)
	if err != nil {
		log.Fatal(err)
	}
	subs := make([]solver.Subproblem, 3)
	for i := range subs {
		a, err := worker.NewHonest(fmt.Sprintf("w%d", i), psi, 1, part.YMax())
		if err != nil {
			log.Fatal(err)
		}
		// Workers the requester values more get pushed to higher effort.
		subs[i] = solver.Subproblem{
			Agent:  a,
			Config: core.Config{Part: part, Mu: 1, W: 0.5 + 0.5*float64(i)},
		}
	}
	outcomes, err := solver.SolveAll(context.Background(), subs, solver.Options{Parallelism: 2})
	if err != nil {
		log.Fatal(err)
	}
	for i, o := range outcomes {
		fmt.Printf("%s: k_opt=%d effort=%.1f\n", subs[i].Agent.ID, o.Result.KOpt, o.Result.Response.Effort)
	}
	// Output:
	// w0: k_opt=1 effort=0.3
	// w1: k_opt=7 effort=25.5
	// w2: k_opt=9 effort=33.9
}
