package spans

import (
	"sync"
	"testing"
	"time"
)

// mkTrace records a synthetic completed trace with the given ID byte and
// root duration.
func mkTrace(rec *Recorder, idByte byte, d time.Duration) TraceID {
	var id TraceID
	id[0] = idByte
	id[15] = 1
	base := time.Unix(1700000000, 0)
	rec.record(SpanData{Trace: id, ID: 2, Parent: 1, Name: "child", Start: base, End: base.Add(d / 2)})
	rec.record(SpanData{Trace: id, ID: 1, Name: "root", Start: base, End: base.Add(d)})
	return id
}

// TestRecorderWindows pins the two retention windows: the recent ring
// keeps the newest completions, and slowest-N survives eviction by a
// burst of fast traces.
func TestRecorderWindows(t *testing.T) {
	rec := NewRecorder(4, 2)

	slow := mkTrace(rec, 1, time.Second)
	slower := mkTrace(rec, 2, 2*time.Second)
	for i := byte(10); i < 20; i++ {
		mkTrace(rec, i, time.Duration(i)*time.Millisecond)
	}

	recent := rec.Recent()
	if len(recent) != 4 {
		t.Fatalf("recent len = %d, want ring capacity 4", len(recent))
	}
	if recent[0].ID[0] != 19 || recent[3].ID[0] != 16 {
		t.Fatalf("recent is not newest-first: %v...%v", recent[0].ID[0], recent[3].ID[0])
	}
	for _, tr := range recent {
		if tr.ID == slow || tr.ID == slower {
			t.Fatal("slow traces should have been evicted from the ring")
		}
	}

	slowest := rec.Slowest()
	if len(slowest) != 2 {
		t.Fatalf("slowest len = %d, want 2", len(slowest))
	}
	if slowest[0].ID != slower || slowest[1].ID != slow {
		t.Fatalf("slowest not ordered by duration: %s, %s", slowest[0].ID, slowest[1].ID)
	}
	if len(slowest[0].Spans) != 2 {
		t.Fatal("slowest trace lost its child spans")
	}

	// Lookup finds ring entries, slowest-only entries, and misses cleanly.
	if _, ok := rec.Lookup(slower); !ok {
		t.Fatal("Lookup missed a slowest-retained trace")
	}
	if _, ok := rec.Lookup(recent[0].ID); !ok {
		t.Fatal("Lookup missed a recent trace")
	}
	var missing TraceID
	missing[7] = 99
	if _, ok := rec.Lookup(missing); ok {
		t.Fatal("Lookup invented a trace")
	}
	if got := rec.Completed(); got != 12 {
		t.Fatalf("Completed = %d, want 12", got)
	}
}

// TestRecorderInFlightLookup pins that a trace whose root has not ended
// yet is still visible by ID (with zero Start/End).
func TestRecorderInFlightLookup(t *testing.T) {
	rec := NewRecorder(4, 2)
	var id TraceID
	id[0] = 7
	base := time.Unix(1700000000, 0)
	rec.record(SpanData{Trace: id, ID: 2, Parent: 1, Name: "child", Start: base, End: base.Add(time.Millisecond)})
	got, ok := rec.Lookup(id)
	if !ok || len(got.Spans) != 1 || !got.Start.IsZero() {
		t.Fatalf("in-flight lookup = %+v, %v", got, ok)
	}
}

// TestRecorderSpanCap pins the per-trace span bound: overflow spans are
// counted, not retained, and the root still completes the trace.
func TestRecorderSpanCap(t *testing.T) {
	rec := NewRecorder(2, 1)
	var id TraceID
	id[0] = 3
	base := time.Unix(1700000000, 0)
	for i := 0; i < maxSpansPerTrace+5; i++ {
		rec.record(SpanData{Trace: id, ID: SpanID(i + 2), Parent: 1, Start: base, End: base})
	}
	rec.record(SpanData{Trace: id, ID: 1, Name: "root", Start: base, End: base.Add(time.Millisecond)})
	got, ok := rec.Lookup(id)
	if !ok {
		t.Fatal("capped trace not retained")
	}
	if len(got.Spans) != maxSpansPerTrace {
		t.Fatalf("retained %d spans, want cap %d", len(got.Spans), maxSpansPerTrace)
	}
	if got.Dropped != 6 { // 5 children past cap + the root itself
		t.Fatalf("Dropped = %d, want 6", got.Dropped)
	}
	if got.End.Sub(got.Start) != time.Millisecond {
		t.Fatal("capped trace lost its root bounds")
	}
}

// TestRecorderConcurrent hammers the recorder from many goroutines —
// concurrent span recording, completions, and reads — under -race. It
// also pins that every completed trace is coherent: a returned copy is
// never mutated by further recording.
func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder(8, 4)
	tr := New(Config{Sample: 1, Seed: 11, Recorder: rec})

	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				root := tr.Root("req")
				var kids sync.WaitGroup
				for s := 0; s < 4; s++ {
					kids.Add(1)
					go func(s int) {
						defer kids.Done()
						c := root.StartChild("shard")
						c.SetInt("shard", int64(s))
						c.End()
					}(s)
				}
				kids.Wait()
				root.End()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, got := range rec.Recent() {
				if len(got.Spans) > 5 {
					t.Errorf("trace %s has %d spans, want ≤ 5", got.ID, len(got.Spans))
					return
				}
			}
			rec.Slowest()
		}
	}()
	wg.Wait()
	close(done)

	if got := rec.Completed(); got != workers*perWorker {
		t.Fatalf("Completed = %d, want %d", got, workers*perWorker)
	}
	for _, got := range rec.Recent() {
		if len(got.Spans) != 5 {
			t.Fatalf("completed trace has %d spans, want 5 (4 shards + root)", len(got.Spans))
		}
		root, ok := got.Root()
		if !ok {
			t.Fatal("completed trace has no root")
		}
		for _, sd := range got.Spans {
			if sd.Parent != 0 && sd.Parent != root.ID {
				t.Fatalf("span %s has parent %s, want root %s", sd.ID, sd.Parent, root.ID)
			}
		}
	}
}
