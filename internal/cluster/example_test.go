package cluster_test

import (
	"fmt"

	"dyncontract/internal/cluster"
	"dyncontract/internal/trace"
)

// Example detects collusive communities from promotional co-reviews: two
// malicious workers pushing the same product form a community; a third
// targeting its own product stays non-collusive.
func Example() {
	tr := &trace.Trace{
		Reviews: []trace.Review{
			{ID: "r1", WorkerID: "m1", ProductID: "widget", Score: 5, Length: 50, Upvotes: 3},
			{ID: "r2", WorkerID: "m2", ProductID: "widget", Score: 5, Length: 60, Upvotes: 2},
			{ID: "r3", WorkerID: "m3", ProductID: "gadget", Score: 5, Length: 40, Upvotes: 1},
		},
		Workers: map[string]trace.Worker{
			"m1": {ID: "m1", Malicious: true, TargetProducts: []string{"widget"}},
			"m2": {ID: "m2", Malicious: true, TargetProducts: []string{"widget"}},
			"m3": {ID: "m3", Malicious: true, TargetProducts: []string{"gadget"}},
		},
	}
	comms := cluster.FindCommunities(tr, tr.MaliciousWorkerIDs())
	for _, c := range comms {
		fmt.Printf("community %v targeting %v\n", c.Members, c.Targets)
	}
	partners := cluster.PartnerCounts(comms)
	fmt.Printf("m1 has %d partner(s); m3 has %d\n", partners["m1"], partners["m3"])
	// Output:
	// community [m1 m2] targeting [widget]
	// m1 has 1 partner(s); m3 has 0
}
