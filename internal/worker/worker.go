// Package worker models the three worker classes of §II — honest,
// non-collusive malicious, and collusive malicious communities — and
// computes their exact best responses to a posted piecewise-linear contract.
//
// A worker facing contract ζ and effort function ψ solves
//
//	max_y  ζ(ψ(y)) − β·y + ω·ψ(y)
//
// (Eqs. (11) and (14); honest workers are the ω = 0 special case, and a
// collusive community is a "single meta worker" over the members' summed
// effort, Eq. (3)). Within each effort interval [(l−1)δ, lδ) the contract is
// linear in feedback, so the utility is concave there and the global optimum
// is found exactly by comparing each interval's interior stationary point
// and edges.
package worker

import (
	"errors"
	"fmt"
	"math"

	"dyncontract/internal/contract"
	"dyncontract/internal/effort"
)

// Class identifies the behavioural type of a worker.
type Class int

// Worker classes. Values start at one so the zero value is invalid and
// cannot be mistaken for a real class.
const (
	// Honest workers maximize compensation minus effort cost (ω = 0).
	Honest Class = iota + 1
	// NonCollusiveMalicious workers additionally value the feedback
	// (influence) of their own reviews (ω > 0).
	NonCollusiveMalicious
	// CollusiveMalicious marks a member of a collusive community; for
	// contract purposes the community acts as one meta-worker.
	CollusiveMalicious
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Honest:
		return "honest"
	case NonCollusiveMalicious:
		return "non-collusive-malicious"
	case CollusiveMalicious:
		return "collusive-malicious"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Valid reports whether c is a defined class.
func (c Class) Valid() bool {
	return c >= Honest && c <= CollusiveMalicious
}

// ErrInvalidAgent is returned when an Agent fails validation.
var ErrInvalidAgent = errors.New("worker: invalid agent")

// Agent is a worker (or collusive community acting as a meta-worker)
// together with its behavioural parameters.
type Agent struct {
	// ID identifies the worker or community.
	ID string
	// Class is the behavioural type.
	Class Class
	// Psi is the effort→feedback function fitted for this agent's class.
	Psi effort.Quadratic
	// Beta is the effort-cost weight β in the worker utility.
	Beta float64
	// Omega is the feedback (influence) weight ω; must be 0 for Honest.
	Omega float64
	// Size is the number of physical workers the agent stands for: 1 for
	// individuals, the community size for collusive meta-workers.
	Size int
	// Reservation is the worker's outside option u₀: the utility below
	// which the worker declines the task altogether (§II "each worker
	// decides whether to accept or decline the task requester's offer").
	// Zero (the default) recovers the always-participate model.
	Reservation float64
}

// Validate checks the agent's structural invariants over the working range
// [0, yMax].
func (a *Agent) Validate(yMax float64) error {
	if !a.Class.Valid() {
		return fmt.Errorf("class %v: %w", a.Class, ErrInvalidAgent)
	}
	if err := a.Psi.Validate(yMax); err != nil {
		return fmt.Errorf("agent %q: %w", a.ID, err)
	}
	if a.Beta <= 0 || math.IsNaN(a.Beta) || math.IsInf(a.Beta, 0) {
		return fmt.Errorf("agent %q: beta=%v must be positive: %w", a.ID, a.Beta, ErrInvalidAgent)
	}
	if a.Omega < 0 || math.IsNaN(a.Omega) || math.IsInf(a.Omega, 0) {
		return fmt.Errorf("agent %q: omega=%v must be non-negative: %w", a.ID, a.Omega, ErrInvalidAgent)
	}
	if a.Class == Honest && a.Omega != 0 {
		return fmt.Errorf("agent %q: honest worker with omega=%v: %w", a.ID, a.Omega, ErrInvalidAgent)
	}
	if a.Size < 1 {
		return fmt.Errorf("agent %q: size=%d must be >= 1: %w", a.ID, a.Size, ErrInvalidAgent)
	}
	if a.Class != CollusiveMalicious && a.Size != 1 {
		return fmt.Errorf("agent %q: non-community agent with size=%d: %w", a.ID, a.Size, ErrInvalidAgent)
	}
	if a.Reservation < 0 || math.IsNaN(a.Reservation) || math.IsInf(a.Reservation, 0) {
		return fmt.Errorf("agent %q: reservation=%v must be finite and non-negative: %w", a.ID, a.Reservation, ErrInvalidAgent)
	}
	return nil
}

// Utility returns the agent's utility for effort y under contract c:
// ζ(ψ(y)) − β·y + ω·ψ(y).
func (a *Agent) Utility(c *contract.PiecewiseLinear, y float64) float64 {
	q := a.Psi.Eval(y)
	return c.Eval(q) - a.Beta*y + a.Omega*q
}

// Response is an agent's computed best response to a contract.
type Response struct {
	// Effort is the utility-maximizing effort level y*.
	Effort float64
	// Feedback is ψ(y*).
	Feedback float64
	// Compensation is ζ(ψ(y*)), the payment the contract awards.
	Compensation float64
	// Utility is the worker utility at y*.
	Utility float64
	// Interval is the 1-based effort interval containing y* (clamped to
	// [1, m]).
	Interval int
	// Declined reports that even the best achievable utility fell below
	// the worker's reservation, so the worker rejects the task: all other
	// fields are zeroed.
	Declined bool
}

// BestResponse computes the agent's exact global best response to contract
// c over effort levels in [0, yCap], where yCap is normally the partition's
// mδ (capped further by the apex of ψ — no rational worker works past the
// point where extra effort reduces feedback).
//
// The search is exact: within each effort interval the utility is concave
// (the contract is linear in q = ψ(y) there), so the maximum is at an edge
// or at the interior stationary point ψ′(y) = β/(α_l + ω).
func (a *Agent) BestResponse(c *contract.PiecewiseLinear, part effort.Partition) (Response, error) {
	yCap := part.YMax()
	if apex := a.Psi.Apex(); apex < yCap {
		yCap = apex
	}
	// Validate strictly inside the increasing range: when the cap sits
	// exactly at the apex, ψ′(cap) = 0 and the closed-range check would
	// reject an otherwise well-formed agent.
	if err := a.Validate(yCap * (1 - 1e-12)); err != nil {
		return Response{}, err
	}

	best := Response{Effort: 0}
	bestSet := false
	consider := func(y float64) {
		if y < 0 || y > yCap || math.IsNaN(y) {
			return
		}
		u := a.Utility(c, y)
		if !bestSet || u > best.Utility ||
			// Tie-break toward lower effort: a worker indifferent between
			// efforts exerts less.
			(u == best.Utility && y < best.Effort) {
			q := a.Psi.Eval(y)
			best = Response{
				Effort:       y,
				Feedback:     q,
				Compensation: c.Eval(q),
				Utility:      u,
				Interval:     part.IntervalOf(y),
			}
			bestSet = true
		}
	}

	consider(0)
	for l := 1; l <= part.M; l++ {

		lo := part.Edge(l - 1)
		hi := part.Edge(l)
		if lo > yCap {
			break
		}
		if hi > yCap {
			hi = yCap
		}
		// Edges of the interval.
		consider(lo)
		consider(hi)
		// Interior stationary point: ψ′(y) = β / (α_l + ω), where α_l is
		// the contract slope on the feedback interval [d_{l−1}, d_l). When
		// α_l + ω == 0 the utility is strictly decreasing; edges cover it.
		alpha := pieceSlope(c, a.Psi, lo, hi)
		denom := alpha + a.Omega
		if denom > 0 {
			if y, ok := a.Psi.InverseDeriv(a.Beta / denom); ok && y > lo && y < hi {
				consider(y)
			}
		}
	}
	// Participation (individual rationality): a worker whose best utility
	// cannot match the outside option declines the task outright.
	if best.Utility < a.Reservation {
		return Response{Declined: true}, nil
	}
	return best, nil
}

// pieceSlope returns the contract slope over the feedback image of effort
// interval [lo, hi]: (ζ(ψ(hi)) − ζ(ψ(lo))) / (ψ(hi) − ψ(lo)). For contracts
// built on the same partition this equals α_l exactly; for arbitrary
// contracts it is the effective (secant) slope, which is what the concavity
// argument needs within a linear piece.
func pieceSlope(c *contract.PiecewiseLinear, psi effort.Quadratic, lo, hi float64) float64 {
	qLo, qHi := psi.Eval(lo), psi.Eval(hi)
	if qHi <= qLo {
		return 0
	}
	return (c.Eval(qHi) - c.Eval(qLo)) / (qHi - qLo)
}

// NewHonest returns a validated honest worker agent.
func NewHonest(id string, psi effort.Quadratic, beta, yMax float64) (*Agent, error) {
	a := &Agent{ID: id, Class: Honest, Psi: psi, Beta: beta, Omega: 0, Size: 1}
	if err := a.Validate(yMax); err != nil {
		return nil, err
	}
	return a, nil
}

// NewMalicious returns a validated non-collusive malicious worker agent.
func NewMalicious(id string, psi effort.Quadratic, beta, omega, yMax float64) (*Agent, error) {
	a := &Agent{ID: id, Class: NonCollusiveMalicious, Psi: psi, Beta: beta, Omega: omega, Size: 1}
	if err := a.Validate(yMax); err != nil {
		return nil, err
	}
	return a, nil
}

// NewCommunity returns a validated collusive-community meta-agent of the
// given size.
func NewCommunity(id string, psi effort.Quadratic, beta, omega float64, size int, yMax float64) (*Agent, error) {
	a := &Agent{ID: id, Class: CollusiveMalicious, Psi: psi, Beta: beta, Omega: omega, Size: size}
	if err := a.Validate(yMax); err != nil {
		return nil, err
	}
	return a, nil
}
