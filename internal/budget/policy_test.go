package budget

import (
	"context"
	"fmt"
	"math"
	"testing"

	"dyncontract/internal/effort"
	"dyncontract/internal/platform"
	"dyncontract/internal/worker"
)

func budgetPopulation(t *testing.T, n int) *platform.Population {
	t.Helper()
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	part, err := effort.NewPartition(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	pop := &platform.Population{
		Weights:    make(map[string]float64),
		MaliceProb: make(map[string]float64),
		Part:       part,
		Mu:         1,
	}
	for i := 0; i < n; i++ {
		a, err := worker.NewHonest(fmt.Sprintf("w%02d", i), psi, 1, part.YMax())
		if err != nil {
			t.Fatal(err)
		}
		pop.Agents = append(pop.Agents, a)
		pop.Weights[a.ID] = 0.8 + 0.2*float64(i%4)
		pop.MaliceProb[a.ID] = 0.05
	}
	return pop
}

func TestPolicyRespectsBudget(t *testing.T) {
	pop := budgetPopulation(t, 8)
	for _, budget := range []float64{0, 10, 50, 1e6} {
		pol := &Policy{Budget: budget}
		ledger, err := platform.Simulate(context.Background(), pop, pol, 1, platform.Options{})
		if err != nil {
			t.Fatalf("B=%v: %v", budget, err)
		}
		if ledger[0].Cost > budget+1e-6 {
			t.Errorf("B=%v: realized cost %v exceeds budget", budget, ledger[0].Cost)
		}
	}
}

func TestPolicyZeroBudgetExcludesAll(t *testing.T) {
	pop := budgetPopulation(t, 4)
	ledger, err := platform.Simulate(context.Background(), pop, &Policy{Budget: 0}, 1, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, oc := range ledger[0].Outcomes {
		if !oc.Excluded {
			t.Errorf("agent %s contracted under zero budget", oc.AgentID)
		}
	}
}

func TestPolicyLargeBudgetMatchesUnconstrained(t *testing.T) {
	pop := budgetPopulation(t, 6)
	ctx := context.Background()
	budgeted, err := platform.Simulate(ctx, pop, &Policy{Budget: 1e9}, 1, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	free, err := platform.Simulate(ctx, pop, &platform.DynamicPolicy{}, 1, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// With an unbinding budget the allocation picks the benefit-maximal
	// candidate per agent, which induces at least the unconstrained
	// benefit (the unconstrained policy maximizes benefit − μ·cost, a
	// different argmax, so exact equality is not required).
	if budgeted[0].Benefit < free[0].Benefit-1e-6 {
		t.Errorf("unbounded-budget benefit %v below unconstrained %v",
			budgeted[0].Benefit, free[0].Benefit)
	}
}

func TestPolicyDPvsGreedy(t *testing.T) {
	pop := budgetPopulation(t, 5)
	ctx := context.Background()
	for _, budget := range []float64{20, 60} {
		g, err := platform.Simulate(ctx, pop, &Policy{Budget: budget}, 1, platform.Options{})
		if err != nil {
			t.Fatal(err)
		}
		d, err := platform.Simulate(ctx, pop, &Policy{Budget: budget, UseDP: true}, 1, platform.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if g[0].Benefit < d[0].Benefit/2-1e-9 {
			t.Errorf("B=%v: greedy benefit %v below half of DP %v", budget, g[0].Benefit, d[0].Benefit)
		}
		if math.IsNaN(g[0].Benefit) || math.IsNaN(d[0].Benefit) {
			t.Fatal("NaN benefits")
		}
	}
}

func TestPolicyBenefitMonotoneInBudget(t *testing.T) {
	pop := budgetPopulation(t, 6)
	ctx := context.Background()
	prev := -1.0
	for _, budget := range []float64{0, 5, 20, 80, 320} {
		ledger, err := platform.Simulate(ctx, pop, &Policy{Budget: budget}, 1, platform.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ledger[0].Benefit < prev-1e-9 {
			t.Errorf("B=%v: benefit %v fell below %v", budget, ledger[0].Benefit, prev)
		}
		prev = ledger[0].Benefit
	}
}

func TestPolicyName(t *testing.T) {
	if (&Policy{Budget: 12.5}).Name() != "budgeted-dynamic(B=12.5,greedy)" {
		t.Errorf("name = %q", (&Policy{Budget: 12.5}).Name())
	}
	if (&Policy{Budget: 1, UseDP: true}).Name() != "budgeted-dynamic(B=1.0,dp)" {
		t.Errorf("dp name = %q", (&Policy{Budget: 1, UseDP: true}).Name())
	}
}
