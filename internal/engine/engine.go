package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"dyncontract/internal/contract"
	"dyncontract/internal/effort"
	"dyncontract/internal/spans"
	"dyncontract/internal/telemetry"
	"dyncontract/internal/worker"
)

// ErrStop is returned by an Observer's OnRoundEnd to halt the run cleanly
// (Engine.Run returns nil). Any other observer error aborts the run and is
// returned verbatim.
var ErrStop = errors.New("engine: stop requested")

// ErrBadConfig is returned when an engine configuration fails validation.
var ErrBadConfig = errors.New("engine: invalid configuration")

// Observer receives streamed per-round events. Implementations that only
// care about a subset should embed Hooks or leave methods empty; events
// fire in order OnContracts → OnOutcome (per agent, by ID) → OnRoundEnd.
//
// Observers let callers stream instead of accumulating ledgers: a
// million-round run with a streaming observer holds one Round in memory.
type Observer interface {
	// OnContracts fires after the policy posts the round's contracts. The
	// map is the engine's working copy — treat it as read-only and valid
	// only for the duration of the callback (policies reuse it across
	// rounds); copy it to retain it.
	OnContracts(round int, contracts map[string]*contract.PiecewiseLinear)
	// OnOutcome fires once per agent, in agent-ID order.
	OnOutcome(round int, oc AgentOutcome)
	// OnRoundEnd fires with the completed round. Returning ErrStop ends
	// the run cleanly; any other error aborts it.
	OnRoundEnd(round Round) error
}

// Hooks adapts optional funcs into an Observer; nil funcs are skipped.
type Hooks struct {
	Contracts func(round int, contracts map[string]*contract.PiecewiseLinear)
	Outcome   func(round int, oc AgentOutcome)
	RoundEnd  func(round Round) error
}

var _ Observer = Hooks{}

// OnContracts implements Observer.
func (h Hooks) OnContracts(round int, contracts map[string]*contract.PiecewiseLinear) {
	if h.Contracts != nil {
		h.Contracts(round, contracts)
	}
}

// OnOutcome implements Observer.
func (h Hooks) OnOutcome(round int, oc AgentOutcome) {
	if h.Outcome != nil {
		h.Outcome(round, oc)
	}
}

// OnRoundEnd implements Observer.
func (h Hooks) OnRoundEnd(round Round) error {
	if h.RoundEnd != nil {
		return h.RoundEnd(round)
	}
	return nil
}

// Ledger is the accumulating Observer: it collects every completed round,
// reproducing the []Round return of the pre-engine simulators.
type Ledger struct {
	Rounds []Round
}

var _ Observer = (*Ledger)(nil)

// OnContracts implements Observer.
func (l *Ledger) OnContracts(int, map[string]*contract.PiecewiseLinear) {}

// OnOutcome implements Observer.
func (l *Ledger) OnOutcome(int, AgentOutcome) {}

// OnRoundEnd implements Observer. The engine reuses the round's Outcomes
// backing array for the next round, so the ledger — which retains rounds
// past the callback — copies it.
func (l *Ledger) OnRoundEnd(round Round) error {
	round.Outcomes = append([]AgentOutcome(nil), round.Outcomes...)
	l.Rounds = append(l.Rounds, round)
	return nil
}

// Total sums the requester's utility over the collected rounds.
func (l *Ledger) Total() float64 { return TotalUtility(l.Rounds) }

// Responder chooses an agent's effort for a round instead of the exact
// myopic best response — the hook strategic adversaries plug into. The
// returned effort is clamped to [0, min(mδ, apex)].
type Responder func(round int, a *worker.Agent, c *contract.PiecewiseLinear, part effort.Partition) (float64, error)

// Config assembles one engine run.
type Config struct {
	// Policy prices each round. Required.
	Policy Policy
	// Rounds is the number of rounds to run. Required (> 0); observers can
	// end the run earlier through ErrStop.
	Rounds int
	// Drift, when non-nil, runs before each round and may mutate the
	// population (behaviour drift, weight re-estimation, …).
	Drift func(round int, pop *Population)
	// Responder, when non-nil, overrides the exact best response.
	Responder Responder
	// Observers receive the streamed events of every round.
	Observers []Observer
	// Cache, when non-nil, is wired into the policy (if it implements
	// CacheUser) and surfaced through Engine.CacheStats. Designs then
	// dedup across rounds, not just within one.
	Cache *Cache
	// Memo, when non-nil, memoizes exact best responses keyed by (design
	// fingerprint, contract): a warm round with k distinct fingerprints
	// performs k memo lookups and zero BestResponse calls. Misses are
	// solved through the bounded parallel fan-out. Ignored when a custom
	// Responder is set (hooks may be round-dependent). Like the design
	// cache, the memo is a pure optimization — the ledger is byte-
	// identical with or without it.
	Memo *RespondMemo
	// ParallelRespond caps the respond stage's parallel fan-out. For memo
	// misses 0 means GOMAXPROCS (the fan-out is always on); for the
	// non-memoized routes — per-agent BestResponse, or a custom Responder
	// — parallelism is opt-in: 0 keeps the classic sequential loop, > 0
	// fans out (a custom Responder must then be safe for concurrent
	// calls). Outcomes are written into pre-assigned slots, so every
	// setting produces the same ledger in the same order.
	ParallelRespond int
	// Shards switches the round pipeline to per-shard execution: 0 keeps
	// today's sequential loop; n > 0 partitions the ID-sorted agent view
	// into min(n, agents) deterministic shards by ID hash (ShardOf — the
	// same agent lands in the same shard across rounds and processes).
	// Design and respond run per shard — concurrently on a bounded pool
	// when there is real work — and results merge in global ID order, so
	// the ledger is byte-identical to the sequential engine for every
	// value of Shards. Policies implementing ShardPolicy additionally get
	// per-shard design with warm-round skipping; plain policies keep their
	// single Contracts call and shard only the respond stage.
	//
	// Sharding extends the Bump contract: each shard carries indexed
	// views of Weights, MaliceProb, and the design fingerprints, rebuilt
	// under the same rule as the cached agent view. With no Drift
	// configured, mutating weights, malice probabilities, or agent
	// parameters in place therefore requires a Population.Bump for a
	// sharded engine to observe it (the sequential engine re-reads the
	// maps every round); with a Drift the views rebuild every round and no
	// Bump is needed.
	Shards int
	// Metrics, when non-nil, instruments the run: per-stage round timing
	// histograms, per-round ledger gauges (the same set TelemetryObserver
	// exports), the design cache's counters (Cache.ExportTo), and — for
	// policies implementing MetricsUser — the solver fan-out.
	// telemetry.Nop (a nil registry) leaves the run un-instrumented;
	// enabling metrics never changes the simulated ledger.
	Metrics *telemetry.Registry
}

// Engine drives the repeated Stackelberg round loop of §II over one
// population: drift → contracts → best responses → accounting → observers.
type Engine struct {
	pop       *Population
	cfg       Config
	m         *stageMetrics      // nil when Config.Metrics is unset
	telObs    *telemetryObserver // nil when Config.Metrics is unset
	agents    []*worker.Agent    // cached ID-sorted view (see roundAgents)
	agentsOK  bool
	agentsGen uint64
	outs      []AgentOutcome // Round.Outcomes backing array, reused per round
	rs        respondScratch // respond-stage buffers, reused per round
	rt        roundState     // per-round pipeline state, reused per round
	stepped   int            // rounds completed through Step (not Run)

	// Drift-scope state (see beginScope): the round's consumed view rule.
	// Touched and structural IDs resolve against byID, the cached view's
	// lazily built ID index (id → view position). A structural splice
	// re-points only the moved survivor segments plus the churn — or,
	// when most of the view shifted, invalidates the index and lets the
	// next scoped round rebuild it once; a full view rebuild always
	// invalidates.
	byID          map[string]int32
	byIDOK        bool
	scope         driftScope
	scopeIDs      []string // takeScope's reusable backing slices
	scopeJoinIDs  []string
	scopeLeaveIDs []string

	// Structural-splice state (viewStructural; see prepareStructural and
	// spliceView): the resolved joiner objects in ID order, the outcome
	// slot assigned to each, and the joiner-ID set (to skip joiners in
	// the plain-touched loops).
	structJoins     []*worker.Agent
	structJoinSlots []int32
	structJoinSet   map[string]struct{}
	joinWant        map[string]int32 // scratch: joiner ID → structJoins index

	// Outcome-slot indirection for sharded structural drift: agent i of
	// the ID-sorted view owns physical slot slots[i] of outs. fragmented
	// is false for the identity mapping (no structural splice since the
	// last full rebuild or compaction — the common case, where slots is
	// not consulted at all); once a sharded splice runs, leavers
	// tombstone their slot, joiners take fresh tail slots ([physLen,…)),
	// and stageRespond gathers live outcomes back into ID order before
	// settlement. Compaction (maybeCompact) renumbers the slots back to
	// identity when tombstones pass the fragmentation threshold.
	fragmented bool
	slots      []int32
	physLen    int
	tombstones int
	ordered    []AgentOutcome // ID-order gather buffer / compaction double buffer
	slotRemap  []int32        // compaction scratch: old slot → new slot

	// Sharded-pipeline state (Config.Shards > 0); see shard.go.
	shardPol  ShardPolicy // non-nil when the policy supports per-shard design
	patchPol  bool        // the policy is FingerprintPure — sparse drifts may patch slots
	shards    []shardRun
	shardPtrs []*Shard // scratch for shardAssign, aliasing shards
	shardsOK  bool
	shardsGen uint64
	viewEpoch uint64 // advances on every shard-view rebuild (Shard.Epoch)
	merged    map[string]*contract.PiecewiseLinear
	// lastDeclared/lastApplied record the previous round's drift
	// classification: the rule beginScope derived from the declared scope,
	// and the rule the round actually ran under after any escalation in
	// roundAgents (a structural sparse scope escalates to viewFull). See
	// LastDriftClass.
	lastDeclared viewRule
	lastApplied  viewRule

	// fpCounts refcounts the live design fingerprints across every shard
	// view — maintained eagerly at every point a fingerprint is written
	// (full rebuilds count through shardAssign; sparse refreshes and
	// structural splices adjust in place), never by walking the views. A
	// fingerprint whose count hits zero is dead: no agent mints it any
	// more, so its design-cache and respond-memo entries are dropped
	// (targeted invalidation). Nil when the engine has neither a design
	// cache nor a respond memo — nothing to evict, no index to keep.
	fpCounts map[Fingerprint]int32
	deadFPs  []Fingerprint // per-refresh scratch of zero-count fingerprints

	// Per-shard structural splice scratch (refreshShardsStructural):
	// joins/leaves grouped by owning shard (indices into structJoins and
	// scope.leaves).
	shardJoins  [][]int32
	shardLeaves [][]int32
	// Splice scratch shared by spliceView and spliceShard: the
	// binary-searched insertion index of each join, the slot index of
	// each leave, the survivor segments with their target offsets, and
	// each join's destination index. Splices run in place over the
	// retained arrays — only segments whose offset is nonzero move, so
	// clustered churn costs the shifted span, not the view length.
	msJoinPos  []int32
	msLeavePos []int32
	msJoinDst  []int32
	msSegs     []spliceSeg
}

// viewRule is one round's decision on the cached agent and shard views,
// derived from the consumed drift scope (see beginScope).
type viewRule uint8

const (
	// viewKeep retains every cached view (no declared drift; the
	// generation compare remains as the cross-engine backstop).
	viewKeep viewRule = iota
	// viewSparse refreshes only the state touched by the declared IDs;
	// it escalates to viewFull when the scope turns out structural.
	viewSparse
	// viewStructural splices declared joins/leaves into the cached views
	// in place (plus the scope's plain-touched refreshes); it escalates
	// to viewFull when the declarations fail the consistency checks.
	viewStructural
	// viewFull rebuilds the agent view and every shard view from scratch.
	viewFull
)

// String names the rule for span attributes, logs, and metrics labels.
func (v viewRule) String() string {
	switch v {
	case viewKeep:
		return "viewKeep"
	case viewSparse:
		return "viewSparse"
	case viewStructural:
		return "viewStructural"
	case viewFull:
		return "viewFull"
	}
	return "viewUnknown"
}

// driftScope is the consumed per-round drift scope.
type driftScope struct {
	rule viewRule
	ids  []string // touched agent IDs (viewSparse and viewStructural)
	// joins/leaves are the declared structural halves, meaningful only
	// under viewStructural; prepareStructural sorts both in place.
	joins  []string
	leaves []string
}

// roundState carries one round through the pipeline's stages. The engine
// keeps a single instance and resets it per round, so the pipeline
// allocates nothing in steady state.
type roundState struct {
	r         int
	timed     bool
	agents    []*worker.Agent
	contracts map[string]*contract.PiecewiseLinear
	round     Round
	// workerUtility is the respond stage's summed accepted-agent utility
	// (only computed for instrumented runs on the sequential routes).
	workerUtility float64
	// observeDur accumulates observer-dispatch time recorded outside the
	// observe stage proper (the OnContracts fan-out runs between design
	// and respond but bills to the observe histogram).
	observeDur time.Duration
	// span is the round's "engine.round" span (nil when the incoming
	// context carries none — the untraced hot path), and stageSpan the
	// currently running stage's child span, the parent for per-shard
	// spans. Both are nil-safe throughout.
	span      *spans.Span
	stageSpan *spans.Span
}

// stage is one step of the engine's round pipeline. Stages run in order;
// instrumented engines observe each stage's duration into its histogram.
type stage struct {
	name string
	// spanName is the stage's span name, precomputed so traced rounds do
	// no per-stage string building.
	spanName string
	// hist selects the stage's histogram (nil for fold/final stages).
	hist func(*stageMetrics) *telemetry.Histogram
	// fold accumulates the stage's duration into roundState.observeDur
	// instead of observing a histogram (the OnContracts dispatch).
	fold bool
	// final marks the observe stage: its duration (plus the folded
	// observer time) and the whole round's duration are observed even
	// when the stage errors — a stopped round was still a full round.
	final bool
	run   func(*Engine, context.Context, *roundState) error
}

// roundPipeline is the engine's round body: contract design, OnContracts
// dispatch, worker best responses, outcome settlement (Eq. (7)), observer
// dispatch. Design and respond switch between the sequential and sharded
// routes on Config.Shards; the other stages are shared.
var roundPipeline = [...]stage{
	{name: "design", spanName: "engine.stage.design", hist: func(m *stageMetrics) *telemetry.Histogram { return m.design }, run: (*Engine).stageDesign},
	{name: "contracts", spanName: "engine.stage.contracts", fold: true, run: (*Engine).stageContracts},
	{name: "respond", spanName: "engine.stage.respond", hist: func(m *stageMetrics) *telemetry.Histogram { return m.respond }, run: (*Engine).stageRespond},
	{name: "settle", spanName: "engine.stage.settle", hist: func(m *stageMetrics) *telemetry.Histogram { return m.settle }, run: (*Engine).stageSettle},
	{name: "observe", spanName: "engine.stage.observe", final: true, run: (*Engine).stageObserve},
}

// New validates the population and configuration and wires the cache and
// metrics registry into the policy when supported.
func New(pop *Population, cfg Config) (*Engine, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("nil policy: %w", ErrBadConfig)
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("rounds=%d must be positive: %w", cfg.Rounds, ErrBadConfig)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("shards=%d must be >= 0: %w", cfg.Shards, ErrBadConfig)
	}
	if err := pop.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cache != nil {
		if cu, ok := cfg.Policy.(CacheUser); ok {
			cu.UseCache(cfg.Cache)
		}
	}
	e := &Engine{pop: pop, cfg: cfg}
	if cfg.Shards > 0 {
		if sp, ok := cfg.Policy.(ShardPolicy); ok {
			e.shardPol = sp
			_, e.patchPol = cfg.Policy.(FingerprintPurePolicy)
		}
	}
	if cfg.Metrics != nil {
		if mu, ok := cfg.Policy.(MetricsUser); ok {
			mu.UseMetrics(cfg.Metrics)
		}
		if cfg.Cache != nil {
			cfg.Cache.ExportTo(cfg.Metrics)
		}
		if cfg.Memo != nil {
			cfg.Memo.ExportTo(cfg.Metrics)
		}
		e.m = newStageMetrics(cfg.Metrics)
		// Ledger metrics are exported directly in Run rather than by
		// stacking TelemetryObserver into Observers: the per-agent
		// OnOutcome dispatch loop stays exactly as long as the caller made
		// it, which keeps instrumentation overhead off the hot path. The
		// export happens before user observers fire, so a per-round
		// metrics flush reads the registry already updated for the round.
		e.telObs = newTelemetryObserver(cfg.Metrics)
	}
	return e, nil
}

// CacheStats snapshots the configured cache's counters (zero when no cache
// was configured).
func (e *Engine) CacheStats() CacheStats {
	if e.cfg.Cache == nil {
		return CacheStats{}
	}
	return e.cfg.Cache.Stats()
}

// RespondStats snapshots the configured respond memo's counters (zero
// when no memo was configured).
func (e *Engine) RespondStats() RespondStats {
	if e.cfg.Memo == nil {
		return RespondStats{}
	}
	return e.cfg.Memo.Stats()
}

// Run executes the configured number of rounds, streaming events to the
// observers. It returns nil on completion or clean ErrStop, and the first
// error otherwise (context cancellation, policy/design failure, a drift
// that broke the population, or an observer error).
//
// Each round walks the stage pipeline — contract design, worker
// best-response, outcome settlement, observer dispatch — and when
// Config.Metrics is set each stage's duration is observed into its
// _seconds histogram (observer dispatch on either side of respond bills
// to the observe histogram). The observable event order is the same on
// every route, sequential or sharded: OnContracts, then one OnOutcome per
// agent in ID order, then OnRoundEnd.
func (e *Engine) Run(ctx context.Context) error {
	for r := 0; r < e.cfg.Rounds; r++ {
		if err := e.runRound(ctx, r); err != nil {
			if errors.Is(err, ErrStop) {
				return nil
			}
			return err
		}
	}
	return nil
}

// Step executes exactly one round — drift, design, respond, settle,
// observe — using the engine's own step counter as the round index, and
// advances the counter when the round completes. It is the entry point
// for long-lived callers (servers, interactive drivers) that advance a
// session on demand instead of running a fixed horizon; Config.Rounds is
// ignored by Step (it must still validate as positive).
//
// Unlike Run, Step returns ErrStop verbatim when an observer requests a
// stop — the caller owns the loop, so it also owns the decision. A failed
// round (context cancellation, design error) does not advance the counter
// and leaves no trace in the ledger, so retrying is safe. Mixing Run and
// Step on one engine is not supported: Run always restarts from round 0.
//
// Step is not safe for concurrent use — serialize calls through a single
// writer, as internal/server does.
func (e *Engine) Step(ctx context.Context) error {
	err := e.runRound(ctx, e.stepped)
	if err == nil || errors.Is(err, ErrStop) {
		e.stepped++
	}
	return err
}

// Stepped returns the number of rounds completed through Step.
func (e *Engine) Stepped() int { return e.stepped }

// SetStepped sets the step counter so the next Step runs round n. It
// exists for session recovery: a journal snapshot restores a population
// and a ledger of n completed rounds into a fresh engine, and replayed
// or newly served rounds must continue the index sequence — ledger
// determinism across cold and warm engines does the rest. Negative n is
// clamped to 0. Call it before the first Step, never mid-run.
func (e *Engine) SetStepped(n int) {
	if n < 0 {
		n = 0
	}
	e.stepped = n
}

// runRound executes one round of the stage pipeline. ErrStop from an
// observer is returned verbatim; callers decide whether it ends the run.
func (e *Engine) runRound(ctx context.Context, r int) error {
	timed := e.m != nil
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("engine: round %d: %w", r, err)
	}
	if e.cfg.Drift != nil {
		e.cfg.Drift(r, e.pop)
	}
	e.beginScope()
	// A declared structural scope resolves its joins/leaves against the
	// retained view up front; declarations that fail the consistency
	// checks demote the round to the classic full rebuild.
	if e.scope.rule == viewStructural {
		if !e.prepareStructural() {
			e.scope.rule = viewFull
		} else if e.m != nil {
			e.m.driftTouched.Add(uint64(len(e.scope.ids)))
			e.m.driftJoins.Add(uint64(len(e.scope.joins)))
			e.m.driftLeaves.Add(uint64(len(e.scope.leaves)))
		}
	}
	if e.cfg.Drift != nil {
		// Scope-aware revalidation: a declared, non-structural sparse
		// drift re-checks only the touched agents, a declared structural
		// drift re-checks the joiners plus the touched agents; anything
		// else (Bump, undeclared mutations) re-checks everything.
		var err error
		switch {
		case e.scope.rule == viewSparse && !e.scopeStructural():
			err = e.validateTouched()
		case e.scope.rule == viewStructural:
			err = e.validateStructural()
		default:
			err = e.pop.Validate()
		}
		if err != nil {
			return fmt.Errorf("engine: drift broke population at round %d: %w", r, err)
		}
	}

	e.lastDeclared = e.scope.rule

	e.rt = roundState{r: r, timed: timed}
	st := &e.rt
	// Traced rounds hang an "engine.round" span with one child per stage
	// off the caller's span; the untraced path pays one context lookup
	// and nil branches — no allocation, so the warm-round zero-alloc pin
	// holds.
	if parent := spans.FromContext(ctx); parent != nil {
		st.span = parent.StartChild("engine.round")
		st.span.SetInt("round", int64(r))
		ctx = spans.ContextWith(ctx, st.span)
		defer e.endRoundSpan(st)
	}
	var roundTimer telemetry.Timer
	if timed {
		roundTimer = telemetry.StartTimer()
	}
	for si := range roundPipeline {
		sg := &roundPipeline[si]
		var stageTimer telemetry.Timer
		if timed {
			stageTimer = telemetry.StartTimer()
		}
		if st.span != nil {
			st.stageSpan = st.span.StartChild(sg.spanName)
		}
		err := sg.run(e, ctx, st)
		if st.stageSpan != nil {
			st.stageSpan.End()
			st.stageSpan = nil
		}
		if timed && (err == nil || sg.final) {
			d := stageTimer.Elapsed()
			switch {
			case sg.fold:
				st.observeDur += d
			case sg.final:
				e.m.observe.Observe((d + st.observeDur).Seconds())
				e.m.round.Observe(roundTimer.Seconds())
			default:
				sg.hist(e.m).Observe(d.Seconds())
			}
		}
		if err != nil {
			return err
		}
	}
	e.lastApplied = e.scope.rule
	return nil
}

// endRoundSpan finishes a traced round's span with the round's summary
// attributes: the drift classification the round ran under (after any
// escalation), the agent count, and the shard count.
func (e *Engine) endRoundSpan(st *roundState) {
	st.span.SetAttr("drift.declared", e.lastDeclared.String())
	st.span.SetAttr("drift", e.scope.rule.String())
	st.span.SetInt("agents", int64(len(st.agents)))
	if e.cfg.Shards > 0 {
		st.span.SetInt("shards", int64(len(e.shards)))
	}
	st.span.End()
}

// LastDriftClass reports the previous successful round's drift
// classification: the rule derived from the declared scope and the rule
// the round actually applied — they differ exactly when a declared
// sparse scope escalated to the full rebuild (a structural change). The
// serving layer logs that escalation; traced rounds carry both values as
// span attributes.
func (e *Engine) LastDriftClass() (declared, applied string) {
	return e.lastDeclared.String(), e.lastApplied.String()
}

// stageDesign resolves the round's agent view and asks the policy for
// contracts — whole-population on the sequential route, per shard under
// Config.Shards.
func (e *Engine) stageDesign(ctx context.Context, st *roundState) error {
	st.agents = e.roundAgents()
	if e.cfg.Shards > 0 {
		return e.designSharded(ctx, st)
	}
	contracts, err := e.cfg.Policy.Contracts(ctx, e.pop)
	if err != nil {
		return fmt.Errorf("engine: policy %s round %d: %w", e.cfg.Policy.Name(), st.r, err)
	}
	st.contracts = contracts
	return nil
}

// stageContracts dispatches OnContracts. (On the sharded dense route with
// no observers the merged map is never built and st.contracts is nil.)
func (e *Engine) stageContracts(_ context.Context, st *roundState) error {
	for _, ob := range e.cfg.Observers {
		ob.OnContracts(st.r, st.contracts)
	}
	return nil
}

// stageRespond computes worker best responses into the reused outcomes
// backing array; observers that retain it past their callback (as Ledger
// does) must copy. Under a fragmented slot mapping (structural drift)
// responds write to physical slots and the live outcomes are gathered
// back into ID order before settlement; with the identity mapping the
// backing array is already in ID order.
func (e *Engine) stageRespond(ctx context.Context, st *roundState) error {
	agents := st.agents
	phys := len(agents)
	if e.fragmented {
		phys = e.physLen
	}
	if cap(e.outs) < phys {
		// Grow with copy: every retained outcome keeps its physical slot
		// (joiners take fresh tail slots), so shard warm state survives
		// the reallocation.
		newCap := phys
		if c := 2 * cap(e.outs); c > newCap {
			newCap = c
		}
		grown := make([]AgentOutcome, newCap)
		copy(grown, e.outs)
		e.outs = grown
	}
	st.round = Round{Index: st.r, Outcomes: e.outs[:phys]}
	var wu float64
	var err error
	if e.cfg.Shards > 0 {
		wu, err = e.respondSharded(ctx, st)
	} else {
		wu, err = e.respondAll(ctx, st.r, st.contracts, agents, st.round.Outcomes, st.timed)
	}
	if err != nil {
		return err
	}
	st.workerUtility = wu
	if e.fragmented {
		st.round.Outcomes = e.gatherOutcomes(len(agents))
	}
	return nil
}

// gatherOutcomes copies the live outcomes — physical slots indexed
// through the slot mapping — into the reused ID-order buffer, restoring
// the Round.Outcomes contract (ordered by agent ID, tombstones skipped).
func (e *Engine) gatherOutcomes(n int) []AgentOutcome {
	if cap(e.ordered) < n {
		e.ordered = make([]AgentOutcome, n)
	}
	ord := e.ordered[:n]
	// The slot mapping is identity runs broken only at splice points, so
	// each run of consecutive physical slots copies wholesale.
	for i := 0; i < n; {
		s := int(e.slots[i])
		j := i + 1
		for j < n && int(e.slots[j]) == s+(j-i) {
			j++
		}
		copy(ord[i:j], e.outs[s:s+(j-i)])
		i = j
	}
	return ord
}

// stageSettle runs the Eq. (7) accounting — always one sequential pass in
// global ID order, so sharded and sequential rounds sum bit-identically.
func (e *Engine) stageSettle(_ context.Context, st *roundState) error {
	round := &st.round
	for i := range round.Outcomes {
		oc := &round.Outcomes[i]
		if oc.Excluded || oc.Declined {
			continue
		}
		round.Benefit += oc.Weight * oc.Feedback
		round.Cost += oc.Compensation
	}
	round.Utility = round.Benefit - e.pop.Mu*round.Cost
	if st.timed {
		e.m.workerUtility.Set(st.workerUtility)
	}
	return nil
}

// stageObserve dispatches per-agent outcomes and the round end. The
// registry export runs first so observers that read Config.Metrics (e.g.
// a per-round JSONL flush) see the completed round's values.
func (e *Engine) stageObserve(_ context.Context, st *roundState) error {
	if st.timed {
		_ = e.telObs.OnRoundEnd(st.round) // never errors
	}
	for i := range st.round.Outcomes {
		for _, ob := range e.cfg.Observers {
			ob.OnOutcome(st.r, st.round.Outcomes[i])
		}
	}
	for _, ob := range e.cfg.Observers {
		if err := ob.OnRoundEnd(st.round); err != nil {
			return err
		}
	}
	return nil
}

// beginScope consumes the population's accumulated drift scope into the
// round's view rule. The split:
//
//   - a declared sparse scope (Touch) refreshes only touched state;
//   - a declared structural scope (TouchJoin/TouchLeave, possibly mixed
//     with Touch) splices the views in place;
//   - a declared full scope (Bump) rebuilds everything;
//   - no declaration under a Drift hook keeps the legacy contract — the
//     hook may have mutated anything, so every view rebuilds;
//   - no declaration and no hook keeps the cached views, with the
//     generation compare in roundAgents/ensureShards as the backstop for
//     populations shared with another consumer.
func (e *Engine) beginScope() {
	ids, joins, leaves, all, pending := e.pop.takeScope(e.scopeIDs, e.scopeJoinIDs, e.scopeLeaveIDs)
	e.scopeIDs, e.scopeJoinIDs, e.scopeLeaveIDs = ids, joins, leaves
	switch {
	case pending && all:
		e.scope = driftScope{rule: viewFull}
	case pending && len(joins)+len(leaves) > 0:
		// Counters are deferred to runRound: a structural scope that fails
		// prepareStructural escalates to viewFull and counts nothing.
		e.scope = driftScope{rule: viewStructural, ids: ids, joins: joins, leaves: leaves}
	case pending:
		e.scope = driftScope{rule: viewSparse, ids: ids}
		if e.m != nil {
			e.m.driftTouched.Add(uint64(len(ids)))
		}
	case e.cfg.Drift != nil:
		e.scope = driftScope{rule: viewFull}
	default:
		e.scope = driftScope{rule: viewKeep}
	}
}

// roundAgents returns the ID-ordered agent view. The cached view is kept
// whenever the round's rule allows it: always under viewKeep with an
// unmoved generation, and under a non-structural viewSparse — a sparse
// drift mutates agents in place through the retained pointers, so the
// sorted view itself is still exact. A declared structural scope
// (validated by prepareStructural before the stages ran) splices the
// cached view in place; an undeclared structural sparse scope (an ID
// added, removed, or never seen) escalates the whole round to viewFull,
// which rebuilds here and cascades into ensureShards.
func (e *Engine) roundAgents() []*worker.Agent {
	gen := e.pop.Generation()
	if e.agentsOK {
		switch e.scope.rule {
		case viewKeep:
			if e.agentsGen == gen {
				return e.agents
			}
		case viewSparse:
			if !e.scopeStructural() {
				e.agentsGen = gen
				return e.agents
			}
		case viewStructural:
			e.spliceView()
			e.agentsGen = gen
			return e.agents
		}
	}
	e.scope.rule = viewFull
	e.agents = append(e.agents[:0], e.pop.Agents...)
	sort.Slice(e.agents, func(i, j int) bool { return e.agents[i].ID < e.agents[j].ID })
	e.agentsOK = true
	e.agentsGen = gen
	e.byIDOK = false
	return e.agents
}

// ensureByID (re)builds the ID index over the cached agent view. Lazy:
// full-rebuild rounds never touch it, scoped rounds build it once and
// structural splices keep it current in place (see the field comment).
func (e *Engine) ensureByID() {
	if e.byIDOK {
		return
	}
	if e.byID == nil {
		e.byID = make(map[string]int32, len(e.agents))
	} else {
		clear(e.byID)
	}
	for i, a := range e.agents {
		e.byID[a.ID] = int32(i)
	}
	e.byIDOK = true
}

// findAgent returns id's index in the cached ID-sorted agent view, or -1
// — the positional complement of byID, for the few per-splice lookups
// that need an index rather than the agent.
func (e *Engine) findAgent(id string) int {
	lo, hi := 0, len(e.agents)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if e.agents[mid].ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(e.agents) && e.agents[lo].ID == id {
		return lo
	}
	return -1
}

// lowerBoundAgents returns the first index in the ID-sorted slice whose
// agent ID is >= id (len(agents) when none is) — the splice insertion
// point for an ID not present.
func lowerBoundAgents(agents []*worker.Agent, id string) int {
	lo, hi := 0, len(agents)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if agents[mid].ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// scopeStructural reports whether the round's sparse scope names an
// undeclared structural change: a population size that moved, or a
// touched ID the retained view does not hold (an added, removed, or
// foreign agent). Undeclared structural scopes always take the
// full-rebuild path — declared joins/leaves arrive as viewStructural and
// splice in place instead.
func (e *Engine) scopeStructural() bool {
	if len(e.pop.Agents) != len(e.agents) {
		return true
	}
	e.ensureByID()
	for _, id := range e.scope.ids {
		if _, ok := e.byID[id]; !ok {
			return true
		}
	}
	return false
}

// prepareStructural resolves a declared structural scope against the
// retained view: it sorts the join/leave declarations, runs the
// consistency checks the engine can afford without an O(population)
// pass, and resolves each joiner ID to its agent object. It reports
// false — and the caller escalates the round to viewFull — when the
// scope cannot be applied sparsely: no retained view yet, an ID declared
// both joined and left (ambiguous against a view that only sees the
// endpoints), a joiner already in the view, a leaver missing from it, a
// joiner that does not resolve in Population.Agents, a plain-touched ID
// resolving nowhere, or a population length that disagrees with the
// declarations. Declarations the checks cannot refute are trusted,
// exactly like Touch: an inaccurate scope is the caller's bug.
func (e *Engine) prepareStructural() bool {
	if !e.agentsOK {
		return false
	}
	joins, leaves := e.scope.joins, e.scope.leaves
	sort.Strings(joins)
	sort.Strings(leaves)
	if len(e.pop.Agents) != len(e.agents)+len(joins)-len(leaves) {
		return false
	}
	for ji, li := 0, 0; ji < len(joins) && li < len(leaves); {
		switch {
		case joins[ji] == leaves[li]:
			return false
		case joins[ji] < leaves[li]:
			ji++
		default:
			li++
		}
	}
	e.ensureByID()
	for _, id := range leaves {
		if _, ok := e.byID[id]; !ok {
			return false
		}
	}
	if e.structJoinSet == nil {
		e.structJoinSet = make(map[string]struct{}, len(joins))
	} else {
		clear(e.structJoinSet)
	}
	if e.joinWant == nil {
		e.joinWant = make(map[string]int32, len(joins))
	} else {
		clear(e.joinWant)
	}
	e.structJoins = e.structJoins[:0]
	for k, id := range joins {
		if _, ok := e.byID[id]; ok {
			return false
		}
		e.structJoinSet[id] = struct{}{}
		e.joinWant[id] = int32(k)
		e.structJoins = append(e.structJoins, nil)
	}
	// Joiners are appended in practice, so the reverse scan usually stops
	// after a handful of steps rather than walking the whole population.
	found := 0
	for i := len(e.pop.Agents) - 1; i >= 0 && found < len(joins); i-- {
		a := e.pop.Agents[i]
		if a == nil {
			return false
		}
		if k, ok := e.joinWant[a.ID]; ok && e.structJoins[k] == nil {
			e.structJoins[k] = a
			found++
		}
	}
	if found != len(joins) {
		return false
	}
	for _, id := range e.scope.ids {
		if _, ok := e.structJoinSet[id]; ok {
			continue
		}
		if _, ok := e.byID[id]; !ok {
			return false
		}
	}
	return true
}

// spliceSeg is one contiguous run of surviving elements in an in-place
// structural splice: n elements starting at src in the old layout that
// land at dst in the new one.
type spliceSeg struct {
	src, dst, n int32
}

// buildSpliceSegs walks the resolved join and leave positions in merge
// order (both ID-sorted, join first on a tie, matching the old view's
// total order) and appends the survivor segments to segs and each join's
// destination index in the new layout to jdst. Segments whose offset is
// zero never move, so clustered churn costs only the shifted span.
func buildSpliceSegs(segs []spliceSeg, jdst []int32, jpos, lpos []int32, n int) ([]spliceSeg, []int32) {
	src, shift := 0, 0
	emit := func(end int) {
		if end > src {
			segs = append(segs, spliceSeg{src: int32(src), dst: int32(src + shift), n: int32(end - src)})
		}
		src = end
	}
	ji, li := 0, 0
	for ji < len(jpos) || li < len(lpos) {
		jp, lp := n+1, n+1
		if ji < len(jpos) {
			jp = int(jpos[ji])
		}
		if li < len(lpos) {
			lp = int(lpos[li])
		}
		if jp <= lp {
			emit(jp)
			jdst = append(jdst, int32(jp+shift))
			shift++
			ji++
		} else {
			emit(lp)
			src = lp + 1
			shift--
			li++
		}
	}
	emit(n)
	return segs, jdst
}

// spliceMove applies the survivor segments to buf in place: left-moving
// segments run left to right and right-moving ones right to left. Final
// destinations are disjoint and ordered, so neither pass can overwrite a
// source that has not been consumed yet, and zero-offset segments cost
// nothing. The caller grows buf to the larger of the old and new lengths
// before moving and truncates after.
func spliceMove[T any](buf []T, segs []spliceSeg) {
	for _, s := range segs {
		if s.dst < s.src {
			copy(buf[s.dst:s.dst+s.n], buf[s.src:s.src+s.n])
		}
	}
	for i := len(segs) - 1; i >= 0; i-- {
		if s := segs[i]; s.dst > s.src {
			copy(buf[s.dst:s.dst+s.n], buf[s.src:s.src+s.n])
		}
	}
}

// grown returns buf extended to length n with zero values (its length
// never shrinks here; splices truncate after the moves).
func grown[T any](buf []T, n int) []T {
	var zero T
	for len(buf) < n {
		buf = append(buf, zero)
	}
	return buf
}

// spliceView applies the round's resolved structural scope to the cached
// ID-sorted view in place: survivor segments between the ID-sorted splice
// points shift by their cumulative join/leave offset (most never move),
// then each joiner lands at its final index. On the sharded pipeline the
// outcome-slot indirection updates alongside: every surviving agent keeps
// its physical slot, each leaver's slot becomes a tombstone, and each
// joiner takes a fresh tail slot (recorded in structJoinSlots for the
// shard splice); compaction is deferred to maybeCompact. The sequential
// route rewrites every outcome each round, so it keeps the identity
// mapping and maintains no slot state.
func (e *Engine) spliceView() {
	joins, leaves := e.structJoins, e.scope.leaves
	sharded := e.cfg.Shards > 0
	if sharded && !e.fragmented {
		n := len(e.agents)
		if cap(e.slots) < n {
			e.slots = make([]int32, n)
		}
		e.slots = e.slots[:n]
		for i := range e.slots {
			e.slots[i] = int32(i)
		}
		e.physLen = n
		e.tombstones = 0
		e.fragmented = true
	}
	if cap(e.structJoinSlots) < len(joins) {
		e.structJoinSlots = make([]int32, len(joins))
	}
	e.structJoinSlots = e.structJoinSlots[:len(joins)]
	// Resolve every splice position up front — joins and leaves arrive
	// ID-sorted, so their positions are non-decreasing and the merge
	// reduces to contiguous survivor segments.
	jpos := e.msJoinPos[:0]
	for _, a := range joins {
		jpos = append(jpos, int32(lowerBoundAgents(e.agents, a.ID)))
	}
	lpos := e.msLeavePos[:0]
	for _, id := range leaves {
		lpos = append(lpos, int32(e.findAgent(id))) // resolved by prepareStructural
	}
	segs, jdst := buildSpliceSegs(e.msSegs[:0], e.msJoinDst[:0], jpos, lpos, len(e.agents))

	nOld := len(e.agents)
	nNew := nOld + len(joins) - len(leaves)
	e.agents = grown(e.agents, nNew)
	if sharded {
		e.slots = grown(e.slots, nNew)
	}
	spliceMove(e.agents, segs)
	if sharded {
		spliceMove(e.slots, segs)
	}
	for k, a := range joins {
		d := jdst[k]
		e.agents[d] = a
		if sharded {
			e.structJoinSlots[k] = int32(e.physLen)
			e.slots[d] = int32(e.physLen)
			e.physLen++
		}
	}
	if nNew < len(e.agents) {
		for i := nNew; i < len(e.agents); i++ {
			e.agents[i] = nil // release the pointer tail
		}
		e.agents = e.agents[:nNew]
	}
	if sharded {
		e.slots = e.slots[:nNew]
		e.tombstones += len(leaves)
	}
	// Keep the ID index current: only the moved survivor segments change
	// position, so the edit is O(moved span + churn). A splice that
	// shifted most of the view (scattered churn) invalidates the index
	// instead — one lazy rebuild beats re-hashing nearly every ID here.
	if e.byIDOK {
		moved := len(joins)
		for _, s := range segs {
			if s.dst != s.src {
				moved += int(s.n)
			}
		}
		if moved*4 > nNew {
			e.byIDOK = false
		} else {
			for _, id := range leaves {
				delete(e.byID, id)
			}
			for _, s := range segs {
				if s.dst == s.src {
					continue
				}
				for i := s.dst; i < s.dst+s.n; i++ {
					e.byID[e.agents[i].ID] = i
				}
			}
			for k, a := range joins {
				e.byID[a.ID] = jdst[k]
			}
		}
	}
	e.msJoinPos, e.msLeavePos, e.msSegs, e.msJoinDst = jpos, lpos, segs, jdst
}

// validateAgent is the per-agent slice of Population.Validate: agent
// parameters, weight presence and finiteness, malice range.
func (e *Engine) validateAgent(a *worker.Agent) error {
	p := e.pop
	if err := a.Validate(p.Part.YMax()); err != nil {
		return err
	}
	w, ok := p.Weights[a.ID]
	if !ok {
		return fmt.Errorf("agent %q has no weight: %w", a.ID, ErrBadPopulation)
	}
	if math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("agent %q weight=%v: %w", a.ID, w, ErrBadPopulation)
	}
	if mp, ok := p.MaliceProb[a.ID]; ok && !(mp >= 0 && mp <= 1) {
		return fmt.Errorf("agent %q malice probability=%v: %w", a.ID, mp, ErrBadPopulation)
	}
	return nil
}

// validateTouched re-checks exactly the agents named by the round's
// sparse scope plus the scalar Mu check. The structural invariants
// (membership, duplicates, orphan map entries) cannot move under a
// non-structural sparse scope, so the O(population) pass is skipped;
// runRound falls back to the full Validate for every other scope shape.
func (e *Engine) validateTouched() error {
	p := e.pop
	if !(p.Mu > 0) || math.IsInf(p.Mu, 0) {
		return fmt.Errorf("mu=%v: %w", p.Mu, ErrBadPopulation)
	}
	e.ensureByID()
	for _, id := range e.scope.ids {
		if err := e.validateAgent(e.agents[e.byID[id]]); err != nil {
			return err
		}
	}
	return nil
}

// validateStructural re-checks what a declared structural scope can have
// changed: the scalar Mu, every joiner in full, and every plain-touched
// agent still present. Leavers are skipped — their map entries left with
// them — and a touched ID that is also a joiner is covered by the joiner
// pass. Runs before the splice, so plain-touched IDs resolve against the
// pre-splice view.
func (e *Engine) validateStructural() error {
	p := e.pop
	if !(p.Mu > 0) || math.IsInf(p.Mu, 0) {
		return fmt.Errorf("mu=%v: %w", p.Mu, ErrBadPopulation)
	}
	for _, a := range e.structJoins {
		if err := e.validateAgent(a); err != nil {
			return err
		}
	}
	for _, id := range e.scope.ids {
		if _, ok := e.structJoinSet[id]; ok {
			continue
		}
		if leavesHave(e.scope.leaves, id) {
			continue
		}
		if err := e.validateAgent(e.agents[e.byID[id]]); err != nil {
			return err
		}
	}
	return nil
}

// leavesHave reports whether the sorted leave declarations contain id.
func leavesHave(leaves []string, id string) bool {
	i := sort.SearchStrings(leaves, id)
	return i < len(leaves) && leaves[i] == id
}

// RunLedger runs a configured engine to completion and returns the
// accumulated per-round ledger — the convenience path for callers that
// want the classic []Round result. On error the rounds completed so far
// are returned alongside it.
func RunLedger(ctx context.Context, pop *Population, cfg Config) ([]Round, error) {
	led := &Ledger{Rounds: make([]Round, 0, cfg.Rounds)}
	cfg.Observers = append(append([]Observer(nil), cfg.Observers...), led)
	e, err := New(pop, cfg)
	if err != nil {
		return nil, err
	}
	if err := e.Run(ctx); err != nil {
		return led.Rounds, err
	}
	return led.Rounds, nil
}
