package experiments

import (
	"context"
	"fmt"

	"dyncontract/internal/baseline"
	"dyncontract/internal/platform"
	"dyncontract/internal/textplot"
)

// retentionReservations sweeps the workers' outside option u₀.
var retentionReservations = []float64{0, 0.5, 1, 2, 4}

// RunRetention evaluates the retention half of the paper's promise
// ("incentivize users' quality AND retention"): workers have an outside
// option u₀ and decline offers whose best achievable utility falls short.
// The dynamic contract satisfies individual rationality by lifting
// compensation minimally (core's participation lift); the fixed-payment
// baseline has no such lever and bleeds workers as u₀ grows.
//
// Expected shapes: the dynamic policy retains every worker at every u₀
// while fixed pay's participation collapses, and the dynamic requester's
// utility degrades smoothly (paying exactly the lift, never more).
func RunRetention(p *Pipeline, params Params) (*Report, error) {
	rep := &Report{
		ID:     "retention",
		Title:  "worker retention vs outside option u0 (extension)",
		Header: []string{"u0", "policy", "participating", "declined", "utility"},
	}
	ctx := context.Background()
	dynamicRetainsAll := true
	fixedLosesWorkers := false
	var xs, dynUtil []float64
	for _, u0 := range retentionReservations {
		pop, err := p.BuildPopulation(params, 60)
		if err != nil {
			return nil, err
		}
		for _, a := range pop.Agents {
			a.Reservation = u0
		}
		for _, pol := range []platform.Policy{
			&platform.DynamicPolicy{},
			&baseline.FixedPayment{Amount: 1},
		} {
			ledger, err := runLedger(ctx, pop, pol, 1, params)
			if err != nil {
				return nil, fmt.Errorf("retention u0=%v %s: %w", u0, pol.Name(), err)
			}
			participating, declined := 0, 0
			for _, oc := range ledger[0].Outcomes {
				switch {
				case oc.Declined:
					declined++
				case !oc.Excluded:
					participating++
				}
			}
			if _, isDyn := pol.(*platform.DynamicPolicy); isDyn {
				if declined > 0 {
					dynamicRetainsAll = false
				}
				xs = append(xs, u0)
				dynUtil = append(dynUtil, ledger[0].Utility)
			} else if declined > 0 {
				fixedLosesWorkers = true
			}
			rep.Rows = append(rep.Rows, []string{
				f2(u0), pol.Name(),
				fmt.Sprintf("%d", participating), fmt.Sprintf("%d", declined),
				f2(ledger[0].Utility),
			})
		}
	}
	rep.Series = []textplot.Series{{Name: "dynamic utility", X: xs, Y: dynUtil}}
	rep.XLabel = "outside option u0"
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"dynamic contract retains every worker at every u0 (individual rationality lift): %v", dynamicRetainsAll))
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"fixed payment loses workers as u0 grows: %v", fixedLosesWorkers))
	return rep, nil
}
