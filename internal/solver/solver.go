// Package solver runs the decomposed contract-design problem in parallel.
//
// §IV-B shows the requester's bilevel program separates across workers and
// collusive communities: each subproblem designs one agent's contract
// independently. With tens of thousands of workers (the paper's trace has
// 19,686 reviewers) the subproblems are fanned out across a bounded worker
// pool; the pool honours context cancellation and aggregates per-subproblem
// failures without losing the successes.
package solver

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"dyncontract/internal/core"
	"dyncontract/internal/telemetry"
	"dyncontract/internal/worker"
)

// Metric names exported by the solver pool when Options.Metrics is set,
// following the repo-wide dyncontract_<pkg>_<name> scheme.
const (
	// MetricDesigns counts completed core.Design calls (success or
	// failure); cache hits upstream never reach the pool, so this is the
	// number of designs that actually ran.
	MetricDesigns = "dyncontract_solver_designs_total"
	// MetricDesignErrors counts failed core.Design calls.
	MetricDesignErrors = "dyncontract_solver_design_errors_total"
	// MetricDesignSeconds is the per-subproblem design latency histogram.
	MetricDesignSeconds = "dyncontract_solver_design_seconds"
	// MetricBatchSize is the per-call batch-size histogram: how many
	// subproblems each SolveAllInto invocation carried. Cold rounds show
	// the distinct-fingerprint count per shard here; serving-layer design
	// batches show their coalescing window.
	MetricBatchSize = "dyncontract_solver_batch_size"
	// MetricScalarFallbacks counts designs the batched structure-of-arrays
	// solve routed to the scalar core.Design path (core.Scratch.Fallbacks)
	// — degenerate knots, non-finite slope chains, participation lifts the
	// flat arrays cannot reproduce. A rate tracking MetricDesigns means the
	// population silently defeats the batched cold path en masse.
	MetricScalarFallbacks = "dyncontract_solver_scalar_fallbacks_total"
	// MetricScalarFallbackSeconds is the latency histogram of exactly the
	// designs that fell back to the scalar path — the slow subset of
	// MetricDesignSeconds, on the same bins, so the two distributions
	// overlay directly: a fallback-heavy population shows up as this
	// histogram's mass tracking the total's upper tail.
	MetricScalarFallbackSeconds = "dyncontract_solver_scalar_fallback_seconds"
)

// Design-latency bins: uniform over [0, 10ms) in 0.2ms steps (the
// stats.Histogram clamping convention; a m=20 design runs ~10µs, the m
// sweep in bench_ext_test.go tops out well under the clamp).
const (
	designSecondsLo   = 0
	designSecondsHi   = 0.01
	designSecondsBins = 50
)

// Batch-size bins: unit-width over [0, 64) (the stats.Histogram clamping
// convention; shard batches count distinct fingerprints — single digits —
// while serving-layer batches are bounded by the server's BatchMax).
const (
	batchSizeLo   = 0
	batchSizeHi   = 64
	batchSizeBins = 64
)

// scratchPool recycles per-worker design scratch across SolveAllInto
// calls, so even the pooled (parallel) route reuses the batched solve's
// flat arrays instead of allocating them per call.
var scratchPool = sync.Pool{New: func() any { return new(core.Scratch) }}

// Subproblem is one decomposed contract-design task: an agent (worker or
// collusive meta-worker) plus its design configuration.
type Subproblem struct {
	// Agent is the worker or community meta-worker to design for.
	Agent *worker.Agent
	// Config carries the partition, μ, and this agent's requester weight.
	Config core.Config
}

// Options tunes the pool.
type Options struct {
	// Parallelism caps concurrent subproblems; 0 means GOMAXPROCS.
	Parallelism int
	// ContinueOnError keeps solving other subproblems after one fails;
	// failures are reported per-entry in Outcome.Err. When false, the
	// first failure cancels the remaining work.
	ContinueOnError bool
	// Metrics, when non-nil, receives the pool's MetricDesigns /
	// MetricDesignErrors counters, MetricDesignSeconds latency histogram,
	// and MetricBatchSize batch-size histogram. telemetry.Nop (nil)
	// disables collection.
	Metrics *telemetry.Registry
	// Scratch, when non-nil, is the reusable design scratch for the
	// sequential route: with an effective parallelism of 1 every design in
	// the call runs over it inline (no worker goroutine), which is how the
	// sharded engine keeps one CPU-local scratch per shard. Ignored by the
	// parallel route, whose workers draw scratch from an internal pool.
	// The caller must not share one Scratch between concurrent calls.
	Scratch *core.Scratch
}

// Outcome pairs one subproblem with its result or error.
type Outcome struct {
	// Index is the subproblem's position in the input slice.
	Index int
	// Result is the designed contract (nil when Err != nil).
	Result *core.Result
	// Err is the subproblem's failure, if any.
	Err error
}

// ErrCancelled wraps context cancellation observed by the pool.
var ErrCancelled = errors.New("solver: cancelled")

// cancelErr is the one wrap shape for every cancellation the pool
// reports — worker-observed, unfed subproblems, and the pool-level
// return all produce `ErrCancelled: cause`, so errors.Is(err,
// ErrCancelled) and errors.Is(err, context.Canceled) both hold no
// matter which path marked the entry.
func cancelErr(cause error) error {
	return fmt.Errorf("%w: %w", ErrCancelled, cause)
}

// SolveAll designs contracts for every subproblem, in parallel, returning
// outcomes in input order. With ContinueOnError=false (default) the first
// error cancels outstanding work and is returned; with it set, SolveAll
// returns all outcomes and a nil error, leaving per-entry errors in place.
func SolveAll(ctx context.Context, subs []Subproblem, opts Options) ([]Outcome, error) {
	outcomes := make([]Outcome, len(subs))
	err := SolveAllInto(ctx, subs, outcomes, opts)
	return outcomes, err
}

// SolveAllInto is SolveAll writing into a caller-provided outcomes slice
// (len(outcomes) must be at least len(subs)), so hot loops — the engine
// solves every round — can reuse one buffer instead of allocating per
// call. Entries are fully overwritten in input order.
func SolveAllInto(ctx context.Context, subs []Subproblem, outcomes []Outcome, opts Options) error {
	n := len(subs)
	if len(outcomes) < n {
		return fmt.Errorf("solver: outcomes buffer %d shorter than %d subproblems", len(outcomes), n)
	}
	if n == 0 {
		return nil
	}
	parallelism := opts.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}

	// Resolve metric handles once per call, not per subproblem; with
	// Metrics unset the nil handles make every observation a no-op and
	// the pool skips the per-design clock reads entirely.
	var (
		designs, designErrs *telemetry.Counter
		scalarFallbacks     *telemetry.Counter
		designSec           *telemetry.Histogram
		fallbackSec         *telemetry.Histogram
	)
	timed := opts.Metrics != nil
	if timed {
		designs = opts.Metrics.Counter(MetricDesigns)
		designErrs = opts.Metrics.Counter(MetricDesignErrors)
		scalarFallbacks = opts.Metrics.Counter(MetricScalarFallbacks)
		designSec = opts.Metrics.Histogram(MetricDesignSeconds, designSecondsLo, designSecondsHi, designSecondsBins)
		fallbackSec = opts.Metrics.Histogram(MetricScalarFallbackSeconds, designSecondsLo, designSecondsHi, designSecondsBins)
		opts.Metrics.Histogram(MetricBatchSize, batchSizeLo, batchSizeHi, batchSizeBins).Observe(float64(n))
	}

	if parallelism == 1 {
		// Sequential route: run the batched solve inline over one scratch —
		// the caller's retained one when provided — with no goroutine or
		// channel between the subproblems. Error and cancellation shapes
		// match the pooled route exactly.
		scratch := opts.Scratch
		if scratch == nil {
			scratch = scratchPool.Get().(*core.Scratch)
			defer scratchPool.Put(scratch)
		}
		if timed {
			// Scalar fallbacks are counted by the scratch; export the call's
			// delta (the scratch may be caller-retained or pooled, so its
			// absolute count spans many calls).
			fb0 := scratch.Fallbacks()
			defer func() { scalarFallbacks.Add(scratch.Fallbacks() - fb0) }()
		}
		for i := range subs {
			if err := ctx.Err(); err != nil {
				for j := i; j < n; j++ {
					outcomes[j] = Outcome{Index: j, Err: cancelErr(err)}
				}
				if !opts.ContinueOnError {
					return cancelErr(err)
				}
				return nil
			}
			var t telemetry.Timer
			var fbPre uint64
			if timed {
				fbPre = scratch.Fallbacks()
				t = telemetry.StartTimer()
			}
			res, err := core.DesignInto(subs[i].Agent, subs[i].Config, scratch)
			if timed {
				sec := t.Seconds()
				designSec.Observe(sec)
				if scratch.Fallbacks() != fbPre {
					fallbackSec.Observe(sec)
				}
				designs.Inc()
				if err != nil {
					designErrs.Inc()
				}
			}
			outcomes[i] = Outcome{Index: i, Result: res, Err: err}
			if err != nil && !opts.ContinueOnError {
				for j := i + 1; j < n; j++ {
					outcomes[j] = Outcome{Index: j, Err: cancelErr(context.Canceled)}
				}
				return fmt.Errorf("solver: subproblem %d (%s): %w", i, subs[i].Agent.ID, err)
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	indexes := make(chan int)
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once

	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := scratchPool.Get().(*core.Scratch)
			fb0 := scratch.Fallbacks()
			defer func() {
				if timed {
					scalarFallbacks.Add(scratch.Fallbacks() - fb0)
				}
				scratchPool.Put(scratch)
			}()
			for i := range indexes {
				if err := ctx.Err(); err != nil {
					outcomes[i] = Outcome{Index: i, Err: cancelErr(err)}
					continue
				}
				var t telemetry.Timer
				var fbPre uint64
				if timed {
					fbPre = scratch.Fallbacks()
					t = telemetry.StartTimer()
				}
				res, err := core.DesignInto(subs[i].Agent, subs[i].Config, scratch)
				if timed {
					sec := t.Seconds()
					designSec.Observe(sec)
					if scratch.Fallbacks() != fbPre {
						fallbackSec.Observe(sec)
					}
					designs.Inc()
					if err != nil {
						designErrs.Inc()
					}
				}
				outcomes[i] = Outcome{Index: i, Result: res, Err: err}
				if err != nil && !opts.ContinueOnError {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("solver: subproblem %d (%s): %w", i, subs[i].Agent.ID, err)
						cancel()
					})
				}
			}
		}()
	}

feed:
	for i := range subs {
		select {
		case indexes <- i:
		case <-ctx.Done():
			// Mark unfed subproblems as cancelled.
			for j := i; j < n; j++ {
				outcomes[j] = Outcome{Index: j, Err: cancelErr(ctx.Err())}
			}
			break feed
		}
	}
	close(indexes)
	wg.Wait()

	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil && !opts.ContinueOnError {
		return cancelErr(err)
	}
	return nil
}

// Results extracts the successful results from outcomes, preserving order
// and skipping failures.
func Results(outcomes []Outcome) []*core.Result {
	out := make([]*core.Result, 0, len(outcomes))
	for _, o := range outcomes {
		if o.Err == nil && o.Result != nil {
			out = append(out, o.Result)
		}
	}
	return out
}

// Errs collects the failures from outcomes (nil when none).
func Errs(outcomes []Outcome) error {
	var errs []error
	for _, o := range outcomes {
		if o.Err != nil {
			errs = append(errs, fmt.Errorf("subproblem %d: %w", o.Index, o.Err))
		}
	}
	return errors.Join(errs...)
}
