package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dyncontract/internal/server"
)

func startServer(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestClosedLoop drives a short closed-loop run against an in-process
// server and checks the summary.
func TestClosedLoop(t *testing.T) {
	url := startServer(t)
	var out bytes.Buffer
	err := run([]string{"-addr", url, "-clients", "4", "-requests", "5", "-round-every", "3", "-strict"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, want := range []string{"20 requests", "rounds:", "designs:", "latency: p50"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestDriftMix adds sparse drift requests to the mix and checks they
// succeed and get their own latency line.
func TestDriftMix(t *testing.T) {
	url := startServer(t)
	var out bytes.Buffer
	err := run([]string{"-addr", url, "-clients", "2", "-requests", "9",
		"-round-every", "4", "-drift-every", "3", "-drift-agents", "2", "-strict"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, want := range []string{"drifts:", "latency[drift]: p50"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "drifts:      0 ok") {
		t.Errorf("no drift request succeeded:\n%s", out.String())
	}
}

// TestOpenLoop exercises the rate-paced path.
func TestOpenLoop(t *testing.T) {
	url := startServer(t)
	var out bytes.Buffer
	err := run([]string{"-addr", url, "-clients", "2", "-duration", "300ms", "-rate", "50", "-strict"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "open loop at 50 req/s") {
		t.Errorf("output missing open-loop banner:\n%s", out.String())
	}
}

// TestHealthcheck passes against a live server and fails fast against a
// dead one.
func TestHealthcheck(t *testing.T) {
	url := startServer(t)
	var out bytes.Buffer
	if err := run([]string{"-addr", url, "-healthcheck"}, &out); err != nil {
		t.Fatalf("healthcheck against live server: %v", err)
	}
	if err := run([]string{"-addr", "http://127.0.0.1:1", "-healthcheck", "-healthcheck-timeout", "300ms"}, &out); err == nil {
		t.Fatal("healthcheck against dead address succeeded")
	}
}

// TestStrictFailsOnErrors points loadgen at a server that 500s everything.
func TestStrictFailsOnErrors(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
		_, _ = w.Write([]byte(`{"id":"s1","agents":1,"policy":"dynamic"}`))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	var out bytes.Buffer
	if err := run([]string{"-addr", ts.URL, "-clients", "1", "-requests", "3", "-strict"}, &out); err == nil {
		t.Fatal("strict run against a 500ing server succeeded")
	}
}
