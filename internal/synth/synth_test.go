package synth

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"dyncontract/internal/stats"
)

func TestPaperCommunitySizes(t *testing.T) {
	sizes := paperCommunitySizes()
	if len(sizes) != 47 {
		t.Errorf("communities = %d, want 47", len(sizes))
	}
	total := 0
	counts := map[int]int{}
	for _, s := range sizes {
		total += s
		counts[s]++
	}
	if total != 212 {
		t.Errorf("collusive workers = %d, want 212", total)
	}
	// Table II shape: size 2 dominates at ~51%.
	if frac := float64(counts[2]) / 47; frac < 0.45 || frac > 0.56 {
		t.Errorf("size-2 fraction = %v, want ~0.51", frac)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := SmallScale(1).Validate(); err != nil {
		t.Errorf("SmallScale invalid: %v", err)
	}
	if err := PaperScale(1).Validate(); err != nil {
		t.Errorf("PaperScale invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Honest = -1 },
		func(c *Config) { c.CommunitySizes = []int{1} },
		func(c *Config) { c.Products = 0 },
		func(c *Config) { c.MeanReviews = 0.5 },
		func(c *Config) { c.Rounds = 0 },
		func(c *Config) { c.UpvoteProb = 1.5 },
		func(c *Config) { c.HonestShape.A = 0 },
		func(c *Config) { c.ScoreNoise = -1 },
		func(c *Config) { c.Honest, c.NonCollusive, c.CommunitySizes = 0, 0, nil },
	}
	for i, mutate := range bad {
		cfg := SmallScale(1)
		mutate(&cfg)
		if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("bad config %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestGenerateSmallScaleStructure(t *testing.T) {
	cfg := SmallScale(42)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	wantCollusive := 0
	for _, s := range cfg.CommunitySizes {
		wantCollusive += s
	}
	if got := len(tr.Workers); got != cfg.Honest+cfg.NonCollusive+wantCollusive {
		t.Errorf("workers = %d, want %d", got, cfg.Honest+cfg.NonCollusive+wantCollusive)
	}
	if got := len(tr.MaliciousWorkerIDs()); got != cfg.NonCollusive+wantCollusive {
		t.Errorf("malicious = %d, want %d", got, cfg.NonCollusive+wantCollusive)
	}
	if len(tr.Reviews) < len(tr.Workers) {
		t.Errorf("reviews = %d < workers = %d; every worker writes at least one",
			len(tr.Reviews), len(tr.Workers))
	}
	// Every worker must have at least one review.
	statsByWorker := tr.ComputeWorkerStats()
	for id := range tr.Workers {
		if _, ok := statsByWorker[id]; !ok {
			t.Fatalf("worker %s has no reviews", id)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(SmallScale(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(SmallScale(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Reviews, b.Reviews) {
		t.Error("same seed produced different reviews")
	}
	c, err := Generate(SmallScale(8))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Reviews, c.Reviews) {
		t.Error("different seeds produced identical reviews")
	}
}

func TestGenerateCollusiveTargetsShared(t *testing.T) {
	tr, err := Generate(SmallScale(3))
	if err != nil {
		t.Fatal(err)
	}
	// Workers named cm<ci>_<mi> in the same community share one target;
	// different communities never share targets.
	targetsByComm := map[string]string{}
	for id, w := range tr.Workers {
		if !strings.HasPrefix(id, "cm") {
			continue
		}
		comm := strings.SplitN(id, "_", 2)[0]
		if len(w.TargetProducts) != 1 {
			t.Fatalf("%s has %d targets, want 1", id, len(w.TargetProducts))
		}
		target := w.TargetProducts[0]
		if prev, ok := targetsByComm[comm]; ok && prev != target {
			t.Errorf("community %s has two targets %s, %s", comm, prev, target)
		}
		targetsByComm[comm] = target
	}
	seen := map[string]string{}
	for comm, target := range targetsByComm {
		if other, dup := seen[target]; dup {
			t.Errorf("communities %s and %s share target %s", comm, other, target)
		}
		seen[target] = comm
	}
}

func TestGenerateNonCollusiveTargetsDisjoint(t *testing.T) {
	tr, err := Generate(SmallScale(5))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for id, w := range tr.Workers {
		if !w.Malicious {
			continue
		}
		for _, target := range w.TargetProducts {
			if other, dup := seen[target]; dup && !sameCommunity(id, other) {
				t.Errorf("%s and %s share target %s but are not one community", id, other, target)
			}
			seen[target] = id
		}
	}
}

func sameCommunity(a, b string) bool {
	if !strings.HasPrefix(a, "cm") || !strings.HasPrefix(b, "cm") {
		return false
	}
	return strings.SplitN(a, "_", 2)[0] == strings.SplitN(b, "_", 2)[0]
}

func TestGenerateFig7FeedbackGap(t *testing.T) {
	// Fig. 7: collusive workers' average feedback clearly exceeds honest
	// and non-collusive workers'; average efforts are comparable.
	tr, err := Generate(SmallScale(11))
	if err != nil {
		t.Fatal(err)
	}
	st := tr.ComputeWorkerStats()
	var honest, ncm, cm []float64
	var honestEff, cmEff []float64
	for id := range tr.Workers {
		s, ok := st[id]
		if !ok {
			continue
		}
		switch {
		case strings.HasPrefix(id, "h"):
			honest = append(honest, s.AvgFeedback)
			honestEff = append(honestEff, s.AvgEffort)
		case strings.HasPrefix(id, "ncm"):
			ncm = append(ncm, s.AvgFeedback)
		case strings.HasPrefix(id, "cm"):
			cm = append(cm, s.AvgFeedback)
			cmEff = append(cmEff, s.AvgEffort)
		}
	}
	mh, _ := stats.Mean(honest)
	mn, _ := stats.Mean(ncm)
	mc, _ := stats.Mean(cm)
	if !(mc > mh && mc > mn) {
		t.Errorf("collusive feedback %v not above honest %v / ncm %v", mc, mh, mn)
	}
	if mc < 1.2*mh {
		t.Errorf("collusive feedback gap too small: %v vs %v", mc, mh)
	}
	// Efforts comparable: within a factor of two.
	eh, _ := stats.Mean(honestEff)
	ec, _ := stats.Mean(cmEff)
	if ec > 2*eh || eh > 2*ec {
		t.Errorf("efforts not comparable: honest %v vs collusive %v", eh, ec)
	}
}

func TestGenerateHeavyTailReviewCounts(t *testing.T) {
	// Fig. 8(a) needs workers with >= 20 reviews; the exponential tail
	// must deliver some at small scale too.
	tr, err := Generate(SmallScale(13))
	if err != nil {
		t.Fatal(err)
	}
	prolific := tr.WorkersWithAtLeast(20)
	if len(prolific) == 0 {
		t.Error("no workers with >= 20 reviews; review-count tail too thin")
	}
}

func TestGenerateExpertScoresCoverCatalogue(t *testing.T) {
	cfg := SmallScale(17)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.ExpertScores) != cfg.Products {
		t.Errorf("expert scores = %d, want %d", len(tr.ExpertScores), cfg.Products)
	}
	for _, r := range tr.Reviews {
		if _, ok := tr.ExpertScores[r.ProductID]; !ok {
			t.Fatalf("review %s product %s lacks expert score", r.ID, r.ProductID)
		}
	}
}
