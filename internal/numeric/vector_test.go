package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

func TestVectorDot(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	got, err := v.Dot(w)
	if err != nil {
		t.Fatalf("Dot: %v", err)
	}
	if got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestVectorDotMismatch(t *testing.T) {
	_, err := Vector{1}.Dot(Vector{1, 2})
	if err == nil {
		t.Fatal("Dot with mismatched lengths: want error, got nil")
	}
}

func TestVectorNorm2(t *testing.T) {
	tests := []struct {
		name string
		v    Vector
		want float64
	}{
		{"3-4-5", Vector{3, 4}, 5},
		{"zero", Vector{0, 0, 0}, 0},
		{"empty", Vector{}, 0},
		{"single negative", Vector{-7}, 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Norm2(); !almostEqual(got, tt.want, 1e-14) {
				t.Errorf("Norm2(%v) = %v, want %v", tt.v, got, tt.want)
			}
		})
	}
}

func TestVectorNorm2NoOverflow(t *testing.T) {
	big := math.MaxFloat64 / 2
	v := Vector{big, big}
	got := v.Norm2()
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("Norm2 overflowed: %v", got)
	}
	want := big * math.Sqrt2
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("Norm2 = %v, want %v", got, want)
	}
}

func TestVectorAddSubScale(t *testing.T) {
	v := Vector{1, 2}
	w := Vector{3, 5}
	sum, err := v.Add(w)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if sum[0] != 4 || sum[1] != 7 {
		t.Errorf("Add = %v, want [4 7]", sum)
	}
	diff, err := w.Sub(v)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if diff[0] != 2 || diff[1] != 3 {
		t.Errorf("Sub = %v, want [2 3]", diff)
	}
	sc := v.Scale(-2)
	if sc[0] != -2 || sc[1] != -4 {
		t.Errorf("Scale = %v, want [-2 -4]", sc)
	}
	// Originals untouched.
	if v[0] != 1 || w[0] != 3 {
		t.Error("operands were mutated")
	}
}

func TestVectorCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone shares backing array with original")
	}
}

func TestVectorAllFinite(t *testing.T) {
	if !(Vector{1, 2, 3}).AllFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (Vector{1, math.NaN()}).AllFinite() {
		t.Error("NaN vector reported finite")
	}
	if (Vector{math.Inf(1)}).AllFinite() {
		t.Error("Inf vector reported finite")
	}
}

// Property: triangle inequality for Norm2.
func TestVectorNorm2TriangleProperty(t *testing.T) {
	f := func(a, b [8]float64) bool {
		v, w := NewVector(8), NewVector(8)
		for i := range a {
			// Keep magnitudes sane to avoid quick generating Inf sums.
			v[i] = math.Mod(a[i], 1e6)
			w[i] = math.Mod(b[i], 1e6)
			if math.IsNaN(v[i]) {
				v[i] = 0
			}
			if math.IsNaN(w[i]) {
				w[i] = 0
			}
		}
		sum, err := v.Add(w)
		if err != nil {
			return false
		}
		return sum.Norm2() <= v.Norm2()+w.Norm2()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Cauchy–Schwarz |v·w| <= |v||w|.
func TestVectorCauchySchwarzProperty(t *testing.T) {
	f := func(a, b [6]float64) bool {
		v, w := NewVector(6), NewVector(6)
		for i := range a {
			v[i] = math.Mod(a[i], 1e5)
			w[i] = math.Mod(b[i], 1e5)
			if math.IsNaN(v[i]) {
				v[i] = 0
			}
			if math.IsNaN(w[i]) {
				w[i] = 0
			}
		}
		dot, err := v.Dot(w)
		if err != nil {
			return false
		}
		return math.Abs(dot) <= v.Norm2()*w.Norm2()*(1+1e-12)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorSum(t *testing.T) {
	if got := (Vector{1.5, 2.5, -1}).Sum(); got != 3 {
		t.Errorf("Sum = %v, want 3", got)
	}
	if got := (Vector{}).Sum(); got != 0 {
		t.Errorf("Sum of empty = %v, want 0", got)
	}
}

func TestVectorNormInf(t *testing.T) {
	if got := (Vector{-5, 3, 4}).NormInf(); got != 5 {
		t.Errorf("NormInf = %v, want 5", got)
	}
}
