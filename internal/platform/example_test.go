package platform_test

import (
	"context"
	"fmt"
	"log"

	"dyncontract/internal/effort"
	"dyncontract/internal/platform"
	"dyncontract/internal/worker"
)

// Example simulates two rounds of the marketplace under the dynamic
// contract policy for a tiny population.
func Example() {
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		log.Fatal(err)
	}
	part, err := effort.NewPartition(8, 5)
	if err != nil {
		log.Fatal(err)
	}
	alice, err := worker.NewHonest("alice", psi, 1, part.YMax())
	if err != nil {
		log.Fatal(err)
	}
	mallory, err := worker.NewMalicious("mallory", psi, 1, 0.5, part.YMax())
	if err != nil {
		log.Fatal(err)
	}
	pop := &platform.Population{
		Agents:     []*worker.Agent{alice, mallory},
		Weights:    map[string]float64{"alice": 1.5, "mallory": 0.8},
		MaliceProb: map[string]float64{"alice": 0.05, "mallory": 0.9},
		Part:       part,
		Mu:         1,
	}
	ledger, err := platform.Simulate(context.Background(), pop, &platform.DynamicPolicy{}, 2, platform.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, oc := range ledger[0].Outcomes {
		fmt.Printf("%-8s effort=%.1f pay=%.2f\n", oc.AgentID, oc.Effort, oc.Compensation)
	}
	fmt.Printf("round utility: %.2f (same every round for a static population: %v)\n",
		ledger[0].Utility, ledger[0].Utility == ledger[1].Utility)
	// Output:
	// alice    effort=32.5 pay=32.99
	// mallory  effort=28.8 pay=8.66
	// round utility: 59.27 (same every round for a static population: true)
}
