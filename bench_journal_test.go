package dyncontract

import (
	"fmt"
	"testing"

	"dyncontract/internal/journal"
)

// BenchmarkJournalAppend prices the write-ahead hop every journaled
// command pays before it executes, for both durability modes. The
// "buffered" arm is the per-command overhead in the default
// configuration — a CRC32C, a few length-prefixed writes into a
// user-space buffer — and must stay trivially small next to the ~438µs
// warm sharded round it taxes (the <10% acceptance bar). The "fsync" arm
// measures what -journal-sync fsync actually buys per command: a forced
// flush and fdatasync per append, dominated by the storage stack, so it
// is tracked for trend only, never gated — it benchmarks the disk, not
// the code.
func BenchmarkJournalAppend(b *testing.B) {
	// A round-record-sized body: the wire form of a small session's round
	// with outcomes, which is what the server journals per advance.
	body := []byte(fmt.Sprintf(`{"round":%d,"benefit":3.1415926535,"cost":1.2345678901,"utility":1.9070247634,"outcomes":[{"agent_id":"h1","class":"honest","effort":2,"feedback":1.8,"compensation":0.9,"weight":1},{"agent_id":"m1","class":"malicious","effort":1.5,"feedback":0.2,"compensation":0.4,"weight":0.8}]}`, 7))

	for _, mode := range []journal.Mode{journal.ModeBuffered, journal.ModeStrict} {
		b.Run(mode.String(), func(b *testing.B) {
			st, err := journal.Open(b.TempDir(), journal.Options{Mode: mode})
			if err != nil {
				b.Fatal(err)
			}
			w, err := st.Create("bench")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := w.Append(journal.KindCreate, []byte(`{}`)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Append(journal.KindRound, body); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
