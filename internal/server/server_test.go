package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dyncontract/internal/telemetry"
)

// testAgents is a small explicit population covering all three classes:
// ψ is strictly increasing on [0, yMax] for the m=10, δ=0.2 partition
// (ψ'(y) = 2·(−0.25)·y + 2 ≥ 1 at y = 2).
func testAgents() []AgentSpec {
	psi := PsiSpec{R2: -0.25, R1: 2, R0: 0}
	return []AgentSpec{
		{ID: "h1", Class: "honest", Psi: psi, Beta: 1, Weight: 1},
		{ID: "h2", Class: "honest", Psi: psi, Beta: 1, Weight: 1},
		{ID: "m1", Class: "malicious", Psi: psi, Beta: 1, Omega: 0.5, Weight: 0.8, Malice: 0.9},
		{ID: "c1", Class: "community", Psi: psi, Beta: 1, Omega: 0.3, Size: 3, Weight: 0.5},
	}
}

func testCreateReq() CreateSessionRequest {
	return CreateSessionRequest{Agents: testAgents(), M: 10, Delta: 0.2, Mu: 1}
}

// testServer wires a Server into an httptest.Server.
type testServer struct {
	srv *Server
	ts  *httptest.Server
}

func newTestServer(t *testing.T, cfg Config) *testServer {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &testServer{srv: srv, ts: ts}
}

// do issues one JSON request and decodes the response into out (skipped
// when out is nil), returning the status code.
func (e *testServer) do(t *testing.T, method, path string, in, out any) int {
	t.Helper()
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("marshal %T: %v", in, err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, e.ts.URL+path, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, path, raw, err)
		}
	}
	return resp.StatusCode
}

// createSession creates a session from the canonical explicit payload.
func (e *testServer) createSession(t *testing.T) string {
	t.Helper()
	req := testCreateReq()
	var resp CreateSessionResponse
	if code := e.do(t, "POST", "/v1/sessions", &req, &resp); code != http.StatusCreated {
		t.Fatalf("create session: status %d", code)
	}
	if resp.Agents != len(req.Agents) {
		t.Fatalf("created with %d agents, want %d", resp.Agents, len(req.Agents))
	}
	return resp.ID
}

func TestSessionLifecycle(t *testing.T) {
	e := newTestServer(t, Config{Metrics: telemetry.NewRegistry()})
	id := e.createSession(t)

	// Advance three rounds; the ledger and the info endpoint must agree.
	var last RoundJSON
	for i := 0; i < 3; i++ {
		req := AdvanceRoundRequest{IncludeOutcomes: true}
		if code := e.do(t, "POST", "/v1/sessions/"+id+"/rounds", &req, &last); code != http.StatusOK {
			t.Fatalf("round %d: status %d", i, code)
		}
		if last.Round != i {
			t.Fatalf("round index = %d, want %d", last.Round, i)
		}
		if len(last.Outcomes) != 4 {
			t.Fatalf("round %d: %d outcomes, want 4", i, len(last.Outcomes))
		}
	}
	if last.Benefit <= 0 || last.Utility == 0 {
		t.Errorf("round 2 accounting looks dead: benefit=%v utility=%v", last.Benefit, last.Utility)
	}

	var info SessionInfo
	if code := e.do(t, "GET", "/v1/sessions/"+id, nil, &info); code != http.StatusOK {
		t.Fatalf("get session: status %d", code)
	}
	if info.Rounds != 3 || info.Agents != 4 || info.Policy != "dynamic" {
		t.Errorf("info = %+v, want 3 rounds / 4 agents / dynamic", info)
	}
	// Distinct fingerprints designed once, then warm: the cache saw misses
	// in round 0 and only hits after.
	if info.Cache.Misses == 0 {
		t.Errorf("cache misses = 0, want > 0 (round 0 designs)")
	}

	var ledger []RoundJSON
	if code := e.do(t, "GET", "/v1/sessions/"+id+"/rounds", nil, &ledger); code != http.StatusOK {
		t.Fatalf("list rounds: status %d", code)
	}
	if len(ledger) != 3 {
		t.Fatalf("ledger has %d rounds, want 3", len(ledger))
	}
	if ledger[2].Utility != last.Utility {
		t.Errorf("ledger round 2 utility %v != advance response %v", ledger[2].Utility, last.Utility)
	}
}

func TestRoundIncludesContracts(t *testing.T) {
	e := newTestServer(t, Config{})
	id := e.createSession(t)
	var round RoundJSON
	req := AdvanceRoundRequest{IncludeContracts: true}
	if code := e.do(t, "POST", "/v1/sessions/"+id+"/rounds", &req, &round); code != http.StatusOK {
		t.Fatalf("round: status %d", code)
	}
	if len(round.Contracts) != 4 {
		t.Fatalf("%d contracts, want 4", len(round.Contracts))
	}
	if round.Contracts["h1"] == nil {
		t.Error("no contract for h1")
	}
}

func TestCreateSessionRejectsBadPayloads(t *testing.T) {
	e := newTestServer(t, Config{})
	tests := []struct {
		name string
		mut  func(*CreateSessionRequest)
	}{
		{"both routes", func(r *CreateSessionRequest) { r.Scale = "small" }},
		{"neither route", func(r *CreateSessionRequest) { r.Agents = nil }},
		{"unknown scale", func(r *CreateSessionRequest) { r.Agents = nil; r.Scale = "galactic" }},
		{"unknown policy", func(r *CreateSessionRequest) { r.Policy = "oracle" }},
		{"unknown class", func(r *CreateSessionRequest) { r.Agents[0].Class = "neutral" }},
		{"duplicate agent ID", func(r *CreateSessionRequest) { r.Agents[1].ID = "h1" }},
		{"empty agent ID", func(r *CreateSessionRequest) { r.Agents[0].ID = "" }},
		{"zero delta", func(r *CreateSessionRequest) { r.Delta = 0 }},
		{"negative mu", func(r *CreateSessionRequest) { r.Mu = -1 }},
		{"fixed without amount", func(r *CreateSessionRequest) { r.Policy = "fixed" }},
		{"bad psi", func(r *CreateSessionRequest) { r.Agents[0].Psi.R2 = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			req := testCreateReq()
			tt.mut(&req)
			if code := e.do(t, "POST", "/v1/sessions", &req, nil); code != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", code)
			}
		})
	}
}

func TestUnknownSession404(t *testing.T) {
	e := newTestServer(t, Config{})
	for _, p := range []string{"/v1/sessions/nope", "/v1/sessions/nope/rounds"} {
		if code := e.do(t, "GET", p, nil, nil); code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", p, code)
		}
	}
	if code := e.do(t, "POST", "/v1/sessions/nope/rounds", nil, nil); code != http.StatusNotFound {
		t.Errorf("advance on unknown session = %d, want 404", code)
	}
}

func TestStrictDecoding(t *testing.T) {
	e := newTestServer(t, Config{})
	id := e.createSession(t)
	for name, body := range map[string]string{
		"unknown field": `{"rounds": 5}`,
		"trailing data": `{} {}`,
		"not JSON":      `<xml/>`,
	} {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(e.ts.URL+"/v1/sessions/"+id+"/rounds", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", resp.StatusCode)
			}
		})
	}
}

func TestDriftMutatesAndRejects(t *testing.T) {
	e := newTestServer(t, Config{})
	id := e.createSession(t)

	// A weight change must be visible in the next round's accounting.
	var before, after RoundJSON
	if code := e.do(t, "POST", "/v1/sessions/"+id+"/rounds", nil, &before); code != http.StatusOK {
		t.Fatalf("round: status %d", code)
	}
	var dr DriftResponse
	drift := DriftRequest{Weights: map[string]float64{"h1": 2, "h2": 2}}
	if code := e.do(t, "POST", "/v1/sessions/"+id+"/drift", &drift, &dr); code != http.StatusOK {
		t.Fatalf("drift: status %d", code)
	}
	if dr.Updated != 2 {
		t.Errorf("updated = %d, want 2", dr.Updated)
	}
	if code := e.do(t, "POST", "/v1/sessions/"+id+"/rounds", nil, &after); code != http.StatusOK {
		t.Fatalf("round: status %d", code)
	}
	if after.Benefit <= before.Benefit {
		t.Errorf("doubled weights did not raise benefit: %v -> %v", before.Benefit, after.Benefit)
	}

	// Invalid drifts reject wholesale and leave the session untouched.
	for name, bad := range map[string]DriftRequest{
		"empty":         {},
		"unknown agent": {Weights: map[string]float64{"ghost": 1}},
		"bad beta":      {Beta: map[string]float64{"h1": -1}},
		"honest omega":  {Omega: map[string]float64{"h1": 0.5}},
		"bad psi":       {Psi: map[string]PsiSpec{"h1": {R2: 1, R1: 1}}},
	} {
		t.Run(name, func(t *testing.T) {
			if code := e.do(t, "POST", "/v1/sessions/"+id+"/drift", &bad, nil); code != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", code)
			}
		})
	}
	// The failed drifts must not have perturbed the ledger's trajectory.
	var again RoundJSON
	if code := e.do(t, "POST", "/v1/sessions/"+id+"/rounds", nil, &again); code != http.StatusOK {
		t.Fatalf("round: status %d", code)
	}
	if again.Benefit != after.Benefit {
		t.Errorf("rejected drifts changed the round: benefit %v -> %v", after.Benefit, again.Benefit)
	}
}

// TestSparseDriftScopedLedger pins the drift route's touched-set
// declaration end to end on a sharded session: a one-agent drift reports
// touched=1 and perturbs exactly that agent's next ledger row, and a
// rejected drift — reverted before any Touch — leaves both the
// population and the drift scope untouched, so the following round is
// identical row for row.
func TestSparseDriftScopedLedger(t *testing.T) {
	e := newTestServer(t, Config{})
	req := testCreateReq()
	req.Shards = 2
	var created CreateSessionResponse
	if code := e.do(t, "POST", "/v1/sessions", &req, &created); code != http.StatusCreated {
		t.Fatalf("create session: status %d", code)
	}
	id := created.ID

	advance := func() RoundJSON {
		t.Helper()
		var out RoundJSON
		areq := AdvanceRoundRequest{IncludeOutcomes: true}
		if code := e.do(t, "POST", "/v1/sessions/"+id+"/rounds", &areq, &out); code != http.StatusOK {
			t.Fatalf("round: status %d", code)
		}
		return out
	}
	rowByID := func(r RoundJSON, agent string) OutcomeJSON {
		t.Helper()
		for _, oc := range r.Outcomes {
			if oc.AgentID == agent {
				return oc
			}
		}
		t.Fatalf("no outcome row for %s", agent)
		return OutcomeJSON{}
	}

	before := advance()

	var dr DriftResponse
	drift := DriftRequest{Weights: map[string]float64{"h1": 1.3}}
	if code := e.do(t, "POST", "/v1/sessions/"+id+"/drift", &drift, &dr); code != http.StatusOK {
		t.Fatalf("drift: status %d", code)
	}
	if dr.Touched != 1 || dr.Updated != 1 {
		t.Errorf("drift response = %+v, want touched=1 updated=1", dr)
	}

	after := advance()
	for _, oc := range before.Outcomes {
		got := rowByID(after, oc.AgentID)
		if oc.AgentID == "h1" {
			if got == oc {
				t.Errorf("touched agent h1's row did not change after weight drift")
			}
			if got.Weight != 1.3 {
				t.Errorf("h1 weight = %v, want 1.3", got.Weight)
			}
			continue
		}
		if got != oc {
			t.Errorf("untouched agent %s's row changed: %+v -> %+v", oc.AgentID, oc, got)
		}
	}

	// A rejected drift reverts its mutations before declaring any scope:
	// the valid h2 entry must not leak into the population or the
	// touched-set alongside the unknown-agent rejection.
	bad := DriftRequest{Weights: map[string]float64{"h2": 3, "ghost": 1}}
	if code := e.do(t, "POST", "/v1/sessions/"+id+"/drift", &bad, nil); code != http.StatusBadRequest {
		t.Fatalf("bad drift: status %d, want 400", code)
	}
	again := advance()
	for _, oc := range after.Outcomes {
		if got := rowByID(again, oc.AgentID); got != oc {
			t.Errorf("rejected drift perturbed %s's row: %+v -> %+v", oc.AgentID, oc, got)
		}
	}
}

func TestSyntheticSession(t *testing.T) {
	e := newTestServer(t, Config{})
	req := CreateSessionRequest{Scale: "small", Seed: 7, PerClass: 10}
	var resp CreateSessionResponse
	if code := e.do(t, "POST", "/v1/sessions", &req, &resp); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if resp.Agents == 0 {
		t.Fatal("synthetic session has no agents")
	}
	var round RoundJSON
	if code := e.do(t, "POST", "/v1/sessions/"+resp.ID+"/rounds", nil, &round); code != http.StatusOK {
		t.Fatalf("round: status %d", code)
	}
	if round.Agents != resp.Agents {
		t.Errorf("round saw %d agents, session has %d", round.Agents, resp.Agents)
	}
}

func TestMaxSessions(t *testing.T) {
	e := newTestServer(t, Config{MaxSessions: 2})
	e.createSession(t)
	e.createSession(t)
	req := testCreateReq()
	if code := e.do(t, "POST", "/v1/sessions", &req, nil); code != http.StatusTooManyRequests {
		t.Errorf("third session: status %d, want 429", code)
	}
}

func TestHealthz(t *testing.T) {
	e := newTestServer(t, Config{})
	if code := e.do(t, "GET", "/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, err := e.ts.Client().Get(e.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

func TestRouteMetricsRecorded(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := newTestServer(t, Config{Metrics: reg})
	id := e.createSession(t)
	if code := e.do(t, "POST", "/v1/sessions/"+id+"/rounds", nil, nil); code != http.StatusOK {
		t.Fatalf("round: status %d", code)
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		telemetry.HTTPMetricPrefix + "sessions_create" + telemetry.HTTPSuffixRequests,
		telemetry.HTTPMetricPrefix + "rounds_advance" + telemetry.HTTPSuffix2xx,
	} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s = 0, want > 0", name)
		}
	}
	if snap.Counters[metricRounds] != 1 {
		t.Errorf("%s = %d, want 1", metricRounds, snap.Counters[metricRounds])
	}
	if snap.Gauges[metricSessions] != 1 {
		t.Errorf("%s = %v, want 1", metricSessions, snap.Gauges[metricSessions])
	}
}

// TestStructuralDriftRoute pins the drift route's add/remove payloads end
// to end on a sharded session: a join appears in the next round with its
// own ledger row while every pre-existing row stays byte-identical, a
// leave removes exactly its row, rejected structural drifts (unknown
// remove, duplicate add, add∩remove overlap, invalid joiner) revert
// wholesale, and the joined/left counts come back in the response.
func TestStructuralDriftRoute(t *testing.T) {
	e := newTestServer(t, Config{})
	req := testCreateReq()
	req.Shards = 2
	var created CreateSessionResponse
	if code := e.do(t, "POST", "/v1/sessions", &req, &created); code != http.StatusCreated {
		t.Fatalf("create session: status %d", code)
	}
	id := created.ID

	advance := func() RoundJSON {
		t.Helper()
		var out RoundJSON
		areq := AdvanceRoundRequest{IncludeOutcomes: true}
		if code := e.do(t, "POST", "/v1/sessions/"+id+"/rounds", &areq, &out); code != http.StatusOK {
			t.Fatalf("round: status %d", code)
		}
		return out
	}
	rows := func(r RoundJSON) map[string]OutcomeJSON {
		m := make(map[string]OutcomeJSON, len(r.Outcomes))
		for _, oc := range r.Outcomes {
			m[oc.AgentID] = oc
		}
		return m
	}

	before := advance()

	// Join: a fresh honest agent cloning h1's parameters.
	psi := PsiSpec{R2: -0.25, R1: 2, R0: 0}
	var dr DriftResponse
	join := DriftRequest{Add: []AgentSpec{{ID: "zz1", Class: "honest", Psi: psi, Beta: 1, Weight: 1}}}
	if code := e.do(t, "POST", "/v1/sessions/"+id+"/drift", &join, &dr); code != http.StatusOK {
		t.Fatalf("join drift: status %d", code)
	}
	if dr.Joined != 1 || dr.Left != 0 || dr.Updated != 0 {
		t.Errorf("join response = %+v, want joined=1 left=0 updated=0", dr)
	}
	joined := advance()
	if len(joined.Outcomes) != len(before.Outcomes)+1 {
		t.Fatalf("joined round has %d rows, want %d", len(joined.Outcomes), len(before.Outcomes)+1)
	}
	jr := rows(joined)
	if _, ok := jr["zz1"]; !ok {
		t.Errorf("no ledger row for joined agent zz1")
	}
	for agent, oc := range rows(before) {
		if got := jr[agent]; got != oc {
			t.Errorf("join perturbed %s's row: %+v -> %+v", agent, oc, got)
		}
	}

	// Leave: the joiner departs again; everyone else byte-identical.
	dr = DriftResponse{} // joined/left are omitempty; reset between decodes
	leave := DriftRequest{Remove: []string{"zz1"}}
	if code := e.do(t, "POST", "/v1/sessions/"+id+"/drift", &leave, &dr); code != http.StatusOK {
		t.Fatalf("leave drift: status %d", code)
	}
	if dr.Left != 1 || dr.Joined != 0 {
		t.Errorf("leave response = %+v, want left=1 joined=0", dr)
	}
	left := advance()
	lr := rows(left)
	if _, ok := lr["zz1"]; ok {
		t.Errorf("left agent zz1 still has a ledger row")
	}
	for agent, oc := range rows(before) {
		if got := lr[agent]; got != oc {
			t.Errorf("leave perturbed %s's row: %+v -> %+v", agent, oc, got)
		}
	}

	// Structural rejections revert wholesale.
	for name, bad := range map[string]DriftRequest{
		"unknown remove":  {Remove: []string{"ghost"}},
		"duplicate add":   {Add: []AgentSpec{{ID: "h1", Class: "honest", Psi: psi, Beta: 1, Weight: 1}}},
		"add and remove":  {Add: []AgentSpec{{ID: "x1", Class: "honest", Psi: psi, Beta: 1, Weight: 1}}, Remove: []string{"x1"}},
		"invalid joiner":  {Add: []AgentSpec{{ID: "x2", Class: "honest", Psi: PsiSpec{R2: 1, R1: 1}, Beta: 1, Weight: 1}}},
		"empty add id":    {Add: []AgentSpec{{Class: "honest", Psi: psi, Beta: 1, Weight: 1}}},
		"unknown class":   {Add: []AgentSpec{{ID: "x3", Class: "neutral", Psi: psi, Beta: 1, Weight: 1}}},
		"empty remove id": {Remove: []string{""}},
	} {
		t.Run(name, func(t *testing.T) {
			if code := e.do(t, "POST", "/v1/sessions/"+id+"/drift", &bad, nil); code != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", code)
			}
		})
	}
	again := advance()
	ar := rows(again)
	if len(again.Outcomes) != len(before.Outcomes) {
		t.Fatalf("rejected drifts changed the population: %d rows, want %d", len(again.Outcomes), len(before.Outcomes))
	}
	for agent, oc := range rows(before) {
		if got := ar[agent]; got != oc {
			t.Errorf("rejected drifts perturbed %s's row: %+v -> %+v", agent, oc, got)
		}
	}
}
