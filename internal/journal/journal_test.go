package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dyncontract/internal/telemetry"
)

func encodeStream(recs ...Record) []byte {
	var buf []byte
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	return buf
}

func testRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Seq:  uint64(i + 1),
			Kind: Kind(1 + i%3),
			Body: []byte(fmt.Sprintf(`{"i":%d,"pad":"%0*d"}`, i, i%17, i)),
		}
	}
	return recs
}

func TestCodecRoundTrip(t *testing.T) {
	want := testRecords(20)
	buf := encodeStream(want...)
	got, clean, err := decodeRecords(buf)
	if err != nil {
		t.Fatal(err)
	}
	if clean != len(buf) {
		t.Fatalf("clean prefix %d, want %d", clean, len(buf))
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].Kind != want[i].Kind || !bytes.Equal(got[i].Body, want[i].Body) {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestCodecTornTail truncates an encoded stream at every byte offset: the
// decode must never error, never panic, and always return the records
// whose frames survive in full.
func TestCodecTornTail(t *testing.T) {
	recs := testRecords(5)
	buf := encodeStream(recs...)
	// Frame boundaries, for the expected record count at each cut.
	bounds := []int{0}
	for _, r := range recs {
		bounds = append(bounds, bounds[len(bounds)-1]+frameHeader+payloadHeader+len(r.Body))
	}
	for cut := 0; cut <= len(buf); cut++ {
		got, clean, err := decodeRecords(buf[:cut])
		if err != nil {
			t.Fatalf("cut %d: unexpected error %v", cut, err)
		}
		whole := 0
		for _, b := range bounds[1:] {
			if b <= cut {
				whole++
			}
		}
		if len(got) != whole {
			t.Fatalf("cut %d: decoded %d records, want %d", cut, len(got), whole)
		}
		if clean != bounds[whole] {
			t.Fatalf("cut %d: clean %d, want %d", cut, clean, bounds[whole])
		}
	}
}

// TestCodecCorruptMidLog flips one byte in the first record of a
// three-record stream: with data behind it, the damage must be reported
// as corruption, not silently truncated.
func TestCodecCorruptMidLog(t *testing.T) {
	buf := encodeStream(testRecords(3)...)
	for _, off := range []int{4, frameHeader, frameHeader + 2, frameHeader + payloadHeader} {
		mut := append([]byte(nil), buf...)
		mut[off] ^= 0x40
		_, _, err := decodeRecords(mut)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: err = %v, want ErrCorrupt", off, err)
		}
	}
	// Same flip on the final record: complete frame, bad checksum, nothing
	// behind it — torn tail, truncated without error.
	mut := append([]byte(nil), buf...)
	mut[len(mut)-1] ^= 0x40
	recs, clean, err := decodeRecords(mut)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("decoded %d records, want 2", len(recs))
	}
	if clean >= len(mut) {
		t.Fatalf("clean %d should mark the torn suffix", clean)
	}
}

// TestCodecImpossibleLength plants an absurd frame length mid-stream.
func TestCodecImpossibleLength(t *testing.T) {
	buf := encodeStream(testRecords(2)...)
	binary.LittleEndian.PutUint32(buf, uint32(maxRecord+1))
	if _, _, err := decodeRecords(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func openStore(t *testing.T, mode Mode) *Store {
	t.Helper()
	st, err := Open(t.TempDir(), Options{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestWriterAppendRecover(t *testing.T) {
	for _, mode := range []Mode{ModeBuffered, ModeStrict} {
		t.Run(mode.String(), func(t *testing.T) {
			st := openStore(t, mode)
			w, err := st.Create("s1")
			if err != nil {
				t.Fatal(err)
			}
			want := testRecords(7)
			want[0].Kind = KindCreate
			for _, r := range want {
				seq, err := w.Append(r.Kind, r.Body)
				if err != nil {
					t.Fatal(err)
				}
				if seq != r.Seq {
					t.Fatalf("append seq %d, want %d", seq, r.Seq)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			sessions, failed, err := st.Recover()
			if err != nil || len(failed) != 0 {
				t.Fatalf("recover: err=%v failed=%v", err, failed)
			}
			if len(sessions) != 1 {
				t.Fatalf("recovered %d sessions, want 1", len(sessions))
			}
			rec := sessions[0]
			if rec.ID != "s1" || rec.LastSeq != 7 || rec.Snapshot != nil || len(rec.Tail) != 7 {
				t.Fatalf("unexpected recovery %+v", rec)
			}
			for i, r := range rec.Tail {
				if r.Seq != want[i].Seq || r.Kind != want[i].Kind || !bytes.Equal(r.Body, want[i].Body) {
					t.Fatalf("tail[%d] = %+v, want %+v", i, r, want[i])
				}
			}
		})
	}
}

// TestWriterKillWithoutClose drops the writer without Flush or Close — a
// process crash in buffered mode. The flushed prefix must recover; the
// user-space tail is gone by contract.
func TestWriterKillWithoutClose(t *testing.T) {
	st := openStore(t, ModeBuffered)
	w, err := st.Create("s1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(KindCreate, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(KindRound, []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(KindRound, []byte(`{"a":2}`)); err != nil {
		t.Fatal(err)
	}
	// No flush, no close: the third record dies with the process.
	sessions, failed, err := st.Recover()
	if err != nil || len(failed) != 0 {
		t.Fatalf("recover: err=%v failed=%v", err, failed)
	}
	if len(sessions) != 1 || len(sessions[0].Tail) != 2 || sessions[0].LastSeq != 2 {
		t.Fatalf("recovered %+v, want the 2 flushed records", sessions[0])
	}
}

func TestSnapshotRotateAndTruncate(t *testing.T) {
	st := openStore(t, ModeStrict)
	w, err := st.Create("s1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		kind := KindRound
		if i == 0 {
			kind = KindCreate
		}
		if _, err := w.Append(kind, []byte(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := w.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Fatalf("snapshot seq %d, want 4", seq)
	}
	// Appends continue in the fresh segment while the commit is pending.
	if _, err := w.Append(KindDrift, []byte(`{"post":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.CommitSnapshot(seq, []byte(`{"state":"full"}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The pre-snapshot segment must be gone.
	dir := filepath.Join(st.Dir(), "s1")
	if _, err := os.Stat(filepath.Join(dir, segName(1))); !os.IsNotExist(err) {
		t.Fatalf("pre-snapshot segment still present (err=%v)", err)
	}

	sessions, failed, err := st.Recover()
	if err != nil || len(failed) != 0 {
		t.Fatalf("recover: err=%v failed=%v", err, failed)
	}
	rec := sessions[0]
	if string(rec.Snapshot) != `{"state":"full"}` || rec.SnapshotSeq != 4 {
		t.Fatalf("snapshot = %q seq %d, want body at seq 4", rec.Snapshot, rec.SnapshotSeq)
	}
	if len(rec.Tail) != 1 || rec.Tail[0].Kind != KindDrift || rec.LastSeq != 5 {
		t.Fatalf("tail = %+v lastSeq %d, want the one post-snapshot drift at 5", rec.Tail, rec.LastSeq)
	}

	// Resume must continue the sequence in a fresh segment.
	w2, err := st.Resume("s1", rec.LastSeq)
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := w2.Append(KindRound, []byte(`{}`)); err != nil || seq != 6 {
		t.Fatalf("resumed append seq %d err %v, want 6", seq, err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	sessions, failed, err = st.Recover()
	if err != nil || len(failed) != 0 {
		t.Fatalf("re-recover: err=%v failed=%v", err, failed)
	}
	if rec := sessions[0]; rec.LastSeq != 6 || len(rec.Tail) != 2 {
		t.Fatalf("after resume: %+v, want lastSeq 6 with 2 tail records", rec)
	}
}

// TestRecoverTornTailTruncates appends garbage half-frames to the final
// segment: recovery must truncate them on disk and succeed.
func TestRecoverTornTailTruncates(t *testing.T) {
	st := openStore(t, ModeStrict)
	w, err := st.Create("s1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(KindCreate, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(st.Dir(), "s1", segName(1))
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := appendRecord(nil, Record{Seq: 2, Kind: KindRound, Body: []byte(`{"torn":true}`)})
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	sessions, failed, err := st.Recover()
	if err != nil || len(failed) != 0 {
		t.Fatalf("recover: err=%v failed=%v", err, failed)
	}
	rec := sessions[0]
	if rec.TornBytes != len(torn)-3 || rec.LastSeq != 1 {
		t.Fatalf("torn %d lastSeq %d, want %d and 1", rec.TornBytes, rec.LastSeq, len(torn)-3)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, clean) {
		t.Fatalf("segment not truncated back to the clean prefix")
	}
}

// TestRecoverDropsEmptySealedSegment crashes right after a snapshot
// seal: BeginSnapshot has opened a fresh segment that never received a
// record, and the commit never happened. Recovery must drop the empty
// file — its name is exactly the segment Resume creates next — and the
// session must resume cleanly.
func TestRecoverDropsEmptySealedSegment(t *testing.T) {
	st := openStore(t, ModeStrict)
	w, err := st.Create("s1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		kind := KindRound
		if i == 0 {
			kind = KindCreate
		}
		if _, err := w.Append(kind, []byte(`{"x":1}`)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.BeginSnapshot(); err != nil {
		t.Fatal(err)
	}
	// Kill here: no commit, no appends into the fresh segment, no Close.

	sessions, failed, err := st.Recover()
	if err != nil || len(failed) != 0 {
		t.Fatalf("recover: err=%v failed=%v", err, failed)
	}
	rec := sessions[0]
	if len(rec.Tail) != 3 || rec.LastSeq != 3 || rec.Snapshot != nil {
		t.Fatalf("recovered %+v, want the 3 sealed records and no snapshot", rec)
	}
	if _, err := os.Stat(filepath.Join(st.Dir(), "s1", segName(4))); !os.IsNotExist(err) {
		t.Fatalf("empty sealed segment still present (err=%v)", err)
	}
	w2, err := st.Resume("s1", rec.LastSeq)
	if err != nil {
		t.Fatalf("resume after sealed-segment crash: %v", err)
	}
	if seq, err := w2.Append(KindRound, []byte(`{}`)); err != nil || seq != 4 {
		t.Fatalf("resumed append seq %d err %v, want 4", seq, err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverCorruptFailsOnlyThatSession damages one session mid-log and
// checks its sibling still recovers.
func TestRecoverCorruptFailsOnlyThatSession(t *testing.T) {
	st := openStore(t, ModeStrict)
	for _, id := range []string{"s1", "s2"} {
		w, err := st.Create(id)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			kind := KindRound
			if i == 0 {
				kind = KindCreate
			}
			if _, err := w.Append(kind, []byte(`{"x":1}`)); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(st.Dir(), "s1", segName(1))
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[frameHeader+payloadHeader] ^= 0x20 // first record's body, data behind it
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	sessions, failed, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 1 || sessions[0].ID != "s2" {
		t.Fatalf("recovered %v, want only s2", sessions)
	}
	if len(failed) != 1 || failed[0].ID != "s1" || !errors.Is(failed[0].Err, ErrCorrupt) {
		t.Fatalf("failed = %v, want s1 with ErrCorrupt", failed)
	}
}

// TestRecoverSeqGapIsCorrupt removes a middle segment (simulating lost
// data) and expects a loud per-session failure, not a silent gap.
func TestRecoverSeqGapIsCorrupt(t *testing.T) {
	st := openStore(t, ModeStrict)
	w, err := st.Create("s1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(KindCreate, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.BeginSnapshot(); err != nil { // rotate without committing
		t.Fatal(err)
	}
	if _, err := w.Append(KindRound, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(st.Dir(), "s1", segName(1))); err != nil {
		t.Fatal(err)
	}
	_, failed, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 1 || !errors.Is(failed[0].Err, ErrCorrupt) {
		t.Fatalf("failed = %v, want one ErrCorrupt failure", failed)
	}
}

// TestRecoverCorruptSnapshotFallsBack corrupts the newest snapshot while
// its predecessor and the full replay tail are still on disk.
func TestRecoverCorruptSnapshotFallsBack(t *testing.T) {
	st := openStore(t, ModeStrict)
	w, err := st.Create("s1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(KindCreate, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	seq, err := w.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CommitSnapshot(seq, []byte(`{"good":1}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(KindRound, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	seq2, err := w.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Commit the newer snapshot WITHOUT letting it truncate, then corrupt
	// it: write the frame by hand so segment wal-2 (holding seq 2) stays.
	frame := appendRecord(nil, Record{Seq: seq2, Kind: KindSnapshot, Body: []byte(`{"good":2}`)})
	frame[len(frame)-1] ^= 0xff
	if err := os.WriteFile(filepath.Join(st.Dir(), "s1", snapName(seq2)), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	sessions, failed, err := st.Recover()
	if err != nil || len(failed) != 0 {
		t.Fatalf("recover: err=%v failed=%v", err, failed)
	}
	rec := sessions[0]
	if string(rec.Snapshot) != `{"good":1}` || rec.SnapshotSeq != 1 {
		t.Fatalf("snapshot %q seq %d, want fallback to seq 1", rec.Snapshot, rec.SnapshotSeq)
	}
	if len(rec.Tail) != 1 || rec.LastSeq != 2 {
		t.Fatalf("tail %v lastSeq %d, want 1 record to seq 2", rec.Tail, rec.LastSeq)
	}
}

func TestParseMode(t *testing.T) {
	for in, want := range map[string]Mode{"buffered": ModeBuffered, "fsync": ModeStrict, "strict": ModeStrict} {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("ParseMode(bogus) should error")
	}
}

func TestCreateCollision(t *testing.T) {
	st := openStore(t, ModeBuffered)
	if _, err := st.Create("s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create("s1"); err == nil {
		t.Fatal("second Create for the same session should fail")
	}
}

func TestMetricsWired(t *testing.T) {
	reg := telemetry.NewRegistry()
	st, err := Open(t.TempDir(), Options{Mode: ModeStrict, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	w, err := st.Create("s1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(KindCreate, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	seq, err := w.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CommitSnapshot(seq, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Recover(); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter(MetricRecords).Value(); n != 1 {
		t.Fatalf("%s = %d, want 1", MetricRecords, n)
	}
	if reg.Counter(MetricBytes).Value() == 0 {
		t.Fatalf("%s not counted", MetricBytes)
	}
	if n := reg.Counter(MetricSnapshots).Value(); n != 1 {
		t.Fatalf("%s = %d, want 1", MetricSnapshots, n)
	}
	if n := reg.Counter(MetricRecoveredSessions).Value(); n != 1 {
		t.Fatalf("%s = %d, want 1", MetricRecoveredSessions, n)
	}
	if reg.Histogram(MetricAppendSeconds, appendSecLo, appendSecHi, appendSecBins).Count() == 0 {
		t.Fatalf("%s not observed", MetricAppendSeconds)
	}
	if reg.Histogram(MetricFsyncSeconds, fsyncSecLo, fsyncSecHi, fsyncSecBins).Count() == 0 {
		t.Fatalf("%s not observed", MetricFsyncSeconds)
	}
	if reg.Histogram(MetricSnapshotSeconds, snapSecLo, snapSecHi, snapSecBins).Count() == 0 {
		t.Fatalf("%s not observed", MetricSnapshotSeconds)
	}
}
