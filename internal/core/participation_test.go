package core

import (
	"math"
	"testing"
	"testing/quick"

	"math/rand"

	"dyncontract/internal/effort"
	"dyncontract/internal/worker"
)

// reservedAgent builds an honest agent with a reservation utility.
func reservedAgent(t *testing.T, reservation float64) *worker.Agent {
	t.Helper()
	a, err := worker.NewHonest("res", stdPsi(t), 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	a.Reservation = reservation
	if err := a.Validate(40); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDesignZeroReservationUnchanged(t *testing.T) {
	// Reservation 0 must reproduce the base design exactly.
	base, err := Design(honestAgent(t), stdConfig(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	reserved, err := Design(reservedAgent(t, 0), stdConfig(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !base.Contract.Equal(reserved.Contract) {
		t.Error("zero reservation changed the contract")
	}
	for _, cand := range reserved.Candidates {
		if cand.ParticipationLift != 0 {
			t.Errorf("k=%d: lift %v with zero reservation", cand.K, cand.ParticipationLift)
		}
	}
}

func TestDesignParticipationLift(t *testing.T) {
	// A reservation above the base design's worker utility forces a lift.
	base, err := Design(honestAgent(t), stdConfig(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	reservation := base.Response.Utility + 2
	res, err := Design(reservedAgent(t, reservation), stdConfig(t, 10))
	if err != nil {
		t.Fatalf("Design with reservation: %v", err)
	}
	if res.Response.Declined {
		t.Fatal("designed contract still declined")
	}
	// Worker utility meets the reservation (minimally).
	if res.Response.Utility < reservation {
		t.Errorf("worker utility %v below reservation %v", res.Response.Utility, reservation)
	}
	chosen := res.Candidates[res.KOpt-1]
	if chosen.ParticipationLift <= 0 {
		t.Errorf("lift = %v, want positive", chosen.ParticipationLift)
	}
	// The lift preserves incentives: same induced effort as the base
	// design at the same k.
	baseCand := base.Candidates[res.KOpt-1]
	if math.Abs(chosen.Response.Effort-baseCand.Response.Effort) > 1e-9 {
		t.Errorf("lift changed induced effort: %v vs %v",
			chosen.Response.Effort, baseCand.Response.Effort)
	}
	// And it costs the requester exactly μ·lift more at that candidate.
	extraCost := chosen.Response.Compensation - baseCand.Response.Compensation
	if math.Abs(extraCost-chosen.ParticipationLift) > 1e-6 {
		t.Errorf("lift %v but compensation rose by %v", chosen.ParticipationLift, extraCost)
	}
}

func TestDesignHighReservationStillParticipates(t *testing.T) {
	// Even absurd reservations are satisfiable by lifting (the requester
	// may not want to, but the contract is individually rational).
	res, err := Design(reservedAgent(t, 100), stdConfig(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Response.Declined {
		t.Error("declined despite participation lift")
	}
	if res.Response.Utility < 100 {
		t.Errorf("utility %v below reservation 100", res.Response.Utility)
	}
	// The requester's utility reflects the expensive lift.
	if res.RequesterUtility > 0 {
		t.Logf("note: requester still profits (%v) despite reservation 100", res.RequesterUtility)
	}
}

// Property: designed contracts are always individually rational — the
// worker participates and clears the reservation.
func TestDesignIndividualRationalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		psi, err := effort.NewQuadratic(-0.01-rng.Float64()*0.02, 1.5+rng.Float64(), rng.Float64(), 30)
		if err != nil {
			return true
		}
		part, err := effort.NewPartition(4+rng.Intn(8), 2)
		if err != nil {
			return true
		}
		if psi.Deriv(part.YMax()) <= 0 {
			return true
		}
		a, err := worker.NewHonest("w", psi, 0.5+rng.Float64(), part.YMax())
		if err != nil {
			return true
		}
		a.Reservation = rng.Float64() * 20
		res, err := Design(a, Config{Part: part, Mu: 1, W: 0.5 + rng.Float64()})
		if err != nil {
			return false
		}
		return !res.Response.Declined && res.Response.Utility >= a.Reservation-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
