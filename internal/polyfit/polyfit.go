// Package polyfit implements least-squares polynomial fitting and the
// norm-of-residual (NoR) model comparison the paper uses in §IV-B /
// Table III to choose quadratic effort functions.
//
// Fits are computed with a Householder QR factorization of the Vandermonde
// system (internal/numeric); for numerical stability the abscissae are
// centred and scaled before the Vandermonde matrix is formed, and the
// returned coefficients are mapped back to the raw-x basis.
package polyfit

import (
	"errors"
	"fmt"
	"math"

	"dyncontract/internal/numeric"
)

// ErrInsufficientData is returned when fewer points than coefficients are
// supplied.
var ErrInsufficientData = errors.New("polyfit: not enough data points for requested degree")

// Fit is a fitted polynomial y = Σ Coeffs[k]·x^k together with its fit
// diagnostics.
type Fit struct {
	// Coeffs holds the polynomial coefficients in ascending-power order:
	// Coeffs[0] + Coeffs[1]·x + Coeffs[2]·x² + …
	Coeffs []float64
	// NoR is the norm of residual ‖y − ŷ‖₂, the measure Table III reports.
	NoR float64
	// Degree is the polynomial degree (len(Coeffs)−1).
	Degree int
	// N is the number of fitted points.
	N int
}

// Eval evaluates the fitted polynomial at x using Horner's rule.
func (f Fit) Eval(x float64) float64 {
	var y float64
	for k := len(f.Coeffs) - 1; k >= 0; k-- {
		y = y*x + f.Coeffs[k]
	}
	return y
}

// Polynomial fits a degree-d polynomial to the points (xs[i], ys[i]) by
// least squares.
func Polynomial(xs, ys []float64, degree int) (Fit, error) {
	if degree < 0 {
		return Fit{}, fmt.Errorf("polyfit: negative degree %d", degree)
	}
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("polyfit: %d xs vs %d ys: %w", len(xs), len(ys), numeric.ErrDimensionMismatch)
	}
	n := len(xs)
	cols := degree + 1
	if n < cols {
		return Fit{}, fmt.Errorf("polyfit: %d points for degree %d: %w", n, degree, ErrInsufficientData)
	}
	for i := 0; i < n; i++ {
		if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) || math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
			return Fit{}, fmt.Errorf("polyfit: non-finite data at index %d (x=%v, y=%v)", i, xs[i], ys[i])
		}
	}

	// Centre and scale x for conditioning: t = (x − mu) / sigma.
	var mu float64
	for _, x := range xs {
		mu += x
	}
	mu /= float64(n)
	var sigma float64
	for _, x := range xs {
		d := x - mu
		sigma += d * d
	}
	sigma = math.Sqrt(sigma / float64(n))
	if sigma == 0 {
		sigma = 1 // all x identical; only degree 0 can be full rank
	}

	vand := numeric.NewMatrix(n, cols)
	for i := 0; i < n; i++ {
		t := (xs[i] - mu) / sigma
		p := 1.0
		for k := 0; k < cols; k++ {
			vand.Set(i, k, p)
			p *= t
		}
	}
	b := make(numeric.Vector, n)
	copy(b, ys)

	scaled, nor, err := numeric.LeastSquares(vand, b)
	if err != nil {
		return Fit{}, fmt.Errorf("polyfit degree %d: %w", degree, err)
	}

	coeffs, err := unscaleCoeffs(scaled, mu, sigma)
	if err != nil {
		return Fit{}, err
	}
	return Fit{Coeffs: coeffs, NoR: nor, Degree: degree, N: n}, nil
}

// unscaleCoeffs converts coefficients of p(t), t = (x−mu)/sigma, into
// coefficients of the same polynomial in x via binomial expansion.
func unscaleCoeffs(scaled numeric.Vector, mu, sigma float64) ([]float64, error) {
	cols := len(scaled)
	out := make([]float64, cols)
	// p(x) = Σ_k c_k ((x − mu)/sigma)^k. Expand each term.
	for k := 0; k < cols; k++ {
		ck := scaled[k] / math.Pow(sigma, float64(k))
		// (x − mu)^k = Σ_j C(k,j) x^j (−mu)^{k−j}
		binom := 1.0
		for j := k; j >= 0; j-- {
			out[j] += ck * binom * math.Pow(-mu, float64(k-j))
			// C(k, j-1) = C(k, j) * j / (k - j + 1)
			if j > 0 {
				binom = binom * float64(j) / float64(k-j+1)
			}
		}
	}
	for _, c := range out {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, errors.New("polyfit: coefficient unscaling produced non-finite values")
		}
	}
	return out, nil
}

// Sweep fits polynomials of every degree in [minDegree, maxDegree] and
// returns the fits in degree order. It is the engine behind Table III's
// linear/quadratic/…/6th-order NoR comparison.
func Sweep(xs, ys []float64, minDegree, maxDegree int) ([]Fit, error) {
	if minDegree < 0 || maxDegree < minDegree {
		return nil, fmt.Errorf("polyfit: invalid degree range [%d, %d]", minDegree, maxDegree)
	}
	fits := make([]Fit, 0, maxDegree-minDegree+1)
	for d := minDegree; d <= maxDegree; d++ {
		f, err := Polynomial(xs, ys, d)
		if err != nil {
			return nil, fmt.Errorf("sweep at degree %d: %w", d, err)
		}
		fits = append(fits, f)
	}
	return fits, nil
}

// ChooseDegree implements the paper's model-selection rule: prefer the
// lowest degree whose NoR is within tolFrac (e.g. 0.01 = 1%) of the best NoR
// in the sweep. With the paper's data this selects the quadratic.
func ChooseDegree(fits []Fit, tolFrac float64) (Fit, error) {
	if len(fits) == 0 {
		return Fit{}, errors.New("polyfit: empty sweep")
	}
	best := math.Inf(1)
	for _, f := range fits {
		if f.NoR < best {
			best = f.NoR
		}
	}
	for _, f := range fits {
		if f.NoR <= best*(1+tolFrac) {
			return f, nil
		}
	}
	return fits[len(fits)-1], nil
}
