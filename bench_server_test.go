package dyncontract

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dyncontract/internal/server"
)

// BenchmarkServerDesignBatch measures the serving layer end to end:
// concurrent clients posting design-only queries through the HTTP API,
// coalesced by the micro-batcher into shared engine passes against a warm
// design cache. Sub-benchmarks vary the client fan-in; cold solve cost is
// paid once before the timer starts.
//
// This benchmark rides the network stack (httptest over loopback), so it
// is intentionally excluded from bench.sh's warm-round regression bars —
// track it for trend, not for the ±25% gate.
func BenchmarkServerDesignBatch(b *testing.B) {
	for _, clients := range []int{1, 8, 32} {
		// Name deliberately avoids a trailing "-<digits>": bench.sh strips
		// that pattern as the GOMAXPROCS suffix when building JSON names.
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			srv := server.New(server.Config{BatchWindow: 500 * time.Microsecond, BatchMax: 64})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			psi := server.PsiSpec{R2: -0.25, R1: 2}
			create := server.CreateSessionRequest{
				Agents: []server.AgentSpec{
					{ID: "h1", Class: "honest", Psi: psi, Beta: 1, Weight: 1},
					{ID: "m1", Class: "malicious", Psi: psi, Beta: 1, Omega: 0.5, Weight: 0.8},
				},
				M: 20, Delta: 0.1, Mu: 1,
			}
			var created server.CreateSessionResponse
			post(b, ts, "/v1/sessions", create, &created, http.StatusCreated)

			// Warm the cache: every weight the loop will query, solved once.
			query := func(i int) server.DesignQueryRequest {
				return server.DesignQueryRequest{Agent: &server.AgentSpec{
					ID: "probe", Class: "honest", Psi: psi, Beta: 1,
					Weight: 0.5 + 0.25*float64(i%4),
				}}
			}
			path := "/v1/sessions/" + created.ID + "/design"
			for i := 0; i < 4; i++ {
				post(b, ts, path, query(i), nil, http.StatusOK)
			}

			b.ResetTimer()
			b.ReportAllocs()
			var wg sync.WaitGroup
			per := b.N / clients
			extra := b.N % clients
			for c := 0; c < clients; c++ {
				n := per
				if c < extra {
					n++
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						post(b, ts, path, query(i), nil, http.StatusOK)
					}
				}(n)
			}
			wg.Wait()
		})
	}
}

// BenchmarkServerDriftRoute measures the drift mutation route end to end:
// one client alternating an agent's feedback weight between two values on
// a sharded session, so every request exercises the touched-set
// declaration (Population.Touch) and the engine's sparse refresh on the
// next round advance. The "drift-only" variant posts back-to-back drifts;
// "drift+round" interleaves a round advance after each drift, covering
// the sparse refresh and patch respond as well.
//
// Like BenchmarkServerDesignBatch this rides the network stack, so it is
// excluded from bench.sh's warm-round regression bars.
func BenchmarkServerDriftRoute(b *testing.B) {
	newSession := func(b *testing.B) (*httptest.Server, string) {
		srv := server.New(server.Config{})
		ts := httptest.NewServer(srv.Handler())
		b.Cleanup(ts.Close)
		psi := server.PsiSpec{R2: -0.25, R1: 2}
		create := server.CreateSessionRequest{
			Agents: []server.AgentSpec{
				{ID: "h1", Class: "honest", Psi: psi, Beta: 1, Weight: 1},
				{ID: "h2", Class: "honest", Psi: psi, Beta: 1.2, Weight: 1},
				{ID: "m1", Class: "malicious", Psi: psi, Beta: 1, Omega: 0.5, Weight: 0.8, Malice: 0.9},
				{ID: "c1", Class: "community", Psi: psi, Beta: 1, Omega: 0.3, Size: 3, Weight: 0.5},
			},
			M: 10, Delta: 0.2, Mu: 1, Shards: 2,
		}
		var created server.CreateSessionResponse
		post(b, ts, "/v1/sessions", create, &created, http.StatusCreated)
		return ts, created.ID
	}
	drift := func(i int) server.DriftRequest {
		// Two alternating weights keep both fingerprints warm in the
		// session's design cache after the first pair of rounds.
		w := 1.1
		if i%2 == 1 {
			w = 1.2
		}
		return server.DriftRequest{Weights: map[string]float64{"h1": w}}
	}

	b.Run("drift-only", func(b *testing.B) {
		ts, id := newSession(b)
		driftPath := "/v1/sessions/" + id + "/drift"
		post(b, ts, "/v1/sessions/"+id+"/rounds", server.AdvanceRoundRequest{}, nil, http.StatusOK)
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			post(b, ts, driftPath, drift(i), nil, http.StatusOK)
		}
	})
	b.Run("drift+round", func(b *testing.B) {
		ts, id := newSession(b)
		driftPath := "/v1/sessions/" + id + "/drift"
		roundPath := "/v1/sessions/" + id + "/rounds"
		for i := 0; i < 2; i++ { // warm both drifted fingerprints
			post(b, ts, driftPath, drift(i), nil, http.StatusOK)
			post(b, ts, roundPath, server.AdvanceRoundRequest{}, nil, http.StatusOK)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			post(b, ts, driftPath, drift(i), nil, http.StatusOK)
			post(b, ts, roundPath, server.AdvanceRoundRequest{}, nil, http.StatusOK)
		}
	})
}

// post issues one JSON POST against the bench server and enforces the
// expected status.
func post(b *testing.B, ts *httptest.Server, path string, payload any, out any, want int) {
	b.Helper()
	body, err := json.Marshal(payload)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		b.Fatalf("POST %s: status %d, want %d", path, resp.StatusCode, want)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			b.Fatal(err)
		}
	} else {
		var sink json.RawMessage
		_ = json.NewDecoder(resp.Body).Decode(&sink)
	}
}
