package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAllPolicies(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-rounds", "2", "-perclass", "40", "-seed", "4"}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"policy dynamic-contract",
		"policy exclude-malicious(>0.50)",
		"policy fixed-payment(1.00)",
		"total utility over 2 rounds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if got := strings.Count(out, "round 0:"); got != 3 {
		t.Errorf("round-0 lines = %d, want 3 (one per policy)", got)
	}
}

func TestRunSinglePolicy(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-policies", "dynamic", "-rounds", "1", "-perclass", "30"}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(buf.String(), "exclude-malicious") {
		t.Error("unrequested policy ran")
	}
}

func TestRunActorEngine(t *testing.T) {
	var seq, act bytes.Buffer
	if err := run([]string{"-policies", "dynamic", "-rounds", "1", "-perclass", "25", "-engine", "seq"}, &seq); err != nil {
		t.Fatalf("seq engine: %v", err)
	}
	if err := run([]string{"-policies", "dynamic", "-rounds", "1", "-perclass", "25", "-engine", "actor"}, &act); err != nil {
		t.Fatalf("actor engine: %v", err)
	}
	// Both engines must report identical utilities (equivalence is also
	// unit-tested in internal/actor; this checks the CLI wiring).
	if seq.String() != act.String() {
		t.Errorf("engines disagree:\nseq:\n%s\nactor:\n%s", seq.String(), act.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-policies", "anarchy"}, &buf); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run([]string{"-engine", "quantum", "-perclass", "10"}, &buf); err == nil {
		t.Error("unknown engine accepted")
	}
	if err := run([]string{"-scale", "huge"}, &buf); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run([]string{"-rounds", "0", "-perclass", "10"}, &buf); err == nil {
		t.Error("rounds=0 accepted")
	}
}

func TestRunRespondStats(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-policies", "dynamic", "-rounds", "2", "-perclass", "30", "-respondstats", "-cachestats"}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "respond memo:") {
		t.Errorf("-respondstats output missing memo line:\n%s", out)
	}
	if !strings.Contains(out, "design cache:") {
		t.Errorf("-cachestats output missing cache line:\n%s", out)
	}
}

func TestRunNoMemoMatchesMemo(t *testing.T) {
	var with, without bytes.Buffer
	if err := run([]string{"-policies", "dynamic", "-rounds", "2", "-perclass", "25"}, &with); err != nil {
		t.Fatalf("memo run: %v", err)
	}
	if err := run([]string{"-policies", "dynamic", "-rounds", "2", "-perclass", "25", "-nomemo", "-respond-parallel", "4"}, &without); err != nil {
		t.Fatalf("nomemo run: %v", err)
	}
	// The memo is a pure optimization: identical ledgers either way, even
	// against the parallel no-memo route.
	if with.String() != without.String() {
		t.Errorf("memoized and memo-free runs disagree:\nmemo:\n%s\nnomemo:\n%s", with.String(), without.String())
	}
}
