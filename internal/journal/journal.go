// Package journal is contractd's durability subsystem: an append-only
// per-session write-ahead log plus periodic snapshots, giving sessions
// byte-identical crash recovery.
//
// Every session owns one directory under the store root:
//
//	<dir>/<sessionID>/wal-<startSeq>.log   append-only segments
//	<dir>/<sessionID>/snap-<seq>.snap      full-state snapshots
//
// Commands (session create, round advance, drift) are framed with a
// length prefix and a CRC32C checksum (codec.go) and appended by the
// session's single-writer loop *before* execution, so the log is always
// a superset of the executed history. Snapshots rotate the segment at a
// sequence boundary and are committed atomically (temp file, fsync,
// rename, directory fsync) before older segments and snapshots are
// deleted; a crash anywhere in that protocol leaves either the old
// recovery path or the new one intact, never neither.
//
// Two durability modes: ModeBuffered writes behind a user-space buffer
// the session loop flushes when idle (a kill -9 can lose the unflushed
// tail — recovery yields a prefix of the served history), and ModeStrict
// flushes and fsyncs before every command executes (a served response
// implies a durable record, at fsync cost per command).
package journal

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"dyncontract/internal/telemetry"
)

// Mode selects the durability level of Writer.Append.
type Mode int

const (
	// ModeBuffered writes behind a user-space buffer; the caller flushes
	// at its own cadence (the session loop flushes when its queue runs
	// dry). Completed OS writes survive kill -9; the unflushed buffer and
	// OS cache do not survive a machine crash.
	ModeBuffered Mode = iota
	// ModeStrict flushes and fsyncs every append before it returns, so
	// a command is durable before it executes.
	ModeStrict
)

// ParseMode resolves the -journal-sync flag values.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "buffered":
		return ModeBuffered, nil
	case "fsync", "strict":
		return ModeStrict, nil
	default:
		return 0, fmt.Errorf("journal: unknown sync mode %q (want buffered or fsync)", s)
	}
}

func (m Mode) String() string {
	if m == ModeStrict {
		return "fsync"
	}
	return "buffered"
}

// Options tunes a Store.
type Options struct {
	// Mode is the append durability level. Default ModeBuffered.
	Mode Mode
	// BufferBytes sizes each writer's user-space buffer in ModeBuffered.
	// Default 64 KiB.
	BufferBytes int
	// Metrics, when non-nil, receives append/fsync latency histograms,
	// byte and record counters, snapshot durations, and recovery
	// counters. Nil is off.
	Metrics *telemetry.Registry
}

// Store is a journal directory: one subdirectory per session.
type Store struct {
	dir  string
	opts Options
	m    *journalMetrics
}

// Open creates (if needed) and opens the journal root directory.
func Open(dir string, opts Options) (*Store, error) {
	if opts.BufferBytes <= 0 {
		opts.BufferBytes = 64 << 10
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", dir, err)
	}
	return &Store{dir: dir, opts: opts, m: newJournalMetrics(opts.Metrics)}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// Mode returns the store's append durability mode.
func (st *Store) Mode() Mode { return st.opts.Mode }

// Create opens the write-ahead log for a brand-new session. It fails if
// the session already has a journal directory — fresh session IDs must
// not collide with journaled history.
func (st *Store) Create(id string) (*Writer, error) {
	dir := filepath.Join(st.dir, id)
	if err := os.Mkdir(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: create session %s: %w", id, err)
	}
	return st.newWriter(id, dir, 0)
}

// Resume reopens the write-ahead log of a recovered session: appends
// continue after lastSeq in a fresh segment, leaving recovered segments
// untouched.
func (st *Store) Resume(id string, lastSeq uint64) (*Writer, error) {
	dir := filepath.Join(st.dir, id)
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return nil, fmt.Errorf("journal: resume session %s: no journal directory", id)
	}
	return st.newWriter(id, dir, lastSeq)
}

func (st *Store) newWriter(id, dir string, lastSeq uint64) (*Writer, error) {
	w := &Writer{st: st, id: id, dir: dir}
	w.seq.Store(lastSeq)
	if err := w.openSegment(lastSeq + 1); err != nil {
		return nil, err
	}
	return w, nil
}

// Writer appends one session's records. Append, Flush, BeginSnapshot,
// and Close belong to the session's writer goroutine; CommitSnapshot may
// run on a background goroutine (it touches only its own files). Seq is
// safe from any goroutine.
type Writer struct {
	st  *Store
	id  string
	dir string

	f   *os.File
	bw  *bufio.Writer
	seq atomic.Uint64 // last assigned sequence number

	scratch []byte
}

// segName formats a segment file name from its first sequence number.
func segName(startSeq uint64) string {
	return fmt.Sprintf("wal-%016d.log", startSeq)
}

// snapName formats a snapshot file name from its last covered sequence.
func snapName(seq uint64) string {
	return fmt.Sprintf("snap-%016d.snap", seq)
}

// parseSeq extracts the sequence number from a wal-/snap- file name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	num, ok := strings.CutPrefix(name, prefix)
	if !ok {
		return 0, false
	}
	if num, ok = strings.CutSuffix(num, suffix); !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

func (w *Writer) openSegment(startSeq uint64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segName(startSeq)), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: session %s: %w", w.id, err)
	}
	w.f = f
	if w.bw == nil {
		w.bw = bufio.NewWriterSize(f, w.st.opts.BufferBytes)
	} else {
		w.bw.Reset(f)
	}
	return nil
}

// Seq returns the last assigned sequence number.
func (w *Writer) Seq() uint64 { return w.seq.Load() }

// Append assigns the next sequence number and writes one record. In
// ModeStrict the record is flushed and fsynced before Append returns;
// in ModeBuffered it lands in the user-space buffer.
func (w *Writer) Append(kind Kind, body []byte) (uint64, error) {
	seq := w.seq.Load() + 1
	var t telemetry.Timer
	if w.st.m != nil {
		t = telemetry.StartTimer()
	}
	w.scratch = appendRecord(w.scratch[:0], Record{Seq: seq, Kind: kind, Body: body})
	if _, err := w.bw.Write(w.scratch); err != nil {
		return 0, fmt.Errorf("journal: session %s append: %w", w.id, err)
	}
	if m := w.st.m; m != nil {
		m.appendSec.Observe(t.Seconds())
		m.bytes.Add(uint64(len(w.scratch)))
		m.records.Inc()
	}
	// The record is in the stream: the sequence number is consumed even if
	// the strict-mode sync below fails (reusing it would fork the log).
	w.seq.Store(seq)
	if w.st.opts.Mode == ModeStrict {
		if err := w.Sync(); err != nil {
			return seq, err
		}
	}
	return seq, nil
}

// Flush drains the user-space buffer to the OS. After a successful Flush
// the written records survive kill -9 (not a machine crash; see Sync).
func (w *Writer) Flush() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("journal: session %s flush: %w", w.id, err)
	}
	return nil
}

// Sync flushes and fsyncs the current segment.
func (w *Writer) Sync() error {
	if err := w.Flush(); err != nil {
		return err
	}
	var t telemetry.Timer
	if w.st.m != nil {
		t = telemetry.StartTimer()
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("journal: session %s fsync: %w", w.id, err)
	}
	if w.st.m != nil {
		w.st.m.fsyncSec.Observe(t.Seconds())
	}
	return nil
}

// BeginSnapshot seals the current segment at a sequence boundary: the
// segment is flushed, fsynced, and closed, and appends continue in a
// fresh segment starting at Seq()+1. It returns the sequence number the
// snapshot must cover. The caller serializes snapshots — at most one
// between BeginSnapshot and CommitSnapshot.
func (w *Writer) BeginSnapshot() (uint64, error) {
	if err := w.Sync(); err != nil {
		return 0, err
	}
	if err := w.f.Close(); err != nil {
		return 0, fmt.Errorf("journal: session %s: %w", w.id, err)
	}
	seq := w.seq.Load()
	if err := w.openSegment(seq + 1); err != nil {
		return 0, err
	}
	return seq, nil
}

// CommitSnapshot durably writes the snapshot covering seq — temp file,
// fsync, rename, directory fsync — then deletes every segment and
// snapshot it supersedes. Safe to run on a background goroutine while
// the writer goroutine keeps appending to the post-BeginSnapshot
// segment.
func (w *Writer) CommitSnapshot(seq uint64, body []byte) error {
	var t telemetry.Timer
	if w.st.m != nil {
		t = telemetry.StartTimer()
	}
	frame := appendRecord(nil, Record{Seq: seq, Kind: KindSnapshot, Body: body})
	tmp := filepath.Join(w.dir, snapName(seq)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: session %s snapshot: %w", w.id, err)
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return fmt.Errorf("journal: session %s snapshot: %w", w.id, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: session %s snapshot: %w", w.id, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: session %s snapshot: %w", w.id, err)
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, snapName(seq))); err != nil {
		return fmt.Errorf("journal: session %s snapshot: %w", w.id, err)
	}
	syncDir(w.dir)
	// The snapshot is durable: segments fully covered by it (started at
	// or before seq — BeginSnapshot's rotation guarantees they hold no
	// record past seq) and older snapshots are dead weight.
	entries, err := os.ReadDir(w.dir)
	if err == nil {
		for _, e := range entries {
			if s, ok := parseSeq(e.Name(), "wal-", ".log"); ok && s <= seq {
				os.Remove(filepath.Join(w.dir, e.Name()))
			}
			if s, ok := parseSeq(e.Name(), "snap-", ".snap"); ok && s < seq {
				os.Remove(filepath.Join(w.dir, e.Name()))
			}
		}
		syncDir(w.dir)
	}
	if m := w.st.m; m != nil {
		m.snapshotSec.Observe(t.Seconds())
		m.snapshots.Inc()
		m.bytes.Add(uint64(len(frame)))
	}
	return nil
}

// Close flushes and closes the current segment. In ModeBuffered the tail
// is flushed but not fsynced — a clean close is durable against process
// death, matching the mode's contract.
func (w *Writer) Close() error {
	if err := w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if w.st.opts.Mode == ModeStrict {
		if err := w.Sync(); err != nil {
			w.f.Close()
			return err
		}
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("journal: session %s close: %w", w.id, err)
	}
	return nil
}

// syncDir fsyncs a directory so renames and removals inside it are
// durable. Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// sessionDirs lists the store's session subdirectories, sorted by name.
func (st *Store) sessionDirs() ([]string, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: scan %s: %w", st.dir, err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}
