package worker

import (
	"testing"

	"dyncontract/internal/contract"
)

func TestReservationValidation(t *testing.T) {
	psi := testPsi(t)
	a := &Agent{ID: "w", Class: Honest, Psi: psi, Beta: 1, Size: 1, Reservation: -1}
	if err := a.Validate(10); err == nil {
		t.Error("negative reservation accepted")
	}
	a.Reservation = 2
	if err := a.Validate(10); err != nil {
		t.Errorf("valid reservation rejected: %v", err)
	}
}

func TestBestResponseDeclinesBelowReservation(t *testing.T) {
	psi := testPsi(t)
	part := testPart(t)
	// A stingy contract: the worker's best utility under it is small.
	stingy := linearContract(t, psi, part, 0.1)
	a, err := NewHonest("picky", psi, 1, part.YMax())
	if err != nil {
		t.Fatal(err)
	}

	// Without a reservation the worker takes whatever it can get.
	free, err := a.BestResponse(stingy, part)
	if err != nil {
		t.Fatal(err)
	}
	if free.Declined {
		t.Fatal("zero-reservation worker declined")
	}

	// With a reservation above that utility the worker walks away.
	a.Reservation = free.Utility + 1
	resp, err := a.BestResponse(stingy, part)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Declined {
		t.Fatalf("worker accepted %v despite reservation %v", free.Utility, a.Reservation)
	}
	if resp.Effort != 0 || resp.Compensation != 0 || resp.Utility != 0 {
		t.Errorf("declined response not zeroed: %+v", resp)
	}
}

func TestBestResponseAcceptsAtReservation(t *testing.T) {
	psi := testPsi(t)
	part := testPart(t)
	generous := linearContract(t, psi, part, 2)
	a, err := NewHonest("fair", psi, 1, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	free, err := a.BestResponse(generous, part)
	if err != nil {
		t.Fatal(err)
	}
	// Reservation exactly at the achievable utility: still participates.
	a.Reservation = free.Utility
	resp, err := a.BestResponse(generous, part)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Declined {
		t.Error("worker declined at exactly the reservation utility")
	}
}

func TestMaliciousIntrinsicMotivationCoversReservation(t *testing.T) {
	// A malicious worker's ω·feedback can clear the outside option even
	// under a zero contract — the retention experiment's observed effect.
	psi := testPsi(t)
	part := testPart(t)
	flat, err := contract.Flat(psi.Eval(0), psi.Eval(part.YMax()), 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMalicious("zealot", psi, 1, 1, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	free, err := m.BestResponse(flat, part)
	if err != nil {
		t.Fatal(err)
	}
	if free.Utility <= 0 {
		t.Fatalf("intrinsic utility %v, want positive", free.Utility)
	}
	m.Reservation = free.Utility / 2
	resp, err := m.BestResponse(flat, part)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Declined {
		t.Error("intrinsically motivated worker declined an affordable reservation")
	}

	h, err := NewHonest("mercenary", psi, 1, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	h.Reservation = free.Utility / 2
	hresp, err := h.BestResponse(flat, part)
	if err != nil {
		t.Fatal(err)
	}
	if !hresp.Declined {
		t.Error("honest worker accepted a zero contract above its reservation")
	}
}
