package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dyncontract/internal/contract"
	"dyncontract/internal/core"
	"dyncontract/internal/telemetry"
	"dyncontract/internal/worker"
)

// The respond stage is the lower level of the Stackelberg game: every
// agent computes its exact best response (Lemma 4.1 interval case
// analysis) to the contract it was offered. The paper's decomposition
// argument (§IV-B) applies here exactly as it does to contract design —
// a best response depends only on the agent's behavioural parameters,
// the partition, and the contract, so agents sharing a design
// fingerprint and a contract share one BestResponse call. This file
// holds both halves of the acceleration: the cross-round RespondMemo
// and the per-round stage (memoized dedup plus the bounded parallel
// fan-out for misses).

// respondKey identifies a best-response problem up to equality of its
// inputs: the agent's design fingerprint (class, ψ, β, ω, reservation,
// partition, μ, w — a superset of what BestResponse reads, so equal keys
// imply equal responses) and the contract's identity. Keying on the
// contract pointer is sound because the memo retains the key: a held
// pointer can never be recycled for a different contract. The policies
// that benefit (Designer-backed ones with a Cache) serve stable contract
// pointers for stable fingerprints; a policy that re-allocates equal
// contracts every round simply misses every round — correct, just not
// accelerated.
type respondKey struct {
	fp Fingerprint
	c  *contract.PiecewiseLinear
}

// RespondStats is a snapshot of a memo's counters.
type RespondStats struct {
	// Hits counts distinct (fingerprint, contract) lookups served from
	// the memo — each one a BestResponse call that did not happen.
	Hits uint64
	// Misses counts lookups that required a fresh BestResponse call.
	Misses uint64
	// Entries is the number of distinct responses currently held.
	Entries int
}

// defaultMemoCap bounds the entry map, mirroring the design cache:
// weight drift mints a new key per (agent, weight, contract) triple, so
// a long adaptive run would otherwise grow without bound. Crossing the
// cap flushes the whole map; counters are preserved.
const defaultMemoCap = 1 << 16

// RespondMemo is a deduplicating best-response memo keyed by (design
// fingerprint, contract). It is safe for concurrent use; the zero value
// is ready to use.
//
// Correctness is automatic, by the same argument as Cache: every input
// BestResponse reads is part of the key, so a drift that mutates an
// agent's ψ, β, ω, or reservation mints a new fingerprint and the stale
// entry is simply never looked up again. Invalidate exists for memory
// control and cold-start comparisons.
type RespondMemo struct {
	// MaxEntries caps the map; 0 means the package default (65536).
	MaxEntries int

	mu      sync.RWMutex
	entries map[respondKey]worker.Response
	// byFP is the secondary index for targeted invalidation: every
	// contract a fingerprint was memoized against, so RemoveFingerprints
	// can drop all of a dead fingerprint's (fp, contract) entries without
	// scanning the map. Maintained by Put, discarded with the entries on
	// Invalidate and cap flushes.
	byFP map[Fingerprint][]*contract.PiecewiseLinear
	// hits/misses are telemetry counters so a registry can adopt them
	// directly (ExportTo); Stats() stays a thin view over the same
	// atomics, with or without a registry attached.
	hits   telemetry.Counter
	misses telemetry.Counter
	// size mirrors len(entries) into the registry; nil (a no-op gauge)
	// until ExportTo attaches one. Guarded by mu.
	size *telemetry.Gauge
	// gen counts whole-map drops (Invalidate and cap flushes), clearing
	// segments lazily — see Cache.gen for the protocol.
	gen atomic.Uint64
}

// NewRespondMemo returns an empty memo with the default size cap.
func NewRespondMemo() *RespondMemo { return &RespondMemo{} }

// Get looks up a best response, counting a hit or a miss.
func (m *RespondMemo) Get(fp Fingerprint, c *contract.PiecewiseLinear) (worker.Response, bool) {
	key := respondKey{fp: fp, c: c}
	m.mu.RLock()
	resp, ok := m.entries[key]
	m.mu.RUnlock()
	if ok {
		m.hits.Inc()
		return resp, true
	}
	m.misses.Inc()
	return worker.Response{}, false
}

// Put stores a best response under its key, flushing the map first if it
// would exceed the cap.
func (m *RespondMemo) Put(fp Fingerprint, c *contract.PiecewiseLinear, resp worker.Response) {
	if c == nil {
		return
	}
	max := m.MaxEntries
	if max <= 0 {
		max = defaultMemoCap
	}
	key := respondKey{fp: fp, c: c}
	m.mu.Lock()
	if m.entries == nil {
		m.entries = make(map[respondKey]worker.Response)
	} else if len(m.entries) >= max {
		m.entries = make(map[respondKey]worker.Response)
		m.byFP = nil
		m.gen.Add(1)
	}
	if _, dup := m.entries[key]; !dup {
		if m.byFP == nil {
			m.byFP = make(map[Fingerprint][]*contract.PiecewiseLinear)
		}
		m.byFP[fp] = append(m.byFP[fp], c)
	}
	m.entries[key] = resp
	m.size.Set(float64(len(m.entries)))
	m.mu.Unlock()
}

// RemoveFingerprints drops every memoized response keyed by the named
// fingerprints, whatever contract they were paired with — the memo-side
// half of a sparse drift's targeted invalidation (see Cache.Remove for
// the refcounting contract). Like Remove, it does not bump the segment
// generation: a lingering segment-local entry is exact by construction —
// the (fingerprint, contract) key fully determines the response — so the
// removal only bounds the shared table's memory. Counters are preserved.
func (m *RespondMemo) RemoveFingerprints(fps ...Fingerprint) {
	if len(fps) == 0 {
		return
	}
	m.mu.Lock()
	for _, fp := range fps {
		for _, c := range m.byFP[fp] {
			delete(m.entries, respondKey{fp: fp, c: c})
		}
		delete(m.byFP, fp)
	}
	m.size.Set(float64(len(m.entries)))
	m.mu.Unlock()
}

// Invalidate drops every memoized response. Parameter drift never needs
// this (changed inputs mint new keys); it exists for memory control and
// to force a cold re-respond. Counters are preserved.
func (m *RespondMemo) Invalidate() {
	m.mu.Lock()
	m.entries = nil
	m.byFP = nil
	m.size.Set(0)
	m.gen.Add(1)
	m.mu.Unlock()
}

// Stats returns a snapshot of the hit/miss counters and current size —
// a thin view over the memo's live telemetry counters, the same atomics
// a registry adopts through ExportTo.
func (m *RespondMemo) Stats() RespondStats {
	m.mu.RLock()
	n := len(m.entries)
	m.mu.RUnlock()
	return RespondStats{Hits: m.hits.Value(), Misses: m.misses.Value(), Entries: n}
}

// ExportTo registers the memo's live hit/miss counters in reg under the
// MetricRespond* names and attaches an entries gauge. Engines wire this
// automatically when both Config.Memo and Config.Metrics are set; a nil
// registry is a no-op.
func (m *RespondMemo) ExportTo(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterCounter(MetricRespondHits, &m.hits)
	reg.RegisterCounter(MetricRespondMisses, &m.misses)
	size := reg.Gauge(MetricRespondEntries)
	m.mu.Lock()
	m.size = size
	m.size.Set(float64(len(m.entries)))
	m.mu.Unlock()
}

// RespondMemoSegment is a shard-local view over a shared RespondMemo,
// mirroring CacheSegment: a private lock-free map in front of the shared
// read-mostly table, single-owner per shard, hits/misses counted on the
// parent's atomics, cleared lazily when the parent's generation moves.
type RespondMemoSegment struct {
	parent *RespondMemo
	gen    uint64
	local  map[respondKey]worker.Response
}

// Segment returns a new shard-local view of the memo. Each segment is
// single-owner: safe for use from one goroutine at a time, concurrently
// with other segments of the same memo.
func (m *RespondMemo) Segment() *RespondMemoSegment {
	return &RespondMemoSegment{parent: m, gen: m.gen.Load(), local: make(map[respondKey]worker.Response)}
}

// sync drops the local map when the parent has been invalidated or
// flushed since the last access.
func (s *RespondMemoSegment) sync() {
	if g := s.parent.gen.Load(); g != s.gen {
		clear(s.local)
		s.gen = g
	}
}

// store caps the local map by the parent's limit, mirroring its
// flush-when-full policy.
func (s *RespondMemoSegment) store(key respondKey, resp worker.Response) {
	max := s.parent.MaxEntries
	if max <= 0 {
		max = defaultMemoCap
	}
	if len(s.local) >= max {
		clear(s.local)
	}
	s.local[key] = resp
}

// Get looks up a best response — local map first, then the shared table —
// counting one hit or miss on the parent.
func (s *RespondMemoSegment) Get(fp Fingerprint, c *contract.PiecewiseLinear) (worker.Response, bool) {
	s.sync()
	key := respondKey{fp: fp, c: c}
	if resp, ok := s.local[key]; ok {
		s.parent.hits.Inc()
		return resp, true
	}
	resp, ok := s.parent.Get(fp, c)
	if ok {
		s.store(key, resp)
	}
	return resp, ok
}

// Put stores a best response in the segment and publishes it to the
// shared table, where sibling segments will find it.
func (s *RespondMemoSegment) Put(fp Fingerprint, c *contract.PiecewiseLinear, resp worker.Response) {
	if c == nil {
		return
	}
	s.sync()
	s.store(respondKey{fp: fp, c: c}, resp)
	s.parent.Put(fp, c, resp)
}

// pendResponse is one distinct best-response problem this round that the
// memo could not serve.
type pendResponse struct {
	// slot indexes the round-local responses slice the solved response
	// is written into — pre-assigned, so the parallel fan-out preserves
	// the sequential engine's outcome order bit for bit.
	slot int32
	// a is the representative agent: the first agent (in ID order) that
	// produced this key, used for solving and for error attribution.
	a   *worker.Agent
	key respondKey
	err error
}

// respondScratch holds the respond stage's retained buffers; after the
// first round of a steady-state run, the stage allocates nothing.
type respondScratch struct {
	keys  map[respondKey]int32 // round-local: key → slot in resps
	resps []worker.Response    // one per distinct key this round
	slots []int32              // per agent: slot in resps, −1 when excluded
	pend  []pendResponse       // distinct keys needing a fresh BestResponse
	errs  []error              // per-task errors for the fan-out
	utils []float64            // per-agent utilities (parallel paths, timed only)
}

// respondAll fills outs[i] for agents[i] (both ordered by agent ID) and
// returns the summed worker utility over accepting agents (0 unless
// timed). The route depends on the configuration:
//
//   - a custom Responder bypasses the memo — it may be round-dependent —
//     and runs sequentially unless ParallelRespond opts into the fan-out;
//   - with Config.Memo set, distinct (fingerprint, contract) keys are
//     resolved through the memo and only the misses are solved, in
//     parallel when there is more than one;
//   - otherwise every agent's BestResponse runs as before, sequentially
//     or (ParallelRespond > 0) fanned out.
//
// Every route produces byte-identical outcomes in the same order: results
// are written into pre-assigned slots and dispatch stays sequential.
func (e *Engine) respondAll(ctx context.Context, r int, contracts map[string]*contract.PiecewiseLinear, agents []*worker.Agent, outs []AgentOutcome, timed bool) (float64, error) {
	switch {
	case e.cfg.Responder != nil:
		return e.respondHook(ctx, r, contracts, agents, outs, timed)
	case e.cfg.Memo != nil:
		return e.respondMemoized(ctx, r, contracts, agents, outs, timed)
	case e.cfg.ParallelRespond > 0:
		return e.respondParallel(ctx, r, contracts, agents, outs, timed)
	default:
		return e.respondSequential(r, contracts, agents, outs, timed)
	}
}

// fillStatic populates the outcome fields that do not depend on the
// response and reports the agent's contract (nil marks the outcome
// excluded).
func (e *Engine) fillStatic(contracts map[string]*contract.PiecewiseLinear, a *worker.Agent, oc *AgentOutcome) *contract.PiecewiseLinear {
	*oc = AgentOutcome{
		AgentID: a.ID,
		Class:   a.Class,
		Size:    a.Size,
		Weight:  e.pop.Weights[a.ID],
	}
	c := contracts[a.ID]
	if c == nil {
		oc.Excluded = true
	}
	return c
}

// fillResponse copies a computed best response into an outcome and
// returns the utility it contributes (0 when declined).
func fillResponse(oc *AgentOutcome, resp worker.Response) float64 {
	if resp.Declined {
		oc.Declined = true
		return 0
	}
	oc.Effort = resp.Effort
	oc.Feedback = resp.Feedback
	oc.Compensation = resp.Compensation
	return resp.Utility
}

// respondSequential is the classic per-agent loop — the reference
// behaviour every accelerated route must reproduce exactly.
func (e *Engine) respondSequential(r int, contracts map[string]*contract.PiecewiseLinear, agents []*worker.Agent, outs []AgentOutcome, timed bool) (float64, error) {
	var wu float64
	for i, a := range agents {
		c := e.fillStatic(contracts, a, &outs[i])
		if c == nil {
			continue
		}
		resp, err := a.BestResponse(c, e.pop.Part)
		if err != nil {
			return 0, fmt.Errorf("engine: agent %s round %d: %w", a.ID, r, err)
		}
		u := fillResponse(&outs[i], resp)
		if timed {
			wu += u
		}
	}
	return wu, nil
}

// respondMemoized resolves each distinct (fingerprint, contract) key
// once: a warm round with k distinct keys performs k memo lookups and
// zero BestResponse calls; a cold round solves exactly the k misses,
// fanning out when there is more than one.
func (e *Engine) respondMemoized(ctx context.Context, r int, contracts map[string]*contract.PiecewiseLinear, agents []*worker.Agent, outs []AgentOutcome, timed bool) (float64, error) {
	s := &e.rs
	if s.keys == nil {
		s.keys = make(map[respondKey]int32, 16)
	} else {
		clear(s.keys)
	}
	s.resps = s.resps[:0]
	s.slots = s.slots[:0]
	s.pend = s.pend[:0]

	// Agents arrive sorted by ID, so archetypes are contiguous and most
	// agents share the previous agent's key: a struct compare against the
	// last key skips the (hash-heavy) map access for entire runs.
	var lastKey respondKey
	lastSlot := int32(-1)
	for i, a := range agents {
		c := e.fillStatic(contracts, a, &outs[i])
		if c == nil {
			s.slots = append(s.slots, -1)
			continue
		}
		key := respondKey{
			fp: FingerprintOf(a, core.Config{Part: e.pop.Part, Mu: e.pop.Mu, W: outs[i].Weight}),
			c:  c,
		}
		if lastSlot >= 0 && key == lastKey {
			s.slots = append(s.slots, lastSlot)
			continue
		}
		slot, seen := s.keys[key]
		if !seen {
			slot = int32(len(s.resps))
			s.keys[key] = slot
			if resp, hit := e.cfg.Memo.Get(key.fp, c); hit {
				s.resps = append(s.resps, resp)
			} else {
				s.resps = append(s.resps, worker.Response{})
				s.pend = append(s.pend, pendResponse{slot: slot, a: a, key: key})
			}
		}
		lastKey, lastSlot = key, slot
		s.slots = append(s.slots, slot)
	}

	if err := e.solvePending(ctx, r); err != nil {
		return 0, err
	}

	var wu float64
	for i := range agents {
		slot := s.slots[i]
		if slot < 0 {
			continue
		}
		u := fillResponse(&outs[i], s.resps[slot])
		if timed {
			wu += u
		}
	}
	return wu, nil
}

// solvePending computes the round's memo misses into their pre-assigned
// slots and publishes them to the memo. A single miss (the steady-state
// shape: one drifted archetype) is solved inline; more fan out across a
// bounded pool.
func (e *Engine) solvePending(ctx context.Context, r int) error {
	s := &e.rs
	n := len(s.pend)
	if n == 0 {
		return nil
	}
	par := e.cfg.ParallelRespond
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	solve := func(pi int) error {
		p := &s.pend[pi]
		resp, err := p.a.BestResponse(p.key.c, e.pop.Part)
		if err != nil {
			return fmt.Errorf("engine: agent %s round %d: %w", p.a.ID, r, err)
		}
		s.resps[p.slot] = resp
		e.cfg.Memo.Put(p.key.fp, p.key.c, resp)
		return nil
	}
	if n == 1 || par == 1 {
		for pi := 0; pi < n; pi++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("engine: round %d: %w", r, err)
			}
			if err := solve(pi); err != nil {
				return err
			}
		}
		return nil
	}
	return e.fanOut(ctx, r, n, par, solve)
}

// respondParallel fans every agent's BestResponse across the pool —
// the no-memo opt-in for populations with little fingerprint sharing.
func (e *Engine) respondParallel(ctx context.Context, r int, contracts map[string]*contract.PiecewiseLinear, agents []*worker.Agent, outs []AgentOutcome, timed bool) (float64, error) {
	e.prepUtils(len(agents), timed)
	err := e.fanOut(ctx, r, len(agents), e.cfg.ParallelRespond, func(i int) error {
		a := agents[i]
		c := e.fillStatic(contracts, a, &outs[i])
		if c == nil {
			return nil
		}
		resp, err := a.BestResponse(c, e.pop.Part)
		if err != nil {
			return fmt.Errorf("engine: agent %s round %d: %w", a.ID, r, err)
		}
		u := fillResponse(&outs[i], resp)
		if timed {
			e.rs.utils[i] = u
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return e.sumUtils(len(agents), timed), nil
}

// respondHook runs a custom Responder — sequentially by default, or
// fanned out when ParallelRespond opts in (the Responder must then be
// safe for concurrent calls).
func (e *Engine) respondHook(ctx context.Context, r int, contracts map[string]*contract.PiecewiseLinear, agents []*worker.Agent, outs []AgentOutcome, timed bool) (float64, error) {
	hook := func(i int) error {
		a := agents[i]
		c := e.fillStatic(contracts, a, &outs[i])
		if c == nil {
			return nil
		}
		y, err := e.cfg.Responder(r, a, c, e.pop.Part)
		if err != nil {
			return fmt.Errorf("engine: responder for %s round %d: %w", a.ID, r, err)
		}
		y = clampEffort(y, a, e.pop.Part)
		q := a.Psi.Eval(y)
		outs[i].Effort = y
		outs[i].Feedback = q
		outs[i].Compensation = c.Eval(q)
		if timed {
			e.rs.utils[i] = a.Utility(c, y)
		}
		return nil
	}
	e.prepUtils(len(agents), timed)
	if e.cfg.ParallelRespond > 0 {
		if err := e.fanOut(ctx, r, len(agents), e.cfg.ParallelRespond, hook); err != nil {
			return 0, err
		}
	} else {
		for i := range agents {
			if err := hook(i); err != nil {
				return 0, err
			}
		}
	}
	return e.sumUtils(len(agents), timed), nil
}

// prepUtils sizes and zeroes the per-agent utility scratch (timed runs
// only — untimed runs never read it).
func (e *Engine) prepUtils(n int, timed bool) {
	if !timed {
		return
	}
	if cap(e.rs.utils) < n {
		e.rs.utils = make([]float64, n)
	}
	e.rs.utils = e.rs.utils[:n]
	for i := range e.rs.utils {
		e.rs.utils[i] = 0
	}
}

func (e *Engine) sumUtils(n int, timed bool) float64 {
	if !timed {
		return 0
	}
	var wu float64
	for _, u := range e.rs.utils[:n] {
		wu += u
	}
	return wu
}

// fanOut runs fn(i) for i in [0, n) across a bounded pool, mirroring
// solver.SolveAllInto: context-aware, first failure cancels outstanding
// work, and every task writes only its own pre-assigned state so results
// are position-deterministic. Error selection is deterministic too: the
// lowest-indexed non-cancellation error wins (exactly the error the
// sequential loop would have returned, since equal inputs fail equally),
// with pure cancellation reported only when no task failed on its own.
func (e *Engine) fanOut(ctx context.Context, r, n, par int, fn func(i int) error) error {
	s := &e.rs
	if cap(s.errs) < n {
		s.errs = make([]error, n)
	}
	errs := s.errs[:n]
	for i := range errs {
		errs[i] = nil
	}
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}

	fanCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	indexes := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indexes {
				if err := fanCtx.Err(); err != nil {
					errs[i] = err
					continue
				}
				if err := fn(i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case indexes <- i:
		case <-fanCtx.Done():
			for j := i; j < n; j++ {
				errs[j] = fanCtx.Err()
			}
			break feed
		}
	}
	close(indexes)
	wg.Wait()

	var cancelErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancelErr == nil {
				cancelErr = err
			}
			continue
		}
		return err
	}
	if cancelErr != nil {
		return fmt.Errorf("engine: round %d: %w", r, cancelErr)
	}
	return nil
}
