package engine_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"dyncontract/internal/contract"
	"dyncontract/internal/core"
	"dyncontract/internal/effort"
	"dyncontract/internal/engine"
	"dyncontract/internal/telemetry"
	"dyncontract/internal/worker"
)

// scopedDrift is the sparse-drift determinism sweep's mutation schedule:
// in-place parameter drift (weight, β, ψ, ω), a structural add, a
// structural remove, weight drift onto fresh fingerprints, and weight
// drift onto an already-cached fingerprint (the patch route under a
// fingerprint-pure policy) — every mutation declared through the
// provided declare callback, so the same schedule runs once with sparse
// Touch scopes and once with full Bump scopes.
func scopedDrift(tb testing.TB, declare func(pop *engine.Population, ids ...string)) func(int, *engine.Population) {
	tb.Helper()
	psi, err := effort.NewQuadratic(-0.02, 2.1, 1, 40)
	if err != nil {
		tb.Fatal(err)
	}
	return func(round int, pop *engine.Population) {
		switch round {
		case 1:
			// In-place drift across all four mutable axes, on agents of
			// every class (ω stays 0 on honest agents — class-constrained).
			pop.Weights["h00000"] *= 1.02
			for _, a := range pop.Agents {
				switch a.ID {
				case "m00001":
					a.Beta *= 1.1
					a.Omega = 0.6
				case "c00002":
					a.Psi = psi
				}
			}
			declare(pop, "h00000", "m00001", "c00002")
		case 2:
			a, err := worker.NewHonest("zz-joined", psi, 1, pop.Part.YMax())
			if err != nil {
				panic(err)
			}
			pop.Agents = append(pop.Agents, a)
			pop.Weights[a.ID] = 0.9
			pop.MaliceProb[a.ID] = 0.1
			declare(pop, a.ID)
		case 3:
			gone := pop.Agents[0]
			pop.Agents = append(pop.Agents[:0], pop.Agents[1:]...)
			delete(pop.Weights, gone.ID)
			delete(pop.MaliceProb, gone.ID)
			declare(pop, gone.ID)
		case 4:
			pop.Weights["h00003"] *= 0.95
			pop.Weights["h00006"] *= 1.05
			declare(pop, "h00003", "h00006")
		case 5:
			// Drift onto a fingerprint another agent already holds
			// (h00003's from round 4): with a cache attached this is the
			// sparse patch route — contract served straight from the
			// cache, only this agent's outcome slot refreshed.
			pop.Weights["h00009"] = pop.Weights["h00003"]
			declare(pop, "h00009")
		}
		// Round 0: no mutation and no declaration — under a Drift hook an
		// undeclared round takes the legacy full-rebuild path.
	}
}

// TestSparseDriftLedgerIdentical is the drift-scope determinism pin: the
// same mutation schedule, declared sparsely (Population.Touch) and fully
// (Population.Bump), produces byte-identical ledgers across the
// sequential and sharded engines, with and without the respond memo —
// all equal to the sequential full-rebuild reference. Sparse scopes are
// an acceleration, never an observable behaviour change.
func TestSparseDriftLedgerIdentical(t *testing.T) {
	ctx := context.Background()
	const rounds = 6
	run := func(shards int, memo, sparse bool) []engine.Round {
		t.Helper()
		declare := func(pop *engine.Population, ids ...string) {
			if sparse {
				pop.Touch(ids...)
			} else {
				pop.Bump()
			}
		}
		cfg := engine.Config{
			Policy: &shardDesignPolicy{},
			Rounds: rounds,
			Drift:  scopedDrift(t, declare),
			Cache:  engine.NewCache(),
			Shards: shards,
		}
		if memo {
			cfg.Memo = engine.NewRespondMemo()
		}
		ledger, err := engine.RunLedger(ctx, archetypePopulation(t, 30), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ledger
	}

	// Reference: sequential, no cache or memo, full Bump declarations.
	ref, err := engine.RunLedger(ctx, archetypePopulation(t, 30), engine.Config{
		Policy: &designPolicy{},
		Rounds: rounds,
		Drift:  scopedDrift(t, func(pop *engine.Population, _ ...string) { pop.Bump() }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != rounds {
		t.Fatalf("reference ledger has %d rounds, want %d", len(ref), rounds)
	}
	for _, shards := range []int{0, 2, 8} {
		for _, memo := range []bool{true, false} {
			for _, sparse := range []bool{true, false} {
				name := fmt.Sprintf("shards=%d/memo=%v/sparse=%v", shards, memo, sparse)
				if got := run(shards, memo, sparse); !reflect.DeepEqual(got, ref) {
					t.Errorf("%s: ledger differs from full-rebuild reference", name)
				}
			}
		}
	}
}

// contractGrabber retains the contract served to one agent each round.
type contractGrabber struct {
	id   string
	last *contract.PiecewiseLinear
}

func (g *contractGrabber) OnContracts(_ int, cs map[string]*contract.PiecewiseLinear) {
	if c, ok := cs[g.id]; ok {
		g.last = c
	}
}
func (g *contractGrabber) OnOutcome(int, engine.AgentOutcome) {}
func (g *contractGrabber) OnRoundEnd(engine.Round) error      { return nil }

// TestSparseDriftShardSkips pins the sparse refresh mechanics on an
// instrumented sharded engine: a one-agent Touch rebuilds exactly the
// owning shard (counters say 1 rebuilt, shards−1 skipped, 1 agent
// touched), and the drifted agent's old fingerprint — which it alone
// held — is evicted from both the design cache and the respond memo,
// while the new fingerprint is present.
func TestSparseDriftShardSkips(t *testing.T) {
	ctx := context.Background()
	const (
		id     = "h00003"
		shards = 4
		oldW   = 0.77
		newW   = 0.88
	)
	pop := archetypePopulation(t, 12)
	pop.Weights[id] = oldW // unique weight → unique fingerprint
	var drifted *worker.Agent
	for _, a := range pop.Agents {
		if a.ID == id {
			drifted = a
		}
	}
	oldFP := engine.FingerprintOf(drifted, core.Config{Part: pop.Part, Mu: pop.Mu, W: oldW})
	newFP := engine.FingerprintOf(drifted, core.Config{Part: pop.Part, Mu: pop.Mu, W: newW})

	reg := telemetry.NewRegistry()
	cache := engine.NewCache()
	memo := engine.NewRespondMemo()
	grab := &contractGrabber{id: id}
	cfg := engine.Config{
		Policy:    &shardDesignPolicy{},
		Rounds:    1,
		Cache:     cache,
		Memo:      memo,
		Shards:    shards,
		Metrics:   reg,
		Observers: []engine.Observer{grab},
	}
	eng, err := engine.New(pop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(ctx); err != nil {
		t.Fatal(err)
	}
	oldContract := grab.last
	if oldContract == nil {
		t.Fatalf("no contract captured for %s", id)
	}
	if _, ok := cache.Get(oldFP); !ok {
		t.Fatalf("old fingerprint not cached after warm round")
	}
	if _, ok := memo.Get(oldFP, oldContract); !ok {
		t.Fatalf("old (fingerprint, contract) not memoized after warm round")
	}

	pop.Weights[id] = newW
	pop.Touch(id)
	if err := eng.Step(ctx); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	if got := s.Counters[engine.MetricDriftTouchedAgents]; got != 1 {
		t.Errorf("touched agents = %d, want 1", got)
	}
	if got := s.Counters[engine.MetricDriftShardsRebuilt]; got != 1 {
		t.Errorf("shards rebuilt = %d, want 1", got)
	}
	if got := s.Counters[engine.MetricDriftShardsSkipped]; got != shards-1 {
		t.Errorf("shards skipped = %d, want %d", got, shards-1)
	}
	if h, ok := s.Histograms[engine.MetricDriftRebuildSeconds]; !ok || h.Count != 1 {
		t.Errorf("drift-rebuild timing observations = %+v, want 1 observation", h)
	}

	// Targeted invalidation: the dead fingerprint is gone from both
	// layers, the live one is served.
	if _, ok := cache.Get(oldFP); ok {
		t.Errorf("cache still holds the dead fingerprint after sparse drift")
	}
	if _, ok := cache.Get(newFP); !ok {
		t.Errorf("cache does not hold the drifted fingerprint")
	}
	if _, ok := memo.Get(oldFP, oldContract); ok {
		t.Errorf("memo still holds the dead fingerprint after sparse drift")
	}
}

// TestTouchUndeclaredSecondConsumer pins the shared-population fallback:
// a second engine over the same population cannot see the first engine's
// consumed scope, but the generation compare still forces it to rebuild
// — a Touch is never weaker than a Bump for secondary consumers.
func TestTouchUndeclaredSecondConsumer(t *testing.T) {
	ctx := context.Background()
	pop := archetypePopulation(t, 9)
	mk := func() (*engine.Engine, *engine.Ledger) {
		led := &engine.Ledger{}
		e, err := engine.New(pop, engine.Config{
			Policy:    &shardDesignPolicy{},
			Rounds:    1,
			Shards:    2,
			Observers: []engine.Observer{led},
		})
		if err != nil {
			t.Fatal(err)
		}
		return e, led
	}
	first, firstLed := mk()
	second, secondLed := mk()
	for _, e := range []*engine.Engine{first, second} {
		if err := e.Step(ctx); err != nil {
			t.Fatal(err)
		}
	}

	pop.Weights["h00000"] = 2
	pop.Touch("h00000")
	run := func(e *engine.Engine, led *engine.Ledger) engine.Round {
		t.Helper()
		if err := e.Step(ctx); err != nil {
			t.Fatal(err)
		}
		return led.Rounds[len(led.Rounds)-1]
	}
	a, b := run(first, firstLed), run(second, secondLed) // first consumes the scope; second sees only the generation
	if !reflect.DeepEqual(a, b) {
		t.Errorf("second consumer's round differs from the scope consumer's")
	}
	for _, oc := range b.Outcomes {
		if oc.AgentID == "h00000" && oc.Weight != 2 {
			t.Errorf("second consumer did not observe the drift: weight = %v, want 2", oc.Weight)
		}
	}
}

// declaredChurnDrift is the structural-drift determinism sweep's mutation
// schedule: joins onto cached archetype fingerprints (the patch route
// under a fingerprint-pure policy), leaves of original members, a mixed
// round combining a join, a leave, and an in-place weight drift, and a
// rejoin of a previously-left ID — every membership change declared
// through the join/leave callbacks so the same schedule runs once with
// structural TouchJoin/TouchLeave scopes and once with full Bump scopes.
// Each returned closure carries its own rejoin state, so every run gets
// a fresh schedule over its own population.
func declaredChurnDrift(tb testing.TB, structural bool) func(int, *engine.Population) {
	tb.Helper()
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		tb.Fatal(err)
	}
	join := func(pop *engine.Population, a *worker.Agent, w, mal float64) {
		pop.Agents = append(pop.Agents, a)
		pop.Weights[a.ID] = w
		pop.MaliceProb[a.ID] = mal
		if structural {
			pop.TouchJoin(a.ID)
		} else {
			pop.Bump()
		}
	}
	leave := func(pop *engine.Population, id string) *worker.Agent {
		for i, a := range pop.Agents {
			if a.ID == id {
				pop.Agents = append(pop.Agents[:i], pop.Agents[i+1:]...)
				delete(pop.Weights, id)
				delete(pop.MaliceProb, id)
				if structural {
					pop.TouchLeave(id)
				} else {
					pop.Bump()
				}
				return a
			}
		}
		tb.Fatalf("leave: agent %q not in population", id)
		return nil
	}
	var gone *worker.Agent // left in round 2, rejoined in round 4
	return func(round int, pop *engine.Population) {
		switch round {
		case 1:
			// Two joiners cloning existing archetypes: their fingerprints
			// already sit in the design cache, so a fingerprint-pure policy
			// patches them straight from it.
			h, err := worker.NewHonest("zj00001", psi, 1, pop.Part.YMax())
			if err != nil {
				panic(err)
			}
			join(pop, h, 1, 0.05)
			m, err := worker.NewMalicious("zj00002", psi, 1, 0.5, pop.Part.YMax())
			if err != nil {
				panic(err)
			}
			join(pop, m, 0.8, 0.9)
		case 2:
			gone = leave(pop, "h00000")
			leave(pop, "m00001")
		case 3:
			// Mixed scope: a join, a leave, and an in-place weight drift in
			// the same round.
			c, err := worker.NewCommunity("zj00003", psi, 1, 0.5, 3, pop.Part.YMax())
			if err != nil {
				panic(err)
			}
			join(pop, c, 0.5, 0.95)
			leave(pop, "c00002")
			pop.Weights["h00003"] *= 1.1
			if structural {
				pop.Touch("h00003")
			} else {
				pop.Bump()
			}
		case 4:
			// Rejoin of a left ID: the view must re-insert it at its old
			// sort position with a fresh outcome slot.
			join(pop, gone, 1, 0.05)
		}
		// Rounds 0 and 5: no mutation, no declaration — warm rounds
		// bracketing the churn.
	}
}

// TestStructuralDriftLedgerIdentical is the structural-scope determinism
// pin: the same join/leave/mixed schedule, declared structurally
// (TouchJoin/TouchLeave/Touch) and fully (Bump), produces byte-identical
// ledgers across the sequential and sharded engines, with and without the
// respond memo — all equal to the sequential full-rebuild reference.
// Declared structural scopes are an acceleration, never an observable
// behaviour change.
func TestStructuralDriftLedgerIdentical(t *testing.T) {
	ctx := context.Background()
	const rounds = 6
	run := func(shards int, memo, structural bool) []engine.Round {
		t.Helper()
		cfg := engine.Config{
			Policy: &shardDesignPolicy{},
			Rounds: rounds,
			Drift:  declaredChurnDrift(t, structural),
			Cache:  engine.NewCache(),
			Shards: shards,
		}
		if memo {
			cfg.Memo = engine.NewRespondMemo()
		}
		ledger, err := engine.RunLedger(ctx, archetypePopulation(t, 30), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ledger
	}

	// Reference: sequential, no cache or memo, full Bump declarations.
	ref, err := engine.RunLedger(ctx, archetypePopulation(t, 30), engine.Config{
		Policy: &designPolicy{},
		Rounds: rounds,
		Drift:  declaredChurnDrift(t, false),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != rounds {
		t.Fatalf("reference ledger has %d rounds, want %d", len(ref), rounds)
	}
	for _, shards := range []int{0, 2, 8} {
		for _, memo := range []bool{true, false} {
			for _, structural := range []bool{true, false} {
				name := fmt.Sprintf("shards=%d/memo=%v/structural=%v", shards, memo, structural)
				if got := run(shards, memo, structural); !reflect.DeepEqual(got, ref) {
					t.Errorf("%s: ledger differs from full-rebuild reference", name)
				}
			}
		}
	}
}

// TestStructuralDriftCounters pins the structural classification on an
// instrumented sharded engine: the schedule's declared joins and leaves
// land in the drift counters, and the declared drift class survives to
// LastDriftClass (no silent escalation to the full rebuild).
func TestStructuralDriftCounters(t *testing.T) {
	ctx := context.Background()
	reg := telemetry.NewRegistry()
	cfg := engine.Config{
		Policy:  &shardDesignPolicy{},
		Rounds:  6,
		Drift:   declaredChurnDrift(t, true),
		Cache:   engine.NewCache(),
		Shards:  4,
		Metrics: reg,
	}
	eng, err := engine.New(archetypePopulation(t, 30), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(ctx); err != nil {
		t.Fatal(err)
	}
	declared, applied := eng.LastDriftClass()
	if declared != applied {
		t.Errorf("last round escalated: declared %s, applied %s", declared, applied)
	}
	s := reg.Snapshot()
	// Schedule totals: 4 joins (2 + 1 + rejoin), 3 leaves, 1 plain touch.
	if got := s.Counters[engine.MetricDriftJoins]; got != 4 {
		t.Errorf("drift joins = %d, want 4", got)
	}
	if got := s.Counters[engine.MetricDriftLeaves]; got != 3 {
		t.Errorf("drift leaves = %d, want 3", got)
	}
	if got := s.Counters[engine.MetricDriftTouchedAgents]; got != 1 {
		t.Errorf("drift touched agents = %d, want 1", got)
	}
	if got := s.Counters[engine.MetricDriftCompactions]; got != 0 {
		t.Errorf("drift compactions = %d, want 0 below the threshold", got)
	}
}

// TestStructuralDriftCompaction pins the deferred slot compaction: leaves
// below the tombstone threshold keep the fragmented mapping (slots
// stable, no compaction), crossing it triggers exactly one batched
// renumbering, and rounds before, across, and after the compaction stay
// byte-identical to the full-rebuild reference — slot bookkeeping never
// shows through the ledger.
func TestStructuralDriftCompaction(t *testing.T) {
	ctx := context.Background()
	const (
		n      = 200
		rounds = 6
	)
	// The compaction gate is tombstones >= 64 and tombstones*4 >= physical
	// slots: 40 leaves stay fragmented, 30 more (70 dead of 200 slots)
	// cross it.
	var first, second []string
	{
		pop := archetypePopulation(t, n)
		for _, a := range pop.Agents[:40] {
			first = append(first, a.ID)
		}
		for _, a := range pop.Agents[40:70] {
			second = append(second, a.ID)
		}
	}
	schedule := func(structural bool) func(int, *engine.Population) {
		leave := func(pop *engine.Population, ids []string) {
			keep := pop.Agents[:0]
			drop := make(map[string]struct{}, len(ids))
			for _, id := range ids {
				drop[id] = struct{}{}
			}
			for _, a := range pop.Agents {
				if _, gone := drop[a.ID]; gone {
					delete(pop.Weights, a.ID)
					delete(pop.MaliceProb, a.ID)
					continue
				}
				keep = append(keep, a)
			}
			pop.Agents = keep
			if structural {
				pop.TouchLeave(ids...)
			} else {
				pop.Bump()
			}
		}
		return func(round int, pop *engine.Population) {
			switch round {
			case 1:
				leave(pop, first)
			case 2:
				// A fragmented sparse round: outcome slots are indirected,
				// but the drift itself is a plain weight touch.
				pop.Weights[second[0]] *= 1.05
				if structural {
					pop.Touch(second[0])
				} else {
					pop.Bump()
				}
			case 3:
				leave(pop, second) // crosses the compaction threshold
			case 4:
				// A post-compaction sparse round over the renumbered slots.
				pop.Weights[pop.Agents[0].ID] *= 1.02
				if structural {
					pop.Touch(pop.Agents[0].ID)
				} else {
					pop.Bump()
				}
			}
		}
	}

	ref, err := engine.RunLedger(ctx, archetypePopulation(t, n), engine.Config{
		Policy: &designPolicy{},
		Rounds: rounds,
		Drift:  schedule(false),
	})
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	led := &engine.Ledger{}
	eng, err := engine.New(archetypePopulation(t, n), engine.Config{
		Policy:    &shardDesignPolicy{},
		Rounds:    rounds,
		Drift:     schedule(true),
		Cache:     engine.NewCache(),
		Memo:      engine.NewRespondMemo(),
		Shards:    4,
		Metrics:   reg,
		Observers: []engine.Observer{led},
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		if err := eng.Step(ctx); err != nil {
			t.Fatal(err)
		}
		compactions := reg.Snapshot().Counters[engine.MetricDriftCompactions]
		var want uint64
		if r >= 3 {
			want = 1 // fires in round 3's structural refresh, exactly once
		}
		if compactions != want {
			t.Errorf("round %d: compactions = %d, want %d", r, compactions, want)
		}
		if r < len(ref) && !reflect.DeepEqual(led.Rounds[r], ref[r]) {
			t.Errorf("round %d: ledger differs from full-rebuild reference", r)
		}
	}
	s := reg.Snapshot()
	if got := s.Counters[engine.MetricDriftLeaves]; got != 70 {
		t.Errorf("drift leaves = %d, want 70", got)
	}
}
