package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dyncontract/internal/effort"
	"dyncontract/internal/worker"
)

// stdPsi is the canonical effort function used by core tests:
// ψ(y) = -0.02y² + 2y + 1, increasing on [0, 50).
func stdPsi(t *testing.T) effort.Quadratic {
	t.Helper()
	q, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func stdConfig(t *testing.T, m int) Config {
	t.Helper()
	part, err := effort.NewPartition(m, 40.0/float64(m))
	if err != nil {
		t.Fatal(err)
	}
	// WantCandidates: the package's tests assert over the full per-k
	// diagnostics, not just the winner.
	return Config{Part: part, Mu: 1, W: 1, WantCandidates: true}
}

func honestAgent(t *testing.T) *worker.Agent {
	t.Helper()
	a, err := worker.NewHonest("h1", stdPsi(t), 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func maliciousAgent(t *testing.T, omega float64) *worker.Agent {
	t.Helper()
	a, err := worker.NewMalicious("m1", stdPsi(t), 1, omega, 40)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestConfigValidate(t *testing.T) {
	part, _ := effort.NewPartition(4, 1)
	valid := Config{Part: part, Mu: 1, W: 1}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Part: effort.Partition{}, Mu: 1, W: 1},
		{Part: part, Mu: 0, W: 1},
		{Part: part, Mu: -2, W: 1},
		{Part: part, Mu: 1, W: math.NaN()},
		{Part: part, Mu: math.Inf(1), W: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestCaseString(t *testing.T) {
	if CaseI.String() != "I" || CaseII.String() != "II" || CaseIII.String() != "III" {
		t.Error("Case strings wrong")
	}
	if Case(0).String() == "" {
		t.Error("unknown case String empty")
	}
}

func TestDesignBasicInvariants(t *testing.T) {
	a := honestAgent(t)
	cfg := stdConfig(t, 10)
	res, err := Design(a, cfg)
	if err != nil {
		t.Fatalf("Design: %v", err)
	}
	if res.KOpt < 1 || res.KOpt > cfg.Part.M {
		t.Errorf("KOpt = %d out of range", res.KOpt)
	}
	if len(res.Candidates) != cfg.Part.M {
		t.Errorf("candidates = %d, want %d", len(res.Candidates), cfg.Part.M)
	}
	if res.Contract == nil {
		t.Fatal("nil contract")
	}
	// The chosen candidate dominates all others for the requester.
	for _, cand := range res.Candidates {
		if cand.RequesterUtility > res.RequesterUtility+1e-9 {
			t.Errorf("candidate k=%d utility %v beats chosen %v",
				cand.K, cand.RequesterUtility, res.RequesterUtility)
		}
	}
}

func TestDesignBestResponseLandsInTargetInterval(t *testing.T) {
	// For honest workers with no clamping, each candidate ξ^(k) must induce
	// a best response inside interval k (the construction's whole point).
	a := honestAgent(t)
	cfg := stdConfig(t, 8)
	res, err := Design(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cand := range res.Candidates {
		if cand.Clamped {
			continue
		}
		if cand.Response.Interval != cand.K {
			t.Errorf("candidate k=%d induced interval %d (effort %v)",
				cand.K, cand.Response.Interval, cand.Response.Effort)
		}
	}
}

func TestDesignSlopesInCaseIIIWindows(t *testing.T) {
	a := honestAgent(t)
	cfg := stdConfig(t, 8)
	res, err := Design(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cand := range res.Candidates {
		if cand.Clamped {
			continue
		}
		for l := 1; l <= cand.K; l++ {
			alpha := cand.Contract.Slope(l)
			if got := Classify(a, cfg.Part, l, alpha); got != CaseIII {
				t.Errorf("k=%d piece %d: slope %v classified %v, want III (window (%v, %v))",
					cand.K, l, alpha, got,
					CaseBoundaryLower(a, cfg.Part, l), CaseBoundaryUpper(a, cfg.Part, l))
			}
		}
		// Flat pieces after k are Case I (utility decreasing).
		for l := cand.K + 1; l <= cfg.Part.M; l++ {
			alpha := cand.Contract.Slope(l)
			if alpha != 0 {
				t.Errorf("k=%d piece %d: flat continuation has slope %v", cand.K, l, alpha)
			}
			if got := Classify(a, cfg.Part, l, alpha); got != CaseI {
				t.Errorf("k=%d piece %d: flat piece classified %v, want I", cand.K, l, got)
			}
		}
	}
}

func TestDesignTheoremBoundsHonest(t *testing.T) {
	a := honestAgent(t)
	for _, m := range []int{4, 10, 20, 40} {
		cfg := stdConfig(t, m)
		res, err := Design(a, cfg)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if res.RequesterUtility > res.UpperBound+1e-9 {
			t.Errorf("m=%d: utility %v exceeds UB %v", m, res.RequesterUtility, res.UpperBound)
		}
		if res.RequesterUtility < res.LowerBound-1e-9 {
			t.Errorf("m=%d: utility %v below LB %v", m, res.RequesterUtility, res.LowerBound)
		}
	}
}

func TestDesignUtilityConvergesToUpperBound(t *testing.T) {
	// Fig 6's backbone: the gap UB − achieved must shrink as m grows.
	a := honestAgent(t)
	var prevGap = math.Inf(1)
	for _, m := range []int{5, 10, 20, 40, 80} {
		cfg := stdConfig(t, m)
		res, err := Design(a, cfg)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		gap := res.UpperBound - res.RequesterUtility
		if gap < -1e-9 {
			t.Fatalf("m=%d: negative gap %v", m, gap)
		}
		if gap > prevGap+1e-6 {
			t.Errorf("m=%d: gap %v grew from %v", m, gap, prevGap)
		}
		prevGap = gap
	}
	if prevGap > 1.0 {
		t.Errorf("final gap %v too large; no convergence", prevGap)
	}
}

func TestDesignCompensationWithinLemmaBounds(t *testing.T) {
	a := honestAgent(t)
	cfg := stdConfig(t, 10)
	res, err := Design(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	comp := res.Response.Compensation
	ub := CompensationUpperBound(a, cfg.Part, res.KOpt)
	lb := CompensationLowerBound(a, cfg.Part, res.KOpt)
	if comp > ub+1e-9 {
		t.Errorf("compensation %v exceeds Lemma 4.2 bound %v", comp, ub)
	}
	if comp < lb-1e-9 {
		t.Errorf("compensation %v below Lemma 4.3 bound %v", comp, lb)
	}
}

func TestDesignMaliciousPaysLessPerUnitWeight(t *testing.T) {
	// With the same requester weight, a malicious worker's intrinsic
	// motivation (ω > 0) lets the requester extract effort more cheaply:
	// compensation at the same k cannot exceed the honest worker's.
	h := honestAgent(t)
	m := maliciousAgent(t, 0.5)
	cfg := stdConfig(t, 10)
	hres, err := Design(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := Design(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Compare candidate-by-candidate (same k ⇒ same induced interval).
	for k := 0; k < cfg.Part.M; k++ {
		hc := hres.Candidates[k]
		mc := mres.Candidates[k]
		if mc.Contract.MaxComp() > hc.Contract.MaxComp()+1e-9 {
			t.Errorf("k=%d: malicious max comp %v exceeds honest %v",
				k+1, mc.Contract.MaxComp(), hc.Contract.MaxComp())
		}
	}
}

func TestDesignNegativeWeightPaysNothing(t *testing.T) {
	// A worker whose feedback the requester values negatively (heavy
	// malice penalty in Eq. (5)) should end up with the cheapest contract:
	// k=1 and (near-)zero compensation at best response.
	a := honestAgent(t)
	cfg := stdConfig(t, 10)
	cfg.W = -0.5
	res, err := Design(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.KOpt != 1 {
		t.Errorf("KOpt = %d, want 1 for negatively weighted worker", res.KOpt)
	}
}

func TestDesignInvalidInputs(t *testing.T) {
	a := honestAgent(t)
	cfg := stdConfig(t, 4)
	cfg.Mu = -1
	if _, err := Design(a, cfg); err == nil {
		t.Error("negative mu accepted")
	}
	// Partition extending past psi's increasing range must be rejected.
	part, _ := effort.NewPartition(10, 10) // YMax=100 > apex=50
	if _, err := Design(a, Config{Part: part, Mu: 1, W: 1}); err == nil {
		t.Error("partition past apex accepted")
	}
}

func TestClassifyBoundaries(t *testing.T) {
	a := honestAgent(t)
	part, _ := effort.NewPartition(4, 5)
	l := 2
	lower := CaseBoundaryLower(a, part, l)
	upper := CaseBoundaryUpper(a, part, l)
	if lower >= upper {
		t.Fatalf("boundaries out of order: %v >= %v", lower, upper)
	}
	if Classify(a, part, l, lower) != CaseI {
		t.Error("slope at lower boundary: want Case I")
	}
	if Classify(a, part, l, upper) != CaseII {
		t.Error("slope at upper boundary: want Case II")
	}
	if Classify(a, part, l, (lower+upper)/2) != CaseIII {
		t.Error("slope mid-window: want Case III")
	}
}

// Property: for random honest workers, the designed utility respects
// LB ≤ U ≤ UB and candidate best responses land in their target intervals.
func TestDesignBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r2 := -(0.005 + rng.Float64()*0.05)
		r1 := 1 + rng.Float64()*3
		r0 := rng.Float64() * 2
		apex := -r1 / (2 * r2)
		yMax := apex * (0.5 + rng.Float64()*0.4)
		psi, err := effort.NewQuadratic(r2, r1, r0, yMax)
		if err != nil {
			return true
		}
		m := 3 + rng.Intn(12)
		part, err := effort.NewPartition(m, yMax/float64(m))
		if err != nil {
			return true
		}
		a, err := worker.NewHonest("w", psi, 0.3+rng.Float64()*2, yMax)
		if err != nil {
			return true
		}
		cfg := Config{Part: part, Mu: 0.5 + rng.Float64(), W: rng.Float64() * 2, WantCandidates: true}
		res, err := Design(a, cfg)
		if err != nil {
			return false
		}
		if res.RequesterUtility > res.UpperBound+1e-7 {
			return false
		}
		if res.RequesterUtility < res.LowerBound-1e-7 {
			return false
		}
		for _, cand := range res.Candidates {
			if cand.Clamped {
				continue
			}
			if cand.Response.Interval != cand.K {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: compensation under the chosen contract lies within the Lemma
// 4.2 / 4.3 window at k_opt for honest workers.
func TestCompensationBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		psi, err := effort.NewQuadratic(-0.01-rng.Float64()*0.02, 1.5+rng.Float64(), rng.Float64(), 30)
		if err != nil {
			return true
		}
		part, err := effort.NewPartition(4+rng.Intn(10), 30.0/float64(4+rng.Intn(10)+10))
		if err != nil {
			return true
		}
		if psi.Deriv(part.YMax()) <= 0 {
			return true
		}
		a, err := worker.NewHonest("w", psi, 0.5+rng.Float64(), part.YMax())
		if err != nil {
			return true
		}
		cfg := Config{Part: part, Mu: 1, W: 0.5 + rng.Float64()}
		res, err := Design(a, cfg)
		if err != nil {
			return false
		}
		comp := res.Response.Compensation
		return comp <= CompensationUpperBound(a, cfg.Part, res.KOpt)+1e-7 &&
			comp >= CompensationLowerBound(a, cfg.Part, res.KOpt)-1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
