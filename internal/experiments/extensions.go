package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"dyncontract/internal/adversary"
	"dyncontract/internal/classify"
	"dyncontract/internal/contract"
	"dyncontract/internal/effort"
	"dyncontract/internal/platform"
	"dyncontract/internal/reputation"
	"dyncontract/internal/worker"
)

// extRounds is the horizon for the adversarial extension experiment.
const extRounds = 10

// RunAdversary runs the §VII future-work extension: strategic attackers
// (influence-max, on-off, camouflage) against the static and adaptive
// defenses. Reported per strategy: total requester utility under each
// defense and the attacker's final estimated weight under the adaptive
// one. The expected shape: the adaptive defense never does worse and
// collapses the attacker's weight.
func RunAdversary(p *Pipeline, params Params) (*Report, error) {
	part, err := p.Partition(params.M)
	if err != nil {
		return nil, err
	}
	fit, ok := p.ClassFit[worker.Honest]
	if !ok {
		return nil, fmt.Errorf("%w: missing honest fit", ErrPipeline)
	}
	psi := fit.Quadratic

	build := func() (*platform.Population, error) {
		pop := &platform.Population{
			Weights:    make(map[string]float64),
			MaliceProb: make(map[string]float64),
			Part:       part,
			Mu:         params.Mu,
		}
		for i := 0; i < 8; i++ {
			a, err := worker.NewHonest(fmt.Sprintf("h%02d", i), psi, params.Beta, part.YMax())
			if err != nil {
				return nil, err
			}
			pop.Agents = append(pop.Agents, a)
			pop.Weights[a.ID] = 1.5
			pop.MaliceProb[a.ID] = 0.05
		}
		m, err := worker.NewMalicious("attacker", psi, params.Beta, params.Omega, part.YMax())
		if err != nil {
			return nil, err
		}
		pop.Agents = append(pop.Agents, m)
		pop.Weights[m.ID] = 1.2
		pop.MaliceProb[m.ID] = 0.1
		return pop, nil
	}

	rep := &Report{
		ID:     "adversary",
		Title:  "strategic attackers vs static and adaptive defenses (extension)",
		Header: []string{"strategy", "static-total", "adaptive-total", "attacker-final-weight", "attacker-final-malice"},
	}
	allRepriced := true
	for _, strat := range []adversary.Strategy{
		adversary.InfluenceMax{},
		adversary.OnOff{Period: 3, Duty: 1},
		adversary.Camouflage{Reveal: 4},
	} {
		runOne := func(adaptive bool) (float64, *adversary.Scenario, error) {
			pop, err := build()
			if err != nil {
				return 0, nil, err
			}
			sc := &adversary.Scenario{
				Pop:        pop,
				Strategies: map[string]adversary.Strategy{"attacker": strat},
			}
			if adaptive {
				tr, err := reputation.NewTracker(reputation.DefaultConfig())
				if err != nil {
					return 0, nil, err
				}
				sc.Tracker = tr
			}
			ledger, err := sc.Run(context.Background(), &platform.DynamicPolicy{}, extRounds)
			if err != nil {
				return 0, nil, err
			}
			return platform.TotalUtility(ledger), sc, nil
		}
		static, _, err := runOne(false)
		if err != nil {
			return nil, fmt.Errorf("adversary %s static: %w", strat.Name(), err)
		}
		adaptive, sc, err := runOne(true)
		if err != nil {
			return nil, fmt.Errorf("adversary %s adaptive: %w", strat.Name(), err)
		}
		finalW := sc.Pop.Weights["attacker"]
		finalE := sc.Pop.MaliceProb["attacker"]
		if finalW >= 1.2 || finalE <= 0.5 {
			allRepriced = false
		}
		rep.Rows = append(rep.Rows, []string{
			strat.Name(), f2(static), f2(adaptive), f3(finalW), f2(finalE),
		})
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"adaptive defense reprices every attacker (weight falls, malice estimate rises): %v", allRepriced))
	return rep, nil
}

// RunClassify runs the classification extension (§VII): designed dynamic
// contracts vs flat payment on a gold-seeded binary labeling batch with a
// biased malicious minority. Expected shape: designed contracts yield
// higher aggregate accuracy and requester utility.
func RunClassify(p *Pipeline, params Params) (*Report, error) {
	part, err := effort.NewPartition(10, 1)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	task, err := classify.NewTask(rng, 500, 80, 0.4, 1, params.Mu)
	if err != nil {
		return nil, err
	}
	var labelers []classify.Labeler
	for i := 0; i < 6; i++ {
		labelers = append(labelers, classify.Labeler{
			ID: fmt.Sprintf("h%02d", i), Class: worker.Honest,
			Curve: classify.DefaultCurve(), Beta: 0.2,
		})
	}
	for i := 0; i < 2; i++ {
		labelers = append(labelers, classify.Labeler{
			ID: fmt.Sprintf("m%02d", i), Class: worker.NonCollusiveMalicious,
			Curve: classify.DefaultCurve(), Beta: 0.2, Omega: 0.1, TargetBias: 0.8,
		})
	}

	designed, err := classify.DesignContracts(labelers, task, part, 5)
	if err != nil {
		return nil, err
	}
	resDesigned, err := classify.RunBatch(rand.New(rand.NewSource(p.Seed+1)), labelers, task, designed, part)
	if err != nil {
		return nil, err
	}

	flat := make(map[string]*contract.PiecewiseLinear, len(labelers))
	for _, l := range labelers {
		psi, err := l.Curve.FeedbackPsi(task.Gold, part.YMax())
		if err != nil {
			return nil, err
		}
		flat[l.ID], err = contract.Flat(psi.Eval(0), psi.Eval(part.YMax()), 1)
		if err != nil {
			return nil, err
		}
	}
	resFlat, err := classify.RunBatch(rand.New(rand.NewSource(p.Seed+1)), labelers, task, flat, part)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:     "classify",
		Title:  "dynamic contracts on binary labeling vs flat pay (extension)",
		Header: []string{"policy", "aggregate-accuracy", "total-pay", "requester-utility"},
		Rows: [][]string{
			{"designed", f3(resDesigned.AggregateAccuracy), f2(resDesigned.TotalPay), f2(resDesigned.RequesterUtility)},
			{"flat-pay", f3(resFlat.AggregateAccuracy), f2(resFlat.TotalPay), f2(resFlat.RequesterUtility)},
		},
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"designed contracts beat flat pay on accuracy and utility: %v",
		resDesigned.AggregateAccuracy > resFlat.AggregateAccuracy &&
			resDesigned.RequesterUtility > resFlat.RequesterUtility))
	return rep, nil
}
