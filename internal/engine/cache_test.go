package engine_test

import (
	"context"
	"testing"

	"dyncontract/internal/core"
	"dyncontract/internal/effort"
	"dyncontract/internal/engine"
	"dyncontract/internal/worker"
)

// TestCacheDedupAcrossRounds is the acceptance check for the design cache:
// on a population drawn from three archetypes, a cold engine round performs
// exactly as many core.Design calls as there are distinct fingerprints
// (three — the Designer only solves on a cache miss, so Misses counts
// Design calls), and warm rounds perform zero.
func TestCacheDedupAcrossRounds(t *testing.T) {
	pop := archetypePopulation(t, 30)
	cache := engine.NewCache()
	ctx := context.Background()

	eng, err := engine.New(pop, engine.Config{Policy: &designPolicy{}, Rounds: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(ctx); err != nil {
		t.Fatal(err)
	}
	cold := eng.CacheStats()
	if cold.Misses != 3 {
		t.Errorf("cold round Design calls (misses) = %d, want 3 (= distinct fingerprints)", cold.Misses)
	}
	if cold.Hits != 0 {
		t.Errorf("cold round hits = %d, want 0", cold.Hits)
	}
	if cold.Entries != 3 {
		t.Errorf("entries after cold round = %d, want 3", cold.Entries)
	}

	// Two warm rounds on the same cache: every distinct fingerprint hits,
	// nothing is redesigned.
	eng2, err := engine.New(pop, engine.Config{Policy: &designPolicy{}, Rounds: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Run(ctx); err != nil {
		t.Fatal(err)
	}
	warm := cache.Stats()
	if warm.Misses != cold.Misses {
		t.Errorf("warm rounds added %d Design calls, want 0", warm.Misses-cold.Misses)
	}
	if want := uint64(2 * 3); warm.Hits != want {
		t.Errorf("warm hits = %d, want %d (distinct fingerprints × rounds)", warm.Hits, want)
	}
}

// TestWithinRoundDedup pins the unconditional round-level sharing: agents
// with equal fingerprints receive the same designed contract (pointer
// equality — one core.Design call served them all), even with no cache.
func TestWithinRoundDedup(t *testing.T) {
	pop := archetypePopulation(t, 30)
	pol := &designPolicy{}
	contracts, err := pol.Contracts(context.Background(), pop)
	if err != nil {
		t.Fatal(err)
	}
	if len(contracts) != 30 {
		t.Fatalf("contracts = %d, want 30", len(contracts))
	}
	distinct := make(map[interface{}]bool)
	for _, c := range contracts {
		distinct[c] = true
	}
	if len(distinct) != 3 {
		t.Errorf("distinct contract objects = %d, want 3 (one per archetype)", len(distinct))
	}
}

func TestFingerprintOf(t *testing.T) {
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	part, err := effort.NewPartition(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Part: part, Mu: 1, W: 1}
	a1, err := worker.NewHonest("a1", psi, 1, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := worker.NewHonest("a2", psi, 1, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	if engine.FingerprintOf(a1, cfg) != engine.FingerprintOf(a2, cfg) {
		t.Error("identical design problems produced different fingerprints (ID must not enter the key)")
	}
	heavier := cfg
	heavier.W = 2
	if engine.FingerprintOf(a1, cfg) == engine.FingerprintOf(a1, heavier) {
		t.Error("weight change did not change the fingerprint")
	}
	comm3, err := worker.NewCommunity("c3", psi, 1, 0.5, 3, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	comm9, err := worker.NewCommunity("c9", psi, 1, 0.5, 9, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	if engine.FingerprintOf(comm3, cfg) != engine.FingerprintOf(comm9, cfg) {
		t.Error("community size entered the fingerprint (the design never reads it)")
	}
}

func TestCacheZeroValueAndInvalidate(t *testing.T) {
	var c engine.Cache // zero value must be usable
	fp := engine.Fingerprint{Class: worker.Honest, W: 1}
	if _, ok := c.Get(fp); ok {
		t.Fatal("empty cache reported a hit")
	}
	res := &core.Result{}
	c.Put(fp, res)
	got, ok := c.Get(fp)
	if !ok || got != res {
		t.Fatal("Put/Get roundtrip failed")
	}
	c.Put(fp, nil) // nil results are not cacheable
	if got, _ := c.Get(fp); got != res {
		t.Error("Put(nil) clobbered a cached design")
	}

	before := c.Stats()
	c.Invalidate()
	after := c.Stats()
	if after.Entries != 0 {
		t.Errorf("entries after Invalidate = %d, want 0", after.Entries)
	}
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Error("Invalidate reset the counters; they must be preserved")
	}
	if _, ok := c.Get(fp); ok {
		t.Error("invalidated cache still serves designs")
	}
}

func TestCacheMaxEntriesFlush(t *testing.T) {
	c := engine.Cache{MaxEntries: 2}
	res := &core.Result{}
	c.Put(engine.Fingerprint{W: 1}, res)
	c.Put(engine.Fingerprint{W: 2}, res)
	if got := c.Stats().Entries; got != 2 {
		t.Fatalf("entries = %d, want 2", got)
	}
	c.Put(engine.Fingerprint{W: 3}, res) // crossing the cap flushes first
	if got := c.Stats().Entries; got != 1 {
		t.Errorf("entries after overflow = %d, want 1 (flush-then-insert)", got)
	}
	if _, ok := c.Get(engine.Fingerprint{W: 3}); !ok {
		t.Error("the entry that triggered the flush was lost")
	}
}
