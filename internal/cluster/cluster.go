// Package cluster implements §IV-A: detecting collusive communities among
// malicious workers. Two malicious workers are assumed collusive when they
// target (review) the same product; a collusive community is a connected
// component of the resulting auxiliary graph, found by DFS.
//
// The package also provides the malice-probability estimator e_i^mal the
// requester's weight function consumes (Eq. (5)). The paper treats this
// estimate as externally supplied ([14], [15]); Estimator models such an
// external classifier with configurable true/false-positive rates so
// experiments can study sensitivity to estimation error.
package cluster

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"

	"dyncontract/internal/graph"
	"dyncontract/internal/trace"
)

// Community is one detected collusive community.
type Community struct {
	// Members are the worker IDs, sorted.
	Members []string
	// Targets are the shared products connecting the members, sorted.
	Targets []string
}

// Size returns the number of members.
func (c Community) Size() int { return len(c.Members) }

// DetectOptions tunes which reviews count as "targeting" a product. A
// malicious worker targets a product when the review is promotional: score
// at least MinScore and — when an expert score exists — at least MinBias
// above the experts' consensus. Plain co-reviewing must not create edges:
// at realistic catalogue sizes malicious workers routinely collide on
// organic (filler) reviews, and raw co-review would merge unrelated
// communities.
type DetectOptions struct {
	// MinScore is the minimum review score of a promotional review.
	MinScore float64
	// MinBias is the minimum (score − expert score) of a promotional
	// review; ignored for products without an expert score.
	MinBias float64
}

// DefaultDetectOptions matches the synthetic campaigns: promotional
// reviews rate ≥ 4.3 stars and at least one star above expert consensus.
func DefaultDetectOptions() DetectOptions {
	return DetectOptions{MinScore: 4.3, MinBias: 1.0}
}

// FindCommunities runs the detector with DefaultDetectOptions.
func FindCommunities(tr *trace.Trace, maliciousIDs []string) []Community {
	return FindCommunitiesOpt(tr, maliciousIDs, DefaultDetectOptions())
}

// FindCommunitiesOpt builds the auxiliary graph over the given malicious
// workers — an edge joins two workers who target a common product — and
// returns its connected components of size ≥ 2 (singletons are
// non-collusive malicious workers). Communities are sorted by first member.
func FindCommunitiesOpt(tr *trace.Trace, maliciousIDs []string, opts DetectOptions) []Community {
	malicious := make(map[string]bool, len(maliciousIDs))
	for _, id := range maliciousIDs {
		malicious[id] = true
	}

	// product → malicious workers targeting it.
	byProduct := make(map[string][]string)
	for _, r := range tr.Reviews {
		if !malicious[r.WorkerID] {
			continue
		}
		if r.Score < opts.MinScore {
			continue
		}
		if expert, ok := tr.ExpertScores[r.ProductID]; ok && r.Score-expert < opts.MinBias {
			continue
		}
		byProduct[r.ProductID] = append(byProduct[r.ProductID], r.WorkerID)
	}

	g := graph.NewUndirected()
	for _, id := range maliciousIDs {
		g.AddVertex(id)
	}
	sharedTargets := make(map[string]map[string]struct{}) // worker → shared products
	for product, reviewers := range byProduct {
		distinct := dedupe(reviewers)
		if len(distinct) < 2 {
			continue
		}
		// A path through the co-reviewers yields the same components as
		// the full clique at O(n) edges.
		for i := 1; i < len(distinct); i++ {
			g.AddEdge(distinct[i-1], distinct[i])
		}
		for _, w := range distinct {
			if sharedTargets[w] == nil {
				sharedTargets[w] = make(map[string]struct{})
			}
			sharedTargets[w][product] = struct{}{}
		}
	}

	var out []Community
	for _, comp := range g.ConnectedComponents() {
		if len(comp) < 2 {
			continue
		}
		targets := make(map[string]struct{})
		for _, w := range comp {
			for p := range sharedTargets[w] {
				targets[p] = struct{}{}
			}
		}
		out = append(out, Community{Members: comp, Targets: sortedKeys(targets)})
	}
	return out
}

// PartnerCounts returns A_i — the number of collusive partners — for every
// worker in the given communities. Workers outside any community have no
// entry (A_i = 0).
func PartnerCounts(communities []Community) map[string]int {
	out := make(map[string]int)
	for _, c := range communities {
		for _, w := range c.Members {
			out[w] = c.Size() - 1
		}
	}
	return out
}

// SizeBucket is one row of a Table II-style size distribution.
type SizeBucket struct {
	// Label describes the bucket ("2", "3", …, ">=10").
	Label string
	// Count is the number of communities in the bucket.
	Count int
	// Percent is the share of all communities, in percent.
	Percent float64
}

// SizeDistribution buckets community sizes the way Table II does: exact
// buckets for the given sizes plus a final ">=threshold" bucket. Sizes
// falling between the largest exact bucket and the threshold are lumped
// into an "other" bucket when present.
func SizeDistribution(communities []Community, exact []int, threshold int) []SizeBucket {
	total := len(communities)
	buckets := make([]SizeBucket, 0, len(exact)+2)
	counted := 0
	for _, size := range exact {
		n := 0
		for _, c := range communities {
			if c.Size() == size {
				n++
			}
		}
		counted += n
		buckets = append(buckets, SizeBucket{Label: fmt.Sprintf("%d", size), Count: n})
	}
	ge := 0
	for _, c := range communities {
		if c.Size() >= threshold {
			ge++
		}
	}
	counted += ge
	buckets = append(buckets, SizeBucket{Label: fmt.Sprintf(">=%d", threshold), Count: ge})
	if rest := total - counted; rest > 0 {
		buckets = append(buckets, SizeBucket{Label: "other", Count: rest})
	}
	for i := range buckets {
		if total > 0 {
			buckets[i].Percent = 100 * float64(buckets[i].Count) / float64(total)
		}
	}
	return buckets
}

// ErrBadEstimator is returned for invalid estimator parameters.
var ErrBadEstimator = errors.New("cluster: invalid estimator parameters")

// Estimator models an external malice classifier ([14], [15]): it assigns
// each worker an estimated probability of being malicious. Ground-truth
// malicious workers receive probabilities centred at TruePositive, honest
// workers at FalsePositive, both jittered.
type Estimator struct {
	// TruePositive is the mean estimate for truly malicious workers.
	TruePositive float64
	// FalsePositive is the mean estimate for honest workers.
	FalsePositive float64
	// Jitter is the uniform half-width of the noise around the mean.
	Jitter float64
	// Seed makes estimates reproducible.
	Seed int64
}

// DefaultEstimator returns a reasonably accurate classifier: 90% mean
// confidence on malicious workers, 5% on honest, ±5% jitter.
func DefaultEstimator(seed int64) Estimator {
	return Estimator{TruePositive: 0.9, FalsePositive: 0.05, Jitter: 0.05, Seed: seed}
}

// Validate checks the estimator.
func (e Estimator) Validate() error {
	if e.TruePositive < 0 || e.TruePositive > 1 ||
		e.FalsePositive < 0 || e.FalsePositive > 1 || e.Jitter < 0 || e.Jitter > 0.5 {
		return fmt.Errorf("%+v: %w", e, ErrBadEstimator)
	}
	return nil
}

// Estimate returns e_i^mal for every worker in the trace, keyed by worker
// ID. Estimates are deterministic for a fixed seed and independent of map
// iteration order.
func (e Estimator) Estimate(tr *trace.Trace) (map[string]float64, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(tr.Workers))
	for id := range tr.Workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	rng := rand.New(rand.NewPCG(uint64(e.Seed), uint64(e.Seed)))
	out := make(map[string]float64, len(ids))
	for _, id := range ids {
		mean := e.FalsePositive
		if tr.Workers[id].Malicious {
			mean = e.TruePositive
		}
		v := mean + (2*rng.Float64()-1)*e.Jitter
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		out[id] = v
	}
	return out, nil
}

func dedupe(ids []string) []string {
	seen := make(map[string]struct{}, len(ids))
	var out []string
	for _, id := range ids {
		if _, ok := seen[id]; !ok {
			seen[id] = struct{}{}
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

func sortedKeys(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
