package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"dyncontract/internal/contract"
	"dyncontract/internal/effort"
	"dyncontract/internal/telemetry"
	"dyncontract/internal/worker"
)

// ErrStop is returned by an Observer's OnRoundEnd to halt the run cleanly
// (Engine.Run returns nil). Any other observer error aborts the run and is
// returned verbatim.
var ErrStop = errors.New("engine: stop requested")

// ErrBadConfig is returned when an engine configuration fails validation.
var ErrBadConfig = errors.New("engine: invalid configuration")

// Observer receives streamed per-round events. Implementations that only
// care about a subset should embed Hooks or leave methods empty; events
// fire in order OnContracts → OnOutcome (per agent, by ID) → OnRoundEnd.
//
// Observers let callers stream instead of accumulating ledgers: a
// million-round run with a streaming observer holds one Round in memory.
type Observer interface {
	// OnContracts fires after the policy posts the round's contracts. The
	// map is the engine's working copy — treat it as read-only.
	OnContracts(round int, contracts map[string]*contract.PiecewiseLinear)
	// OnOutcome fires once per agent, in agent-ID order.
	OnOutcome(round int, oc AgentOutcome)
	// OnRoundEnd fires with the completed round. Returning ErrStop ends
	// the run cleanly; any other error aborts it.
	OnRoundEnd(round Round) error
}

// Hooks adapts optional funcs into an Observer; nil funcs are skipped.
type Hooks struct {
	Contracts func(round int, contracts map[string]*contract.PiecewiseLinear)
	Outcome   func(round int, oc AgentOutcome)
	RoundEnd  func(round Round) error
}

var _ Observer = Hooks{}

// OnContracts implements Observer.
func (h Hooks) OnContracts(round int, contracts map[string]*contract.PiecewiseLinear) {
	if h.Contracts != nil {
		h.Contracts(round, contracts)
	}
}

// OnOutcome implements Observer.
func (h Hooks) OnOutcome(round int, oc AgentOutcome) {
	if h.Outcome != nil {
		h.Outcome(round, oc)
	}
}

// OnRoundEnd implements Observer.
func (h Hooks) OnRoundEnd(round Round) error {
	if h.RoundEnd != nil {
		return h.RoundEnd(round)
	}
	return nil
}

// Ledger is the accumulating Observer: it collects every completed round,
// reproducing the []Round return of the pre-engine simulators.
type Ledger struct {
	Rounds []Round
}

var _ Observer = (*Ledger)(nil)

// OnContracts implements Observer.
func (l *Ledger) OnContracts(int, map[string]*contract.PiecewiseLinear) {}

// OnOutcome implements Observer.
func (l *Ledger) OnOutcome(int, AgentOutcome) {}

// OnRoundEnd implements Observer.
func (l *Ledger) OnRoundEnd(round Round) error {
	l.Rounds = append(l.Rounds, round)
	return nil
}

// Total sums the requester's utility over the collected rounds.
func (l *Ledger) Total() float64 { return TotalUtility(l.Rounds) }

// Responder chooses an agent's effort for a round instead of the exact
// myopic best response — the hook strategic adversaries plug into. The
// returned effort is clamped to [0, min(mδ, apex)].
type Responder func(round int, a *worker.Agent, c *contract.PiecewiseLinear, part effort.Partition) (float64, error)

// Config assembles one engine run.
type Config struct {
	// Policy prices each round. Required.
	Policy Policy
	// Rounds is the number of rounds to run. Required (> 0); observers can
	// end the run earlier through ErrStop.
	Rounds int
	// Drift, when non-nil, runs before each round and may mutate the
	// population (behaviour drift, weight re-estimation, …).
	Drift func(round int, pop *Population)
	// Responder, when non-nil, overrides the exact best response.
	Responder Responder
	// Observers receive the streamed events of every round.
	Observers []Observer
	// Cache, when non-nil, is wired into the policy (if it implements
	// CacheUser) and surfaced through Engine.CacheStats. Designs then
	// dedup across rounds, not just within one.
	Cache *Cache
	// Metrics, when non-nil, instruments the run: per-stage round timing
	// histograms, per-round ledger gauges (the same set TelemetryObserver
	// exports), the design cache's counters (Cache.ExportTo), and — for
	// policies implementing MetricsUser — the solver fan-out.
	// telemetry.Nop (a nil registry) leaves the run un-instrumented;
	// enabling metrics never changes the simulated ledger.
	Metrics *telemetry.Registry
}

// Engine drives the repeated Stackelberg round loop of §II over one
// population: drift → contracts → best responses → accounting → observers.
type Engine struct {
	pop    *Population
	cfg    Config
	m      *stageMetrics      // nil when Config.Metrics is unset
	telObs *telemetryObserver // nil when Config.Metrics is unset
	agents []*worker.Agent    // sorted scratch, rebuilt per round
}

// New validates the population and configuration and wires the cache and
// metrics registry into the policy when supported.
func New(pop *Population, cfg Config) (*Engine, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("nil policy: %w", ErrBadConfig)
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("rounds=%d must be positive: %w", cfg.Rounds, ErrBadConfig)
	}
	if err := pop.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cache != nil {
		if cu, ok := cfg.Policy.(CacheUser); ok {
			cu.UseCache(cfg.Cache)
		}
	}
	e := &Engine{pop: pop, cfg: cfg}
	if cfg.Metrics != nil {
		if mu, ok := cfg.Policy.(MetricsUser); ok {
			mu.UseMetrics(cfg.Metrics)
		}
		if cfg.Cache != nil {
			cfg.Cache.ExportTo(cfg.Metrics)
		}
		e.m = newStageMetrics(cfg.Metrics)
		// Ledger metrics are exported directly in Run rather than by
		// stacking TelemetryObserver into Observers: the per-agent
		// OnOutcome dispatch loop stays exactly as long as the caller made
		// it, which keeps instrumentation overhead off the hot path. The
		// export happens before user observers fire, so a per-round
		// metrics flush reads the registry already updated for the round.
		e.telObs = newTelemetryObserver(cfg.Metrics)
	}
	return e, nil
}

// CacheStats snapshots the configured cache's counters (zero when no cache
// was configured).
func (e *Engine) CacheStats() CacheStats {
	if e.cfg.Cache == nil {
		return CacheStats{}
	}
	return e.cfg.Cache.Stats()
}

// Run executes the configured number of rounds, streaming events to the
// observers. It returns nil on completion or clean ErrStop, and the first
// error otherwise (context cancellation, policy/design failure, a drift
// that broke the population, or an observer error).
//
// Each round is four stages — contract design, worker best-response,
// outcome settlement, observer dispatch — and when Config.Metrics is set
// each stage's duration is observed into its _seconds histogram. The
// observable event order is unchanged either way: OnContracts, then one
// OnOutcome per agent in ID order, then OnRoundEnd.
func (e *Engine) Run(ctx context.Context) error {
	timed := e.m != nil
	for r := 0; r < e.cfg.Rounds; r++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("engine: round %d: %w", r, err)
		}
		if e.cfg.Drift != nil {
			e.cfg.Drift(r, e.pop)
			if err := e.pop.Validate(); err != nil {
				return fmt.Errorf("engine: drift broke population at round %d: %w", r, err)
			}
		}

		// Stage 1: contract design.
		var roundTimer, stageTimer telemetry.Timer
		if timed {
			roundTimer = telemetry.StartTimer()
			stageTimer = roundTimer
		}
		contracts, err := e.cfg.Policy.Contracts(ctx, e.pop)
		if err != nil {
			return fmt.Errorf("engine: policy %s round %d: %w", e.cfg.Policy.Name(), r, err)
		}
		var observeDur time.Duration
		if timed {
			e.m.design.Observe(stageTimer.Seconds())
			stageTimer = telemetry.StartTimer()
		}
		for _, ob := range e.cfg.Observers {
			ob.OnContracts(r, contracts)
		}
		if timed {
			observeDur += stageTimer.Elapsed()
			stageTimer = telemetry.StartTimer()
		}

		// Stage 2: worker best responses.
		round := Round{Index: r, Outcomes: make([]AgentOutcome, 0, len(e.pop.Agents))}
		var workerUtility float64
		for _, a := range e.sortedAgents() {
			oc := AgentOutcome{
				AgentID: a.ID,
				Class:   a.Class,
				Size:    a.Size,
				Weight:  e.pop.Weights[a.ID],
			}
			c := contracts[a.ID]
			if c == nil {
				oc.Excluded = true
			} else if e.cfg.Responder != nil {
				y, err := e.cfg.Responder(r, a, c, e.pop.Part)
				if err != nil {
					return fmt.Errorf("engine: responder for %s round %d: %w", a.ID, r, err)
				}
				y = clampEffort(y, a, e.pop.Part)
				q := a.Psi.Eval(y)
				oc.Effort = y
				oc.Feedback = q
				oc.Compensation = c.Eval(q)
				if timed {
					workerUtility += a.Utility(c, y)
				}
			} else {
				resp, err := a.BestResponse(c, e.pop.Part)
				if err != nil {
					return fmt.Errorf("engine: agent %s round %d: %w", a.ID, r, err)
				}
				if resp.Declined {
					oc.Declined = true
				} else {
					oc.Effort = resp.Effort
					oc.Feedback = resp.Feedback
					oc.Compensation = resp.Compensation
					if timed {
						workerUtility += resp.Utility
					}
				}
			}
			round.Outcomes = append(round.Outcomes, oc)
		}
		if timed {
			e.m.respond.Observe(stageTimer.Seconds())
			stageTimer = telemetry.StartTimer()
		}

		// Stage 3: outcome settlement (Eq. (7) accounting).
		for i := range round.Outcomes {
			oc := &round.Outcomes[i]
			if oc.Excluded || oc.Declined {
				continue
			}
			round.Benefit += oc.Weight * oc.Feedback
			round.Cost += oc.Compensation
		}
		round.Utility = round.Benefit - e.pop.Mu*round.Cost
		if timed {
			e.m.settle.Observe(stageTimer.Seconds())
			e.m.workerUtility.Set(workerUtility)
			stageTimer = telemetry.StartTimer()
		}

		// Stage 4: observer dispatch. The registry export runs first so
		// observers that read Config.Metrics (e.g. a per-round JSONL
		// flush) see the completed round's values.
		if timed {
			_ = e.telObs.OnRoundEnd(round) // never errors
		}
		for i := range round.Outcomes {
			for _, ob := range e.cfg.Observers {
				ob.OnOutcome(r, round.Outcomes[i])
			}
		}
		var endErr error
		for _, ob := range e.cfg.Observers {
			if endErr = ob.OnRoundEnd(round); endErr != nil {
				break
			}
		}
		if timed {
			observeDur += stageTimer.Elapsed()
			e.m.observe.Observe(observeDur.Seconds())
			e.m.round.Observe(roundTimer.Seconds())
		}
		if endErr != nil {
			if errors.Is(endErr, ErrStop) {
				return nil
			}
			return endErr
		}
	}
	return nil
}

// sortedAgents rebuilds the ID-ordered agent view. The backing slice is
// reused across rounds (drift may add, remove, or reorder agents, so the
// view cannot be computed once).
func (e *Engine) sortedAgents() []*worker.Agent {
	e.agents = append(e.agents[:0], e.pop.Agents...)
	sort.Slice(e.agents, func(i, j int) bool { return e.agents[i].ID < e.agents[j].ID })
	return e.agents
}

// RunLedger runs a configured engine to completion and returns the
// accumulated per-round ledger — the convenience path for callers that
// want the classic []Round result. On error the rounds completed so far
// are returned alongside it.
func RunLedger(ctx context.Context, pop *Population, cfg Config) ([]Round, error) {
	led := &Ledger{Rounds: make([]Round, 0, cfg.Rounds)}
	cfg.Observers = append(append([]Observer(nil), cfg.Observers...), led)
	e, err := New(pop, cfg)
	if err != nil {
		return nil, err
	}
	if err := e.Run(ctx); err != nil {
		return led.Rounds, err
	}
	return led.Rounds, nil
}
