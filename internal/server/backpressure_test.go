package server

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"dyncontract/internal/contract"
	"dyncontract/internal/engine"
)

// gatedPolicy blocks every Contracts call until the gate opens — the test
// seam for holding a round mid-flight. entered is buffered so the policy
// never blocks on a test that stopped listening.
type gatedPolicy struct {
	inner   engine.Policy
	entered chan struct{}
	gate    chan struct{}
}

func (p *gatedPolicy) Name() string { return p.inner.Name() }

func (p *gatedPolicy) Contracts(ctx context.Context, pop *engine.Population) (map[string]*contract.PiecewiseLinear, error) {
	select {
	case p.entered <- struct{}{}:
	default:
	}
	<-p.gate
	return p.inner.Contracts(ctx, pop)
}

// gateServer builds a test server whose sessions run behind a gatedPolicy.
func gateServer(t *testing.T, cfg Config) (*testServer, *gatedPolicy) {
	t.Helper()
	gp := &gatedPolicy{entered: make(chan struct{}, 64), gate: make(chan struct{})}
	e := newTestServer(t, cfg)
	e.srv.testWrapPolicy = func(pol engine.Policy) engine.Policy {
		gp.inner = pol
		return gp
	}
	return e, gp
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCommandQueueBackpressure fills the per-session command queue behind
// a blocked round and requires the overflow request to bounce with 429 and
// a Retry-After header.
func TestCommandQueueBackpressure(t *testing.T) {
	e, gp := gateServer(t, Config{CommandQueue: 1})
	id := e.createSession(t)
	sess := e.srv.sessions[id]

	var wg sync.WaitGroup
	codeA, codeB := 0, 0
	wg.Add(1)
	go func() { defer wg.Done(); codeA = e.do(t, "POST", "/v1/sessions/"+id+"/rounds", nil, nil) }()
	<-gp.entered // A is executing, queue empty

	wg.Add(1)
	go func() { defer wg.Done(); codeB = e.do(t, "POST", "/v1/sessions/"+id+"/rounds", nil, nil) }()
	waitFor(t, "B to queue", func() bool { return len(sess.cmds) == 1 })

	// Queue full: C must be rejected immediately, not queued.
	resp, err := e.ts.Client().Post(e.ts.URL+"/v1/sessions/"+id+"/rounds", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("overflow request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(gp.gate)
	wg.Wait()
	if codeA != http.StatusOK || codeB != http.StatusOK {
		t.Errorf("admitted requests: A=%d B=%d, want 200/200", codeA, codeB)
	}
	var info SessionInfo
	if code := e.do(t, "GET", "/v1/sessions/"+id, nil, &info); code != http.StatusOK {
		t.Fatalf("info: status %d", code)
	}
	if info.Rounds != 2 {
		t.Errorf("rounds = %d, want 2 (A and B, not C)", info.Rounds)
	}
}

// TestInFlightCap rejects past the per-session in-flight limit even when
// the queue has room.
func TestInFlightCap(t *testing.T) {
	e, gp := gateServer(t, Config{MaxInFlight: 1, CommandQueue: 16})
	id := e.createSession(t)

	var wg sync.WaitGroup
	codeA := 0
	wg.Add(1)
	go func() { defer wg.Done(); codeA = e.do(t, "POST", "/v1/sessions/"+id+"/rounds", nil, nil) }()
	<-gp.entered

	if code := e.do(t, "POST", "/v1/sessions/"+id+"/rounds", nil, nil); code != http.StatusTooManyRequests {
		t.Errorf("second in-flight request: status %d, want 429", code)
	}
	// Design queries share the cap.
	q := DesignQueryRequest{AgentID: "h1"}
	if code := e.do(t, "POST", "/v1/sessions/"+id+"/design", &q, nil); code != http.StatusTooManyRequests {
		t.Errorf("design past in-flight cap: status %d, want 429", code)
	}

	close(gp.gate)
	wg.Wait()
	if codeA != http.StatusOK {
		t.Errorf("blocked round: status %d, want 200", codeA)
	}
	// The cap releases with the request: the session is usable again.
	if code := e.do(t, "POST", "/v1/sessions/"+id+"/rounds", nil, nil); code != http.StatusOK {
		t.Errorf("round after release: status %d, want 200", code)
	}
}
