package server

import (
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"dyncontract/internal/journal"
)

// newJournaledServer wires a testServer over a strict-mode journal store
// rooted at dir. Strict mode makes every served response durable, so a
// copy of dir taken between requests is exactly the disk image a kill -9
// would leave behind.
func newJournaledServer(t *testing.T, dir string, cfg Config) *testServer {
	t.Helper()
	st, err := journal.Open(dir, journal.Options{Mode: journal.ModeStrict})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Journal = st
	return newTestServer(t, cfg)
}

// recoverServer boots a fresh server over an existing journal directory
// and runs recovery, the same sequence contractd performs before
// listening.
func recoverServer(t *testing.T, dir string, cfg Config) (*testServer, RecoveryStats) {
	t.Helper()
	e := newJournaledServer(t, dir, cfg)
	stats, err := e.srv.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return e, stats
}

// crashImage copies the journal directory byte for byte — the disk state
// a kill -9 at this instant would leave — so recovery runs against a
// frozen image while the original server keeps serving as the
// uninterrupted reference.
func crashImage(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// ledgerBytes fetches a session's full audit ledger as raw JSON — the
// byte-identical currency every recovery assertion trades in.
func ledgerBytes(t *testing.T, e *testServer, id string) []byte {
	t.Helper()
	resp, err := e.ts.Client().Get(e.ts.URL + "/v1/sessions/" + id + "/rounds")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list rounds: status %d: %s", resp.StatusCode, raw)
	}
	return raw
}

// advanceRounds advances n rounds, failing the test on any non-200.
func advanceRounds(t *testing.T, e *testServer, id string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		req := AdvanceRoundRequest{IncludeOutcomes: true}
		if code := e.do(t, "POST", "/v1/sessions/"+id+"/rounds", &req, nil); code != http.StatusOK {
			t.Fatalf("round %d: status %d", i, code)
		}
	}
}

// walSegments lists a session's log segments in sequence order.
func walSegments(t *testing.T, dir, id string) []string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, id, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatalf("no wal segments under %s/%s", dir, id)
	}
	sort.Strings(segs)
	return segs
}

// TestRecoverByteIdenticalLedger is the durability acceptance test: a
// session driven through mixed traffic — rounds, a structural drift,
// more rounds — is recovered from a crash image with a byte-identical
// ledger, and keeps producing byte-identical rounds after recovery.
func TestRecoverByteIdenticalLedger(t *testing.T) {
	dir := t.TempDir()
	e1 := newJournaledServer(t, dir, Config{})
	id := e1.createSession(t)

	advanceRounds(t, e1, id, 3)
	drift := DriftRequest{
		Weights: map[string]float64{"h1": 1.4},
		Add: []AgentSpec{{
			ID: "h3", Class: "honest",
			Psi: PsiSpec{R2: -0.25, R1: 2}, Beta: 1.1, Weight: 0.9,
		}},
		Remove: []string{"m1"},
	}
	if code := e1.do(t, "POST", "/v1/sessions/"+id+"/drift", &drift, nil); code != http.StatusOK {
		t.Fatalf("drift: status %d", code)
	}
	advanceRounds(t, e1, id, 2)
	ref := ledgerBytes(t, e1, id)

	e2, stats := recoverServer(t, crashImage(t, dir), Config{})
	if stats.Sessions != 1 || stats.Failed != 0 {
		t.Fatalf("recovery stats = %+v, want 1 session, 0 failed", stats)
	}
	if stats.Replayed != 6 {
		t.Errorf("replayed %d commands, want 6 (5 rounds + 1 drift)", stats.Replayed)
	}
	if got := ledgerBytes(t, e2, id); string(got) != string(ref) {
		t.Fatalf("recovered ledger differs:\n got %s\nwant %s", got, ref)
	}

	var info SessionInfo
	if code := e2.do(t, "GET", "/v1/sessions/"+id, nil, &info); code != http.StatusOK {
		t.Fatalf("get session: status %d", code)
	}
	if info.Journal == nil || !info.Journal.Recovered || info.Journal.Replayed != 6 {
		t.Errorf("journal info = %+v, want recovered with 6 replayed", info.Journal)
	}

	// The recovered session is live, not an archive: both servers advance
	// two more rounds and stay byte-identical.
	advanceRounds(t, e1, id, 2)
	advanceRounds(t, e2, id, 2)
	if got, want := ledgerBytes(t, e2, id), ledgerBytes(t, e1, id); string(got) != string(want) {
		t.Errorf("post-recovery rounds diverge:\n got %s\nwant %s", got, want)
	}

	// Fresh IDs are minted past the recovered history — no collision with
	// the journal directory on disk.
	var created CreateSessionResponse
	req := testCreateReq()
	if code := e2.do(t, "POST", "/v1/sessions", &req, &created); code != http.StatusCreated {
		t.Fatalf("create after recovery: status %d", code)
	}
	if created.ID == id {
		t.Fatalf("recovered server re-minted live session ID %s", id)
	}
}

// TestRecoverFromSnapshot pins the snapshot path: a forced snapshot
// truncates the log, recovery restores from it and replays only the
// commands behind it, and the ledger still comes back byte-identical.
func TestRecoverFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	e1 := newJournaledServer(t, dir, Config{})
	id := e1.createSession(t)

	advanceRounds(t, e1, id, 3)
	var snap SnapshotResponse
	if code := e1.do(t, "POST", "/v1/sessions/"+id+"/snapshot", nil, &snap); code != http.StatusOK {
		t.Fatalf("snapshot: status %d", code)
	}
	if snap.Rounds != 3 || snap.Seq == 0 || snap.Bytes == 0 {
		t.Fatalf("snapshot response = %+v, want 3 rounds at a positive seq", snap)
	}
	advanceRounds(t, e1, id, 2)
	ref := ledgerBytes(t, e1, id)

	e2, stats := recoverServer(t, crashImage(t, dir), Config{})
	if stats.Sessions != 1 || stats.Failed != 0 {
		t.Fatalf("recovery stats = %+v, want 1 session, 0 failed", stats)
	}
	if stats.Replayed != 2 {
		t.Errorf("replayed %d commands, want 2 (rounds behind the snapshot)", stats.Replayed)
	}
	if got := ledgerBytes(t, e2, id); string(got) != string(ref) {
		t.Fatalf("recovered ledger differs:\n got %s\nwant %s", got, ref)
	}
}

// TestRecoverAutoSnapshot drives a session past the SnapshotEvery
// cadence, waits for the background commit, and recovers from the
// compacted journal.
func TestRecoverAutoSnapshot(t *testing.T) {
	dir := t.TempDir()
	e1 := newJournaledServer(t, dir, Config{SnapshotEvery: 3})
	id := e1.createSession(t)
	advanceRounds(t, e1, id, 4)
	ref := ledgerBytes(t, e1, id)

	// The auto-snapshot commits on a background goroutine; wait for it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snaps, err := filepath.Glob(filepath.Join(dir, id, "snap-*.snap"))
		if err != nil {
			t.Fatal(err)
		}
		if len(snaps) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("auto-snapshot never committed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	e2, stats := recoverServer(t, crashImage(t, dir), Config{})
	if stats.Sessions != 1 || stats.Failed != 0 {
		t.Fatalf("recovery stats = %+v, want 1 session, 0 failed", stats)
	}
	// The snapshot covers the create plus the first three rounds; only
	// the fourth replays.
	if stats.Replayed != 1 {
		t.Errorf("replayed %d commands, want 1", stats.Replayed)
	}
	if got := ledgerBytes(t, e2, id); string(got) != string(ref) {
		t.Fatalf("recovered ledger differs:\n got %s\nwant %s", got, ref)
	}
}

// TestRecoverTornTail truncates the final record mid-frame — the shape a
// kill -9 during an append leaves — and checks recovery degrades to the
// longest clean prefix instead of failing.
func TestRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	e1 := newJournaledServer(t, dir, Config{})
	id := e1.createSession(t)
	advanceRounds(t, e1, id, 4)

	var ref []json.RawMessage
	if err := json.Unmarshal(ledgerBytes(t, e1, id), &ref); err != nil {
		t.Fatal(err)
	}

	image := crashImage(t, dir)
	segs := walSegments(t, image, id)
	last := segs[len(segs)-1]
	st, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	e2, stats := recoverServer(t, image, Config{})
	if stats.Sessions != 1 || stats.Failed != 0 {
		t.Fatalf("recovery stats = %+v, want 1 session, 0 failed", stats)
	}
	var got []json.RawMessage
	if err := json.Unmarshal(ledgerBytes(t, e2, id), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref)-1 {
		t.Fatalf("torn tail recovered %d rounds, want %d", len(got), len(ref)-1)
	}
	for i := range got {
		if string(got[i]) != string(ref[i]) {
			t.Fatalf("round %d differs after torn-tail recovery:\n got %s\nwant %s", i, got[i], ref[i])
		}
	}
}

// TestRecoverRandomizedTruncation sweeps kill points across the log: a
// journal truncated at any byte offset past the create record must
// recover to a byte-identical prefix of the uninterrupted history —
// frame boundaries and mid-frame tears alike.
func TestRecoverRandomizedTruncation(t *testing.T) {
	dir := t.TempDir()
	e1 := newJournaledServer(t, dir, Config{})
	id := e1.createSession(t)
	advanceRounds(t, e1, id, 5)

	var ref []json.RawMessage
	if err := json.Unmarshal(ledgerBytes(t, e1, id), &ref); err != nil {
		t.Fatal(err)
	}

	seg := walSegments(t, dir, id)[0]
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	size := int64(len(raw))
	// First frame = 8-byte header + payload; truncating inside the create
	// record is the no-create corrupt case, covered elsewhere.
	firstEnd := int64(8 + binary.LittleEndian.Uint32(raw[:4]))

	// A deterministic spread of kill points: frame-exact at firstEnd and
	// size, mid-frame everywhere between.
	var cuts []int64
	for k := int64(0); k <= 6; k++ {
		cuts = append(cuts, firstEnd+k*(size-firstEnd)/6)
	}
	cuts = append(cuts, firstEnd+7, size-1)

	for _, cut := range cuts {
		image := crashImage(t, dir)
		if err := os.Truncate(filepath.Join(image, id, filepath.Base(seg)), cut); err != nil {
			t.Fatal(err)
		}
		e2, stats := recoverServer(t, image, Config{})
		if stats.Sessions != 1 || stats.Failed != 0 {
			t.Fatalf("cut %d: recovery stats = %+v, want 1 session, 0 failed", cut, stats)
		}
		var got []json.RawMessage
		if err := json.Unmarshal(ledgerBytes(t, e2, id), &got); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) > len(ref) {
			t.Fatalf("cut %d: recovered %d rounds from a %d-round history", cut, len(got), len(ref))
		}
		for i := range got {
			if string(got[i]) != string(ref[i]) {
				t.Fatalf("cut %d: round %d differs:\n got %s\nwant %s", cut, i, got[i], ref[i])
			}
		}
		if cut == size && len(got) != len(ref) {
			t.Fatalf("uncut image recovered %d rounds, want %d", len(got), len(ref))
		}
	}
}

// TestRecoverCorruptMidLogFailsOnlyThatSession flips a byte in the
// middle of one session's log — data behind the damage means truncation
// would silently lose acknowledged history, so that session must fail —
// and checks the blast radius stops there: the sibling session recovers
// byte-identical and fresh IDs skip the dead journal.
func TestRecoverCorruptMidLogFailsOnlyThatSession(t *testing.T) {
	dir := t.TempDir()
	e1 := newJournaledServer(t, dir, Config{})
	id1 := e1.createSession(t)
	id2 := e1.createSession(t)
	advanceRounds(t, e1, id1, 3)
	advanceRounds(t, e1, id2, 2)
	ref2 := ledgerBytes(t, e1, id2)

	image := crashImage(t, dir)
	seg := walSegments(t, image, id1)[0]
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[10] ^= 0xff // inside the first record's payload, with records behind it
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	e2, stats := recoverServer(t, image, Config{})
	if stats.Sessions != 1 || stats.Failed != 1 {
		t.Fatalf("recovery stats = %+v, want 1 recovered, 1 failed", stats)
	}
	if code := e2.do(t, "GET", "/v1/sessions/"+id1, nil, nil); code != http.StatusNotFound {
		t.Errorf("corrupt session served: status %d, want 404", code)
	}
	if got := ledgerBytes(t, e2, id2); string(got) != string(ref2) {
		t.Fatalf("sibling ledger differs:\n got %s\nwant %s", got, ref2)
	}
	// The failed session's files stay on disk for forensics, and its ID
	// is retired: a new session must not collide with them.
	var created CreateSessionResponse
	req := testCreateReq()
	if code := e2.do(t, "POST", "/v1/sessions", &req, &created); code != http.StatusCreated {
		t.Fatalf("create after failed recovery: status %d", code)
	}
	if created.ID == id1 || created.ID == id2 {
		t.Errorf("new session re-minted journaled ID %s", created.ID)
	}
	if _, err := os.Stat(filepath.Join(image, id1)); err != nil {
		t.Errorf("corrupt session's journal removed: %v", err)
	}
}

// TestSnapshotWithoutJournal pins the 409 on durability endpoints when
// the server runs without a journal.
func TestSnapshotWithoutJournal(t *testing.T) {
	e := newTestServer(t, Config{})
	id := e.createSession(t)
	if code := e.do(t, "POST", "/v1/sessions/"+id+"/snapshot", nil, nil); code != http.StatusConflict {
		t.Errorf("snapshot without journal: status %d, want 409", code)
	}
	var info SessionInfo
	if code := e.do(t, "GET", "/v1/sessions/"+id, nil, &info); code != http.StatusOK {
		t.Fatalf("get session: status %d", code)
	}
	if info.Journal != nil {
		t.Errorf("journal info = %+v on an unjournaled session, want absent", info.Journal)
	}
}
