// Package numeric provides the small dense linear-algebra substrate used by
// the rest of the repository: vectors, column-major-free dense matrices, a
// Householder QR decomposition, and least-squares solving.
//
// The paper's pipeline needs only modest numerics (polynomial least squares
// for effort-function fitting, residual norms, and a handful of vector
// reductions), so this package favours clarity and numerical robustness over
// raw speed. Everything is implemented with the standard library only.
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when operands have incompatible shapes.
var ErrDimensionMismatch = errors.New("numeric: dimension mismatch")

// Vector is a dense column vector of float64 values.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector {
	return make(Vector, n)
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("dot of lengths %d and %d: %w", len(v), len(w), ErrDimensionMismatch)
	}
	var sum float64
	for i := range v {
		sum += v[i] * w[i]
	}
	return sum, nil
}

// Norm2 returns the Euclidean norm of v, guarding against overflow by
// scaling with the largest absolute entry.
func (v Vector) Norm2() float64 {
	var maxAbs float64
	for _, x := range v {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	var sum float64
	for _, x := range v {
		r := x / maxAbs
		sum += r * r
	}
	return maxAbs * math.Sqrt(sum)
}

// NormInf returns the maximum absolute entry of v.
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Sub returns v - w.
func (v Vector) Sub(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("sub of lengths %d and %d: %w", len(v), len(w), ErrDimensionMismatch)
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out, nil
}

// Add returns v + w.
func (v Vector) Add(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("add of lengths %d and %d: %w", len(v), len(w), ErrDimensionMismatch)
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out, nil
}

// Scale returns s * v as a new vector.
func (v Vector) Scale(s float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = s * v[i]
	}
	return out
}

// Sum returns the sum of all entries.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// AllFinite reports whether every entry is finite (no NaN or Inf).
func (v Vector) AllFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
