package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record framing, version 1. Every record — command and snapshot alike —
// is one frame:
//
//	[4B LE length][4B LE CRC32C(payload)][payload]
//	payload = [1B version][1B kind][8B LE seq][body]
//
// The length counts the payload only, the checksum (Castagnoli) covers
// the payload only, and seq numbers are per-session, starting at 1 and
// strictly sequential. The frame header is written atomically with the
// payload by a single buffered write, so a crash mid-append leaves a
// prefix of a frame — never interleaved frames.
const (
	recordVersion = 1
	frameHeader   = 8         // length + checksum
	payloadHeader = 1 + 1 + 8 // version + kind + seq
	maxRecord     = 1 << 30   // sanity cap: random corruption rarely passes
)

// Kind discriminates journal records. The values are part of the on-disk
// format; never renumber them.
type Kind uint8

const (
	// KindCreate is a session's first record: the create-session request.
	KindCreate Kind = 1
	// KindRound is one advance-round command.
	KindRound Kind = 2
	// KindDrift is one drift command.
	KindDrift Kind = 3
	// KindAbort marks the preceding command as failed-without-effect: it
	// was journaled before execution, executed, and left no state behind.
	// Replay skips a command followed by an abort.
	KindAbort Kind = 4
	// KindSnapshot is a full session snapshot; it lives alone in its own
	// snap-*.snap file, never inside a wal segment.
	KindSnapshot Kind = 5
)

func (k Kind) String() string {
	switch k {
	case KindCreate:
		return "create"
	case KindRound:
		return "round"
	case KindDrift:
		return "drift"
	case KindAbort:
		return "abort"
	case KindSnapshot:
		return "snapshot"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is one decoded journal entry.
type Record struct {
	// Seq is the session-scoped sequence number, starting at 1.
	Seq uint64
	// Kind discriminates the body.
	Kind Kind
	// Body is the record payload (typically JSON). It aliases the decoded
	// buffer; copy it to retain past the buffer's lifetime.
	Body []byte
}

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks a mid-log record that is provably damaged — a full
// frame whose checksum, version, or length is wrong with more data behind
// it. A torn tail (a partial final frame from a crash mid-write) is NOT
// corruption; decodeRecords reports it as a clean prefix instead.
var ErrCorrupt = errors.New("journal: corrupt record")

// appendRecord encodes r onto dst and returns the extended slice.
func appendRecord(dst []byte, r Record) []byte {
	n := payloadHeader + len(r.Body)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, 0, 0, 0, 0) // checksum backfilled below
	at := len(dst)
	dst = append(dst, recordVersion, byte(r.Kind))
	dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	dst = append(dst, r.Body...)
	sum := crc32.Checksum(dst[at:], castagnoli)
	binary.LittleEndian.PutUint32(dst[at-4:at], sum)
	return dst
}

// decodeRecords scans buf from the start and returns every cleanly framed
// record plus the byte length of the clean prefix. A partial final frame
// — too few bytes for the header, a length running past the end, or a
// checksum mismatch on the very last frame — is a torn tail: decoding
// stops with err == nil and clean < len(buf), and the caller truncates.
// Anything provably wrong with data still behind it (bad checksum, bad
// version, impossible length mid-log) is ErrCorrupt.
func decodeRecords(buf []byte) (recs []Record, clean int, err error) {
	off := 0
	for off < len(buf) {
		rem := buf[off:]
		if len(rem) < frameHeader {
			return recs, off, nil // torn header
		}
		n := int(binary.LittleEndian.Uint32(rem))
		if n < payloadHeader || n > maxRecord {
			return recs, off, fmt.Errorf("%w: frame at offset %d declares %d payload bytes", ErrCorrupt, off, n)
		}
		if len(rem) < frameHeader+n {
			return recs, off, nil // torn payload
		}
		payload := rem[frameHeader : frameHeader+n]
		sum := binary.LittleEndian.Uint32(rem[4:])
		if crc32.Checksum(payload, castagnoli) != sum {
			if off+frameHeader+n == len(buf) {
				// The final frame is complete in length but fails its
				// checksum: a torn write that got the header down and part
				// of the payload overwritten by zeros or garbage. Nothing
				// follows it, so truncating loses only the torn record.
				return recs, off, nil
			}
			return recs, off, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		if payload[0] != recordVersion {
			return recs, off, fmt.Errorf("%w: record version %d at offset %d (want %d)", ErrCorrupt, payload[0], off, recordVersion)
		}
		recs = append(recs, Record{
			Seq:  binary.LittleEndian.Uint64(payload[2:]),
			Kind: Kind(payload[1]),
			Body: payload[payloadHeader:],
		})
		off += frameHeader + n
	}
	return recs, off, nil
}
