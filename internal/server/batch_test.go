package server

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"dyncontract/internal/core"
	"dyncontract/internal/telemetry"
)

// TestDesignQueryMatchesCoreDesign pins the serving path to the math: a
// design query for a session agent returns exactly the contract
// core.Design produces for that agent's parameters.
func TestDesignQueryMatchesCoreDesign(t *testing.T) {
	e := newTestServer(t, Config{})
	id := e.createSession(t)
	var resp DesignQueryResponse
	q := DesignQueryRequest{AgentID: "m1"}
	if code := e.do(t, "POST", "/v1/sessions/"+id+"/design", &q, &resp); code != http.StatusOK {
		t.Fatalf("design: status %d", code)
	}
	if resp.AgentID != "m1" || resp.Contract == nil || resp.BatchSize < 1 {
		t.Fatalf("bad response: %+v", resp)
	}

	req := testCreateReq()
	pop, err := buildPopulation(&req)
	if err != nil {
		t.Fatal(err)
	}
	var want *core.Result
	for _, a := range pop.Agents {
		if a.ID == "m1" {
			want, err = core.Design(a, core.Config{Part: pop.Part, Mu: pop.Mu, W: pop.Weights[a.ID]})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if !resp.Contract.Equal(want.Contract) {
		t.Errorf("served contract differs from core.Design:\n got %+v\nwant %+v", resp.Contract, want.Contract)
	}
}

// TestDesignQueryInlineAgent designs for an agent that is not a session
// member, and rejects invalid inline agents.
func TestDesignQueryInlineAgent(t *testing.T) {
	e := newTestServer(t, Config{})
	id := e.createSession(t)
	q := DesignQueryRequest{Agent: &AgentSpec{
		ID: "visitor", Class: "honest", Psi: PsiSpec{R2: -0.25, R1: 2}, Beta: 2, Weight: 1.5,
	}}
	var resp DesignQueryResponse
	if code := e.do(t, "POST", "/v1/sessions/"+id+"/design", &q, &resp); code != http.StatusOK {
		t.Fatalf("inline design: status %d", code)
	}
	if resp.Contract == nil {
		t.Fatal("no contract")
	}

	for name, bad := range map[string]DesignQueryRequest{
		"no form":    {},
		"both forms": {AgentID: "h1", Agent: q.Agent},
		"unknown id": {AgentID: "ghost"},
		"bad psi":    {Agent: &AgentSpec{ID: "x", Class: "honest", Psi: PsiSpec{R2: 1, R1: 1}, Beta: 1, Weight: 1}},
		"bad class":  {Agent: &AgentSpec{ID: "x", Class: "chaotic", Psi: PsiSpec{R2: -0.25, R1: 2}, Beta: 1, Weight: 1}},
	} {
		t.Run(name, func(t *testing.T) {
			if code := e.do(t, "POST", "/v1/sessions/"+id+"/design", &bad, nil); code != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", code)
			}
		})
	}
}

// TestDesignBatchCoalesces fires concurrent design queries into a wide
// batch window and requires that they share micro-batches (and that the
// batch-size histogram observed it).
func TestDesignBatchCoalesces(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := newTestServer(t, Config{BatchWindow: 200 * time.Millisecond, Metrics: reg})
	id := e.createSession(t)

	// Warm-up query: proves the path works before the concurrent burst.
	q := DesignQueryRequest{AgentID: "h1"}
	if code := e.do(t, "POST", "/v1/sessions/"+id+"/design", &q, nil); code != http.StatusOK {
		t.Fatalf("warm-up design: status %d", code)
	}

	const n = 8
	ids := []string{"h1", "h2", "m1", "c1"}
	var wg sync.WaitGroup
	sizes := make([]int, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp DesignQueryResponse
			codes[i] = e.do(t, "POST", "/v1/sessions/"+id+"/design",
				&DesignQueryRequest{AgentID: ids[i%len(ids)]}, &resp)
			sizes[i] = resp.BatchSize
		}(i)
	}
	wg.Wait()
	maxSize := 0
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("query %d: status %d", i, codes[i])
		}
		if sizes[i] > maxSize {
			maxSize = sizes[i]
		}
	}
	if maxSize < 2 {
		t.Errorf("no coalescing: max batch size %d over %d concurrent queries", maxSize, n)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[metricBatches]; got == 0 || got > n+1 {
		t.Errorf("%s = %d, want in [1, %d]", metricBatches, got, n+1)
	}
	if snap.Histograms[metricBatchSize].Count == 0 {
		t.Errorf("batch-size histogram empty")
	}
}

// TestBatchMaxTriggersEarly pins the size trigger: with BatchMax=1 every
// query flies alone no matter how wide the window is.
func TestBatchMaxTriggersEarly(t *testing.T) {
	e := newTestServer(t, Config{BatchWindow: time.Minute, BatchMax: 1})
	id := e.createSession(t)
	var resp DesignQueryResponse
	q := DesignQueryRequest{AgentID: "h1"}
	if code := e.do(t, "POST", "/v1/sessions/"+id+"/design", &q, &resp); code != http.StatusOK {
		t.Fatalf("design: status %d", code)
	}
	if resp.BatchSize != 1 {
		t.Errorf("batch size = %d, want 1", resp.BatchSize)
	}
}

// TestDesignServedFromWarmCache checks the cache hand-off between the
// round loop and the design batcher: after one round, a design query for a
// session agent is a pure cache hit (no new misses).
func TestDesignServedFromWarmCache(t *testing.T) {
	e := newTestServer(t, Config{})
	id := e.createSession(t)
	if code := e.do(t, "POST", "/v1/sessions/"+id+"/rounds", nil, nil); code != http.StatusOK {
		t.Fatalf("round: status %d", code)
	}
	var before SessionInfo
	if code := e.do(t, "GET", "/v1/sessions/"+id, nil, &before); code != http.StatusOK {
		t.Fatalf("info: status %d", code)
	}
	q := DesignQueryRequest{AgentID: "h1"}
	if code := e.do(t, "POST", "/v1/sessions/"+id+"/design", &q, nil); code != http.StatusOK {
		t.Fatalf("design: status %d", code)
	}
	var after SessionInfo
	if code := e.do(t, "GET", "/v1/sessions/"+id, nil, &after); code != http.StatusOK {
		t.Fatalf("info: status %d", code)
	}
	if after.Cache.Misses != before.Cache.Misses {
		t.Errorf("warm design query missed the cache: misses %d -> %d", before.Cache.Misses, after.Cache.Misses)
	}
	if after.Cache.Hits <= before.Cache.Hits {
		t.Errorf("warm design query did not hit the cache: hits %d -> %d", before.Cache.Hits, after.Cache.Hits)
	}
}
