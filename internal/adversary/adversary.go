// Package adversary implements the paper's future-work direction (§VII):
// "more sophisticated malicious workers or collusive malicious workers",
// and studies how the dynamic contract copes with them.
//
// The paper's malicious workers are myopic: each round they best-respond
// to the posted contract. Real manipulation campaigns are strategic —
// they build reputation before attacking, or alternate attack and sleep
// phases to dodge detectors. This package models such strategies as
// pluggable effort policies, and pairs them with the adaptive defense: an
// online reputation.Tracker that re-estimates each worker's malice
// probability and accuracy between rounds, so the next round's contracts
// (and Eq. (5) weights) reprice the attacker.
package adversary

import (
	"context"
	"errors"
	"fmt"
	"math"

	"dyncontract/internal/contract"
	"dyncontract/internal/effort"
	"dyncontract/internal/platform"
	"dyncontract/internal/reputation"
	"dyncontract/internal/worker"
)

// ErrBadScenario is returned when a scenario fails validation.
var ErrBadScenario = errors.New("adversary: invalid scenario")

// Strategy decides a worker's effort each round — possibly deviating from
// the myopic best response the paper assumes.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Effort picks the round's effort level given the posted contract.
	Effort(round int, a *worker.Agent, c *contract.PiecewiseLinear, part effort.Partition) (float64, error)
	// Attacking reports whether the strategy is in an attack phase this
	// round (drives the observable review behaviour: attack rounds
	// produce promotional, inaccurate reviews).
	Attacking(round int) bool
}

// Myopic is the paper's assumption: exact best response every round.
type Myopic struct{}

var _ Strategy = Myopic{}

// Name implements Strategy.
func (Myopic) Name() string { return "myopic" }

// Effort implements Strategy.
func (Myopic) Effort(_ int, a *worker.Agent, c *contract.PiecewiseLinear, part effort.Partition) (float64, error) {
	resp, err := a.BestResponse(c, part)
	if err != nil {
		return 0, err
	}
	return resp.Effort, nil
}

// Attacking implements Strategy: myopic workers never mount overt attacks.
func (Myopic) Attacking(int) bool { return false }

// InfluenceMax always maximizes influence: it pushes effort to the feasible
// maximum to pump feedback, ignoring the pay-vs-effort tradeoff (a funded
// campaign that values reach above wages).
type InfluenceMax struct{}

var _ Strategy = InfluenceMax{}

// Name implements Strategy.
func (InfluenceMax) Name() string { return "influence-max" }

// Effort implements Strategy.
func (InfluenceMax) Effort(_ int, a *worker.Agent, _ *contract.PiecewiseLinear, part effort.Partition) (float64, error) {
	return maxFeasibleEffort(a, part), nil
}

// Attacking implements Strategy.
func (InfluenceMax) Attacking(int) bool { return true }

// OnOff alternates attack and sleep phases: Duty attack rounds followed by
// Period−Duty myopic rounds, repeating. The classic detector-evasion
// pattern.
type OnOff struct {
	// Period is the cycle length (≥ 1).
	Period int
	// Duty is the number of attacking rounds per cycle (0 ≤ Duty ≤ Period).
	Duty int
}

var _ Strategy = OnOff{}

// Name implements Strategy.
func (s OnOff) Name() string { return fmt.Sprintf("on-off(%d/%d)", s.Duty, s.Period) }

// Attacking implements Strategy.
func (s OnOff) Attacking(round int) bool {
	if s.Period <= 0 {
		return false
	}
	return round%s.Period < s.Duty
}

// Effort implements Strategy.
func (s OnOff) Effort(round int, a *worker.Agent, c *contract.PiecewiseLinear, part effort.Partition) (float64, error) {
	if s.Attacking(round) {
		return maxFeasibleEffort(a, part), nil
	}
	return Myopic{}.Effort(round, a, c, part)
}

// Camouflage plays honest (myopic, suppressing the influence motive) until
// round Reveal, then attacks every round — the reputation-building
// pattern.
type Camouflage struct {
	// Reveal is the first attacking round.
	Reveal int
}

var _ Strategy = Camouflage{}

// Name implements Strategy.
func (s Camouflage) Name() string { return fmt.Sprintf("camouflage(%d)", s.Reveal) }

// Attacking implements Strategy.
func (s Camouflage) Attacking(round int) bool { return round >= s.Reveal }

// Effort implements Strategy.
func (s Camouflage) Effort(round int, a *worker.Agent, c *contract.PiecewiseLinear, part effort.Partition) (float64, error) {
	if s.Attacking(round) {
		return maxFeasibleEffort(a, part), nil
	}
	// Behave like an honest worker: best-respond with the influence
	// motive suppressed.
	masked := *a
	masked.Omega = 0
	masked.Class = worker.Honest
	resp, err := masked.BestResponse(c, part)
	if err != nil {
		return 0, err
	}
	return resp.Effort, nil
}

// maxFeasibleEffort returns min(mδ, apex of ψ).
func maxFeasibleEffort(a *worker.Agent, part effort.Partition) float64 {
	y := part.YMax()
	if apex := a.Psi.Apex(); apex < y {
		y = apex
	}
	return y
}

// Scenario couples a population with per-agent strategies and an optional
// adaptive defense.
type Scenario struct {
	// Pop is the worker population (weights/malice probabilities are
	// mutated in place when Tracker is set).
	Pop *platform.Population
	// Strategies maps agent IDs to strategies; unmapped agents are
	// Myopic.
	Strategies map[string]Strategy
	// Tracker, when non-nil, re-estimates weights and malice
	// probabilities between rounds (the adaptive defense). When nil the
	// requester keeps its round-0 beliefs (the static defense).
	Tracker *reputation.Tracker
	// AttackDist and CleanDist are the accuracy distances |l − l̄| the
	// tracker observes during attack and normal rounds.
	AttackDist, CleanDist float64
}

// Validate checks the scenario.
func (sc *Scenario) Validate() error {
	if sc.Pop == nil {
		return fmt.Errorf("nil population: %w", ErrBadScenario)
	}
	if err := sc.Pop.Validate(); err != nil {
		return err
	}
	ids := make(map[string]bool, len(sc.Pop.Agents))
	for _, a := range sc.Pop.Agents {
		ids[a.ID] = true
	}
	for id := range sc.Strategies {
		if !ids[id] {
			return fmt.Errorf("strategy for unknown agent %q: %w", id, ErrBadScenario)
		}
	}
	if sc.AttackDist < 0 || sc.CleanDist < 0 || math.IsNaN(sc.AttackDist) || math.IsNaN(sc.CleanDist) {
		return fmt.Errorf("negative distances: %w", ErrBadScenario)
	}
	return nil
}

// Run simulates the scenario for the given rounds under the policy,
// wiring strategies into the platform's Responder hook and (when a tracker
// is present) refreshing weights through the Drift hook.
func (sc *Scenario) Run(ctx context.Context, pol platform.Policy, rounds int) ([]platform.Round, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	attackDist := sc.AttackDist
	if attackDist == 0 {
		attackDist = 2.5
	}
	cleanDist := sc.CleanDist
	if cleanDist == 0 {
		cleanDist = 0.3
	}

	partners := make(map[string]int, len(sc.Pop.Agents))
	for _, a := range sc.Pop.Agents {
		if a.Size > 1 {
			partners[a.ID] = a.Size - 1
		}
	}

	opts := platform.Options{
		Responder: func(round int, a *worker.Agent, c *contract.PiecewiseLinear, part effort.Partition) (float64, error) {
			strat, ok := sc.Strategies[a.ID]
			if !ok {
				strat = Myopic{}
			}
			return strat.Effort(round, a, c, part)
		},
	}
	if sc.Tracker != nil {
		opts.Observer = func(round platform.Round) {
			obs := make([]reputation.Observation, 0, len(round.Outcomes))
			for _, oc := range round.Outcomes {
				if oc.Excluded {
					continue
				}
				attacking := false
				if strat, ok := sc.Strategies[oc.AgentID]; ok {
					attacking = strat.Attacking(round.Index)
				}
				dist := cleanDist
				if attacking {
					dist = attackDist
				}
				obs = append(obs, reputation.Observation{
					WorkerID:    oc.AgentID,
					ReviewScore: dist, // encode distance; tracker uses |score − expert|
					ExpertScore: 0,
					Promotional: attacking,
					Partners:    partners[oc.AgentID],
				})
			}
			// Observe cannot fail here: IDs are non-empty and scores
			// finite by construction.
			_ = sc.Tracker.Observe(obs)
		}
		opts.Drift = func(round int, pop *platform.Population) {
			if round == 0 {
				return // no observations yet; keep initial beliefs
			}
			for _, a := range pop.Agents {
				w, err := sc.Tracker.Weight(a.ID)
				if err != nil {
					continue // keep the previous weight on estimator error
				}
				pop.Weights[a.ID] = w
				pop.MaliceProb[a.ID] = sc.Tracker.MaliceProb(a.ID)
			}
		}
	}
	return platform.Simulate(ctx, sc.Pop, pol, rounds, opts)
}
