package obs

import (
	"flag"
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"strings"

	"dyncontract/internal/spans"
	"dyncontract/internal/telemetry"
)

// TraceFlags is the standard tracing flag block (-trace, -trace-sample,
// -trace-out), shared by contractd, platformsim, and experiments the way
// Flags shares the metrics block. Register it, parse, then Build a
// tracer; Export writes the retained traces out on exit.
type TraceFlags struct {
	// Trace enables span tracing (off by default — the recorder is the
	// on/off switch, per the spans package's nil-recorder-is-off rule).
	Trace bool
	// Sample is the head-sampling fraction in [0, 1]; 1 traces every
	// request/run.
	Sample float64
	// Out, when non-empty, receives the retained traces on Export: a
	// .json path gets Chrome trace_event JSON (open in Perfetto or
	// chrome://tracing), anything else gets JSONL (one trace per line,
	// the telemetry sink convention).
	Out string
	// Recent / SlowN size the recorder's two retention windows; 0 keeps
	// the spans package defaults.
	Recent, SlowN int
}

// Register installs the flag block on fs as -trace, -trace-sample, and
// -trace-out.
func (f *TraceFlags) Register(fs *flag.FlagSet) {
	f.RegisterNamed(fs, "trace")
}

// RegisterNamed is Register with the enable flag under a different name —
// for CLIs where -trace already means something else (experiments' trace
// file input). The sample and output flags keep their standard names.
func (f *TraceFlags) RegisterNamed(fs *flag.FlagSet, enable string) {
	fs.BoolVar(&f.Trace, enable, false, "record execution spans (see /debug/traces and -trace-out)")
	fs.Float64Var(&f.Sample, "trace-sample", 1, "head-sampling fraction of traces to record, in [0, 1]")
	fs.StringVar(&f.Out, "trace-out", "", "write retained traces here on exit (.json = Chrome trace_event for Perfetto, else JSONL)")
}

// Enabled reports whether tracing was requested (-trace, or an output
// path, which implies it).
func (f *TraceFlags) Enabled() bool { return f.Trace || f.Out != "" }

// Build constructs the tracer and its recorder, or (nil, nil) when
// tracing is off — both results are safe to pass around either way
// (nil-is-off everywhere downstream).
func (f *TraceFlags) Build() (*spans.Tracer, *spans.Recorder) {
	if !f.Enabled() {
		return nil, nil
	}
	rec := spans.NewRecorder(f.Recent, f.SlowN)
	return spans.New(spans.Config{Sample: f.Sample, Recorder: rec}), rec
}

// Export writes the recorder's retained traces (recent ∪ slowest, recent
// first, deduplicated by ID) to -trace-out. Without an output path or a
// recorder it is a no-op.
func (f *TraceFlags) Export(rec *spans.Recorder) error {
	if f.Out == "" || rec == nil {
		return nil
	}
	traces := retained(rec)
	file, err := os.Create(f.Out)
	if err != nil {
		return fmt.Errorf("obs: create trace output: %w", err)
	}
	if strings.HasSuffix(f.Out, ".json") {
		err = spans.WriteChrome(file, traces)
	} else {
		err = spans.WriteJSONL(file, traces)
	}
	if cerr := file.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("obs: write traces: %w", err)
	}
	return nil
}

// retained merges the recorder's recent and slowest windows, recent
// first, dropping traces retained by both.
func retained(rec *spans.Recorder) []spans.Trace {
	recent := rec.Recent()
	seen := make(map[spans.TraceID]bool, len(recent))
	for _, tr := range recent {
		seen[tr.ID] = true
	}
	out := recent
	for _, tr := range rec.Slowest() {
		if !seen[tr.ID] {
			out = append(out, tr)
		}
	}
	return out
}

// traceHandler serves GET /debug/traces from a recorder:
//
//	/debug/traces                    retained traces (recent ∪ slowest)
//	/debug/traces?which=recent       recent window only
//	/debug/traces?which=slowest      slowest-N window only
//	/debug/traces?id=<request id>    one trace, looked up by the literal
//	                                 trace ID or by the same X-Request-Id
//	                                 string the client sent (404 if gone)
//	/debug/traces?format=chrome      Chrome trace_event JSON (Perfetto);
//	                                 default is JSONL, one trace per line
func traceHandler(rec *spans.Recorder) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var traces []spans.Trace
		if idStr := r.URL.Query().Get("id"); idStr != "" {
			id, ok := spans.ParseTraceHeader(idStr)
			if !ok {
				http.Error(w, "empty trace id", http.StatusBadRequest)
				return
			}
			tr, found := rec.Lookup(id)
			if !found {
				http.Error(w, "trace "+id.String()+" not retained", http.StatusNotFound)
				return
			}
			traces = []spans.Trace{tr}
		} else {
			switch r.URL.Query().Get("which") {
			case "", "all":
				traces = retained(rec)
			case "recent":
				traces = rec.Recent()
			case "slowest":
				traces = rec.Slowest()
			default:
				http.Error(w, "unknown which (want recent, slowest, or all)", http.StatusBadRequest)
				return
			}
		}
		switch r.URL.Query().Get("format") {
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			_ = spans.WriteChrome(w, traces)
		case "", "jsonl":
			w.Header().Set("Content-Type", "application/jsonl")
			_ = spans.WriteJSONL(w, traces)
		default:
			http.Error(w, "unknown format (want jsonl or chrome)", http.StatusBadRequest)
		}
	}
}

// HandlerWith is Handler plus span tracing: with a non-nil recorder the
// retained traces are served under GET /debug/traces (see traceHandler
// for the query parameters). A nil recorder serves metrics and pprof
// only — byte-compatible with Handler.
func HandlerWith(reg *telemetry.Registry, rec *spans.Recorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = telemetry.WriteText(w, reg.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	if rec != nil {
		mux.HandleFunc("GET /debug/traces", traceHandler(rec))
	}
	return mux
}
