// Batched structure-of-arrays solve of the §IV-C candidate-contract
// algorithm — the cold design path.
//
// Design builds m candidate contracts through contract.Builder, freezes
// each as a PiecewiseLinear, and asks worker.BestResponse to search it
// through the general-contract machinery (binary-searched Eval per probe
// point). That is m allocations and m generic searches per design, all to
// pick one winner. The batched solve exploits two structural facts:
//
//  1. The Eq. (39)–(40) slope recursion does not depend on the target
//     interval k: candidate ξ^(k)'s slopes are the k-prefix of one shared
//     chain α_1..α_m followed by zeros, so its compensation knots are the
//     shared prefix C_0..C_k continued flat at C_k. One O(m) chain pass
//     serves all m candidates.
//  2. The worker's best response probes a fixed point set (interval
//     edges and per-piece interior stationary points), and every probe
//     evaluates the candidate via the knot arrays alone. Evaluating
//     candidate k at index i just reads C_{min(i,k)} — no contract value
//     is ever needed.
//
// DesignInto therefore runs the whole solve over flat float64 slices held
// in a reusable Scratch and materializes exactly one PiecewiseLinear: the
// argmax winner (all m candidates when Config.WantCandidates asks for the
// diagnostics). Every arithmetic expression mirrors the scalar path
// token for token — same evaluation order, same binary search, same
// lexicographic (utility, −effort) tie-break — so results are
// bit-identical to Design; TestDesignIntoMatchesDesign and the fuzz
// harness in batch_test.go pin this. Anything the fast path cannot
// reproduce exactly (non-finite chain values, degenerate knots, a
// participation lift that fails to secure participation) falls back to
// the scalar Design, which reproduces the identical error.
package core

import (
	"fmt"
	"math"

	"dyncontract/internal/contract"
	"dyncontract/internal/effort"
	"dyncontract/internal/worker"
)

// Scratch holds the flat working arrays of the batched solve. A zero
// Scratch is ready to use; buffers grow to the largest partition seen and
// are then reused, so a long-lived Scratch makes repeated designs
// allocation-free up to the winner contract itself. A Scratch is
// single-owner: one solve at a time (the solver pool keeps one per
// worker, the sharded engine one per shard).
type Scratch struct {
	knots  []float64 // d_l = ψ(lδ), l = 0..m
	alphas []float64 // α_1..α_m, the shared slope chain of Eq. (39)–(40)
	comps  []float64 // C_0..C_m, compensation knots under the full chain
	lifted []float64 // participation-lifted compensations, one candidate at a time

	// Knot cache: ψ(lδ) is a pure function of (partition, ψ), so
	// consecutive solves sharing both — the common case when a batch
	// groups subproblems on one partition — skip recomputing the array.
	// Recomputation would produce the same bits, so the cache never
	// affects results.
	knotPart      effort.Partition
	knotPsi       effort.Quadratic
	knotsOK       bool
	knotsMonotone bool

	uses      uint64
	fallbacks uint64
}

// Uses reports the number of designs this scratch has served — the
// scratch-reuse signal surfaced on engine.shard.design spans.
func (s *Scratch) Uses() uint64 { return s.uses }

// Fallbacks reports the number of designs this scratch routed to the
// scalar Design path — degenerate knots, a non-finite slope chain, or a
// participation lift the batched solve could not reproduce exactly. A
// count tracking Uses means the population defeats the batched path
// wholesale; the solver surfaces the delta as
// dyncontract_solver_scalar_fallbacks_total.
func (s *Scratch) Fallbacks() uint64 { return s.fallbacks }

// fallback delegates one design to the scalar path, counting it — every
// site where the batched solve cannot reproduce the scalar result (or its
// error) bit for bit funnels through here.
func (s *Scratch) fallback(a *worker.Agent, cfg Config) (*Result, error) {
	s.fallbacks++
	return Design(a, cfg)
}

// prepare sizes the buffers for partition part and fills the knot array
// for ψ, reusing the cached knots when (part, ψ) is unchanged.
func (s *Scratch) prepare(part effort.Partition, psi effort.Quadratic) {
	m := part.M
	if cap(s.knots) < m+1 {
		s.knots = make([]float64, m+1)
		s.alphas = make([]float64, m)
		s.comps = make([]float64, m+1)
		s.lifted = make([]float64, m+1)
		s.knotsOK = false
	}
	s.knots = s.knots[:m+1]
	s.alphas = s.alphas[:m]
	s.comps = s.comps[:m+1]
	s.lifted = s.lifted[:m+1]
	if s.knotsOK && s.knotPart == part && s.knotPsi == psi {
		return
	}
	monotone := true
	for l := 0; l <= m; l++ {
		s.knots[l] = psi.Eval(part.Edge(l))
		if math.IsNaN(s.knots[l]) || math.IsInf(s.knots[l], 0) || (l > 0 && s.knots[l] <= s.knots[l-1]) {
			monotone = false
		}
	}
	s.knotPart, s.knotPsi = part, psi
	s.knotsOK, s.knotsMonotone = true, monotone
}

// chain runs the Eq. (39)–(40) slope recursion once over the full
// partition, writing α_1..α_m and the compensation knots C_0..C_m built
// exactly as contract.Builder.AppendSlope would (x_l = x_{l−1} +
// α_l·(d_l − d_{l−1})). It returns the 1-based index of the first clamped
// piece (0 when no slope was clamped) and ok = false when any produced
// value is non-finite — the caller then falls back to the scalar path,
// which reproduces the matching construction error.
func (s *Scratch) chain(a *worker.Agent, part effort.Partition) (firstClamp int, ok bool) {
	delta := part.Delta
	r1, r2 := a.Psi.R1, a.Psi.R2
	beta, omega := a.Beta, a.Omega

	// Seed at the Case I/III boundary of a virtual piece 0, exactly as
	// buildCandidate does: α₀ = β/ψ′(0) − ω = β/r₁ − ω.
	alphaPrev := beta/r1 - omega
	s.comps[0] = 0
	ok = true
	for l := 1; l <= part.M; l++ {
		gPrev := r1 + 2*r2*delta*float64(l-1) // ψ′((l−1)δ) > 0
		gCur := r1 + 2*r2*delta*float64(l)    // ψ′(lδ) > 0
		eps := 4 * beta * r2 * r2 * delta * delta / (gPrev * gPrev * gCur)
		alpha := beta*beta/((alphaPrev+omega)*gPrev*gPrev) + eps - omega
		if alpha < 0 {
			alpha = 0
			if firstClamp == 0 {
				firstClamp = l
			}
		}
		alphaPrev = alpha
		s.alphas[l-1] = alpha
		s.comps[l] = s.comps[l-1] + alpha*(s.knots[l]-s.knots[l-1])
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.IsNaN(s.comps[l]) || math.IsInf(s.comps[l], 0) {
			ok = false
		}
	}
	return firstClamp, ok
}

// evalCandidate evaluates candidate k's contract at feedback q over the
// shared arrays: the candidate's compensation at knot index i is
// comps[min(i, k)] (the shared prefix continued flat at C_k), and the
// interpolation replicates contract.PiecewiseLinear.Eval expression for
// expression — same boundary clamps, same binary search, same secant
// slope — so the value is bit-identical to evaluating the materialized
// contract. Flat pieces (i > k) produce a secant of exactly 0 and the
// value C_k exactly. Pass k = m for an already-flattened comps array
// (the lifted buffer).
func evalCandidate(knots, comps []float64, k int, q float64) float64 {
	m := len(knots) - 1
	if q <= knots[0] {
		return comps[0]
	}
	if q >= knots[m] {
		return comps[min(m, k)]
	}
	lo, hi := 0, m
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if knots[mid] <= q {
			lo = mid
		} else {
			hi = mid
		}
	}
	cLo, cHi := comps[min(lo, k)], comps[min(hi, k)]
	alpha := (cHi - cLo) / (knots[hi] - knots[lo])
	return cLo + alpha*(q-knots[lo])
}

// bestResponse is worker.Agent.BestResponse over the SoA arrays: the same
// probe points in the same order (y = 0, every interval's edges, every
// interval's interior stationary point), the same utility expression, the
// same lexicographic (utility, −effort) replacement rule. The per-call
// agent validation is hoisted — DesignInto validated the agent over
// [0, mδ] once, which implies validity over every smaller cap. Unlike
// the worker method this returns the raw best (no participation check):
// the caller needs the undeclined utility to size the participation
// lift, mirroring the scalar path's reservation-free re-response.
func bestResponse(a *worker.Agent, part effort.Partition, knots, comps []float64, k int) worker.Response {
	yCap := part.YMax()
	if apex := a.Psi.Apex(); apex < yCap {
		yCap = apex
	}

	var best worker.Response
	bestSet := false
	consider := func(y float64) {
		if y < 0 || y > yCap || math.IsNaN(y) {
			return
		}
		q := a.Psi.Eval(y)
		comp := evalCandidate(knots, comps, k, q)
		u := comp - a.Beta*y + a.Omega*q
		if !bestSet || u > best.Utility ||
			// Tie-break toward lower effort, as BestResponse does.
			(u == best.Utility && y < best.Effort) {
			best = worker.Response{
				Effort:       y,
				Feedback:     q,
				Compensation: comp,
				Utility:      u,
				Interval:     part.IntervalOf(y),
			}
			bestSet = true
		}
	}

	consider(0)
	for l := 1; l <= part.M; l++ {
		lo := part.Edge(l - 1)
		hi := part.Edge(l)
		if lo > yCap {
			break
		}
		if hi > yCap {
			hi = yCap
		}
		consider(lo)
		consider(hi)
		// Interior stationary point ψ′(y) = β/(α_l + ω) with α_l the
		// piece's secant slope, recomputed from the knot values exactly as
		// pieceSlope does (the secant can differ from the chain's α_l in
		// the last ulp, and the last ulp is the contract here).
		qLo, qHi := a.Psi.Eval(lo), a.Psi.Eval(hi)
		var alpha float64
		if qHi > qLo {
			alpha = (evalCandidate(knots, comps, k, qHi) - evalCandidate(knots, comps, k, qLo)) / (qHi - qLo)
		}
		denom := alpha + a.Omega
		if denom > 0 {
			if y, ok := a.Psi.InverseDeriv(a.Beta / denom); ok && y > lo && y < hi {
				consider(y)
			}
		}
	}
	return best
}

// materialize allocates candidate k's contract from the shared arrays,
// adding lift to every compensation knot — the same two steps the scalar
// path performs (flatten via the builder, then shift the copied comps),
// so the resulting knot/comp values are bit-identical.
func (s *Scratch) materialize(k int, lift float64) (*contract.PiecewiseLinear, error) {
	m := len(s.knots) - 1
	comps := make([]float64, m+1)
	for i := range comps {
		comps[i] = s.comps[min(i, k)]
		if lift != 0 {
			comps[i] += lift
		}
	}
	return contract.New(s.knots, comps)
}

// DesignInto is Design over a reusable Scratch: one batched
// structure-of-arrays solve that validates once, runs the slope recursion
// once for all m candidates, best-responds analytically over the shared
// arrays, and materializes only the winning contract (every candidate
// when cfg.WantCandidates is set). Results — contract knots and
// compensations, KOpt, response, bounds, diagnostics — are bit-identical
// to Design's. s may be nil (a temporary scratch is used); otherwise the
// caller must not share s between concurrent solves.
func DesignInto(a *worker.Agent, cfg Config, s *Scratch) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := a.Validate(cfg.Part.YMax()); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if s == nil {
		s = &Scratch{}
	}
	s.uses++
	s.prepare(cfg.Part, a.Psi)
	if !s.knotsMonotone {
		// Degenerate feedback knots: the scalar path fails in the builder's
		// validation with the precise error; reproduce it verbatim.
		return s.fallback(a, cfg)
	}
	firstClamp, ok := s.chain(a, cfg.Part)
	if !ok {
		return s.fallback(a, cfg)
	}

	m := cfg.Part.M
	var candidates []Candidate
	if cfg.WantCandidates {
		candidates = make([]Candidate, 0, m)
	}
	bestK := 0
	var bestResp worker.Response
	var bestRU, bestLift float64
	for k := 1; k <= m; k++ {
		resp := bestResponse(a, cfg.Part, s.knots, s.comps, k)
		lift := 0.0
		if resp.Utility < a.Reservation {
			// Participation lift, mirroring buildCandidate: the shortfall is
			// measured against the reservation-free response, which runs the
			// identical search and so has exactly resp's utility — except
			// that a negative best utility makes even the free worker
			// decline, and a declined response reports the zero value.
			freeU := resp.Utility
			if freeU < 0 {
				freeU = 0
			}
			lift = a.Reservation - freeU + participationSlack
			if math.IsNaN(lift) || math.IsInf(lift, 0) {
				return s.fallback(a, cfg)
			}
			for i := 0; i <= m; i++ {
				s.lifted[i] = s.comps[min(i, k)] + lift
			}
			if math.IsInf(s.lifted[m], 0) {
				return s.fallback(a, cfg)
			}
			resp = bestResponse(a, cfg.Part, s.knots, s.lifted, m)
			if resp.Utility < a.Reservation {
				// The scalar path errors here ("lift ... failed to secure
				// participation"); let it produce the identical error.
				return s.fallback(a, cfg)
			}
		}
		ru := cfg.W*resp.Feedback - cfg.Mu*resp.Compensation
		if cfg.WantCandidates {
			c, err := s.materialize(k, lift)
			if err != nil {
				return s.fallback(a, cfg)
			}
			candidates = append(candidates, Candidate{
				K:                 k,
				Contract:          c,
				Response:          resp,
				RequesterUtility:  ru,
				Clamped:           firstClamp != 0 && firstClamp <= k,
				ParticipationLift: lift,
			})
		}
		// Requester-utility argmax with strict >, ties to smaller k —
		// identical to the scalar selection loop.
		if bestK == 0 || ru > bestRU {
			bestK, bestResp, bestRU, bestLift = k, resp, ru, lift
		}
	}

	res := &Result{
		Agent:            a,
		KOpt:             bestK,
		Response:         bestResp,
		RequesterUtility: bestRU,
	}
	if cfg.WantCandidates {
		res.Candidates = candidates
		res.Contract = candidates[bestK-1].Contract
	} else {
		c, err := s.materialize(bestK, bestLift)
		if err != nil {
			return s.fallback(a, cfg)
		}
		res.Contract = c
	}
	res.UpperBound = UpperBound(a, cfg)
	res.LowerBound = LowerBound(a, cfg, bestK)
	return res, nil
}

// BatchItem is one subproblem of a DesignBatch call.
type BatchItem struct {
	// Agent is the worker or community meta-worker to design for.
	Agent *worker.Agent
	// Config carries the partition, μ, and this agent's requester weight.
	Config Config
}

// BatchOutcome pairs one batch item with its result or error.
type BatchOutcome struct {
	// Result is the designed contract (nil when Err != nil).
	Result *Result
	// Err is the item's failure, if any.
	Err error
}

// DesignBatch solves every item in order over one shared Scratch, writing
// outcomes index-aligned with items (len(out) must cover len(items)).
// Items sharing a (partition, ψ) pair with their predecessor reuse the
// scratch's knot array on top of the chain/response buffers, so a batch
// grouped by partition — the solver's fan-out feeds shards and
// archetype-deduplicated rounds exactly that way — runs the whole cold
// path without per-candidate allocation. Per-item results are
// bit-identical to calling Design on each item.
func DesignBatch(items []BatchItem, out []BatchOutcome, s *Scratch) error {
	if len(out) < len(items) {
		return fmt.Errorf("core: batch outcomes buffer %d shorter than %d items", len(out), len(items))
	}
	if s == nil {
		s = &Scratch{}
	}
	for i := range items {
		res, err := DesignInto(items[i].Agent, items[i].Config, s)
		out[i] = BatchOutcome{Result: res, Err: err}
	}
	return nil
}
