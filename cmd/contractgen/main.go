// Command contractgen designs and prints a single worker's dynamic
// contract from the command line — the smallest possible window into the
// §IV-C algorithm.
//
// Usage:
//
//	contractgen [-class honest|malicious] [-r2 v] [-r1 v] [-r0 v]
//	            [-beta v] [-omega v] [-mu v] [-w v] [-m n] [-json]
//
// The effort function is ψ(y) = r2·y² + r1·y + r0 (r2 < 0, r1 > 0); the
// partition spans [0, yMax] where yMax keeps ψ increasing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"dyncontract/internal/core"
	"dyncontract/internal/effort"
	"dyncontract/internal/worker"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "contractgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("contractgen", flag.ContinueOnError)
	var (
		class   = fs.String("class", "honest", "worker class: honest or malicious")
		r2      = fs.Float64("r2", -0.02, "effort function curvature (must be < 0)")
		r1      = fs.Float64("r1", 2, "effort function slope at zero (must be > 0)")
		r0      = fs.Float64("r0", 1, "effort function intercept")
		beta    = fs.Float64("beta", 1, "worker effort-cost weight")
		omega   = fs.Float64("omega", 0.5, "malicious feedback weight (ignored for honest)")
		mu      = fs.Float64("mu", 1, "requester compensation weight")
		w       = fs.Float64("w", 1, "requester feedback weight for this worker")
		m       = fs.Int("m", 10, "number of effort intervals")
		asJSON  = fs.Bool("json", false, "emit the result as JSON")
		yMaxArg = fs.Float64("ymax", 0, "effort range (0 = 80% of the psi apex)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	yMax := *yMaxArg
	if yMax <= 0 {
		yMax = 0.8 * (-*r1 / (2 * *r2))
	}
	psi, err := effort.NewQuadratic(*r2, *r1, *r0, yMax)
	if err != nil {
		return err
	}
	part, err := effort.NewPartition(*m, yMax/float64(*m))
	if err != nil {
		return err
	}

	var agent *worker.Agent
	switch *class {
	case "honest":
		agent, err = worker.NewHonest("cli-worker", psi, *beta, part.YMax())
	case "malicious":
		agent, err = worker.NewMalicious("cli-worker", psi, *beta, *omega, part.YMax())
	default:
		return fmt.Errorf("unknown class %q (want honest or malicious)", *class)
	}
	if err != nil {
		return err
	}

	res, err := core.Design(agent, core.Config{Part: part, Mu: *mu, W: *w})
	if err != nil {
		return err
	}

	if *asJSON {
		payload := struct {
			KOpt             int             `json:"k_opt"`
			Effort           float64         `json:"effort"`
			Feedback         float64         `json:"feedback"`
			Compensation     float64         `json:"compensation"`
			RequesterUtility float64         `json:"requester_utility"`
			LowerBound       float64         `json:"lower_bound"`
			UpperBound       float64         `json:"upper_bound"`
			Contract         json.RawMessage `json:"contract"`
		}{
			KOpt:             res.KOpt,
			Effort:           res.Response.Effort,
			Feedback:         res.Response.Feedback,
			Compensation:     res.Response.Compensation,
			RequesterUtility: res.RequesterUtility,
			LowerBound:       res.LowerBound,
			UpperBound:       res.UpperBound,
		}
		raw, err := json.Marshal(res.Contract)
		if err != nil {
			return err
		}
		payload.Contract = raw
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(payload)
	}

	fmt.Fprintf(out, "worker: %s (%s), psi: %v\n", agent.ID, agent.Class, psi)
	fmt.Fprintf(out, "partition: m=%d, delta=%.4g, yMax=%.4g\n", part.M, part.Delta, part.YMax())
	fmt.Fprintf(out, "designed contract (feedback -> compensation knots):\n")
	for l := 0; l <= res.Contract.Pieces(); l++ {
		fmt.Fprintf(out, "  d[%2d]=%8.4f  x[%2d]=%8.4f\n", l, res.Contract.Knot(l), l, res.Contract.Comp(l))
	}
	fmt.Fprintf(out, "target interval k_opt=%d\n", res.KOpt)
	fmt.Fprintf(out, "predicted best response: effort=%.4f feedback=%.4f compensation=%.4f\n",
		res.Response.Effort, res.Response.Feedback, res.Response.Compensation)
	fmt.Fprintf(out, "requester utility=%.4f (Theorem 4.1 bounds: [%.4f, %.4f])\n",
		res.RequesterUtility, res.LowerBound, res.UpperBound)
	return nil
}
