package telemetry

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; all methods are safe for concurrent use and tolerate a
// nil receiver (a nil counter is a no-op that reads 0), so instrumented
// code can hold unresolved handles without branching.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down (a level, not a
// count). The zero value reads 0 and is ready to use; all methods are
// safe for concurrent use and nil-receiver-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta to the gauge (CAS loop; lock-free).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed uniform-width bins over
// [lo, hi), following exactly the bucket-boundary convention of
// internal/stats.Histogram: bin i covers [lo+i·width, lo+(i+1)·width) and
// out-of-range observations are clamped into the first/last bin, so
// nothing is silently dropped and a telemetry snapshot's bin counts agree
// with a stats.NewHistogram over the same samples. NaN observations are
// ignored (they have no bin). The exact Sum and Count are tracked
// alongside the bins, so means are not quantized.
//
// All methods are safe for concurrent use and nil-receiver-safe.
type Histogram struct {
	lo, hi, width float64
	counts        []atomic.Uint64
	count         atomic.Uint64
	sumBits       atomic.Uint64
	ex            atomic.Pointer[exemplar]
}

// exemplar links a histogram's worst observation to an external identity
// (in this repo: the trace ID of the slowest sampled request), so a hot
// latency histogram points straight at a trace to open.
type exemplar struct {
	value float64
	label string
}

// NewHistogram builds an empty histogram with the given number of uniform
// bins over [lo, hi). It mirrors stats.NewHistogram's validation: bins
// must be positive and lo < hi (both finite).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("histogram: bins=%d must be positive", bins)
	}
	if !(lo < hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return nil, fmt.Errorf("histogram: invalid range [%v, %v)", lo, hi)
	}
	return &Histogram{
		lo:     lo,
		hi:     hi,
		width:  (hi - lo) / float64(bins),
		counts: make([]atomic.Uint64, bins),
	}, nil
}

// Observe records one observation. Zero allocations; safe for concurrent
// use; a nil histogram or a NaN value is a no-op.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	idx := int((v - h.lo) / h.width)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one observation like Observe and, when v is the
// largest value labeled so far, retains (v, label) as the histogram's
// exemplar — a max-keeping CAS, so under concurrent observation the worst
// sample's label wins. An empty label degrades to a plain Observe; nil
// histogram and NaN are no-ops as everywhere.
func (h *Histogram) ObserveExemplar(v float64, label string) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.Observe(v)
	if label == "" {
		return
	}
	for {
		old := h.ex.Load()
		if old != nil && old.value >= v {
			return
		}
		if h.ex.CompareAndSwap(old, &exemplar{value: v, label: label}) {
			return
		}
	}
}

// Count returns the number of observations recorded so far.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the exact sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Snapshot captures the histogram's bins and totals. The per-bin counts
// are read without a global lock, so a snapshot taken during concurrent
// observation is a consistent-enough view (each bin is individually
// atomic); Count may momentarily exceed the bin total by in-flight
// observations. A nil histogram snapshots empty.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Lo:     h.lo,
		Hi:     h.hi,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if ex := h.ex.Load(); ex != nil {
		s.ExemplarValue = ex.value
		s.ExemplarLabel = ex.label
	}
	return s
}

// Timer measures elapsed wall time using Go's monotonic clock reading
// (time.Now captures one; time.Time.Sub uses it when both operands carry
// one), so timings are immune to wall-clock steps. The zero Timer is not
// started — use StartTimer.
type Timer struct {
	start time.Time
}

// StartTimer starts a timer now.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Elapsed returns the time since the timer started.
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }

// Seconds returns the elapsed time in seconds — the unit every _seconds
// histogram in this repo observes.
func (t Timer) Seconds() float64 { return time.Since(t.start).Seconds() }
