// Package spans is a stdlib-only execution tracer for request-scoped
// causality: trace/span IDs, context propagation, parent/child links,
// attributes, head-based sampling, a bounded in-memory recorder, and
// JSONL / Chrome trace_event exporters.
//
// The package follows the repo's nil-is-off convention end to end: a nil
// *Tracer mints no spans, a nil *Span swallows every method, and a Tracer
// with no Recorder is off. Instrumented code therefore never branches on
// "is tracing enabled" — it calls through unconditionally and the nil
// receivers make the disabled path free. The one deliberate cost on the
// sampled-out path is trace-ID generation (so X-Request-Id can still be
// echoed to clients); everything past the head-sampling branch is skipped
// without touching the heap.
//
// Concurrency contract: distinct spans may be started, annotated, and
// ended from distinct goroutines freely (the engine's shard fan-out does
// exactly that), but a single span's SetAttr/SetInt/End must not race
// with each other — each span has one owning goroutine, matching how
// every caller in this repo already works. StartChild only reads the
// parent's immutable identity, so children may be started concurrently
// off one parent.
package spans

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"math"
	"math/rand/v2"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end request: 16 bytes, rendered as 32
// lowercase hex digits. The zero TraceID means "no trace".
type TraceID [16]byte

// IsZero reports whether id is the absent trace ID.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string {
	var buf [32]byte
	hex.Encode(buf[:], id[:])
	return string(buf[:])
}

// MarshalText renders the ID as hex, so JSON exports carry readable IDs.
func (id TraceID) MarshalText() ([]byte, error) {
	buf := make([]byte, 32)
	hex.Encode(buf, id[:])
	return buf, nil
}

// UnmarshalText parses the 32-hex-digit form produced by MarshalText.
func (id *TraceID) UnmarshalText(b []byte) error {
	_, err := hex.Decode(id[:], b)
	return err
}

// SpanID identifies one span within a trace. Zero means "no parent".
type SpanID uint64

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string {
	var raw [8]byte
	binary.BigEndian.PutUint64(raw[:], uint64(id))
	var buf [16]byte
	hex.Encode(buf[:], raw[:])
	return string(buf[:])
}

// MarshalText renders the ID as hex.
func (id SpanID) MarshalText() ([]byte, error) {
	var raw [8]byte
	binary.BigEndian.PutUint64(raw[:], uint64(id))
	buf := make([]byte, 16)
	hex.Encode(buf, raw[:])
	return buf, nil
}

// UnmarshalText parses the 16-hex-digit form produced by MarshalText.
func (id *SpanID) UnmarshalText(b []byte) error {
	var raw [8]byte
	if _, err := hex.Decode(raw[:], b); err != nil {
		return err
	}
	*id = SpanID(binary.BigEndian.Uint64(raw[:]))
	return nil
}

// Attr is one key/value annotation on a span. Values are strings so the
// exporters stay trivial; use Str/Int/Bool to build them.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Str builds a string attribute.
func Str(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Value: strconv.FormatInt(v, 10)} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr { return Attr{Key: key, Value: strconv.FormatBool(v)} }

// SpanData is one finished span's plain-data record: what the Recorder
// stores and the exporters serialize.
type SpanData struct {
	Trace  TraceID   `json:"trace"`
	ID     SpanID    `json:"id"`
	Parent SpanID    `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	Attrs  []Attr    `json:"attrs,omitempty"`
}

// Duration returns the span's wall time.
func (d SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }

// Span is one in-flight timed operation. All methods tolerate a nil
// receiver (no-ops), so instrumented code never branches on sampling.
type Span struct {
	tracer *Tracer
	data   SpanData
}

// TraceID returns the span's trace, or the zero TraceID on a nil span.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.data.Trace
}

// ID returns the span's ID, or zero on a nil span.
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.data.ID
}

// SetAttr annotates the span with a string attribute.
func (s *Span) SetAttr(key, value string) {
	if s != nil {
		s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Value: value})
	}
}

// SetInt annotates the span with an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s != nil {
		s.data.Attrs = append(s.data.Attrs, Int(key, v))
	}
}

// StartChild starts a child span under s. Children may be started
// concurrently off one parent; each child then belongs to the goroutine
// that started it.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tracer: s.tracer,
		data: SpanData{
			Trace:  s.data.Trace,
			ID:     s.tracer.nextSpanID(),
			Parent: s.data.ID,
			Name:   name,
			Start:  time.Now(),
		},
	}
}

// End stamps the span's end time and hands it to the recorder. End must
// be called exactly once; a nil span ignores the call.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.data.End = time.Now()
	s.tracer.rec.record(s.data)
}

// Config configures a Tracer.
type Config struct {
	// Sample is the head-sampling fraction: the deterministic share of
	// trace IDs that produce spans. Values ≥ 1 sample everything,
	// values ≤ 0 sample nothing.
	Sample float64
	// Seed seeds the trace-ID generator. Zero draws a random seed, so
	// distinct processes mint distinct IDs; fix it in tests for a
	// reproducible ID (and therefore sampling) sequence.
	Seed uint64
	// Recorder receives finished spans. Nil turns the tracer off —
	// StartRoot returns nil spans regardless of Sample.
	Recorder *Recorder
}

// Tracer mints trace IDs, makes the head-sampling decision, and starts
// root spans. A nil *Tracer is off: NewTraceID still returns usable IDs
// (zero-value generator) only on non-nil tracers, and StartRoot returns
// nil. All methods are safe for concurrent use.
type Tracer struct {
	sample   float64
	rec      *Recorder
	mu       sync.Mutex
	rng      *rand.Rand
	spanSeq  atomic.Uint64
	disabled bool
}

// New builds a Tracer. The returned tracer is off (mints nil spans) when
// cfg.Recorder is nil.
func New(cfg Config) *Tracer {
	seed := cfg.Seed
	if seed == 0 {
		var b [8]byte
		if _, err := cryptorand.Read(b[:]); err == nil {
			seed = binary.LittleEndian.Uint64(b[:])
		}
		if seed == 0 {
			seed = 1
		}
	}
	return &Tracer{
		sample:   cfg.Sample,
		rec:      cfg.Recorder,
		rng:      rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		disabled: cfg.Recorder == nil,
	}
}

// Recorder returns the tracer's recorder (nil when off).
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// NewTraceID mints a fresh non-zero trace ID from the seeded generator.
func (t *Tracer) NewTraceID() TraceID {
	if t == nil {
		return TraceID{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		var id TraceID
		binary.LittleEndian.PutUint64(id[:8], t.rng.Uint64())
		binary.LittleEndian.PutUint64(id[8:], t.rng.Uint64())
		if !id.IsZero() {
			return id
		}
	}
}

// Sampled reports the head-sampling decision for id: a pure function of
// the trace ID and the configured fraction, so every layer that sees the
// same ID agrees, and replaying an ID replays the decision.
func (t *Tracer) Sampled(id TraceID) bool {
	if t == nil || t.disabled || id.IsZero() {
		return false
	}
	return sampledAt(id, t.sample)
}

// sampledAt hashes id (FNV-1a 64) against the fraction's threshold.
func sampledAt(id TraceID, fraction float64) bool {
	if fraction >= 1 {
		return true
	}
	if fraction <= 0 {
		return false
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range id {
		h ^= uint64(b)
		h *= prime64
	}
	return h < uint64(fraction*math.MaxUint64)
}

// StartRoot starts a root span for trace id, or returns nil when the
// tracer is off or id is sampled out. The sampled-out path costs the
// Sampled branch and nothing else — no allocation.
func (t *Tracer) StartRoot(name string, id TraceID) *Span {
	if !t.Sampled(id) {
		return nil
	}
	return &Span{
		tracer: t,
		data: SpanData{
			Trace: id,
			ID:    t.nextSpanID(),
			Name:  name,
			Start: time.Now(),
		},
	}
}

// Root mints a fresh trace ID and starts a root span for it — the
// convenience entry point for CLIs that have no inbound request ID.
func (t *Tracer) Root(name string) *Span {
	if t == nil || t.disabled {
		return nil
	}
	return t.StartRoot(name, t.NewTraceID())
}

// nextSpanID allocates a process-unique span ID. Called only on sampled
// paths, from a non-nil tracer.
func (t *Tracer) nextSpanID() SpanID {
	return SpanID(t.spanSeq.Add(1))
}

// ctxKey keys the current span in a context.
type ctxKey struct{}

// ContextWith returns ctx carrying s. A nil span returns ctx unchanged —
// the sampled-out path allocates nothing.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil. The lookup is a
// plain context-chain walk: no allocation, so alloc-pinned hot paths may
// call it unconditionally.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
