#!/bin/sh
# The pre-PR gate (see ROADMAP.md). Stages run in order, failing fast with
# a clear stage name:
#
#   1. build  — go build ./... (compile errors first, not buried in vet)
#   2. gofmt  — no unformatted files
#   3. vet    — go vet ./...
#   4. test   — the full suite under the race detector
#
# Run from anywhere; exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

fail() {
	echo "FAIL at stage: $1" >&2
	exit 1
}

echo "==> [1/4] go build ./..."
go build ./... || fail build

echo "==> [2/4] gofmt"
unformatted=$(gofmt -l .) || fail gofmt
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	fail gofmt
fi

echo "==> [3/4] go vet ./..."
go vet ./... || fail vet

echo "==> [4/4] go test -race ./..."
go test -race ./... || fail test

echo "OK"
