// Package textplot renders small ASCII charts for the experiment reports:
// scatter/line charts for figure-style results (Fig. 6's convergence,
// Fig. 8's comparisons) and horizontal bar charts for distribution tables.
// Terminal-only output keeps the benchmark harness dependency-free while
// still giving figures a visual form.
package textplot

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrBadPlot is returned for unplottable input.
var ErrBadPlot = errors.New("textplot: invalid plot input")

// Series is one named line on a chart.
type Series struct {
	// Name labels the series in the legend.
	Name string
	// X and Y are the data points (equal length, ≥ 1).
	X, Y []float64
}

// markers are assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Options tunes chart rendering.
type Options struct {
	// Width and Height are the plot-area dimensions in characters
	// (default 60×16).
	Width, Height int
	// Title is printed above the chart.
	Title string
	// XLabel is printed below the x axis.
	XLabel string
}

// Chart renders the series as an ASCII scatter chart with a legend.
func Chart(series []Series, opts Options) (string, error) {
	if len(series) == 0 {
		return "", fmt.Errorf("no series: %w", ErrBadPlot)
	}
	if len(series) > len(markers) {
		return "", fmt.Errorf("%d series exceeds %d markers: %w", len(series), len(markers), ErrBadPlot)
	}
	width := opts.Width
	if width <= 0 {
		width = 60
	}
	height := opts.Height
	if height <= 0 {
		height = 16
	}
	if width < 8 || height < 4 {
		return "", fmt.Errorf("plot area %dx%d too small: %w", width, height, ErrBadPlot)
	}

	// Data bounds across all series.
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			return "", fmt.Errorf("series %q has %d x vs %d y: %w", s.Name, len(s.X), len(s.Y), ErrBadPlot)
		}
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) || math.IsInf(s.X[i], 0) || math.IsInf(s.Y[i], 0) {
				return "", fmt.Errorf("series %q has non-finite point %d: %w", s.Name, i, ErrBadPlot)
			}
			xMin, xMax = math.Min(xMin, s.X[i]), math.Max(xMax, s.X[i])
			yMin, yMax = math.Min(yMin, s.Y[i]), math.Max(yMax, s.Y[i])
		}
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := markers[si]
		for i := range s.X {
			col := int(math.Round((s.X[i] - xMin) / (xMax - xMin) * float64(width-1)))
			row := int(math.Round((s.Y[i] - yMin) / (yMax - yMin) * float64(height-1)))
			grid[height-1-row][col] = mark
		}
	}

	var b strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&b, "%s\n", opts.Title)
	}
	yLabelW := 10
	for r := 0; r < height; r++ {
		// Label the top, middle, and bottom rows with y values.
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%.4g", yMax)
		case height / 2:
			label = fmt.Sprintf("%.4g", (yMax+yMin)/2)
		case height - 1:
			label = fmt.Sprintf("%.4g", yMin)
		}
		fmt.Fprintf(&b, "%*s |%s\n", yLabelW, label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%*s +%s\n", yLabelW, "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%*s  %-*.4g%*.4g\n", yLabelW, "", width/2, xMin, width-width/2, xMax)
	if opts.XLabel != "" {
		fmt.Fprintf(&b, "%*s  %s\n", yLabelW, "", opts.XLabel)
	}
	for si, s := range series {
		fmt.Fprintf(&b, "%*s  %c %s\n", yLabelW, "", markers[si], s.Name)
	}
	return b.String(), nil
}

// Bar renders a horizontal bar chart: one row per label, bars scaled to
// the maximum value.
func Bar(labels []string, values []float64, width int) (string, error) {
	if len(labels) == 0 || len(labels) != len(values) {
		return "", fmt.Errorf("%d labels vs %d values: %w", len(labels), len(values), ErrBadPlot)
	}
	if width <= 0 {
		width = 40
	}
	maxVal := 0.0
	maxLabel := 0
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return "", fmt.Errorf("value %d (%v) not plottable: %w", i, v, ErrBadPlot)
		}
		if v > maxVal {
			maxVal = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		bar := 0
		if maxVal > 0 {
			bar = int(math.Round(v / maxVal * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s |%s %.4g\n", maxLabel, labels[i], strings.Repeat("#", bar), v)
	}
	return b.String(), nil
}
