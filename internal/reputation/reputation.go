// Package reputation maintains online, per-round estimates of worker
// behaviour — the signal source behind "dynamic" in dynamic contracts.
//
// The paper assumes the requester can estimate each worker's malice
// probability and accuracy (§II, footnote 2, refs [14]–[17]) but treats
// the estimator as a black box refreshed between rounds. This package
// provides that refresh loop: a Tracker ingests per-round observations
// (review score vs expert score, feedback, promotional flags) and keeps
// exponentially weighted estimates that feed Eq. (5) weights for the next
// round's contract design. It is what lets the marketplace reprice workers
// whose behaviour drifts (see internal/adversary for attack scenarios).
package reputation

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dyncontract/internal/requester"
)

// ErrBadConfig is returned for invalid tracker parameters.
var ErrBadConfig = errors.New("reputation: invalid config")

// Config tunes the tracker.
type Config struct {
	// Alpha is the EWMA smoothing factor in (0, 1]: weight of the newest
	// observation. Smaller = slower to forgive and to condemn.
	Alpha float64
	// PromoGain is added to the malice estimate on each promotional
	// observation (before clamping to [0, 1]).
	PromoGain float64
	// Decay multiplies the malice estimate each round without promotional
	// behaviour, letting reformed workers recover.
	Decay float64
	// PriorMalice seeds new workers' malice estimates.
	PriorMalice float64
	// PriorDist seeds new workers' accuracy-distance estimates.
	PriorDist float64
	// Weight holds the Eq. (5) coefficients used by Weight().
	Weight requester.WeightParams
}

// DefaultConfig returns a tracker configuration with moderate memory
// (α = 0.3), strong reaction to promotional behaviour, and slow decay.
func DefaultConfig() Config {
	return Config{
		Alpha:       0.3,
		PromoGain:   0.35,
		Decay:       0.95,
		PriorMalice: 0.05,
		PriorDist:   0.5,
		Weight:      requester.DefaultWeightParams(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if !(c.Alpha > 0 && c.Alpha <= 1) {
		return fmt.Errorf("alpha=%v outside (0,1]: %w", c.Alpha, ErrBadConfig)
	}
	if c.PromoGain < 0 || c.PromoGain > 1 {
		return fmt.Errorf("promoGain=%v outside [0,1]: %w", c.PromoGain, ErrBadConfig)
	}
	if !(c.Decay > 0 && c.Decay <= 1) {
		return fmt.Errorf("decay=%v outside (0,1]: %w", c.Decay, ErrBadConfig)
	}
	if c.PriorMalice < 0 || c.PriorMalice > 1 {
		return fmt.Errorf("priorMalice=%v outside [0,1]: %w", c.PriorMalice, ErrBadConfig)
	}
	if c.PriorDist <= 0 || math.IsNaN(c.PriorDist) {
		return fmt.Errorf("priorDist=%v must be positive: %w", c.PriorDist, ErrBadConfig)
	}
	return c.Weight.Validate()
}

// Observation is one worker's observable behaviour in a round.
type Observation struct {
	// WorkerID identifies the worker.
	WorkerID string
	// ReviewScore and ExpertScore feed the accuracy distance |l − l̄|.
	ReviewScore, ExpertScore float64
	// Promotional marks the review as promotional (high score far above
	// expert consensus) — evidence of manipulation.
	Promotional bool
	// Partners is the currently believed collusive partner count.
	Partners int
}

// workerState is one worker's running estimates.
type workerState struct {
	malice   float64
	dist     float64
	partners int
	rounds   int
}

// Tracker holds online estimates for a worker population. It is not safe
// for concurrent use; the platform calls it between rounds.
type Tracker struct {
	cfg   Config
	state map[string]*workerState
}

// NewTracker builds a tracker.
func NewTracker(cfg Config) (*Tracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Tracker{cfg: cfg, state: make(map[string]*workerState)}, nil
}

// Observe ingests one round's observations. Unseen workers are initialized
// from the priors; workers with no observation this round decay toward
// innocence.
func (t *Tracker) Observe(observations []Observation) error {
	seen := make(map[string]bool, len(observations))
	for i, obs := range observations {
		if obs.WorkerID == "" {
			return fmt.Errorf("reputation: observation %d has empty worker ID: %w", i, ErrBadConfig)
		}
		if math.IsNaN(obs.ReviewScore) || math.IsNaN(obs.ExpertScore) {
			return fmt.Errorf("reputation: observation %d has NaN scores: %w", i, ErrBadConfig)
		}
		st := t.stateOf(obs.WorkerID)
		seen[obs.WorkerID] = true

		dist := math.Abs(obs.ReviewScore - obs.ExpertScore)
		st.dist = (1-t.cfg.Alpha)*st.dist + t.cfg.Alpha*dist
		if obs.Promotional {
			st.malice = clamp01(st.malice + t.cfg.PromoGain)
		} else {
			st.malice = clamp01(st.malice * t.cfg.Decay)
		}
		st.partners = obs.Partners
		st.rounds++
	}
	for id, st := range t.state {
		if !seen[id] {
			st.malice = clamp01(st.malice * t.cfg.Decay)
		}
	}
	return nil
}

// stateOf returns (creating if needed) a worker's state.
func (t *Tracker) stateOf(id string) *workerState {
	st, ok := t.state[id]
	if !ok {
		st = &workerState{malice: t.cfg.PriorMalice, dist: t.cfg.PriorDist}
		t.state[id] = st
	}
	return st
}

// MaliceProb returns the current malice estimate for a worker; the prior
// when never observed.
func (t *Tracker) MaliceProb(id string) float64 {
	if st, ok := t.state[id]; ok {
		return st.malice
	}
	return t.cfg.PriorMalice
}

// AccuracyDist returns the current EWMA accuracy distance for a worker;
// the prior when never observed.
func (t *Tracker) AccuracyDist(id string) float64 {
	if st, ok := t.state[id]; ok {
		return st.dist
	}
	return t.cfg.PriorDist
}

// Weight computes the Eq. (5) weight for a worker from the current
// estimates.
func (t *Tracker) Weight(id string) (float64, error) {
	st := t.stateOf(id)
	sig := requester.WorkerSignal{
		ReviewScore: st.dist, // encode distance directly; Weight uses |l−l̄|
		ExpertScore: 0,
		MaliceProb:  st.malice,
		Partners:    st.partners,
	}
	return requester.Weight(t.cfg.Weight, sig)
}

// Workers returns the tracked worker IDs, sorted.
func (t *Tracker) Workers() []string {
	ids := make([]string, 0, len(t.state))
	for id := range t.state {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Rounds returns how many observations a worker has contributed.
func (t *Tracker) Rounds(id string) int {
	if st, ok := t.state[id]; ok {
		return st.rounds
	}
	return 0
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
