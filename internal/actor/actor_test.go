package actor

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"dyncontract/internal/baseline"
	"dyncontract/internal/effort"
	"dyncontract/internal/platform"
	"dyncontract/internal/worker"
)

func actorPopulation(t *testing.T, n int) *platform.Population {
	t.Helper()
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	part, err := effort.NewPartition(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	pop := &platform.Population{
		Weights:    make(map[string]float64),
		MaliceProb: make(map[string]float64),
		Part:       part,
		Mu:         1,
	}
	for i := 0; i < n; i++ {
		var a *worker.Agent
		var err error
		if i%3 == 2 {
			a, err = worker.NewMalicious(fmt.Sprintf("w%03d", i), psi, 1, 0.5, part.YMax())
		} else {
			a, err = worker.NewHonest(fmt.Sprintf("w%03d", i), psi, 1, part.YMax())
		}
		if err != nil {
			t.Fatal(err)
		}
		pop.Agents = append(pop.Agents, a)
		pop.Weights[a.ID] = 1 + 0.1*float64(i%4)
		pop.MaliceProb[a.ID] = float64(i%3) * 0.45
	}
	return pop
}

func TestEngineMatchesSequentialSimulator(t *testing.T) {
	pop := actorPopulation(t, 12)
	eng, err := NewEngine(pop, &platform.DynamicPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Run(context.Background(), 3)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want, err := platform.Simulate(context.Background(), actorPopulation(t, 12), &platform.DynamicPolicy{}, 3, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("rounds = %d, want %d", len(got), len(want))
	}
	for r := range want {
		if math.Abs(got[r].Utility-want[r].Utility) > 1e-9 {
			t.Errorf("round %d utility %v != sequential %v", r, got[r].Utility, want[r].Utility)
		}
		if !reflect.DeepEqual(got[r].Outcomes, want[r].Outcomes) {
			t.Errorf("round %d outcomes differ", r)
		}
	}
}

func TestEngineWithExclusionPolicy(t *testing.T) {
	pop := actorPopulation(t, 9)
	eng, err := NewEngine(pop, &baseline.ExcludeMalicious{Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ledger, err := eng.Run(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	excluded := 0
	for _, oc := range ledger[0].Outcomes {
		if oc.Excluded {
			excluded++
			if oc.Compensation != 0 || oc.Effort != 0 {
				t.Errorf("excluded agent %s has nonzero outcome", oc.AgentID)
			}
		}
	}
	if excluded == 0 {
		t.Error("no agents excluded despite high malice probabilities")
	}
}

func TestEngineValidation(t *testing.T) {
	pop := actorPopulation(t, 3)
	if _, err := NewEngine(pop, nil); err == nil {
		t.Error("nil policy accepted")
	}
	bad := &platform.Population{Mu: 1, Part: pop.Part}
	if _, err := NewEngine(bad, &platform.DynamicPolicy{}); err == nil {
		t.Error("empty population accepted")
	}
	eng, err := NewEngine(pop, &platform.DynamicPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), 0); err == nil {
		t.Error("rounds=0 accepted")
	}
}

func TestEngineCancellation(t *testing.T) {
	pop := actorPopulation(t, 20)
	eng, err := NewEngine(pop, &platform.DynamicPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := eng.Run(ctx, 5); err == nil {
			t.Error("cancelled run succeeded")
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("engine deadlocked under cancellation")
	}
}

func TestEngineManyAgentsNoDeadlock(t *testing.T) {
	pop := actorPopulation(t, 150)
	eng, err := NewEngine(pop, &platform.DynamicPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var ledger []platform.Round
	go func() {
		defer close(done)
		var err error
		ledger, err = eng.Run(context.Background(), 2)
		if err != nil {
			t.Errorf("Run: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("engine deadlocked at scale")
	}
	if len(ledger) != 2 {
		t.Fatalf("rounds = %d", len(ledger))
	}
	if len(ledger[0].Outcomes) != 150 {
		t.Errorf("outcomes = %d, want 150", len(ledger[0].Outcomes))
	}
}
