package solver

import (
	"context"
	"math"
	"testing"

	"dyncontract/internal/telemetry"
)

// TestSolveAllMetrics pins the pool's instrumentation: with Options.Metrics
// set, every subproblem that actually runs increments MetricDesigns,
// failures increment MetricDesignErrors, and each design's latency lands in
// MetricDesignSeconds.
func TestSolveAllMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	subs := solverFixture(t, 12)
	subs[3].Config.Mu = -1
	subs[9].Config.Mu = -1
	outcomes, err := SolveAll(context.Background(), subs, Options{
		Parallelism:     3,
		ContinueOnError: true,
		Metrics:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.Counters[MetricDesigns]; got != uint64(len(subs)) {
		t.Errorf("%s = %d, want %d", MetricDesigns, got, len(subs))
	}
	if got := s.Counters[MetricDesignErrors]; got != 2 {
		t.Errorf("%s = %d, want 2", MetricDesignErrors, got)
	}
	h, ok := s.Histograms[MetricDesignSeconds]
	if !ok {
		t.Fatalf("missing histogram %s", MetricDesignSeconds)
	}
	if h.Count != uint64(len(subs)) {
		t.Errorf("%s count = %d, want %d", MetricDesignSeconds, h.Count, len(subs))
	}
	if h.Sum < 0 || math.IsNaN(h.Sum) || math.IsInf(h.Sum, 0) {
		t.Errorf("%s sum = %v, want finite ≥ 0", MetricDesignSeconds, h.Sum)
	}

	// The instrumented outcomes must match an un-instrumented run.
	clean := solverFixture(t, 12)
	want, err := SolveAll(context.Background(), clean, Options{Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, oc := range outcomes {
		if i == 3 || i == 9 {
			continue
		}
		if oc.Result.RequesterUtility != want[i].Result.RequesterUtility {
			t.Errorf("outcome %d: instrumented utility %v != plain %v",
				i, oc.Result.RequesterUtility, want[i].Result.RequesterUtility)
		}
	}
}

// TestSolveAllNopMetrics checks the disabled path: telemetry.Nop behaves
// exactly like no registry at all.
func TestSolveAllNopMetrics(t *testing.T) {
	subs := solverFixture(t, 6)
	outcomes, err := SolveAll(context.Background(), subs, Options{Metrics: telemetry.Nop})
	if err != nil {
		t.Fatal(err)
	}
	for i, oc := range outcomes {
		if oc.Err != nil || oc.Result == nil {
			t.Errorf("outcome %d: %+v", i, oc)
		}
	}
}
