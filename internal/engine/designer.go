package engine

import (
	"context"
	"fmt"
	"sync"

	"dyncontract/internal/contract"
	"dyncontract/internal/core"
	"dyncontract/internal/solver"
	"dyncontract/internal/telemetry"
	"dyncontract/internal/worker"
)

// Designer turns a set of agents into per-agent contracts through the
// deduplicating cache and the parallel solver fan-out.
//
// Within one call, agents sharing a fingerprint are designed once (the
// round-level dedup is unconditional — it is pure, deterministic sharing).
// With a Cache attached, distinct fingerprints that were designed in a
// previous round cost nothing. Scratch buffers — the solver fan-out
// inputs, the per-agent fingerprints, and both result maps, including the
// returned contracts map — are retained across calls, so a long-running
// loop stops allocating per-round.
//
// The zero value is ready to use. A Designer is safe for concurrent use,
// but calls are serialized and the returned map is reused by the next
// call — never share a Designer across concurrently running simulations;
// share a Cache instead.
type Designer struct {
	// Parallelism caps the solver pool; 0 means GOMAXPROCS.
	Parallelism int
	// Cache, when non-nil, carries designs across rounds.
	Cache *Cache
	// Metrics, when non-nil, is forwarded to the solver fan-out
	// (dyncontract_solver_* counters and per-design timings).
	Metrics *telemetry.Registry

	mu        sync.Mutex
	subs      []solver.Subproblem
	subFPs    []Fingerprint
	agentFPs  []Fingerprint
	outs      []solver.Outcome
	results   map[Fingerprint]*core.Result
	contracts map[string]*contract.PiecewiseLinear
	roundFPs  []Fingerprint
	roundRes  []*core.Result
}

// maxScanFPs bounds the round's linear-scan fingerprint list: populations
// built from a handful of archetypes (the common case) resolve every
// agent with a few struct compares instead of hashing the full
// Fingerprint into a map; rounds with more distinct fingerprints fall
// back to the map beyond this bound.
const maxScanFPs = 16

// findFP returns fp's index in the round's distinct-fingerprint list, or
// -1. The list never exceeds maxScanFPs entries.
func (d *Designer) findFP(fp Fingerprint) int {
	for j := range d.roundFPs {
		if d.roundFPs[j] == fp {
			return j
		}
	}
	return -1
}

// Contracts designs one contract per agent, deduplicating by fingerprint.
// Agents not in the population's weight map design with w = 0 (matching
// the zero-value semantics of map lookups used throughout).
//
// The returned map is valid until the next Contracts call on the same
// Designer — the engine hands it to observers under the same rule.
func (d *Designer) Contracts(ctx context.Context, pop *Population, agents []*worker.Agent) (map[string]*contract.PiecewiseLinear, error) {
	d.mu.Lock()
	defer d.mu.Unlock()

	if d.results == nil {
		d.results = make(map[Fingerprint]*core.Result, 8)
	} else {
		clear(d.results)
	}
	d.subs = d.subs[:0]
	d.subFPs = d.subFPs[:0]
	// Fingerprint hashing is per-agent per-round work on the design path:
	// compute each agent's fingerprint exactly once and reuse it in the
	// assembly loop below.
	d.agentFPs = d.agentFPs[:0]
	d.roundFPs = d.roundFPs[:0]
	for _, a := range agents {
		cfg := core.Config{Part: pop.Part, Mu: pop.Mu, W: pop.Weights[a.ID]}
		fp := FingerprintOf(a, cfg)
		d.agentFPs = append(d.agentFPs, fp)
		if d.findFP(fp) >= 0 {
			continue // already handled this round
		}
		if len(d.roundFPs) < maxScanFPs {
			d.roundFPs = append(d.roundFPs, fp)
		} else if _, seen := d.results[fp]; seen {
			continue // beyond the scan bound: dedup through the map
		}
		if d.Cache != nil {
			if res, ok := d.Cache.Get(fp); ok {
				d.results[fp] = res
				continue
			}
		}
		d.results[fp] = nil // pending: solved below
		d.subs = append(d.subs, solver.Subproblem{Agent: a, Config: cfg})
		d.subFPs = append(d.subFPs, fp)
	}

	if len(d.subs) > 0 {
		if cap(d.outs) < len(d.subs) {
			d.outs = make([]solver.Outcome, len(d.subs))
		}
		d.outs = d.outs[:len(d.subs)]
		if err := solver.SolveAllInto(ctx, d.subs, d.outs, solver.Options{Parallelism: d.Parallelism, Metrics: d.Metrics}); err != nil {
			return nil, err
		}
		for i := range d.subs {
			d.results[d.subFPs[i]] = d.outs[i].Result
			if d.Cache != nil {
				d.Cache.Put(d.subFPs[i], d.outs[i].Result)
			}
		}
	}

	if d.contracts == nil {
		d.contracts = make(map[string]*contract.PiecewiseLinear, len(agents))
	} else {
		clear(d.contracts)
	}
	// Resolve the scan list's results once (a handful of map lookups),
	// then assemble per agent through the scan list, falling back to the
	// map only for fingerprints beyond the scan bound.
	d.roundRes = d.roundRes[:0]
	for _, fp := range d.roundFPs {
		d.roundRes = append(d.roundRes, d.results[fp])
	}
	for i, a := range agents {
		fp := d.agentFPs[i]
		var res *core.Result
		if j := d.findFP(fp); j >= 0 {
			res = d.roundRes[j]
		} else {
			res = d.results[fp]
		}
		if res == nil {
			return nil, fmt.Errorf("engine: no design produced for agent %s", a.ID)
		}
		d.contracts[a.ID] = res.Contract
	}
	return d.contracts, nil
}
