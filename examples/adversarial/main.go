// Adversarial: strategic attackers vs the adaptive dynamic contract.
//
// Run with:
//
//	go run ./examples/adversarial
//
// The paper's malicious workers are myopic; its future work (§VII) asks
// about more sophisticated ones. This example pits three attack
// strategies — always-on influence maximization, on-off (detector
// evasion), and camouflage (reputation building, then attack) — against
// two defenses: a static requester that keeps its initial beliefs, and the
// adaptive defense that re-estimates malice probabilities and Eq. (5)
// weights every round from observed behaviour (internal/reputation).
package main

import (
	"context"
	"fmt"
	"log"

	"dyncontract/internal/adversary"
	"dyncontract/internal/effort"
	"dyncontract/internal/platform"
	"dyncontract/internal/reputation"
	"dyncontract/internal/worker"
)

const rounds = 10

func buildPopulation() (*platform.Population, error) {
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		return nil, err
	}
	part, err := effort.NewPartition(8, 5)
	if err != nil {
		return nil, err
	}
	pop := &platform.Population{
		Weights:    make(map[string]float64),
		MaliceProb: make(map[string]float64),
		Part:       part,
		Mu:         1,
	}
	for i := 0; i < 6; i++ {
		a, err := worker.NewHonest(fmt.Sprintf("h%02d", i), psi, 1, part.YMax())
		if err != nil {
			return nil, err
		}
		pop.Agents = append(pop.Agents, a)
		pop.Weights[a.ID] = 1.5
		pop.MaliceProb[a.ID] = 0.05
	}
	m, err := worker.NewMalicious("attacker", psi, 1, 0.5, part.YMax())
	if err != nil {
		return nil, err
	}
	pop.Agents = append(pop.Agents, m)
	pop.Weights[m.ID] = 1.2 // the requester initially believes the attacker useful
	pop.MaliceProb[m.ID] = 0.1
	return pop, nil
}

func runScenario(strat adversary.Strategy, adaptive bool) ([]platform.Round, *adversary.Scenario, error) {
	pop, err := buildPopulation()
	if err != nil {
		return nil, nil, err
	}
	sc := &adversary.Scenario{
		Pop:        pop,
		Strategies: map[string]adversary.Strategy{"attacker": strat},
	}
	if adaptive {
		tr, err := reputation.NewTracker(reputation.DefaultConfig())
		if err != nil {
			return nil, nil, err
		}
		sc.Tracker = tr
	}
	ledger, err := sc.Run(context.Background(), &platform.DynamicPolicy{}, rounds)
	return ledger, sc, err
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("adversarial: ")

	strategies := []adversary.Strategy{
		adversary.InfluenceMax{},
		adversary.OnOff{Period: 3, Duty: 1},
		adversary.Camouflage{Reveal: 4},
	}
	for _, strat := range strategies {
		static, _, err := runScenario(strat, false)
		if err != nil {
			log.Fatalf("%s static: %v", strat.Name(), err)
		}
		dynamic, sc, err := runScenario(strat, true)
		if err != nil {
			log.Fatalf("%s adaptive: %v", strat.Name(), err)
		}
		fmt.Printf("attack strategy %s:\n", strat.Name())
		fmt.Printf("  %-8s %12s %12s\n", "round", "static-U", "adaptive-U")
		for r := 0; r < rounds; r++ {
			marker := ""
			if strat.Attacking(r) {
				marker = "  <- attack"
			}
			fmt.Printf("  %-8d %12.2f %12.2f%s\n", r, static[r].Utility, dynamic[r].Utility, marker)
		}
		fmt.Printf("  totals: static %.2f, adaptive %.2f\n", platform.TotalUtility(static), platform.TotalUtility(dynamic))
		fmt.Printf("  attacker final estimates under adaptive defense: weight=%.3f malice=%.2f\n\n",
			sc.Pop.Weights["attacker"], sc.Pop.MaliceProb["attacker"])
	}
	fmt.Println("the adaptive defense converges on every strategy: once behaviour is")
	fmt.Println("observed, the Eq. (5) weight collapses and the next contract stops paying.")
}
