package classify

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dyncontract/internal/contract"
	"dyncontract/internal/effort"
	"dyncontract/internal/worker"
)

func testPart(t *testing.T) effort.Partition {
	t.Helper()
	p, err := effort.NewPartition(10, 1) // efforts in [0, 10]
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func honestLabeler(id string) Labeler {
	return Labeler{ID: id, Class: worker.Honest, Curve: DefaultCurve(), Beta: 0.2}
}

func maliciousLabeler(id string, bias float64) Labeler {
	return Labeler{ID: id, Class: worker.NonCollusiveMalicious, Curve: DefaultCurve(),
		Beta: 0.2, Omega: 0.1, TargetBias: bias}
}

func TestAccuracyCurveValidate(t *testing.T) {
	if err := DefaultCurve().Validate(10); err != nil {
		t.Fatalf("default curve invalid: %v", err)
	}
	bad := []AccuracyCurve{
		{Base: 0.4, Gain: 0.05, PMax: 0.9},               // base below chance
		{Base: 0.55, Gain: 0, PMax: 0.9},                 // no gain
		{Base: 0.55, Gain: 0.05, Curv: 0.01, PMax: 0.9},  // convex
		{Base: 0.55, Gain: 0.05, PMax: 0.5},              // pmax below base
		{Base: 0.55, Gain: 0.05, Curv: -0.01, PMax: 0.9}, // turns over before yMax=10
	}
	for i, c := range bad {
		if err := c.Validate(10); !errors.Is(err, ErrBadModel) {
			t.Errorf("bad curve %d accepted (err=%v)", i, err)
		}
	}
}

func TestAccuracyCurveEvalClamps(t *testing.T) {
	c := DefaultCurve()
	if got := c.Eval(0); got != 0.55 {
		t.Errorf("Eval(0) = %v, want 0.55", got)
	}
	// Past the apex the accuracy plateaus at the apex value (and never
	// exceeds PMax).
	apex := -c.Gain / (2 * c.Curv)
	if got := c.Eval(1000); math.Abs(got-c.Eval(apex)) > 1e-12 || got > c.PMax {
		t.Errorf("Eval(huge) = %v, want plateau %v (<= PMax %v)", got, c.Eval(apex), c.PMax)
	}
	// Monotone on the working range.
	prev := 0.0
	for y := 0.0; y <= 10; y += 0.5 {
		v := c.Eval(y)
		if v < prev {
			t.Errorf("accuracy decreased at y=%v", y)
		}
		prev = v
	}
}

func TestFeedbackPsi(t *testing.T) {
	c := DefaultCurve()
	psi, err := c.FeedbackPsi(20, 10)
	if err != nil {
		t.Fatalf("FeedbackPsi: %v", err)
	}
	// ψ(y) = 20·p_unclamped(y).
	for _, y := range []float64{0, 2, 7} {
		want := 20 * (c.Base + c.Gain*y + c.Curv*y*y)
		if math.Abs(psi.Eval(y)-want) > 1e-9 {
			t.Errorf("psi(%v) = %v, want %v", y, psi.Eval(y), want)
		}
	}
	if _, err := c.FeedbackPsi(0, 10); !errors.Is(err, ErrBadModel) {
		t.Error("gold=0 accepted")
	}
}

func TestFeedbackPsiZeroCurv(t *testing.T) {
	c := AccuracyCurve{Base: 0.55, Gain: 0.03, Curv: 0, PMax: 0.9}
	psi, err := c.FeedbackPsi(10, 10)
	if err != nil {
		t.Fatalf("zero-curv conversion: %v", err)
	}
	if psi.R2 >= 0 {
		t.Errorf("R2 = %v, want strictly negative", psi.R2)
	}
}

func TestLabelerValidate(t *testing.T) {
	if err := honestLabeler("h").Validate(10); err != nil {
		t.Errorf("honest labeler invalid: %v", err)
	}
	bad := []Labeler{
		{ID: "", Class: worker.Honest, Curve: DefaultCurve(), Beta: 1},
		{ID: "x", Class: worker.Class(9), Curve: DefaultCurve(), Beta: 1},
		{ID: "x", Class: worker.Honest, Curve: DefaultCurve(), Beta: 0},
		{ID: "x", Class: worker.Honest, Curve: DefaultCurve(), Beta: 1, TargetBias: 0.5},
		{ID: "x", Class: worker.NonCollusiveMalicious, Curve: DefaultCurve(), Beta: 1, TargetBias: 2},
	}
	for i, l := range bad {
		if err := l.Validate(10); !errors.Is(err, ErrBadModel) {
			t.Errorf("bad labeler %d accepted (err=%v)", i, err)
		}
	}
}

func TestTaskValidate(t *testing.T) {
	ok := Task{Truth: []bool{true, false}, Gold: 1, ItemValue: 1, Mu: 1}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid task rejected: %v", err)
	}
	bad := []Task{
		{Gold: 1, ItemValue: 1, Mu: 1},
		{Truth: []bool{true}, Gold: 0, ItemValue: 1, Mu: 1},
		{Truth: []bool{true}, Gold: 2, ItemValue: 1, Mu: 1},
		{Truth: []bool{true}, Gold: 1, ItemValue: 0, Mu: 1},
		{Truth: []bool{true}, Gold: 1, ItemValue: 1, Mu: 0},
	}
	for i, task := range bad {
		if err := task.Validate(); !errors.Is(err, ErrBadModel) {
			t.Errorf("bad task %d accepted", i)
		}
	}
}

func TestNewTask(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	task, err := NewTask(rng, 100, 20, 0.5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(task.Truth) != 100 || task.Gold != 20 {
		t.Errorf("task = %+v", task)
	}
	if _, err := NewTask(nil, 10, 2, 0.5, 1, 1); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewTask(rng, 10, 2, 1.5, 1, 1); err == nil {
		t.Error("bad positive rate accepted")
	}
}

func TestDesignContractsIncentivizeEffort(t *testing.T) {
	part := testPart(t)
	rng := rand.New(rand.NewSource(2))
	task, err := NewTask(rng, 200, 40, 0.5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	labelers := []Labeler{honestLabeler("h1"), honestLabeler("h2"), maliciousLabeler("m1", 0.6)}
	contracts, err := DesignContracts(labelers, task, part, 5)
	if err != nil {
		t.Fatalf("DesignContracts: %v", err)
	}
	if len(contracts) != 3 {
		t.Fatalf("contracts = %d, want 3", len(contracts))
	}
	res, err := RunBatch(rng, labelers, task, contracts, part)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	for _, oc := range res.PerWorker {
		if oc.ID[0] == 'h' && oc.Effort <= 0 {
			t.Errorf("honest labeler %s exerts no effort under designed contract", oc.ID)
		}
		if oc.ID[0] == 'h' && oc.Accuracy <= 0.6 {
			t.Errorf("honest labeler %s accuracy %v too low", oc.ID, oc.Accuracy)
		}
	}
}

func TestRunBatchBeatsFlatPay(t *testing.T) {
	part := testPart(t)
	rng := rand.New(rand.NewSource(3))
	task, err := NewTask(rng, 400, 60, 0.5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var labelers []Labeler
	for _, id := range []string{"h1", "h2", "h3", "h4", "h5"} {
		labelers = append(labelers, honestLabeler(id))
	}

	designed, err := DesignContracts(labelers, task, part, 5)
	if err != nil {
		t.Fatal(err)
	}
	resDesigned, err := RunBatch(rand.New(rand.NewSource(4)), labelers, task, designed, part)
	if err != nil {
		t.Fatal(err)
	}

	// Flat pay: same budget per worker but independent of feedback.
	flat := make(map[string]*contract.PiecewiseLinear, len(labelers))
	for _, l := range labelers {
		psi, err := l.Curve.FeedbackPsi(task.Gold, part.YMax())
		if err != nil {
			t.Fatal(err)
		}
		c, err := contract.Flat(psi.Eval(0), psi.Eval(part.YMax()), 1)
		if err != nil {
			t.Fatal(err)
		}
		flat[l.ID] = c
	}
	resFlat, err := RunBatch(rand.New(rand.NewSource(4)), labelers, task, flat, part)
	if err != nil {
		t.Fatal(err)
	}

	if resDesigned.AggregateAccuracy <= resFlat.AggregateAccuracy {
		t.Errorf("designed accuracy %v <= flat accuracy %v",
			resDesigned.AggregateAccuracy, resFlat.AggregateAccuracy)
	}
	if resDesigned.RequesterUtility <= resFlat.RequesterUtility {
		t.Errorf("designed utility %v <= flat utility %v",
			resDesigned.RequesterUtility, resFlat.RequesterUtility)
	}
}

func TestRunBatchMaliciousBiasContained(t *testing.T) {
	// A biased minority must not swing the aggregate: weighted majority
	// with honest majority keeps accuracy high even with strong bias.
	part := testPart(t)
	rng := rand.New(rand.NewSource(5))
	task, err := NewTask(rng, 300, 50, 0.3, 1, 1) // mostly-false ground truth
	if err != nil {
		t.Fatal(err)
	}
	labelers := []Labeler{
		honestLabeler("h1"), honestLabeler("h2"), honestLabeler("h3"),
		maliciousLabeler("m1", 0.9), maliciousLabeler("m2", 0.9),
	}
	contracts, err := DesignContracts(labelers, task, part, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBatch(rng, labelers, task, contracts, part)
	if err != nil {
		t.Fatal(err)
	}
	if res.AggregateAccuracy < 0.8 {
		t.Errorf("aggregate accuracy %v < 0.8 with honest majority", res.AggregateAccuracy)
	}
}

func TestRunBatchExcludedLabelerSkipped(t *testing.T) {
	part := testPart(t)
	rng := rand.New(rand.NewSource(6))
	task, err := NewTask(rng, 50, 10, 0.5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	labelers := []Labeler{honestLabeler("h1"), honestLabeler("h2")}
	contracts, err := DesignContracts(labelers[:1], task, part, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBatch(rng, labelers, task, contracts, part)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerWorker) != 1 || res.PerWorker[0].ID != "h1" {
		t.Errorf("PerWorker = %+v, want only h1", res.PerWorker)
	}
}

func TestRunBatchErrors(t *testing.T) {
	part := testPart(t)
	task := Task{Truth: []bool{true}, Gold: 1, ItemValue: 1, Mu: 1}
	if _, err := RunBatch(nil, nil, task, nil, part); !errors.Is(err, ErrBadModel) {
		t.Error("nil rng accepted")
	}
	if _, err := RunBatch(rand.New(rand.NewSource(1)), nil, Task{}, nil, part); err == nil {
		t.Error("invalid task accepted")
	}
}

// Property: per-worker gold feedback never exceeds the gold count, and
// compensation is non-negative and bounded by the contract maximum.
func TestRunBatchBoundsProperty(t *testing.T) {
	part := testPart(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		task, err := NewTask(rng, 60, 15, 0.5, 1, 1)
		if err != nil {
			return false
		}
		labelers := []Labeler{honestLabeler("h1"), maliciousLabeler("m1", rng.Float64())}
		contracts, err := DesignContracts(labelers, task, part, 3)
		if err != nil {
			return false
		}
		res, err := RunBatch(rng, labelers, task, contracts, part)
		if err != nil {
			return false
		}
		for _, oc := range res.PerWorker {
			if oc.GoldCorrect < 0 || oc.GoldCorrect > task.Gold {
				return false
			}
			if oc.Compensation < 0 || oc.Compensation > contracts[oc.ID].MaxComp()+1e-9 {
				return false
			}
		}
		return res.AggregateAccuracy >= 0 && res.AggregateAccuracy <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
