package dyncontract

import (
	"context"
	"fmt"
	"reflect"
	"strconv"
	"testing"

	"dyncontract/internal/contract"
	"dyncontract/internal/core"
	"dyncontract/internal/effort"
	"dyncontract/internal/engine"
	"dyncontract/internal/platform"
	"dyncontract/internal/spans"
	"dyncontract/internal/worker"
)

// scalarDesignPolicy is the reference for the batched cold path: it calls
// the scalar core.Design directly per agent — no solver pool, no
// fingerprint dedup, no scratch — so any ledger it disagrees with traces
// straight to the batched solve.
type scalarDesignPolicy struct{}

func (scalarDesignPolicy) Name() string { return "scalar-design-reference" }

func (scalarDesignPolicy) Contracts(ctx context.Context, pop *platform.Population) (map[string]*contract.PiecewiseLinear, error) {
	out := make(map[string]*contract.PiecewiseLinear, len(pop.Agents))
	for _, a := range pop.Agents {
		res, err := core.Design(a, core.Config{Part: pop.Part, Mu: pop.Mu, W: pop.Weights[a.ID]})
		if err != nil {
			return nil, err
		}
		out[a.ID] = res.Contract
	}
	return out, nil
}

// ledgerPopulation builds a mixed population that routes the batched solve
// through every behavioural corner: the three archetypes plus an agent
// whose reservation forces the participation lift and one whose ω clamps
// the slope chain.
func ledgerPopulation(t *testing.T, n int) *platform.Population {
	t.Helper()
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	part, err := effort.NewPartition(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	pop := &platform.Population{
		Weights:    make(map[string]float64, n),
		MaliceProb: make(map[string]float64, n),
		Part:       part,
		Mu:         1,
	}
	for i := 0; i < n; i++ {
		var a *worker.Agent
		var w float64
		switch i % 5 {
		case 0:
			a, err = worker.NewHonest(fmt.Sprintf("h%05d", i), psi, 1, part.YMax())
			w = 1
		case 1:
			a, err = worker.NewMalicious(fmt.Sprintf("m%05d", i), psi, 1, 0.5, part.YMax())
			w = 0.8
		case 2:
			a, err = worker.NewCommunity(fmt.Sprintf("c%05d", i), psi, 1, 0.5, 3, part.YMax())
			w = 0.5
		case 3:
			a, err = worker.NewHonest(fmt.Sprintf("r%05d", i), psi, 1, part.YMax())
			w = 1
			if err == nil {
				a.Reservation = 60 // forces the participation lift at every k
			}
		default:
			a, err = worker.NewMalicious(fmt.Sprintf("x%05d", i), psi, 1, 5, part.YMax())
			w = 0.7 // ω = 5 clamps the slope recursion
		}
		if err != nil {
			t.Fatal(err)
		}
		pop.Agents = append(pop.Agents, a)
		pop.Weights[a.ID] = w
		pop.MaliceProb[a.ID] = 0.1
	}
	return pop
}

// TestBatchedDesignLedgerIdentical pins the tentpole's end-to-end
// guarantee: DynamicPolicy — whose designs now run through the batched
// core.DesignInto, sequentially and per shard over retained scratch — must
// produce a ledger byte-identical to a policy calling the scalar
// core.Design per agent, across engine shapes and under a weight churn
// that keeps every round's designs cold.
func TestBatchedDesignLedgerIdentical(t *testing.T) {
	ctx := context.Background()
	const rounds, agents = 5, 40

	// Deterministic churn: every agent's weight moves every round, so no
	// design fingerprint survives and each round re-runs the cold path.
	churn := func(round int, pop *platform.Population) {
		for _, a := range pop.Agents {
			pop.Weights[a.ID] *= 1 + 1e-3*float64(round+1)
		}
	}

	run := func(pol engine.Policy, shards int, cold bool) []engine.Round {
		t.Helper()
		cfg := engine.Config{
			Policy: pol,
			Rounds: rounds,
			Shards: shards,
			Cache:  engine.NewCache(),
			Memo:   engine.NewRespondMemo(),
		}
		if cold {
			cfg.Drift = churn
		}
		led, err := engine.RunLedger(ctx, ledgerPopulation(t, agents), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return led
	}

	for _, cold := range []bool{false, true} {
		ref := run(scalarDesignPolicy{}, 0, cold)
		if len(ref) != rounds {
			t.Fatalf("reference ledger has %d rounds, want %d", len(ref), rounds)
		}
		for _, shards := range []int{0, 1, 4} {
			name := fmt.Sprintf("cold=%v/shards=%d", cold, shards)
			if got := run(&platform.DynamicPolicy{}, shards, cold); !reflect.DeepEqual(got, ref) {
				t.Errorf("%s: batched ledger differs from scalar reference", name)
			}
		}
	}
}

// TestShardDesignSpanBatchAttrs pins the cold-path observability: under
// DynamicPolicy a traced round's engine.shard.design spans report the
// shard's design batch size and the retained scratch's cumulative use
// count, and on a cold round at least one shard shows a non-empty batch.
func TestShardDesignSpanBatchAttrs(t *testing.T) {
	pop := ledgerPopulation(t, 24)
	rec := spans.NewRecorder(8, 4)
	tracer := spans.New(spans.Config{Sample: 1, Seed: 5, Recorder: rec})

	eng, err := engine.New(pop, engine.Config{
		Policy: &platform.DynamicPolicy{},
		Rounds: 1,
		Shards: 4,
		Cache:  engine.NewCache(),
		Memo:   engine.NewRespondMemo(),
	})
	if err != nil {
		t.Fatal(err)
	}
	root := tracer.Root("test.batch-attrs")
	ctx := spans.ContextWith(context.Background(), root)
	if err := eng.Run(ctx); err != nil {
		t.Fatal(err)
	}
	root.End()

	tr, ok := rec.Lookup(root.TraceID())
	if !ok {
		t.Fatal("trace not recorded")
	}
	designSpans, totalBatch, totalUses := 0, 0, 0
	for _, sd := range tr.Spans {
		if sd.Name != "engine.shard.design" {
			continue
		}
		designSpans++
		attrs := make(map[string]string, len(sd.Attrs))
		for _, a := range sd.Attrs {
			attrs[a.Key] = a.Value
		}
		batch, err := strconv.Atoi(attrs["batch"])
		if err != nil {
			t.Fatalf("span missing integer batch attr: %v (attrs %v)", err, attrs)
		}
		uses, err := strconv.Atoi(attrs["scratch.uses"])
		if err != nil {
			t.Fatalf("span missing integer scratch.uses attr: %v (attrs %v)", err, attrs)
		}
		totalBatch += batch
		totalUses += uses
	}
	if designSpans != 4 {
		t.Fatalf("got %d engine.shard.design spans, want 4", designSpans)
	}
	if totalBatch == 0 || totalUses == 0 {
		t.Errorf("cold round reported batch=%d scratch uses=%d across shards, want both > 0", totalBatch, totalUses)
	}
}
