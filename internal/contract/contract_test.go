package contract

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, knots, comps []float64) *PiecewiseLinear {
	t.Helper()
	c, err := New(knots, comps)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewValid(t *testing.T) {
	c := mustNew(t, []float64{0, 1, 2}, []float64{0, 3, 5})
	if c.Pieces() != 2 {
		t.Errorf("Pieces = %d, want 2", c.Pieces())
	}
	if c.Slope(1) != 3 || c.Slope(2) != 2 {
		t.Errorf("slopes = %v, %v; want 3, 2", c.Slope(1), c.Slope(2))
	}
	if c.Increment(2) != 2 {
		t.Errorf("Increment(2) = %v, want 2", c.Increment(2))
	}
	if c.MaxComp() != 5 {
		t.Errorf("MaxComp = %v, want 5", c.MaxComp())
	}
}

func TestNewErrors(t *testing.T) {
	tests := []struct {
		name    string
		knots   []float64
		comps   []float64
		wantErr error
	}{
		{"length mismatch", []float64{0, 1}, []float64{0}, ErrBadShape},
		{"too few knots", []float64{0}, []float64{0}, ErrBadShape},
		{"NaN knot", []float64{0, math.NaN()}, []float64{0, 1}, ErrBadShape},
		{"Inf comp", []float64{0, 1}, []float64{0, math.Inf(1)}, ErrBadShape},
		{"negative comp", []float64{0, 1}, []float64{-1, 0}, ErrBadShape},
		{"non-increasing knots", []float64{0, 0}, []float64{0, 1}, ErrNotMonotone},
		{"decreasing comps", []float64{0, 1}, []float64{2, 1}, ErrNotMonotone},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.knots, tt.comps); !errors.Is(err, tt.wantErr) {
				t.Errorf("err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestEvalInterpolation(t *testing.T) {
	c := mustNew(t, []float64{0, 2, 4}, []float64{1, 3, 3.5})
	tests := []struct {
		q, want float64
	}{
		{-1, 1}, // below range: x0
		{0, 1},  // left edge
		{1, 2},  // middle of first piece
		{2, 3},  // interior knot
		{3, 3.25},
		{4, 3.5},  // right edge
		{10, 3.5}, // beyond range: flat
	}
	for _, tt := range tests {
		if got := c.Eval(tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Eval(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestEvalManyPiecesBinarySearch(t *testing.T) {
	// Build a 100-piece contract and cross-check binary search against a
	// linear scan.
	n := 101
	knots := make([]float64, n)
	comps := make([]float64, n)
	for i := range knots {
		knots[i] = float64(i) * 0.7
		comps[i] = math.Sqrt(float64(i))
	}
	c := mustNew(t, knots, comps)
	linear := func(q float64) float64 {
		if q <= knots[0] {
			return comps[0]
		}
		for l := 1; l < n; l++ {
			if q < knots[l] {
				a := (comps[l] - comps[l-1]) / (knots[l] - knots[l-1])
				return comps[l-1] + a*(q-knots[l-1])
			}
		}
		return comps[n-1]
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		q := rng.Float64()*90 - 10
		if got, want := c.Eval(q), linear(q); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Eval(%v) = %v, linear scan %v", q, got, want)
		}
	}
}

func TestCopySemantics(t *testing.T) {
	knots := []float64{0, 1}
	comps := []float64{0, 1}
	c := mustNew(t, knots, comps)
	knots[1] = 99
	comps[1] = 99
	if c.Knot(1) != 1 || c.Comp(1) != 1 {
		t.Error("contract shares caller's backing arrays")
	}
	ks := c.Knots()
	ks[0] = -5
	if c.Knot(0) != 0 {
		t.Error("Knots() exposes internal state")
	}
}

func TestSlopePanicsOutOfRange(t *testing.T) {
	c := mustNew(t, []float64{0, 1}, []float64{0, 1})
	for _, l := range []int{0, 2, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Slope(%d): want panic", l)
				}
			}()
			c.Slope(l)
		}()
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := mustNew(t, []float64{0, 1.5, 2.25}, []float64{0.5, 2, 2})
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back PiecewiseLinear
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !c.Equal(&back) {
		t.Errorf("round trip mismatch: %v vs %v", c, &back)
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	var c PiecewiseLinear
	if err := json.Unmarshal([]byte(`{"knots":[0,1],"comps":[2,1]}`), &c); err == nil {
		t.Error("decreasing comps accepted by UnmarshalJSON")
	}
	if err := json.Unmarshal([]byte(`{bad json`), &c); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestFlat(t *testing.T) {
	c, err := Flat(0, 10, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{-1, 0, 5, 10, 20} {
		if c.Eval(q) != 2.5 {
			t.Errorf("Flat.Eval(%v) = %v, want 2.5", q, c.Eval(q))
		}
	}
	if _, err := Flat(0, 1, -1); err == nil {
		t.Error("negative flat: want error")
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder(0, 0)
	b.AppendSlope(2, 1.5) // x = 3
	b.AppendSlope(3, 0)   // flat
	if b.Len() != 3 {
		t.Errorf("Len = %d, want 3", b.Len())
	}
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if c.Comp(1) != 3 || c.Comp(2) != 3 {
		t.Errorf("comps = %v, want [0 3 3]", c.Comps())
	}
}

func TestBuilderInvalid(t *testing.T) {
	b := NewBuilder(0, 1)
	b.AppendSlope(1, -2) // drives compensation negative and decreasing
	if _, err := b.Build(); err == nil {
		t.Error("Build with negative slope: want error")
	}
}

func TestEqual(t *testing.T) {
	a := mustNew(t, []float64{0, 1}, []float64{0, 1})
	b := mustNew(t, []float64{0, 1}, []float64{0, 1})
	c := mustNew(t, []float64{0, 1, 2}, []float64{0, 1, 2})
	d := mustNew(t, []float64{0, 1}, []float64{0, 2})
	if !a.Equal(b) {
		t.Error("identical contracts not Equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("different contracts reported Equal")
	}
}

func TestStringNonEmpty(t *testing.T) {
	if mustNew(t, []float64{0, 1}, []float64{0, 1}).String() == "" {
		t.Error("String empty")
	}
}

// Property: Eval is monotone non-decreasing in q and bounded by [x0, xm].
func TestEvalMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(10)
		knots := make([]float64, m+1)
		comps := make([]float64, m+1)
		knots[0] = rng.Float64()
		comps[0] = rng.Float64()
		for i := 1; i <= m; i++ {
			knots[i] = knots[i-1] + 0.01 + rng.Float64()
			comps[i] = comps[i-1] + rng.Float64()
		}
		c, err := New(knots, comps)
		if err != nil {
			return false
		}
		qs := make([]float64, 50)
		for i := range qs {
			qs[i] = knots[0] - 1 + rng.Float64()*(knots[m]-knots[0]+2)
		}
		sort.Float64s(qs)
		prev := math.Inf(-1)
		for _, q := range qs {
			v := c.Eval(q)
			if v < prev-1e-12 || v < comps[0]-1e-12 || v > comps[m]+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Eval reproduces the knot compensations exactly at knots.
func TestEvalKnotExactnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(8)
		knots := make([]float64, m+1)
		comps := make([]float64, m+1)
		for i := 1; i <= m; i++ {
			knots[i] = knots[i-1] + 0.5 + rng.Float64()
			comps[i] = comps[i-1] + rng.Float64()*2
		}
		c, err := New(knots, comps)
		if err != nil {
			return false
		}
		for i := range knots {
			if math.Abs(c.Eval(knots[i])-comps[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
