package equilibrium

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dyncontract/internal/contract"
	"dyncontract/internal/core"
	"dyncontract/internal/effort"
	"dyncontract/internal/worker"
)

func eqFixture(t *testing.T) (*worker.Agent, core.Config) {
	t.Helper()
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	part, err := effort.NewPartition(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := worker.NewHonest("eq", psi, 1, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	return a, core.Config{Part: part, Mu: 1, W: 1}
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("default options invalid: %v", err)
	}
	bad := []Options{
		{GridPoints: 5, Step: 0.1, Tol: 0},
		{GridPoints: 100, Step: 0, Tol: 0},
		{GridPoints: 100, Step: 0.1, Tol: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestFollowerOptimalityOfDesignedContract(t *testing.T) {
	a, cfg := eqFixture(t)
	res, err := core.Design(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckFollower(a, res.Contract, cfg, res.Response.Effort, DefaultOptions())
	if err != nil {
		t.Fatalf("CheckFollower: %v", err)
	}
	if !rep.Holds {
		t.Errorf("follower check failed: grid found effort %v with utility %v > predicted %v",
			rep.BestGridEffort, rep.BestGridUtility, rep.PredictedUtility)
	}
}

func TestFollowerCheckDetectsBadPrediction(t *testing.T) {
	a, cfg := eqFixture(t)
	res, err := core.Design(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Claim the worker would exert zero effort: the check must refute it
	// (the designed contract incentivizes positive effort).
	rep, err := CheckFollower(a, res.Contract, cfg, 0, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holds {
		t.Error("follower check accepted an obviously suboptimal prediction")
	}
}

func TestLeaderLocalOptimality(t *testing.T) {
	a, cfg := eqFixture(t)
	res, err := core.Design(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The designed contract is near-optimal, not exactly optimal; accept
	// improvements up to the candidate-construction slack ε but require
	// that nothing large slips through.
	opts := DefaultOptions()
	opts.Tol = 0.05
	rep, err := CheckLeader(a, res.Contract, cfg, opts)
	if err != nil {
		t.Fatalf("CheckLeader: %v", err)
	}
	if rep.Tested == 0 {
		t.Fatal("no perturbations tested")
	}
	if !rep.Holds {
		t.Errorf("leader check found %d improving perturbations (base %v, best %v)",
			rep.Improvements, rep.BaseUtility, rep.BestUtility)
	}
}

func TestLeaderCheckDetectsOverpayment(t *testing.T) {
	a, cfg := eqFixture(t)
	res, err := core.Design(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Inflate every compensation: cutting pay must now look attractive.
	knots := res.Contract.Knots()
	comps := res.Contract.Comps()
	for i := range comps {
		comps[i] += 2 * float64(i)
	}
	inflated, err := contract.New(knots, comps)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Step = 1.5
	rep, err := CheckLeader(a, inflated, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holds {
		t.Error("leader check blessed an overpaying contract")
	}
}

func TestProjectMonotone(t *testing.T) {
	xs := []float64{-1, 2, 1, 3}
	projectMonotone(xs)
	want := []float64{0, 2, 2, 3}
	for i := range want {
		if xs[i] != want[i] {
			t.Errorf("projectMonotone = %v, want %v", xs, want)
		}
	}
}

// Property: designed contracts pass the follower check for random valid
// worker parameterizations.
func TestDesignedContractsFollowerProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		psi, err := effort.NewQuadratic(-(0.01 + rng.Float64()*0.03), 1+rng.Float64()*2, rng.Float64(), 25)
		if err != nil {
			return true
		}
		part, err := effort.NewPartition(4+rng.Intn(8), 25.0/float64(4+rng.Intn(8)+8))
		if err != nil {
			return true
		}
		if psi.Deriv(part.YMax()) <= 0 {
			return true
		}
		omega := 0.0
		class := worker.Honest
		if rng.Intn(2) == 1 {
			omega = rng.Float64() * 0.5
			class = worker.NonCollusiveMalicious
		}
		a := &worker.Agent{ID: "w", Class: class, Psi: psi, Beta: 0.5 + rng.Float64(), Omega: omega, Size: 1}
		cfg := core.Config{Part: part, Mu: 0.8 + rng.Float64()*0.4, W: 0.5 + rng.Float64()}
		res, err := core.Design(a, cfg)
		if err != nil {
			return false
		}
		opts := Options{GridPoints: 800, Step: 0.05, Tol: 1e-6}
		rep, err := CheckFollower(a, res.Contract, cfg, res.Response.Effort, opts)
		if err != nil {
			return false
		}
		return rep.Holds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAuditAll(t *testing.T) {
	a, cfg := eqFixture(t)
	var entries []AuditEntry
	for _, w := range []float64{0.5, 1, 1.5} {
		c := cfg
		c.W = w
		res, err := core.Design(a, c)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, AuditEntry{Result: res, Config: c})
	}
	opts := DefaultOptions()
	opts.Tol = 0.05 // accept the construction's epsilon slack on the leader side
	rep, err := AuditAll(entries, opts)
	if err != nil {
		t.Fatalf("AuditAll: %v", err)
	}
	if rep.Checked != 3 {
		t.Errorf("Checked = %d, want 3", rep.Checked)
	}
	if !rep.Clean() {
		t.Errorf("audit found violations: %+v", rep)
	}
}

func TestAuditAllNilEntry(t *testing.T) {
	if _, err := AuditAll([]AuditEntry{{}}, DefaultOptions()); err == nil {
		t.Error("nil result accepted")
	}
}
