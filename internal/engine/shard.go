package engine

import (
	"context"
	"fmt"
	"sort"

	"dyncontract/internal/contract"
	"dyncontract/internal/core"
	"dyncontract/internal/telemetry"
	"dyncontract/internal/worker"
)

// This file is the sharded round pipeline. The paper's decomposition
// result (§IV-B) makes both contract design and best responses separable
// per worker/community, so the engine can partition the population into
// shards and run the design and respond stages per shard on a bounded
// pool, merging results back in global agent-ID order — the ledger stays
// byte-identical to the sequential engine (settlement remains one
// sequential pass: float addition is not associative, so per-shard
// partial sums would drift in the last ulp).
//
// Shard assignment hashes agent IDs (FNV-1a), so it is stable across
// rounds and across processes: the same population shards the same way
// everywhere, and adding an agent moves no settled agent's outcome slot —
// outcomes are written to each agent's position in the global ID-sorted
// order, not to contiguous per-shard blocks.

// ShardOf returns the shard index for an agent ID under an n-way
// partition: FNV-1a over the ID, reduced mod n. It is a pure function of
// (id, n) — stable across rounds, runs, and machines — so shard-local
// state (caches, scratch) stays warm for as long as the population does.
func ShardOf(id string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// Shard is one partition of a population's ID-sorted agent view. Agents
// within a shard keep their global ID order, and every per-agent datum
// the hot loop needs — weight, malice estimate, design fingerprint — is
// carried as an indexed slice aligned with Agents, so shard loops never
// touch the population's string-keyed maps.
type Shard struct {
	// Index is the shard's position in the partition.
	Index int
	// Epoch identifies the population view this shard was built from.
	// Engine-built shards use a counter that advances on every view
	// rebuild (generation bump, or every round under Drift);
	// Population.Shards uses the population's generation. Consumers that
	// cache per-shard plans (ShardDesigner) key them on (Index, Epoch).
	Epoch uint64
	// Agents is the shard's slice of the ID-sorted population view.
	Agents []*worker.Agent
	// Global maps each shard position to the agent's index in the global
	// ID-sorted view — the slot its outcome is written to.
	Global []int32
	// Weights is the indexed view of Population.Weights for Agents.
	Weights []float64
	// Malice is the indexed view of Population.MaliceProb for Agents
	// (zero for agents with no entry, matching map-lookup semantics).
	Malice []float64
	// FPs caches each agent's design fingerprint, computed once per view
	// rebuild and shared by the design and respond stages.
	FPs []Fingerprint
}

// shardAssign distributes the ID-sorted agents across the reset shards by
// ID hash, filling every indexed view.
func shardAssign(p *Population, agents []*worker.Agent, shards []*Shard) {
	n := len(shards)
	for gi, a := range agents {
		s := shards[ShardOf(a.ID, n)]
		w := p.Weights[a.ID]
		s.Agents = append(s.Agents, a)
		s.Global = append(s.Global, int32(gi))
		s.Weights = append(s.Weights, w)
		s.Malice = append(s.Malice, p.MaliceProb[a.ID])
		s.FPs = append(s.FPs, FingerprintOf(a, core.Config{Part: p.Part, Mu: p.Mu, W: w}))
	}
}

// Shards partitions the population into n deterministic shards of its
// ID-sorted agent view (see ShardOf for the assignment; it is stable
// across rounds and processes). n is clamped to the number of agents;
// n <= 0 returns nil. The shards are built fresh from the population's
// current state — they are indexed snapshots, not live views.
func (p *Population) Shards(n int) []Shard {
	if n <= 0 || len(p.Agents) == 0 {
		return nil
	}
	agents := append([]*worker.Agent(nil), p.Agents...)
	sort.Slice(agents, func(i, j int) bool { return agents[i].ID < agents[j].ID })
	if n > len(agents) {
		n = len(agents)
	}
	shards := make([]Shard, n)
	ptrs := make([]*Shard, n)
	for i := range shards {
		shards[i].Index = i
		shards[i].Epoch = p.generation
		ptrs[i] = &shards[i]
	}
	shardAssign(p, agents, ptrs)
	return shards
}

// ShardPolicy is implemented by policies that can design one shard at a
// time — the fast path of the sharded pipeline. ShardContracts fills
// dst[i] with the contract for sh.Agents[i] (nil excludes the agent this
// round) and reports whether any entry changed since its previous call
// for this shard and epoch; false on a shard whose population view did
// not move lets the engine skip that shard's respond stage outright, as
// its retained outcomes are already this round's exact values.
//
// The engine calls ShardContracts once per shard per round; calls for
// different shards may run concurrently, so implementations must confine
// per-shard state to the shard (ShardDesigner does) or lock shared state.
// Policies that implement only Policy still work under Config.Shards —
// the engine designs through the whole-population Contracts call and runs
// just the respond stage per shard.
type ShardPolicy interface {
	Policy
	ShardContracts(ctx context.Context, pop *Population, sh *Shard, dst []*contract.PiecewiseLinear) (changed bool, err error)
}

// shardRun is the engine's retained per-shard state: the shard view, the
// policy's dense contract slots, the memo segment, respond scratch, and
// the warm-skip bookkeeping.
type shardRun struct {
	sh        Shard
	contracts []*contract.PiecewiseLinear
	memoSeg   *RespondMemoSegment
	scratch   respondScratch
	// outsOK records that the engine's outcome buffer already holds this
	// shard's outcomes for its current contracts — set after a dense-route
	// respond, cleared whenever the view, the contracts, or the buffer
	// change. A round where every shard is warm skips respond entirely.
	outsOK bool
	// changed is ShardContracts' report for the current round.
	changed bool
	// wu is the shard's summed worker utility from its last respond.
	wu float64
}

// invalidateShardOuts marks every shard's retained outcomes stale — the
// outcome backing array was replaced.
func (e *Engine) invalidateShardOuts() {
	for i := range e.shards {
		e.shards[i].outsOK = false
	}
}

// ensureShards (re)builds the per-shard views over the ID-sorted agent
// view, under the same caching contract as roundAgents: rebuilt when the
// population's generation moves, every round under Drift, and never
// otherwise. Reports whether a rebuild happened.
func (e *Engine) ensureShards(agents []*worker.Agent) bool {
	gen := e.pop.Generation()
	if e.shardsOK && e.cfg.Drift == nil && e.shardsGen == gen {
		return false
	}
	e.viewEpoch++
	n := e.cfg.Shards
	if n > len(agents) {
		n = len(agents)
	}
	if len(e.shards) != n {
		e.shards = make([]shardRun, n)
		e.shardPtrs = make([]*Shard, n)
	}
	for i := range e.shards {
		sr := &e.shards[i]
		sr.sh.Index = i
		sr.sh.Epoch = e.viewEpoch
		sr.sh.Agents = sr.sh.Agents[:0]
		sr.sh.Global = sr.sh.Global[:0]
		sr.sh.Weights = sr.sh.Weights[:0]
		sr.sh.Malice = sr.sh.Malice[:0]
		sr.sh.FPs = sr.sh.FPs[:0]
		sr.outsOK = false
		sr.changed = false
		if e.cfg.Memo != nil && sr.memoSeg == nil {
			sr.memoSeg = e.cfg.Memo.Segment()
		}
		e.shardPtrs[i] = &sr.sh
	}
	shardAssign(e.pop, agents, e.shardPtrs)
	for i := range e.shards {
		sr := &e.shards[i]
		na := len(sr.sh.Agents)
		if cap(sr.contracts) < na {
			sr.contracts = make([]*contract.PiecewiseLinear, na)
		}
		sr.contracts = sr.contracts[:na]
		for j := range sr.contracts {
			sr.contracts[j] = nil
		}
	}
	e.shardsOK = true
	e.shardsGen = gen
	if e.m != nil {
		e.m.shards.Set(float64(n))
	}
	return true
}

// designSharded is the design stage under Config.Shards > 0. With a
// ShardPolicy each shard designs independently (on the pool when the
// views were just rebuilt — warm validations are too cheap to fan out);
// otherwise the whole-population Contracts call runs once and only the
// respond stage is sharded.
func (e *Engine) designSharded(ctx context.Context, st *roundState) error {
	rebuilt := e.ensureShards(st.agents)
	if e.shardPol == nil {
		contracts, err := e.cfg.Policy.Contracts(ctx, e.pop)
		if err != nil {
			return fmt.Errorf("engine: policy %s round %d: %w", e.cfg.Policy.Name(), st.r, err)
		}
		st.contracts = contracts
		return nil
	}
	if rebuilt && len(e.shards) > 1 {
		if err := e.fanOut(ctx, st.r, len(e.shards), 0, func(i int) error {
			return e.designShard(ctx, st, i)
		}); err != nil {
			return err
		}
	} else {
		for i := range e.shards {
			if err := e.designShard(ctx, st, i); err != nil {
				return err
			}
		}
	}
	// The merged per-ID map exists only for observers (OnContracts); the
	// sharded respond stage reads the dense slots directly.
	if len(e.cfg.Observers) > 0 {
		st.contracts = e.mergeContracts(st, rebuilt)
	}
	return nil
}

// designShard designs one shard through the ShardPolicy.
func (e *Engine) designShard(ctx context.Context, st *roundState, i int) error {
	sr := &e.shards[i]
	var t telemetry.Timer
	if st.timed {
		t = telemetry.StartTimer()
	}
	changed, err := e.shardPol.ShardContracts(ctx, e.pop, &sr.sh, sr.contracts)
	if err != nil {
		return fmt.Errorf("engine: policy %s shard %d round %d: %w", e.cfg.Policy.Name(), i, st.r, err)
	}
	sr.changed = changed
	if changed {
		sr.outsOK = false
	}
	if st.timed {
		e.m.shardDesign.Observe(t.Seconds())
	}
	return nil
}

// mergeContracts assembles the observer-facing per-ID contract map from
// the dense shard slots: a full rewrite after a view rebuild, and only
// the changed shards' entries otherwise.
func (e *Engine) mergeContracts(st *roundState, rebuilt bool) map[string]*contract.PiecewiseLinear {
	if e.merged == nil {
		e.merged = make(map[string]*contract.PiecewiseLinear, len(st.agents))
		rebuilt = true
	}
	if rebuilt {
		clear(e.merged)
	}
	for si := range e.shards {
		sr := &e.shards[si]
		if !rebuilt && !sr.changed {
			continue
		}
		for i, a := range sr.sh.Agents {
			if c := sr.contracts[i]; c != nil {
				e.merged[a.ID] = c
			} else if !rebuilt {
				delete(e.merged, a.ID)
			}
		}
	}
	return e.merged
}

// respondSharded is the respond stage under Config.Shards > 0. Dirty
// shards (new views, changed contracts, replaced outcome buffer) respond
// on the pool; a fully warm round — every shard's retained outcomes
// already exact — skips the stage. Outcomes land in each agent's global
// ID-order slot, so the merge order is exactly the sequential engine's.
func (e *Engine) respondSharded(ctx context.Context, st *roundState) (float64, error) {
	if e.cfg.Responder != nil {
		return e.respondShardedHook(ctx, st)
	}
	fromMap := e.shardPol == nil
	dirty := 0
	for i := range e.shards {
		if fromMap {
			// Map-route contracts carry no change signal: respond every
			// round, exactly like the sequential engine.
			e.shards[i].outsOK = false
		}
		if !e.shards[i].outsOK {
			dirty++
		}
	}
	if dirty == 0 {
		return e.sumShardUtility(), nil
	}
	if dirty > 1 && len(e.shards) > 1 {
		if err := e.fanOut(ctx, st.r, len(e.shards), 0, func(i int) error {
			return e.respondShard(st, i)
		}); err != nil {
			return 0, err
		}
	} else {
		for i := range e.shards {
			if err := e.respondShard(st, i); err != nil {
				return 0, err
			}
		}
	}
	return e.sumShardUtility(), nil
}

// respondShard computes one dirty shard's best responses (clean shards
// return immediately), deduplicating through the shard's memo segment.
func (e *Engine) respondShard(st *roundState, i int) error {
	sr := &e.shards[i]
	if sr.outsOK {
		return nil
	}
	var t telemetry.Timer
	if st.timed {
		t = telemetry.StartTimer()
	}
	if err := e.respondShardSolve(sr, st); err != nil {
		return err
	}
	// Retained outcomes are exact until the view or the contracts change —
	// but only the dense route can see contracts change (the changed
	// report); map-route shards re-mark dirty every round above.
	sr.outsOK = true
	if st.timed {
		e.m.shardRespond.Observe(t.Seconds())
	}
	return nil
}

// respondShardSolve is the per-shard respond loop: the memoized dedup of
// respondMemoized, reading the shard's indexed views (no string-map
// lookups) and writing outcomes to pre-assigned global slots. Pending
// misses solve inline — shard-level parallelism comes from the pool.
func (e *Engine) respondShardSolve(sr *shardRun, st *roundState) error {
	s := &sr.scratch
	if s.keys == nil {
		s.keys = make(map[respondKey]int32, 16)
	} else {
		clear(s.keys)
	}
	s.resps = s.resps[:0]
	s.slots = s.slots[:0]
	s.pend = s.pend[:0]

	outs := st.round.Outcomes
	fromMap := e.shardPol == nil
	var lastKey respondKey
	lastSlot := int32(-1)
	for i, a := range sr.sh.Agents {
		var c *contract.PiecewiseLinear
		if fromMap {
			c = st.contracts[a.ID]
		} else {
			c = sr.contracts[i]
		}
		oc := &outs[sr.sh.Global[i]]
		*oc = AgentOutcome{AgentID: a.ID, Class: a.Class, Size: a.Size, Weight: sr.sh.Weights[i]}
		if c == nil {
			oc.Excluded = true
			s.slots = append(s.slots, -1)
			continue
		}
		key := respondKey{fp: sr.sh.FPs[i], c: c}
		if lastSlot >= 0 && key == lastKey {
			s.slots = append(s.slots, lastSlot)
			continue
		}
		slot, seen := s.keys[key]
		if !seen {
			slot = int32(len(s.resps))
			s.keys[key] = slot
			var resp worker.Response
			var hit bool
			if sr.memoSeg != nil {
				resp, hit = sr.memoSeg.Get(key.fp, key.c)
			}
			if hit {
				s.resps = append(s.resps, resp)
			} else {
				s.resps = append(s.resps, worker.Response{})
				s.pend = append(s.pend, pendResponse{slot: slot, a: a, key: key})
			}
		}
		lastKey, lastSlot = key, slot
		s.slots = append(s.slots, slot)
	}

	for pi := range s.pend {
		p := &s.pend[pi]
		resp, err := p.a.BestResponse(p.key.c, e.pop.Part)
		if err != nil {
			return fmt.Errorf("engine: agent %s round %d: %w", p.a.ID, st.r, err)
		}
		s.resps[p.slot] = resp
		if sr.memoSeg != nil {
			sr.memoSeg.Put(p.key.fp, p.key.c, resp)
		}
	}

	var wu float64
	for i := range sr.sh.Agents {
		slot := s.slots[i]
		if slot < 0 {
			continue
		}
		wu += fillResponse(&outs[sr.sh.Global[i]], s.resps[slot])
	}
	sr.wu = wu
	return nil
}

// sumShardUtility folds the per-shard worker-utility sums in shard order.
// (The association differs from the sequential engine's global-order sum,
// so the worker-utility gauge may differ in the last ulp; the ledger
// itself settles in one sequential global pass and stays byte-identical.)
func (e *Engine) sumShardUtility() float64 {
	var wu float64
	for i := range e.shards {
		wu += e.shards[i].wu
	}
	return wu
}

// respondShardedHook runs a custom Responder per shard — hooks are
// round-dependent, so there is no warm skip. Fanning out remains opt-in
// through ParallelRespond (the Responder must then be concurrency-safe),
// mirroring the sequential engine.
func (e *Engine) respondShardedHook(ctx context.Context, st *roundState) (float64, error) {
	if e.cfg.ParallelRespond > 0 && len(e.shards) > 1 {
		if err := e.fanOut(ctx, st.r, len(e.shards), e.cfg.ParallelRespond, func(i int) error {
			return e.respondShardHook(st, i)
		}); err != nil {
			return 0, err
		}
	} else {
		for i := range e.shards {
			if err := e.respondShardHook(st, i); err != nil {
				return 0, err
			}
		}
	}
	return e.sumShardUtility(), nil
}

// respondShardHook runs the Responder over one shard.
func (e *Engine) respondShardHook(st *roundState, i int) error {
	sr := &e.shards[i]
	sr.outsOK = false
	outs := st.round.Outcomes
	var wu float64
	for j, a := range sr.sh.Agents {
		var c *contract.PiecewiseLinear
		if e.shardPol != nil {
			c = sr.contracts[j]
		} else {
			c = st.contracts[a.ID]
		}
		oc := &outs[sr.sh.Global[j]]
		*oc = AgentOutcome{AgentID: a.ID, Class: a.Class, Size: a.Size, Weight: sr.sh.Weights[j]}
		if c == nil {
			oc.Excluded = true
			continue
		}
		y, err := e.cfg.Responder(st.r, a, c, e.pop.Part)
		if err != nil {
			return fmt.Errorf("engine: responder for %s round %d: %w", a.ID, st.r, err)
		}
		y = clampEffort(y, a, e.pop.Part)
		q := a.Psi.Eval(y)
		oc.Effort = y
		oc.Feedback = q
		oc.Compensation = c.Eval(q)
		wu += a.Utility(c, y)
	}
	sr.wu = wu
	return nil
}
