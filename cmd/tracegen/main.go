// Command tracegen generates a synthetic Amazon-like review trace
// calibrated to the paper's dataset statistics and writes it to disk.
//
// Usage:
//
//	tracegen [-scale small|paper] [-seed n] [-format jsonl|csv] [-out prefix]
//
// With -format jsonl (default) a single <prefix>.jsonl file is written;
// with -format csv two files are written: <prefix>_reviews.csv and
// <prefix>_workers.csv.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dyncontract/internal/synth"
	"dyncontract/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		scale  = fs.String("scale", "small", "trace scale: small or paper")
		seed   = fs.Int64("seed", 42, "generation seed")
		format = fs.String("format", "jsonl", "output format: jsonl or csv")
		prefix = fs.String("out", "trace", "output path prefix")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg synth.Config
	switch *scale {
	case "small":
		cfg = synth.SmallScale(*seed)
	case "paper":
		cfg = synth.PaperScale(*seed)
	default:
		return fmt.Errorf("unknown scale %q (want small or paper)", *scale)
	}

	tr, err := synth.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "generated %d reviews by %d workers over %d products (%d malicious)\n",
		len(tr.Reviews), len(tr.Workers), tr.NumProducts(), len(tr.MaliciousWorkerIDs()))

	switch *format {
	case "jsonl":
		path := *prefix + ".jsonl"
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %w", path, err)
		}
		if err := tr.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close %s: %w", path, err)
		}
		fmt.Fprintln(out, "wrote", path)
	case "csv":
		reviewsPath := *prefix + "_reviews.csv"
		rf, err := os.Create(reviewsPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", reviewsPath, err)
		}
		if err := trace.WriteReviewsCSV(rf, tr.Reviews); err != nil {
			rf.Close()
			return err
		}
		if err := rf.Close(); err != nil {
			return fmt.Errorf("close %s: %w", reviewsPath, err)
		}
		workersPath := *prefix + "_workers.csv"
		wf, err := os.Create(workersPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", workersPath, err)
		}
		if err := trace.WriteWorkersCSV(wf, tr.Workers); err != nil {
			wf.Close()
			return err
		}
		if err := wf.Close(); err != nil {
			return fmt.Errorf("close %s: %w", workersPath, err)
		}
		fmt.Fprintln(out, "wrote", reviewsPath, "and", workersPath)
	default:
		return fmt.Errorf("unknown format %q (want jsonl or csv)", *format)
	}
	return nil
}
