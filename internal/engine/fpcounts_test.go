package engine

import (
	"context"
	"fmt"
	"testing"

	"dyncontract/internal/contract"
	"dyncontract/internal/effort"
	"dyncontract/internal/worker"
)

// stubPolicy pays a flat rate to everyone — the simplest Policy, enough
// to drive the sharded view machinery the index test exercises.
type stubPolicy struct{}

func (stubPolicy) Name() string { return "stub" }

func (stubPolicy) Contracts(_ context.Context, pop *Population) (map[string]*contract.PiecewiseLinear, error) {
	c, err := contract.Flat(0, pop.Part.YMax(), 1)
	if err != nil {
		return nil, err
	}
	m := make(map[string]*contract.PiecewiseLinear, len(pop.Agents))
	for _, a := range pop.Agents {
		m[a.ID] = c
	}
	return m, nil
}

// walkFPCounts recomputes the fingerprint refcount index the slow way —
// a full walk over every shard view — as the reference the eagerly
// maintained index must match after every kind of drift.
func walkFPCounts(e *Engine) map[Fingerprint]int32 {
	m := make(map[Fingerprint]int32)
	for i := range e.shards {
		for _, fp := range e.shards[i].sh.FPs {
			m[fp]++
		}
	}
	return m
}

func fpCountsPop(t *testing.T, n int) *Population {
	t.Helper()
	part, err := effort.NewPartition(20, 2)
	if err != nil {
		t.Fatal(err)
	}
	psi, err := effort.NewQuadratic(-0.02, 2.1, 1, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	pop := &Population{
		Weights:    make(map[string]float64, n),
		MaliceProb: make(map[string]float64),
		Part:       part,
		Mu:         1,
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("a%05d", i)
		a, err := worker.NewHonest(id, psi, 1+0.01*float64(i%5), part.YMax())
		if err != nil {
			t.Fatal(err)
		}
		pop.Agents = append(pop.Agents, a)
		pop.Weights[id] = 0.8 + 0.05*float64(i%3)
	}
	if err := pop.Validate(); err != nil {
		t.Fatal(err)
	}
	return pop
}

// TestFPCountsEager pins the eager refcount index: it exists right after
// the full rebuild (no lazy walk left to trigger), and it stays equal to
// a fresh walk of the shard views through sparse refreshes, structural
// splices, and a forced full rebuild.
func TestFPCountsEager(t *testing.T) {
	ctx := context.Background()
	pop := fpCountsPop(t, 24)
	eng, err := New(pop, Config{
		Policy: &stubPolicy{},
		Rounds: 1,
		Cache:  NewCache(),
		Memo:   NewRespondMemo(),
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		if eng.fpCounts == nil {
			t.Fatalf("%s: fpCounts index is nil with a cache attached", stage)
		}
		want := walkFPCounts(eng)
		if len(eng.fpCounts) != len(want) {
			t.Fatalf("%s: index has %d fingerprints, walk finds %d", stage, len(eng.fpCounts), len(want))
		}
		for fp, c := range want {
			if got := eng.fpCounts[fp]; got != c {
				t.Fatalf("%s: fingerprint count %d, want %d", stage, got, c)
			}
		}
	}

	if err := eng.Step(ctx); err != nil {
		t.Fatal(err)
	}
	check("after full rebuild")

	// Sparse refresh: weight drift re-mints one agent's fingerprint.
	pop.Weights["a00003"] *= 1.5
	pop.Touch("a00003")
	if err := eng.Step(ctx); err != nil {
		t.Fatal(err)
	}
	check("after sparse refresh")

	// Weight drift onto an existing fingerprint: the shared count rises.
	pop.Weights["a00007"] = pop.Weights["a00003"]
	pop.Touch("a00007")
	if err := eng.Step(ctx); err != nil {
		t.Fatal(err)
	}
	check("after sparse dedup refresh")

	// Structural splice: one join, one leave.
	psi := pop.Agents[0].Psi
	joined, err := worker.NewHonest("zz-join", psi, 1.3, pop.Part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	pop.Agents = append(pop.Agents, joined)
	pop.Weights[joined.ID] = 0.7
	gone := pop.Agents[0]
	pop.Agents = append(pop.Agents[:0], pop.Agents[1:]...)
	delete(pop.Weights, gone.ID)
	pop.TouchJoin(joined.ID)
	pop.TouchLeave(gone.ID)
	if err := eng.Step(ctx); err != nil {
		t.Fatal(err)
	}
	check("after structural splice")

	// A Bump forces the full-rebuild path; the index must be rebuilt
	// eagerly there, not left stale or nil.
	pop.Bump()
	if err := eng.Step(ctx); err != nil {
		t.Fatal(err)
	}
	check("after forced full rebuild")
}

// TestFPCountsOffWithoutCaches pins the gate: with neither a design
// cache nor a respond memo there is nothing to evict, so the index stays
// off through rebuilds and drifts alike.
func TestFPCountsOffWithoutCaches(t *testing.T) {
	ctx := context.Background()
	pop := fpCountsPop(t, 12)
	eng, err := New(pop, Config{
		Policy: &stubPolicy{},
		Rounds: 1,
		Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(ctx); err != nil {
		t.Fatal(err)
	}
	pop.Weights["a00002"] *= 1.2
	pop.Touch("a00002")
	if err := eng.Step(ctx); err != nil {
		t.Fatal(err)
	}
	if eng.fpCounts != nil {
		t.Fatal("fpCounts index built without a cache or memo to evict from")
	}
}
