package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunDefaultHonest(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"honest", "designed contract", "k_opt", "Theorem 4.1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMaliciousJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-class", "malicious", "-json"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	var payload struct {
		KOpt         int     `json:"k_opt"`
		Compensation float64 `json:"compensation"`
		Contract     struct {
			Knots []float64 `json:"knots"`
			Comps []float64 `json:"comps"`
		} `json:"contract"`
	}
	if err := json.Unmarshal(buf.Bytes(), &payload); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if payload.KOpt < 1 {
		t.Errorf("k_opt = %d", payload.KOpt)
	}
	if len(payload.Contract.Knots) == 0 || len(payload.Contract.Knots) != len(payload.Contract.Comps) {
		t.Errorf("contract knots/comps malformed: %+v", payload.Contract)
	}
}

func TestRunErrors(t *testing.T) {
	cases := map[string][]string{
		"bad class":     {"-class", "robot"},
		"convex psi":    {"-r2", "0.5"},
		"bad slope":     {"-r1", "-1"},
		"bad partition": {"-m", "0"},
		"bad mu":        {"-mu", "-1"},
		"bad flag":      {"-definitely-not-a-flag"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(args, &buf); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestRunCustomYMax(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-ymax", "30", "-m", "6"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "m=6") {
		t.Errorf("partition not reflected:\n%s", buf.String())
	}
}
