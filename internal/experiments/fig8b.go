package experiments

import (
	"fmt"

	"dyncontract/internal/core"
	"dyncontract/internal/stats"
	"dyncontract/internal/worker"
)

// fig8bMus are the compensation weights compared in Fig. 8(b).
var fig8bMus = []float64{1.0, 0.9, 0.8}

// fig8bMaxPerClass caps per-class sample sizes to keep the experiment fast
// at paper scale; sampling is deterministic (strided over sorted IDs).
const fig8bMaxPerClass = 300

// RunFig8b regenerates Fig. 8(b): the average, 5th-percentile, and
// 95th-percentile compensation paid to honest workers, non-collusive
// malicious workers, and collusive malicious workers, for μ = 1.0, 0.9,
// 0.8. The paper's two observations are asserted in the notes:
//
//  1. compensation increases as μ decreases (a generous requester), and
//  2. honest > non-collusive malicious > collusive malicious compensation,
//     driven by the Eq. (5) penalties κ·e^mal and γ·A_i.
//
// Collusive communities are designed for as meta-workers; each member's
// reported compensation is the community payment split evenly.
func RunFig8b(p *Pipeline, params Params) (*Report, error) {
	rep := &Report{
		ID:     "fig8b",
		Title:  "compensation by worker class for varying mu",
		Header: []string{"mu", "class", "workers", "mean", "p5", "p95"},
	}

	classMeans := make(map[float64]map[worker.Class]float64, len(fig8bMus))
	for _, mu := range fig8bMus {
		muParams := params
		muParams.Mu = mu
		byClass, err := p.classCompensations(muParams)
		if err != nil {
			return nil, err
		}
		classMeans[mu] = make(map[worker.Class]float64, 3)
		for _, cls := range []worker.Class{worker.Honest, worker.NonCollusiveMalicious, worker.CollusiveMalicious} {
			comps := byClass[cls]
			if len(comps) == 0 {
				return nil, fmt.Errorf("%w: class %v yielded no compensations", ErrPipeline, cls)
			}
			sum, err := stats.Summarize(comps)
			if err != nil {
				return nil, err
			}
			classMeans[mu][cls] = sum.Mean
			rep.Rows = append(rep.Rows, []string{
				f2(mu), cls.String(), fmt.Sprintf("%d", sum.N), f3(sum.Mean), f3(sum.P5), f3(sum.P95),
			})
			if mu == 1.0 {
				rep.BarLabels = append(rep.BarLabels, cls.String())
				rep.BarValues = append(rep.BarValues, sum.Mean)
			}
		}
	}

	// Observation (2): class ordering at each mu.
	orderingHolds := true
	for _, mu := range fig8bMus {
		m := classMeans[mu]
		if !(m[worker.Honest] >= m[worker.NonCollusiveMalicious] &&
			m[worker.NonCollusiveMalicious] >= m[worker.CollusiveMalicious]) {
			orderingHolds = false
		}
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"honest >= NCM >= CM mean compensation at every mu: %v (paper observation 2)", orderingHolds))

	// Observation (1): lower mu pays more, per class.
	generous := true
	for _, cls := range []worker.Class{worker.Honest, worker.NonCollusiveMalicious, worker.CollusiveMalicious} {
		if !(classMeans[0.8][cls] >= classMeans[1.0][cls]-1e-9) {
			generous = false
		}
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"compensation rises as mu falls (mu=0.8 vs mu=1.0, per class): %v (paper observation 1)", generous))
	return rep, nil
}

// classCompensations designs contracts for (a sample of) each class and
// returns per-class per-worker compensations.
func (p *Pipeline) classCompensations(params Params) (map[worker.Class][]float64, error) {
	pt, err := p.Partition(params.M)
	if err != nil {
		return nil, err
	}
	out := make(map[worker.Class][]float64, 3)

	design := func(a *worker.Agent, w float64) (float64, error) {
		if w <= 0 {
			// The requester values this worker's feedback non-positively:
			// the cheapest contract is offered and the worker best-responds
			// with (near) zero effort, earning (near) zero pay.
			w = 0.01
		}
		res, err := core.Design(a, core.Config{Part: pt, Mu: params.Mu, W: w})
		if err != nil {
			return 0, err
		}
		return res.Response.Compensation, nil
	}

	for _, id := range sampleIDs(p.HonestIDs, fig8bMaxPerClass) {
		a, err := p.Agent(id, params, pt)
		if err != nil {
			return nil, err
		}
		w, err := p.WorkerWeight(id, params)
		if err != nil {
			return nil, err
		}
		comp, err := design(a, w)
		if err != nil {
			return nil, fmt.Errorf("fig8b honest %s: %w", id, err)
		}
		out[worker.Honest] = append(out[worker.Honest], comp)
	}
	for _, id := range sampleIDs(p.NCMIDs, fig8bMaxPerClass) {
		a, err := p.Agent(id, params, pt)
		if err != nil {
			return nil, err
		}
		w, err := p.WorkerWeight(id, params)
		if err != nil {
			return nil, err
		}
		comp, err := design(a, w)
		if err != nil {
			return nil, fmt.Errorf("fig8b ncm %s: %w", id, err)
		}
		out[worker.NonCollusiveMalicious] = append(out[worker.NonCollusiveMalicious], comp)
	}
	for ci := range p.Communities {
		a, err := p.CommunityAgent(ci, params, pt)
		if err != nil {
			return nil, err
		}
		// Community weight: average member weight (members share signals).
		var wSum float64
		for _, id := range p.Communities[ci].Members {
			w, err := p.WorkerWeight(id, params)
			if err != nil {
				return nil, err
			}
			wSum += w
		}
		wAvg := wSum / float64(p.Communities[ci].Size())
		comp, err := design(a, wAvg)
		if err != nil {
			return nil, fmt.Errorf("fig8b community %d: %w", ci, err)
		}
		// Per-member share of the community payment.
		share := comp / float64(p.Communities[ci].Size())
		for range p.Communities[ci].Members {
			out[worker.CollusiveMalicious] = append(out[worker.CollusiveMalicious], share)
		}
	}
	return out, nil
}

// sampleIDs returns a deterministic prefix sample of the sorted IDs.
func sampleIDs(ids []string, maxN int) []string {
	if len(ids) <= maxN {
		return ids
	}
	// Deterministic strided sample across the sorted range (not just the
	// prefix, which could correlate with generation order).
	out := make([]string, 0, maxN)
	stride := float64(len(ids)) / float64(maxN)
	for i := 0; i < maxN; i++ {
		out = append(out, ids[int(float64(i)*stride)])
	}
	return out
}
