// Command loadgen hammers a running contractd with a mixed workload of
// round advances, design-only queries, (with -drift-every) sparse
// drift mutations, and (with -join-every / -leave-every) structural
// churn — agents joining and leaving mid-session — then prints a
// latency and error summary. It drives
// either closed-loop load (each client issues its next request as soon as
// the previous answers) or open-loop load (-rate fixes total request
// arrivals per second regardless of response times — the honest way to
// measure latency under load).
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8080 [-clients n] [-duration d]
//	        [-requests n] [-rate qps] [-round-every k] [-weights n]
//	        [-drift-every k] [-drift-agents n] [-churn]
//	        [-join-every k] [-leave-every k]
//	        [-scale small|paper] [-seed n] [-per-class n] [-strict]
//	        [-journal-check file]
//	loadgen -addr ... -healthcheck [-healthcheck-timeout d]
//
// -join-every k makes every k-th non-round request add a fresh agent to
// the session (ids are namespaced per client, lg-<client>-<seq>, so
// concurrent joins never collide); -leave-every k removes the oldest
// agent that client previously joined, so the population oscillates
// instead of growing without bound. Join and leave latencies are
// reported as their own kinds, separating the structural drift path
// from scalar weight nudges.
//
// -churn precedes every round advance with a drift that mints a fresh,
// never-repeating weight for every agent, so no design fingerprint
// survives between rounds and each advance runs the engine's cold design
// path end to end (the all-cold steady state of churning marketplaces
// and bandit policies).
//
// -journal-check file is the client half of contractd's durability
// contract. On a fresh file, every acknowledged round-advance response is
// recorded (with full outcomes) and written to the file alongside the
// session ID at exit. When the file already exists — after killing and
// restarting a contractd on the same -journal-dir — loadgen first fetches
// the recovered session's ledger and requires every recorded round to
// come back byte-identical before driving new load against the same
// session (and re-saving the grown record set). Against an -journal-sync
// fsync server a verification failure is a durability bug; in buffered
// mode an un-flushed suffix may legitimately be missing.
//
// With -healthcheck it instead polls /healthz until the server answers 200
// (exit 0) or the timeout passes (exit 1) — a curl-free readiness probe
// for scripts.
//
// Every request carries a unique X-Request-Id; against a contractd running
// with -trace, the summary's failure and p99-outlier lines name the ids to
// fetch from /debug/traces?id= for the full span tree of the offending
// request.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"dyncontract/internal/server"
	"dyncontract/internal/spans"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// result is one request's fate. id is the X-Request-Id the request
// carried — against a contractd running with -trace, fetching
// /debug/traces?id=<id> returns that request's span tree, so the summary
// prints the ids of failures and latency outliers.
type result struct {
	kind    string // "round", "design", "drift", "join", or "leave"
	status  int    // 0 on transport error
	latency time.Duration
	id      string
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "http://127.0.0.1:8080", "contractd base URL")
		healthcheck = fs.Bool("healthcheck", false, "poll /healthz until ready, then exit")
		healthTO    = fs.Duration("healthcheck-timeout", 10*time.Second, "healthcheck deadline")
		clients     = fs.Int("clients", 8, "concurrent clients")
		duration    = fs.Duration("duration", 3*time.Second, "run length (ignored when -requests > 0)")
		requests    = fs.Int("requests", 0, "requests per client (0 = run for -duration)")
		rate        = fs.Float64("rate", 0, "open-loop total arrivals per second (0 = closed loop)")
		roundEvery  = fs.Int("round-every", 10, "every k-th request advances a round (0 = designs only)")
		weights     = fs.Int("weights", 4, "distinct feedback weights cycled through design queries")
		driftEvery  = fs.Int("drift-every", 0, "every k-th non-round request issues a sparse drift (0 = no drifts)")
		driftAgents = fs.Int("drift-agents", 1, "agents mutated per drift request (rotated round-robin over the session)")
		churn       = fs.Bool("churn", false, "precede every round advance with a fresh-weights drift for all agents (all-cold design rounds)")
		joinEvery   = fs.Int("join-every", 0, "every k-th non-round request joins a fresh agent (0 = no joins)")
		leaveEvery  = fs.Int("leave-every", 0, "every k-th non-round request removes this client's oldest joined agent (0 = no leaves)")
		scale       = fs.String("scale", "", "create a synthetic session (small or paper) instead of the inline population")
		seed        = fs.Int64("seed", 42, "synthetic session seed")
		perClass    = fs.Int("per-class", 50, "synthetic session agents per class")
		strict      = fs.Bool("strict", false, "fail on any transport error or non-2xx/429 status")
		jcheck      = fs.String("journal-check", "", "record acknowledged rounds to this state file; when it exists, verify them byte-for-byte against the recovered ledger first")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := &http.Client{Timeout: 30 * time.Second}

	if *healthcheck {
		return waitHealthy(client, *addr, *healthTO, out)
	}
	if *weights < 1 {
		*weights = 1
	}

	jc, err := loadJournalChecker(*jcheck)
	if err != nil {
		return err
	}
	var sessID string
	if jc != nil && jc.Session != "" {
		// A prior run recorded this session: the server was restarted over
		// its journal, so the recovered ledger must serve every recorded
		// round byte-identical before any new load rides on it.
		sessID = jc.Session
		if err := jc.verify(client, *addr, out); err != nil {
			return err
		}
	} else {
		if sessID, err = createSession(client, *addr, *scale, *seed, *perClass); err != nil {
			return err
		}
		if jc != nil {
			jc.Session = sessID
		}
	}
	// Drift requests mutate real agents, so harvest the session's agent
	// IDs and base weights from a priming round — robust for -scale
	// sessions, whose IDs are server-generated.
	var driftIDs []string
	driftBase := map[string]float64{}
	if *driftEvery > 0 || *churn {
		if *driftAgents < 1 {
			*driftAgents = 1
		}
		driftIDs, driftBase, err = harvestAgents(client, *addr, sessID)
		if err != nil {
			return err
		}
		if *driftAgents > len(driftIDs) {
			*driftAgents = len(driftIDs)
		}
	}
	fmt.Fprintf(out, "loadgen: session %s at %s; %d clients, ", sessID, *addr, *clients)
	if *rate > 0 {
		fmt.Fprintf(out, "open loop at %.0f req/s, ", *rate)
	} else {
		fmt.Fprint(out, "closed loop, ")
	}
	if *requests > 0 {
		fmt.Fprintf(out, "%d requests/client\n", *requests)
	} else {
		fmt.Fprintf(out, "%s\n", *duration)
	}

	// Open loop: a token channel paced by a global ticker; clients consume
	// tokens. A full channel means the fleet cannot keep up — those
	// arrivals are counted, not silently absorbed into the pacing.
	var tokens chan struct{}
	var overload int64
	var overloadMu sync.Mutex
	stop := make(chan struct{})
	if *rate > 0 {
		tokens = make(chan struct{}, (*clients)*4)
		interval := time.Duration(float64(time.Second) / *rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					select {
					case tokens <- struct{}{}:
					default:
						overloadMu.Lock()
						overload++
						overloadMu.Unlock()
					}
				}
			}
		}()
	}

	start := time.Now()
	deadline := start.Add(*duration)
	resCh := make(chan []result, *clients)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var res []result
			// Structural churn state: agents this client has joined (and
			// not yet removed), in join order. IDs are namespaced by
			// client so concurrent joiners never race on one agent.
			var joined []string
			joinSeq := 0
			for i := 0; ; i++ {
				if *requests > 0 {
					if i >= *requests {
						break
					}
				} else if time.Now().After(deadline) {
					break
				}
				if tokens != nil {
					select {
					case <-tokens:
					case <-time.After(time.Until(deadline)):
						break
					}
					if *requests == 0 && time.Now().After(deadline) {
						break
					}
				}
				n := c*1_000_000 + i
				reqID := fmt.Sprintf("loadgen-%d", n)
				if *roundEvery > 0 && n%*roundEvery == 0 {
					if *churn {
						// Mint a fresh fingerprint for every agent: the
						// perturbation is unique per request (n never
						// repeats), so the following round's designs are
						// all cold. The factor stays within ±12% of base
						// over any plausible run, keeping weights valid.
						w := make(map[string]float64, len(driftIDs))
						for _, id := range driftIDs {
							w[id] = driftBase[id] * (1 + 1e-8*float64(n+1))
						}
						res = append(res, doJSON(client, "drift", *addr+"/v1/sessions/"+sessID+"/drift", server.DriftRequest{Weights: w}, reqID+"-churn"))
					}
					roundReq := server.AdvanceRoundRequest{IncludeOutcomes: jc != nil}
					r, body := doJSONCapture(client, "round", *addr+"/v1/sessions/"+sessID+"/rounds", roundReq, reqID)
					if jc != nil && r.status == http.StatusOK {
						jc.record(body)
					}
					res = append(res, r)
				} else if *joinEvery > 0 && i%*joinEvery == 0 {
					// Join a fresh agent; its honest-archetype spec shares
					// the inline population's psi so the contract cache can
					// serve it by fingerprint.
					id := fmt.Sprintf("lg-%d-%d", c, joinSeq)
					joinSeq++
					r := doJSON(client, "join", *addr+"/v1/sessions/"+sessID+"/drift", server.DriftRequest{
						Add: []server.AgentSpec{{
							ID:    id,
							Class: "honest",
							Psi:   server.PsiSpec{R2: -0.25, R1: 2},
							Beta:  1, Weight: 1,
						}},
					}, reqID)
					if r.status >= 200 && r.status < 300 {
						joined = append(joined, id)
					}
					res = append(res, r)
				} else if *leaveEvery > 0 && i%*leaveEvery == *leaveEvery-1 && len(joined) > 0 {
					// The leave cadence is offset to the end of its period
					// so -join-every k -leave-every k alternates instead of
					// joins always shadowing leaves on the same slots.
					// Remove this client's oldest joined agent; only
					// successfully joined ids are ever removed, so the
					// request cannot 404 on an unknown agent.
					id := joined[0]
					r := doJSON(client, "leave", *addr+"/v1/sessions/"+sessID+"/drift", server.DriftRequest{
						Remove: []string{id},
					}, reqID)
					if r.status >= 200 && r.status < 300 {
						joined = joined[1:]
					}
					res = append(res, r)
				} else if *driftEvery > 0 && n%*driftEvery == 0 {
					// Sparse drift: nudge k agents' weights around their
					// base, rotating the window so the whole session
					// drifts over a long soak. Values oscillate, never
					// compound, so the session stays valid indefinitely.
					w := map[string]float64{}
					for j := 0; j < *driftAgents; j++ {
						id := driftIDs[(n+j)%len(driftIDs)]
						w[id] = driftBase[id] * (1 + 0.01*float64(n%3))
					}
					res = append(res, doJSON(client, "drift", *addr+"/v1/sessions/"+sessID+"/drift", server.DriftRequest{Weights: w}, reqID))
				} else {
					w := 0.5 + 0.25*float64(n%*weights)
					q := server.DesignQueryRequest{Agent: &server.AgentSpec{
						ID:    "probe",
						Class: "honest",
						Psi:   server.PsiSpec{R2: -0.25, R1: 2},
						Beta:  1, Weight: w,
					}}
					res = append(res, doJSON(client, "design", *addr+"/v1/sessions/"+sessID+"/design", q, reqID))
				}
			}
			resCh <- res
		}(c)
	}
	wg.Wait()
	close(stop)
	close(resCh)
	elapsed := time.Since(start)

	var all []result
	for res := range resCh {
		all = append(all, res...)
	}
	if jc != nil {
		if err := jc.save(*jcheck); err != nil {
			return err
		}
		fmt.Fprintf(out, "loadgen: journal-check: %d acknowledged rounds recorded to %s\n", len(jc.Rounds), *jcheck)
	}
	return summarize(out, all, elapsed, overload, *strict)
}

// waitHealthy polls /healthz until 200 or the deadline.
func waitHealthy(client *http.Client, addr string, timeout time.Duration, out io.Writer) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				fmt.Fprintln(out, "loadgen: server healthy")
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("healthcheck: %w", err)
			}
			return fmt.Errorf("healthcheck: server not healthy within %s", timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// createSession mints the session the load runs against.
func createSession(client *http.Client, addr, scale string, seed int64, perClass int) (string, error) {
	var req server.CreateSessionRequest
	if scale != "" {
		req = server.CreateSessionRequest{Scale: scale, Seed: seed, PerClass: perClass}
	} else {
		psi := server.PsiSpec{R2: -0.25, R1: 2}
		req = server.CreateSessionRequest{
			Agents: []server.AgentSpec{
				{ID: "h1", Class: "honest", Psi: psi, Beta: 1, Weight: 1},
				{ID: "h2", Class: "honest", Psi: psi, Beta: 1.2, Weight: 1},
				{ID: "m1", Class: "malicious", Psi: psi, Beta: 1, Omega: 0.5, Weight: 0.8, Malice: 0.9},
				{ID: "c1", Class: "community", Psi: psi, Beta: 1, Omega: 0.3, Size: 3, Weight: 0.5},
			},
			M: 10, Delta: 0.2, Mu: 1,
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	resp, err := client.Post(addr+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", fmt.Errorf("create session: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("create session: status %d: %s", resp.StatusCode, raw)
	}
	var created server.CreateSessionResponse
	if err := json.Unmarshal(raw, &created); err != nil {
		return "", fmt.Errorf("create session: decode %q: %w", raw, err)
	}
	return created.ID, nil
}

// harvestAgents advances one priming round with outcomes included and
// returns the session's agent IDs plus their current feedback weights —
// the base values drift requests oscillate around.
func harvestAgents(client *http.Client, addr, sessID string) ([]string, map[string]float64, error) {
	body, err := json.Marshal(server.AdvanceRoundRequest{IncludeOutcomes: true})
	if err != nil {
		return nil, nil, err
	}
	resp, err := client.Post(addr+"/v1/sessions/"+sessID+"/rounds", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, fmt.Errorf("priming round: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("priming round: status %d: %s", resp.StatusCode, raw)
	}
	var round server.RoundJSON
	if err := json.Unmarshal(raw, &round); err != nil {
		return nil, nil, fmt.Errorf("priming round: decode %q: %w", raw, err)
	}
	ids := make([]string, 0, len(round.Outcomes))
	base := make(map[string]float64, len(round.Outcomes))
	for _, o := range round.Outcomes {
		ids = append(ids, o.AgentID)
		base[o.AgentID] = o.Weight
	}
	if len(ids) == 0 {
		return nil, nil, fmt.Errorf("priming round: no agent outcomes returned")
	}
	return ids, base, nil
}

// doJSON issues one POST carrying reqID as X-Request-Id and records its
// fate; bodies are drained so the client reuses connections.
func doJSON(client *http.Client, kind, url string, payload any, reqID string) result {
	r, _ := doJSONCapture(client, kind, url, payload, reqID)
	return r
}

// doJSONCapture is doJSON keeping the response body — the round recorder
// needs the acknowledged bytes, not just the status.
func doJSONCapture(client *http.Client, kind, url string, payload any, reqID string) (result, []byte) {
	body, err := json.Marshal(payload)
	if err != nil {
		return result{kind: kind, id: reqID}, nil
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return result{kind: kind, id: reqID}, nil
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(spans.HeaderRequestID, reqID)
	start := time.Now()
	resp, err := client.Do(req)
	lat := time.Since(start)
	if err != nil {
		return result{kind: kind, latency: lat, id: reqID}, nil
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return result{kind: kind, latency: lat, id: reqID}, nil
	}
	return result{kind: kind, status: resp.StatusCode, latency: lat, id: reqID}, raw
}

// journalChecker is the client half of the server's durability contract:
// it remembers every acknowledged round-advance response, keyed by round
// index, and after a restart requires the recovered ledger to serve each
// one byte-identical.
type journalChecker struct {
	mu sync.Mutex

	// Session is the session the rounds belong to.
	Session string `json:"session"`
	// Rounds maps round index to the acknowledged response body.
	Rounds map[string]json.RawMessage `json:"rounds"`
}

// loadJournalChecker reads the state file, returning a fresh recorder
// when the file does not exist yet and nil when the feature is off.
func loadJournalChecker(path string) (*journalChecker, error) {
	if path == "" {
		return nil, nil
	}
	jc := &journalChecker{Rounds: map[string]json.RawMessage{}}
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return jc, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal-check: %w", err)
	}
	if err := json.Unmarshal(raw, jc); err != nil {
		return nil, fmt.Errorf("journal-check: decode %s: %w", path, err)
	}
	if jc.Rounds == nil {
		jc.Rounds = map[string]json.RawMessage{}
	}
	return jc, nil
}

// record stores one acknowledged round response under its round index.
func (jc *journalChecker) record(body []byte) {
	var hdr struct {
		Round int `json:"round"`
	}
	if json.Unmarshal(body, &hdr) != nil {
		return
	}
	jc.mu.Lock()
	jc.Rounds[strconv.Itoa(hdr.Round)] = json.RawMessage(bytes.TrimSpace(body))
	jc.mu.Unlock()
}

// save writes the state file for the next run to verify against.
func (jc *journalChecker) save(path string) error {
	jc.mu.Lock()
	raw, err := json.Marshal(jc)
	jc.mu.Unlock()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("journal-check: %w", err)
	}
	return nil
}

// verify fetches the recovered session's ledger and requires every
// recorded round to come back byte-identical at its index.
func (jc *journalChecker) verify(client *http.Client, addr string, out io.Writer) error {
	resp, err := client.Get(addr + "/v1/sessions/" + jc.Session + "/rounds")
	if err != nil {
		return fmt.Errorf("journal-check: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("journal-check: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("journal-check: session %s not recovered: status %d: %s", jc.Session, resp.StatusCode, raw)
	}
	var ledger []json.RawMessage
	if err := json.Unmarshal(raw, &ledger); err != nil {
		return fmt.Errorf("journal-check: decode ledger: %w", err)
	}
	for key, want := range jc.Rounds {
		idx, err := strconv.Atoi(key)
		if err != nil {
			return fmt.Errorf("journal-check: bad round key %q", key)
		}
		if idx >= len(ledger) {
			return fmt.Errorf("journal-check: acknowledged round %d missing from recovered ledger (%d rounds served)", idx, len(ledger))
		}
		if got := bytes.TrimSpace(ledger[idx]); !bytes.Equal(got, bytes.TrimSpace(want)) {
			return fmt.Errorf("journal-check: round %d differs after restart:\n  got %s\n want %s", idx, got, want)
		}
	}
	fmt.Fprintf(out, "loadgen: journal-check: %d acknowledged rounds verified byte-identical after restart\n", len(jc.Rounds))
	return nil
}

// summarize prints counts and latency percentiles, and enforces -strict.
func summarize(out io.Writer, all []result, elapsed time.Duration, overload int64, strict bool) error {
	type agg struct {
		ok, rejected, errors int
		lats                 []time.Duration
	}
	byKind := map[string]*agg{"round": {}, "design": {}, "drift": {}, "join": {}, "leave": {}}
	var lats []time.Duration
	for _, r := range all {
		a := byKind[r.kind]
		switch {
		case r.status >= 200 && r.status < 300:
			a.ok++
			a.lats = append(a.lats, r.latency)
			lats = append(lats, r.latency)
		case r.status == http.StatusTooManyRequests:
			a.rejected++
		default:
			a.errors++
		}
	}
	fmt.Fprintf(out, "loadgen: %d requests in %.2fs (%.1f req/s)\n",
		len(all), elapsed.Seconds(), float64(len(all))/elapsed.Seconds())
	for _, kind := range []string{"round", "design", "drift", "join", "leave"} {
		a := byKind[kind]
		if (kind == "join" || kind == "leave") && a.ok+a.rejected+a.errors == 0 {
			continue
		}
		fmt.Fprintf(out, "  %-7s %6d ok  %5d rejected (429)  %4d errors\n", kind+"s:", a.ok, a.rejected, a.errors)
	}
	if overload > 0 {
		fmt.Fprintf(out, "  open loop: %d arrivals dropped (clients saturated)\n", overload)
	}
	percentiles := func(ls []time.Duration) (p50, p95, p99, max time.Duration) {
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		pct := func(q float64) time.Duration { return ls[int(q*float64(len(ls)-1))] }
		return pct(0.50), pct(0.95), pct(0.99), ls[len(ls)-1]
	}
	if len(lats) > 0 {
		p50, p95, p99, max := percentiles(lats)
		fmt.Fprintf(out, "  latency: p50 %s  p95 %s  p99 %s  max %s\n",
			p50.Round(time.Microsecond), p95.Round(time.Microsecond),
			p99.Round(time.Microsecond), max.Round(time.Microsecond))
	}
	// Per-kind percentiles separate the drift path's latency from the
	// design fast path it shares the session lock with, and structural
	// joins/leaves from scalar weight drifts.
	for _, kind := range []string{"round", "design", "drift", "join", "leave"} {
		a := byKind[kind]
		if len(a.lats) == 0 {
			continue
		}
		p50, p95, p99, max := percentiles(a.lats)
		fmt.Fprintf(out, "  latency[%s]: p50 %s  p95 %s  p99 %s  max %s\n",
			kind, p50.Round(time.Microsecond), p95.Round(time.Microsecond),
			p99.Round(time.Microsecond), max.Round(time.Microsecond))
	}
	// Name the requests behind the tail: every id here resolves to a full
	// span tree at /debug/traces?id= when the server runs with -trace.
	if len(lats) > 0 {
		_, _, p99, _ := percentiles(lats)
		var outliers []result
		for _, r := range all {
			if r.status >= 200 && r.status < 300 && r.latency >= p99 {
				outliers = append(outliers, r)
			}
		}
		sort.Slice(outliers, func(i, j int) bool { return outliers[i].latency > outliers[j].latency })
		if len(outliers) > 5 {
			outliers = outliers[:5]
		}
		for _, r := range outliers {
			fmt.Fprintf(out, "  p99 outlier: %s %s %s (trace /debug/traces?id=%s)\n",
				r.kind, r.latency.Round(time.Microsecond), r.id, r.id)
		}
	}
	bad := 0
	for _, a := range byKind {
		bad += a.errors
	}
	if strict && bad > 0 {
		printed := 0
		for _, r := range all {
			if r.status >= 200 && r.status < 300 || r.status == http.StatusTooManyRequests {
				continue
			}
			fmt.Fprintf(out, "  failed: %s status=%d %s (trace /debug/traces?id=%s)\n",
				r.kind, r.status, r.id, r.id)
			if printed++; printed >= 8 {
				fmt.Fprintf(out, "  ... %d more failures\n", bad-printed)
				break
			}
		}
		return fmt.Errorf("strict: %d requests failed with transport errors or non-2xx/429 statuses", bad)
	}
	if len(all) == 0 {
		return fmt.Errorf("no requests issued")
	}
	return nil
}
