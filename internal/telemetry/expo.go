package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"strconv"
	"sync"
	"time"
)

// WriteText renders a snapshot in the Prometheus text exposition format
// (version 0.0.4): one "# TYPE" comment per metric followed by its
// samples, names sorted for deterministic output. Histograms are emitted
// cumulatively: the bucket for upper bound "le" counts every observation
// ≤ le, the last bucket is le="+Inf" (the clamping bin), and _sum/_count
// carry the exact totals. A histogram carrying an exemplar (its worst
// labeled observation — here, a trace ID; see Histogram.ObserveExemplar)
// adds an "# EXEMPLAR <name> <value> <label>" comment line, which 0.0.4
// parsers skip but humans and scrapers of /metrics can follow straight
// to /debug/traces?id=<label>.
func WriteText(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)
	for _, name := range sortedKeys(s.Counters) {
		bw.WriteString("# TYPE ")
		bw.WriteString(name)
		bw.WriteString(" counter\n")
		bw.WriteString(name)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(s.Counters[name], 10))
		bw.WriteByte('\n')
	}
	for _, name := range sortedKeys(s.Gauges) {
		bw.WriteString("# TYPE ")
		bw.WriteString(name)
		bw.WriteString(" gauge\n")
		bw.WriteString(name)
		bw.WriteByte(' ')
		bw.WriteString(formatFloat(s.Gauges[name]))
		bw.WriteByte('\n')
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		bw.WriteString("# TYPE ")
		bw.WriteString(name)
		bw.WriteString(" histogram\n")
		width := (h.Hi - h.Lo) / float64(len(h.Counts))
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			bw.WriteString(name)
			bw.WriteString(`_bucket{le="`)
			if i == len(h.Counts)-1 {
				bw.WriteString("+Inf")
			} else {
				bw.WriteString(formatFloat(h.Lo + width*float64(i+1)))
			}
			bw.WriteString(`"} `)
			bw.WriteString(strconv.FormatUint(cum, 10))
			bw.WriteByte('\n')
		}
		bw.WriteString(name)
		bw.WriteString("_sum ")
		bw.WriteString(formatFloat(h.Sum))
		bw.WriteByte('\n')
		bw.WriteString(name)
		bw.WriteString("_count ")
		bw.WriteString(strconv.FormatUint(h.Count, 10))
		bw.WriteByte('\n')
		if h.ExemplarLabel != "" {
			bw.WriteString("# EXEMPLAR ")
			bw.WriteString(name)
			bw.WriteByte(' ')
			bw.WriteString(formatFloat(h.ExemplarValue))
			bw.WriteByte(' ')
			bw.WriteString(h.ExemplarLabel)
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// formatFloat renders a sample value the way Prometheus text parsers
// expect ("NaN", "+Inf", "-Inf" for the non-finite values).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// JSONLRecord is one line of the JSONL sink: a timestamp plus the
// snapshot taken at that instant.
type JSONLRecord struct {
	// TS is the flush time in RFC 3339 format with nanoseconds.
	TS string `json:"ts"`
	Snapshot
}

// JSONLSink appends snapshots to a writer as JSON Lines: one
// self-contained JSON object per Write call, so a per-round flush yields
// one line per round and the file tails cleanly while a simulation runs.
// Non-finite gauge values and histogram sums are dropped/zeroed before
// encoding (encoding/json cannot represent them); counters and bin counts
// are always exact. Safe for concurrent use.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLSink returns a sink writing to w. The caller retains ownership
// of w (close files yourself).
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Write appends one timestamped snapshot line.
func (s *JSONLSink) Write(snap Snapshot) error {
	rec := JSONLRecord{TS: time.Now().Format(time.RFC3339Nano), Snapshot: sanitize(snap)}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Encode(rec)
}

// sanitize returns a copy of snap with non-finite floats removed: gauges
// holding NaN/±Inf are dropped, non-finite histogram sums are zeroed.
// Maps are only copied when something actually needs fixing.
func sanitize(snap Snapshot) Snapshot {
	dirtyGauge := false
	for _, v := range snap.Gauges {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			dirtyGauge = true
			break
		}
	}
	if dirtyGauge {
		clean := make(map[string]float64, len(snap.Gauges))
		for name, v := range snap.Gauges {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean[name] = v
			}
		}
		snap.Gauges = clean
	}
	dirtyHist := false
	for _, h := range snap.Histograms {
		if math.IsNaN(h.Sum) || math.IsInf(h.Sum, 0) {
			dirtyHist = true
			break
		}
	}
	if dirtyHist {
		clean := make(map[string]HistogramSnapshot, len(snap.Histograms))
		for name, h := range snap.Histograms {
			if math.IsNaN(h.Sum) || math.IsInf(h.Sum, 0) {
				h.Sum = 0
			}
			clean[name] = h
		}
		snap.Histograms = clean
	}
	return snap
}
