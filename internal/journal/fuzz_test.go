package journal

import (
	"bytes"
	"testing"
)

// FuzzJournalDecode feeds arbitrary bytes through the record decoder.
// Invariants, whatever the input:
//
//   - no panic, ever;
//   - the clean prefix re-decodes to exactly the same records (so
//     truncating a torn tail converges instead of cascading);
//   - every decoded record re-encodes onto the stream at its original
//     position (decode is the inverse of encode over the clean prefix).
func FuzzJournalDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(encodeStream(testRecords(3)...))
	half := encodeStream(testRecords(2)...)
	f.Add(half[:len(half)-5])
	corrupt := encodeStream(testRecords(2)...)
	corrupt[9] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, clean, err := decodeRecords(data)
		if clean < 0 || clean > len(data) {
			t.Fatalf("clean prefix %d out of range [0,%d]", clean, len(data))
		}
		if err != nil {
			return // corrupt is a valid verdict; the invariants below need a clean prefix
		}
		// Torn tails truncate cleanly: the prefix must re-decode to the
		// same records with nothing left over.
		again, clean2, err2 := decodeRecords(data[:clean])
		if err2 != nil || clean2 != clean || len(again) != len(recs) {
			t.Fatalf("re-decode of clean prefix diverged: n=%d→%d clean=%d→%d err=%v",
				len(recs), len(again), clean, clean2, err2)
		}
		// Decode inverts encode over the clean prefix.
		var enc []byte
		for _, r := range recs {
			enc = appendRecord(enc, r)
		}
		if !bytes.Equal(enc, data[:clean]) {
			t.Fatalf("re-encode of %d decoded records does not reproduce the clean prefix", len(recs))
		}
	})
}
