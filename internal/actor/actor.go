// Package actor is the concurrent realization of the marketplace: the
// requester and every worker run as goroutine actors exchanging messages,
// the way a deployed crowdsourcing platform would be structured.
//
// internal/platform simulates rounds sequentially (deterministic, ideal
// for experiments); this package executes the same Stackelberg round
// protocol as a message-passing system:
//
//	requester ──offer──▶ worker₁..workerₙ      (posted contracts)
//	requester ◀─submit── worker₁..workerₙ      (effort/feedback/claims)
//
// Each round is a broadcast-and-gather with per-worker mailboxes, bounded
// by context cancellation; workers compute best responses concurrently.
// The engine asserts equivalence with the sequential simulator in tests,
// making it a safe drop-in for latency experiments and a scaling
// benchmark target.
package actor

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"dyncontract/internal/contract"
	"dyncontract/internal/platform"
	"dyncontract/internal/worker"
)

// ErrEngine is returned for engine-level failures.
var ErrEngine = errors.New("actor: engine failure")

// offer is the requester→worker message for one round.
type offer struct {
	round    int
	contract *contract.PiecewiseLinear // nil = excluded this round
}

// submission is the worker→requester reply.
type submission struct {
	agentID string
	round   int
	resp    worker.Response
	exclude bool
	err     error
}

// Engine runs the message-passing marketplace.
type Engine struct {
	pop    *platform.Population
	policy platform.Policy

	mailboxes map[string]chan offer
	replies   chan submission
	wg        sync.WaitGroup
}

// NewEngine validates the population and constructs an engine.
func NewEngine(pop *platform.Population, policy platform.Policy) (*Engine, error) {
	if err := pop.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, fmt.Errorf("nil policy: %w", ErrEngine)
	}
	return &Engine{pop: pop, policy: policy}, nil
}

// Run executes the protocol for the given number of rounds and returns the
// same per-round ledger the sequential simulator produces. Worker actors
// are spawned once and live across rounds; the requester actor drives the
// round barrier.
func (e *Engine) Run(ctx context.Context, rounds int) ([]platform.Round, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("rounds=%d must be positive: %w", rounds, ErrEngine)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Spawn one actor per agent with a 1-slot mailbox (round protocol is
	// strictly alternating, so one slot never blocks the requester).
	e.mailboxes = make(map[string]chan offer, len(e.pop.Agents))
	e.replies = make(chan submission, len(e.pop.Agents))
	for _, a := range e.pop.Agents {
		mailbox := make(chan offer, 1)
		e.mailboxes[a.ID] = mailbox
		e.wg.Add(1)
		go e.workerActor(ctx, a, mailbox)
	}
	defer func() {
		for _, mb := range e.mailboxes {
			close(mb)
		}
		e.wg.Wait()
	}()

	ledger := make([]platform.Round, 0, rounds)
	for r := 0; r < rounds; r++ {
		round, err := e.playRound(ctx, r)
		if err != nil {
			return ledger, err
		}
		ledger = append(ledger, round)
	}
	return ledger, nil
}

// workerActor processes offers until its mailbox closes.
func (e *Engine) workerActor(ctx context.Context, a *worker.Agent, mailbox <-chan offer) {
	defer e.wg.Done()
	for {
		select {
		case <-ctx.Done():
			// Drain until close so the requester never blocks; reply
			// with the cancellation so gather accounts for us.
			o, ok := <-mailbox
			if !ok {
				return
			}
			e.reply(ctx, submission{agentID: a.ID, round: o.round, err: ctx.Err()})
		case o, ok := <-mailbox:
			if !ok {
				return
			}
			sub := submission{agentID: a.ID, round: o.round}
			if o.contract == nil {
				sub.exclude = true
			} else {
				resp, err := a.BestResponse(o.contract, e.pop.Part)
				sub.resp = resp
				sub.err = err
			}
			e.reply(ctx, sub)
		}
	}
}

// reply sends a submission unless the context dies first.
func (e *Engine) reply(ctx context.Context, sub submission) {
	select {
	case e.replies <- sub:
	case <-ctx.Done():
	}
}

// playRound broadcasts offers, gathers submissions, and aggregates the
// round exactly like the sequential simulator.
func (e *Engine) playRound(ctx context.Context, r int) (platform.Round, error) {
	contracts, err := e.policy.Contracts(ctx, e.pop)
	if err != nil {
		return platform.Round{}, fmt.Errorf("actor: policy round %d: %w", r, err)
	}
	for _, a := range e.pop.Agents {
		select {
		case e.mailboxes[a.ID] <- offer{round: r, contract: contracts[a.ID]}:
		case <-ctx.Done():
			return platform.Round{}, fmt.Errorf("actor: broadcast round %d: %w", r, ctx.Err())
		}
	}

	byID := make(map[string]submission, len(e.pop.Agents))
	for range e.pop.Agents {
		select {
		case sub := <-e.replies:
			if sub.err != nil {
				return platform.Round{}, fmt.Errorf("actor: agent %s round %d: %w", sub.agentID, r, sub.err)
			}
			if sub.round != r {
				return platform.Round{}, fmt.Errorf("actor: agent %s replied for round %d during round %d: %w",
					sub.agentID, sub.round, r, ErrEngine)
			}
			byID[sub.agentID] = sub
		case <-ctx.Done():
			return platform.Round{}, fmt.Errorf("actor: gather round %d: %w", r, ctx.Err())
		}
	}

	round := platform.Round{Index: r}
	agents := append([]*worker.Agent(nil), e.pop.Agents...)
	sort.Slice(agents, func(i, j int) bool { return agents[i].ID < agents[j].ID })
	for _, a := range agents {
		sub := byID[a.ID]
		oc := platform.AgentOutcome{
			AgentID: a.ID,
			Class:   a.Class,
			Size:    a.Size,
			Weight:  e.pop.Weights[a.ID],
		}
		switch {
		case sub.exclude:
			oc.Excluded = true
		case sub.resp.Declined:
			oc.Declined = true
		default:
			oc.Effort = sub.resp.Effort
			oc.Feedback = sub.resp.Feedback
			oc.Compensation = sub.resp.Compensation
			round.Benefit += oc.Weight * oc.Feedback
			round.Cost += oc.Compensation
		}
		round.Outcomes = append(round.Outcomes, oc)
	}
	round.Utility = round.Benefit - e.pop.Mu*round.Cost
	return round, nil
}
