package platform

import (
	"context"
	"errors"
	"math"
	"testing"

	"dyncontract/internal/contract"
	"dyncontract/internal/effort"
	"dyncontract/internal/worker"
)

func TestResponderOverridesBestResponse(t *testing.T) {
	pop := testPopulation(t, 2, 0, false)
	const forced = 7.5
	opts := Options{
		Responder: func(_ int, _ *worker.Agent, _ *contract.PiecewiseLinear, _ effort.Partition) (float64, error) {
			return forced, nil
		},
	}
	ledger, err := Simulate(context.Background(), pop, &DynamicPolicy{}, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, oc := range ledger[0].Outcomes {
		if oc.Effort != forced {
			t.Errorf("agent %s effort = %v, want forced %v", oc.AgentID, oc.Effort, forced)
		}
		wantQ := pop.Agents[0].Psi.Eval(forced)
		if math.Abs(oc.Feedback-wantQ) > 1e-9 {
			t.Errorf("agent %s feedback = %v, want psi(forced) = %v", oc.AgentID, oc.Feedback, wantQ)
		}
	}
}

func TestResponderEffortClamped(t *testing.T) {
	pop := testPopulation(t, 1, 0, false)
	cases := []struct {
		name  string
		value float64
		check func(got float64) bool
	}{
		{"negative clamps to zero", -5, func(got float64) bool { return got == 0 }},
		{"NaN clamps to zero", math.NaN(), func(got float64) bool { return got == 0 }},
		{"huge clamps to yMax", 1e9, func(got float64) bool { return got <= pop.Part.YMax()+1e-9 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{
				Responder: func(_ int, _ *worker.Agent, _ *contract.PiecewiseLinear, _ effort.Partition) (float64, error) {
					return tc.value, nil
				},
			}
			ledger, err := Simulate(context.Background(), pop, &DynamicPolicy{}, 1, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got := ledger[0].Outcomes[0].Effort; !tc.check(got) {
				t.Errorf("effort = %v after clamping %v", got, tc.value)
			}
		})
	}
}

func TestResponderErrorPropagates(t *testing.T) {
	pop := testPopulation(t, 1, 0, false)
	boom := errors.New("strategy exploded")
	opts := Options{
		Responder: func(int, *worker.Agent, *contract.PiecewiseLinear, effort.Partition) (float64, error) {
			return 0, boom
		},
	}
	if _, err := Simulate(context.Background(), pop, &DynamicPolicy{}, 1, opts); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped responder error", err)
	}
}

func TestObserverSeesEveryRound(t *testing.T) {
	pop := testPopulation(t, 2, 1, false)
	var observed []int
	opts := Options{
		Observer: func(r Round) {
			observed = append(observed, r.Index)
			if len(r.Outcomes) != len(pop.Agents) {
				t.Errorf("observer round %d has %d outcomes", r.Index, len(r.Outcomes))
			}
		},
	}
	if _, err := Simulate(context.Background(), pop, &DynamicPolicy{}, 3, opts); err != nil {
		t.Fatal(err)
	}
	if len(observed) != 3 || observed[0] != 0 || observed[2] != 2 {
		t.Errorf("observed rounds = %v, want [0 1 2]", observed)
	}
}

func TestObserverRunsBeforeNextDrift(t *testing.T) {
	// The observe→drift ordering is what adaptive defenses rely on:
	// observations from round r must be available to the drift of round
	// r+1.
	pop := testPopulation(t, 1, 0, false)
	var events []string
	opts := Options{
		Drift: func(round int, _ *Population) {
			events = append(events, "drift")
		},
		Observer: func(Round) {
			events = append(events, "observe")
		},
	}
	if _, err := Simulate(context.Background(), pop, &DynamicPolicy{}, 2, opts); err != nil {
		t.Fatal(err)
	}
	want := []string{"drift", "observe", "drift", "observe"}
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}
