package engine

import (
	"context"
	"fmt"
	"sort"

	"dyncontract/internal/contract"
	"dyncontract/internal/core"
	"dyncontract/internal/spans"
	"dyncontract/internal/telemetry"
	"dyncontract/internal/worker"
)

// This file is the sharded round pipeline. The paper's decomposition
// result (§IV-B) makes both contract design and best responses separable
// per worker/community, so the engine can partition the population into
// shards and run the design and respond stages per shard on a bounded
// pool, merging results back in global agent-ID order — the ledger stays
// byte-identical to the sequential engine (settlement remains one
// sequential pass: float addition is not associative, so per-shard
// partial sums would drift in the last ulp).
//
// Shard assignment hashes agent IDs (FNV-1a), so it is stable across
// rounds and across processes: the same population shards the same way
// everywhere, and adding an agent moves no settled agent's outcome slot —
// outcomes are written to each agent's position in the global ID-sorted
// order, not to contiguous per-shard blocks.

// ShardOf returns the shard index for an agent ID under an n-way
// partition: FNV-1a over the ID, reduced mod n. It is a pure function of
// (id, n) — stable across rounds, runs, and machines — so shard-local
// state (caches, scratch) stays warm for as long as the population does.
func ShardOf(id string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// Shard is one partition of a population's ID-sorted agent view. Agents
// within a shard keep their global ID order, and every per-agent datum
// the hot loop needs — weight, malice estimate, design fingerprint — is
// carried as an indexed slice aligned with Agents, so shard loops never
// touch the population's string-keyed maps.
type Shard struct {
	// Index is the shard's position in the partition.
	Index int
	// Epoch identifies the population view this shard was built from.
	// Engine-built shards use a counter that advances on every view
	// rebuild (generation bump, or every round under Drift);
	// Population.Shards uses the population's generation. Consumers that
	// cache per-shard plans (ShardDesigner) key them on (Index, Epoch).
	Epoch uint64
	// Agents is the shard's slice of the ID-sorted population view.
	Agents []*worker.Agent
	// Global maps each shard position to the agent's index in the global
	// ID-sorted view — the slot its outcome is written to.
	Global []int32
	// Weights is the indexed view of Population.Weights for Agents.
	Weights []float64
	// Malice is the indexed view of Population.MaliceProb for Agents
	// (zero for agents with no entry, matching map-lookup semantics).
	Malice []float64
	// FPs caches each agent's design fingerprint, computed once per view
	// rebuild and shared by the design and respond stages.
	FPs []Fingerprint
}

// shardAssign distributes the ID-sorted agents across the reset shards by
// ID hash, filling every indexed view. counts, when non-nil, receives one
// increment per assigned fingerprint — the engine's refcount index is
// built here, at the moment each fingerprint is written, never by walking
// the views after the fact.
func shardAssign(p *Population, agents []*worker.Agent, shards []*Shard, counts map[Fingerprint]int32) {
	n := len(shards)
	for gi, a := range agents {
		s := shards[ShardOf(a.ID, n)]
		w := p.Weights[a.ID]
		fp := FingerprintOf(a, core.Config{Part: p.Part, Mu: p.Mu, W: w})
		s.Agents = append(s.Agents, a)
		s.Global = append(s.Global, int32(gi))
		s.Weights = append(s.Weights, w)
		s.Malice = append(s.Malice, p.MaliceProb[a.ID])
		s.FPs = append(s.FPs, fp)
		if counts != nil {
			counts[fp]++
		}
	}
}

// Shards partitions the population into n deterministic shards of its
// ID-sorted agent view (see ShardOf for the assignment; it is stable
// across rounds and processes). n is clamped to the number of agents;
// n <= 0 returns nil. The shards are built fresh from the population's
// current state — they are indexed snapshots, not live views.
func (p *Population) Shards(n int) []Shard {
	if n <= 0 || len(p.Agents) == 0 {
		return nil
	}
	agents := append([]*worker.Agent(nil), p.Agents...)
	sort.Slice(agents, func(i, j int) bool { return agents[i].ID < agents[j].ID })
	if n > len(agents) {
		n = len(agents)
	}
	shards := make([]Shard, n)
	ptrs := make([]*Shard, n)
	for i := range shards {
		shards[i].Index = i
		shards[i].Epoch = p.generation
		ptrs[i] = &shards[i]
	}
	shardAssign(p, agents, ptrs, nil)
	return shards
}

// ShardPolicy is implemented by policies that can design one shard at a
// time — the fast path of the sharded pipeline. ShardContracts fills
// dst[i] with the contract for sh.Agents[i] (nil excludes the agent this
// round) and reports whether any entry changed since its previous call
// for this shard and epoch; false on a shard whose population view did
// not move lets the engine skip that shard's respond stage outright, as
// its retained outcomes are already this round's exact values.
//
// The engine calls ShardContracts once per shard per round; calls for
// different shards may run concurrently, so implementations must confine
// per-shard state to the shard (ShardDesigner does) or lock shared state.
// Policies that implement only Policy still work under Config.Shards —
// the engine designs through the whole-population Contracts call and runs
// just the respond stage per shard.
type ShardPolicy interface {
	Policy
	ShardContracts(ctx context.Context, pop *Population, sh *Shard, dst []*contract.PiecewiseLinear) (changed bool, err error)
}

// FingerprintPurePolicy is an opt-in marker for ShardPolicies whose
// per-agent contract is a pure function of the agent's design
// fingerprint — no other population, round, or shard state feeds the
// design (DynamicPolicy qualifies: its ShardDesigner resolves every
// contract through the fingerprint-keyed design cache).
//
// The marker unlocks the engine's sparse-drift patch route: when a
// Population.Touch scope arrives and every touched agent's new
// fingerprint already resolves in Config.Cache, the engine serves those
// agents' contracts straight from the cache and refreshes only their
// outcome slots, leaving the shard's designer plan, warm validation, and
// every untouched agent's retained outcome in place. Touched agents
// whose fingerprint misses the cache fall back to the epoch-bump route
// (full shard re-plan and respond), so the marker never changes results
// — only how much of a shard is recomputed.
type FingerprintPurePolicy interface {
	ShardPolicy
	// FingerprintPure is a marker method; implementations do nothing.
	FingerprintPure()
}

// ShardBatchReporter is an opt-in interface for ShardPolicies that route
// cold designs through the batched solver (core.DesignInto over a
// retained per-shard core.Scratch). After a ShardContracts call,
// ShardBatchStats reports the number of subproblems the shard's last
// design batch carried (0 on a fully warm round) and the cumulative use
// count of the shard's scratch — evidence the flat arrays are actually
// being reused rather than reallocated. Traced rounds attach both to the
// shard's "engine.shard.design" span.
type ShardBatchReporter interface {
	ShardBatchStats(shard int) (batch int, scratchUses uint64)
}

// shardRun is the engine's retained per-shard state: the shard view, the
// policy's dense contract slots, the memo segment, respond scratch, and
// the warm-skip bookkeeping.
type shardRun struct {
	sh        Shard
	contracts []*contract.PiecewiseLinear
	memoSeg   *RespondMemoSegment
	scratch   respondScratch
	// outsOK records that the engine's outcome buffer already holds this
	// shard's outcomes for its current contracts — set after a dense-route
	// respond, cleared whenever the view, the contracts, or the buffer
	// change. A round where every shard is warm skips respond entirely.
	outsOK bool
	// changed is ShardContracts' report for the current round.
	changed bool
	// wu is the shard's summed worker utility from its last respond.
	wu float64
	// wuSlots is the per-agent utility breakdown behind wu, so the patch
	// route can refresh single slots and re-fold the sum exactly.
	wuSlots []float64
	// dirty lists shard-local slots patched in place by the sparse-drift
	// route (contract already rewritten from the design cache): respond
	// recomputes exactly these outcomes while outsOK keeps the rest.
	dirty []int32
	// seen stamps the view epoch of the last sparse refresh that counted
	// this shard as touched, so a refresh counts each shard once.
	seen uint64
}

// ensureShards (re)builds the per-shard views over the ID-sorted agent
// view, under the same scope rules as roundAgents: kept outright under
// viewKeep with an unmoved generation, refreshed in place for exactly the
// touched agents under a (non-structural) viewSparse — untouched shards
// keep their epoch, and with it their warm design plans and retained
// outcomes — spliced in place for declared joins/leaves under
// viewStructural, and rebuilt from scratch otherwise (viewFull covers
// Bump, undeclared legacy Drift hooks, structural scopes escalated by
// prepareStructural or roundAgents, and generation moves observed
// second-hand on a shared population). Reports whether a full rebuild
// happened.
func (e *Engine) ensureShards(st *roundState, agents []*worker.Agent) bool {
	gen := e.pop.Generation()
	if e.shardsOK {
		switch e.scope.rule {
		case viewKeep:
			if e.shardsGen == gen {
				return false
			}
		case viewSparse:
			e.refreshShardsSparse()
			e.shardsGen = gen
			return false
		case viewStructural:
			e.refreshShardsStructural(st)
			e.shardsGen = gen
			return false
		}
	}
	// Full rebuild: shard Global indices are re-assigned densely in global
	// ID order, so the slot mapping returns to identity.
	e.fragmented = false
	e.physLen = len(agents)
	e.tombstones = 0
	e.viewEpoch++
	// The fingerprint refcount index is rebuilt eagerly alongside the
	// views: shardAssign counts each fingerprint as it writes it. Without
	// a design cache or respond memo there is nothing to evict, so the
	// index (and all drift-time refcounting) stays off.
	counts := e.fpCounts
	if e.cfg.Cache != nil || e.cfg.Memo != nil {
		if counts == nil {
			counts = make(map[Fingerprint]int32, len(agents))
			e.fpCounts = counts
		} else {
			clear(counts)
		}
	} else {
		counts = nil
		e.fpCounts = nil
	}
	n := e.cfg.Shards
	if n > len(agents) {
		n = len(agents)
	}
	if len(e.shards) != n {
		e.shards = make([]shardRun, n)
		e.shardPtrs = make([]*Shard, n)
	}
	for i := range e.shards {
		sr := &e.shards[i]
		sr.sh.Index = i
		sr.sh.Epoch = e.viewEpoch
		sr.sh.Agents = sr.sh.Agents[:0]
		sr.sh.Global = sr.sh.Global[:0]
		sr.sh.Weights = sr.sh.Weights[:0]
		sr.sh.Malice = sr.sh.Malice[:0]
		sr.sh.FPs = sr.sh.FPs[:0]
		sr.outsOK = false
		sr.changed = false
		sr.dirty = sr.dirty[:0]
		if e.cfg.Memo != nil && sr.memoSeg == nil {
			sr.memoSeg = e.cfg.Memo.Segment()
		}
		e.shardPtrs[i] = &sr.sh
	}
	shardAssign(e.pop, agents, e.shardPtrs, counts)
	for i := range e.shards {
		sr := &e.shards[i]
		na := len(sr.sh.Agents)
		if cap(sr.contracts) < na {
			sr.contracts = make([]*contract.PiecewiseLinear, na)
		}
		sr.contracts = sr.contracts[:na]
		for j := range sr.contracts {
			sr.contracts[j] = nil
		}
	}
	e.shardsOK = true
	e.shardsGen = gen
	if e.m != nil {
		e.m.shards.Set(float64(n))
	}
	return true
}

// refreshShardsSparse applies a sparse drift scope to the retained shard
// views in place: for each touched agent it refreshes the owning shard's
// weight, malice, and fingerprint slots, then picks the cheapest sound
// route for that agent. Under a FingerprintPurePolicy whose new
// fingerprint already resolves in the design cache, the agent's contract
// slot is patched directly and only its outcome slot is marked dirty —
// the shard keeps its epoch, its designer plan, and every other retained
// outcome (the patch route). Otherwise the shard's epoch is bumped,
// forcing its designer plan and retained outcomes to revalidate in full
// (the fallback route). Untouched shards stay exactly as they were —
// same epoch, same plan, same warm skip. Fingerprints are refcounted
// across all shards, and only fingerprints whose last holder drifted
// away are dropped from the design cache and respond memo, so shared
// designs survive a partial drift.
//
// The caller (ensureShards) guarantees the scope is non-structural:
// roundAgents escalated to viewFull otherwise, so every touched ID
// resolves in the view and in its owning shard.
func (e *Engine) refreshShardsSparse() {
	var t telemetry.Timer
	if e.m != nil {
		t = telemetry.StartTimer()
	}
	e.ensureByID()
	e.viewEpoch++
	epoch := e.viewEpoch
	canPatch := e.patchPol && e.cfg.Cache != nil
	touched := 0
	e.deadFPs = e.deadFPs[:0]
	n := len(e.shards)
	for _, id := range e.scope.ids {
		sr := &e.shards[ShardOf(id, n)]
		j := e.refreshShardSlot(sr, id, epoch, canPatch)
		if j >= 0 && sr.seen != epoch {
			sr.seen = epoch
			touched++
		}
	}
	e.removeDeadFPs()
	if e.m != nil {
		e.m.driftShardsRebuilt.Add(uint64(touched))
		e.m.driftShardsSkipped.Add(uint64(n - touched))
		e.m.driftRebuild.Observe(t.Seconds())
	}
}

// refreshShardSlot refreshes one touched agent's shard slot — weight,
// malice, fingerprint (refcounted) — and routes the contract: the patch
// route under a fingerprint-pure policy with a cache hit, the epoch-bump
// route otherwise. Returns the shard-local slot, or -1 when the ID does
// not resolve in the shard (a touched agent that left this round, under
// a structural scope).
func (e *Engine) refreshShardSlot(sr *shardRun, id string, epoch uint64, canPatch bool) int {
	sh := &sr.sh
	var j int
	if !e.fragmented {
		// Identity slot mapping: Global is monotone in view order, so the
		// slot binary-searches by the agent's view index — int compares,
		// no string walks (the sparse-drift hot path).
		gi, ok := e.byID[id]
		if !ok {
			return -1
		}
		j = sort.Search(len(sh.Global), func(k int) bool { return sh.Global[k] >= gi })
		if j >= len(sh.Global) || sh.Global[j] != gi {
			return -1
		}
	} else if j = searchShardAgent(sh, id); j < 0 {
		// After a structural splice Global holds physical outcome slots,
		// no longer monotone; resolve by agent ID instead.
		return -1
	}
	a := sh.Agents[j]
	w := e.pop.Weights[id]
	sh.Weights[j] = w
	sh.Malice[j] = e.pop.MaliceProb[id]
	fp := FingerprintOf(a, core.Config{Part: e.pop.Part, Mu: e.pop.Mu, W: w})
	if old := sh.FPs[j]; fp != old {
		sh.FPs[j] = fp
		if e.fpCounts != nil {
			e.fpCounts[fp]++
			e.dropFP(old)
		}
	}
	if canPatch {
		if res, ok := e.cfg.Cache.Get(fp); ok {
			sr.contracts[j] = res.Contract
			sr.dirty = append(sr.dirty, int32(j))
			return j
		}
	}
	if sh.Epoch != epoch {
		sh.Epoch = epoch
		sr.outsOK = false
	}
	return j
}

// searchShardAgent returns id's position in the shard's (ID-sorted)
// agent list, or -1. Shard positions are found by agent ID, not by
// global index: after a structural splice Shard.Global holds physical
// outcome slots, which are no longer monotone.
func searchShardAgent(sh *Shard, id string) int {
	lo, hi := 0, len(sh.Agents)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sh.Agents[mid].ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(sh.Agents) && sh.Agents[lo].ID == id {
		return lo
	}
	return -1
}

// dropFP decrements a fingerprint's refcount, collecting it into the
// round's dead list when the last holder is gone. A no-op when the index
// is off (no design cache and no respond memo: nothing to evict).
func (e *Engine) dropFP(fp Fingerprint) {
	if e.fpCounts == nil {
		return
	}
	if c := e.fpCounts[fp] - 1; c <= 0 {
		delete(e.fpCounts, fp)
		e.deadFPs = append(e.deadFPs, fp)
	} else {
		e.fpCounts[fp] = c
	}
}

// removeDeadFPs evicts the refresh's dead fingerprints from the design
// cache and respond memo. A fingerprint that died and was re-minted in
// the same refresh (one agent's leave, another's join) is filtered out —
// evicting it would only cost a re-solve, but there is no reason to.
func (e *Engine) removeDeadFPs() {
	if len(e.deadFPs) == 0 {
		return
	}
	dead := e.deadFPs[:0]
	for _, fp := range e.deadFPs {
		if _, live := e.fpCounts[fp]; !live {
			dead = append(dead, fp)
		}
	}
	e.deadFPs = dead
	if len(dead) == 0 {
		return
	}
	if e.cfg.Cache != nil {
		e.cfg.Cache.Remove(dead...)
	}
	if e.cfg.Memo != nil {
		e.cfg.Memo.RemoveFingerprints(dead...)
	}
}

// refreshShardsStructural applies a declared structural scope to the
// retained shard views in place. Joins and leaves — already resolved and
// ID-sorted by prepareStructural, slots assigned by spliceView — are
// grouped by owning shard and spliced into each affected shard's views
// in one merge pass (spliceShard); shards owning no declared ID keep
// their epoch, plan, and retained outcomes untouched. The scope's
// plain-touched agents then refresh exactly as under viewSparse
// (resolved by ID against the spliced views). Fingerprint refcounts
// account for every join, leave, and in-place change, and dead
// fingerprints are evicted as usual. Finally, maybeCompact renumbers the
// outcome slots back to identity when enough tombstones accumulated.
func (e *Engine) refreshShardsStructural(st *roundState) {
	var t telemetry.Timer
	if e.m != nil {
		t = telemetry.StartTimer()
	}
	e.viewEpoch++
	epoch := e.viewEpoch
	canPatch := e.patchPol && e.cfg.Cache != nil
	touched := 0
	e.deadFPs = e.deadFPs[:0]
	n := len(e.shards)

	// Group the declarations by owning shard; the per-shard lists inherit
	// the global ID order.
	if cap(e.shardJoins) < n {
		e.shardJoins = make([][]int32, n)
		e.shardLeaves = make([][]int32, n)
	}
	e.shardJoins = e.shardJoins[:n]
	e.shardLeaves = e.shardLeaves[:n]
	for i := range e.shardJoins {
		e.shardJoins[i] = e.shardJoins[i][:0]
		e.shardLeaves[i] = e.shardLeaves[i][:0]
	}
	for k, a := range e.structJoins {
		s := ShardOf(a.ID, n)
		e.shardJoins[s] = append(e.shardJoins[s], int32(k))
	}
	for k, id := range e.scope.leaves {
		s := ShardOf(id, n)
		e.shardLeaves[s] = append(e.shardLeaves[s], int32(k))
	}

	for si := range e.shards {
		if len(e.shardJoins[si])+len(e.shardLeaves[si]) == 0 {
			continue
		}
		sr := &e.shards[si]
		e.spliceShard(sr, e.shardJoins[si], e.shardLeaves[si], epoch, canPatch)
		if sr.seen != epoch {
			sr.seen = epoch
			touched++
		}
	}

	// Plain-touched agents refresh exactly as under viewSparse; joiners
	// were handled at their insertion, and a touched ID that left no
	// longer resolves and is skipped.
	for _, id := range e.scope.ids {
		if _, ok := e.structJoinSet[id]; ok {
			continue
		}
		sr := &e.shards[ShardOf(id, n)]
		j := e.refreshShardSlot(sr, id, epoch, canPatch)
		if j >= 0 && sr.seen != epoch {
			sr.seen = epoch
			touched++
		}
	}

	e.removeDeadFPs()
	if e.m != nil {
		e.m.driftShardsRebuilt.Add(uint64(touched))
		e.m.driftShardsSkipped.Add(uint64(n - touched))
		e.m.driftRebuild.Observe(t.Seconds())
	}
	e.maybeCompact(st)
}

// spliceShard merges a shard's declared joins and leaves into its views
// in place: survivor segments between the ID-sorted splice points shift
// by their cumulative offset (most never move), so the cost scales with
// the shifted span, not the shard size. Surviving agents keep their
// contract slot, outcome slot, and per-slot utility; leavers drop out
// (their fingerprint refcount released, their outcome slot already
// tombstoned by spliceView); each joiner lands at its ID-sorted position
// carrying the outcome slot spliceView assigned. Joiner contracts take
// the sparse patch route — fingerprint-pure policy, design cache hit,
// dirty slot — when they can; any joiner that cannot bumps the shard's
// epoch for a full re-plan.
func (e *Engine) spliceShard(sr *shardRun, joins, leaves []int32, epoch uint64, canPatch bool) {
	sh := &sr.sh
	if len(sr.dirty) > 0 {
		// Stale patch slots (an aborted previous round) would shift under
		// the splice; fall back to a full shard respond.
		sr.dirty = sr.dirty[:0]
		sr.outsOK = false
	}
	// Resolve splice positions up front (joins and leaves arrive in ID
	// order, so positions are non-decreasing) and release every leaver's
	// fingerprint before the moves overwrite its slot.
	jpos := e.msJoinPos[:0]
	for _, k := range joins {
		jpos = append(jpos, int32(lowerBoundAgents(sh.Agents, e.structJoins[k].ID)))
	}
	lpos := e.msLeavePos[:0]
	for _, k := range leaves {
		lp := searchShardAgent(sh, e.scope.leaves[k]) // resolved by prepareStructural
		lpos = append(lpos, int32(lp))
		e.dropFP(sh.FPs[lp])
	}
	segs, jdst := buildSpliceSegs(e.msSegs[:0], e.msJoinDst[:0], jpos, lpos, len(sh.Agents))

	nOld := len(sh.Agents)
	nNew := nOld + len(joins) - len(leaves)
	nMax := max(nOld, nNew)
	sh.Agents = grown(sh.Agents, nMax)
	sh.Global = grown(sh.Global, nMax)
	sh.Weights = grown(sh.Weights, nMax)
	sh.Malice = grown(sh.Malice, nMax)
	sh.FPs = grown(sh.FPs, nMax)
	// contracts/wuSlots can run shorter than Agents on a never-planned
	// shard; the zero padding matches the old double-buffer merge.
	sr.contracts = grown(sr.contracts, nMax)
	sr.wuSlots = grown(sr.wuSlots, nMax)
	spliceMove(sh.Agents, segs)
	spliceMove(sh.Global, segs)
	spliceMove(sh.Weights, segs)
	spliceMove(sh.Malice, segs)
	spliceMove(sh.FPs, segs)
	spliceMove(sr.contracts, segs)
	spliceMove(sr.wuSlots, segs)

	bump := false
	for j, k := range joins {
		a := e.structJoins[k]
		d := jdst[j]
		w := e.pop.Weights[a.ID]
		fp := FingerprintOf(a, core.Config{Part: e.pop.Part, Mu: e.pop.Mu, W: w})
		if e.fpCounts != nil {
			e.fpCounts[fp]++
		}
		sh.Agents[d] = a
		sh.Global[d] = e.structJoinSlots[k]
		sh.Weights[d] = w
		sh.Malice[d] = e.pop.MaliceProb[a.ID]
		sh.FPs[d] = fp
		sr.wuSlots[d] = 0
		var c *contract.PiecewiseLinear
		if canPatch {
			if res, ok := e.cfg.Cache.Get(fp); ok {
				c = res.Contract
				sr.dirty = append(sr.dirty, d)
			} else {
				bump = true
			}
		} else {
			bump = true
		}
		sr.contracts[d] = c
	}
	if nNew < nMax {
		for i := nNew; i < nMax; i++ {
			sh.Agents[i] = nil // release the pointer tails
			sr.contracts[i] = nil
		}
		sh.Agents = sh.Agents[:nNew]
		sh.Global = sh.Global[:nNew]
		sh.Weights = sh.Weights[:nNew]
		sh.Malice = sh.Malice[:nNew]
		sh.FPs = sh.FPs[:nNew]
		sr.contracts = sr.contracts[:nNew]
		sr.wuSlots = sr.wuSlots[:nNew]
	}
	e.msJoinPos, e.msLeavePos, e.msSegs, e.msJoinDst = jpos, lpos, segs, jdst
	if bump {
		sh.Epoch = epoch
		sr.outsOK = false
		sr.dirty = sr.dirty[:0]
	} else if len(leaves) > 0 && sr.outsOK {
		// A leave shrinks the retained per-slot utility breakdown; re-fold
		// the shard's sum so the warm skip stays exact.
		var wu float64
		for _, u := range sr.wuSlots {
			wu += u
		}
		sr.wu = wu
	}
}

// Compaction gate: the deferred slot compaction runs when at least
// compactMinTombstones outcome slots are dead and tombstones make up at
// least 1/compactFrag of the physical slot range. Between compactions,
// fragmented rounds pay one extra ID-order gather per round.
const (
	compactFrag          = 4
	compactMinTombstones = 64
)

// maybeCompact renumbers the outcome slots back to the identity mapping
// when fragmentation passes the threshold: live outcomes are gathered
// into ID order (becoming the new backing array), every shard's Global
// slots are rewritten through the old→new remap, and the tombstone count
// resets. Retained outcomes move with their slots, so shard warm state
// (outsOK, dirty, wuSlots) survives intact. Traced rounds record the
// batch as an "engine.compact" span under the round span.
func (e *Engine) maybeCompact(st *roundState) {
	if !e.fragmented || e.tombstones < compactMinTombstones || e.tombstones*compactFrag < e.physLen {
		return
	}
	var sp *spans.Span
	if st != nil && st.span != nil {
		sp = st.span.StartChild("engine.compact")
		sp.SetInt("tombstones", int64(e.tombstones))
		sp.SetInt("slots", int64(e.physLen))
	}
	n := len(e.agents)
	if cap(e.slotRemap) < e.physLen {
		e.slotRemap = make([]int32, e.physLen)
	}
	remap := e.slotRemap[:e.physLen]
	if cap(e.ordered) < n {
		e.ordered = make([]AgentOutcome, n)
	}
	ord := e.ordered[:cap(e.ordered)]
	for i, s := range e.slots {
		remap[s] = int32(i)
		if int(s) < len(e.outs) {
			// Slots at or past len(e.outs) are this round's joiners —
			// assigned before the outcome buffer grew; their outcomes are
			// computed after the remap anyway (they are dirty or their
			// shard re-responds in full).
			ord[i] = e.outs[s]
		}
	}
	e.outs, e.ordered = ord, e.outs
	for si := range e.shards {
		g := e.shards[si].sh.Global
		for j := range g {
			g[j] = remap[g[j]]
		}
	}
	e.fragmented = false
	e.physLen = n
	e.tombstones = 0
	if e.m != nil {
		e.m.driftCompactions.Inc()
	}
	if sp != nil {
		sp.End()
	}
}

// designSharded is the design stage under Config.Shards > 0. With a
// ShardPolicy each shard designs independently (on the pool when the
// views were just rebuilt — warm validations are too cheap to fan out);
// otherwise the whole-population Contracts call runs once and only the
// respond stage is sharded.
func (e *Engine) designSharded(ctx context.Context, st *roundState) error {
	rebuilt := e.ensureShards(st, st.agents)
	if e.shardPol == nil {
		contracts, err := e.cfg.Policy.Contracts(ctx, e.pop)
		if err != nil {
			return fmt.Errorf("engine: policy %s round %d: %w", e.cfg.Policy.Name(), st.r, err)
		}
		st.contracts = contracts
		return nil
	}
	if rebuilt && len(e.shards) > 1 {
		if err := e.fanOut(ctx, st.r, len(e.shards), 0, func(i int) error {
			return e.designShard(ctx, st, i)
		}); err != nil {
			return err
		}
	} else {
		for i := range e.shards {
			if err := e.designShard(ctx, st, i); err != nil {
				return err
			}
		}
	}
	// The merged per-ID map exists only for observers (OnContracts); the
	// sharded respond stage reads the dense slots directly.
	if len(e.cfg.Observers) > 0 {
		st.contracts = e.mergeContracts(st, rebuilt)
	}
	return nil
}

// designShard designs one shard through the ShardPolicy. Traced rounds
// hang one "engine.shard.design" span per shard off the design stage's
// span, annotated with the shard's size, the round's drift
// classification, and the design cache's hit/miss deltas across the call
// (the counters are shared atomics, so under the concurrent fan-out the
// deltas are attribution-approximate; totals remain exact).
func (e *Engine) designShard(ctx context.Context, st *roundState, i int) error {
	sr := &e.shards[i]
	var t telemetry.Timer
	if st.timed {
		t = telemetry.StartTimer()
	}
	var sp *spans.Span
	var hits0, misses0 uint64
	if st.stageSpan != nil {
		sp = st.stageSpan.StartChild("engine.shard.design")
		if e.cfg.Cache != nil {
			cs := e.cfg.Cache.Stats()
			hits0, misses0 = cs.Hits, cs.Misses
		}
	}
	changed, err := e.shardPol.ShardContracts(ctx, e.pop, &sr.sh, sr.contracts)
	if err != nil {
		sp.End()
		return fmt.Errorf("engine: policy %s shard %d round %d: %w", e.cfg.Policy.Name(), i, st.r, err)
	}
	sr.changed = changed
	// A patch-route shard (dirty slots, outcomes still retained) keeps
	// outsOK through a changed report: the policy is fingerprint-pure, so
	// a refill resolves every untouched slot to a value-identical
	// contract, and the dirty slots are recomputed by the patch respond.
	if changed && len(sr.dirty) == 0 {
		sr.outsOK = false
	}
	if st.timed {
		e.m.shardDesign.Observe(t.Seconds())
	}
	if sp != nil {
		sp.SetInt("shard", int64(i))
		sp.SetInt("agents", int64(len(sr.sh.Agents)))
		sp.SetAttr("drift", e.scope.rule.String())
		if e.cfg.Cache != nil {
			cs := e.cfg.Cache.Stats()
			sp.SetInt("cache.hits", int64(cs.Hits-hits0))
			sp.SetInt("cache.misses", int64(cs.Misses-misses0))
		}
		sp.SetAttr("changed", boolStr(changed))
		if rep, ok := e.shardPol.(ShardBatchReporter); ok {
			batch, uses := rep.ShardBatchStats(i)
			sp.SetInt("batch", int64(batch))
			sp.SetInt("scratch.uses", int64(uses))
		}
		sp.End()
	}
	return nil
}

// boolStr avoids a strconv import at the two span call sites.
func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// mergeContracts assembles the observer-facing per-ID contract map from
// the dense shard slots: a full rewrite after a view rebuild, and only
// the changed shards' entries otherwise.
func (e *Engine) mergeContracts(st *roundState, rebuilt bool) map[string]*contract.PiecewiseLinear {
	if e.merged == nil {
		e.merged = make(map[string]*contract.PiecewiseLinear, len(st.agents))
		rebuilt = true
	}
	if rebuilt {
		clear(e.merged)
	} else {
		// Structural leavers are gone from every shard view; their map
		// entries would otherwise linger (shards report them neither
		// changed nor dirty).
		for _, id := range e.scope.leaves {
			delete(e.merged, id)
		}
	}
	for si := range e.shards {
		sr := &e.shards[si]
		if !rebuilt && !sr.changed {
			// Patch-route shards report changed=false, but their dirty
			// slots' contracts moved — fix up just those entries.
			for _, j := range sr.dirty {
				if c := sr.contracts[j]; c != nil {
					e.merged[sr.sh.Agents[j].ID] = c
				} else {
					delete(e.merged, sr.sh.Agents[j].ID)
				}
			}
			continue
		}
		for i, a := range sr.sh.Agents {
			if c := sr.contracts[i]; c != nil {
				e.merged[a.ID] = c
			} else if !rebuilt {
				delete(e.merged, a.ID)
			}
		}
	}
	return e.merged
}

// respondSharded is the respond stage under Config.Shards > 0. Dirty
// shards (new views, changed contracts, replaced outcome buffer) respond
// on the pool; a fully warm round — every shard's retained outcomes
// already exact — skips the stage. Outcomes land in each agent's global
// ID-order slot, so the merge order is exactly the sequential engine's.
func (e *Engine) respondSharded(ctx context.Context, st *roundState) (float64, error) {
	if e.cfg.Responder != nil {
		return e.respondShardedHook(ctx, st)
	}
	fromMap := e.shardPol == nil
	dirty := 0
	for i := range e.shards {
		if fromMap {
			// Map-route contracts carry no change signal: respond every
			// round, exactly like the sequential engine.
			e.shards[i].outsOK = false
		}
		if !e.shards[i].outsOK || len(e.shards[i].dirty) > 0 {
			dirty++
		}
	}
	if dirty == 0 {
		return e.sumShardUtility(), nil
	}
	if dirty > 1 && len(e.shards) > 1 {
		if err := e.fanOut(ctx, st.r, len(e.shards), 0, func(i int) error {
			return e.respondShard(st, i)
		}); err != nil {
			return 0, err
		}
	} else {
		for i := range e.shards {
			if err := e.respondShard(st, i); err != nil {
				return 0, err
			}
		}
	}
	return e.sumShardUtility(), nil
}

// respondShard computes one dirty shard's best responses (clean shards
// return immediately), deduplicating through the shard's memo segment.
// Shards whose outcomes are retained but carry sparse-drift dirty slots
// take the patch route: only those slots' outcomes are recomputed.
func (e *Engine) respondShard(st *roundState, i int) error {
	sr := &e.shards[i]
	if sr.outsOK && len(sr.dirty) == 0 {
		return nil
	}
	var t telemetry.Timer
	if st.timed {
		t = telemetry.StartTimer()
	}
	var sp *spans.Span
	var hits0, misses0 uint64
	if st.stageSpan != nil {
		sp = st.stageSpan.StartChild("engine.shard.respond")
		sp.SetInt("shard", int64(i))
		sp.SetInt("agents", int64(len(sr.sh.Agents)))
		sp.SetAttr("drift", e.scope.rule.String())
		if sr.outsOK {
			sp.SetAttr("route", "patch")
			sp.SetInt("dirty", int64(len(sr.dirty)))
		} else {
			sp.SetAttr("route", "solve")
		}
		if e.cfg.Memo != nil {
			ms := e.cfg.Memo.Stats()
			hits0, misses0 = ms.Hits, ms.Misses
		}
	}
	var err error
	if sr.outsOK {
		err = e.respondShardPatch(sr, st)
	} else {
		err = e.respondShardSolve(sr, st)
	}
	if sp != nil {
		if e.cfg.Memo != nil {
			// Shared atomics: deltas are attribution-approximate under the
			// concurrent fan-out, exact when shards run sequentially.
			ms := e.cfg.Memo.Stats()
			sp.SetInt("memo.hits", int64(ms.Hits-hits0))
			sp.SetInt("memo.misses", int64(ms.Misses-misses0))
		}
		sp.End()
	}
	if err != nil {
		return err
	}
	// Retained outcomes are exact until the view or the contracts change —
	// but only the dense route can see contracts change (the changed
	// report); map-route shards re-mark dirty every round above.
	sr.outsOK = true
	sr.dirty = sr.dirty[:0]
	if st.timed {
		e.m.shardRespond.Observe(t.Seconds())
	}
	return nil
}

// respondShardPatch refreshes exactly the shard's dirty outcome slots —
// the agents the sparse-drift route re-pointed at already-cached designs
// — and re-folds the shard's worker-utility sum from the per-slot
// breakdown, so the gauge matches a full recompute bit for bit.
func (e *Engine) respondShardPatch(sr *shardRun, st *roundState) error {
	outs := st.round.Outcomes
	for _, j := range sr.dirty {
		a := sr.sh.Agents[j]
		c := sr.contracts[j]
		oc := &outs[sr.sh.Global[j]]
		*oc = AgentOutcome{AgentID: a.ID, Class: a.Class, Size: a.Size, Weight: sr.sh.Weights[j]}
		if c == nil {
			oc.Excluded = true
			sr.wuSlots[j] = 0
			continue
		}
		fp := sr.sh.FPs[j]
		var resp worker.Response
		var hit bool
		if sr.memoSeg != nil {
			resp, hit = sr.memoSeg.Get(fp, c)
		}
		if !hit {
			var err error
			resp, err = a.BestResponse(c, e.pop.Part)
			if err != nil {
				return fmt.Errorf("engine: agent %s round %d: %w", a.ID, st.r, err)
			}
			if sr.memoSeg != nil {
				sr.memoSeg.Put(fp, c, resp)
			}
		}
		sr.wuSlots[j] = fillResponse(oc, resp)
	}
	var wu float64
	for _, u := range sr.wuSlots {
		wu += u
	}
	sr.wu = wu
	return nil
}

// respondShardSolve is the per-shard respond loop: the memoized dedup of
// respondMemoized, reading the shard's indexed views (no string-map
// lookups) and writing outcomes to pre-assigned global slots. Pending
// misses solve inline — shard-level parallelism comes from the pool.
func (e *Engine) respondShardSolve(sr *shardRun, st *roundState) error {
	s := &sr.scratch
	if s.keys == nil {
		s.keys = make(map[respondKey]int32, 16)
	} else {
		clear(s.keys)
	}
	s.resps = s.resps[:0]
	s.slots = s.slots[:0]
	s.pend = s.pend[:0]

	outs := st.round.Outcomes
	fromMap := e.shardPol == nil
	var lastKey respondKey
	lastSlot := int32(-1)
	for i, a := range sr.sh.Agents {
		var c *contract.PiecewiseLinear
		if fromMap {
			c = st.contracts[a.ID]
		} else {
			c = sr.contracts[i]
		}
		oc := &outs[sr.sh.Global[i]]
		*oc = AgentOutcome{AgentID: a.ID, Class: a.Class, Size: a.Size, Weight: sr.sh.Weights[i]}
		if c == nil {
			oc.Excluded = true
			s.slots = append(s.slots, -1)
			continue
		}
		key := respondKey{fp: sr.sh.FPs[i], c: c}
		if lastSlot >= 0 && key == lastKey {
			s.slots = append(s.slots, lastSlot)
			continue
		}
		slot, seen := s.keys[key]
		if !seen {
			slot = int32(len(s.resps))
			s.keys[key] = slot
			var resp worker.Response
			var hit bool
			if sr.memoSeg != nil {
				resp, hit = sr.memoSeg.Get(key.fp, key.c)
			}
			if hit {
				s.resps = append(s.resps, resp)
			} else {
				s.resps = append(s.resps, worker.Response{})
				s.pend = append(s.pend, pendResponse{slot: slot, a: a, key: key})
			}
		}
		lastKey, lastSlot = key, slot
		s.slots = append(s.slots, slot)
	}

	for pi := range s.pend {
		p := &s.pend[pi]
		resp, err := p.a.BestResponse(p.key.c, e.pop.Part)
		if err != nil {
			return fmt.Errorf("engine: agent %s round %d: %w", p.a.ID, st.r, err)
		}
		s.resps[p.slot] = resp
		if sr.memoSeg != nil {
			sr.memoSeg.Put(p.key.fp, p.key.c, resp)
		}
	}

	na := len(sr.sh.Agents)
	if cap(sr.wuSlots) < na {
		sr.wuSlots = make([]float64, na)
	}
	sr.wuSlots = sr.wuSlots[:na]
	var wu float64
	for i := range sr.sh.Agents {
		slot := s.slots[i]
		if slot < 0 {
			sr.wuSlots[i] = 0
			continue
		}
		u := fillResponse(&outs[sr.sh.Global[i]], s.resps[slot])
		sr.wuSlots[i] = u
		wu += u
	}
	sr.wu = wu
	return nil
}

// sumShardUtility folds the per-shard worker-utility sums in shard order.
// (The association differs from the sequential engine's global-order sum,
// so the worker-utility gauge may differ in the last ulp; the ledger
// itself settles in one sequential global pass and stays byte-identical.)
func (e *Engine) sumShardUtility() float64 {
	var wu float64
	for i := range e.shards {
		wu += e.shards[i].wu
	}
	return wu
}

// respondShardedHook runs a custom Responder per shard — hooks are
// round-dependent, so there is no warm skip. Fanning out remains opt-in
// through ParallelRespond (the Responder must then be concurrency-safe),
// mirroring the sequential engine.
func (e *Engine) respondShardedHook(ctx context.Context, st *roundState) (float64, error) {
	if e.cfg.ParallelRespond > 0 && len(e.shards) > 1 {
		if err := e.fanOut(ctx, st.r, len(e.shards), e.cfg.ParallelRespond, func(i int) error {
			return e.respondShardHook(st, i)
		}); err != nil {
			return 0, err
		}
	} else {
		for i := range e.shards {
			if err := e.respondShardHook(st, i); err != nil {
				return 0, err
			}
		}
	}
	return e.sumShardUtility(), nil
}

// respondShardHook runs the Responder over one shard.
func (e *Engine) respondShardHook(st *roundState, i int) error {
	sr := &e.shards[i]
	sr.outsOK = false
	sr.dirty = sr.dirty[:0] // the hook recomputes every slot anyway
	outs := st.round.Outcomes
	var wu float64
	for j, a := range sr.sh.Agents {
		var c *contract.PiecewiseLinear
		if e.shardPol != nil {
			c = sr.contracts[j]
		} else {
			c = st.contracts[a.ID]
		}
		oc := &outs[sr.sh.Global[j]]
		*oc = AgentOutcome{AgentID: a.ID, Class: a.Class, Size: a.Size, Weight: sr.sh.Weights[j]}
		if c == nil {
			oc.Excluded = true
			continue
		}
		y, err := e.cfg.Responder(st.r, a, c, e.pop.Part)
		if err != nil {
			return fmt.Errorf("engine: responder for %s round %d: %w", a.ID, st.r, err)
		}
		y = clampEffort(y, a, e.pop.Part)
		q := a.Psi.Eval(y)
		oc.Effort = y
		oc.Feedback = q
		oc.Compensation = c.Eval(q)
		wu += a.Utility(c, y)
	}
	sr.wu = wu
	return nil
}
