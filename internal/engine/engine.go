package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"dyncontract/internal/contract"
	"dyncontract/internal/effort"
	"dyncontract/internal/telemetry"
	"dyncontract/internal/worker"
)

// ErrStop is returned by an Observer's OnRoundEnd to halt the run cleanly
// (Engine.Run returns nil). Any other observer error aborts the run and is
// returned verbatim.
var ErrStop = errors.New("engine: stop requested")

// ErrBadConfig is returned when an engine configuration fails validation.
var ErrBadConfig = errors.New("engine: invalid configuration")

// Observer receives streamed per-round events. Implementations that only
// care about a subset should embed Hooks or leave methods empty; events
// fire in order OnContracts → OnOutcome (per agent, by ID) → OnRoundEnd.
//
// Observers let callers stream instead of accumulating ledgers: a
// million-round run with a streaming observer holds one Round in memory.
type Observer interface {
	// OnContracts fires after the policy posts the round's contracts. The
	// map is the engine's working copy — treat it as read-only and valid
	// only for the duration of the callback (policies reuse it across
	// rounds); copy it to retain it.
	OnContracts(round int, contracts map[string]*contract.PiecewiseLinear)
	// OnOutcome fires once per agent, in agent-ID order.
	OnOutcome(round int, oc AgentOutcome)
	// OnRoundEnd fires with the completed round. Returning ErrStop ends
	// the run cleanly; any other error aborts it.
	OnRoundEnd(round Round) error
}

// Hooks adapts optional funcs into an Observer; nil funcs are skipped.
type Hooks struct {
	Contracts func(round int, contracts map[string]*contract.PiecewiseLinear)
	Outcome   func(round int, oc AgentOutcome)
	RoundEnd  func(round Round) error
}

var _ Observer = Hooks{}

// OnContracts implements Observer.
func (h Hooks) OnContracts(round int, contracts map[string]*contract.PiecewiseLinear) {
	if h.Contracts != nil {
		h.Contracts(round, contracts)
	}
}

// OnOutcome implements Observer.
func (h Hooks) OnOutcome(round int, oc AgentOutcome) {
	if h.Outcome != nil {
		h.Outcome(round, oc)
	}
}

// OnRoundEnd implements Observer.
func (h Hooks) OnRoundEnd(round Round) error {
	if h.RoundEnd != nil {
		return h.RoundEnd(round)
	}
	return nil
}

// Ledger is the accumulating Observer: it collects every completed round,
// reproducing the []Round return of the pre-engine simulators.
type Ledger struct {
	Rounds []Round
}

var _ Observer = (*Ledger)(nil)

// OnContracts implements Observer.
func (l *Ledger) OnContracts(int, map[string]*contract.PiecewiseLinear) {}

// OnOutcome implements Observer.
func (l *Ledger) OnOutcome(int, AgentOutcome) {}

// OnRoundEnd implements Observer. The engine reuses the round's Outcomes
// backing array for the next round, so the ledger — which retains rounds
// past the callback — copies it.
func (l *Ledger) OnRoundEnd(round Round) error {
	round.Outcomes = append([]AgentOutcome(nil), round.Outcomes...)
	l.Rounds = append(l.Rounds, round)
	return nil
}

// Total sums the requester's utility over the collected rounds.
func (l *Ledger) Total() float64 { return TotalUtility(l.Rounds) }

// Responder chooses an agent's effort for a round instead of the exact
// myopic best response — the hook strategic adversaries plug into. The
// returned effort is clamped to [0, min(mδ, apex)].
type Responder func(round int, a *worker.Agent, c *contract.PiecewiseLinear, part effort.Partition) (float64, error)

// Config assembles one engine run.
type Config struct {
	// Policy prices each round. Required.
	Policy Policy
	// Rounds is the number of rounds to run. Required (> 0); observers can
	// end the run earlier through ErrStop.
	Rounds int
	// Drift, when non-nil, runs before each round and may mutate the
	// population (behaviour drift, weight re-estimation, …).
	Drift func(round int, pop *Population)
	// Responder, when non-nil, overrides the exact best response.
	Responder Responder
	// Observers receive the streamed events of every round.
	Observers []Observer
	// Cache, when non-nil, is wired into the policy (if it implements
	// CacheUser) and surfaced through Engine.CacheStats. Designs then
	// dedup across rounds, not just within one.
	Cache *Cache
	// Memo, when non-nil, memoizes exact best responses keyed by (design
	// fingerprint, contract): a warm round with k distinct fingerprints
	// performs k memo lookups and zero BestResponse calls. Misses are
	// solved through the bounded parallel fan-out. Ignored when a custom
	// Responder is set (hooks may be round-dependent). Like the design
	// cache, the memo is a pure optimization — the ledger is byte-
	// identical with or without it.
	Memo *RespondMemo
	// ParallelRespond caps the respond stage's parallel fan-out. For memo
	// misses 0 means GOMAXPROCS (the fan-out is always on); for the
	// non-memoized routes — per-agent BestResponse, or a custom Responder
	// — parallelism is opt-in: 0 keeps the classic sequential loop, > 0
	// fans out (a custom Responder must then be safe for concurrent
	// calls). Outcomes are written into pre-assigned slots, so every
	// setting produces the same ledger in the same order.
	ParallelRespond int
	// Metrics, when non-nil, instruments the run: per-stage round timing
	// histograms, per-round ledger gauges (the same set TelemetryObserver
	// exports), the design cache's counters (Cache.ExportTo), and — for
	// policies implementing MetricsUser — the solver fan-out.
	// telemetry.Nop (a nil registry) leaves the run un-instrumented;
	// enabling metrics never changes the simulated ledger.
	Metrics *telemetry.Registry
}

// Engine drives the repeated Stackelberg round loop of §II over one
// population: drift → contracts → best responses → accounting → observers.
type Engine struct {
	pop       *Population
	cfg       Config
	m         *stageMetrics      // nil when Config.Metrics is unset
	telObs    *telemetryObserver // nil when Config.Metrics is unset
	agents    []*worker.Agent    // cached ID-sorted view (see roundAgents)
	agentsOK  bool
	agentsGen uint64
	outs      []AgentOutcome // Round.Outcomes backing array, reused per round
	rs        respondScratch // respond-stage buffers, reused per round
}

// New validates the population and configuration and wires the cache and
// metrics registry into the policy when supported.
func New(pop *Population, cfg Config) (*Engine, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("nil policy: %w", ErrBadConfig)
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("rounds=%d must be positive: %w", cfg.Rounds, ErrBadConfig)
	}
	if err := pop.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cache != nil {
		if cu, ok := cfg.Policy.(CacheUser); ok {
			cu.UseCache(cfg.Cache)
		}
	}
	e := &Engine{pop: pop, cfg: cfg}
	if cfg.Metrics != nil {
		if mu, ok := cfg.Policy.(MetricsUser); ok {
			mu.UseMetrics(cfg.Metrics)
		}
		if cfg.Cache != nil {
			cfg.Cache.ExportTo(cfg.Metrics)
		}
		if cfg.Memo != nil {
			cfg.Memo.ExportTo(cfg.Metrics)
		}
		e.m = newStageMetrics(cfg.Metrics)
		// Ledger metrics are exported directly in Run rather than by
		// stacking TelemetryObserver into Observers: the per-agent
		// OnOutcome dispatch loop stays exactly as long as the caller made
		// it, which keeps instrumentation overhead off the hot path. The
		// export happens before user observers fire, so a per-round
		// metrics flush reads the registry already updated for the round.
		e.telObs = newTelemetryObserver(cfg.Metrics)
	}
	return e, nil
}

// CacheStats snapshots the configured cache's counters (zero when no cache
// was configured).
func (e *Engine) CacheStats() CacheStats {
	if e.cfg.Cache == nil {
		return CacheStats{}
	}
	return e.cfg.Cache.Stats()
}

// RespondStats snapshots the configured respond memo's counters (zero
// when no memo was configured).
func (e *Engine) RespondStats() RespondStats {
	if e.cfg.Memo == nil {
		return RespondStats{}
	}
	return e.cfg.Memo.Stats()
}

// Run executes the configured number of rounds, streaming events to the
// observers. It returns nil on completion or clean ErrStop, and the first
// error otherwise (context cancellation, policy/design failure, a drift
// that broke the population, or an observer error).
//
// Each round is four stages — contract design, worker best-response,
// outcome settlement, observer dispatch — and when Config.Metrics is set
// each stage's duration is observed into its _seconds histogram. The
// observable event order is unchanged either way: OnContracts, then one
// OnOutcome per agent in ID order, then OnRoundEnd.
func (e *Engine) Run(ctx context.Context) error {
	timed := e.m != nil
	for r := 0; r < e.cfg.Rounds; r++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("engine: round %d: %w", r, err)
		}
		if e.cfg.Drift != nil {
			e.cfg.Drift(r, e.pop)
			if err := e.pop.Validate(); err != nil {
				return fmt.Errorf("engine: drift broke population at round %d: %w", r, err)
			}
		}

		// Stage 1: contract design.
		var roundTimer, stageTimer telemetry.Timer
		if timed {
			roundTimer = telemetry.StartTimer()
			stageTimer = roundTimer
		}
		contracts, err := e.cfg.Policy.Contracts(ctx, e.pop)
		if err != nil {
			return fmt.Errorf("engine: policy %s round %d: %w", e.cfg.Policy.Name(), r, err)
		}
		var observeDur time.Duration
		if timed {
			e.m.design.Observe(stageTimer.Seconds())
			stageTimer = telemetry.StartTimer()
		}
		for _, ob := range e.cfg.Observers {
			ob.OnContracts(r, contracts)
		}
		if timed {
			observeDur += stageTimer.Elapsed()
			stageTimer = telemetry.StartTimer()
		}

		// Stage 2: worker best responses. The outcomes backing array is
		// reused across rounds; observers that retain it past their
		// callback (as Ledger does) must copy.
		agents := e.roundAgents()
		if cap(e.outs) < len(agents) {
			e.outs = make([]AgentOutcome, len(agents))
		}
		round := Round{Index: r, Outcomes: e.outs[:len(agents)]}
		workerUtility, err := e.respondAll(ctx, r, contracts, agents, round.Outcomes, timed)
		if err != nil {
			return err
		}
		if timed {
			e.m.respond.Observe(stageTimer.Seconds())
			stageTimer = telemetry.StartTimer()
		}

		// Stage 3: outcome settlement (Eq. (7) accounting).
		for i := range round.Outcomes {
			oc := &round.Outcomes[i]
			if oc.Excluded || oc.Declined {
				continue
			}
			round.Benefit += oc.Weight * oc.Feedback
			round.Cost += oc.Compensation
		}
		round.Utility = round.Benefit - e.pop.Mu*round.Cost
		if timed {
			e.m.settle.Observe(stageTimer.Seconds())
			e.m.workerUtility.Set(workerUtility)
			stageTimer = telemetry.StartTimer()
		}

		// Stage 4: observer dispatch. The registry export runs first so
		// observers that read Config.Metrics (e.g. a per-round JSONL
		// flush) see the completed round's values.
		if timed {
			_ = e.telObs.OnRoundEnd(round) // never errors
		}
		for i := range round.Outcomes {
			for _, ob := range e.cfg.Observers {
				ob.OnOutcome(r, round.Outcomes[i])
			}
		}
		var endErr error
		for _, ob := range e.cfg.Observers {
			if endErr = ob.OnRoundEnd(round); endErr != nil {
				break
			}
		}
		if timed {
			observeDur += stageTimer.Elapsed()
			e.m.observe.Observe(observeDur.Seconds())
			e.m.round.Observe(roundTimer.Seconds())
		}
		if endErr != nil {
			if errors.Is(endErr, ErrStop) {
				return nil
			}
			return endErr
		}
	}
	return nil
}

// roundAgents returns the ID-ordered agent view. With no Drift configured
// the view is cached across rounds (killing the per-round O(n log n)
// sort) and rebuilt only when the population's generation counter moves —
// callers mutating Agents outside Drift must call Population.Bump. With a
// Drift the view is rebuilt every round, since the drift may have added,
// removed, or reordered agents.
func (e *Engine) roundAgents() []*worker.Agent {
	gen := e.pop.Generation()
	if e.cfg.Drift == nil && e.agentsOK && e.agentsGen == gen {
		return e.agents
	}
	e.agents = append(e.agents[:0], e.pop.Agents...)
	sort.Slice(e.agents, func(i, j int) bool { return e.agents[i].ID < e.agents[j].ID })
	e.agentsOK = true
	e.agentsGen = gen
	return e.agents
}

// RunLedger runs a configured engine to completion and returns the
// accumulated per-round ledger — the convenience path for callers that
// want the classic []Round result. On error the rounds completed so far
// are returned alongside it.
func RunLedger(ctx context.Context, pop *Population, cfg Config) ([]Round, error) {
	led := &Ledger{Rounds: make([]Round, 0, cfg.Rounds)}
	cfg.Observers = append(append([]Observer(nil), cfg.Observers...), led)
	e, err := New(pop, cfg)
	if err != nil {
		return nil, err
	}
	if err := e.Run(ctx); err != nil {
		return led.Rounds, err
	}
	return led.Rounds, nil
}
