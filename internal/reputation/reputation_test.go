package reputation

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func newTracker(t *testing.T) *Tracker {
	t.Helper()
	tr, err := NewTracker(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Alpha = 1.5 },
		func(c *Config) { c.PromoGain = -0.1 },
		func(c *Config) { c.PromoGain = 2 },
		func(c *Config) { c.Decay = 0 },
		func(c *Config) { c.PriorMalice = 1.2 },
		func(c *Config) { c.PriorDist = 0 },
		func(c *Config) { c.Weight.Rho = 0 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) && err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewTrackerRejectsBadConfig(t *testing.T) {
	if _, err := NewTracker(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestUnseenWorkerUsesPriors(t *testing.T) {
	tr := newTracker(t)
	cfg := DefaultConfig()
	if got := tr.MaliceProb("ghost"); got != cfg.PriorMalice {
		t.Errorf("MaliceProb = %v, want prior %v", got, cfg.PriorMalice)
	}
	if got := tr.AccuracyDist("ghost"); got != cfg.PriorDist {
		t.Errorf("AccuracyDist = %v, want prior %v", got, cfg.PriorDist)
	}
	if tr.Rounds("ghost") != 0 {
		t.Error("unseen worker has rounds")
	}
}

func TestPromotionalRaisesMalice(t *testing.T) {
	tr := newTracker(t)
	base := tr.MaliceProb("w")
	for i := 0; i < 3; i++ {
		err := tr.Observe([]Observation{{WorkerID: "w", ReviewScore: 5, ExpertScore: 2, Promotional: true}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.MaliceProb("w"); got <= base {
		t.Errorf("malice %v did not rise from %v", got, base)
	}
	if got := tr.MaliceProb("w"); got > 1 {
		t.Errorf("malice %v exceeds 1", got)
	}
}

func TestCleanBehaviourDecays(t *testing.T) {
	tr := newTracker(t)
	if err := tr.Observe([]Observation{{WorkerID: "w", ReviewScore: 5, ExpertScore: 1, Promotional: true}}); err != nil {
		t.Fatal(err)
	}
	high := tr.MaliceProb("w")
	for i := 0; i < 30; i++ {
		if err := tr.Observe([]Observation{{WorkerID: "w", ReviewScore: 3, ExpertScore: 3}}); err != nil {
			t.Fatal(err)
		}
	}
	low := tr.MaliceProb("w")
	if low >= high {
		t.Errorf("malice did not decay: %v -> %v", high, low)
	}
	if low > 0.15 {
		t.Errorf("malice %v still high after 30 clean rounds", low)
	}
}

func TestAbsentWorkerDecays(t *testing.T) {
	tr := newTracker(t)
	if err := tr.Observe([]Observation{{WorkerID: "w", ReviewScore: 5, ExpertScore: 1, Promotional: true}}); err != nil {
		t.Fatal(err)
	}
	before := tr.MaliceProb("w")
	// Rounds with other workers only.
	for i := 0; i < 5; i++ {
		if err := tr.Observe([]Observation{{WorkerID: "other", ReviewScore: 3, ExpertScore: 3}}); err != nil {
			t.Fatal(err)
		}
	}
	if after := tr.MaliceProb("w"); after >= before {
		t.Errorf("absent worker's malice did not decay: %v -> %v", before, after)
	}
}

func TestAccuracyDistEWMA(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Alpha = 0.5
	tr, err := NewTracker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Observe([]Observation{{WorkerID: "w", ReviewScore: 4, ExpertScore: 2}}); err != nil {
		t.Fatal(err)
	}
	// EWMA: 0.5*prior(0.5) + 0.5*2 = 1.25.
	if got := tr.AccuracyDist("w"); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("AccuracyDist = %v, want 1.25", got)
	}
}

func TestWeightRespondsToBehaviour(t *testing.T) {
	tr := newTracker(t)
	wClean, err := tr.Weight("clean")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		err := tr.Observe([]Observation{{WorkerID: "bad", ReviewScore: 5, ExpertScore: 1, Promotional: true, Partners: 3}})
		if err != nil {
			t.Fatal(err)
		}
	}
	wBad, err := tr.Weight("bad")
	if err != nil {
		t.Fatal(err)
	}
	if wBad >= wClean {
		t.Errorf("attacker weight %v >= clean weight %v", wBad, wClean)
	}
}

func TestObserveErrors(t *testing.T) {
	tr := newTracker(t)
	if err := tr.Observe([]Observation{{WorkerID: ""}}); err == nil {
		t.Error("empty worker ID accepted")
	}
	if err := tr.Observe([]Observation{{WorkerID: "w", ReviewScore: math.NaN()}}); err == nil {
		t.Error("NaN score accepted")
	}
}

func TestWorkersSortedAndRounds(t *testing.T) {
	tr := newTracker(t)
	for _, id := range []string{"z", "a", "m"} {
		if err := tr.Observe([]Observation{{WorkerID: id, ReviewScore: 3, ExpertScore: 3}}); err != nil {
			t.Fatal(err)
		}
	}
	ids := tr.Workers()
	if len(ids) != 3 || ids[0] != "a" || ids[2] != "z" {
		t.Errorf("Workers = %v", ids)
	}
	if tr.Rounds("a") != 1 {
		t.Errorf("Rounds(a) = %d", tr.Rounds("a"))
	}
}

// Property: malice estimates always stay in [0, 1] under arbitrary
// observation sequences.
func TestMaliceBoundedProperty(t *testing.T) {
	f := func(flags []bool) bool {
		tr, err := NewTracker(DefaultConfig())
		if err != nil {
			return false
		}
		for _, promo := range flags {
			err := tr.Observe([]Observation{{
				WorkerID: "w", ReviewScore: 4, ExpertScore: 2, Promotional: promo,
			}})
			if err != nil {
				return false
			}
			m := tr.MaliceProb("w")
			if m < 0 || m > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
