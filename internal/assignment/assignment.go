// Package assignment adds the worker–task matching dimension of the
// related work ([22] Ho & Vaughan, online task assignment in crowdsourcing
// markets): when tasks are heterogeneous — different requester values,
// different fit per worker — the requester must decide *who works on
// what* before designing contracts.
//
// The package provides an exact maximum-value assignment solver (the
// Hungarian algorithm, O(n³)) and a greedy baseline, over a value matrix
// whose entries are typically the per-(worker, task) requester utilities
// that core.Design predicts. Workers and tasks need not be equal in
// number; the rectangular problem is solved by implicit padding.
package assignment

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrBadMatrix is returned for malformed value matrices.
var ErrBadMatrix = errors.New("assignment: invalid value matrix")

// Result is a worker→task matching.
type Result struct {
	// TaskOf maps worker index to assigned task index, −1 if unassigned.
	TaskOf []int
	// TotalValue is the summed value of the matched pairs.
	TotalValue float64
}

// validate checks the matrix is rectangular, non-empty, and finite.
func validate(value [][]float64) (rows, cols int, err error) {
	rows = len(value)
	if rows == 0 {
		return 0, 0, fmt.Errorf("no workers: %w", ErrBadMatrix)
	}
	cols = len(value[0])
	if cols == 0 {
		return 0, 0, fmt.Errorf("no tasks: %w", ErrBadMatrix)
	}
	for i, row := range value {
		if len(row) != cols {
			return 0, 0, fmt.Errorf("row %d has %d entries, want %d: %w", i, len(row), cols, ErrBadMatrix)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, 0, fmt.Errorf("entry (%d,%d)=%v: %w", i, j, v, ErrBadMatrix)
			}
		}
	}
	return rows, cols, nil
}

// Greedy assigns pairs in decreasing value order, skipping negative-value
// pairs (leaving a worker idle is better than a harmful match). A worker
// gets at most one task and vice versa.
func Greedy(value [][]float64) (*Result, error) {
	rows, cols, err := validate(value)
	if err != nil {
		return nil, err
	}
	type pair struct {
		w, t int
		v    float64
	}
	pairs := make([]pair, 0, rows*cols)
	for w := 0; w < rows; w++ {
		for t := 0; t < cols; t++ {
			if value[w][t] > 0 {
				pairs = append(pairs, pair{w, t, value[w][t]})
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].v != pairs[b].v {
			return pairs[a].v > pairs[b].v
		}
		if pairs[a].w != pairs[b].w {
			return pairs[a].w < pairs[b].w
		}
		return pairs[a].t < pairs[b].t
	})
	res := &Result{TaskOf: make([]int, rows)}
	for i := range res.TaskOf {
		res.TaskOf[i] = -1
	}
	taskTaken := make([]bool, cols)
	for _, p := range pairs {
		if res.TaskOf[p.w] != -1 || taskTaken[p.t] {
			continue
		}
		res.TaskOf[p.w] = p.t
		taskTaken[p.t] = true
		res.TotalValue += p.v
	}
	return res, nil
}

// Optimal computes the maximum-total-value assignment with the Hungarian
// algorithm. Negative-value matches are never made: the matrix is clamped
// at zero and zero-value matches are reported as unassigned.
func Optimal(value [][]float64) (*Result, error) {
	rows, cols, err := validate(value)
	if err != nil {
		return nil, err
	}
	// Pad to square n×n; padded cells carry value 0 (equivalent to not
	// assigning), and negatives clamp to 0 for the same reason.
	n := rows
	if cols > n {
		n = cols
	}
	// Hungarian solves minimization; convert value-max into cost-min by
	// cost = maxV − value.
	maxV := 0.0
	for w := 0; w < rows; w++ {
		for t := 0; t < cols; t++ {
			if value[w][t] > maxV {
				maxV = value[w][t]
			}
		}
	}
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			v := 0.0
			if i < rows && j < cols && value[i][j] > 0 {
				v = value[i][j]
			}
			cost[i][j] = maxV - v
		}
	}

	match := hungarian(cost)

	res := &Result{TaskOf: make([]int, rows)}
	for w := 0; w < rows; w++ {
		t := match[w]
		if t < cols && value[w][t] > 0 {
			res.TaskOf[w] = t
			res.TotalValue += value[w][t]
		} else {
			res.TaskOf[w] = -1
		}
	}
	return res, nil
}

// hungarian returns, for the square cost matrix, the column assigned to
// each row under a minimum-cost perfect matching (Jonker-style O(n³)
// potentials-and-augmenting-paths formulation).
func hungarian(cost [][]float64) []int {
	n := len(cost)
	// Potentials u (rows), v (cols); way[j] = previous column on the
	// augmenting path; matchCol[j] = row matched to column j. 1-based
	// internally with column 0 as the virtual root.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	matchCol := make([]int, n+1)
	way := make([]int, n+1)
	for i := range matchCol {
		matchCol[i] = 0
	}
	const inf = math.MaxFloat64
	for i := 1; i <= n; i++ {
		matchCol[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := matchCol[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[matchCol[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if matchCol[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			matchCol[j0] = matchCol[j1]
			j0 = j1
		}
	}
	rowToCol := make([]int, n)
	for j := 1; j <= n; j++ {
		if matchCol[j] > 0 {
			rowToCol[matchCol[j]-1] = j - 1
		}
	}
	return rowToCol
}
