package budget

import (
	"context"
	"fmt"

	"dyncontract/internal/contract"
	"dyncontract/internal/core"
	"dyncontract/internal/platform"
	"dyncontract/internal/solver"
)

// Policy is a budget-feasible pricing policy for the marketplace: each
// round it designs every agent's candidate menu in parallel, solves the
// MCKP under the budget, and posts the chosen candidate (or no contract).
type Policy struct {
	// Budget is the per-round compensation budget B.
	Budget float64
	// UseDP selects the exact DP (with DPSteps grid points) instead of
	// the greedy; greedy is the default and scales to large populations.
	UseDP bool
	// DPSteps is the DP cost grid (default 2000).
	DPSteps int
	// Parallelism caps the design pool; 0 means GOMAXPROCS.
	Parallelism int
}

var _ platform.Policy = (*Policy)(nil)

// Name implements platform.Policy.
func (p *Policy) Name() string {
	algo := "greedy"
	if p.UseDP {
		algo = "dp"
	}
	return fmt.Sprintf("budgeted-dynamic(B=%.1f,%s)", p.Budget, algo)
}

// Contracts implements platform.Policy.
func (p *Policy) Contracts(ctx context.Context, pop *platform.Population) (map[string]*contract.PiecewiseLinear, error) {
	subs := make([]solver.Subproblem, len(pop.Agents))
	for i, a := range pop.Agents {
		subs[i] = solver.Subproblem{
			Agent: a,
			// WantCandidates: the MCKP needs the full per-k menu, not just
			// the argmax winner the batched solve would otherwise return.
			Config: core.Config{Part: pop.Part, Mu: pop.Mu, W: pop.Weights[a.ID], WantCandidates: true},
		}
	}
	outcomes, err := solver.SolveAll(ctx, subs, solver.Options{Parallelism: p.Parallelism})
	if err != nil {
		return nil, fmt.Errorf("budget: design: %w", err)
	}

	menus := make([]Menu, len(outcomes))
	byAgent := make(map[string]*core.Result, len(outcomes))
	for i, o := range outcomes {
		res := o.Result
		menus[i] = MenuFromResult(res, pop.Weights[res.Agent.ID])
		byAgent[res.Agent.ID] = res
	}

	var alloc *Allocation
	if p.UseDP {
		steps := p.DPSteps
		if steps <= 0 {
			steps = 2000
		}
		alloc, err = SolveDP(menus, p.Budget, steps)
	} else {
		alloc, err = SolveGreedy(menus, p.Budget)
	}
	if err != nil {
		return nil, fmt.Errorf("budget: allocate: %w", err)
	}

	contracts := make(map[string]*contract.PiecewiseLinear, len(pop.Agents))
	for id, opt := range alloc.Choice {
		if opt.K == 0 {
			continue // excluded this round: no entry = nil contract
		}
		res := byAgent[id]
		contracts[id] = res.Candidates[opt.K-1].Contract
	}
	return contracts, nil
}
