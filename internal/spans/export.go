package spans

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteJSONL writes one JSON object per line per trace — the same
// line-delimited convention as telemetry.JSONLSink — so exported traces
// append cleanly to a shared sink file and stream through line-oriented
// tools.
func WriteJSONL(w io.Writer, traces []Trace) error {
	enc := json.NewEncoder(w)
	for _, tr := range traces {
		if err := enc.Encode(tr); err != nil {
			return fmt.Errorf("spans: write jsonl trace %s: %w", tr.ID, err)
		}
	}
	return nil
}

// chromeEvent is one Chrome trace_event. The "X" (complete) phase carries
// both timestamp and duration in microseconds; "M" (metadata) names the
// per-trace row. The JSON field names are the trace_event format's.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeFile is the trace_event JSON object form, the one Perfetto and
// chrome://tracing load directly.
type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChrome writes the traces in Chrome trace_event JSON (object form),
// loadable in Perfetto or chrome://tracing. Each trace renders as its own
// named thread row (tid = position in traces, thread_name = trace ID), so
// concurrent requests stack vertically and each request's spans nest
// horizontally by time. Timestamps are absolute Unix microseconds; spans
// within a trace are sorted by start time then span ID, so output is
// deterministic for a given input.
func WriteChrome(w io.Writer, traces []Trace) error {
	file := chromeFile{TraceEvents: make([]chromeEvent, 0, len(traces)*2)}
	for i, tr := range traces {
		tid := i + 1
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   tid,
			Args:  map[string]any{"name": "trace " + tr.ID.String()},
		})
		spans := make([]SpanData, len(tr.Spans))
		copy(spans, tr.Spans)
		sort.Slice(spans, func(a, b int) bool {
			if !spans[a].Start.Equal(spans[b].Start) {
				return spans[a].Start.Before(spans[b].Start)
			}
			return spans[a].ID < spans[b].ID
		})
		for _, sd := range spans {
			args := map[string]any{
				"trace":  sd.Trace.String(),
				"span":   sd.ID.String(),
				"parent": sd.Parent.String(),
			}
			for _, a := range sd.Attrs {
				args[a.Key] = a.Value
			}
			dur := sd.End.Sub(sd.Start).Microseconds()
			if dur < 1 {
				dur = 1 // zero-width spans are invisible in viewers
			}
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name:  sd.Name,
				Phase: "X",
				TS:    sd.Start.UnixMicro(),
				Dur:   dur,
				PID:   1,
				TID:   tid,
				Args:  args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}
