package numeric

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero rows×cols matrix.
//
// It panics if either dimension is non-positive; shapes are programmer
// errors, not runtime conditions.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("numeric: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from row slices. All rows must have equal
// length.
func MatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("matrix from empty rows: %w", ErrDimensionMismatch)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("row %d has length %d, want %d: %w", i, len(r), cols, ErrDimensionMismatch)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the (i, j) entry.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the (i, j) entry.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("numeric: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// MulVec returns m·v.
func (m *Matrix) MulVec(v Vector) (Vector, error) {
	if len(v) != m.cols {
		return nil, fmt.Errorf("mulvec %dx%d by length %d: %w", m.rows, m.cols, len(v), ErrDimensionMismatch)
	}
	out := NewVector(m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Mul returns m·n.
func (m *Matrix) Mul(n *Matrix) (*Matrix, error) {
	if m.cols != n.rows {
		return nil, fmt.Errorf("mul %dx%d by %dx%d: %w", m.rows, m.cols, n.rows, n.cols, ErrDimensionMismatch)
	}
	out := NewMatrix(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			nRow := n.data[k*n.cols : (k+1)*n.cols]
			outRow := out.data[i*out.cols : (i+1)*out.cols]
			for j, x := range nRow {
				outRow[j] += a * x
			}
		}
	}
	return out, nil
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%10.4g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// AllFinite reports whether every entry is finite.
func (m *Matrix) AllFinite() bool {
	for _, x := range m.data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
