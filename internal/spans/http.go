package spans

import (
	"encoding/hex"
	"hash/fnv"
)

// HeaderRequestID is the HTTP header contractd honors for inbound trace
// IDs and echoes on every response, so a client (or loadgen) can
// correlate its own request log with server-side traces.
const HeaderRequestID = "X-Request-Id"

// ParseTraceHeader maps an arbitrary client-supplied request ID to a
// TraceID deterministically: a 32-hex-digit string decodes as the literal
// ID (round-tripping TraceID.String), and any other non-empty string
// hashes (FNV-1a 128) to a stable non-zero ID — so "my-soak-run-17" is a
// perfectly good request ID, and looking it up later re-derives the same
// trace. The empty string returns (zero, false): mint a fresh ID instead.
func ParseTraceHeader(s string) (TraceID, bool) {
	if s == "" {
		return TraceID{}, false
	}
	if len(s) == 32 {
		var id TraceID
		if _, err := hex.Decode(id[:], []byte(s)); err == nil {
			if id.IsZero() {
				id[15] = 1 // the zero ID means "no trace"; nudge it valid
			}
			return id, true
		}
	}
	h := fnv.New128a()
	h.Write([]byte(s))
	var id TraceID
	h.Sum(id[:0])
	if id.IsZero() {
		id[15] = 1
	}
	return id, true
}
