package numeric

import (
	"errors"
	"fmt"
	"math"
)

// ErrRankDeficient is returned when a least-squares system does not have
// full column rank (up to a numerical tolerance).
var ErrRankDeficient = errors.New("numeric: rank-deficient system")

// QR holds a Householder QR decomposition of an m×n matrix with m ≥ n.
// R is stored in the upper triangle of factors; the Householder vectors in
// the lower triangle plus the tau scalars.
type QR struct {
	factors *Matrix
	tau     []float64
}

// DecomposeQR computes the Householder QR decomposition of a. The input is
// not modified. It requires a.Rows() >= a.Cols().
func DecomposeQR(a *Matrix) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("qr of %dx%d (need rows >= cols): %w", m, n, ErrDimensionMismatch)
	}
	f := a.Clone()
	tau := make([]float64, n)
	for k := 0; k < n; k++ {
		// Build the Householder reflector for column k, rows k..m-1.
		var norm float64
		{
			col := make(Vector, m-k)
			for i := k; i < m; i++ {
				col[i-k] = f.At(i, k)
			}
			norm = col.Norm2()
		}
		if norm == 0 {
			tau[k] = 0
			continue
		}
		alpha := f.At(k, k)
		if alpha > 0 {
			norm = -norm
		}
		// v = x - norm*e1, normalized so v[0] = 1.
		v0 := alpha - norm
		f.Set(k, k, norm)
		for i := k + 1; i < m; i++ {
			f.Set(i, k, f.At(i, k)/v0)
		}
		tau[k] = -v0 / norm

		// Apply reflector to remaining columns: A[k:,j] -= tau * v * (v'A[k:,j]).
		for j := k + 1; j < n; j++ {
			dot := f.At(k, j)
			for i := k + 1; i < m; i++ {
				dot += f.At(i, k) * f.At(i, j)
			}
			dot *= tau[k]
			f.Set(k, j, f.At(k, j)-dot)
			for i := k + 1; i < m; i++ {
				f.Set(i, j, f.At(i, j)-dot*f.At(i, k))
			}
		}
	}
	return &QR{factors: f, tau: tau}, nil
}

// applyQT overwrites b (length m) with Qᵀb.
func (qr *QR) applyQT(b Vector) {
	m, n := qr.factors.Rows(), qr.factors.Cols()
	for k := 0; k < n; k++ {
		if qr.tau[k] == 0 {
			continue
		}
		dot := b[k]
		for i := k + 1; i < m; i++ {
			dot += qr.factors.At(i, k) * b[i]
		}
		dot *= qr.tau[k]
		b[k] -= dot
		for i := k + 1; i < m; i++ {
			b[i] -= dot * qr.factors.At(i, k)
		}
	}
}

// SolveLeastSquares returns x minimizing ‖Ax − b‖₂ for the decomposed A,
// along with the residual norm ‖Ax − b‖₂ computed from the trailing
// components of Qᵀb. It returns ErrRankDeficient when R has a (numerically)
// zero diagonal entry.
func (qr *QR) SolveLeastSquares(b Vector) (x Vector, residual float64, err error) {
	m, n := qr.factors.Rows(), qr.factors.Cols()
	if len(b) != m {
		return nil, 0, fmt.Errorf("rhs length %d, want %d: %w", len(b), m, ErrDimensionMismatch)
	}
	qtb := b.Clone()
	qr.applyQT(qtb)

	// Tolerance relative to the largest diagonal magnitude of R.
	var maxDiag float64
	for k := 0; k < n; k++ {
		if a := math.Abs(qr.factors.At(k, k)); a > maxDiag {
			maxDiag = a
		}
	}
	tol := maxDiag * 1e-12
	if tol == 0 {
		return nil, 0, fmt.Errorf("all-zero matrix: %w", ErrRankDeficient)
	}

	x = NewVector(n)
	for k := n - 1; k >= 0; k-- {
		d := qr.factors.At(k, k)
		if math.Abs(d) <= tol {
			return nil, 0, fmt.Errorf("zero pivot at column %d: %w", k, ErrRankDeficient)
		}
		s := qtb[k]
		for j := k + 1; j < n; j++ {
			s -= qr.factors.At(k, j) * x[j]
		}
		x[k] = s / d
	}

	tail := qtb[n:]
	residual = Vector(tail).Norm2()
	return x, residual, nil
}

// LeastSquares solves min ‖Ax − b‖₂ in one call, returning the solution and
// the residual norm.
func LeastSquares(a *Matrix, b Vector) (Vector, float64, error) {
	qr, err := DecomposeQR(a)
	if err != nil {
		return nil, 0, err
	}
	return qr.SolveLeastSquares(b)
}

// SolveLinear solves the square system Ax = b via QR.
func SolveLinear(a *Matrix, b Vector) (Vector, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("solve of %dx%d (need square): %w", a.Rows(), a.Cols(), ErrDimensionMismatch)
	}
	x, _, err := LeastSquares(a, b)
	return x, err
}
