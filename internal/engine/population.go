// Package engine is the single round-loop behind every marketplace
// simulation in this repository. The paper's decomposition result (§IV-B)
// makes contract design separate per worker/community, and real
// populations are drawn from a handful of behavioural archetypes — so the
// engine pairs the loop with a deduplicating design cache: agents sharing
// a design fingerprint (class, ψ, β, ω, reservation, partition, μ, w) cost
// one core.Design call per round, and an unchanged fingerprint across
// rounds costs zero.
//
// Layering (see DESIGN.md "Engine architecture"):
//
//	loop (Engine.Run) → policy (Policy / Designer) → cache (Cache) → solver fan-out
//
// internal/platform.Simulate and internal/dynamics.Run are thin adapters
// over this package; callers that want streaming instead of accumulated
// ledgers attach Observers.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"

	"dyncontract/internal/contract"
	"dyncontract/internal/effort"
	"dyncontract/internal/worker"
)

// ErrBadPopulation is returned when a population fails validation.
var ErrBadPopulation = errors.New("engine: invalid population")

// Population is the fixed cast of a simulation: the agents, the requester's
// per-agent feedback weights, malice estimates, and the market parameters.
type Population struct {
	// Agents are individual workers plus one meta-agent per collusive
	// community.
	Agents []*worker.Agent
	// Weights maps agent ID to the requester's feedback weight w_i
	// (Eq. (5), already evaluated).
	Weights map[string]float64
	// MaliceProb maps agent ID to the estimated malice probability
	// e_i^mal; policies that exclude workers threshold on it.
	MaliceProb map[string]float64
	// Part is the effort-axis partition contracts are designed on.
	Part effort.Partition
	// Mu is the requester's compensation weight μ.
	Mu float64

	// generation counts structural mutations (see Bump). The engine's
	// cached agent view keys off it when no Drift is configured.
	generation uint64

	// Drift-scope state (see Touch): the set of agent IDs declared
	// touched since the last engine consumption, or touchedAll when a
	// Bump escalated the scope to the whole population. scopePending
	// records that any declaration happened at all — an empty Touch()
	// still marks a round as "scoped, nothing touched". joined and left
	// carry the structural halves of the scope (TouchJoin/TouchLeave).
	touched      map[string]struct{}
	joined       map[string]struct{}
	left         map[string]struct{}
	touchedAll   bool
	scopePending bool
}

// Bump advances the population's generation counter and declares a
// whole-population drift scope. Call it after mutating the Agents slice
// in a way no sparse declaration expresses (reordering, bulk
// replacement) outside a Config.Drift hook, so engines with no Drift
// configured rebuild their cached ID-sorted agent view; declared adds
// and removes have sparse declarations of their own (TouchJoin,
// TouchLeave). Bump is also the escape hatch for mutations the sparse
// scope cannot express — most notably replacing an agent object under an
// existing ID, which Touch cannot distinguish from an in-place mutation.
// Mutating weights, malice probabilities, or agent parameters in place
// never needs a Bump for a sequential engine — it reads those afresh
// every round, and the design cache and respond memo key on them
// directly; sharded engines need a Bump (or a Touch) to observe them.
func (p *Population) Bump() {
	p.touchedAll = true
	p.scopePending = true
	p.generation++
}

// Touch declares a sparse drift scope: exactly the agents named were
// mutated since the engine last looked (weights, malice probability, or
// in-place agent parameters — and, for structural edits, the IDs that
// were added to or removed from Agents). Engines consume the accumulated
// scope at the top of their next round: a scope confined to existing
// agents refreshes only the shard views that own them, keeping every
// untouched shard on its warm path, while a scope naming an added or
// removed ID (or any unknown ID) escalates to the classic full rebuild.
//
// Touch is cumulative until consumed — several drifts between rounds
// union their scopes — and advances the generation counter like Bump, so
// secondary consumers of the same population (a second engine, or
// Population.Shards snapshots) still observe the mutation through the
// generation compare and rebuild conservatively.
//
// The one mutation Touch must not be used for is replacing an agent
// object under an ID that is still present: the sparse path resolves IDs
// against its retained view and cannot see the swap. Declare that with
// Bump. Membership changes — an ID added to or removed from Agents —
// have their own declarations: TouchJoin and TouchLeave.
func (p *Population) Touch(ids ...string) {
	if !p.touchedAll {
		if p.touched == nil {
			p.touched = make(map[string]struct{}, len(ids))
		}
		for _, id := range ids {
			p.touched[id] = struct{}{}
		}
	}
	p.scopePending = true
	p.generation++
}

// TouchJoin declares a structural drift scope: exactly the agents named
// were appended to Agents (with Weights and, optionally, MaliceProb
// entries) since the engine last looked. A declared join splices the
// engine's cached ID-sorted view and re-slots only the shard owning each
// joined ID; every other agent keeps its view position, outcome slot, and
// warm state. Like Touch it is cumulative until consumed and advances the
// generation counter, so secondary consumers still rebuild conservatively.
//
// A TouchJoin for an ID that is already present (or otherwise
// inconsistent with the engine's retained view) is detected at
// consumption and escalates the round to the classic full rebuild — a
// misdeclaration costs performance, never correctness the engine can see.
func (p *Population) TouchJoin(ids ...string) {
	if !p.touchedAll {
		if p.joined == nil {
			p.joined = make(map[string]struct{}, len(ids))
		}
		for _, id := range ids {
			p.joined[id] = struct{}{}
		}
	}
	p.scopePending = true
	p.generation++
}

// TouchLeave declares the structural counterpart of TouchJoin: exactly
// the agents named were removed from Agents (and their Weights/MaliceProb
// entries deleted) since the engine last looked. A declared leave splices
// the cached view and tombstones the agent's outcome slot — reclaimed by
// a deferred, batched compaction — leaving every remaining agent's slot
// and warm state untouched. Cumulative and generation-advancing, like
// Touch; inconsistent declarations escalate to the full rebuild.
func (p *Population) TouchLeave(ids ...string) {
	if !p.touchedAll {
		if p.left == nil {
			p.left = make(map[string]struct{}, len(ids))
		}
		for _, id := range ids {
			p.left[id] = struct{}{}
		}
	}
	p.scopePending = true
	p.generation++
}

// takeScope consumes the accumulated drift scope, appending the touched,
// joined, and left IDs into the reused dst slices (returned re-sliced).
// pending reports whether any declaration happened since the last
// consumption; all reports a Bump (the id slices are then meaningless).
// At most one consumer sees a given scope — engines sharing a population
// fall back to the generation compare.
func (p *Population) takeScope(dst, jdst, ldst []string) (ids, joins, leaves []string, all, pending bool) {
	dst, jdst, ldst = dst[:0], jdst[:0], ldst[:0]
	if !p.scopePending {
		return dst, jdst, ldst, false, false
	}
	all = p.touchedAll
	if !all {
		for id := range p.touched {
			dst = append(dst, id)
		}
		for id := range p.joined {
			jdst = append(jdst, id)
		}
		for id := range p.left {
			ldst = append(ldst, id)
		}
	}
	clear(p.touched)
	clear(p.joined)
	clear(p.left)
	p.touchedAll = false
	p.scopePending = false
	return dst, jdst, ldst, all, true
}

// Generation returns the current generation counter value.
func (p *Population) Generation() uint64 { return p.generation }

// Validate checks internal consistency: at least one agent, a positive
// finite μ, no nil agents, no empty or duplicate agent IDs (the server
// mints sessions from untrusted payloads, and an empty ID would collide
// with the zero-value map lookups used throughout), per-agent validity, a finite
// weight for every agent, malice probabilities within [0, 1], and no
// orphan Weights/MaliceProb entries whose IDs match no agent (orphans are
// almost always a drift hook that removed an agent but not its map
// entries — silent on the sequential engine, but a stale-view hazard for
// anything holding indexed views).
func (p *Population) Validate() error {
	if len(p.Agents) == 0 {
		return fmt.Errorf("no agents: %w", ErrBadPopulation)
	}
	if !(p.Mu > 0) || math.IsInf(p.Mu, 0) {
		return fmt.Errorf("mu=%v: %w", p.Mu, ErrBadPopulation)
	}
	seen := make(map[string]bool, len(p.Agents))
	malice := 0 // agents with a MaliceProb entry
	for _, a := range p.Agents {
		if a == nil {
			return fmt.Errorf("nil agent: %w", ErrBadPopulation)
		}
		if a.ID == "" {
			return fmt.Errorf("agent with empty ID: %w", ErrBadPopulation)
		}
		if seen[a.ID] {
			return fmt.Errorf("duplicate agent %q: %w", a.ID, ErrBadPopulation)
		}
		seen[a.ID] = true
		if err := a.Validate(p.Part.YMax()); err != nil {
			return err
		}
		w, ok := p.Weights[a.ID]
		if !ok {
			return fmt.Errorf("agent %q has no weight: %w", a.ID, ErrBadPopulation)
		}
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("agent %q weight=%v: %w", a.ID, w, ErrBadPopulation)
		}
		if mp, ok := p.MaliceProb[a.ID]; ok {
			malice++
			if !(mp >= 0 && mp <= 1) {
				return fmt.Errorf("agent %q malice probability=%v: %w", a.ID, mp, ErrBadPopulation)
			}
		}
	}
	// Every agent has a weight and the matched malice entries are counted,
	// so any surplus entry is an orphan; the scans only run on mismatch.
	if len(p.Weights) > len(p.Agents) {
		for id := range p.Weights {
			if !seen[id] {
				return fmt.Errorf("weight for unknown agent %q: %w", id, ErrBadPopulation)
			}
		}
	}
	if len(p.MaliceProb) > malice {
		for id := range p.MaliceProb {
			if !seen[id] {
				return fmt.Errorf("malice probability for unknown agent %q: %w", id, ErrBadPopulation)
			}
		}
	}
	return nil
}

// Policy produces one round's contracts. A nil contract for an agent means
// the agent is excluded this round: no payment, and its feedback is not
// counted in the requester's benefit.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Contracts returns the per-agent contract map for the coming round.
	Contracts(ctx context.Context, pop *Population) (map[string]*contract.PiecewiseLinear, error)
}

// CacheUser is implemented by policies that can route their contract
// design through a shared Cache. Engine wires Config.Cache into the policy
// at construction when the policy implements it.
type CacheUser interface {
	UseCache(*Cache)
}

// AgentOutcome is one agent's realized round outcome.
type AgentOutcome struct {
	// AgentID identifies the agent.
	AgentID string
	// Class is the agent's behavioural class.
	Class worker.Class
	// Size is 1 for individuals, the member count for communities.
	Size int
	// Excluded reports that the policy offered no contract.
	Excluded bool
	// Declined reports that the worker rejected the offered contract
	// (best achievable utility below the reservation).
	Declined bool
	// Effort, Feedback, Compensation are the agent's best response; zero
	// when excluded.
	Effort, Feedback, Compensation float64
	// Weight is the requester's w_i applied to the feedback.
	Weight float64
}

// Round aggregates one simulated round.
type Round struct {
	// Index is the 0-based round number.
	Index int
	// Outcomes lists per-agent results, ordered by agent ID. Inside an
	// Observer callback the slice aliases the engine's reusable backing
	// array — valid for the duration of the callback; copy it to retain
	// it across rounds (Ledger does, so []Round ledgers are stable).
	Outcomes []AgentOutcome
	// Benefit is Σ w_i·q_i over included agents.
	Benefit float64
	// Cost is Σ c_i over included agents.
	Cost float64
	// Utility is Benefit − μ·Cost (Eq. (7)).
	Utility float64
}

// TotalUtility sums the requester's utility over a ledger. A nil or empty
// ledger totals 0, and non-finite round utilities (NaN/±Inf, e.g. from a
// poisoned observer-fed ledger) are skipped so one bad round cannot turn
// the campaign total into NaN.
func TotalUtility(ledger []Round) float64 {
	var total float64
	for _, r := range ledger {
		if math.IsNaN(r.Utility) || math.IsInf(r.Utility, 0) {
			continue
		}
		total += r.Utility
	}
	return total
}

// clampEffort restricts a strategy-chosen effort to the feasible range
// [0, min(mδ, apex of ψ)].
func clampEffort(y float64, a *worker.Agent, part effort.Partition) float64 {
	if y < 0 || math.IsNaN(y) {
		return 0
	}
	cap := part.YMax()
	if apex := a.Psi.Apex(); apex < cap {
		cap = apex
	}
	if y > cap {
		return cap
	}
	return y
}
