package spans

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTraces is a fixed two-trace fixture: one sharded round request
// and one fast design query, with hand-picked times so the exporters'
// output is byte-stable.
func goldenTraces() []Trace {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	t1 := TraceID{0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}
	t2 := TraceID{0xca, 0xfe, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2}
	return []Trace{
		{
			ID:    t1,
			Start: at(0),
			End:   at(12),
			Spans: []SpanData{
				{Trace: t1, ID: 4, Parent: 3, Name: "shard.design", Start: at(3), End: at(5),
					Attrs: []Attr{Int("shard", 0), Int("cache.hits", 10), Int("cache.misses", 2)}},
				{Trace: t1, ID: 5, Parent: 3, Name: "shard.design", Start: at(3), End: at(6),
					Attrs: []Attr{Int("shard", 1), Int("cache.hits", 8), Int("cache.misses", 0)}},
				{Trace: t1, ID: 3, Parent: 2, Name: "engine.stage.design", Start: at(3), End: at(7)},
				{Trace: t1, ID: 2, Parent: 1, Name: "engine.round", Start: at(2), End: at(11),
					Attrs: []Attr{Str("drift", "viewSparse"), Int("round", 4)}},
				{Trace: t1, ID: 1, Name: "http POST /v1/sessions/{id}/rounds", Start: at(0), End: at(12),
					Attrs: []Attr{Str("session", "s-1"), Int("status", 200)}},
			},
		},
		{
			ID:    t2,
			Start: at(20),
			End:   at(20), // sub-microsecond span: exporter widens to 1µs
			Spans: []SpanData{
				{Trace: t2, ID: 6, Name: "session.design", Start: at(20), End: at(20)},
			},
		},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden (run with -update if intended)\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestWriteChromeGolden pins the Chrome trace_event output byte-for-byte
// against testdata/chrome_golden.json and sanity-checks the structure a
// viewer depends on.
func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, goldenTraces()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome_golden.json", buf.Bytes())

	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	// 2 metadata events + 5 + 1 span events.
	if len(file.TraceEvents) != 8 {
		t.Fatalf("got %d events, want 8", len(file.TraceEvents))
	}
	meta, complete := 0, 0
	for _, ev := range file.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
		case "X":
			complete++
			if ev["dur"].(float64) < 1 {
				t.Fatalf("complete event with sub-µs duration: %v", ev)
			}
		default:
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
	}
	if meta != 2 || complete != 6 {
		t.Fatalf("got %d metadata + %d complete events, want 2 + 6", meta, complete)
	}
}

// TestWriteJSONL pins the line-delimited form: one JSON trace per line,
// decodable back to the same IDs and span counts.
func TestWriteJSONL(t *testing.T) {
	var buf bytes.Buffer
	traces := goldenTraces()
	if err := WriteJSONL(&buf, traces); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(traces) {
		t.Fatalf("got %d lines, want %d", len(lines), len(traces))
	}
	for i, line := range lines {
		var got Trace
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		if got.ID != traces[i].ID {
			t.Fatalf("line %d trace ID = %s, want %s", i, got.ID, traces[i].ID)
		}
		if len(got.Spans) != len(traces[i].Spans) {
			t.Fatalf("line %d span count = %d, want %d", i, len(got.Spans), len(traces[i].Spans))
		}
	}
}
