package engine

import (
	"context"
	"fmt"
	"sync"

	"dyncontract/internal/contract"
	"dyncontract/internal/core"
	"dyncontract/internal/solver"
	"dyncontract/internal/telemetry"
	"dyncontract/internal/worker"
)

// Designer turns a set of agents into per-agent contracts through the
// deduplicating cache and the parallel solver fan-out.
//
// Within one call, agents sharing a fingerprint are designed once (the
// round-level dedup is unconditional — it is pure, deterministic sharing).
// With a Cache attached, distinct fingerprints that were designed in a
// previous round cost nothing. Scratch buffers for the solver fan-out are
// retained across calls, so a long-running loop stops allocating
// per-round.
//
// The zero value is ready to use. A Designer is safe for concurrent use,
// but calls are serialized; share a Cache, not a Designer, when fanning
// out whole simulations.
type Designer struct {
	// Parallelism caps the solver pool; 0 means GOMAXPROCS.
	Parallelism int
	// Cache, when non-nil, carries designs across rounds.
	Cache *Cache
	// Metrics, when non-nil, is forwarded to the solver fan-out
	// (dyncontract_solver_* counters and per-design timings).
	Metrics *telemetry.Registry

	mu   sync.Mutex
	subs []solver.Subproblem
	fps  []Fingerprint
	outs []solver.Outcome
}

// Contracts designs one contract per agent, deduplicating by fingerprint.
// Agents not in the population's weight map design with w = 0 (matching
// the zero-value semantics of map lookups used throughout).
func (d *Designer) Contracts(ctx context.Context, pop *Population, agents []*worker.Agent) (map[string]*contract.PiecewiseLinear, error) {
	d.mu.Lock()
	defer d.mu.Unlock()

	results := make(map[Fingerprint]*core.Result, 8)
	d.subs = d.subs[:0]
	d.fps = d.fps[:0]
	for _, a := range agents {
		cfg := core.Config{Part: pop.Part, Mu: pop.Mu, W: pop.Weights[a.ID]}
		fp := FingerprintOf(a, cfg)
		if _, seen := results[fp]; seen {
			continue
		}
		if d.Cache != nil {
			if res, ok := d.Cache.Get(fp); ok {
				results[fp] = res
				continue
			}
		}
		results[fp] = nil // pending: solved below
		d.subs = append(d.subs, solver.Subproblem{Agent: a, Config: cfg})
		d.fps = append(d.fps, fp)
	}

	if len(d.subs) > 0 {
		if cap(d.outs) < len(d.subs) {
			d.outs = make([]solver.Outcome, len(d.subs))
		}
		d.outs = d.outs[:len(d.subs)]
		if err := solver.SolveAllInto(ctx, d.subs, d.outs, solver.Options{Parallelism: d.Parallelism, Metrics: d.Metrics}); err != nil {
			return nil, err
		}
		for i := range d.subs {
			results[d.fps[i]] = d.outs[i].Result
			if d.Cache != nil {
				d.Cache.Put(d.fps[i], d.outs[i].Result)
			}
		}
	}

	contracts := make(map[string]*contract.PiecewiseLinear, len(agents))
	for _, a := range agents {
		cfg := core.Config{Part: pop.Part, Mu: pop.Mu, W: pop.Weights[a.ID]}
		res := results[FingerprintOf(a, cfg)]
		if res == nil {
			return nil, fmt.Errorf("engine: no design produced for agent %s", a.ID)
		}
		contracts[a.ID] = res.Contract
	}
	return contracts, nil
}
