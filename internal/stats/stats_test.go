package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	got, err := Mean([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("Mean: %v", err)
	}
	if got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestVariance(t *testing.T) {
	got, err := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatalf("Variance: %v", err)
	}
	want := 32.0 / 7.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
}

func TestVarianceSingleton(t *testing.T) {
	got, err := Variance([]float64{42})
	if err != nil || got != 0 {
		t.Errorf("Variance singleton = %v, %v; want 0, nil", got, err)
	}
}

func TestStdDev(t *testing.T) {
	got, err := StdDev([]float64{1, 1, 1})
	if err != nil || got != 0 {
		t.Errorf("StdDev constant = %v, %v; want 0, nil", got, err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{25, 2},
		{50, 3},
		{75, 4},
		{100, 5},
		{10, 1.4},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: err = %v, want ErrEmpty", err)
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("p=-1: want error")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("p=101: want error")
	}
	if _, err := Percentile([]float64{1}, math.NaN()); err == nil {
		t.Error("p=NaN: want error")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMedianSingleton(t *testing.T) {
	got, err := Median([]float64{7})
	if err != nil || got != 7 {
		t.Errorf("Median = %v, %v; want 7, nil", got, err)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 4, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if lo != -1 || hi != 5 {
		t.Errorf("MinMax = %v, %v; want -1, 5", lo, hi)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("Summary basics wrong: %+v", s)
	}
	if math.Abs(s.Mean-50.5) > 1e-12 {
		t.Errorf("Mean = %v, want 50.5", s.Mean)
	}
	if s.P5 < 5 || s.P5 > 7 {
		t.Errorf("P5 = %v, want ~5.95", s.P5)
	}
	if s.P95 < 94 || s.P95 > 96 {
		t.Errorf("P95 = %v, want ~95.05", s.P95)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.5, 0.9, 1.5, -0.3}
	h, err := NewHistogram(xs, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// -0.3 clamps into bin 0; 1.5 clamps into bin 3.
	if h.Total() != 6 {
		t.Errorf("Total = %d, want 6", h.Total())
	}
	if h.Counts[0] != 3 { // 0.1, 0.2, -0.3
		t.Errorf("Counts[0] = %d, want 3", h.Counts[0])
	}
	if h.Counts[3] != 2 { // 0.9, 1.5
		t.Errorf("Counts[3] = %d, want 2", h.Counts[3])
	}
	fr := h.Fractions()
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("fractions sum = %v, want 1", sum)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 1, 0); err == nil {
		t.Error("bins=0: want error")
	}
	if _, err := NewHistogram(nil, 1, 1, 3); err == nil {
		t.Error("lo==hi: want error")
	}
}

func TestHistogramEmptyFractions(t *testing.T) {
	h, err := NewHistogram(nil, 0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range h.Fractions() {
		if f != 0 {
			t.Errorf("fraction of empty histogram = %v, want 0", f)
		}
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v, err := Percentile(xs, p)
			if err != nil || v < prev-1e-12 {
				return false
			}
			prev = v
		}
		lo, hi, _ := MinMax(xs)
		p0, _ := Percentile(xs, 0)
		p100, _ := Percentile(xs, 100)
		return p0 == lo && p100 == hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: mean lies within [min, max] and matches sort-invariant.
func TestMeanBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(30))
		for i := range xs {
			xs[i] = rng.Float64()*200 - 100
		}
		m, err := Mean(xs)
		if err != nil {
			return false
		}
		lo, hi, _ := MinMax(xs)
		if m < lo-1e-9 || m > hi+1e-9 {
			return false
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		m2, _ := Mean(sorted)
		return math.Abs(m-m2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCorrelation(t *testing.T) {
	perfect, err := Correlation([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil || math.Abs(perfect-1) > 1e-12 {
		t.Errorf("perfect correlation = %v, %v; want 1", perfect, err)
	}
	inverse, err := Correlation([]float64{1, 2, 3}, []float64{6, 4, 2})
	if err != nil || math.Abs(inverse+1) > 1e-12 {
		t.Errorf("inverse correlation = %v, %v; want -1", inverse, err)
	}
	if _, err := Correlation([]float64{1}, []float64{1}); err == nil {
		t.Error("single pair accepted")
	}
	if _, err := Correlation([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Correlation([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("zero variance accepted")
	}
}

// Property: correlation is symmetric and bounded in [-1, 1].
func TestCorrelationBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r1, err1 := Correlation(xs, ys)
		r2, err2 := Correlation(ys, xs)
		if err1 != nil || err2 != nil {
			return true // degenerate draw
		}
		return math.Abs(r1-r2) < 1e-12 && r1 >= -1-1e-12 && r1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
