package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestGracefulShutdown drains the server mid-round: the in-flight round
// completes with 200, the queued round gets 503, new requests get 503, and
// the resulting ledger is identical to an undisturbed single-round run.
func TestGracefulShutdown(t *testing.T) {
	e, gp := gateServer(t, Config{})
	id := e.createSession(t)
	sess := e.srv.sessions[id]

	var wg sync.WaitGroup
	var roundA RoundJSON
	codeA, codeB := 0, 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		codeA = e.do(t, "POST", "/v1/sessions/"+id+"/rounds", nil, &roundA)
	}()
	<-gp.entered // round A is executing inside the policy

	wg.Add(1)
	go func() { defer wg.Done(); codeB = e.do(t, "POST", "/v1/sessions/"+id+"/rounds", nil, nil) }()
	waitFor(t, "B to queue", func() bool { return len(sess.cmds) == 1 })

	// Begin drain while A is still blocked mid-round.
	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- e.srv.Drain(ctx)
	}()
	waitFor(t, "drain to begin", func() bool { return sess.draining.Load() })

	// New work is refused while draining.
	if code := e.do(t, "POST", "/v1/sessions/"+id+"/rounds", nil, nil); code != http.StatusServiceUnavailable {
		t.Errorf("request during drain: status %d, want 503", code)
	}
	req := testCreateReq()
	if code := e.do(t, "POST", "/v1/sessions", &req, nil); code != http.StatusServiceUnavailable {
		t.Errorf("session creation during drain: status %d, want 503", code)
	}

	close(gp.gate) // release the in-flight round
	wg.Wait()
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if codeA != http.StatusOK {
		t.Errorf("in-flight round: status %d, want 200 (must complete)", codeA)
	}
	if codeB != http.StatusServiceUnavailable {
		t.Errorf("queued round: status %d, want 503 (never started)", codeB)
	}

	// Reads still work after drain; the ledger holds exactly round A.
	var ledger []RoundJSON
	if code := e.do(t, "GET", "/v1/sessions/"+id+"/rounds", nil, &ledger); code != http.StatusOK {
		t.Fatalf("list rounds after drain: status %d", code)
	}
	if len(ledger) != 1 {
		t.Fatalf("ledger has %d rounds after drain, want 1", len(ledger))
	}

	// Byte-identical to an undisturbed single-round run.
	e2 := newTestServer(t, Config{})
	id2 := e2.createSession(t)
	if code := e2.do(t, "POST", "/v1/sessions/"+id2+"/rounds", nil, nil); code != http.StatusOK {
		t.Fatalf("undisturbed round: status %d", code)
	}
	var want []RoundJSON
	if code := e2.do(t, "GET", "/v1/sessions/"+id2+"/rounds", nil, &want); code != http.StatusOK {
		t.Fatalf("undisturbed ledger: status %d", code)
	}
	got, err := json.Marshal(ledger)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(ref) {
		t.Errorf("drained ledger differs from undisturbed run:\n got %s\nwant %s", got, ref)
	}
}

// TestDrainIdleServer is the trivial case: drain with nothing in flight
// returns promptly and flips every endpoint to 503.
func TestDrainIdleServer(t *testing.T) {
	e := newTestServer(t, Config{})
	id := e.createSession(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code := e.do(t, "POST", "/v1/sessions/"+id+"/rounds", nil, nil); code != http.StatusServiceUnavailable {
		t.Errorf("round after drain: status %d, want 503", code)
	}
	q := DesignQueryRequest{AgentID: "h1"}
	if code := e.do(t, "POST", "/v1/sessions/"+id+"/design", &q, nil); code != http.StatusServiceUnavailable {
		t.Errorf("design after drain: status %d, want 503", code)
	}
	// Drain is idempotent.
	if err := e.srv.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}
