# Standard-library Go module; no codegen, no vendoring. `make check` is
# the pre-PR gate (ROADMAP.md).

GO ?= go

.PHONY: build test bench benchall check fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Round-loop benchmarks (EngineRound1k + TelemetryOverhead) with -benchmem,
# parsed into BENCH_engine.json; `make benchall` runs every benchmark.
bench:
	./scripts/bench.sh

benchall:
	$(GO) test -run '^$$' -bench . -benchmem .

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

check:
	./scripts/check.sh
