package effort

import (
	"errors"
	"fmt"
	"math"

	"dyncontract/internal/polyfit"
)

// ErrFitFailed is returned when no valid concave-increasing quadratic can
// be produced from the data.
var ErrFitFailed = errors.New("effort: cannot fit a concave increasing quadratic")

// FitResult is the outcome of FitConcaveQuadratic.
type FitResult struct {
	// Quadratic is the fitted, validated effort function.
	Quadratic Quadratic
	// NoR is the norm of residual of the final (possibly constrained) fit.
	NoR float64
	// UnconstrainedNoR is the NoR of the plain least-squares quadratic,
	// for comparison (equal to NoR when no projection was needed).
	UnconstrainedNoR float64
	// Projected reports whether the unconstrained fit violated the
	// concave-increasing shape and had to be projected.
	Projected bool
	// YMax is the largest effort in the data; Quadratic is guaranteed
	// strictly increasing on [0, YMax].
	YMax float64
}

// FitConcaveQuadratic fits ψ(y) = r₂y² + r₁y + r₀ to (effort, feedback)
// points, constrained to the shape the contract algorithm requires: r₂ < 0
// (strict concavity), r₁ > 0, and ψ′ > 0 over the data's effort range.
//
// The unconstrained least-squares fit is used when it already satisfies the
// constraints (the common case; §IV-B fits quadratics and finds them
// adequate). Otherwise the curvature is projected to the nearest admissible
// value — the apex is pushed just beyond the data range — and the remaining
// coefficients are refit by least squares with r₂ held fixed, so the result
// is the best-fitting valid effort function rather than an arbitrary
// fallback.
func FitConcaveQuadratic(efforts, feedbacks []float64) (FitResult, error) {
	if len(efforts) != len(feedbacks) {
		return FitResult{}, fmt.Errorf("effort: %d efforts vs %d feedbacks: %w",
			len(efforts), len(feedbacks), ErrFitFailed)
	}
	if len(efforts) < 3 {
		return FitResult{}, fmt.Errorf("effort: need >= 3 points, got %d: %w", len(efforts), ErrFitFailed)
	}
	yMax := 0.0
	for _, y := range efforts {
		if math.IsNaN(y) || math.IsInf(y, 0) || y < 0 {
			return FitResult{}, fmt.Errorf("effort: invalid effort %v: %w", y, ErrFitFailed)
		}
		if y > yMax {
			yMax = y
		}
	}
	if yMax == 0 {
		return FitResult{}, fmt.Errorf("effort: all efforts zero: %w", ErrFitFailed)
	}

	fit, err := polyfit.Polynomial(efforts, feedbacks, 2)
	if err != nil {
		return FitResult{}, fmt.Errorf("effort: quadratic fit: %w", err)
	}
	r0, r1, r2 := fit.Coeffs[0], fit.Coeffs[1], fit.Coeffs[2]

	q := Quadratic{R2: r2, R1: r1, R0: r0}
	if q.Validate(yMax) == nil {
		return FitResult{Quadratic: q, NoR: fit.NoR, UnconstrainedNoR: fit.NoR, YMax: yMax}, nil
	}

	// Projection: choose the admissible curvature closest to the
	// unconstrained one. With apex = −r₁/(2r₂) placed at margin·yMax the
	// function stays strictly increasing over the data.
	const margin = 1.25
	projected, nor, err := refitWithShape(efforts, feedbacks, yMax, margin, r2)
	if err != nil {
		return FitResult{}, err
	}
	return FitResult{
		Quadratic:        projected,
		NoR:              nor,
		UnconstrainedNoR: fit.NoR,
		Projected:        true,
		YMax:             yMax,
	}, nil
}

// refitWithShape fixes a valid curvature and refits slope and intercept by
// least squares, then repairs any remaining violations.
func refitWithShape(efforts, feedbacks []float64, yMax, margin, r2Hint float64) (Quadratic, float64, error) {
	// Fit the linear model (feedback − r₂y²) = r₁·y + r₀ for a candidate
	// r₂; choose r₂ so the apex constraint holds afterwards.
	fitLinear := func(r2 float64) (Quadratic, float64, error) {
		adjusted := make([]float64, len(feedbacks))
		for i := range feedbacks {
			adjusted[i] = feedbacks[i] - r2*efforts[i]*efforts[i]
		}
		lin, err := polyfit.Polynomial(efforts, adjusted, 1)
		if err != nil {
			return Quadratic{}, 0, fmt.Errorf("effort: constrained refit: %w", err)
		}
		q := Quadratic{R2: r2, R1: lin.Coeffs[1], R0: lin.Coeffs[0]}
		var ss float64
		for i := range efforts {
			d := feedbacks[i] - q.Eval(efforts[i])
			ss += d * d
		}
		return q, math.Sqrt(ss), nil
	}

	// Anchor the curvature to the data's linear trend: with
	// r₂ = −s/(2·margin·yMax) a slope near s puts the apex near
	// margin·yMax, comfortably past the data. If the trend s is not
	// positive, no increasing effort function explains the data.
	lin, err := polyfit.Polynomial(efforts, feedbacks, 1)
	if err != nil {
		return Quadratic{}, 0, fmt.Errorf("effort: linear trend: %w", err)
	}
	s := lin.Coeffs[1]
	if s <= 0 {
		return Quadratic{}, 0, fmt.Errorf("effort: data trend not increasing (slope %v): %w", s, ErrFitFailed)
	}
	r2 := -s / (2 * margin * yMax)
	if r2Hint < 0 && r2Hint > r2 {
		// The unconstrained curvature is negative and gentler than the
		// anchor; prefer it (closer to the unconstrained optimum).
		r2 = r2Hint
	}

	// Halving the curvature doubles the apex for a fixed slope, and the
	// refit slope converges to s as r₂ → 0, so this terminates quickly.
	for attempt := 0; attempt < 60; attempt++ {
		q, nor, err := fitLinear(r2)
		if err != nil {
			return Quadratic{}, 0, err
		}
		if q.Validate(yMax) == nil {
			return q, nor, nil
		}
		r2 /= 2
		if math.Abs(r2) < 1e-300 {
			break
		}
	}
	return Quadratic{}, 0, fmt.Errorf("effort: projection failed to converge: %w", ErrFitFailed)
}
