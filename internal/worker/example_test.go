package worker_test

import (
	"fmt"
	"log"

	"dyncontract/internal/contract"
	"dyncontract/internal/effort"
	"dyncontract/internal/worker"
)

// Example computes a worker's exact best response to a posted contract:
// the effort level maximizing pay − β·effort.
func Example() {
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		log.Fatal(err)
	}
	part, err := effort.NewPartition(10, 4)
	if err != nil {
		log.Fatal(err)
	}
	alice, err := worker.NewHonest("alice", psi, 1, part.YMax())
	if err != nil {
		log.Fatal(err)
	}

	// A linear contract paying 1 per unit of feedback above ψ(0).
	knots := part.Knots(psi)
	comps := make([]float64, len(knots))
	for i := range comps {
		comps[i] = knots[i] - knots[0]
	}
	c, err := contract.New(knots, comps)
	if err != nil {
		log.Fatal(err)
	}

	resp, err := alice.BestResponse(c, part)
	if err != nil {
		log.Fatal(err)
	}
	// Interior optimum at ψ′(y) = β/α = 1: y = (1−2)/(2·(−0.02)) = 25.
	fmt.Printf("effort=%.1f interval=%d utility=%.2f\n", resp.Effort, resp.Interval, resp.Utility)
	// Output:
	// effort=25.0 interval=7 utility=12.50
}

// Example_malicious shows why malicious workers are cheaper to motivate:
// the influence term ω·feedback subsidizes their effort.
func Example_malicious() {
	psi, _ := effort.NewQuadratic(-0.02, 2, 1, 40)
	part, _ := effort.NewPartition(10, 4)
	flat, _ := contract.Flat(psi.Eval(0), psi.Eval(part.YMax()), 0) // pays nothing

	honest, _ := worker.NewHonest("h", psi, 1, part.YMax())
	malicious, _ := worker.NewMalicious("m", psi, 1, 1, part.YMax())

	hr, _ := honest.BestResponse(flat, part)
	mr, _ := malicious.BestResponse(flat, part)
	fmt.Printf("honest effort under zero pay:    %.1f\n", hr.Effort)
	fmt.Printf("malicious effort under zero pay: %.1f\n", mr.Effort)
	// Output:
	// honest effort under zero pay:    0.0
	// malicious effort under zero pay: 25.0
}
