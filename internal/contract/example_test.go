package contract_test

import (
	"fmt"
	"log"

	"dyncontract/internal/contract"
)

// Example builds a two-piece contract and evaluates it: pay grows with
// feedback inside the knot range and is flat outside it.
func Example() {
	// Feedback knots 0, 10, 20 paying 0, 5, 8.
	c, err := contract.New([]float64{0, 10, 20}, []float64{0, 5, 8})
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range []float64{0, 5, 10, 15, 25} {
		fmt.Printf("feedback %4.1f -> pay %.2f\n", q, c.Eval(q))
	}
	// Output:
	// feedback  0.0 -> pay 0.00
	// feedback  5.0 -> pay 2.50
	// feedback 10.0 -> pay 5.00
	// feedback 15.0 -> pay 6.50
	// feedback 25.0 -> pay 8.00
}

// ExampleBuilder constructs a contract left to right by slope — the access
// pattern of the §IV-C candidate construction.
func ExampleBuilder() {
	b := contract.NewBuilder(0, 0) // start at feedback 0, pay 0
	b.AppendSlope(10, 0.5)         // slope 0.5 up to feedback 10
	b.AppendSlope(20, 0)           // flat continuation
	c, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pay at 10: %.1f, pay at 20: %.1f\n", c.Eval(10), c.Eval(20))
	// Output:
	// pay at 10: 5.0, pay at 20: 5.0
}
