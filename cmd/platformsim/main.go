// Command platformsim runs the multi-round crowdsourcing marketplace
// simulation end to end: synthesize a trace, run the §IV pipeline, build
// the worker population, and simulate the requested pricing policies
// side by side.
//
// Usage:
//
//	platformsim [-scale small|paper] [-seed n] [-rounds n]
//	            [-policies dynamic,exclude,fixed] [-threshold p] [-amount c]
//	            [-engine seq|actor] [-nocache] [-cachestats]
//	            [-nomemo] [-respondstats] [-respond-parallel n]
//	            [-shards n] [-shardstats]
//	            [-drift-agents k] [-churn] [-driftstats]
//	            [-join-every k] [-leave-every k]
//	            [-metrics out.jsonl] [-metrics-listen addr]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	            [-trace] [-trace-sample p] [-trace-out file]
//
// The observability flags (seq engine only) attach a telemetry registry
// to the run: -metrics appends one JSONL snapshot per simulated round,
// -metrics-listen serves /metrics in Prometheus text format plus
// net/http/pprof for live scraping and profiling, and -cpuprofile /
// -memprofile write pprof profiles for offline analysis. -trace records
// one execution trace per policy run — rounds, stages, per-shard work —
// and -trace-out writes the retained traces on exit (.json = Chrome
// trace_event format for Perfetto).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dyncontract/internal/actor"
	"dyncontract/internal/baseline"
	"dyncontract/internal/engine"
	"dyncontract/internal/experiments"
	"dyncontract/internal/obs"
	"dyncontract/internal/platform"
	"dyncontract/internal/spans"
	"dyncontract/internal/synth"
	"dyncontract/internal/telemetry"
)

// testHookServe, when set by a test, is called with the metrics server's
// bound address after every policy has run but before the session closes
// — the seam that lets tests scrape a fully populated /metrics endpoint.
var testHookServe func(addr string)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "platformsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("platformsim", flag.ContinueOnError)
	var (
		scale       = fs.String("scale", "small", "trace scale: small or paper")
		seed        = fs.Int64("seed", 42, "generation seed")
		rounds      = fs.Int("rounds", 5, "number of task rounds")
		policies    = fs.String("policies", "dynamic,exclude,fixed", "comma-separated policies")
		threshold   = fs.Float64("threshold", 0.5, "exclusion threshold on malice probability")
		amount      = fs.Float64("amount", 1, "fixed-payment amount")
		perClass    = fs.Int("perclass", 200, "max agents sampled per class")
		engineName  = fs.String("engine", "seq", "simulation engine: seq (sequential) or actor (message-passing)")
		cacheStats  = fs.Bool("cachestats", false, "report design-cache hits/misses per policy (seq engine only)")
		noCache     = fs.Bool("nocache", false, "disable the cross-round design cache (seq engine only)")
		memoStats   = fs.Bool("respondstats", false, "report respond-memo hits/misses per policy (seq engine only)")
		noMemo      = fs.Bool("nomemo", false, "disable the cross-round best-response memo (seq engine only)")
		respondPar  = fs.Int("respond-parallel", 0, "respond-stage parallelism cap; 0 = GOMAXPROCS for memo misses, sequential otherwise")
		shards      = fs.Int("shards", 0, "shard count for the sharded round pipeline (seq engine only); 0 = sequential (ledgers are identical)")
		shardStats  = fs.Bool("shardstats", false, "report per-shard stage timings per policy (seq engine only, needs -shards)")
		driftAgents = fs.Int("drift-agents", 0, "scoped weight drift: oscillate the first k agents' weights each round, declared via Population.Touch (seq engine only)")
		churn       = fs.Bool("churn", false, "mint fresh, never-repeating weights for every agent before each round, so every round's designs run the cold path (seq engine only; overrides -drift-agents)")
		driftStats  = fs.Bool("driftstats", false, "report sparse-drift scope counters per policy (seq engine only)")
		joinEvery   = fs.Int("join-every", 0, "structural churn: every k-th round a fresh agent joins, declared via TouchJoin (seq engine only)")
		leaveEvery  = fs.Int("leave-every", 0, "structural churn: every k-th round the oldest hook-joined agent leaves, declared via TouchLeave (seq engine only)")
		obsFlags    obs.Flags
		traceFlags  obs.TraceFlags
	)
	obsFlags.Register(fs)
	traceFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// One registry spans the whole invocation; each policy's run layers
	// its rounds into the same metrics (the design cache re-registers per
	// policy, so cache counters always describe the current policy).
	var reg *telemetry.Registry
	if obsFlags.Enabled() || *shardStats || *driftStats {
		reg = telemetry.NewRegistry()
	}
	sess, err := obsFlags.Start(reg)
	if err != nil {
		return err
	}
	defer sess.Close()
	if addr := sess.Addr(); addr != "" {
		fmt.Fprintf(out, "metrics: serving http://%s/metrics (pprof under /debug/pprof/)\n", addr)
	}

	var cfg synth.Config
	switch *scale {
	case "small":
		cfg = synth.SmallScale(*seed)
	case "paper":
		cfg = synth.PaperScale(*seed)
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	fmt.Fprintf(out, "building pipeline (%s scale, seed %d)...\n", *scale, *seed)
	pipe, err := experiments.BuildPipeline(cfg)
	if err != nil {
		return err
	}
	params := experiments.DefaultParams()
	pop, err := pipe.BuildPopulation(params, *perClass)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "population: %d agents (honest + NCM individuals, %d communities)\n\n",
		len(pop.Agents), len(pipe.Communities))

	ctx := context.Background()
	tracer, recorder := traceFlags.Build()

	// Scoped drift: oscillate the first k agents' weights around a base
	// snapshot taken once, before any policy runs — each policy sees the
	// exact same drift schedule, so cross-policy totals stay comparable —
	// and declare the touched IDs so sharded engines take the sparse path.
	var driftHook func(int, *engine.Population)
	switch {
	case *churn:
		// All-cold steady state: every agent's weight is perturbed by a
		// factor unique to the round, so no design fingerprint ever
		// repeats and each round pays the full batched cold design path.
		// The base snapshot keeps the schedule identical across policies,
		// and the perturbation stays under 1% over any plausible -rounds.
		ids := make([]string, len(pop.Agents))
		base := make([]float64, len(pop.Agents))
		for i, a := range pop.Agents {
			ids[i] = a.ID
			base[i] = pop.Weights[a.ID]
		}
		driftHook = func(round int, p *engine.Population) {
			f := 1 + 1e-6*float64(round+1)
			for i, id := range ids {
				p.Weights[id] = base[i] * f
			}
			p.Touch(ids...)
		}
	case *driftAgents > 0:
		k := *driftAgents
		if k > len(pop.Agents) {
			k = len(pop.Agents)
		}
		ids := make([]string, k)
		base := make([]float64, k)
		for i := 0; i < k; i++ {
			ids[i] = pop.Agents[i].ID
			base[i] = pop.Weights[ids[i]]
		}
		driftHook = func(round int, p *engine.Population) {
			f := 1.0
			if round%2 == 0 {
				f = 1.01
			}
			for i, id := range ids {
				p.Weights[id] = base[i] * f
			}
			p.Touch(ids...)
		}
	}

	// Structural churn: layer joins/leaves on top of whatever scalar drift
	// hook is configured. Joiners clone the first agent's archetype under a
	// fresh ID (same fingerprint, so the design cache patches them in);
	// leaves remove the oldest hook-joined agent, so the population
	// oscillates instead of growing without bound and never loses an
	// original member. Policies share one Population, so cleanup() strips
	// any leftover joiners between runs — every policy sees the identical
	// churn schedule over the identical base population.
	var structCleanup func()
	if *joinEvery > 0 || *leaveEvery > 0 {
		if len(pop.Agents) == 0 {
			return fmt.Errorf("structural churn needs a non-empty population")
		}
		scalarHook := driftHook
		proto := pop.Agents[0]
		protoW := pop.Weights[proto.ID]
		protoMal, protoHasMal := pop.MaliceProb[proto.ID]
		var joined []string
		joinSeq := 0
		driftHook = func(round int, p *engine.Population) {
			if scalarHook != nil {
				scalarHook(round, p)
			}
			if *joinEvery > 0 && (round+1)%*joinEvery == 0 {
				na := *proto
				na.ID = fmt.Sprintf("sim-join-%05d", joinSeq)
				joinSeq++
				p.Agents = append(p.Agents, &na)
				p.Weights[na.ID] = protoW
				if protoHasMal {
					p.MaliceProb[na.ID] = protoMal
				}
				p.TouchJoin(na.ID)
				joined = append(joined, na.ID)
			}
			if *leaveEvery > 0 && (round+1)%*leaveEvery == 0 && len(joined) > 0 {
				id := joined[0]
				joined = joined[1:]
				for i, a := range p.Agents {
					if a.ID == id {
						p.Agents = append(p.Agents[:i], p.Agents[i+1:]...)
						break
					}
				}
				delete(p.Weights, id)
				delete(p.MaliceProb, id)
				p.TouchLeave(id)
			}
		}
		structCleanup = func() {
			for _, id := range joined {
				for i, a := range pop.Agents {
					if a.ID == id {
						pop.Agents = append(pop.Agents[:i], pop.Agents[i+1:]...)
						break
					}
				}
				delete(pop.Weights, id)
				delete(pop.MaliceProb, id)
			}
			joined = nil
			joinSeq = 0
			pop.Bump()
		}
	}

	var prevShard obs.ShardStats
	var prevDrift obs.DriftStats
	for _, name := range strings.Split(*policies, ",") {
		var pol platform.Policy
		switch strings.TrimSpace(name) {
		case "dynamic":
			pol = &platform.DynamicPolicy{}
		case "exclude":
			pol = &baseline.ExcludeMalicious{Threshold: *threshold}
		case "fixed":
			pol = &baseline.FixedPayment{Amount: *amount}
		default:
			return fmt.Errorf("unknown policy %q (want dynamic, exclude, or fixed)", name)
		}
		var ledger []platform.Round
		var cache *engine.Cache
		var memo *engine.RespondMemo
		switch *engineName {
		case "seq":
			// The sequential path runs on internal/engine with a per-policy
			// design cache and respond memo: agents sharing an archetype
			// share one design and one best response, and static rounds
			// after the first cost zero Design/BestResponse calls.
			cfg := engine.Config{Policy: pol, Rounds: *rounds, Metrics: reg, ParallelRespond: *respondPar, Shards: *shards, Drift: driftHook}
			if !*noCache {
				cache = engine.NewCache()
				cfg.Cache = cache
			}
			if !*noMemo {
				memo = engine.NewRespondMemo()
				cfg.Memo = memo
			}
			if obsFlags.MetricsPath != "" {
				cfg.Observers = []engine.Observer{sess.RoundObserver()}
			}
			// One trace per policy run: the root span covers the whole
			// ledger, with engine.round / stage / shard children below it.
			span := tracer.Root("platformsim.run")
			span.SetAttr("policy", pol.Name())
			span.SetInt("rounds", int64(*rounds))
			ledger, err = engine.RunLedger(spans.ContextWith(ctx, span), pop, cfg)
			span.End()
			if structCleanup != nil {
				structCleanup()
			}
		case "actor":
			var eng *actor.Engine
			eng, err = actor.NewEngine(pop, pol)
			if err == nil {
				ledger, err = eng.Run(ctx, *rounds)
			}
		default:
			return fmt.Errorf("unknown engine %q (want seq or actor)", *engineName)
		}
		if err != nil {
			return fmt.Errorf("simulate %s: %w", pol.Name(), err)
		}
		fmt.Fprintf(out, "policy %s:\n", pol.Name())
		for _, r := range ledger {
			excluded := 0
			for _, oc := range r.Outcomes {
				if oc.Excluded {
					excluded++
				}
			}
			fmt.Fprintf(out, "  round %d: benefit=%10.2f cost=%10.2f utility=%10.2f excluded=%d\n",
				r.Index, r.Benefit, r.Cost, r.Utility, excluded)
		}
		fmt.Fprintf(out, "  total utility over %d rounds: %.2f\n", *rounds, platform.TotalUtility(ledger))
		if *cacheStats && cache != nil {
			obs.FprintCacheStats(out, cache.Stats())
		}
		if *memoStats && memo != nil {
			obs.FprintRespondStats(out, memo.Stats())
		}
		if *shardStats {
			// Policies share one registry; the delta isolates this run.
			cur := obs.ShardStatsFrom(reg.Snapshot())
			obs.FprintShardStats(out, obs.DeltaShardStats(prevShard, cur))
			prevShard = cur
		}
		if *driftStats {
			cur := obs.DriftStatsFrom(reg.Snapshot())
			obs.FprintDriftStats(out, obs.DeltaDriftStats(prevDrift, cur))
			prevDrift = cur
		}
		fmt.Fprintln(out)
	}
	if err := traceFlags.Export(recorder); err != nil {
		return err
	}
	if traceFlags.Out != "" {
		fmt.Fprintf(out, "traces: wrote %s\n", traceFlags.Out)
	}
	if testHookServe != nil {
		testHookServe(sess.Addr())
	}
	return sess.Close()
}
