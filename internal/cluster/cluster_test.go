package cluster

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"dyncontract/internal/synth"
	"dyncontract/internal/trace"
)

// clusterTrace builds a hand-crafted trace with known collusion structure:
// m1+m2 share product pA, m3+m4+m5 share pB (via pairwise overlaps), m6 is
// non-collusive malicious, h1 is honest and also reviews pA (must not join
// any community).
func clusterTrace(t *testing.T) *trace.Trace {
	t.Helper()
	// Score 5 marks the reviews as promotional (targeting) under
	// DefaultDetectOptions; the fixture has no expert scores, so only the
	// MinScore rule applies.
	mk := func(id, wid, pid string) trace.Review {
		return trace.Review{ID: id, WorkerID: wid, ProductID: pid, Score: 5, Length: 10, Upvotes: 1}
	}
	tr := &trace.Trace{
		Reviews: []trace.Review{
			mk("r1", "m1", "pA"),
			mk("r2", "m2", "pA"),
			mk("r3", "m3", "pB"),
			mk("r4", "m4", "pB"),
			mk("r5", "m4", "pC"),
			mk("r6", "m5", "pC"),
			mk("r7", "m6", "pD"),
			mk("r8", "h1", "pA"),
		},
		Workers: map[string]trace.Worker{
			"m1": {ID: "m1", Malicious: true, TargetProducts: []string{"pA"}},
			"m2": {ID: "m2", Malicious: true, TargetProducts: []string{"pA"}},
			"m3": {ID: "m3", Malicious: true, TargetProducts: []string{"pB"}},
			"m4": {ID: "m4", Malicious: true, TargetProducts: []string{"pB", "pC"}},
			"m5": {ID: "m5", Malicious: true, TargetProducts: []string{"pC"}},
			"m6": {ID: "m6", Malicious: true, TargetProducts: []string{"pD"}},
			"h1": {ID: "h1"},
		},
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("fixture: %v", err)
	}
	return tr
}

func TestFindCommunities(t *testing.T) {
	tr := clusterTrace(t)
	comms := FindCommunities(tr, tr.MaliciousWorkerIDs())
	if len(comms) != 2 {
		t.Fatalf("communities = %d, want 2 (%+v)", len(comms), comms)
	}
	if !reflect.DeepEqual(comms[0].Members, []string{"m1", "m2"}) {
		t.Errorf("community 0 = %v, want [m1 m2]", comms[0].Members)
	}
	if !reflect.DeepEqual(comms[1].Members, []string{"m3", "m4", "m5"}) {
		t.Errorf("community 1 = %v, want [m3 m4 m5]", comms[1].Members)
	}
	if !reflect.DeepEqual(comms[0].Targets, []string{"pA"}) {
		t.Errorf("community 0 targets = %v, want [pA]", comms[0].Targets)
	}
	if !reflect.DeepEqual(comms[1].Targets, []string{"pB", "pC"}) {
		t.Errorf("community 1 targets = %v, want [pB pC]", comms[1].Targets)
	}
}

func TestFindCommunitiesExcludesHonestCoReviewers(t *testing.T) {
	tr := clusterTrace(t)
	comms := FindCommunities(tr, tr.MaliciousWorkerIDs())
	for _, c := range comms {
		for _, m := range c.Members {
			if m == "h1" {
				t.Error("honest worker clustered into a community")
			}
		}
	}
}

func TestFindCommunitiesNoMalicious(t *testing.T) {
	tr := clusterTrace(t)
	if comms := FindCommunities(tr, nil); len(comms) != 0 {
		t.Errorf("communities with empty malicious set = %v", comms)
	}
}

func TestPartnerCounts(t *testing.T) {
	tr := clusterTrace(t)
	comms := FindCommunities(tr, tr.MaliciousWorkerIDs())
	pc := PartnerCounts(comms)
	want := map[string]int{"m1": 1, "m2": 1, "m3": 2, "m4": 2, "m5": 2}
	if !reflect.DeepEqual(pc, want) {
		t.Errorf("PartnerCounts = %v, want %v", pc, want)
	}
	if _, ok := pc["m6"]; ok {
		t.Error("non-collusive worker has partner count")
	}
}

func TestSizeDistribution(t *testing.T) {
	comms := []Community{
		{Members: []string{"a", "b"}},
		{Members: []string{"c", "d"}},
		{Members: []string{"e", "f", "g"}},
		{Members: make([]string, 12)},
		{Members: make([]string, 8)}, // falls in "other" (7..9)
	}
	buckets := SizeDistribution(comms, []int{2, 3, 4, 5, 6}, 10)
	byLabel := map[string]SizeBucket{}
	for _, b := range buckets {
		byLabel[b.Label] = b
	}
	if byLabel["2"].Count != 2 || byLabel["3"].Count != 1 {
		t.Errorf("exact buckets wrong: %+v", buckets)
	}
	if byLabel[">=10"].Count != 1 {
		t.Errorf(">=10 bucket = %d, want 1", byLabel[">=10"].Count)
	}
	if byLabel["other"].Count != 1 {
		t.Errorf("other bucket = %d, want 1", byLabel["other"].Count)
	}
	if byLabel["2"].Percent != 40 {
		t.Errorf("size-2 percent = %v, want 40", byLabel["2"].Percent)
	}
}

func TestSizeDistributionEmpty(t *testing.T) {
	buckets := SizeDistribution(nil, []int{2}, 10)
	for _, b := range buckets {
		if b.Count != 0 || b.Percent != 0 {
			t.Errorf("empty distribution bucket %+v", b)
		}
	}
}

func TestSyntheticCommunityRecovery(t *testing.T) {
	// The detector must recover the synthesizer's planted communities
	// exactly at small scale (disjoint targets, low collision odds).
	tr, err := synth.Generate(synth.SmallScale(21))
	if err != nil {
		t.Fatal(err)
	}
	comms := FindCommunities(tr, tr.MaliciousWorkerIDs())
	// Planted: sizes 2,2,2,3,3,4,6,10 (see synth.SmallScale). Occasional
	// false positives are expected — a filler review can chance-land
	// promotionally on a campaign target — so we require high precision,
	// not perfection.
	anomalies := 0
	recovered := map[int]int{}
	for _, c := range comms {
		prefix := strings.SplitN(c.Members[0], "_", 2)[0]
		coreSize := 0
		for _, m := range c.Members {
			if !strings.HasPrefix(m, "cm") || strings.SplitN(m, "_", 2)[0] != prefix {
				anomalies++
				continue
			}
			coreSize++
		}
		recovered[coreSize]++
	}
	if anomalies > 2 {
		t.Errorf("detector anomalies = %d, want <= 2 (%+v)", anomalies, comms)
	}
	want := map[int]int{2: 3, 3: 2, 4: 1, 6: 1, 10: 1}
	for size, n := range want {
		if recovered[size] < n {
			t.Errorf("size-%d communities = %d, want >= %d (got map %v)", size, recovered[size], n, recovered)
		}
	}
}

func TestEstimatorValidate(t *testing.T) {
	if err := DefaultEstimator(1).Validate(); err != nil {
		t.Errorf("default estimator invalid: %v", err)
	}
	bad := []Estimator{
		{TruePositive: -0.1},
		{TruePositive: 0.9, FalsePositive: 1.2},
		{TruePositive: 0.9, FalsePositive: 0.1, Jitter: 0.6},
	}
	for i, e := range bad {
		if err := e.Validate(); !errors.Is(err, ErrBadEstimator) {
			t.Errorf("bad estimator %d: err = %v, want ErrBadEstimator", i, err)
		}
	}
}

func TestEstimatorSeparatesClasses(t *testing.T) {
	tr := clusterTrace(t)
	est, err := DefaultEstimator(5).Estimate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != len(tr.Workers) {
		t.Fatalf("estimates = %d, want %d", len(est), len(tr.Workers))
	}
	for id, w := range tr.Workers {
		e := est[id]
		if e < 0 || e > 1 {
			t.Errorf("estimate %v for %s outside [0,1]", e, id)
		}
		if w.Malicious && e < 0.8 {
			t.Errorf("malicious %s has estimate %v, want >= 0.8", id, e)
		}
		if !w.Malicious && e > 0.15 {
			t.Errorf("honest %s has estimate %v, want <= 0.15", id, e)
		}
	}
}

func TestEstimatorDeterministic(t *testing.T) {
	tr := clusterTrace(t)
	a, err := DefaultEstimator(9).Estimate(tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultEstimator(9).Estimate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different estimates")
	}
}

// TestEstimatorSeedStability pins the exact estimates for a fixed seed.
// The estimator draws from math/rand/v2's PCG seeded with (Seed, Seed) over
// ID-sorted workers; this golden locks that stream so a silent change to
// the RNG source or the iteration order shows up as a test failure, not as
// quietly shifted experiment outputs.
func TestEstimatorSeedStability(t *testing.T) {
	tr := clusterTrace(t)
	est, err := DefaultEstimator(42).Estimate(tr)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"h1": 0.030501455934940958,
		"m1": 0.8886131570813631,
		"m2": 0.9362084650873629,
		"m3": 0.8931148219619871,
		"m4": 0.8766850102154172,
		"m5": 0.8558144788868146,
		"m6": 0.9142510263639188,
	}
	if !reflect.DeepEqual(est, want) {
		t.Errorf("estimates drifted from pinned seed-42 golden:\n got %v\nwant %v", est, want)
	}
}
