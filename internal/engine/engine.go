package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"dyncontract/internal/contract"
	"dyncontract/internal/effort"
	"dyncontract/internal/spans"
	"dyncontract/internal/telemetry"
	"dyncontract/internal/worker"
)

// ErrStop is returned by an Observer's OnRoundEnd to halt the run cleanly
// (Engine.Run returns nil). Any other observer error aborts the run and is
// returned verbatim.
var ErrStop = errors.New("engine: stop requested")

// ErrBadConfig is returned when an engine configuration fails validation.
var ErrBadConfig = errors.New("engine: invalid configuration")

// Observer receives streamed per-round events. Implementations that only
// care about a subset should embed Hooks or leave methods empty; events
// fire in order OnContracts → OnOutcome (per agent, by ID) → OnRoundEnd.
//
// Observers let callers stream instead of accumulating ledgers: a
// million-round run with a streaming observer holds one Round in memory.
type Observer interface {
	// OnContracts fires after the policy posts the round's contracts. The
	// map is the engine's working copy — treat it as read-only and valid
	// only for the duration of the callback (policies reuse it across
	// rounds); copy it to retain it.
	OnContracts(round int, contracts map[string]*contract.PiecewiseLinear)
	// OnOutcome fires once per agent, in agent-ID order.
	OnOutcome(round int, oc AgentOutcome)
	// OnRoundEnd fires with the completed round. Returning ErrStop ends
	// the run cleanly; any other error aborts it.
	OnRoundEnd(round Round) error
}

// Hooks adapts optional funcs into an Observer; nil funcs are skipped.
type Hooks struct {
	Contracts func(round int, contracts map[string]*contract.PiecewiseLinear)
	Outcome   func(round int, oc AgentOutcome)
	RoundEnd  func(round Round) error
}

var _ Observer = Hooks{}

// OnContracts implements Observer.
func (h Hooks) OnContracts(round int, contracts map[string]*contract.PiecewiseLinear) {
	if h.Contracts != nil {
		h.Contracts(round, contracts)
	}
}

// OnOutcome implements Observer.
func (h Hooks) OnOutcome(round int, oc AgentOutcome) {
	if h.Outcome != nil {
		h.Outcome(round, oc)
	}
}

// OnRoundEnd implements Observer.
func (h Hooks) OnRoundEnd(round Round) error {
	if h.RoundEnd != nil {
		return h.RoundEnd(round)
	}
	return nil
}

// Ledger is the accumulating Observer: it collects every completed round,
// reproducing the []Round return of the pre-engine simulators.
type Ledger struct {
	Rounds []Round
}

var _ Observer = (*Ledger)(nil)

// OnContracts implements Observer.
func (l *Ledger) OnContracts(int, map[string]*contract.PiecewiseLinear) {}

// OnOutcome implements Observer.
func (l *Ledger) OnOutcome(int, AgentOutcome) {}

// OnRoundEnd implements Observer. The engine reuses the round's Outcomes
// backing array for the next round, so the ledger — which retains rounds
// past the callback — copies it.
func (l *Ledger) OnRoundEnd(round Round) error {
	round.Outcomes = append([]AgentOutcome(nil), round.Outcomes...)
	l.Rounds = append(l.Rounds, round)
	return nil
}

// Total sums the requester's utility over the collected rounds.
func (l *Ledger) Total() float64 { return TotalUtility(l.Rounds) }

// Responder chooses an agent's effort for a round instead of the exact
// myopic best response — the hook strategic adversaries plug into. The
// returned effort is clamped to [0, min(mδ, apex)].
type Responder func(round int, a *worker.Agent, c *contract.PiecewiseLinear, part effort.Partition) (float64, error)

// Config assembles one engine run.
type Config struct {
	// Policy prices each round. Required.
	Policy Policy
	// Rounds is the number of rounds to run. Required (> 0); observers can
	// end the run earlier through ErrStop.
	Rounds int
	// Drift, when non-nil, runs before each round and may mutate the
	// population (behaviour drift, weight re-estimation, …).
	Drift func(round int, pop *Population)
	// Responder, when non-nil, overrides the exact best response.
	Responder Responder
	// Observers receive the streamed events of every round.
	Observers []Observer
	// Cache, when non-nil, is wired into the policy (if it implements
	// CacheUser) and surfaced through Engine.CacheStats. Designs then
	// dedup across rounds, not just within one.
	Cache *Cache
	// Memo, when non-nil, memoizes exact best responses keyed by (design
	// fingerprint, contract): a warm round with k distinct fingerprints
	// performs k memo lookups and zero BestResponse calls. Misses are
	// solved through the bounded parallel fan-out. Ignored when a custom
	// Responder is set (hooks may be round-dependent). Like the design
	// cache, the memo is a pure optimization — the ledger is byte-
	// identical with or without it.
	Memo *RespondMemo
	// ParallelRespond caps the respond stage's parallel fan-out. For memo
	// misses 0 means GOMAXPROCS (the fan-out is always on); for the
	// non-memoized routes — per-agent BestResponse, or a custom Responder
	// — parallelism is opt-in: 0 keeps the classic sequential loop, > 0
	// fans out (a custom Responder must then be safe for concurrent
	// calls). Outcomes are written into pre-assigned slots, so every
	// setting produces the same ledger in the same order.
	ParallelRespond int
	// Shards switches the round pipeline to per-shard execution: 0 keeps
	// today's sequential loop; n > 0 partitions the ID-sorted agent view
	// into min(n, agents) deterministic shards by ID hash (ShardOf — the
	// same agent lands in the same shard across rounds and processes).
	// Design and respond run per shard — concurrently on a bounded pool
	// when there is real work — and results merge in global ID order, so
	// the ledger is byte-identical to the sequential engine for every
	// value of Shards. Policies implementing ShardPolicy additionally get
	// per-shard design with warm-round skipping; plain policies keep their
	// single Contracts call and shard only the respond stage.
	//
	// Sharding extends the Bump contract: each shard carries indexed
	// views of Weights, MaliceProb, and the design fingerprints, rebuilt
	// under the same rule as the cached agent view. With no Drift
	// configured, mutating weights, malice probabilities, or agent
	// parameters in place therefore requires a Population.Bump for a
	// sharded engine to observe it (the sequential engine re-reads the
	// maps every round); with a Drift the views rebuild every round and no
	// Bump is needed.
	Shards int
	// Metrics, when non-nil, instruments the run: per-stage round timing
	// histograms, per-round ledger gauges (the same set TelemetryObserver
	// exports), the design cache's counters (Cache.ExportTo), and — for
	// policies implementing MetricsUser — the solver fan-out.
	// telemetry.Nop (a nil registry) leaves the run un-instrumented;
	// enabling metrics never changes the simulated ledger.
	Metrics *telemetry.Registry
}

// Engine drives the repeated Stackelberg round loop of §II over one
// population: drift → contracts → best responses → accounting → observers.
type Engine struct {
	pop       *Population
	cfg       Config
	m         *stageMetrics      // nil when Config.Metrics is unset
	telObs    *telemetryObserver // nil when Config.Metrics is unset
	agents    []*worker.Agent    // cached ID-sorted view (see roundAgents)
	agentsOK  bool
	agentsGen uint64
	outs      []AgentOutcome // Round.Outcomes backing array, reused per round
	rs        respondScratch // respond-stage buffers, reused per round
	rt        roundState     // per-round pipeline state, reused per round
	stepped   int            // rounds completed through Step (not Run)

	// Drift-scope state (see beginScope): the round's consumed view rule
	// plus the lazily built ID index over the cached agent view the
	// sparse path resolves touched IDs through.
	scope    driftScope
	scopeIDs []string // takeScope's reusable backing slice
	byID     map[string]int32
	byIDVer  uint64 // viewVer the index was built against
	viewVer  uint64 // advances on every full rebuild of e.agents

	// Sharded-pipeline state (Config.Shards > 0); see shard.go.
	shardPol  ShardPolicy // non-nil when the policy supports per-shard design
	patchPol  bool        // the policy is FingerprintPure — sparse drifts may patch slots
	shards    []shardRun
	shardPtrs []*Shard // scratch for shardAssign, aliasing shards
	shardsOK  bool
	shardsGen uint64
	viewEpoch uint64 // advances on every shard-view rebuild (Shard.Epoch)
	merged    map[string]*contract.PiecewiseLinear
	// lastDeclared/lastApplied record the previous round's drift
	// classification: the rule beginScope derived from the declared scope,
	// and the rule the round actually ran under after any escalation in
	// roundAgents (a structural sparse scope escalates to viewFull). See
	// LastDriftClass.
	lastDeclared viewRule
	lastApplied  viewRule

	// fpCounts refcounts the live design fingerprints across every shard
	// view — built lazily on the first sparse refresh after a full
	// rebuild, maintained incrementally after. A fingerprint whose count
	// hits zero is dead: no agent mints it any more, so its design-cache
	// and respond-memo entries are dropped (targeted invalidation).
	fpCounts map[Fingerprint]int32
	deadFPs  []Fingerprint // per-refresh scratch of zero-count fingerprints
}

// viewRule is one round's decision on the cached agent and shard views,
// derived from the consumed drift scope (see beginScope).
type viewRule uint8

const (
	// viewKeep retains every cached view (no declared drift; the
	// generation compare remains as the cross-engine backstop).
	viewKeep viewRule = iota
	// viewSparse refreshes only the state touched by the declared IDs;
	// it escalates to viewFull when the scope turns out structural.
	viewSparse
	// viewFull rebuilds the agent view and every shard view from scratch.
	viewFull
)

// String names the rule for span attributes, logs, and metrics labels.
func (v viewRule) String() string {
	switch v {
	case viewKeep:
		return "viewKeep"
	case viewSparse:
		return "viewSparse"
	case viewFull:
		return "viewFull"
	}
	return "viewUnknown"
}

// driftScope is the consumed per-round drift scope.
type driftScope struct {
	rule viewRule
	ids  []string // touched agent IDs, meaningful only under viewSparse
}

// roundState carries one round through the pipeline's stages. The engine
// keeps a single instance and resets it per round, so the pipeline
// allocates nothing in steady state.
type roundState struct {
	r         int
	timed     bool
	agents    []*worker.Agent
	contracts map[string]*contract.PiecewiseLinear
	round     Round
	// workerUtility is the respond stage's summed accepted-agent utility
	// (only computed for instrumented runs on the sequential routes).
	workerUtility float64
	// observeDur accumulates observer-dispatch time recorded outside the
	// observe stage proper (the OnContracts fan-out runs between design
	// and respond but bills to the observe histogram).
	observeDur time.Duration
	// span is the round's "engine.round" span (nil when the incoming
	// context carries none — the untraced hot path), and stageSpan the
	// currently running stage's child span, the parent for per-shard
	// spans. Both are nil-safe throughout.
	span      *spans.Span
	stageSpan *spans.Span
}

// stage is one step of the engine's round pipeline. Stages run in order;
// instrumented engines observe each stage's duration into its histogram.
type stage struct {
	name string
	// spanName is the stage's span name, precomputed so traced rounds do
	// no per-stage string building.
	spanName string
	// hist selects the stage's histogram (nil for fold/final stages).
	hist func(*stageMetrics) *telemetry.Histogram
	// fold accumulates the stage's duration into roundState.observeDur
	// instead of observing a histogram (the OnContracts dispatch).
	fold bool
	// final marks the observe stage: its duration (plus the folded
	// observer time) and the whole round's duration are observed even
	// when the stage errors — a stopped round was still a full round.
	final bool
	run   func(*Engine, context.Context, *roundState) error
}

// roundPipeline is the engine's round body: contract design, OnContracts
// dispatch, worker best responses, outcome settlement (Eq. (7)), observer
// dispatch. Design and respond switch between the sequential and sharded
// routes on Config.Shards; the other stages are shared.
var roundPipeline = [...]stage{
	{name: "design", spanName: "engine.stage.design", hist: func(m *stageMetrics) *telemetry.Histogram { return m.design }, run: (*Engine).stageDesign},
	{name: "contracts", spanName: "engine.stage.contracts", fold: true, run: (*Engine).stageContracts},
	{name: "respond", spanName: "engine.stage.respond", hist: func(m *stageMetrics) *telemetry.Histogram { return m.respond }, run: (*Engine).stageRespond},
	{name: "settle", spanName: "engine.stage.settle", hist: func(m *stageMetrics) *telemetry.Histogram { return m.settle }, run: (*Engine).stageSettle},
	{name: "observe", spanName: "engine.stage.observe", final: true, run: (*Engine).stageObserve},
}

// New validates the population and configuration and wires the cache and
// metrics registry into the policy when supported.
func New(pop *Population, cfg Config) (*Engine, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("nil policy: %w", ErrBadConfig)
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("rounds=%d must be positive: %w", cfg.Rounds, ErrBadConfig)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("shards=%d must be >= 0: %w", cfg.Shards, ErrBadConfig)
	}
	if err := pop.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cache != nil {
		if cu, ok := cfg.Policy.(CacheUser); ok {
			cu.UseCache(cfg.Cache)
		}
	}
	e := &Engine{pop: pop, cfg: cfg}
	if cfg.Shards > 0 {
		if sp, ok := cfg.Policy.(ShardPolicy); ok {
			e.shardPol = sp
			_, e.patchPol = cfg.Policy.(FingerprintPurePolicy)
		}
	}
	if cfg.Metrics != nil {
		if mu, ok := cfg.Policy.(MetricsUser); ok {
			mu.UseMetrics(cfg.Metrics)
		}
		if cfg.Cache != nil {
			cfg.Cache.ExportTo(cfg.Metrics)
		}
		if cfg.Memo != nil {
			cfg.Memo.ExportTo(cfg.Metrics)
		}
		e.m = newStageMetrics(cfg.Metrics)
		// Ledger metrics are exported directly in Run rather than by
		// stacking TelemetryObserver into Observers: the per-agent
		// OnOutcome dispatch loop stays exactly as long as the caller made
		// it, which keeps instrumentation overhead off the hot path. The
		// export happens before user observers fire, so a per-round
		// metrics flush reads the registry already updated for the round.
		e.telObs = newTelemetryObserver(cfg.Metrics)
	}
	return e, nil
}

// CacheStats snapshots the configured cache's counters (zero when no cache
// was configured).
func (e *Engine) CacheStats() CacheStats {
	if e.cfg.Cache == nil {
		return CacheStats{}
	}
	return e.cfg.Cache.Stats()
}

// RespondStats snapshots the configured respond memo's counters (zero
// when no memo was configured).
func (e *Engine) RespondStats() RespondStats {
	if e.cfg.Memo == nil {
		return RespondStats{}
	}
	return e.cfg.Memo.Stats()
}

// Run executes the configured number of rounds, streaming events to the
// observers. It returns nil on completion or clean ErrStop, and the first
// error otherwise (context cancellation, policy/design failure, a drift
// that broke the population, or an observer error).
//
// Each round walks the stage pipeline — contract design, worker
// best-response, outcome settlement, observer dispatch — and when
// Config.Metrics is set each stage's duration is observed into its
// _seconds histogram (observer dispatch on either side of respond bills
// to the observe histogram). The observable event order is the same on
// every route, sequential or sharded: OnContracts, then one OnOutcome per
// agent in ID order, then OnRoundEnd.
func (e *Engine) Run(ctx context.Context) error {
	for r := 0; r < e.cfg.Rounds; r++ {
		if err := e.runRound(ctx, r); err != nil {
			if errors.Is(err, ErrStop) {
				return nil
			}
			return err
		}
	}
	return nil
}

// Step executes exactly one round — drift, design, respond, settle,
// observe — using the engine's own step counter as the round index, and
// advances the counter when the round completes. It is the entry point
// for long-lived callers (servers, interactive drivers) that advance a
// session on demand instead of running a fixed horizon; Config.Rounds is
// ignored by Step (it must still validate as positive).
//
// Unlike Run, Step returns ErrStop verbatim when an observer requests a
// stop — the caller owns the loop, so it also owns the decision. A failed
// round (context cancellation, design error) does not advance the counter
// and leaves no trace in the ledger, so retrying is safe. Mixing Run and
// Step on one engine is not supported: Run always restarts from round 0.
//
// Step is not safe for concurrent use — serialize calls through a single
// writer, as internal/server does.
func (e *Engine) Step(ctx context.Context) error {
	err := e.runRound(ctx, e.stepped)
	if err == nil || errors.Is(err, ErrStop) {
		e.stepped++
	}
	return err
}

// Stepped returns the number of rounds completed through Step.
func (e *Engine) Stepped() int { return e.stepped }

// runRound executes one round of the stage pipeline. ErrStop from an
// observer is returned verbatim; callers decide whether it ends the run.
func (e *Engine) runRound(ctx context.Context, r int) error {
	timed := e.m != nil
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("engine: round %d: %w", r, err)
	}
	if e.cfg.Drift != nil {
		e.cfg.Drift(r, e.pop)
		e.beginScope()
		// Scope-aware revalidation: a declared, non-structural sparse
		// drift re-checks only the touched agents; anything else (Bump,
		// undeclared mutations, membership changes) re-checks everything.
		var err error
		if e.scope.rule == viewSparse && !e.scopeStructural() {
			err = e.validateTouched()
		} else {
			err = e.pop.Validate()
		}
		if err != nil {
			return fmt.Errorf("engine: drift broke population at round %d: %w", r, err)
		}
	} else {
		e.beginScope()
	}

	e.lastDeclared = e.scope.rule

	e.rt = roundState{r: r, timed: timed}
	st := &e.rt
	// Traced rounds hang an "engine.round" span with one child per stage
	// off the caller's span; the untraced path pays one context lookup
	// and nil branches — no allocation, so the warm-round zero-alloc pin
	// holds.
	if parent := spans.FromContext(ctx); parent != nil {
		st.span = parent.StartChild("engine.round")
		st.span.SetInt("round", int64(r))
		ctx = spans.ContextWith(ctx, st.span)
		defer e.endRoundSpan(st)
	}
	var roundTimer telemetry.Timer
	if timed {
		roundTimer = telemetry.StartTimer()
	}
	for si := range roundPipeline {
		sg := &roundPipeline[si]
		var stageTimer telemetry.Timer
		if timed {
			stageTimer = telemetry.StartTimer()
		}
		if st.span != nil {
			st.stageSpan = st.span.StartChild(sg.spanName)
		}
		err := sg.run(e, ctx, st)
		if st.stageSpan != nil {
			st.stageSpan.End()
			st.stageSpan = nil
		}
		if timed && (err == nil || sg.final) {
			d := stageTimer.Elapsed()
			switch {
			case sg.fold:
				st.observeDur += d
			case sg.final:
				e.m.observe.Observe((d + st.observeDur).Seconds())
				e.m.round.Observe(roundTimer.Seconds())
			default:
				sg.hist(e.m).Observe(d.Seconds())
			}
		}
		if err != nil {
			return err
		}
	}
	e.lastApplied = e.scope.rule
	return nil
}

// endRoundSpan finishes a traced round's span with the round's summary
// attributes: the drift classification the round ran under (after any
// escalation), the agent count, and the shard count.
func (e *Engine) endRoundSpan(st *roundState) {
	st.span.SetAttr("drift.declared", e.lastDeclared.String())
	st.span.SetAttr("drift", e.scope.rule.String())
	st.span.SetInt("agents", int64(len(st.agents)))
	if e.cfg.Shards > 0 {
		st.span.SetInt("shards", int64(len(e.shards)))
	}
	st.span.End()
}

// LastDriftClass reports the previous successful round's drift
// classification: the rule derived from the declared scope and the rule
// the round actually applied — they differ exactly when a declared
// sparse scope escalated to the full rebuild (a structural change). The
// serving layer logs that escalation; traced rounds carry both values as
// span attributes.
func (e *Engine) LastDriftClass() (declared, applied string) {
	return e.lastDeclared.String(), e.lastApplied.String()
}

// stageDesign resolves the round's agent view and asks the policy for
// contracts — whole-population on the sequential route, per shard under
// Config.Shards.
func (e *Engine) stageDesign(ctx context.Context, st *roundState) error {
	st.agents = e.roundAgents()
	if e.cfg.Shards > 0 {
		return e.designSharded(ctx, st)
	}
	contracts, err := e.cfg.Policy.Contracts(ctx, e.pop)
	if err != nil {
		return fmt.Errorf("engine: policy %s round %d: %w", e.cfg.Policy.Name(), st.r, err)
	}
	st.contracts = contracts
	return nil
}

// stageContracts dispatches OnContracts. (On the sharded dense route with
// no observers the merged map is never built and st.contracts is nil.)
func (e *Engine) stageContracts(_ context.Context, st *roundState) error {
	for _, ob := range e.cfg.Observers {
		ob.OnContracts(st.r, st.contracts)
	}
	return nil
}

// stageRespond computes worker best responses into the reused outcomes
// backing array; observers that retain it past their callback (as Ledger
// does) must copy.
func (e *Engine) stageRespond(ctx context.Context, st *roundState) error {
	agents := st.agents
	if cap(e.outs) < len(agents) {
		e.outs = make([]AgentOutcome, len(agents))
		e.invalidateShardOuts()
	}
	st.round = Round{Index: st.r, Outcomes: e.outs[:len(agents)]}
	var wu float64
	var err error
	if e.cfg.Shards > 0 {
		wu, err = e.respondSharded(ctx, st)
	} else {
		wu, err = e.respondAll(ctx, st.r, st.contracts, agents, st.round.Outcomes, st.timed)
	}
	if err != nil {
		return err
	}
	st.workerUtility = wu
	return nil
}

// stageSettle runs the Eq. (7) accounting — always one sequential pass in
// global ID order, so sharded and sequential rounds sum bit-identically.
func (e *Engine) stageSettle(_ context.Context, st *roundState) error {
	round := &st.round
	for i := range round.Outcomes {
		oc := &round.Outcomes[i]
		if oc.Excluded || oc.Declined {
			continue
		}
		round.Benefit += oc.Weight * oc.Feedback
		round.Cost += oc.Compensation
	}
	round.Utility = round.Benefit - e.pop.Mu*round.Cost
	if st.timed {
		e.m.workerUtility.Set(st.workerUtility)
	}
	return nil
}

// stageObserve dispatches per-agent outcomes and the round end. The
// registry export runs first so observers that read Config.Metrics (e.g.
// a per-round JSONL flush) see the completed round's values.
func (e *Engine) stageObserve(_ context.Context, st *roundState) error {
	if st.timed {
		_ = e.telObs.OnRoundEnd(st.round) // never errors
	}
	for i := range st.round.Outcomes {
		for _, ob := range e.cfg.Observers {
			ob.OnOutcome(st.r, st.round.Outcomes[i])
		}
	}
	for _, ob := range e.cfg.Observers {
		if err := ob.OnRoundEnd(st.round); err != nil {
			return err
		}
	}
	return nil
}

// beginScope consumes the population's accumulated drift scope into the
// round's view rule. The split:
//
//   - a declared sparse scope (Touch) refreshes only touched state;
//   - a declared full scope (Bump) rebuilds everything;
//   - no declaration under a Drift hook keeps the legacy contract — the
//     hook may have mutated anything, so every view rebuilds;
//   - no declaration and no hook keeps the cached views, with the
//     generation compare in roundAgents/ensureShards as the backstop for
//     populations shared with another consumer.
func (e *Engine) beginScope() {
	ids, all, pending := e.pop.takeScope(e.scopeIDs)
	e.scopeIDs = ids
	switch {
	case pending && all:
		e.scope = driftScope{rule: viewFull}
	case pending:
		e.scope = driftScope{rule: viewSparse, ids: ids}
		if e.m != nil {
			e.m.driftTouched.Add(uint64(len(ids)))
		}
	case e.cfg.Drift != nil:
		e.scope = driftScope{rule: viewFull}
	default:
		e.scope = driftScope{rule: viewKeep}
	}
}

// roundAgents returns the ID-ordered agent view. The cached view is kept
// whenever the round's rule allows it: always under viewKeep with an
// unmoved generation, and under a non-structural viewSparse — a sparse
// drift mutates agents in place through the retained pointers, so the
// sorted view itself is still exact. A structural sparse scope (an ID
// added, removed, or never seen) escalates the whole round to viewFull,
// which rebuilds here and cascades into ensureShards.
func (e *Engine) roundAgents() []*worker.Agent {
	gen := e.pop.Generation()
	if e.agentsOK {
		switch e.scope.rule {
		case viewKeep:
			if e.agentsGen == gen {
				return e.agents
			}
		case viewSparse:
			if !e.scopeStructural() {
				e.agentsGen = gen
				return e.agents
			}
		}
	}
	e.scope.rule = viewFull
	e.agents = append(e.agents[:0], e.pop.Agents...)
	sort.Slice(e.agents, func(i, j int) bool { return e.agents[i].ID < e.agents[j].ID })
	e.agentsOK = true
	e.agentsGen = gen
	e.viewVer++
	return e.agents
}

// scopeStructural reports whether the round's sparse scope names a
// structural change: a population size that moved, or a touched ID the
// retained view does not hold (an added, removed, or foreign agent).
// Structural scopes always take the full-rebuild path — outcome slots
// shift when membership changes, so there is nothing sparse to save.
func (e *Engine) scopeStructural() bool {
	if len(e.pop.Agents) != len(e.agents) {
		return true
	}
	e.ensureByID()
	for _, id := range e.scope.ids {
		if _, ok := e.byID[id]; !ok {
			return true
		}
	}
	return false
}

// validateTouched re-checks exactly the agents named by the round's
// sparse scope — the per-agent slice of Population.Validate (agent
// parameters, weight presence and finiteness, malice range) plus the
// scalar Mu check. The structural invariants (membership, duplicates,
// orphan map entries) cannot move under a non-structural sparse scope,
// so the O(population) pass is skipped; runRound falls back to the full
// Validate for every other scope shape.
func (e *Engine) validateTouched() error {
	p := e.pop
	if !(p.Mu > 0) || math.IsInf(p.Mu, 0) {
		return fmt.Errorf("mu=%v: %w", p.Mu, ErrBadPopulation)
	}
	e.ensureByID()
	for _, id := range e.scope.ids {
		a := e.agents[e.byID[id]]
		if err := a.Validate(p.Part.YMax()); err != nil {
			return err
		}
		w, ok := p.Weights[id]
		if !ok {
			return fmt.Errorf("agent %q has no weight: %w", id, ErrBadPopulation)
		}
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("agent %q weight=%v: %w", id, w, ErrBadPopulation)
		}
		if mp, ok := p.MaliceProb[id]; ok && !(mp >= 0 && mp <= 1) {
			return fmt.Errorf("agent %q malice probability=%v: %w", id, mp, ErrBadPopulation)
		}
	}
	return nil
}

// ensureByID (re)builds the ID index over the cached agent view. It is
// built lazily — only rounds that consume a sparse scope need it — and
// keyed on the view version, so a steady drift-every-round run builds it
// once and reuses it for as long as the membership stands.
func (e *Engine) ensureByID() {
	if e.byID != nil && e.byIDVer == e.viewVer {
		return
	}
	if e.byID == nil {
		e.byID = make(map[string]int32, len(e.agents))
	} else {
		clear(e.byID)
	}
	for i, a := range e.agents {
		e.byID[a.ID] = int32(i)
	}
	e.byIDVer = e.viewVer
}

// RunLedger runs a configured engine to completion and returns the
// accumulated per-round ledger — the convenience path for callers that
// want the classic []Round result. On error the rounds completed so far
// are returned alongside it.
func RunLedger(ctx context.Context, pop *Population, cfg Config) ([]Round, error) {
	led := &Ledger{Rounds: make([]Round, 0, cfg.Rounds)}
	cfg.Observers = append(append([]Observer(nil), cfg.Observers...), led)
	e, err := New(pop, cfg)
	if err != nil {
		return nil, err
	}
	if err := e.Run(ctx); err != nil {
		return led.Rounds, err
	}
	return led.Rounds, nil
}
