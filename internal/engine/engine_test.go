package engine_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"dyncontract/internal/contract"
	"dyncontract/internal/effort"
	"dyncontract/internal/engine"
	"dyncontract/internal/worker"
)

// archetypePopulation builds n agents drawn from exactly three behavioural
// archetypes — honest, non-collusive malicious, and collusive community —
// with identical cost parameters and requester weights within each
// archetype. The whole population therefore shares exactly three design
// fingerprints, which is what makes the dedup assertions below exact.
// Construction is fully deterministic.
func archetypePopulation(tb testing.TB, n int) *engine.Population {
	tb.Helper()
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		tb.Fatal(err)
	}
	part, err := effort.NewPartition(8, 5)
	if err != nil {
		tb.Fatal(err)
	}
	pop := &engine.Population{
		Weights:    make(map[string]float64, n),
		MaliceProb: make(map[string]float64, n),
		Part:       part,
		Mu:         1,
	}
	for i := 0; i < n; i++ {
		var (
			a      *worker.Agent
			w, mal float64
		)
		switch i % 3 {
		case 0:
			a, err = worker.NewHonest(fmt.Sprintf("h%05d", i), psi, 1, part.YMax())
			w, mal = 1, 0.05
		case 1:
			a, err = worker.NewMalicious(fmt.Sprintf("m%05d", i), psi, 1, 0.5, part.YMax())
			w, mal = 0.8, 0.9
		default:
			a, err = worker.NewCommunity(fmt.Sprintf("c%05d", i), psi, 1, 0.5, 3, part.YMax())
			w, mal = 0.5, 0.95
		}
		if err != nil {
			tb.Fatal(err)
		}
		pop.Agents = append(pop.Agents, a)
		pop.Weights[a.ID] = w
		pop.MaliceProb[a.ID] = mal
	}
	return pop
}

// designPolicy routes every agent through the engine's Designer — the
// minimal cache-aware policy, used here so the tests exercise the CacheUser
// wiring exactly as platform.DynamicPolicy does.
type designPolicy struct {
	d engine.Designer
}

func (p *designPolicy) Name() string { return "test-design" }

func (p *designPolicy) UseCache(c *engine.Cache) { p.d.Cache = c }

func (p *designPolicy) Contracts(ctx context.Context, pop *engine.Population) (map[string]*contract.PiecewiseLinear, error) {
	return p.d.Contracts(ctx, pop, pop.Agents)
}

func TestNewValidation(t *testing.T) {
	pop := archetypePopulation(t, 6)
	t.Run("nil policy", func(t *testing.T) {
		if _, err := engine.New(pop, engine.Config{Rounds: 1}); !errors.Is(err, engine.ErrBadConfig) {
			t.Errorf("err = %v, want ErrBadConfig", err)
		}
	})
	t.Run("zero rounds", func(t *testing.T) {
		if _, err := engine.New(pop, engine.Config{Policy: &designPolicy{}}); !errors.Is(err, engine.ErrBadConfig) {
			t.Errorf("err = %v, want ErrBadConfig", err)
		}
	})
	t.Run("bad population", func(t *testing.T) {
		bad := archetypePopulation(t, 3)
		bad.Mu = 0
		if _, err := engine.New(bad, engine.Config{Policy: &designPolicy{}, Rounds: 1}); !errors.Is(err, engine.ErrBadPopulation) {
			t.Errorf("err = %v, want ErrBadPopulation", err)
		}
	})
}

// TestDeterminism is the reproducibility guarantee: two runs over
// identically-built populations produce identical ledgers, with and without
// the design cache — and the cached and uncached ledgers match each other,
// so the cache is a pure optimization.
func TestDeterminism(t *testing.T) {
	ctx := context.Background()
	drift := func(round int, pop *engine.Population) {
		if round == 0 {
			return
		}
		// Deterministic weight drift: mints fresh fingerprints each round,
		// so the cached run exercises both hits and cross-round misses.
		for _, a := range pop.Agents {
			pop.Weights[a.ID] *= 1.05
		}
	}
	run := func(withCache bool) []engine.Round {
		t.Helper()
		cfg := engine.Config{Policy: &designPolicy{}, Rounds: 4, Drift: drift}
		if withCache {
			cfg.Cache = engine.NewCache()
		}
		ledger, err := engine.RunLedger(ctx, archetypePopulation(t, 30), cfg)
		if err != nil {
			t.Fatalf("RunLedger(cache=%v): %v", withCache, err)
		}
		return ledger
	}

	uncached1, uncached2 := run(false), run(false)
	cached1, cached2 := run(true), run(true)
	if !reflect.DeepEqual(uncached1, uncached2) {
		t.Error("two uncached runs diverged")
	}
	if !reflect.DeepEqual(cached1, cached2) {
		t.Error("two cached runs diverged")
	}
	if !reflect.DeepEqual(uncached1, cached1) {
		t.Error("cache changed simulation results")
	}
}

// TestObserverEventOrder pins the streaming contract: per round, the
// observer sees OnContracts, then one OnOutcome per agent in ID order, then
// OnRoundEnd with the completed round.
func TestObserverEventOrder(t *testing.T) {
	pop := archetypePopulation(t, 6)
	var events []string
	obs := engine.Hooks{
		Contracts: func(round int, cs map[string]*contract.PiecewiseLinear) {
			events = append(events, fmt.Sprintf("contracts:%d:%d", round, len(cs)))
		},
		Outcome: func(round int, oc engine.AgentOutcome) {
			events = append(events, fmt.Sprintf("outcome:%d:%s", round, oc.AgentID))
		},
		RoundEnd: func(r engine.Round) error {
			events = append(events, fmt.Sprintf("end:%d:%d", r.Index, len(r.Outcomes)))
			return nil
		},
	}
	eng, err := engine.New(pop, engine.Config{Policy: &designPolicy{}, Rounds: 2, Observers: []engine.Observer{obs}})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"contracts:0:6",
		"outcome:0:c00002", "outcome:0:c00005", "outcome:0:h00000",
		"outcome:0:h00003", "outcome:0:m00001", "outcome:0:m00004",
		"end:0:6",
		"contracts:1:6",
		"outcome:1:c00002", "outcome:1:c00005", "outcome:1:h00000",
		"outcome:1:h00003", "outcome:1:m00001", "outcome:1:m00004",
		"end:1:6",
	}
	if !reflect.DeepEqual(events, want) {
		t.Errorf("event stream:\n got %v\nwant %v", events, want)
	}
}

func TestObserverErrStopEndsRunCleanly(t *testing.T) {
	pop := archetypePopulation(t, 6)
	led := &engine.Ledger{}
	stopper := engine.Hooks{RoundEnd: func(r engine.Round) error {
		if r.Index == 1 {
			return engine.ErrStop
		}
		return nil
	}}
	eng, err := engine.New(pop, engine.Config{
		Policy:    &designPolicy{},
		Rounds:    50,
		Observers: []engine.Observer{led, stopper},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background()); err != nil {
		t.Fatalf("ErrStop leaked: %v", err)
	}
	if len(led.Rounds) != 2 {
		t.Errorf("rounds recorded = %d, want 2", len(led.Rounds))
	}
}

func TestObserverErrorAbortsRun(t *testing.T) {
	pop := archetypePopulation(t, 3)
	boom := errors.New("observer exploded")
	obs := engine.Hooks{RoundEnd: func(engine.Round) error { return boom }}
	eng, err := engine.New(pop, engine.Config{Policy: &designPolicy{}, Rounds: 3, Observers: []engine.Observer{obs}})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background()); !errors.Is(err, boom) {
		t.Errorf("err = %v, want the observer's error", err)
	}
}

// failAfterPolicy serves real contracts for n rounds, then fails.
type failAfterPolicy struct {
	inner designPolicy
	n     int
	calls int
}

func (p *failAfterPolicy) Name() string { return "fail-after" }

func (p *failAfterPolicy) Contracts(ctx context.Context, pop *engine.Population) (map[string]*contract.PiecewiseLinear, error) {
	p.calls++
	if p.calls > p.n {
		return nil, errors.New("designed to fail")
	}
	return p.inner.Contracts(ctx, pop)
}

func TestRunLedgerReturnsPartialRoundsOnError(t *testing.T) {
	pop := archetypePopulation(t, 3)
	ledger, err := engine.RunLedger(context.Background(), pop, engine.Config{
		Policy: &failAfterPolicy{n: 2},
		Rounds: 5,
	})
	if err == nil {
		t.Fatal("policy failure not surfaced")
	}
	if len(ledger) != 2 {
		t.Errorf("partial ledger = %d rounds, want 2", len(ledger))
	}
}

func TestRunContextCancellation(t *testing.T) {
	pop := archetypePopulation(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng, err := engine.New(pop, engine.Config{Policy: &designPolicy{}, Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestTotalUtility(t *testing.T) {
	tests := []struct {
		name   string
		ledger []engine.Round
		want   float64
	}{
		{"nil ledger", nil, 0},
		{"empty ledger", []engine.Round{}, 0},
		{"sum", []engine.Round{{Utility: 2}, {Utility: 3.5}, {Utility: -1}}, 4.5},
		{"NaN round skipped", []engine.Round{{Utility: 1}, {Utility: math.NaN()}, {Utility: 2}}, 3},
		{"+Inf round skipped", []engine.Round{{Utility: math.Inf(1)}, {Utility: 4}}, 4},
		{"-Inf round skipped", []engine.Round{{Utility: math.Inf(-1)}, {Utility: 4}}, 4},
		{"all NaN", []engine.Round{{Utility: math.NaN()}, {Utility: math.NaN()}}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := engine.TotalUtility(tc.ledger)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("TotalUtility = %v, must always be finite", got)
			}
			if got != tc.want {
				t.Errorf("TotalUtility = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestLedgerTotal(t *testing.T) {
	led := &engine.Ledger{Rounds: []engine.Round{{Utility: 1}, {Utility: 2}}}
	if led.Total() != 3 {
		t.Errorf("Total = %v, want 3", led.Total())
	}
}
