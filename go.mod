module dyncontract

go 1.22
