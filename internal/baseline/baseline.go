// Package baseline implements the comparison pricing strategies of the
// evaluation:
//
//   - ExcludeMalicious — the Fig. 8(c) baseline: design dynamic contracts
//     for workers believed honest, but drop every worker whose estimated
//     malice probability crosses a threshold. It forfeits the useful
//     feedback of biased-but-accurate malicious workers and mis-drops
//     honest workers on estimator false positives.
//   - FixedPayment — the fixed-price policy of [1], [2]: one flat payment
//     per task for everyone, independent of feedback. Without marginal
//     reward, rational honest workers exert zero effort.
package baseline

import (
	"context"
	"fmt"

	"dyncontract/internal/contract"
	"dyncontract/internal/engine"
	"dyncontract/internal/platform"
)

// ExcludeMalicious drops agents with MaliceProb above Threshold and prices
// the rest with the dynamic policy.
type ExcludeMalicious struct {
	// Threshold is the exclusion cutoff on the estimated malice
	// probability (e.g. 0.5).
	Threshold float64
	// Parallelism caps the inner solver pool; 0 means GOMAXPROCS.
	Parallelism int

	// inner persists across rounds so the engine's design dedup, scratch
	// buffers, and any attached cache carry over.
	inner platform.DynamicPolicy
}

var (
	_ platform.Policy  = (*ExcludeMalicious)(nil)
	_ engine.CacheUser = (*ExcludeMalicious)(nil)
)

// Name implements platform.Policy.
func (p *ExcludeMalicious) Name() string {
	return fmt.Sprintf("exclude-malicious(>%.2f)", p.Threshold)
}

// UseCache implements engine.CacheUser by forwarding the design cache to
// the inner dynamic policy.
func (p *ExcludeMalicious) UseCache(c *engine.Cache) { p.inner.UseCache(c) }

// Contracts implements platform.Policy: nil contracts for excluded agents,
// dynamic contracts for the rest.
func (p *ExcludeMalicious) Contracts(ctx context.Context, pop *platform.Population) (map[string]*contract.PiecewiseLinear, error) {
	kept := &platform.Population{
		Weights:    pop.Weights,
		MaliceProb: pop.MaliceProb,
		Part:       pop.Part,
		Mu:         pop.Mu,
	}
	for _, a := range pop.Agents {
		if pop.MaliceProb[a.ID] > p.Threshold {
			continue
		}
		kept.Agents = append(kept.Agents, a)
	}
	contracts := make(map[string]*contract.PiecewiseLinear, len(pop.Agents))
	if len(kept.Agents) > 0 {
		p.inner.Parallelism = p.Parallelism
		designed, err := p.inner.Contracts(ctx, kept)
		if err != nil {
			return nil, fmt.Errorf("baseline: inner dynamic design: %w", err)
		}
		for id, c := range designed {
			contracts[id] = c
		}
	}
	// Excluded agents simply have no entry (nil contract = excluded).
	return contracts, nil
}

// FixedPayment offers every agent the same flat payment regardless of
// feedback.
type FixedPayment struct {
	// Amount is the flat per-task payment.
	Amount float64
}

var _ platform.Policy = (*FixedPayment)(nil)

// Name implements platform.Policy.
func (p *FixedPayment) Name() string {
	return fmt.Sprintf("fixed-payment(%.2f)", p.Amount)
}

// Contracts implements platform.Policy.
func (p *FixedPayment) Contracts(_ context.Context, pop *platform.Population) (map[string]*contract.PiecewiseLinear, error) {
	contracts := make(map[string]*contract.PiecewiseLinear, len(pop.Agents))
	for _, a := range pop.Agents {
		knots := pop.Part.Knots(a.Psi)
		flat, err := contract.Flat(knots[0], knots[len(knots)-1], p.Amount)
		if err != nil {
			return nil, fmt.Errorf("baseline: flat contract for %s: %w", a.ID, err)
		}
		contracts[a.ID] = flat
	}
	return contracts, nil
}
