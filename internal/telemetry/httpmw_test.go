package telemetry

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

func TestMetricNameComponent(t *testing.T) {
	tests := []struct{ in, want string }{
		{"design", "design"},
		{"/v1/sessions/{id}/design", "_v1_sessions__id__design"},
		{"9lives", "_9lives"},
		{"", "_"},
		{"ok_name:x2", "ok_name:x2"},
	}
	for _, tt := range tests {
		if got := MetricNameComponent(tt.in); got != tt.want {
			t.Errorf("MetricNameComponent(%q) = %q, want %q", tt.in, got, tt.want)
		}
		// Whatever comes out must pass the registry's name validation.
		mustValidName(HTTPMetricPrefix + MetricNameComponent(tt.in) + HTTPSuffixSeconds)
	}
}

// TestInstrumentHandler drives one route through every status class and
// checks the counters, the rejected counter, and the latency histogram.
func TestInstrumentHandler(t *testing.T) {
	reg := NewRegistry()
	var status int
	h := InstrumentHandler(reg, "design", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if status == 0 {
			_, _ = w.Write([]byte("implicit 200"))
			return
		}
		w.WriteHeader(status)
	}))
	for _, s := range []int{0, 200, 302, 404, 429, 500} {
		status = s
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/x/design", nil))
	}
	snap := reg.Snapshot()
	name := HTTPMetricPrefix + "design"
	if got := snap.Counters[name+HTTPSuffixRequests]; got != 6 {
		t.Errorf("requests = %d, want 6", got)
	}
	for suffix, want := range map[string]uint64{
		HTTPSuffix2xx:      2,
		HTTPSuffix3xx:      1,
		HTTPSuffix4xx:      2,
		HTTPSuffix5xx:      1,
		HTTPSuffixRejected: 1,
	} {
		if got := snap.Counters[name+suffix]; got != want {
			t.Errorf("%s = %d, want %d", suffix, got, want)
		}
	}
	if got := snap.Histograms[name+HTTPSuffixSeconds].Count; got != 6 {
		t.Errorf("latency observations = %d, want 6", got)
	}
}

// TestInstrumentHandlerNilRegistry pins the nil-is-off rule: the handler
// passes through untouched.
func TestInstrumentHandlerNilRegistry(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := InstrumentHandler(nil, "x", inner); got == nil {
		t.Fatal("nil registry returned nil handler")
	}
	rec := httptest.NewRecorder()
	InstrumentHandler(nil, "x", inner).ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 {
		t.Errorf("status = %d", rec.Code)
	}
}

// TestHistogramSnapshotQuantile checks interpolation, clamping, and the
// empty case against hand-computed values.
func TestHistogramSnapshotQuantile(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 100 observations uniform over bins [0,1) and [1,2): 50 each.
	for i := 0; i < 50; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("p50 = %v, want 1.0 (boundary of the two bins)", got)
	}
	if got := s.Quantile(0.25); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("p25 = %v, want 0.5 (middle of first bin)", got)
	}
	if got := s.Quantile(1); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("p100 = %v, want 2.0 (upper edge of last occupied bin)", got)
	}
	if got := s.Quantile(-1); got != s.Quantile(0) {
		t.Errorf("q<0 not clamped: %v vs %v", got, s.Quantile(0))
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

// TestInstrumentHandlerExemplar pins the exemplar wiring: the slowest
// labeled request's label survives into the snapshot, faster and
// unlabeled requests never displace it, and merging snapshots keeps the
// worst side.
func TestInstrumentHandlerExemplar(t *testing.T) {
	reg := NewRegistry()
	var label string
	h := InstrumentHandlerExemplar(reg, "rounds", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if label == "slow-trace" {
			time.Sleep(20 * time.Millisecond)
		}
	}), func(r *http.Request) string { return label })

	for _, l := range []string{"fast-trace", "slow-trace", "", "fast-trace-2"} {
		label = l
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/x/rounds", nil))
	}
	snap := reg.Snapshot()
	hist := snap.Histograms[HTTPMetricPrefix+"rounds"+HTTPSuffixSeconds]
	if hist.Count != 4 {
		t.Fatalf("latency observations = %d, want 4", hist.Count)
	}
	if hist.ExemplarLabel != "slow-trace" {
		t.Fatalf("exemplar label = %q, want the slowest request's %q", hist.ExemplarLabel, "slow-trace")
	}
	if hist.ExemplarValue < 0.02 {
		t.Fatalf("exemplar value = %v, want ≥ the 20ms sleep", hist.ExemplarValue)
	}

	// Merge keeps the worse exemplar from either side.
	other := HistogramSnapshot{Lo: hist.Lo, Hi: hist.Hi, Counts: make([]uint64, len(hist.Counts)),
		ExemplarValue: hist.ExemplarValue * 2, ExemplarLabel: "worse-trace"}
	merged, err := hist.Merge(other)
	if err != nil {
		t.Fatal(err)
	}
	if merged.ExemplarLabel != "worse-trace" {
		t.Fatalf("merged exemplar = %q, want %q", merged.ExemplarLabel, "worse-trace")
	}
	merged2, err := other.Merge(hist)
	if err != nil {
		t.Fatal(err)
	}
	if merged2.ExemplarLabel != "worse-trace" {
		t.Fatalf("merge is not symmetric on exemplars: %q", merged2.ExemplarLabel)
	}
}

// TestObserveExemplarConcurrent pins the max-keeping CAS under
// contention: after racing observers, the retained exemplar is the
// global maximum.
func TestObserveExemplarConcurrent(t *testing.T) {
	h, err := NewHistogram(0, 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v := float64(w*1000 + i)
				h.ObserveExemplar(v, strconv.Itoa(int(v)))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.ExemplarValue != 7999 || s.ExemplarLabel != "7999" {
		t.Fatalf("exemplar = (%v, %q), want (7999, \"7999\")", s.ExemplarValue, s.ExemplarLabel)
	}
	var nilH *Histogram
	nilH.ObserveExemplar(1, "x") // nil-is-off
	h.ObserveExemplar(math.NaN(), "nan")
	if got := h.Snapshot().ExemplarLabel; got != "7999" {
		t.Fatalf("NaN displaced the exemplar: %q", got)
	}
}
