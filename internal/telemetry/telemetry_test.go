package telemetry_test

import (
	"bytes"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dyncontract/internal/stats"
	"dyncontract/internal/telemetry"
)

func TestCounter(t *testing.T) {
	var c telemetry.Counter
	if got := c.Value(); got != 0 {
		t.Fatalf("zero counter reads %d, want 0", got)
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("after Inc+Add(41): %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	var g telemetry.Gauge
	if got := g.Value(); got != 0 {
		t.Fatalf("zero gauge reads %v, want 0", got)
	}
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("after Set(2.5)+Add(-1): %v, want 1.5", got)
	}
	g.Set(math.Inf(1))
	if !math.IsInf(g.Value(), 1) {
		t.Fatalf("gauge should round-trip +Inf, got %v", g.Value())
	}
}

func TestHistogramObserve(t *testing.T) {
	h, err := telemetry.NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-3, 0, 1.9, 2, 9.999, 10, 25, math.NaN()} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// NaN dropped; -3 clamps into bin 0; 10 and 25 clamp into the last bin.
	wantCounts := []uint64{3, 1, 0, 0, 3}
	if len(s.Counts) != len(wantCounts) {
		t.Fatalf("bins = %d, want %d", len(s.Counts), len(wantCounts))
	}
	for i, want := range wantCounts {
		if s.Counts[i] != want {
			t.Errorf("bin %d = %d, want %d (counts %v)", i, s.Counts[i], want, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Errorf("Count = %d, want 7 (NaN must be dropped)", s.Count)
	}
	wantSum := -3 + 0 + 1.9 + 2 + 9.999 + 10 + 25
	if math.Abs(s.Sum-wantSum) > 1e-12 {
		t.Errorf("Sum = %v, want %v", s.Sum, wantSum)
	}
	if got, want := s.Mean(), wantSum/7; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
}

func TestNewHistogramErrors(t *testing.T) {
	cases := []struct {
		name   string
		lo, hi float64
		bins   int
	}{
		{"zero bins", 0, 1, 0},
		{"negative bins", 0, 1, -3},
		{"lo == hi", 2, 2, 4},
		{"lo > hi", 3, 1, 4},
		{"NaN bound", math.NaN(), 1, 4},
		{"infinite bound", 0, math.Inf(1), 4},
	}
	for _, tc := range cases {
		if _, err := telemetry.NewHistogram(tc.lo, tc.hi, tc.bins); err == nil {
			t.Errorf("%s: NewHistogram(%v, %v, %d) succeeded, want error",
				tc.name, tc.lo, tc.hi, tc.bins)
		}
	}
}

// TestHistogramMatchesStats pins the shared bucket-boundary convention: a
// telemetry histogram and a stats.NewHistogram over the same samples must
// land every observation in the same bin.
func TestHistogramMatchesStats(t *testing.T) {
	const lo, hi, bins = -1.0, 3.0, 8
	samples := []float64{-5, -1, -0.999, 0, 0.49999, 0.5, 1.7, 2.999, 3, 3.0001, 100}
	th, err := telemetry.NewHistogram(lo, hi, bins)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range samples {
		th.Observe(v)
	}
	sh, err := stats.NewHistogram(samples, lo, hi, bins)
	if err != nil {
		t.Fatal(err)
	}
	ts := th.Snapshot()
	for i := range sh.Counts {
		if uint64(sh.Counts[i]) != ts.Counts[i] {
			t.Errorf("bin %d: telemetry=%d stats=%d (conventions diverged)",
				i, ts.Counts[i], sh.Counts[i])
		}
	}
}

func TestNilSafety(t *testing.T) {
	// Everything on Nop and the handles it returns must be a no-op, not a
	// panic: this is the "telemetry disabled" path every instrumented
	// package takes by default.
	reg := telemetry.Nop
	c := reg.Counter("dyncontract_test_total")
	g := reg.Gauge("dyncontract_test_level")
	h := reg.Histogram("dyncontract_test_seconds", 0, 1, 10)
	if c != nil || g != nil || h != nil {
		t.Fatalf("Nop handles must be nil, got %v %v %v", c, g, h)
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(2)
	h.Observe(0.5)
	reg.RegisterCounter("dyncontract_test_adopted_total", &telemetry.Counter{})
	reg.RegisterGauge("dyncontract_test_adopted", &telemetry.Gauge{})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read zero")
	}
	s := reg.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("Nop snapshot not empty: %+v", s)
	}
	if got := (telemetry.Histogram{}); got.Count() != 0 {
		t.Fatalf("zero histogram Count = %d", got.Count())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := telemetry.NewRegistry()
	if c1, c2 := reg.Counter("a_total"), reg.Counter("a_total"); c1 != c2 {
		t.Fatal("same counter name must return the same handle")
	}
	if g1, g2 := reg.Gauge("b"), reg.Gauge("b"); g1 != g2 {
		t.Fatal("same gauge name must return the same handle")
	}
	h1 := reg.Histogram("c_seconds", 0, 1, 4)
	h2 := reg.Histogram("c_seconds", 0, 99, 7) // existing name: layout ignored
	if h1 != h2 {
		t.Fatal("same histogram name must return the same handle")
	}
	if s := h2.Snapshot(); s.Hi != 1 || len(s.Counts) != 4 {
		t.Fatalf("first layout must win, got [%v,%v)x%d", s.Lo, s.Hi, len(s.Counts))
	}
}

func TestRegistryInvalidName(t *testing.T) {
	reg := telemetry.NewRegistry()
	for _, bad := range []string{"", "9lives", "has space", "dash-ed", "é"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Counter(%q) did not panic", bad)
				}
			}()
			reg.Counter(bad)
		}()
	}
}

func TestRegisterReplaces(t *testing.T) {
	reg := telemetry.NewRegistry()
	first := &telemetry.Counter{}
	first.Add(7)
	reg.RegisterCounter("x_total", first)
	second := &telemetry.Counter{}
	second.Add(3)
	reg.RegisterCounter("x_total", second)
	if got := reg.Snapshot().Counters["x_total"]; got != 3 {
		t.Fatalf("last registration must win: snapshot reads %d, want 3", got)
	}
	g := &telemetry.Gauge{}
	g.Set(2)
	reg.RegisterGauge("y", g)
	if got := reg.Snapshot().Gauges["y"]; got != 2 {
		t.Fatalf("adopted gauge reads %v, want 2", got)
	}
}

func TestConcurrency(t *testing.T) {
	reg := telemetry.NewRegistry()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("dyncontract_test_ops_total")
			g := reg.Gauge("dyncontract_test_level")
			h := reg.Histogram("dyncontract_test_dur_seconds", 0, 1, 10)
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j%10) / 10)
				if j%100 == 0 {
					reg.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := reg.Snapshot()
	if got := s.Counters["dyncontract_test_ops_total"]; got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := s.Gauges["dyncontract_test_level"]; got != goroutines*perG {
		t.Errorf("gauge = %v, want %d (Add must be atomic)", got, goroutines*perG)
	}
	hs := s.Histograms["dyncontract_test_dur_seconds"]
	if hs.Count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", hs.Count, goroutines*perG)
	}
	var binTotal uint64
	for _, c := range hs.Counts {
		binTotal += c
	}
	if binTotal != hs.Count {
		t.Errorf("bin total %d != count %d", binTotal, hs.Count)
	}
}

// TestZeroAllocHotPath pins the acceptance criterion: the warm per-round
// metrics path — Add/Set/Observe on resolved handles — allocates nothing.
func TestZeroAllocHotPath(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("dyncontract_test_total")
	g := reg.Gauge("dyncontract_test_level")
	h := reg.Histogram("dyncontract_test_seconds", 0, 1, 50)
	if n := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Set(0.5)
		h.Observe(0.123)
	}); n != 0 {
		t.Fatalf("warm path allocates %v objects per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		telemetry.Nop.Counter("x_total").Inc()
	}); n != 0 {
		t.Fatalf("Nop path allocates %v objects per op, want 0", n)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := telemetry.Snapshot{
		Counters: map[string]uint64{"n_total": 2, "only_a_total": 1},
		Gauges:   map[string]float64{"level": 1, "only_a": 5},
		Histograms: map[string]telemetry.HistogramSnapshot{
			"d_seconds": {Lo: 0, Hi: 1, Counts: []uint64{1, 0}, Count: 1, Sum: 0.2},
		},
	}
	b := telemetry.Snapshot{
		Counters: map[string]uint64{"n_total": 3},
		Gauges:   map[string]float64{"level": 9},
		Histograms: map[string]telemetry.HistogramSnapshot{
			"d_seconds": {Lo: 0, Hi: 1, Counts: []uint64{0, 2}, Count: 2, Sum: 1.4},
			"e_seconds": {Lo: 0, Hi: 2, Counts: []uint64{1}, Count: 1, Sum: 0.5},
		},
	}
	m, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters["n_total"] != 5 || m.Counters["only_a_total"] != 1 {
		t.Errorf("counters must add: %+v", m.Counters)
	}
	if m.Gauges["level"] != 9 || m.Gauges["only_a"] != 5 {
		t.Errorf("later gauge must win, earlier-only kept: %+v", m.Gauges)
	}
	d := m.Histograms["d_seconds"]
	if d.Count != 3 || d.Counts[0] != 1 || d.Counts[1] != 2 || math.Abs(d.Sum-1.6) > 1e-12 {
		t.Errorf("histogram merge wrong: %+v", d)
	}
	if e := m.Histograms["e_seconds"]; e.Count != 1 {
		t.Errorf("histogram present only on one side must carry over: %+v", e)
	}

	// Layout mismatch must fail loudly, naming the metric.
	b.Histograms["d_seconds"] = telemetry.HistogramSnapshot{Lo: 0, Hi: 2, Counts: []uint64{0, 2}, Count: 2, Sum: 1.4}
	if _, err := a.Merge(b); err == nil || !strings.Contains(err.Error(), "d_seconds") {
		t.Fatalf("mismatched layouts: err = %v, want mention of d_seconds", err)
	}
}

func TestWriteText(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("dyncontract_test_rounds_total").Add(3)
	reg.Gauge("dyncontract_test_utility").Set(-1.25)
	h := reg.Histogram("dyncontract_test_dur_seconds", 0, 1, 4)
	for _, v := range []float64{0.1, 0.3, 0.3, 2.0} {
		h.Observe(v)
	}
	h.ObserveExemplar(2.5, "deadbeef-trace")
	var buf bytes.Buffer
	if err := telemetry.WriteText(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		"# TYPE dyncontract_test_rounds_total counter\n",
		"dyncontract_test_rounds_total 3\n",
		"# TYPE dyncontract_test_utility gauge\n",
		"dyncontract_test_utility -1.25\n",
		"# TYPE dyncontract_test_dur_seconds histogram\n",
		`dyncontract_test_dur_seconds_bucket{le="0.25"} 1` + "\n",
		`dyncontract_test_dur_seconds_bucket{le="0.5"} 3` + "\n",
		`dyncontract_test_dur_seconds_bucket{le="0.75"} 3` + "\n",
		`dyncontract_test_dur_seconds_bucket{le="+Inf"} 5` + "\n",
		"dyncontract_test_dur_seconds_sum 5.2",
		"dyncontract_test_dur_seconds_count 5\n",
		"# EXEMPLAR dyncontract_test_dur_seconds 2.5 deadbeef-trace\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q\n---\n%s", want, got)
		}
	}
	assertPrometheusText(t, got)
}

// assertPrometheusText checks every line of a text exposition against the
// format's line grammar: comments start with #, samples are
// "name[{labels}] value" with a parseable float value.
func assertPrometheusText(t *testing.T, text string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Errorf("malformed TYPE line %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("unknown metric type in %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "# EXEMPLAR ") {
			// "# EXEMPLAR <name> <value> <label>" — parsers skip comments;
			// we still insist the value is a float.
			parts := strings.Fields(line)
			if len(parts) != 5 {
				t.Errorf("malformed EXEMPLAR line %q", line)
				continue
			}
			if _, err := strconv.ParseFloat(parts[3], 64); err != nil {
				t.Errorf("EXEMPLAR line %q: value %q is not a float: %v", line, parts[3], err)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Errorf("sample line %q has no value", line)
			continue
		}
		name, value := line[:sp], line[sp+1:]
		if name == "" {
			t.Errorf("sample line %q has no name", line)
		}
		if brace := strings.IndexByte(name, '{'); brace >= 0 && !strings.HasSuffix(name, "}") {
			t.Errorf("unbalanced labels in %q", line)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Errorf("sample %q: value %q is not a float: %v", line, value, err)
		}
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("dyncontract_test_total")
	reg.Gauge("dyncontract_test_nan").Set(math.NaN())
	reg.Gauge("dyncontract_test_level").Set(4.5)
	var buf bytes.Buffer
	sink := telemetry.NewJSONLSink(&buf)
	for i := 0; i < 3; i++ {
		c.Inc()
		if err := sink.Write(reg.Snapshot()); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for i, line := range lines {
		var rec telemetry.JSONLRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if _, err := time.Parse(time.RFC3339Nano, rec.TS); err != nil {
			t.Errorf("line %d: bad timestamp %q: %v", i, rec.TS, err)
		}
		if got := rec.Counters["dyncontract_test_total"]; got != uint64(i+1) {
			t.Errorf("line %d: counter = %d, want %d", i, got, i+1)
		}
		if got := rec.Gauges["dyncontract_test_level"]; got != 4.5 {
			t.Errorf("line %d: gauge = %v, want 4.5", i, got)
		}
		if _, present := rec.Gauges["dyncontract_test_nan"]; present {
			t.Errorf("line %d: NaN gauge must be dropped, got %v", i, rec.Gauges)
		}
	}
}

func TestTimer(t *testing.T) {
	tm := telemetry.StartTimer()
	time.Sleep(2 * time.Millisecond)
	el := tm.Elapsed()
	if el < time.Millisecond {
		t.Fatalf("Elapsed = %v, want ≥ 1ms", el)
	}
	if s := tm.Seconds(); s < el.Seconds() {
		t.Fatalf("Seconds (%v) went backwards relative to Elapsed (%v)", s, el.Seconds())
	}
}
