// Command contractd serves long-lived contract-design sessions over the
// versioned JSON API of internal/server: create a session (synthetic or
// explicit population), advance rounds, run design-only queries (coalesced
// into micro-batches), and drift the population between rounds.
//
// Usage:
//
//	contractd [-listen addr] [-batch-window d] [-batch-max n]
//	          [-queue n] [-design-queue n] [-max-inflight n]
//	          [-max-sessions n] [-timeout d] [-drain-timeout d]
//	          [-log-level debug|info|warn|error] [-log-format text|json]
//	          [-trace] [-trace-sample p] [-trace-out file]
//	          [-journal-dir dir] [-journal-sync buffered|fsync]
//	          [-snapshot-every n]
//
// With -journal-dir, sessions are durable: every command is written ahead
// to a per-session log under the directory, snapshots (forced via
// POST /v1/sessions/{id}/snapshot or automatic every -snapshot-every
// commands) compact it, and a restart with the same directory recovers
// every journaled session with a byte-identical ledger before listening.
// -journal-sync picks the durability level: buffered (default, write-behind
// flushed when the session goes idle — survives kill -9 up to the flushed
// prefix) or fsync (every command fsynced before it executes — a served
// response implies a durable record).
//
// The server exposes /metrics (Prometheus text) and /debug/pprof/ beside
// the API; with -trace it also records execution spans — HTTP route →
// session queue → engine round → stages → shards — serves them at
// /debug/traces, and writes the retained traces to -trace-out on exit
// (.json gets Chrome trace_event format for Perfetto). Every request is
// logged through log/slog with its route, status, duration, session, and
// trace ID. On SIGINT/SIGTERM it drains: in-flight work completes, queued
// work is answered 503, then the listener closes and the per-route request
// statistics are printed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dyncontract/internal/journal"
	"dyncontract/internal/obs"
	"dyncontract/internal/server"
	"dyncontract/internal/telemetry"
)

// testHookReady, when set by a test, is called with the bound address and
// a function that triggers the same drain-and-exit path as SIGTERM.
var testHookReady func(addr string, shutdown func())

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "contractd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("contractd", flag.ContinueOnError)
	var (
		listen       = fs.String("listen", "127.0.0.1:8080", "listen address")
		batchWindow  = fs.Duration("batch-window", 2*time.Millisecond, "design micro-batch window")
		batchMax     = fs.Int("batch-max", 64, "design micro-batch size trigger")
		cmdQueue     = fs.Int("queue", 16, "per-session round/drift queue bound")
		designQueue  = fs.Int("design-queue", 1024, "per-session design-query queue bound")
		maxInFlight  = fs.Int("max-inflight", 256, "per-session in-flight request cap")
		maxSessions  = fs.Int("max-sessions", 64, "live session cap")
		timeout      = fs.Duration("timeout", 30*time.Second, "per-request server-side deadline")
		drainTimeout = fs.Duration("drain-timeout", 15*time.Second, "graceful drain deadline on shutdown")
		logLevel     = fs.String("log-level", "info", "minimum log level: debug, info, warn, or error")
		logFormat    = fs.String("log-format", "text", "log line format: text or json")
		journalDir   = fs.String("journal-dir", "", "session journal directory (empty = durability off)")
		journalSync  = fs.String("journal-sync", "buffered", "journal durability: buffered or fsync")
		snapEvery    = fs.Int("snapshot-every", 1024, "auto-snapshot a session after this many commands (0 = manual only)")
		traceFlags   obs.TraceFlags
	)
	traceFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := buildLogger(out, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	tracer, recorder := traceFlags.Build()

	reg := telemetry.NewRegistry()
	var store *journal.Store
	if *journalDir != "" {
		mode, err := journal.ParseMode(*journalSync)
		if err != nil {
			return err
		}
		if store, err = journal.Open(*journalDir, journal.Options{Mode: mode, Metrics: reg}); err != nil {
			return err
		}
	}
	srv := server.New(server.Config{
		BatchWindow:    *batchWindow,
		BatchMax:       *batchMax,
		CommandQueue:   *cmdQueue,
		DesignQueue:    *designQueue,
		MaxInFlight:    *maxInFlight,
		MaxSessions:    *maxSessions,
		RequestTimeout: *timeout,
		Metrics:        reg,
		Tracer:         tracer,
		Logger:         logger,
		Journal:        store,
		SnapshotEvery:  *snapEvery,
	})
	if store != nil {
		logger.Info("journal open", "dir", store.Dir(), "sync", store.Mode().String(), "snapshot_every", *snapEvery)
		start := time.Now()
		stats, err := srv.Recover()
		if err != nil {
			return fmt.Errorf("recover: %w", err)
		}
		if stats.Sessions+stats.Failed > 0 {
			logger.Info("recovery complete",
				"sessions", stats.Sessions,
				"replayed", stats.Replayed,
				"failed", stats.Failed,
				"duration", time.Since(start),
			)
		}
	}

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	endpoints := "metrics at /metrics, pprof at /debug/pprof/"
	if recorder != nil {
		endpoints += ", traces at /debug/traces"
	}
	logger.Info("listening on http://"+lis.Addr().String(), "endpoints", endpoints)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if testHookReady != nil {
		testHookReady(lis.Addr().String(), stop)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(lis) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	logger.Info("draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Warn("drain incomplete", "err", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := traceFlags.Export(recorder); err != nil {
		logger.Warn("trace export failed", "err", err)
	} else if traceFlags.Out != "" {
		logger.Info("traces written", "path", traceFlags.Out)
	}

	obs.FprintHTTPStats(out, obs.HTTPStatsFrom(reg.Snapshot()))
	logger.Info("bye")
	return nil
}

// buildLogger assembles the process logger from the -log-level and
// -log-format flags.
func buildLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}
