package engine

import (
	"dyncontract/internal/contract"
	"dyncontract/internal/telemetry"
)

// Metric names exported by the engine, following the repo-wide
// dyncontract_<pkg>_<name> scheme (DESIGN.md § Telemetry). Stage
// histograms observe seconds; round gauges are overwritten every round
// and read as "latest round" levels.
const (
	// MetricRounds counts completed rounds.
	MetricRounds = "dyncontract_engine_rounds_total"
	// MetricOutcomes counts per-agent outcomes across all rounds.
	MetricOutcomes = "dyncontract_engine_outcomes_total"
	// MetricRoundUtility is the latest round's requester utility (Eq. 7).
	MetricRoundUtility = "dyncontract_engine_round_utility"
	// MetricRoundBenefit is the latest round's Σ w_i·q_i.
	MetricRoundBenefit = "dyncontract_engine_round_benefit"
	// MetricRoundCompensation is the latest round's total worker pay
	// (the requester's Cost).
	MetricRoundCompensation = "dyncontract_engine_round_compensation"
	// MetricRoundWorkerUtility is the latest round's summed worker
	// utility over accepting agents (only exported by instrumented
	// engines — observers cannot reconstruct it from the ledger).
	MetricRoundWorkerUtility = "dyncontract_engine_round_worker_utility"
	// MetricRoundDeclined / MetricRoundExcluded count the latest round's
	// declined and excluded agents.
	MetricRoundDeclined = "dyncontract_engine_round_declined"
	MetricRoundExcluded = "dyncontract_engine_round_excluded"
	// MetricRoundAgents is the latest round's population size.
	MetricRoundAgents = "dyncontract_engine_round_agents"

	// Per-stage timings of one engine round (histograms, seconds):
	// contract design (the Policy.Contracts call), worker best-response,
	// outcome settlement (ledger accounting), and observer dispatch.
	MetricStageDesignSeconds  = "dyncontract_engine_stage_design_seconds"
	MetricStageRespondSeconds = "dyncontract_engine_stage_respond_seconds"
	MetricStageSettleSeconds  = "dyncontract_engine_stage_settle_seconds"
	MetricStageObserveSeconds = "dyncontract_engine_stage_observe_seconds"
	// MetricRoundSeconds times the whole round.
	MetricRoundSeconds = "dyncontract_engine_round_seconds"

	// Design-cache counters (adopted from Cache via ExportTo; Stats()
	// remains a thin view over the same counters).
	MetricCacheHits    = "dyncontract_engine_cache_hits_total"
	MetricCacheMisses  = "dyncontract_engine_cache_misses_total"
	MetricCacheEntries = "dyncontract_engine_cache_entries"

	// Respond-memo counters (adopted from RespondMemo via ExportTo,
	// mirroring the design cache's wiring). Misses count BestResponse
	// calls the respond stage actually performed; hits count distinct
	// (fingerprint, contract) keys per round served from the memo.
	MetricRespondHits    = "dyncontract_engine_respond_hits_total"
	MetricRespondMisses  = "dyncontract_engine_respond_misses_total"
	MetricRespondEntries = "dyncontract_engine_respond_entries"

	// MetricShards is the sharded pipeline's current shard count — the
	// effective value after clamping Config.Shards to the population size;
	// it stays 0 on sequential (Shards = 0) engines.
	MetricShards = "dyncontract_engine_shards"
	// Per-shard stage timings (histograms, seconds): the sharded pipeline
	// observes one design and one executed respond duration per shard per
	// round, so shard counts multiply the observation rate of the
	// corresponding whole-stage histograms. Warm rounds skip shard respond
	// entirely, which shows up as a shard-respond count below
	// shards × rounds.
	MetricShardDesignSeconds  = "dyncontract_engine_shard_design_seconds"
	MetricShardRespondSeconds = "dyncontract_engine_shard_respond_seconds"

	// Sparse-drift instrumentation (see DESIGN.md "Drift scopes").
	// MetricDriftTouchedAgents counts agents named by consumed sparse
	// scopes (Population.Touch); Bump and legacy Drift-hook rounds count
	// nothing here — they take the full-rebuild path.
	MetricDriftTouchedAgents = "dyncontract_engine_drift_touched_agents"
	// MetricDriftShardsRebuilt / MetricDriftShardsSkipped count, per
	// sparse refresh, the shards that owned a touched agent (epoch
	// bumped, views refreshed) vs the shards left on their warm path.
	MetricDriftShardsRebuilt = "dyncontract_engine_drift_shards_rebuilt_total"
	MetricDriftShardsSkipped = "dyncontract_engine_drift_shards_skipped_total"
	// MetricDriftRebuildSeconds times each sparse refresh (histogram,
	// seconds) — the cost a full view rebuild was traded for.
	MetricDriftRebuildSeconds = "dyncontract_engine_drift_rebuild_seconds"
	// MetricDriftJoins / MetricDriftLeaves count agents spliced in or out
	// by consumed structural scopes (Population.TouchJoin / TouchLeave).
	// Misdeclared scopes that escalate to a full rebuild count nothing.
	MetricDriftJoins  = "dyncontract_engine_drift_joins_total"
	MetricDriftLeaves = "dyncontract_engine_drift_leaves_total"
	// MetricDriftCompactions counts deferred outcome-slot compactions —
	// the batched renumbering that folds accumulated leave tombstones
	// back into the identity slot mapping (engine.compact span).
	MetricDriftCompactions = "dyncontract_engine_drift_compactions_total"
)

// Stage-timing histograms bin uniformly over [0, 250ms) in 5ms steps —
// the stats.Histogram bucket convention (out-of-range observations clamp
// into the edge bins; exact sums ride alongside, so means are not
// quantized). A warm deduplicated round sits in the first bin; a cold
// 1k-agent per-agent design round (~11ms, BENCH_engine.json) is resolved
// to its bin.
const (
	stageSecondsLo   = 0
	stageSecondsHi   = 0.25
	stageSecondsBins = 50
)

// stageMetrics holds the engine's pre-resolved instrument handles; one
// registry lookup per metric at construction, zero allocations per round
// afterwards.
type stageMetrics struct {
	design, respond, settle, observe, round *telemetry.Histogram
	shardDesign, shardRespond               *telemetry.Histogram
	driftRebuild                            *telemetry.Histogram
	workerUtility, shards                   *telemetry.Gauge
	driftTouched                            *telemetry.Counter
	driftShardsRebuilt, driftShardsSkipped  *telemetry.Counter
	driftJoins, driftLeaves                 *telemetry.Counter
	driftCompactions                        *telemetry.Counter
}

func newStageMetrics(reg *telemetry.Registry) *stageMetrics {
	return &stageMetrics{
		design:             reg.Histogram(MetricStageDesignSeconds, stageSecondsLo, stageSecondsHi, stageSecondsBins),
		respond:            reg.Histogram(MetricStageRespondSeconds, stageSecondsLo, stageSecondsHi, stageSecondsBins),
		settle:             reg.Histogram(MetricStageSettleSeconds, stageSecondsLo, stageSecondsHi, stageSecondsBins),
		observe:            reg.Histogram(MetricStageObserveSeconds, stageSecondsLo, stageSecondsHi, stageSecondsBins),
		round:              reg.Histogram(MetricRoundSeconds, stageSecondsLo, stageSecondsHi, stageSecondsBins),
		shardDesign:        reg.Histogram(MetricShardDesignSeconds, stageSecondsLo, stageSecondsHi, stageSecondsBins),
		shardRespond:       reg.Histogram(MetricShardRespondSeconds, stageSecondsLo, stageSecondsHi, stageSecondsBins),
		driftRebuild:       reg.Histogram(MetricDriftRebuildSeconds, stageSecondsLo, stageSecondsHi, stageSecondsBins),
		workerUtility:      reg.Gauge(MetricRoundWorkerUtility),
		shards:             reg.Gauge(MetricShards),
		driftTouched:       reg.Counter(MetricDriftTouchedAgents),
		driftShardsRebuilt: reg.Counter(MetricDriftShardsRebuilt),
		driftShardsSkipped: reg.Counter(MetricDriftShardsSkipped),
		driftJoins:         reg.Counter(MetricDriftJoins),
		driftLeaves:        reg.Counter(MetricDriftLeaves),
		driftCompactions:   reg.Counter(MetricDriftCompactions),
	}
}

// MetricsUser is implemented by policies that can route their internals
// (e.g. the solver fan-out) through a telemetry registry. Engine wires
// Config.Metrics into the policy at construction when implemented,
// mirroring CacheUser.
type MetricsUser interface {
	UseMetrics(*telemetry.Registry)
}

// telemetryObserver exports the round ledger into a registry; see
// TelemetryObserver.
type telemetryObserver struct {
	rounds, outcomes               *telemetry.Counter
	utility, benefit, compensation *telemetry.Gauge
	declined, excluded, agents     *telemetry.Gauge
}

// TelemetryObserver returns a ready-made Observer that exports per-round
// ledger metrics (requester utility/benefit/compensation gauges,
// declined/excluded counts, rounds and outcomes totals) into reg. Stack
// it alongside your own observers when you control only the observer
// list; engines constructed with Config.Metrics set export the same
// metrics directly, so do not also stack it there — the round counters
// would double. It never mutates the round and never returns an error,
// so stacking it cannot alter a run's ledger or termination.
func TelemetryObserver(reg *telemetry.Registry) Observer {
	return newTelemetryObserver(reg)
}

func newTelemetryObserver(reg *telemetry.Registry) *telemetryObserver {
	return &telemetryObserver{
		rounds:       reg.Counter(MetricRounds),
		outcomes:     reg.Counter(MetricOutcomes),
		utility:      reg.Gauge(MetricRoundUtility),
		benefit:      reg.Gauge(MetricRoundBenefit),
		compensation: reg.Gauge(MetricRoundCompensation),
		declined:     reg.Gauge(MetricRoundDeclined),
		excluded:     reg.Gauge(MetricRoundExcluded),
		agents:       reg.Gauge(MetricRoundAgents),
	}
}

// OnContracts implements Observer.
func (t *telemetryObserver) OnContracts(int, map[string]*contract.PiecewiseLinear) {}

// OnOutcome implements Observer.
func (t *telemetryObserver) OnOutcome(int, AgentOutcome) {}

// OnRoundEnd implements Observer.
func (t *telemetryObserver) OnRoundEnd(round Round) error {
	var declined, excluded int
	for i := range round.Outcomes {
		if round.Outcomes[i].Declined {
			declined++
		}
		if round.Outcomes[i].Excluded {
			excluded++
		}
	}
	t.rounds.Inc()
	t.outcomes.Add(uint64(len(round.Outcomes)))
	t.utility.Set(round.Utility)
	t.benefit.Set(round.Benefit)
	t.compensation.Set(round.Cost)
	t.declined.Set(float64(declined))
	t.excluded.Set(float64(excluded))
	t.agents.Set(float64(len(round.Outcomes)))
	return nil
}
