// Package replay validates the fitted model against the trace it was
// fitted from: it replays every review's observed effort through the
// class effort function ψ and scores the predicted feedback against the
// observed upvotes.
//
// This is the calibration check §IV-B leaves implicit: Table III's NoR
// says the quadratic fits as well as higher orders, but not how well in
// absolute terms. Replay reports per-class mean absolute error, bias, and
// the fraction of reviews whose feedback is predicted within a tolerance —
// the numbers a practitioner needs before trusting designed contracts on
// real workers.
package replay

import (
	"errors"
	"fmt"
	"math"

	"dyncontract/internal/effort"
	"dyncontract/internal/stats"
)

// ErrBadInput is returned for invalid calibration input.
var ErrBadInput = errors.New("replay: invalid input")

// Calibration scores one class's fitted ψ against observations.
type Calibration struct {
	// N is the number of scored reviews.
	N int
	// MAE is the mean absolute error of ψ(effort) vs observed feedback.
	MAE float64
	// Bias is the mean signed error (predicted − observed); near zero for
	// an unbiased fit.
	Bias float64
	// RMSE is the root-mean-square error.
	RMSE float64
	// Within1 is the fraction of reviews predicted within ±1 feedback
	// unit (one upvote).
	Within1 float64
	// BaselineMAE is the MAE of the constant predictor (mean feedback),
	// the floor any useful model must beat.
	BaselineMAE float64
	// Correlation is the Pearson correlation between predictions and
	// observations (0 when undefined, e.g. constant predictions).
	Correlation float64
}

// Skill returns 1 − MAE/BaselineMAE: positive when the model beats the
// constant predictor, 1 for a perfect fit.
func (c Calibration) Skill() float64 {
	if c.BaselineMAE == 0 {
		return 0
	}
	return 1 - c.MAE/c.BaselineMAE
}

// Score replays (effort, feedback) observations through ψ and computes
// calibration statistics.
func Score(psi effort.Function, efforts, feedbacks []float64) (Calibration, error) {
	if len(efforts) != len(feedbacks) {
		return Calibration{}, fmt.Errorf("%d efforts vs %d feedbacks: %w", len(efforts), len(feedbacks), ErrBadInput)
	}
	if len(efforts) == 0 {
		return Calibration{}, fmt.Errorf("no observations: %w", ErrBadInput)
	}
	var meanFb float64
	for i := range efforts {
		if math.IsNaN(efforts[i]) || math.IsNaN(feedbacks[i]) {
			return Calibration{}, fmt.Errorf("NaN at %d: %w", i, ErrBadInput)
		}
		meanFb += feedbacks[i]
	}
	meanFb /= float64(len(feedbacks))

	var absErr, signedErr, sqErr, baseAbs float64
	within := 0
	preds := make([]float64, len(efforts))
	for i := range efforts {
		pred := psi.Eval(efforts[i])
		preds[i] = pred
		err := pred - feedbacks[i]
		absErr += math.Abs(err)
		signedErr += err
		sqErr += err * err
		baseAbs += math.Abs(meanFb - feedbacks[i])
		if math.Abs(err) <= 1 {
			within++
		}
	}
	n := float64(len(efforts))
	corr, err := stats.Correlation(preds, feedbacks)
	if err != nil {
		corr = 0 // undefined (constant predictions or observations)
	}
	return Calibration{
		N:           len(efforts),
		MAE:         absErr / n,
		Bias:        signedErr / n,
		RMSE:        math.Sqrt(sqErr / n),
		Within1:     float64(within) / n,
		BaselineMAE: baseAbs / n,
		Correlation: corr,
	}, nil
}
