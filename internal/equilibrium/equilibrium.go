// Package equilibrium verifies Stackelberg equilibrium properties of
// designed contracts numerically.
//
// §III models the requester-worker interaction as a Stackelberg game: the
// requester (leader) commits to a contract, the worker (follower)
// best-responds. A designed pair (contract, response) is checked on two
// axes:
//
//  1. Follower optimality — no effort level beats the predicted best
//     response (dense grid certificate);
//  2. Leader local optimality — no small monotonicity-preserving
//     perturbation of the contract's knot compensations improves the
//     requester's utility once the worker re-best-responds.
//
// The checks are numerical certificates, not proofs; they complement
// Theorem 4.1's analytic bounds and are used by tests and the ablation
// tooling to audit solver output.
package equilibrium

import (
	"errors"
	"fmt"

	"dyncontract/internal/contract"
	"dyncontract/internal/core"
	"dyncontract/internal/worker"
)

// ErrBadCheck is returned for invalid check parameters.
var ErrBadCheck = errors.New("equilibrium: invalid check parameters")

// Options tunes the verification.
type Options struct {
	// GridPoints is the follower-check grid resolution (≥ 10).
	GridPoints int
	// Step is the leader-check perturbation magnitude on knot
	// compensations (> 0).
	Step float64
	// Tol is the improvement tolerance: violations smaller than Tol are
	// attributed to the discretization and ignored.
	Tol float64
}

// DefaultOptions returns a reasonably strict verification setting.
func DefaultOptions() Options {
	return Options{GridPoints: 4000, Step: 0.05, Tol: 1e-6}
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.GridPoints < 10 {
		return fmt.Errorf("gridPoints=%d < 10: %w", o.GridPoints, ErrBadCheck)
	}
	if !(o.Step > 0) {
		return fmt.Errorf("step=%v must be positive: %w", o.Step, ErrBadCheck)
	}
	if o.Tol < 0 {
		return fmt.Errorf("tol=%v must be non-negative: %w", o.Tol, ErrBadCheck)
	}
	return nil
}

// FollowerReport is the outcome of the follower-optimality check.
type FollowerReport struct {
	// Holds is true when no grid effort beats the predicted response.
	Holds bool
	// BestGridEffort and BestGridUtility describe the best grid point.
	BestGridEffort, BestGridUtility float64
	// PredictedUtility is the utility at the checked response.
	PredictedUtility float64
}

// CheckFollower verifies that the agent cannot improve on the predicted
// effort level anywhere on a dense grid over the feasible range.
func CheckFollower(a *worker.Agent, c *contract.PiecewiseLinear, cfg core.Config, predictedEffort float64, opts Options) (FollowerReport, error) {
	if err := opts.Validate(); err != nil {
		return FollowerReport{}, err
	}
	if err := cfg.Validate(); err != nil {
		return FollowerReport{}, err
	}
	yCap := cfg.Part.YMax()
	if apex := a.Psi.Apex(); apex < yCap {
		yCap = apex
	}
	rep := FollowerReport{
		PredictedUtility: a.Utility(c, predictedEffort),
		BestGridUtility:  a.Utility(c, 0),
	}
	for i := 0; i <= opts.GridPoints; i++ {
		y := float64(i) * yCap / float64(opts.GridPoints)
		if u := a.Utility(c, y); u > rep.BestGridUtility {
			rep.BestGridUtility = u
			rep.BestGridEffort = y
		}
	}
	rep.Holds = rep.BestGridUtility <= rep.PredictedUtility+opts.Tol
	return rep, nil
}

// LeaderReport is the outcome of the leader local-optimality check.
type LeaderReport struct {
	// Holds is true when no tested perturbation improves the requester.
	Holds bool
	// BaseUtility is the requester's utility under the original contract.
	BaseUtility float64
	// BestUtility is the best utility over all tested perturbations
	// (including the original).
	BestUtility float64
	// Improvements counts perturbations beating BaseUtility + Tol.
	Improvements int
	// Tested counts the perturbations evaluated.
	Tested int
}

// CheckLeader perturbs each knot compensation by ±Step (projected back to
// monotone non-negative), lets the agent re-best-respond, and reports
// whether any perturbation improves the requester's utility.
//
// The designed contract is only *near*-optimal (Theorem 4.1), so small
// improvements can legitimately exist; callers choose Tol to express how
// much slack they accept. The k_opt-candidate structure makes large
// first-order improvements a red flag.
func CheckLeader(a *worker.Agent, c *contract.PiecewiseLinear, cfg core.Config, opts Options) (LeaderReport, error) {
	if err := opts.Validate(); err != nil {
		return LeaderReport{}, err
	}
	utility := func(pc *contract.PiecewiseLinear) (float64, error) {
		resp, err := a.BestResponse(pc, cfg.Part)
		if err != nil {
			return 0, err
		}
		return cfg.W*resp.Feedback - cfg.Mu*resp.Compensation, nil
	}
	base, err := utility(c)
	if err != nil {
		return LeaderReport{}, err
	}
	rep := LeaderReport{BaseUtility: base, BestUtility: base}

	knots := c.Knots()
	comps := c.Comps()
	for l := 0; l < len(comps); l++ {
		for _, dir := range []float64{+opts.Step, -opts.Step} {
			perturbed := append([]float64(nil), comps...)
			perturbed[l] += dir
			projectMonotone(perturbed)
			pc, err := contract.New(knots, perturbed)
			if err != nil {
				continue // projection degenerated; skip this direction
			}
			u, err := utility(pc)
			if err != nil {
				return LeaderReport{}, err
			}
			rep.Tested++
			if u > rep.BestUtility {
				rep.BestUtility = u
			}
			if u > base+opts.Tol {
				rep.Improvements++
			}
		}
	}
	rep.Holds = rep.Improvements == 0
	return rep, nil
}

// projectMonotone repairs a compensation vector in place: clamps negatives
// to zero and enforces non-decreasing order left to right.
func projectMonotone(xs []float64) {
	prev := 0.0
	for i := range xs {
		if xs[i] < prev {
			xs[i] = prev
		}
		prev = xs[i]
	}
}

// AuditReport summarizes equilibrium certificates across a population of
// designed contracts.
type AuditReport struct {
	// Checked is the number of results audited.
	Checked int
	// FollowerViolations counts results whose follower certificate failed.
	FollowerViolations int
	// LeaderViolations counts results with improving leader perturbations
	// beyond tolerance.
	LeaderViolations int
}

// Clean reports whether no violation of either kind was found.
func (r AuditReport) Clean() bool {
	return r.FollowerViolations == 0 && r.LeaderViolations == 0
}

// Audit runs both certificates over a batch of designed results. Each
// entry pairs a result with the config it was designed under; entries are
// audited independently and the first hard error aborts.
type AuditEntry struct {
	// Result is the designed contract bundle.
	Result *core.Result
	// Config is the design configuration the result came from.
	Config core.Config
}

// AuditAll checks every entry and tallies violations.
func AuditAll(entries []AuditEntry, opts Options) (AuditReport, error) {
	var rep AuditReport
	for i, e := range entries {
		if e.Result == nil {
			return rep, fmt.Errorf("entry %d has nil result: %w", i, ErrBadCheck)
		}
		fr, err := CheckFollower(e.Result.Agent, e.Result.Contract, e.Config, e.Result.Response.Effort, opts)
		if err != nil {
			return rep, fmt.Errorf("entry %d follower: %w", i, err)
		}
		if !fr.Holds {
			rep.FollowerViolations++
		}
		lr, err := CheckLeader(e.Result.Agent, e.Result.Contract, e.Config, opts)
		if err != nil {
			return rep, fmt.Errorf("entry %d leader: %w", i, err)
		}
		if !lr.Holds {
			rep.LeaderViolations++
		}
		rep.Checked++
	}
	return rep, nil
}
