// Adaptivepricing: contracts adapt round by round as behaviour drifts.
//
// Run with:
//
//	go run ./examples/adaptivepricing
//
// The paper's contracts are dynamic: re-derived every round from updated
// estimates. This example drives the marketplace through a drift scenario
// in which a subset of honest workers gradually turns malicious mid-run
// (their estimated malice probability and requester weight deteriorate),
// and shows the dynamic policy repricing them downward while a static
// (round-0, frozen) contract set keeps overpaying.
package main

import (
	"context"
	"fmt"
	"log"

	"dyncontract/internal/contract"
	"dyncontract/internal/engine"
	"dyncontract/internal/experiments"
	"dyncontract/internal/platform"
	"dyncontract/internal/synth"
	"dyncontract/internal/telemetry"
)

// frozenPolicy designs contracts once and re-serves them forever.
type frozenPolicy struct {
	inner  platform.Policy
	cached map[string]*contract.PiecewiseLinear
}

func (p *frozenPolicy) Name() string { return "frozen-round0" }

func (p *frozenPolicy) Contracts(ctx context.Context, pop *platform.Population) (map[string]*contract.PiecewiseLinear, error) {
	if p.cached == nil {
		c, err := p.inner.Contracts(ctx, pop)
		if err != nil {
			return nil, err
		}
		p.cached = c
	}
	return p.cached, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("adaptivepricing: ")

	pipe, err := experiments.BuildPipeline(synth.SmallScale(31))
	if err != nil {
		log.Fatalf("pipeline: %v", err)
	}
	params := experiments.DefaultParams()

	const rounds = 6
	// Drift: each round, the first few honest workers' weight degrades —
	// the requester's estimators notice them drifting toward bias.
	drift := func(turned []string) func(int, *platform.Population) {
		return func(round int, pop *platform.Population) {
			if round == 0 {
				return
			}
			for _, id := range turned {
				pop.Weights[id] *= 0.55
				if pop.MaliceProb[id] < 0.9 {
					pop.MaliceProb[id] += 0.15
				}
			}
		}
	}

	// The engine's design cache composes with drift: the drifted workers'
	// weights change every round (fresh fingerprints, honest misses) while
	// the stable majority's designs are reused round after round.
	run := func(pol platform.Policy, reg *telemetry.Registry) ([]platform.Round, engine.CacheStats) {
		pop, err := pipe.BuildPopulation(params, 120)
		if err != nil {
			log.Fatalf("population: %v", err)
		}
		var turned []string
		for _, a := range pop.Agents[:4] {
			turned = append(turned, a.ID)
		}
		cache := engine.NewCache()
		ledger, err := engine.RunLedger(context.Background(), pop, engine.Config{
			Policy:  pol,
			Rounds:  rounds,
			Drift:   drift(turned),
			Cache:   cache,
			Metrics: reg,
		})
		if err != nil {
			log.Fatalf("simulate %s: %v", pol.Name(), err)
		}
		return ledger, cache.Stats()
	}

	// The dynamic run carries a telemetry registry (engine.Config.Metrics):
	// per-stage timings, ledger gauges, and the cache counters all land in
	// one snapshot, without changing the simulated ledger.
	reg := telemetry.NewRegistry()
	dynamic, stats := run(&platform.DynamicPolicy{}, reg)
	frozen, _ := run(&frozenPolicy{inner: &platform.DynamicPolicy{}}, telemetry.Nop)

	fmt.Println("four workers drift malicious from round 1 onward")
	fmt.Println("\nround  dynamic-utility  frozen-utility  (dynamic reprices, frozen overpays)")
	for r := 0; r < rounds; r++ {
		fmt.Printf("%5d  %15.2f  %14.2f\n", r, dynamic[r].Utility, frozen[r].Utility)
	}
	fmt.Printf("\ntotals: dynamic %.2f vs frozen %.2f\n",
		platform.TotalUtility(dynamic), platform.TotalUtility(frozen))
	fmt.Printf("dynamic policy design cache: %d hits, %d misses over %d rounds\n",
		stats.Hits, stats.Misses, rounds)

	// What the instrumented run measured: mean per-round stage timings and
	// the registry's view of the cache (identical to stats above — the
	// registry adopts the cache's own counters via ExportTo).
	snap := reg.Snapshot()
	fmt.Println("\ntelemetry (dynamic run):")
	for _, stage := range []struct{ label, metric string }{
		{"design ", engine.MetricStageDesignSeconds},
		{"respond", engine.MetricStageRespondSeconds},
		{"settle ", engine.MetricStageSettleSeconds},
		{"observe", engine.MetricStageObserveSeconds},
		{"round  ", engine.MetricRoundSeconds},
	} {
		h := snap.Histograms[stage.metric]
		fmt.Printf("  %s  mean %8.3f ms over %d rounds\n", stage.label, h.Mean()*1e3, h.Count)
	}
	fmt.Printf("  cache    %d hits, %d misses (registry view)\n",
		snap.Counters[engine.MetricCacheHits], snap.Counters[engine.MetricCacheMisses])

	// Show the repricing on one drifted worker (populations are built
	// deterministically, so the first agent is the same in both runs).
	refPop, err := pipe.BuildPopulation(params, 120)
	if err != nil {
		log.Fatalf("population: %v", err)
	}
	id := refPop.Agents[0].ID
	fmt.Printf("\nper-round pay for drifted worker %s under the dynamic policy:\n  ", id)
	for r := 0; r < rounds; r++ {
		for _, oc := range dynamic[r].Outcomes {
			if oc.AgentID == id {
				fmt.Printf("%.3f ", oc.Compensation)
			}
		}
	}
	fmt.Println()
}
