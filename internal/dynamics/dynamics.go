// Package dynamics analyzes the closed loop of the repeated Stackelberg
// game: beliefs → contracts → best responses → observations → beliefs.
//
// The paper designs each round's contracts from the previous round's
// feedback but does not study whether the coupled system settles. This
// package iterates the loop round by round, measures how much the
// requester's per-worker weights move, and reports whether (and how fast)
// the marketplace reaches a fixed point — the stability story behind
// "dynamic contracts converge to steady-state pricing".
package dynamics

import (
	"context"
	"errors"
	"fmt"
	"math"

	"dyncontract/internal/engine"
	"dyncontract/internal/platform"
	"dyncontract/internal/reputation"
	"dyncontract/internal/telemetry"
)

// ErrBadRun is returned for invalid run parameters.
var ErrBadRun = errors.New("dynamics: invalid run parameters")

// ObservationFunc converts a completed round into tracker observations.
// The default (HonestObservations) assumes behaviour matches the model:
// feedback within expectations, no promotional flags.
type ObservationFunc func(round platform.Round) []reputation.Observation

// HonestObservations reports every included agent as clean with the given
// accuracy distance.
func HonestObservations(dist float64) ObservationFunc {
	return func(round platform.Round) []reputation.Observation {
		obs := make([]reputation.Observation, 0, len(round.Outcomes))
		for _, oc := range round.Outcomes {
			if oc.Excluded {
				continue
			}
			obs = append(obs, reputation.Observation{
				WorkerID:    oc.AgentID,
				ReviewScore: dist,
				ExpertScore: 0,
				Partners:    oc.Size - 1,
			})
		}
		return obs
	}
}

// Config tunes the fixed-point iteration.
type Config struct {
	// MaxRounds bounds the iteration (≥ 2).
	MaxRounds int
	// Tol is the convergence threshold on the max per-worker weight
	// change between consecutive rounds.
	Tol float64
	// Observe converts rounds into tracker observations; nil means
	// HonestObservations(0.3).
	Observe ObservationFunc
	// Metrics, when non-nil, instruments the underlying engine run (see
	// engine.Config.Metrics). The trajectory is identical either way.
	Metrics *telemetry.Registry
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MaxRounds < 2 {
		return fmt.Errorf("maxRounds=%d < 2: %w", c.MaxRounds, ErrBadRun)
	}
	if !(c.Tol > 0) {
		return fmt.Errorf("tol=%v must be positive: %w", c.Tol, ErrBadRun)
	}
	return nil
}

// Result describes the loop's trajectory.
type Result struct {
	// Converged reports whether the weight movement fell below Tol.
	Converged bool
	// Rounds is the number of rounds executed.
	Rounds int
	// ConvergedAt is the first round whose weight delta was below Tol
	// (−1 when never).
	ConvergedAt int
	// WeightDeltas is the max per-worker weight change after each round
	// (length Rounds; the first entry compares round 0's update to the
	// initial beliefs).
	WeightDeltas []float64
	// Utilities is the requester's per-round utility.
	Utilities []float64
	// FinalWeights is the final belief state.
	FinalWeights map[string]float64
}

// Run iterates the closed loop on the population until the weights stop
// moving or MaxRounds is reached. The population's weights and malice
// probabilities are updated in place, exactly as a live deployment would.
//
// The loop runs on internal/engine with a streaming observer: each
// completed round feeds the tracker and refreshes the beliefs before the
// next round's contracts are designed, and no ledger accumulates. A design
// cache is attached, so once the weights settle near the fixed point the
// per-round contract designs dedup to (nearly) zero core.Design calls.
func Run(ctx context.Context, pop *platform.Population, pol platform.Policy, tracker *reputation.Tracker, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tracker == nil {
		return nil, fmt.Errorf("nil tracker: %w", ErrBadRun)
	}
	observe := cfg.Observe
	if observe == nil {
		observe = HonestObservations(0.3)
	}

	res := &Result{ConvergedAt: -1, FinalWeights: make(map[string]float64)}
	hooks := engine.Hooks{
		RoundEnd: func(round platform.Round) error {
			r := round.Index
			res.Utilities = append(res.Utilities, round.Utility)
			if err := tracker.Observe(observe(round)); err != nil {
				return fmt.Errorf("dynamics: observe round %d: %w", r, err)
			}
			// Belief refresh; track the largest movement.
			delta := 0.0
			for _, a := range pop.Agents {
				w, err := tracker.Weight(a.ID)
				if err != nil {
					return fmt.Errorf("dynamics: weight for %s: %w", a.ID, err)
				}
				if d := math.Abs(w - pop.Weights[a.ID]); d > delta {
					delta = d
				}
				pop.Weights[a.ID] = w
				pop.MaliceProb[a.ID] = tracker.MaliceProb(a.ID)
			}
			res.WeightDeltas = append(res.WeightDeltas, delta)
			res.Rounds = r + 1
			if delta < cfg.Tol {
				res.Converged = true
				res.ConvergedAt = r
				return engine.ErrStop
			}
			return nil
		},
	}
	eng, err := engine.New(pop, engine.Config{
		Policy:    pol,
		Rounds:    cfg.MaxRounds,
		Observers: []engine.Observer{hooks},
		Cache:     engine.NewCache(),
		Metrics:   cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	if err := eng.Run(ctx); err != nil {
		return nil, err
	}
	for id, w := range pop.Weights {
		res.FinalWeights[id] = w
	}
	return res, nil
}
