package engine_test

import (
	"context"
	"math"
	"reflect"
	"sync"
	"testing"

	"dyncontract/internal/contract"
	"dyncontract/internal/effort"
	"dyncontract/internal/engine"
	"dyncontract/internal/telemetry"
	"dyncontract/internal/worker"
)

// TestRespondMemoDedup is the acceptance check for the respond memo: on a
// population drawn from three archetypes, a cold round performs exactly as
// many BestResponse calls as there are distinct (fingerprint, contract)
// keys (three — misses count the calls actually made), and warm rounds
// perform zero, hitting once per distinct key per round.
func TestRespondMemoDedup(t *testing.T) {
	pop := archetypePopulation(t, 30)
	cache := engine.NewCache()
	memo := engine.NewRespondMemo()
	ctx := context.Background()

	eng, err := engine.New(pop, engine.Config{Policy: &designPolicy{}, Rounds: 1, Cache: cache, Memo: memo})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(ctx); err != nil {
		t.Fatal(err)
	}
	cold := eng.RespondStats()
	if cold.Misses != 3 {
		t.Errorf("cold round BestResponse calls (misses) = %d, want 3 (= distinct keys)", cold.Misses)
	}
	if cold.Hits != 0 {
		t.Errorf("cold round hits = %d, want 0", cold.Hits)
	}
	if cold.Entries != 3 {
		t.Errorf("entries after cold round = %d, want 3", cold.Entries)
	}

	// Two warm rounds on the same cache+memo: the design cache serves the
	// same contract pointers, so every distinct key hits and nothing is
	// re-solved.
	eng2, err := engine.New(pop, engine.Config{Policy: &designPolicy{}, Rounds: 2, Cache: cache, Memo: memo})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Run(ctx); err != nil {
		t.Fatal(err)
	}
	warm := memo.Stats()
	if warm.Misses != cold.Misses {
		t.Errorf("warm rounds added %d BestResponse calls, want 0", warm.Misses-cold.Misses)
	}
	if want := uint64(2 * 3); warm.Hits != want {
		t.Errorf("warm hits = %d, want %d (distinct keys × rounds)", warm.Hits, want)
	}
}

// TestRespondMemoLedgerIdentical pins the memo as a pure optimization: the
// memoized and parallel routes must reproduce the sequential reference
// ledger exactly — same values, same order — including under weight drift
// that mints fresh fingerprints mid-run.
func TestRespondMemoLedgerIdentical(t *testing.T) {
	ctx := context.Background()
	drift := func(round int, pop *engine.Population) {
		if round == 0 {
			return
		}
		for _, a := range pop.Agents {
			pop.Weights[a.ID] *= 1.05
		}
	}
	run := func(mutate func(*engine.Config)) []engine.Round {
		t.Helper()
		cfg := engine.Config{Policy: &designPolicy{}, Rounds: 4, Drift: drift, Cache: engine.NewCache()}
		mutate(&cfg)
		ledger, err := engine.RunLedger(ctx, archetypePopulation(t, 45), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ledger
	}

	want := run(func(cfg *engine.Config) {}) // sequential reference
	variants := map[string]func(*engine.Config){
		"memo":          func(cfg *engine.Config) { cfg.Memo = engine.NewRespondMemo() },
		"memo+parallel": func(cfg *engine.Config) { cfg.Memo = engine.NewRespondMemo(); cfg.ParallelRespond = 4 },
		"parallel-only": func(cfg *engine.Config) { cfg.ParallelRespond = 4 },
	}
	for name, mutate := range variants {
		if got := run(mutate); !reflect.DeepEqual(got, want) {
			t.Errorf("%s ledger diverges from sequential reference", name)
		}
	}
}

// TestRespondMemoDriftInvalidation pins the key-based invalidation rule:
// a drift that changes an agent's reservation or ψ mints a new design
// fingerprint, so the stale memo entry is never looked up again. A memo
// that (incorrectly) kept serving the round-0 response would reproduce the
// round-0 utility; the real run's utility visibly moves.
func TestRespondMemoDriftInvalidation(t *testing.T) {
	ctx := context.Background()
	psi2, err := effort.NewQuadratic(-0.02, 1.8, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	drift := func(round int, pop *engine.Population) {
		switch round {
		case 1:
			// Raise the outside option: designs re-lift, responses change.
			for _, a := range pop.Agents {
				a.Reservation = 5
			}
		case 2:
			// Change the effort→feedback curve itself.
			for _, a := range pop.Agents {
				a.Psi = psi2
			}
		}
	}
	run := func(memo *engine.RespondMemo) []engine.Round {
		t.Helper()
		cfg := engine.Config{Policy: &designPolicy{}, Rounds: 3, Drift: drift, Cache: engine.NewCache(), Memo: memo}
		ledger, err := engine.RunLedger(ctx, archetypePopulation(t, 30), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ledger
	}

	memo := engine.NewRespondMemo()
	got := run(memo)
	want := run(nil) // memo-free reference
	if !reflect.DeepEqual(got, want) {
		t.Fatal("memoized ledger diverges from memo-free reference under drift")
	}
	if got[1].Utility == got[0].Utility {
		t.Error("reservation drift left Utility unchanged — stale memo entry served?")
	}
	if got[2].Utility == got[1].Utility {
		t.Error("ψ drift left Utility unchanged — stale memo entry served?")
	}
	// Each drifted round mints three fresh keys: 3 cold + 3 + 3.
	if stats := memo.Stats(); stats.Misses != 9 {
		t.Errorf("misses = %d, want 9 (3 archetypes × 3 distinct parameterizations)", stats.Misses)
	}
}

// TestRespondMemoBypassedByResponder pins the dispatch rule: a custom
// Responder may be round-dependent, so the memo must not serve or store
// responses for it — its counters stay at zero.
func TestRespondMemoBypassedByResponder(t *testing.T) {
	memo := engine.NewRespondMemo()
	responder := func(round int, a *worker.Agent, c *contract.PiecewiseLinear, part effort.Partition) (float64, error) {
		return 10, nil
	}
	_, err := engine.RunLedger(context.Background(), archetypePopulation(t, 12), engine.Config{
		Policy:    &designPolicy{},
		Rounds:    2,
		Responder: responder,
		Memo:      memo,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats := memo.Stats(); stats.Hits != 0 || stats.Misses != 0 || stats.Entries != 0 {
		t.Errorf("custom Responder must bypass the memo entirely, got %+v", stats)
	}
}

// TestResponderClampedEfforts pins the clamp interacting with the respond
// routes: out-of-range strategy efforts (negative, NaN, beyond the
// feasible range) are clamped to [0, min(mδ, apex of ψ)] identically on
// the sequential and parallel hook paths.
func TestResponderClampedEfforts(t *testing.T) {
	pop := archetypePopulation(t, 9)
	yMax := pop.Part.YMax()
	efforts := []float64{-5, math.NaN(), 1e9, 7}
	for name, par := range map[string]int{"sequential": 0, "parallel": 4} {
		t.Run(name, func(t *testing.T) {
			responder := func(r int, a *worker.Agent, c *contract.PiecewiseLinear, part effort.Partition) (float64, error) {
				return efforts[r], nil
			}
			got, err := engine.RunLedger(context.Background(), archetypePopulation(t, 9), engine.Config{
				Policy:          &designPolicy{},
				Rounds:          len(efforts),
				Responder:       responder,
				ParallelRespond: par,
			})
			if err != nil {
				t.Fatal(err)
			}
			for r, want := range []float64{0, 0, yMax, 7} {
				for _, oc := range got[r].Outcomes {
					if oc.Effort != want {
						t.Errorf("round %d agent %s: effort = %v, want %v (clamped)", r, oc.AgentID, oc.Effort, want)
					}
				}
			}
		})
	}
}

// TestLedgerCopiesReusedOutcomes pins the aliasing contract: the engine
// reuses one Outcomes backing array across rounds, and Ledger copies it in
// OnRoundEnd — so earlier rounds keep their own values after later rounds
// overwrite the buffer.
func TestLedgerCopiesReusedOutcomes(t *testing.T) {
	drift := func(round int, pop *engine.Population) {
		if round == 0 {
			return
		}
		for _, a := range pop.Agents {
			pop.Weights[a.ID] *= 2
		}
	}
	ledger, err := engine.RunLedger(context.Background(), archetypePopulation(t, 6), engine.Config{
		Policy: &designPolicy{},
		Rounds: 2,
		Drift:  drift,
		Memo:   engine.NewRespondMemo(),
		Cache:  engine.NewCache(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if &ledger[0].Outcomes[0] == &ledger[1].Outcomes[0] {
		t.Fatal("rounds share an Outcomes backing array — Ledger did not copy")
	}
	for i := range ledger[0].Outcomes {
		w0 := ledger[0].Outcomes[i].Weight
		w1 := ledger[1].Outcomes[i].Weight
		if w1 != 2*w0 {
			t.Errorf("agent %s: round-1 weight %v != 2 × round-0 weight %v — buffer reuse clobbered round 0",
				ledger[0].Outcomes[i].AgentID, w1, w0)
		}
	}
}

// TestRespondMemoConcurrent hammers one shared memo from concurrent
// engines (each with parallel fan-out) plus raw Get/Put/Stats/Invalidate
// callers; run under -race (make check) it pins the memo's thread safety.
func TestRespondMemoConcurrent(t *testing.T) {
	memo := engine.NewRespondMemo()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			drift := func(round int, pop *engine.Population) {
				if round == 0 {
					return
				}
				for _, a := range pop.Agents {
					pop.Weights[a.ID] *= 1.01 // fresh keys → concurrent Puts
				}
			}
			_, err := engine.RunLedger(context.Background(), archetypePopulation(t, 30), engine.Config{
				Policy:          &designPolicy{},
				Rounds:          5,
				Drift:           drift,
				Cache:           engine.NewCache(),
				Memo:            memo,
				ParallelRespond: 4,
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				memo.Stats()
				if i%50 == 49 {
					memo.Invalidate()
				}
			}
		}()
	}
	wg.Wait()
}

// TestRespondMemoCapFlush pins the size bound: crossing MaxEntries flushes
// the map (counters preserved), so a drifting run cannot grow it without
// bound.
func TestRespondMemoCapFlush(t *testing.T) {
	memo := &engine.RespondMemo{MaxEntries: 4}
	drift := func(round int, pop *engine.Population) {
		if round == 0 {
			return
		}
		for _, a := range pop.Agents {
			pop.Weights[a.ID] *= 1.1 // 3 fresh keys per round
		}
	}
	_, err := engine.RunLedger(context.Background(), archetypePopulation(t, 9), engine.Config{
		Policy: &designPolicy{},
		Rounds: 6,
		Drift:  drift,
		Cache:  engine.NewCache(),
		Memo:   memo,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := memo.Stats()
	if stats.Entries > 4 {
		t.Errorf("entries = %d exceeds MaxEntries = 4", stats.Entries)
	}
	if stats.Misses != 6*3 {
		t.Errorf("misses = %d, want 18 (every round re-keyed)", stats.Misses)
	}
}

// TestRespondMemoExportTo mirrors TestCacheExportTo: with Config.Metrics
// set the engine adopts the memo's live counters, so the registry snapshot
// and Stats() read the same numbers.
func TestRespondMemoExportTo(t *testing.T) {
	reg := telemetry.NewRegistry()
	memo := engine.NewRespondMemo()
	_, err := engine.RunLedger(context.Background(), archetypePopulation(t, 30), engine.Config{
		Policy:  &designPolicy{},
		Rounds:  3,
		Cache:   engine.NewCache(),
		Memo:    memo,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := memo.Stats()
	if stats.Hits == 0 || stats.Misses == 0 {
		t.Fatalf("archetype population must hit and miss the memo, got %+v", stats)
	}
	s := reg.Snapshot()
	if got := s.Counters[engine.MetricRespondHits]; got != stats.Hits {
		t.Errorf("registry hits = %d, Stats().Hits = %d", got, stats.Hits)
	}
	if got := s.Counters[engine.MetricRespondMisses]; got != stats.Misses {
		t.Errorf("registry misses = %d, Stats().Misses = %d", got, stats.Misses)
	}
	if got := int(s.Gauges[engine.MetricRespondEntries]); got != stats.Entries {
		t.Errorf("registry entries = %d, Stats().Entries = %d", got, stats.Entries)
	}
}

// TestWarmRoundZeroAllocs pins the zero-alloc warm-round guarantee: a
// cache+memo engine with no metrics and no observers, once warmed,
// allocates nothing per Run — the sorted view, the outcomes buffer, the
// contracts map, and the respond scratch are all reused.
func TestWarmRoundZeroAllocs(t *testing.T) {
	pop := archetypePopulation(t, 120)
	ctx := context.Background()
	eng, err := engine.New(pop, engine.Config{
		Policy: &designPolicy{},
		Rounds: 1,
		Cache:  engine.NewCache(),
		Memo:   engine.NewRespondMemo(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(ctx); err != nil { // warm: design + respond once
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := eng.Run(ctx); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm round allocates %v objects per Run, want 0", allocs)
	}
}
