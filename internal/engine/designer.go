package engine

import (
	"context"
	"fmt"
	"sync"

	"dyncontract/internal/contract"
	"dyncontract/internal/core"
	"dyncontract/internal/effort"
	"dyncontract/internal/solver"
	"dyncontract/internal/telemetry"
	"dyncontract/internal/worker"
)

// Designer turns a set of agents into per-agent contracts through the
// deduplicating cache and the parallel solver fan-out.
//
// Within one call, agents sharing a fingerprint are designed once (the
// round-level dedup is unconditional — it is pure, deterministic sharing).
// With a Cache attached, distinct fingerprints that were designed in a
// previous round cost nothing. Scratch buffers — the solver fan-out
// inputs, the per-agent fingerprints, and both result maps, including the
// returned contracts map — are retained across calls, so a long-running
// loop stops allocating per-round.
//
// The zero value is ready to use. A Designer is safe for concurrent use,
// but calls are serialized and the returned map is reused by the next
// call — never share a Designer across concurrently running simulations;
// share a Cache instead.
type Designer struct {
	// Parallelism caps the solver pool; 0 means GOMAXPROCS.
	Parallelism int
	// Cache, when non-nil, carries designs across rounds.
	Cache *Cache
	// Metrics, when non-nil, is forwarded to the solver fan-out
	// (dyncontract_solver_* counters and per-design timings).
	Metrics *telemetry.Registry

	mu        sync.Mutex
	subs      []solver.Subproblem
	subFPs    []Fingerprint
	agentFPs  []Fingerprint
	outs      []solver.Outcome
	results   map[Fingerprint]*core.Result
	contracts map[string]*contract.PiecewiseLinear
	roundFPs  []Fingerprint
	roundRes  []*core.Result
	shards    []*ShardDesigner // lazily built per-shard designers (Shard)
}

// maxScanFPs bounds the round's linear-scan fingerprint list: populations
// built from a handful of archetypes (the common case) resolve every
// agent with a few struct compares instead of hashing the full
// Fingerprint into a map; rounds with more distinct fingerprints fall
// back to the map beyond this bound.
const maxScanFPs = 16

// findFP returns fp's index in the round's distinct-fingerprint list, or
// -1. The list never exceeds maxScanFPs entries.
func (d *Designer) findFP(fp Fingerprint) int {
	for j := range d.roundFPs {
		if d.roundFPs[j] == fp {
			return j
		}
	}
	return -1
}

// Contracts designs one contract per agent, deduplicating by fingerprint.
// Agents not in the population's weight map design with w = 0 (matching
// the zero-value semantics of map lookups used throughout).
//
// The returned map is valid until the next Contracts call on the same
// Designer — the engine hands it to observers under the same rule.
func (d *Designer) Contracts(ctx context.Context, pop *Population, agents []*worker.Agent) (map[string]*contract.PiecewiseLinear, error) {
	d.mu.Lock()
	defer d.mu.Unlock()

	if d.results == nil {
		d.results = make(map[Fingerprint]*core.Result, 8)
	} else {
		clear(d.results)
	}
	d.subs = d.subs[:0]
	d.subFPs = d.subFPs[:0]
	// Fingerprint hashing is per-agent per-round work on the design path:
	// compute each agent's fingerprint exactly once and reuse it in the
	// assembly loop below.
	d.agentFPs = d.agentFPs[:0]
	d.roundFPs = d.roundFPs[:0]
	for _, a := range agents {
		cfg := core.Config{Part: pop.Part, Mu: pop.Mu, W: pop.Weights[a.ID]}
		fp := FingerprintOf(a, cfg)
		d.agentFPs = append(d.agentFPs, fp)
		if d.findFP(fp) >= 0 {
			continue // already handled this round
		}
		if len(d.roundFPs) < maxScanFPs {
			d.roundFPs = append(d.roundFPs, fp)
		} else if _, seen := d.results[fp]; seen {
			continue // beyond the scan bound: dedup through the map
		}
		if d.Cache != nil {
			if res, ok := d.Cache.Get(fp); ok {
				d.results[fp] = res
				continue
			}
		}
		d.results[fp] = nil // pending: solved below
		d.subs = append(d.subs, solver.Subproblem{Agent: a, Config: cfg})
		d.subFPs = append(d.subFPs, fp)
	}

	if len(d.subs) > 0 {
		if cap(d.outs) < len(d.subs) {
			d.outs = make([]solver.Outcome, len(d.subs))
		}
		d.outs = d.outs[:len(d.subs)]
		if err := solver.SolveAllInto(ctx, d.subs, d.outs, solver.Options{Parallelism: d.Parallelism, Metrics: d.Metrics}); err != nil {
			return nil, err
		}
		for i := range d.subs {
			d.results[d.subFPs[i]] = d.outs[i].Result
			if d.Cache != nil {
				d.Cache.Put(d.subFPs[i], d.outs[i].Result)
			}
		}
	}

	if d.contracts == nil {
		d.contracts = make(map[string]*contract.PiecewiseLinear, len(agents))
	} else {
		clear(d.contracts)
	}
	// Resolve the scan list's results once (a handful of map lookups),
	// then assemble per agent through the scan list, falling back to the
	// map only for fingerprints beyond the scan bound.
	d.roundRes = d.roundRes[:0]
	for _, fp := range d.roundFPs {
		d.roundRes = append(d.roundRes, d.results[fp])
	}
	for i, a := range agents {
		fp := d.agentFPs[i]
		var res *core.Result
		if j := d.findFP(fp); j >= 0 {
			res = d.roundRes[j]
		} else {
			res = d.results[fp]
		}
		if res == nil {
			return nil, fmt.Errorf("engine: no design produced for agent %s", a.ID)
		}
		d.contracts[a.ID] = res.Contract
	}
	return d.contracts, nil
}

// DesignRequest is one design-only query for DesignBatch: an agent (not
// necessarily a member of any population) plus the requester-side feedback
// weight to design for.
type DesignRequest struct {
	// Agent carries the behavioural parameters the design reads (class,
	// ψ, β, ω, reservation). It is not retained past the call.
	Agent *worker.Agent
	// W is the requester's feedback weight w for this query.
	W float64
}

// DesignBatch designs one contract per request against the given partition
// and compensation weight — the batch entry point for serving layers that
// coalesce concurrent design-only queries into a single engine pass.
// Requests sharing a fingerprint within the batch share one solve, and the
// designer's Cache (when set) carries designs across batches and across a
// concurrently running round loop wired to the same cache, so a warm query
// costs one cache lookup and zero solver calls.
//
// Unlike Contracts, DesignBatch touches none of the designer's per-round
// scratch and allocates its results fresh, so concurrent DesignBatch calls
// are safe with each other and with Contracts, provided Parallelism,
// Cache, and Metrics are not mutated concurrently. The returned slice is
// index-aligned with reqs.
func (d *Designer) DesignBatch(ctx context.Context, part effort.Partition, mu float64, reqs []DesignRequest) ([]*contract.PiecewiseLinear, error) {
	fps := make([]Fingerprint, len(reqs))
	results := make(map[Fingerprint]*core.Result, len(reqs))
	var subs []solver.Subproblem
	var subFPs []Fingerprint
	for i, rq := range reqs {
		cfg := core.Config{Part: part, Mu: mu, W: rq.W}
		fp := FingerprintOf(rq.Agent, cfg)
		fps[i] = fp
		if _, seen := results[fp]; seen {
			continue
		}
		if d.Cache != nil {
			if res, ok := d.Cache.Get(fp); ok {
				results[fp] = res
				continue
			}
		}
		results[fp] = nil // pending: solved below
		subs = append(subs, solver.Subproblem{Agent: rq.Agent, Config: cfg})
		subFPs = append(subFPs, fp)
	}
	if len(subs) > 0 {
		outs := make([]solver.Outcome, len(subs))
		if err := solver.SolveAllInto(ctx, subs, outs, solver.Options{Parallelism: d.Parallelism, Metrics: d.Metrics}); err != nil {
			return nil, err
		}
		for i := range subs {
			results[subFPs[i]] = outs[i].Result
			if d.Cache != nil {
				d.Cache.Put(subFPs[i], outs[i].Result)
			}
		}
	}
	out := make([]*contract.PiecewiseLinear, len(reqs))
	for i := range reqs {
		res := results[fps[i]]
		if res == nil {
			return nil, fmt.Errorf("engine: no design produced for agent %s", reqs[i].Agent.ID)
		}
		out[i] = res.Contract
	}
	return out, nil
}

// Shard returns the designer for shard i, creating it on first use. Each
// ShardDesigner is single-owner (the engine calls one shard from one
// goroutine at a time) and shares the Designer's Cache through its own
// lock-free segment, so concurrent shards dedup cross-shard archetypes
// without contending on a lock in the warm path.
func (d *Designer) Shard(i int) *ShardDesigner {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.shards) <= i {
		d.shards = append(d.shards, nil)
	}
	if d.shards[i] == nil {
		sd := &ShardDesigner{metrics: d.Metrics}
		if d.Cache != nil {
			sd.seg = d.Cache.Segment()
		}
		d.shards[i] = sd
	}
	return d.shards[i]
}

// ShardDesigner designs contracts for one shard of a sharded engine run.
// It retains a per-epoch plan — the shard's distinct fingerprints and
// each agent's slot into them, computed from the Shard's cached FPs — so
// a warm round costs one cache-segment lookup per distinct fingerprint to
// validate that the served contracts are still current, and reports
// changed = false without touching dst. Scratch is retained across
// rounds; steady-state calls allocate nothing.
type ShardDesigner struct {
	metrics *telemetry.Registry
	seg     *CacheSegment // nil without a Cache: every round redesigns

	built    bool
	shard    int
	epoch    uint64
	slots    []int32 // per agent: index into distinct
	distinct []Fingerprint
	reps     []*worker.Agent // representative agent per distinct fingerprint
	res      []*core.Result  // resolved result per distinct fingerprint
	served   []*contract.PiecewiseLinear
	keys     map[Fingerprint]int32
	subs     []solver.Subproblem
	souts    []solver.Outcome
	pendIdx  []int32

	// scratch is the shard's retained design scratch: the sequential
	// solver route runs every cold design over it, so a shard's cold fills
	// stay CPU-local (same owner goroutine, same buffers) round after
	// round. lastBatch records the most recent fill's solver batch size
	// for span annotation (BatchStats).
	scratch   core.Scratch
	lastBatch int
}

// BatchStats reports the size of the most recent fill's solver batch
// (the shard's distinct fingerprints that missed the cache) and the
// cumulative number of designs the shard's retained scratch has served —
// the numbers engine.shard.design spans carry via ShardBatchReporter.
func (d *ShardDesigner) BatchStats() (batch int, scratchUses uint64) {
	return d.lastBatch, d.scratch.Uses()
}

// Contracts implements the ShardPolicy work for one shard: fill dst[i]
// with the contract for sh.Agents[i], reporting whether anything changed
// since the previous call for this (shard, epoch).
func (d *ShardDesigner) Contracts(ctx context.Context, pop *Population, sh *Shard, dst []*contract.PiecewiseLinear) (bool, error) {
	if len(dst) != len(sh.Agents) {
		return false, fmt.Errorf("engine: shard %d: %d contract slots for %d agents", sh.Index, len(dst), len(sh.Agents))
	}
	replan := !d.built || d.shard != sh.Index || d.epoch != sh.Epoch
	if !replan && d.seg != nil {
		// Warm validation: the plan is current (same view epoch); the
		// round is unchanged iff every distinct fingerprint still resolves
		// to the contract dst already holds.
		same := true
		for k := range d.distinct {
			res, ok := d.seg.Get(d.distinct[k])
			if !ok || res.Contract != d.served[k] {
				same = false
				break
			}
		}
		if same {
			return false, nil
		}
		// A failed validation under a matching epoch can mean the engine
		// patched fingerprint slots in place (sparse drift) since the
		// plan was built — the plan's slot/fingerprint layout may be
		// stale, so rebuild it from the shard's current FPs before
		// refilling.
		replan = true
	}
	if replan {
		d.plan(sh)
		d.built = true
		d.shard = sh.Index
		d.epoch = sh.Epoch
	}
	if err := d.fill(ctx, pop, sh, dst); err != nil {
		// served is now inconsistent with dst; force a full refill next
		// round rather than trusting a warm validation.
		d.built = false
		return true, err
	}
	return true, nil
}

// plan rebuilds the shard's dedup plan from its cached fingerprints.
func (d *ShardDesigner) plan(sh *Shard) {
	if d.keys == nil {
		d.keys = make(map[Fingerprint]int32, 16)
	} else {
		clear(d.keys)
	}
	d.slots = d.slots[:0]
	d.distinct = d.distinct[:0]
	d.reps = d.reps[:0]
	// Agents are ID-sorted, so archetypes are contiguous: a struct compare
	// against the previous fingerprint skips the map for entire runs.
	var lastFP Fingerprint
	lastSlot := int32(-1)
	for i := range sh.Agents {
		fp := sh.FPs[i]
		if lastSlot >= 0 && fp == lastFP {
			d.slots = append(d.slots, lastSlot)
			continue
		}
		k, seen := d.keys[fp]
		if !seen {
			k = int32(len(d.distinct))
			d.keys[fp] = k
			d.distinct = append(d.distinct, fp)
			d.reps = append(d.reps, sh.Agents[i])
		}
		lastFP, lastSlot = fp, k
		d.slots = append(d.slots, k)
	}
}

// fill resolves every distinct fingerprint — cache segment first, solver
// for the misses — and writes the shard's contracts through the plan.
func (d *ShardDesigner) fill(ctx context.Context, pop *Population, sh *Shard, dst []*contract.PiecewiseLinear) error {
	nd := len(d.distinct)
	if cap(d.res) < nd {
		d.res = make([]*core.Result, nd)
	}
	d.res = d.res[:nd]
	if cap(d.served) < nd {
		d.served = make([]*contract.PiecewiseLinear, nd)
	}
	d.served = d.served[:nd]
	d.subs = d.subs[:0]
	d.pendIdx = d.pendIdx[:0]
	for k := 0; k < nd; k++ {
		if d.seg != nil {
			if res, ok := d.seg.Get(d.distinct[k]); ok {
				d.res[k] = res
				continue
			}
		}
		d.res[k] = nil
		d.pendIdx = append(d.pendIdx, int32(k))
		d.subs = append(d.subs, solver.Subproblem{
			Agent:  d.reps[k],
			Config: core.Config{Part: pop.Part, Mu: pop.Mu, W: d.distinct[k].W},
		})
	}
	d.lastBatch = len(d.subs)
	if len(d.subs) > 0 {
		if cap(d.souts) < len(d.subs) {
			d.souts = make([]solver.Outcome, len(d.subs))
		}
		d.souts = d.souts[:len(d.subs)]
		// Shard-level parallelism comes from the engine's pool; the inner
		// solve stays sequential — over the shard's retained scratch — so
		// shards never oversubscribe it and cold designs reuse CPU-local
		// buffers.
		if err := solver.SolveAllInto(ctx, d.subs, d.souts, solver.Options{Parallelism: 1, Metrics: d.metrics, Scratch: &d.scratch}); err != nil {
			return err
		}
		for j, k := range d.pendIdx {
			res := d.souts[j].Result
			if res == nil {
				return fmt.Errorf("engine: no design produced for agent %s", d.subs[j].Agent.ID)
			}
			d.res[k] = res
			if d.seg != nil {
				d.seg.Put(d.distinct[k], res)
			}
		}
	}
	for k := 0; k < nd; k++ {
		d.served[k] = d.res[k].Contract
	}
	for i := range sh.Agents {
		dst[i] = d.res[d.slots[i]].Contract
	}
	return nil
}
