package experiments

import (
	"strings"
	"testing"
)

func TestFig6RenderWithPlot(t *testing.T) {
	p := testPipeline(t)
	rep, err := RunFig6(p, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 3 {
		t.Fatalf("series = %d, want 3 (utility, lower, upper)", len(rep.Series))
	}
	plain := rep.Render(false)
	plotted := rep.Render(true)
	if strings.Contains(plain, "* utility") {
		t.Error("plain render includes chart legend")
	}
	for _, want := range []string{"* utility", "o lower bound", "+ upper bound", "number of effort intervals m"} {
		if !strings.Contains(plotted, want) {
			t.Errorf("plotted render missing %q", want)
		}
	}
	if rep.String() != plain {
		t.Error("String() must equal Render(false)")
	}
}

func TestTable2RenderWithBars(t *testing.T) {
	p := testPipeline(t)
	rep, err := RunTable2(p, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.BarLabels) == 0 || len(rep.BarLabels) != len(rep.BarValues) {
		t.Fatalf("bar data malformed: %d labels, %d values", len(rep.BarLabels), len(rep.BarValues))
	}
	plotted := rep.Render(true)
	if !strings.Contains(plotted, "#") {
		t.Errorf("no bars in plotted render:\n%s", plotted)
	}
}

func TestFig8cRenderSeriesPerPolicy(t *testing.T) {
	p := testPipeline(t)
	rep, err := RunFig8c(p, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 3 {
		t.Fatalf("series = %d, want 3 (one per policy)", len(rep.Series))
	}
	plotted := rep.Render(true)
	if !strings.Contains(plotted, "dynamic-contract") || !strings.Contains(plotted, "round") {
		t.Error("fig8c chart missing policy legend or x label")
	}
}

func TestFig8aRenderSeries(t *testing.T) {
	p := testPipeline(t)
	rep, err := RunFig8a(p, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 2 {
		t.Fatalf("series = %d, want 2 (compensation, lower bound)", len(rep.Series))
	}
	// Compensation series must dominate the lower-bound series pointwise.
	comp, lb := rep.Series[0], rep.Series[1]
	for i := range comp.Y {
		if comp.Y[i] < lb.Y[i]-1e-9 {
			t.Errorf("m=%v: mean compensation %v below mean lower bound %v", comp.X[i], comp.Y[i], lb.Y[i])
		}
	}
}
