// Package core implements the paper's primary contribution: the
// candidate-contract algorithm of §IV-C that designs a near-optimal
// piecewise-linear dynamic contract for a single worker (or collusive
// community treated as a meta-worker), together with the Theorem 4.1
// utility bounds.
//
// # Algorithm
//
// The effort axis is partitioned into m intervals of width δ. For every
// target interval k the algorithm builds a candidate contract ξ^(k) whose
// slopes are the cheapest ones that still make the worker's best response
// land in interval k:
//
//   - pieces l = 1..k are built in Lemma 4.1's Case III (interior optimum)
//     using the slope recursion of Eq. (39)–(40), which makes the worker's
//     achievable utility strictly increase from interval to interval up to
//     k while keeping each slope minimal;
//   - pieces l = k+1..m are flat (zero increment), so additional effort
//     earns nothing.
//
// The final contract is the candidate maximizing the requester's utility
// w·ψ(y*) − μ·ξ(y*) at the worker's (exactly computed) best response y*.
//
// # Deviations from the printed text
//
// The ICDCS text contains several misprints that this implementation
// repairs; see DESIGN.md §2 for the full list. Most notably Eq. (43) is
// implemented as the requester-utility argmax and the ε of Eq. (40) uses
// the form that makes the paper's own verification identity (42) hold.
package core

import (
	"errors"
	"fmt"
	"math"

	"dyncontract/internal/contract"
	"dyncontract/internal/effort"
	"dyncontract/internal/worker"
)

// Case labels Lemma 4.1's classification of a contract piece: where the
// worker's utility maximum sits within one effort interval.
type Case int

// Lemma 4.1 cases.
const (
	// CaseI: utility non-increasing on the interval; optimum at the left
	// edge. Occurs for slopes α ≤ β/ψ′((l−1)δ) − ω.
	CaseI Case = iota + 1
	// CaseII: utility non-decreasing; optimum at the right edge. Occurs
	// for slopes α ≥ β/ψ′(lδ) − ω.
	CaseII
	// CaseIII: interior stationary optimum at ψ′(y) = β/(α+ω).
	CaseIII
)

// String implements fmt.Stringer.
func (c Case) String() string {
	switch c {
	case CaseI:
		return "I"
	case CaseII:
		return "II"
	case CaseIII:
		return "III"
	default:
		return fmt.Sprintf("Case(%d)", int(c))
	}
}

// ErrBadConfig is returned when a design configuration fails validation.
var ErrBadConfig = errors.New("core: invalid design configuration")

// participationSlack is the hair of headroom added on top of the minimal
// participation lift (the shortfall between the worker's best utility and
// the reservation). The lift is applied to the contract's compensation
// knots and the lifted contract is then re-evaluated through the same
// floating-point pipeline (knot interpolation, ψ round-trips); without
// slack, rounding in that re-evaluation can leave the lifted utility one
// ulp below the reservation and the worker still declining. 1e-9 is far
// above any accumulated rounding at the magnitudes the paper works with
// (β, δ, ψ all O(1)) and far below anything economically meaningful. Both
// the scalar path (buildCandidate) and the batched path (DesignInto) use
// this constant, keeping their lifted contracts bit-identical.
const participationSlack = 1e-9

// Config parameterizes a single-agent contract design (one decomposed
// subproblem of §IV-B).
type Config struct {
	// Part is the effort-axis discretization (m intervals of width δ).
	Part effort.Partition
	// Mu is the requester's weight μ on compensation in Eq. (7).
	Mu float64
	// W is the requester's weight w_i on this agent's feedback (Eq. (5)),
	// already evaluated; may be negative for heavily penalized workers, in
	// which case the designed contract collapses to "pay nothing".
	W float64
	// WantCandidates requests the per-k Candidate diagnostics on the
	// Result. Consumers that read Result.Candidates — the budgeted policy's
	// menus, the experiment tables, diagnostic tests — must opt in; the
	// default (false) leaves Result.Candidates nil so the hot design path
	// (engine cache misses, serving-layer design queries) never
	// materializes the m per-candidate contracts and responses.
	WantCandidates bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Part.M <= 0 || !(c.Part.Delta > 0) {
		return fmt.Errorf("partition %+v: %w", c.Part, ErrBadConfig)
	}
	if !(c.Mu > 0) || math.IsInf(c.Mu, 0) {
		return fmt.Errorf("mu=%v must be positive and finite: %w", c.Mu, ErrBadConfig)
	}
	if math.IsNaN(c.W) || math.IsInf(c.W, 0) {
		return fmt.Errorf("w=%v must be finite: %w", c.W, ErrBadConfig)
	}
	return nil
}

// Candidate records the outcome of building ξ^(k) for one target interval.
type Candidate struct {
	// K is the 1-based target effort interval.
	K int
	// Contract is the built candidate ξ^(k) (in feedback space).
	Contract *contract.PiecewiseLinear
	// Response is the agent's exact best response to the candidate.
	Response worker.Response
	// RequesterUtility is w·ψ(y*) − μ·ξ(y*) at the best response.
	RequesterUtility float64
	// Clamped reports whether any slope of the Case III recursion had to
	// be clamped at zero to preserve contract monotonicity (happens only
	// when ω is large relative to β; see DESIGN.md).
	Clamped bool
	// ParticipationLift is the constant added to every compensation knot
	// to satisfy the worker's reservation utility (individual
	// rationality); 0 when the worker participates voluntarily.
	ParticipationLift float64
}

// Result is the output of Design: the chosen contract plus diagnostics and
// the Theorem 4.1 bounds.
type Result struct {
	// Agent is the designed-for agent.
	Agent *worker.Agent
	// Contract is the selected contract f_i (feedback → compensation).
	Contract *contract.PiecewiseLinear
	// KOpt is the selected target interval.
	KOpt int
	// Response is the agent's predicted best response to Contract.
	Response worker.Response
	// RequesterUtility is the requester's per-round utility from this
	// agent: w·ψ(y*) − μ·compensation.
	RequesterUtility float64
	// UpperBound and LowerBound are the Theorem 4.1 bounds on the
	// requester's utility from this agent.
	UpperBound float64
	// LowerBound is valid for honest agents (ω = 0); for malicious agents
	// it is the same expression and is reported for reference (the paper
	// asserts but does not prove it for ω > 0).
	LowerBound float64
	// Candidates holds per-k diagnostics in k order; nil unless
	// Config.WantCandidates was set.
	Candidates []Candidate
}

// Design solves one decomposed subproblem: it computes the contract for a
// single agent that (approximately) maximizes the requester's utility,
// following §IV-C.
func Design(a *worker.Agent, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := a.Validate(cfg.Part.YMax()); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	knots := cfg.Part.Knots(a.Psi)
	candidates := make([]Candidate, 0, cfg.Part.M)
	for k := 1; k <= cfg.Part.M; k++ {
		cand, err := buildCandidate(a, cfg, knots, k)
		if err != nil {
			return nil, fmt.Errorf("core: candidate k=%d: %w", k, err)
		}
		candidates = append(candidates, cand)
	}

	// Pick the requester-utility argmax (the repaired Eq. (43)); ties go
	// to smaller k (cheaper contract, lower induced effort).
	bestIdx := 0
	for i := 1; i < len(candidates); i++ {
		if candidates[i].RequesterUtility > candidates[bestIdx].RequesterUtility {
			bestIdx = i
		}
	}
	best := candidates[bestIdx]

	res := &Result{
		Agent:            a,
		Contract:         best.Contract,
		KOpt:             best.K,
		Response:         best.Response,
		RequesterUtility: best.RequesterUtility,
	}
	if cfg.WantCandidates {
		res.Candidates = candidates
	}
	res.UpperBound = UpperBound(a, cfg)
	res.LowerBound = LowerBound(a, cfg, best.K)
	return res, nil
}

// buildCandidate constructs ξ^(k) per §IV-C Part 2 and evaluates it.
func buildCandidate(a *worker.Agent, cfg Config, knots []float64, k int) (Candidate, error) {
	delta := cfg.Part.Delta
	r1, r2 := a.Psi.R1, a.Psi.R2
	beta, omega := a.Beta, a.Omega

	b := contract.NewBuilder(knots[0], 0)
	// Seed the recursion at the Case I/III boundary of a virtual piece 0:
	// α₀ = β/ψ′(0) − ω = β/r₁ − ω.
	alphaPrev := beta/r1 - omega
	clamped := false
	for l := 1; l <= cfg.Part.M; l++ {
		var alpha float64
		if l <= k {
			// Slope recursion Eq. (39) with the repaired ε of Eq. (40):
			//   α_l = β² / ((α_{l−1}+ω)(r₁+2r₂δ(l−1))²) + ε_l − ω
			//   ε_l = 4βr₂²δ² / ((r₁+2r₂δ(l−1))²·(r₁+2r₂δl))
			gPrev := r1 + 2*r2*delta*float64(l-1) // ψ′((l−1)δ) > 0
			gCur := r1 + 2*r2*delta*float64(l)    // ψ′(lδ) > 0
			eps := 4 * beta * r2 * r2 * delta * delta / (gPrev * gPrev * gCur)
			alpha = beta*beta/((alphaPrev+omega)*gPrev*gPrev) + eps - omega
			if alpha < 0 {
				// Monotone contracts cannot have negative slopes. This
				// branch triggers only when ω is so large that the worker
				// over-works even under a flat contract; the flat piece is
				// the cheapest monotone approximation.
				alpha = 0
				clamped = true
			}
			// The recursion needs α_{l−1} before clamping to preserve the
			// Case III windows, but a clamped α also resets the chain.
			alphaPrev = alpha
		} else {
			alpha = 0 // flat continuation: extra effort earns nothing
		}
		b.AppendSlope(knots[l], alpha)
	}
	c, err := b.Build()
	if err != nil {
		return Candidate{}, fmt.Errorf("build contract: %w", err)
	}
	resp, err := a.BestResponse(c, cfg.Part)
	if err != nil {
		return Candidate{}, fmt.Errorf("best response: %w", err)
	}
	lift := 0.0
	if resp.Declined {
		// Individual rationality: lifting every knot by a constant raises
		// the worker's utility by exactly that constant at every effort
		// level (incentives — the slopes — are untouched), so the minimal
		// lift is the shortfall to the reservation.
		free := *a
		free.Reservation = 0
		freeResp, err := free.BestResponse(c, cfg.Part)
		if err != nil {
			return Candidate{}, fmt.Errorf("unconstrained response: %w", err)
		}
		lift = a.Reservation - freeResp.Utility + participationSlack
		comps := c.Comps()
		for i := range comps {
			comps[i] += lift
		}
		c, err = contract.New(c.Knots(), comps)
		if err != nil {
			return Candidate{}, fmt.Errorf("participation lift: %w", err)
		}
		resp, err = a.BestResponse(c, cfg.Part)
		if err != nil {
			return Candidate{}, fmt.Errorf("lifted best response: %w", err)
		}
		if resp.Declined {
			return Candidate{}, fmt.Errorf("core: lift %v failed to secure participation", lift)
		}
	}
	return Candidate{
		K:                 k,
		Contract:          c,
		Response:          resp,
		RequesterUtility:  cfg.W*resp.Feedback - cfg.Mu*resp.Compensation,
		Clamped:           clamped,
		ParticipationLift: lift,
	}, nil
}

// Classify applies Lemma 4.1 to a contract slope α on effort interval l
// (1-based): it reports where the worker's utility maximum sits in
// [(l−1)δ, lδ).
func Classify(a *worker.Agent, part effort.Partition, l int, alpha float64) Case {
	lower := CaseBoundaryLower(a, part, l)
	upper := CaseBoundaryUpper(a, part, l)
	switch {
	case alpha <= lower:
		return CaseI
	case alpha >= upper:
		return CaseII
	default:
		return CaseIII
	}
}

// CaseBoundaryLower returns the Case I / Case III slope boundary for piece
// l: β/ψ′((l−1)δ) − ω.
func CaseBoundaryLower(a *worker.Agent, part effort.Partition, l int) float64 {
	return a.Beta/a.Psi.Deriv(part.Edge(l-1)) - a.Omega
}

// CaseBoundaryUpper returns the Case III / Case II slope boundary for piece
// l: β/ψ′(lδ) − ω.
func CaseBoundaryUpper(a *worker.Agent, part effort.Partition, l int) float64 {
	return a.Beta/a.Psi.Deriv(part.Edge(l)) - a.Omega
}

// CompensationUpperBound returns Lemma 4.2's bound on the compensation paid
// under candidate ξ^(k):
//
//	c ≤ βkδ − 2βr₂kδ² / (2r₂(k−1)δ + r₁)
//
// (the second term is positive because r₂ < 0).
func CompensationUpperBound(a *worker.Agent, part effort.Partition, k int) float64 {
	delta := part.Delta
	kf := float64(k)
	return a.Beta*kf*delta - 2*a.Beta*a.Psi.R2*kf*delta*delta/(2*a.Psi.R2*(kf-1)*delta+a.Psi.R1)
}

// CompensationLowerBound returns Lemma 4.3's bound: any contract whose
// induced optimal effort falls in interval k pays at least β(k−1)δ. The
// bound holds for honest workers (ω = 0); for ω > 0 the individual
// rationality argument weakens by the intrinsic utility ω(ψ(y) − ψ(0)) and
// the returned value is adjusted accordingly (never below zero).
func CompensationLowerBound(a *worker.Agent, part effort.Partition, k int) float64 {
	base := a.Beta * float64(k-1) * part.Delta
	if a.Omega > 0 {
		base -= a.Omega * (a.Psi.Eval(float64(k)*part.Delta) - a.Psi.Eval(0))
	}
	if base < 0 {
		return 0
	}
	return base
}

// UpperBound returns Theorem 4.1's upper bound on the requester's utility
// from agent a:
//
//	max_l { w·ψ(lδ) − μ·CompLB(l) }
//
// using the ω-adjusted compensation lower bound.
func UpperBound(a *worker.Agent, cfg Config) float64 {
	ub := math.Inf(-1)
	for l := 1; l <= cfg.Part.M; l++ {
		u := cfg.W*a.Psi.Eval(cfg.Part.Edge(l)) - cfg.Mu*CompensationLowerBound(a, cfg.Part, l)
		if u > ub {
			ub = u
		}
	}
	// The requester can always decline to incentivize (flat zero contract,
	// zero effort): utility w·ψ(0). The bound must not fall below that.
	if u0 := cfg.W * a.Psi.Eval(0); u0 > ub {
		ub = u0
	}
	return ub
}

// LowerBound returns Theorem 4.1's lower bound on the requester's utility
// achieved by the designed contract with target interval kOpt:
//
//	w·ψ((kOpt−1)δ) − μ·CompUB(kOpt)
//
// It is proved for honest agents; for malicious agents it is the analogous
// expression and is reported for reference.
func LowerBound(a *worker.Agent, cfg Config, kOpt int) float64 {
	return cfg.W*a.Psi.Eval(cfg.Part.Edge(kOpt-1)) - cfg.Mu*CompensationUpperBound(a, cfg.Part, kOpt)
}
