package polyfit

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPolynomialExactQuadratic(t *testing.T) {
	// y = 3 - 2x + 0.5x², sampled without noise: fit must recover exactly.
	xs := []float64{0, 1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 - 2*x + 0.5*x*x
	}
	fit, err := Polynomial(xs, ys, 2)
	if err != nil {
		t.Fatalf("Polynomial: %v", err)
	}
	want := []float64{3, -2, 0.5}
	for k, w := range want {
		if math.Abs(fit.Coeffs[k]-w) > 1e-9 {
			t.Errorf("coeff[%d] = %v, want %v", k, fit.Coeffs[k], w)
		}
	}
	if fit.NoR > 1e-9 {
		t.Errorf("NoR = %v, want ~0", fit.NoR)
	}
	if fit.Degree != 2 || fit.N != len(xs) {
		t.Errorf("metadata wrong: %+v", fit)
	}
}

func TestPolynomialConstant(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 5, 5, 5}
	fit, err := Polynomial(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Coeffs[0]-5) > 1e-12 || fit.NoR > 1e-12 {
		t.Errorf("constant fit = %+v", fit)
	}
}

func TestPolynomialIdenticalX(t *testing.T) {
	// All x equal: degree-0 fit works, degree-1 is rank deficient.
	xs := []float64{2, 2, 2}
	ys := []float64{1, 2, 3}
	if _, err := Polynomial(xs, ys, 0); err != nil {
		t.Fatalf("degree 0: %v", err)
	}
	if _, err := Polynomial(xs, ys, 1); err == nil {
		t.Fatal("degree 1 on identical x: want rank error")
	}
}

func TestPolynomialErrors(t *testing.T) {
	if _, err := Polynomial([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := Polynomial([]float64{1, 2}, []float64{1, 2}, -1); err == nil {
		t.Error("negative degree: want error")
	}
	if _, err := Polynomial([]float64{1}, []float64{1}, 3); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("insufficient data: err = %v, want ErrInsufficientData", err)
	}
	if _, err := Polynomial([]float64{math.NaN(), 1}, []float64{1, 2}, 1); err == nil {
		t.Error("NaN x: want error")
	}
	if _, err := Polynomial([]float64{0, 1}, []float64{1, math.Inf(1)}, 1); err == nil {
		t.Error("Inf y: want error")
	}
}

func TestFitEval(t *testing.T) {
	f := Fit{Coeffs: []float64{1, 2, 3}} // 1 + 2x + 3x²
	if got := f.Eval(2); got != 17 {
		t.Errorf("Eval(2) = %v, want 17", got)
	}
	if got := f.Eval(0); got != 1 {
		t.Errorf("Eval(0) = %v, want 1", got)
	}
}

func TestSweepMonotoneNoR(t *testing.T) {
	// Higher degree can never have larger residual on the same data (nested
	// models); the sweep must reflect that.
	rng := rand.New(rand.NewSource(11))
	n := 60
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 10
		ys[i] = 2 + 0.5*xs[i] - 0.1*xs[i]*xs[i] + rng.NormFloat64()
	}
	fits, err := Sweep(xs, ys, 1, 6)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(fits) != 6 {
		t.Fatalf("len(fits) = %d, want 6", len(fits))
	}
	for i := 1; i < len(fits); i++ {
		if fits[i].NoR > fits[i-1].NoR+1e-8 {
			t.Errorf("NoR increased from degree %d (%v) to %d (%v)",
				fits[i-1].Degree, fits[i-1].NoR, fits[i].Degree, fits[i].NoR)
		}
	}
}

func TestSweepInvalidRange(t *testing.T) {
	if _, err := Sweep([]float64{1, 2}, []float64{1, 2}, 3, 1); err == nil {
		t.Error("max<min: want error")
	}
	if _, err := Sweep([]float64{1, 2}, []float64{1, 2}, -1, 2); err == nil {
		t.Error("min<0: want error")
	}
}

func TestChooseDegreePrefersParsimony(t *testing.T) {
	fits := []Fit{
		{Degree: 1, NoR: 13.8},
		{Degree: 2, NoR: 13.7},
		{Degree: 3, NoR: 13.7},
		{Degree: 4, NoR: 13.7},
	}
	chosen, err := ChooseDegree(fits, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// 13.8 is within 1% of 13.7, so the linear fit wins on parsimony — but
	// the paper's rule at their tolerance picks quadratic; verify both ends.
	if chosen.Degree != 1 {
		t.Errorf("ChooseDegree(1%%) = degree %d, want 1", chosen.Degree)
	}
	chosen, err = ChooseDegree(fits, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if chosen.Degree != 2 {
		t.Errorf("ChooseDegree(0.1%%) = degree %d, want 2", chosen.Degree)
	}
}

func TestChooseDegreeEmpty(t *testing.T) {
	if _, err := ChooseDegree(nil, 0.1); err == nil {
		t.Error("empty sweep: want error")
	}
}

// Property: fitting a polynomial of degree d to points generated from a
// degree-d polynomial recovers predictions to high accuracy at the samples.
func TestPolynomialRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		degree := 1 + rng.Intn(4)
		coeffs := make([]float64, degree+1)
		for i := range coeffs {
			coeffs[i] = rng.NormFloat64() * 3
		}
		truth := Fit{Coeffs: coeffs}
		n := degree + 3 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		// Spread xs to avoid duplicate-x rank deficiency.
		for i := range xs {
			xs[i] = float64(i) + rng.Float64()*0.5
			ys[i] = truth.Eval(xs[i])
		}
		fit, err := Polynomial(xs, ys, degree)
		if err != nil {
			return false
		}
		for _, x := range xs {
			if math.Abs(fit.Eval(x)-truth.Eval(x)) > 1e-5*(1+math.Abs(truth.Eval(x))) {
				return false
			}
		}
		return fit.NoR < 1e-5*(1+float64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: NoR equals the direct residual norm recomputed from the
// coefficients.
func TestNoRConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 8
			ys[i] = rng.NormFloat64() * 4
		}
		fit, err := Polynomial(xs, ys, 2)
		if err != nil {
			return false
		}
		var ss float64
		for i := range xs {
			d := ys[i] - fit.Eval(xs[i])
			ss += d * d
		}
		direct := math.Sqrt(ss)
		return math.Abs(direct-fit.NoR) < 1e-6*(1+direct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
