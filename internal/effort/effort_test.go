package effort

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// testQuad returns a standard valid effort function used across tests:
// ψ(y) = -0.02 y² + 2 y + 1, increasing on [0, 50).
func testQuad(t *testing.T) Quadratic {
	t.Helper()
	q, err := NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		t.Fatalf("NewQuadratic: %v", err)
	}
	return q
}

func TestNewQuadraticValid(t *testing.T) {
	q := testQuad(t)
	if q.Eval(0) != 1 {
		t.Errorf("psi(0) = %v, want 1", q.Eval(0))
	}
	if got, want := q.Eval(10), -0.02*100+20+1; math.Abs(got-want) > 1e-12 {
		t.Errorf("psi(10) = %v, want %v", got, want)
	}
}

func TestNewQuadraticRejectsConvex(t *testing.T) {
	if _, err := NewQuadratic(0.1, 1, 0, 10); !errors.Is(err, ErrNotConcave) {
		t.Fatalf("convex: err = %v, want ErrNotConcave", err)
	}
	if _, err := NewQuadratic(0, 1, 0, 10); !errors.Is(err, ErrNotConcave) {
		t.Fatalf("linear: err = %v, want ErrNotConcave", err)
	}
}

func TestNewQuadraticRejectsDecreasing(t *testing.T) {
	if _, err := NewQuadratic(-1, -1, 0, 10); !errors.Is(err, ErrNotIncreasing) {
		t.Fatalf("r1<0: err = %v, want ErrNotIncreasing", err)
	}
	// Increasing at 0 but turns over before yMax=10 (apex at 1).
	if _, err := NewQuadratic(-1, 2, 0, 10); !errors.Is(err, ErrNotIncreasing) {
		t.Fatalf("apex inside range: err = %v, want ErrNotIncreasing", err)
	}
}

func TestNewQuadraticRejectsNonFinite(t *testing.T) {
	if _, err := NewQuadratic(math.NaN(), 1, 0, 10); err == nil {
		t.Fatal("NaN r2: want error")
	}
	if _, err := NewQuadratic(-1, math.Inf(1), 0, 1); err == nil {
		t.Fatal("Inf r1: want error")
	}
}

func TestQuadraticDerivatives(t *testing.T) {
	q := testQuad(t)
	const h = 1e-6
	for _, y := range []float64{0, 1, 5.5, 20, 39} {
		numeric := (q.Eval(y+h) - q.Eval(y-h)) / (2 * h)
		if math.Abs(numeric-q.Deriv(y)) > 1e-5 {
			t.Errorf("Deriv(%v) = %v, numeric %v", y, q.Deriv(y), numeric)
		}
	}
	if q.Deriv2(3) != 2*q.R2 {
		t.Errorf("Deriv2 = %v, want %v", q.Deriv2(3), 2*q.R2)
	}
}

func TestQuadraticInverseDeriv(t *testing.T) {
	q := testQuad(t)
	for _, y := range []float64{0, 2, 17, 39.5} {
		z := q.Deriv(y)
		back, ok := q.InverseDeriv(z)
		if !ok {
			t.Fatalf("InverseDeriv(%v) reported out of range", z)
		}
		if math.Abs(back-y) > 1e-9 {
			t.Errorf("InverseDeriv(Deriv(%v)) = %v", y, back)
		}
	}
	// z above psi'(0) has no non-negative solution.
	if _, ok := q.InverseDeriv(q.R1 + 1); ok {
		t.Error("InverseDeriv above psi'(0): want ok=false")
	}
}

func TestQuadraticApex(t *testing.T) {
	q := testQuad(t)
	apex := q.Apex()
	if math.Abs(q.Deriv(apex)) > 1e-12 {
		t.Errorf("Deriv(apex) = %v, want 0", q.Deriv(apex))
	}
}

func TestQuadraticString(t *testing.T) {
	if testQuad(t).String() == "" {
		t.Error("String is empty")
	}
}

func TestNewPartition(t *testing.T) {
	p, err := NewPartition(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.YMax() != 5 {
		t.Errorf("YMax = %v, want 5", p.YMax())
	}
	if p.Edge(3) != 1.5 {
		t.Errorf("Edge(3) = %v, want 1.5", p.Edge(3))
	}
}

func TestNewPartitionErrors(t *testing.T) {
	if _, err := NewPartition(0, 1); err == nil {
		t.Error("m=0: want error")
	}
	if _, err := NewPartition(3, 0); err == nil {
		t.Error("delta=0: want error")
	}
	if _, err := NewPartition(3, -1); err == nil {
		t.Error("delta<0: want error")
	}
	if _, err := NewPartition(3, math.Inf(1)); err == nil {
		t.Error("delta=Inf: want error")
	}
}

func TestPartitionIntervalOf(t *testing.T) {
	p, _ := NewPartition(4, 1)
	tests := []struct {
		y    float64
		want int
	}{
		{-0.5, 1},
		{0, 1},
		{0.99, 1},
		{1, 2},
		{3.5, 4},
		{4, 4},   // clamped
		{100, 4}, // clamped
	}
	for _, tt := range tests {
		if got := p.IntervalOf(tt.y); got != tt.want {
			t.Errorf("IntervalOf(%v) = %d, want %d", tt.y, got, tt.want)
		}
	}
}

func TestPartitionKnots(t *testing.T) {
	q := testQuad(t)
	p, _ := NewPartition(5, 2)
	d := p.Knots(q)
	if len(d) != 6 {
		t.Fatalf("len(knots) = %d, want 6", len(d))
	}
	for l, want := range []float64{q.Eval(0), q.Eval(2), q.Eval(4), q.Eval(6), q.Eval(8), q.Eval(10)} {
		if d[l] != want {
			t.Errorf("d[%d] = %v, want %v", l, d[l], want)
		}
	}
	// Knots must be strictly increasing for an increasing psi.
	for l := 1; l < len(d); l++ {
		if d[l] <= d[l-1] {
			t.Errorf("knots not increasing at %d: %v <= %v", l, d[l], d[l-1])
		}
	}
}

// Property: for random valid quadratics, ψ is concave (midpoint above chord)
// and strictly increasing on [0, yMax], and InverseDeriv inverts Deriv.
func TestQuadraticShapeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r2 := -(0.001 + rng.Float64()) // negative
		r1 := 0.1 + rng.Float64()*10
		r0 := rng.Float64() * 5
		yMax := 0.9 * (-r1 / (2 * r2)) // strictly inside increasing region
		q, err := NewQuadratic(r2, r1, r0, yMax)
		if err != nil {
			return false
		}
		a := rng.Float64() * yMax
		b := rng.Float64() * yMax
		mid := (a + b) / 2
		if q.Eval(mid) < (q.Eval(a)+q.Eval(b))/2-1e-9 {
			return false // concavity violated
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		if hi > lo && q.Eval(hi) <= q.Eval(lo) {
			return false // monotonicity violated
		}
		y := rng.Float64() * yMax
		back, ok := q.InverseDeriv(q.Deriv(y))
		return ok && math.Abs(back-y) < 1e-6*(1+y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
