package spans

import (
	"sort"
	"sync"
	"time"
)

// Recorder collection defaults; NewRecorder applies them for zero/negative
// arguments.
const (
	// DefaultRecent is the recent-trace ring capacity.
	DefaultRecent = 64
	// DefaultSlowest is how many slowest completed traces are retained.
	DefaultSlowest = 16
	// maxSpansPerTrace caps one trace's span count; spans beyond it are
	// counted in Trace.Dropped instead of retained, bounding memory
	// against runaway instrumentation.
	maxSpansPerTrace = 512
)

// Trace is one completed (or in-flight) trace: every recorded span of one
// trace ID. Spans appear in completion (End) order, so the root span —
// the one with Parent == 0 that closes the trace — is last.
type Trace struct {
	ID TraceID `json:"id"`
	// Start and End are the root span's bounds; Start is the zero time
	// until the root ends.
	Start time.Time  `json:"start"`
	End   time.Time  `json:"end"`
	Spans []SpanData `json:"spans"`
	// Dropped counts spans discarded past the per-trace cap.
	Dropped int `json:"dropped,omitempty"`
}

// Duration is the root span's wall time (zero until the root ends).
func (t Trace) Duration() time.Duration { return t.End.Sub(t.Start) }

// Root returns the trace's root span (Parent == 0) and whether one has
// completed yet.
func (t Trace) Root() (SpanData, bool) {
	for i := len(t.Spans) - 1; i >= 0; i-- {
		if t.Spans[i].Parent == 0 {
			return t.Spans[i], true
		}
	}
	return SpanData{}, false
}

// Recorder collects finished spans into traces and retains a bounded
// window: a ring of the most recently completed traces plus the N slowest
// completed traces (by root-span duration), so a burst of fast requests
// cannot evict the slow outlier that prompted the investigation. All
// methods are safe for concurrent use; a nil *Recorder ignores records
// and reads as empty.
type Recorder struct {
	mu      sync.Mutex
	recent  int
	slowN   int
	active  map[TraceID]*Trace // in-flight: no root span ended yet
	ring    []Trace            // completed, ring buffer
	ringPos int
	ringLen int
	slowest []Trace // completed, sorted by Duration descending
	// completedCount counts traces ever completed (monotonic).
	completedCount uint64
}

// NewRecorder builds a recorder retaining the given number of recent and
// slowest completed traces (defaults applied for values ≤ 0).
func NewRecorder(recent, slowest int) *Recorder {
	if recent <= 0 {
		recent = DefaultRecent
	}
	if slowest <= 0 {
		slowest = DefaultSlowest
	}
	return &Recorder{
		recent:  recent,
		slowN:   slowest,
		active:  make(map[TraceID]*Trace),
		ring:    make([]Trace, recent),
		slowest: make([]Trace, 0, slowest),
	}
}

// record files one finished span under its trace; when the span is a root
// (Parent == 0), the trace completes and moves into the retained windows.
func (r *Recorder) record(sd SpanData) {
	if r == nil || sd.Trace.IsZero() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tr := r.active[sd.Trace]
	if tr == nil {
		// Bound the in-flight map: a trace whose root never ends must
		// not leak forever. Evict an arbitrary entry past 4× the ring —
		// best-effort, and harmless for well-formed instrumentation.
		if len(r.active) >= 4*r.recent {
			for id := range r.active {
				delete(r.active, id)
				break
			}
		}
		tr = &Trace{ID: sd.Trace}
		r.active[sd.Trace] = tr
	}
	if len(tr.Spans) >= maxSpansPerTrace {
		tr.Dropped++
		if sd.Parent != 0 {
			return
		}
		// A root past the cap still completes the trace below.
	} else {
		tr.Spans = append(tr.Spans, sd)
	}
	if sd.Parent != 0 {
		return
	}
	// Root ended: the trace is complete.
	tr.Start, tr.End = sd.Start, sd.End
	delete(r.active, sd.Trace)
	r.completedCount++
	r.ring[r.ringPos] = *tr
	r.ringPos = (r.ringPos + 1) % r.recent
	if r.ringLen < r.recent {
		r.ringLen++
	}
	r.insertSlowest(*tr)
}

// insertSlowest keeps r.slowest sorted by duration descending, capped at
// r.slowN. Caller holds r.mu.
func (r *Recorder) insertSlowest(tr Trace) {
	d := tr.Duration()
	if len(r.slowest) == r.slowN && d <= r.slowest[len(r.slowest)-1].Duration() {
		return
	}
	i := sort.Search(len(r.slowest), func(i int) bool {
		return r.slowest[i].Duration() < d
	})
	r.slowest = append(r.slowest, Trace{})
	copy(r.slowest[i+1:], r.slowest[i:])
	r.slowest[i] = tr
	if len(r.slowest) > r.slowN {
		r.slowest = r.slowest[:r.slowN]
	}
}

// Recent returns the retained recently completed traces, newest first.
// The result is a deep-enough copy: callers may hold it across further
// recording.
func (r *Recorder) Recent() []Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Trace, 0, r.ringLen)
	for i := 0; i < r.ringLen; i++ {
		idx := (r.ringPos - 1 - i + r.recent) % r.recent
		out = append(out, copyTrace(r.ring[idx]))
	}
	return out
}

// Slowest returns the retained slowest completed traces, slowest first.
func (r *Recorder) Slowest() []Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Trace, len(r.slowest))
	for i, tr := range r.slowest {
		out[i] = copyTrace(tr)
	}
	return out
}

// Lookup finds a trace by ID across the in-flight, recent, and slowest
// windows (an in-flight trace has no Start/End yet).
func (r *Recorder) Lookup(id TraceID) (Trace, bool) {
	if r == nil || id.IsZero() {
		return Trace{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < r.ringLen; i++ {
		idx := (r.ringPos - 1 - i + r.recent) % r.recent
		if r.ring[idx].ID == id {
			return copyTrace(r.ring[idx]), true
		}
	}
	for _, tr := range r.slowest {
		if tr.ID == id {
			return copyTrace(tr), true
		}
	}
	if tr := r.active[id]; tr != nil {
		return copyTrace(*tr), true
	}
	return Trace{}, false
}

// Completed returns how many traces have completed since the recorder
// was built (monotonic; retained or not).
func (r *Recorder) Completed() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.completedCount
}

// copyTrace copies a trace with its span slice, so returned traces are
// immune to further recording (spans themselves are values).
func copyTrace(tr Trace) Trace {
	out := tr
	out.Spans = make([]SpanData, len(tr.Spans))
	copy(out.Spans, tr.Spans)
	return out
}
