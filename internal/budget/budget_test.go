package budget

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dyncontract/internal/core"
	"dyncontract/internal/effort"
	"dyncontract/internal/worker"
)

func menu(id string, opts ...Option) Menu {
	return Menu{AgentID: id, Options: append([]Option{{K: 0}}, opts...)}
}

func TestMenuValidate(t *testing.T) {
	ok := menu("a", Option{K: 1, Cost: 1, Benefit: 2})
	if err := ok.Validate(); err != nil {
		t.Errorf("valid menu rejected: %v", err)
	}
	bad := []Menu{
		{AgentID: "", Options: []Option{{K: 0}}},
		{AgentID: "a"},
		{AgentID: "a", Options: []Option{{K: 1, Cost: 1, Benefit: 1}}}, // no zero option
		{AgentID: "a", Options: []Option{{K: 0}, {K: 1, Cost: -1}}},
		{AgentID: "a", Options: []Option{{K: 0}, {K: 1, Cost: math.NaN()}}},
	}
	for i, m := range bad {
		if err := m.Validate(); !errors.Is(err, ErrBadInput) {
			t.Errorf("bad menu %d accepted", i)
		}
	}
}

func TestSolveDPExactSmall(t *testing.T) {
	menus := []Menu{
		menu("a", Option{K: 1, Cost: 2, Benefit: 3}, Option{K: 2, Cost: 4, Benefit: 5}),
		menu("b", Option{K: 1, Cost: 3, Benefit: 4}),
	}
	// Budget 5: best is a@K1 (2,3) + b@K1 (3,4) = benefit 7.
	alloc, err := SolveDP(menus, 5, 500)
	if err != nil {
		t.Fatalf("SolveDP: %v", err)
	}
	if alloc.TotalBenefit != 7 {
		t.Errorf("benefit = %v, want 7 (choice %+v)", alloc.TotalBenefit, alloc.Choice)
	}
	if alloc.TotalCost > 5 {
		t.Errorf("cost %v exceeds budget", alloc.TotalCost)
	}
	// Budget 4: a@K2 alone (4,5) beats a@K1+nothing (3) and b alone (4).
	alloc, err = SolveDP(menus, 4, 400)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.TotalBenefit != 5 {
		t.Errorf("budget 4: benefit = %v, want 5", alloc.TotalBenefit)
	}
	// Budget 0: nothing affordable.
	alloc, err = SolveDP(menus, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.TotalBenefit != 0 || alloc.TotalCost != 0 {
		t.Errorf("budget 0: %+v", alloc)
	}
}

func TestSolveGreedyMatchesSmall(t *testing.T) {
	menus := []Menu{
		menu("a", Option{K: 1, Cost: 2, Benefit: 3}, Option{K: 2, Cost: 4, Benefit: 5}),
		menu("b", Option{K: 1, Cost: 3, Benefit: 4}),
	}
	alloc, err := SolveGreedy(menus, 5)
	if err != nil {
		t.Fatalf("SolveGreedy: %v", err)
	}
	if alloc.TotalBenefit != 7 {
		t.Errorf("benefit = %v, want 7", alloc.TotalBenefit)
	}
	if alloc.TotalCost > 5 {
		t.Errorf("cost %v exceeds budget", alloc.TotalCost)
	}
}

func TestSolveGreedyBestSingleFallback(t *testing.T) {
	// One huge-efficiency cheap increment would trap the plain greedy;
	// the single big option is better and affordable.
	menus := []Menu{
		menu("small", Option{K: 1, Cost: 0.1, Benefit: 1}),
		menu("big", Option{K: 1, Cost: 10, Benefit: 50}),
	}
	alloc, err := SolveGreedy(menus, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy takes small (0.1, 1) then cannot afford big (needs 10 with
	// 9.9 left); fallback must pick big alone.
	if alloc.TotalBenefit != 50 {
		t.Errorf("benefit = %v, want 50 via best-single fallback (choice %+v)",
			alloc.TotalBenefit, alloc.Choice)
	}
}

func TestFrontierDominanceAndConcavity(t *testing.T) {
	opts := []Option{
		{K: 0, Cost: 0, Benefit: 0},
		{K: 1, Cost: 1, Benefit: 5},
		{K: 2, Cost: 2, Benefit: 4}, // dominated: dearer, less benefit
		{K: 3, Cost: 3, Benefit: 6}, // LP-dominated by 1→4 line
		{K: 4, Cost: 4, Benefit: 10},
	}
	f := frontier(opts)
	// Expect origin, K1, K4 — K2 dominated, K3 under the hull.
	if len(f) != 3 || f[1].K != 1 || f[2].K != 4 {
		t.Errorf("frontier = %+v", f)
	}
	// Efficiencies strictly decreasing.
	for j := 2; j < len(f); j++ {
		e1 := (f[j-1].Benefit - f[j-2].Benefit) / (f[j-1].Cost - f[j-2].Cost)
		e2 := (f[j].Benefit - f[j-1].Benefit) / (f[j].Cost - f[j-1].Cost)
		if e2 >= e1 {
			t.Errorf("frontier not concave: %v then %v", e1, e2)
		}
	}
}

func TestSolveErrors(t *testing.T) {
	menus := []Menu{menu("a", Option{K: 1, Cost: 1, Benefit: 1})}
	if _, err := SolveDP(nil, 1, 10); !errors.Is(err, ErrBadInput) {
		t.Error("empty menus accepted")
	}
	if _, err := SolveDP(menus, -1, 10); !errors.Is(err, ErrBadInput) {
		t.Error("negative budget accepted")
	}
	if _, err := SolveDP(menus, 1, 0); !errors.Is(err, ErrBadInput) {
		t.Error("steps=0 accepted")
	}
	if _, err := SolveGreedy(append(menus, menus[0]), 1); !errors.Is(err, ErrBadInput) {
		t.Error("duplicate menus accepted")
	}
}

func TestMenuFromResult(t *testing.T) {
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	part, err := effort.NewPartition(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := worker.NewHonest("w", psi, 1, part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Design(a, core.Config{Part: part, Mu: 1, W: 1.5, WantCandidates: true})
	if err != nil {
		t.Fatal(err)
	}
	m := MenuFromResult(res, 1.5)
	if err := m.Validate(); err != nil {
		t.Fatalf("menu invalid: %v", err)
	}
	if len(m.Options) != part.M+1 { // m candidates + no-contract
		t.Errorf("options = %d, want %d", len(m.Options), part.M+1)
	}
	for _, o := range m.Options[1:] {
		if o.Benefit <= 0 || o.Cost < 0 {
			t.Errorf("option %+v not positive", o)
		}
	}
}

// Property: greedy respects the budget, achieves at least half the DP
// value (the MCKP guarantee), and DP respects the budget too.
func TestGreedyHalfApproximationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		menus := make([]Menu, n)
		for i := range menus {
			m := Menu{AgentID: fmt.Sprintf("a%d", i), Options: []Option{{K: 0}}}
			for k := 1; k <= 1+rng.Intn(5); k++ {
				m.Options = append(m.Options, Option{
					K:       k,
					Cost:    rng.Float64() * 10,
					Benefit: rng.Float64() * 10,
				})
			}
			menus[i] = m
		}
		budget := rng.Float64() * 20
		greedy, err := SolveGreedy(menus, budget)
		if err != nil {
			return false
		}
		dp, err := SolveDP(menus, budget, 2000)
		if err != nil {
			return false
		}
		if greedy.TotalCost > budget+1e-9 || dp.TotalCost > budget+1e-9 {
			return false
		}
		// DP discretization rounds costs up, so greedy can even beat it;
		// the guarantee direction is greedy >= dp/2 − ε.
		return greedy.TotalBenefit >= dp.TotalBenefit/2-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: both solvers are monotone in the budget.
func TestBudgetMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		menus := []Menu{
			menu("a", Option{K: 1, Cost: rng.Float64() * 5, Benefit: rng.Float64() * 5},
				Option{K: 2, Cost: 5 + rng.Float64()*5, Benefit: 5 + rng.Float64()*5}),
			menu("b", Option{K: 1, Cost: rng.Float64() * 5, Benefit: rng.Float64() * 5}),
		}
		prevG, prevD := -1.0, -1.0
		for _, b := range []float64{0, 2, 5, 10, 20} {
			g, err := SolveGreedy(menus, b)
			if err != nil {
				return false
			}
			d, err := SolveDP(menus, b, 1000)
			if err != nil {
				return false
			}
			if g.TotalBenefit < prevG-1e-9 || d.TotalBenefit < prevD-1e-9 {
				return false
			}
			prevG, prevD = g.TotalBenefit, d.TotalBenefit
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
