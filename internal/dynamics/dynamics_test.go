package dynamics

import (
	"context"
	"fmt"
	"testing"

	"dyncontract/internal/effort"
	"dyncontract/internal/platform"
	"dyncontract/internal/reputation"
	"dyncontract/internal/worker"
)

func dynPopulation(t *testing.T) *platform.Population {
	t.Helper()
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	part, err := effort.NewPartition(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	pop := &platform.Population{
		Weights:    make(map[string]float64),
		MaliceProb: make(map[string]float64),
		Part:       part,
		Mu:         1,
	}
	for i := 0; i < 5; i++ {
		a, err := worker.NewHonest(fmt.Sprintf("h%02d", i), psi, 1, part.YMax())
		if err != nil {
			t.Fatal(err)
		}
		pop.Agents = append(pop.Agents, a)
		// Deliberately wrong initial beliefs; the loop must correct them.
		pop.Weights[a.ID] = 0.2 + 0.3*float64(i)
		pop.MaliceProb[a.ID] = 0.5
	}
	return pop
}

func newTracker(t *testing.T) *reputation.Tracker {
	t.Helper()
	tr, err := reputation.NewTracker(reputation.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunConvergesOnHonestPopulation(t *testing.T) {
	pop := dynPopulation(t)
	// The loop contracts geometrically at the tracker's decay rate
	// (~0.95/round), so convergence is linear; 1e-4 on weights is the
	// practical fixed-point threshold.
	res, err := Run(context.Background(), pop, &platform.DynamicPolicy{}, newTracker(t),
		Config{MaxRounds: 60, Tol: 1e-4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Converged {
		t.Fatalf("loop did not converge in %d rounds (deltas %v)", res.Rounds, res.WeightDeltas)
	}
	if res.ConvergedAt < 0 || res.ConvergedAt >= res.Rounds {
		t.Errorf("ConvergedAt = %d, Rounds = %d", res.ConvergedAt, res.Rounds)
	}
	// With identical honest behaviour, all final weights coincide.
	var first float64
	firstSet := false
	for _, w := range res.FinalWeights {
		if !firstSet {
			first, firstSet = w, true
			continue
		}
		if w > first+1e-3 || w < first-1e-3 {
			t.Errorf("final weights not uniform: %v", res.FinalWeights)
		}
	}
	// The deltas must trend downward (EWMA contraction).
	if len(res.WeightDeltas) >= 3 {
		last := res.WeightDeltas[len(res.WeightDeltas)-1]
		if last > res.WeightDeltas[1] {
			t.Errorf("weight deltas did not contract: %v", res.WeightDeltas)
		}
	}
}

func TestRunUtilityStabilizes(t *testing.T) {
	pop := dynPopulation(t)
	res, err := Run(context.Background(), pop, &platform.DynamicPolicy{}, newTracker(t),
		Config{MaxRounds: 60, Tol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Utilities) < 3 {
		t.Fatalf("too few rounds: %d", len(res.Utilities))
	}
	lastTwo := res.Utilities[len(res.Utilities)-2:]
	if diff := lastTwo[1] - lastTwo[0]; diff > 0.1 || diff < -0.1 {
		t.Errorf("utility still moving at convergence: %v", res.Utilities)
	}
	// And the big correction happens in round 1: the wrong priors are
	// repaired immediately once behaviour is observed.
	if !(res.Utilities[1] > 2*res.Utilities[0]) {
		t.Errorf("round-1 utility %v did not jump from mispriced round 0 (%v)",
			res.Utilities[1], res.Utilities[0])
	}
}

func TestRunMaxRoundsWithoutConvergence(t *testing.T) {
	pop := dynPopulation(t)
	// Impossible tolerance: must exhaust MaxRounds unconverged.
	res, err := Run(context.Background(), pop, &platform.DynamicPolicy{}, newTracker(t),
		Config{MaxRounds: 3, Tol: 1e-300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("converged under impossible tolerance")
	}
	if res.Rounds != 3 || res.ConvergedAt != -1 {
		t.Errorf("Rounds = %d, ConvergedAt = %d", res.Rounds, res.ConvergedAt)
	}
}

func TestRunValidation(t *testing.T) {
	pop := dynPopulation(t)
	tracker := newTracker(t)
	ctx := context.Background()
	if _, err := Run(ctx, pop, &platform.DynamicPolicy{}, tracker, Config{MaxRounds: 1, Tol: 0.1}); err == nil {
		t.Error("maxRounds=1 accepted")
	}
	if _, err := Run(ctx, pop, &platform.DynamicPolicy{}, tracker, Config{MaxRounds: 5, Tol: 0}); err == nil {
		t.Error("tol=0 accepted")
	}
	if _, err := Run(ctx, pop, &platform.DynamicPolicy{}, nil, Config{MaxRounds: 5, Tol: 0.1}); err == nil {
		t.Error("nil tracker accepted")
	}
}

func TestRunCancelled(t *testing.T) {
	pop := dynPopulation(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, pop, &platform.DynamicPolicy{}, newTracker(t), Config{MaxRounds: 5, Tol: 0.1}); err == nil {
		t.Error("cancelled context accepted")
	}
}

func TestHonestObservations(t *testing.T) {
	round := platform.Round{
		Outcomes: []platform.AgentOutcome{
			{AgentID: "a", Size: 1},
			{AgentID: "b", Size: 3},
			{AgentID: "c", Excluded: true},
		},
	}
	obs := HonestObservations(0.4)(round)
	if len(obs) != 2 {
		t.Fatalf("observations = %d, want 2 (excluded agent skipped)", len(obs))
	}
	if obs[0].ReviewScore != 0.4 || obs[0].Promotional {
		t.Errorf("obs[0] = %+v", obs[0])
	}
	if obs[1].Partners != 2 {
		t.Errorf("community partner count = %d, want 2", obs[1].Partners)
	}
}
