package server

import "dyncontract/internal/telemetry"

// Server-level metric names (the per-route request metrics use
// telemetry.InstrumentHandler's dyncontract_http_* scheme on top of these).
const (
	// metricSessions is the number of live sessions.
	metricSessions = "dyncontract_server_sessions"
	// metricRoundQueueDepth / metricDesignQueueDepth are the summed queue
	// occupancies across sessions — the backpressure dials.
	metricRoundQueueDepth  = "dyncontract_server_round_queue_depth"
	metricDesignQueueDepth = "dyncontract_server_design_queue_depth"
	// metricInFlight counts admitted-but-unanswered requests across all
	// sessions (queued or executing).
	metricInFlight = "dyncontract_server_inflight"
	// metricRejected counts requests turned away by backpressure (full
	// queue, in-flight cap, or draining).
	metricRejected = "dyncontract_server_rejected_total"
	// metricRounds / metricDrifts count successfully applied commands.
	metricRounds = "dyncontract_server_rounds_total"
	metricDrifts = "dyncontract_server_drifts_total"
	// metricBatches counts executed design micro-batches; metricBatchSize
	// histograms how many queries each one coalesced.
	metricBatches   = "dyncontract_server_design_batches_total"
	metricBatchSize = "dyncontract_server_design_batch_size"
	// metricSessionQueueDepth is the commands sitting in session queues
	// right now; metricSessionQueueWait histograms how long each one sat
	// before the writer picked it up. Depth says the queues are backed up;
	// wait says what that costs a request.
	metricSessionQueueDepth = "dyncontract_server_session_queue_depth"
	metricSessionQueueWait  = "dyncontract_server_session_queue_wait_seconds"
)

// batch-size histogram layout: unit bins over [0, 256); batches larger than
// the size trigger can never exist, so the range is generous.
const (
	batchSizeLo   = 0
	batchSizeHi   = 256
	batchSizeBins = 256
)

// queue-wait histogram layout: 10ms bins over [0, 2.5s), matching the
// HTTP latency layout so queue wait reads on the same scale as total
// request latency.
const (
	queueWaitLo   = 0
	queueWaitHi   = 2.5
	queueWaitBins = 250
)

// serverMetrics resolves the server's metric handles once. The nil
// serverMetrics is fully operational as a no-op (telemetry's nil-is-off
// rule), so an un-instrumented Server costs nothing.
type serverMetrics struct {
	sessions    *telemetry.Gauge
	roundQueue  *telemetry.Gauge
	designQueue *telemetry.Gauge
	inFlight    *telemetry.Gauge
	rejected    *telemetry.Counter
	rounds      *telemetry.Counter
	drifts      *telemetry.Counter
	batches     *telemetry.Counter
	batchSize   *telemetry.Histogram
	queueDepth  *telemetry.Gauge
	queueWaitH  *telemetry.Histogram
}

func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	if reg == nil {
		return nil
	}
	return &serverMetrics{
		sessions:    reg.Gauge(metricSessions),
		roundQueue:  reg.Gauge(metricRoundQueueDepth),
		designQueue: reg.Gauge(metricDesignQueueDepth),
		inFlight:    reg.Gauge(metricInFlight),
		rejected:    reg.Counter(metricRejected),
		rounds:      reg.Counter(metricRounds),
		drifts:      reg.Counter(metricDrifts),
		batches:     reg.Counter(metricBatches),
		batchSize:   reg.Histogram(metricBatchSize, batchSizeLo, batchSizeHi, batchSizeBins),
		queueDepth:  reg.Gauge(metricSessionQueueDepth),
		queueWaitH:  reg.Histogram(metricSessionQueueWait, queueWaitLo, queueWaitHi, queueWaitBins),
	}
}

func (m *serverMetrics) addSessions(d float64) {
	if m != nil {
		m.sessions.Add(d)
	}
}

func (m *serverMetrics) addRoundQueue(d float64) {
	if m != nil {
		m.roundQueue.Add(d)
	}
}

func (m *serverMetrics) addDesignQueue(d float64) {
	if m != nil {
		m.designQueue.Add(d)
	}
}

func (m *serverMetrics) addInFlight(d float64) {
	if m != nil {
		m.inFlight.Add(d)
	}
}

func (m *serverMetrics) reject() {
	if m != nil {
		m.rejected.Inc()
	}
}

func (m *serverMetrics) roundDone() {
	if m != nil {
		m.rounds.Inc()
	}
}

func (m *serverMetrics) driftDone() {
	if m != nil {
		m.drifts.Inc()
	}
}

func (m *serverMetrics) addSessionQueue(d float64) {
	if m != nil {
		m.queueDepth.Add(d)
	}
}

// queueWait records how long a command waited in its session queue; label
// is the trace ID of the waiting request (exemplar, empty when untraced).
func (m *serverMetrics) queueWait(seconds float64, label string) {
	if m != nil {
		m.queueWaitH.ObserveExemplar(seconds, label)
	}
}

func (m *serverMetrics) batchDone(size int) {
	if m != nil {
		m.batches.Inc()
		m.batchSize.Observe(float64(size))
	}
}
