package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"dyncontract/internal/baseline"
	"dyncontract/internal/effort"
	"dyncontract/internal/engine"
	"dyncontract/internal/experiments"
	"dyncontract/internal/journal"
	"dyncontract/internal/obs"
	"dyncontract/internal/platform"
	"dyncontract/internal/spans"
	"dyncontract/internal/synth"
	"dyncontract/internal/telemetry"
)

// Config tunes a Server. The zero value is usable: Defaults fills every
// unset field.
type Config struct {
	// BatchWindow is how long the design batcher holds the first query of
	// a micro-batch open for company. Default 2ms.
	BatchWindow time.Duration
	// BatchMax closes a micro-batch early once this many queries have
	// gathered. Default 64.
	BatchMax int
	// CommandQueue bounds each session's round/drift queue. Default 16.
	CommandQueue int
	// DesignQueue bounds each session's design-query queue. Default 1024.
	DesignQueue int
	// MaxInFlight caps admitted-but-unanswered requests per session
	// (queued or executing); beyond it, 429. Default 256.
	MaxInFlight int
	// MaxSessions caps live sessions; beyond it, session creation 429s.
	// Default 64.
	MaxSessions int
	// RequestTimeout bounds each request's server-side context. Default 30s.
	RequestTimeout time.Duration
	// Metrics instruments every route and the engine sessions; nil is off.
	Metrics *telemetry.Registry
	// Tracer records execution spans for sampled requests — HTTP route,
	// session queue wait, execution, engine round, stages, shards — and
	// serves them under GET /debug/traces. Nil is off: requests cost no
	// tracing work at all.
	Tracer *spans.Tracer
	// Logger receives request logs (route, status, duration, trace and
	// session IDs) and session events such as drift-scope escalations.
	// Nil is off.
	Logger *slog.Logger
	// Journal, when non-nil, makes sessions durable: every command is
	// written ahead to a per-session log before it executes, snapshots
	// compact the log, and Recover restores journaled sessions at boot
	// with byte-identical ledgers. Nil is off.
	Journal *journal.Store
	// SnapshotEvery auto-snapshots each session after this many
	// successful commands; 0 means manual snapshots only (via
	// POST /v1/sessions/{id}/snapshot).
	SnapshotEvery int
}

// Defaults returns cfg with every unset field at its default.
func (cfg Config) Defaults() Config {
	if cfg.BatchWindow <= 0 {
		cfg.BatchWindow = 2 * time.Millisecond
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 64
	}
	if cfg.CommandQueue <= 0 {
		cfg.CommandQueue = 16
	}
	if cfg.DesignQueue <= 0 {
		cfg.DesignQueue = 1024
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 64
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	return cfg
}

// Server is the serving layer: a registry of long-lived engine sessions
// behind the versioned JSON API. Create one with New, mount Handler, and
// call Drain before exiting.
type Server struct {
	cfg     Config
	metrics *serverMetrics
	tracer  *spans.Tracer
	logger  *slog.Logger
	mux     *http.ServeMux

	// baseCtx outlives any single request: design batches and the writer
	// loops run under it so one client's deadline cannot cancel work other
	// clients share. Drain cancels it last.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	mu       sync.Mutex
	sessions map[string]*session
	nextID   int
	draining bool

	// testWrapPolicy, when set (tests only), wraps each new session's
	// policy — the seam shutdown tests use to hold a round mid-flight.
	testWrapPolicy func(engine.Policy) engine.Policy
}

// New builds a Server and its route table.
func New(cfg Config) *Server {
	cfg = cfg.Defaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		metrics:    newServerMetrics(cfg.Metrics),
		tracer:     cfg.Tracer,
		logger:     cfg.Logger,
		baseCtx:    ctx,
		cancelBase: cancel,
		sessions:   make(map[string]*session),
	}
	s.mux = http.NewServeMux()
	route := func(pattern, name string, h http.HandlerFunc) {
		// Trace middleware sits outermost so the root span covers the whole
		// request (the latency metric included) and the instrumented handler
		// can read the span off the request context for its exemplar label.
		var inner http.Handler
		if s.tracer != nil {
			inner = telemetry.InstrumentHandlerExemplar(cfg.Metrics, name, h, traceExemplar)
		} else {
			inner = telemetry.InstrumentHandler(cfg.Metrics, name, h)
		}
		if s.tracer != nil || s.logger != nil {
			inner = s.traced(name, inner)
		}
		s.mux.Handle(pattern, inner)
	}
	route("GET /healthz", "healthz", s.handleHealthz)
	route("POST /v1/sessions", "sessions_create", s.handleCreateSession)
	route("GET /v1/sessions/{id}", "sessions_get", s.handleGetSession)
	route("GET /v1/sessions/{id}/rounds", "rounds_list", s.handleListRounds)
	route("POST /v1/sessions/{id}/rounds", "rounds_advance", s.handleAdvanceRound)
	route("POST /v1/sessions/{id}/design", "design", s.handleDesign)
	route("POST /v1/sessions/{id}/drift", "drift", s.handleDrift)
	route("POST /v1/sessions/{id}/snapshot", "snapshot", s.handleSnapshot)
	if cfg.Metrics != nil || s.tracer.Recorder() != nil {
		// /metrics + /debug/pprof/ + /debug/traces
		s.mux.Handle("/", obs.HandlerWith(cfg.Metrics, s.tracer.Recorder()))
	}
	return s
}

// traceExemplar labels a latency observation with the request's trace ID,
// linking the histogram's worst sample back to a retrievable trace.
func traceExemplar(r *http.Request) string {
	if sp := spans.FromContext(r.Context()); sp != nil {
		return sp.TraceID().String()
	}
	return ""
}

// statusCapture remembers the first status code written so the trace span
// and the request log can carry it.
type statusCapture struct {
	http.ResponseWriter
	status int
}

func (c *statusCapture) WriteHeader(code int) {
	if c.status == 0 {
		c.status = code
	}
	c.ResponseWriter.WriteHeader(code)
}

func (c *statusCapture) Write(b []byte) (int, error) {
	if c.status == 0 {
		c.status = http.StatusOK
	}
	return c.ResponseWriter.Write(b)
}

// traced wraps a route with the tracing + request-log middleware. The
// client's X-Request-Id (any non-empty string — literal 32-hex trace IDs
// round-trip, anything else hashes deterministically) names the trace;
// absent one, the server mints an ID. Either way the response echoes the
// ID in X-Request-Id so the client can fetch its trace from
// /debug/traces?id=. Sampled-out requests still echo the header but
// record nothing.
func (s *Server) traced(name string, next http.Handler) http.Handler {
	spanName := "http " + name
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := r.Header.Get(spans.HeaderRequestID)
		var sp *spans.Span
		if s.tracer != nil {
			id, ok := spans.ParseTraceHeader(reqID)
			if !ok {
				id = s.tracer.NewTraceID()
				reqID = id.String()
			}
			if sp = s.tracer.StartRoot(spanName, id); sp != nil {
				sp.SetAttr("route", name)
				sp.SetAttr("method", r.Method)
				r = r.WithContext(spans.ContextWith(r.Context(), sp))
			}
		}
		if reqID != "" {
			w.Header().Set(spans.HeaderRequestID, reqID)
		}
		sw := &statusCapture{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		if sp != nil {
			sp.SetInt("status", int64(status))
			sp.End()
		}
		if s.logger != nil {
			s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("route", name),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("session", r.PathValue("id")),
				slog.String("trace", reqID),
				slog.Int("status", status),
				slog.Duration("duration", time.Since(start)),
			)
		}
	})
}

// Handler returns the server's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain shuts the server down gracefully: new work is refused (healthz
// flips to 503), every session finishes its in-flight command and batch,
// queued work is answered 503, and the call returns when all session
// goroutines have exited or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	all := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		all = append(all, sess)
	}
	s.mu.Unlock()
	for _, sess := range all {
		sess.close()
	}
	defer s.cancelBase()
	for _, sess := range all {
		for _, ch := range []chan struct{}{sess.done, sess.batchDn} {
			select {
			case <-ch:
			case <-ctx.Done():
				return fmt.Errorf("server: drain: session %s still busy: %w", sess.id, ctx.Err())
			}
		}
	}
	return nil
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(`{"status":"ok"}` + "\n"))
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess, err := s.newSession(&req)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, CreateSessionResponse{
		ID:     sess.id,
		Agents: len(sess.pop.Agents),
		Policy: sess.policyName,
	})
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, sess.info())
}

func (s *Server) handleListRounds(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, sess.rounds())
}

func (s *Server) handleAdvanceRound(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req AdvanceRoundRequest
	if !decodeBody(w, r, &req) {
		return
	}
	release, code, err := sess.admit()
	if err != nil {
		writeError(w, code, err)
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	cmd := command{ctx: ctx, kind: cmdRound, round: req, reply: make(chan cmdReply, 1)}
	if code, err := sess.submit(cmd); err != nil {
		writeError(w, code, err)
		return
	}
	// The writer always answers every queued command (drain included), so
	// waiting on the reply alone cannot hang past the drain.
	rep := <-cmd.reply
	if rep.err != nil {
		writeError(w, rep.code, rep.err)
		return
	}
	writeJSON(w, http.StatusOK, rep.round)
}

func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req DriftRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	release, code, err := sess.admit()
	if err != nil {
		writeError(w, code, err)
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	cmd := command{ctx: ctx, kind: cmdDrift, drift: &req, reply: make(chan cmdReply, 1)}
	if code, err := sess.submit(cmd); err != nil {
		writeError(w, code, err)
		return
	}
	rep := <-cmd.reply
	if rep.err != nil {
		writeError(w, rep.code, rep.err)
		return
	}
	writeJSON(w, http.StatusOK, rep.drift)
}

func (s *Server) handleDesign(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req DesignQueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	dreq, agentID, err := sess.resolveDesign(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	release, code, err := sess.admit()
	if err != nil {
		writeError(w, code, err)
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	dc := &designCall{ctx: ctx, agentID: agentID, req: dreq, reply: make(chan designReply, 1)}
	if code, err := sess.submitDesign(dc); err != nil {
		writeError(w, code, err)
		return
	}
	rep := <-dc.reply
	if rep.err != nil {
		writeError(w, rep.code, rep.err)
		return
	}
	writeJSON(w, http.StatusOK, DesignQueryResponse{
		AgentID:   agentID,
		Contract:  rep.contract,
		BatchSize: rep.batch,
	})
}

// lookup resolves {id} or writes 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*session, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no session %q", id))
		return nil, false
	}
	return sess, true
}

// newSession builds a population from the request, wires an engine around
// it, opens its journal (when durability is on), and registers the
// running session.
func (s *Server) newSession(req *CreateSessionRequest) (*session, error) {
	sess, err := s.buildSession(req)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errDraining
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		s.metrics.reject()
		return nil, fmt.Errorf("server: %d sessions live (limit %d): %w",
			len(s.sessions), s.cfg.MaxSessions, errTooMany)
	}
	s.nextID++
	id := "s" + strconv.Itoa(s.nextID)
	s.mu.Unlock()
	sess.id = id

	if s.cfg.Journal != nil {
		if err := s.openJournal(sess, req); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errDraining
	}
	s.sessions[id] = sess
	s.mu.Unlock()
	s.metrics.addSessions(1)
	sess.start()
	return sess, nil
}

// buildSession resolves a validated create request into an assembled (but
// unregistered, unnamed) session: population, policy, engine, queues.
func (s *Server) buildSession(req *CreateSessionRequest) (*session, error) {
	pop, err := buildPopulation(req)
	if err != nil {
		return nil, err
	}
	pol, polName, err := buildPolicy(req)
	if err != nil {
		return nil, err
	}
	return s.assembleSession(req, pop, pol, polName)
}

// assembleSession wires the engine and goroutine plumbing around an
// already-built population and policy. The caller assigns the ID; both
// session creation and journal recovery land here.
func (s *Server) assembleSession(req *CreateSessionRequest, pop *engine.Population, pol engine.Policy, polName string) (*session, error) {
	s.mu.Lock()
	wrap := s.testWrapPolicy
	s.mu.Unlock()
	if wrap != nil {
		pol = wrap(pol)
	}
	cache := engine.NewCache()
	capture := &captureObserver{}
	eng, err := engine.New(pop, engine.Config{
		Policy:    pol,
		Rounds:    1, // Step ignores the horizon; New requires it positive
		Observers: []engine.Observer{capture},
		Cache:     cache,
		Memo:      engine.NewRespondMemo(),
		Shards:    req.Shards,
		Metrics:   s.cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	return &session{
		name:       req.Name,
		policyName: polName,
		srv:        s,
		pop:        pop,
		eng:        eng,
		capture:    capture,
		designer:   &engine.Designer{Cache: cache, Metrics: s.cfg.Metrics},
		req:        req,
		cmds:       make(chan command, s.cfg.CommandQueue),
		designCh:   make(chan *designCall, s.cfg.DesignQueue),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
		batchDn:    make(chan struct{}),
	}, nil
}

// errTooMany marks capacity rejections; handlers map it to 429.
var errTooMany = errors.New("server: too many")

func buildPopulation(req *CreateSessionRequest) (*engine.Population, error) {
	if req.Scale != "" {
		return buildSynthetic(req)
	}
	return buildExplicit(req)
}

// buildSynthetic mints a population from the experiments pipeline — the
// same synthetic traces the CLIs simulate, so server sessions are directly
// comparable to offline runs with the same scale and seed.
func buildSynthetic(req *CreateSessionRequest) (*engine.Population, error) {
	var cfg synth.Config
	switch req.Scale {
	case "small":
		cfg = synth.SmallScale(req.Seed)
	case "paper":
		cfg = synth.PaperScale(req.Seed)
	}
	pipe, err := experiments.BuildPipeline(cfg)
	if err != nil {
		return nil, fmt.Errorf("server: synth pipeline: %w", err)
	}
	perClass := req.PerClass
	if perClass == 0 {
		perClass = 200
	}
	pop, err := pipe.BuildPopulation(experiments.DefaultParams(), perClass)
	if err != nil {
		return nil, fmt.Errorf("server: synth population: %w", err)
	}
	return pop, nil
}

// buildExplicit mints a population from inline agent specs.
func buildExplicit(req *CreateSessionRequest) (*engine.Population, error) {
	m := req.M
	if m == 0 {
		m = 20
	}
	part, err := effort.NewPartition(m, req.Delta)
	if err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrBadRequest)
	}
	mu := req.Mu
	if mu == 0 {
		mu = 1
	}
	pop := &engine.Population{
		Weights:    make(map[string]float64, len(req.Agents)),
		MaliceProb: make(map[string]float64),
		Part:       part,
		Mu:         mu,
	}
	for i := range req.Agents {
		spec := &req.Agents[i]
		a, err := spec.Agent()
		if err != nil {
			return nil, err
		}
		pop.Agents = append(pop.Agents, a)
		pop.Weights[a.ID] = spec.Weight
		if spec.Malice != 0 {
			pop.MaliceProb[a.ID] = spec.Malice
		}
	}
	if err := pop.Validate(); err != nil {
		return nil, fmt.Errorf("%v: %w", err, ErrBadRequest)
	}
	return pop, nil
}

func buildPolicy(req *CreateSessionRequest) (engine.Policy, string, error) {
	switch req.Policy {
	case "", "dynamic":
		return &platform.DynamicPolicy{}, "dynamic", nil
	case "exclude":
		th := req.Threshold
		if th == 0 {
			th = 0.5
		}
		return &baseline.ExcludeMalicious{Threshold: th}, "exclude", nil
	case "fixed":
		amt := req.Amount
		if amt <= 0 {
			return nil, "", fmt.Errorf("fixed policy needs amount > 0, got %v: %w", req.Amount, ErrBadRequest)
		}
		return &baseline.FixedPayment{Amount: amt}, "fixed", nil
	default:
		return nil, "", fmt.Errorf("unknown policy %q: %w", req.Policy, ErrBadRequest)
	}
}

// decodeBody strictly decodes the request body into dst, writing the error
// response itself on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := decodeJSON(body, dst); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

// statusFor maps classified errors to HTTP codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest), errors.Is(err, engine.ErrBadPopulation):
		return http.StatusBadRequest
	case errors.Is(err, errTooMany):
		return http.StatusTooManyRequests
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}
