// Command tracecheck is the smoke test's tracing probe: against a live
// contractd running with -trace it creates a small sharded session,
// advances one round under a known X-Request-Id, fetches the trace back
// from /debug/traces by that same id, and asserts the span tree covers
// the round end to end — HTTP handler root, session queue and execute
// spans, the engine round, its pipeline stages, and one design span per
// shard — and that the Chrome trace_event export of the same trace
// parses. Exit 0 on success, 1 with a diagnostic on any mismatch.
//
// Usage:
//
//	tracecheck -addr http://127.0.0.1:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"dyncontract/internal/server"
	"dyncontract/internal/spans"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "contractd base URL")
	flag.Parse()
	if err := run(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	fmt.Println("tracecheck: traced round covers HTTP -> queue -> engine -> stages -> shards")
}

func run(addr string) error {
	client := &http.Client{Timeout: 30 * time.Second}
	psi := server.PsiSpec{R2: -0.25, R1: 2}
	create := server.CreateSessionRequest{
		Agents: []server.AgentSpec{
			{ID: "h1", Class: "honest", Psi: psi, Beta: 1, Weight: 1},
			{ID: "h2", Class: "honest", Psi: psi, Beta: 1.2, Weight: 1},
			{ID: "m1", Class: "malicious", Psi: psi, Beta: 1, Omega: 0.5, Weight: 0.8, Malice: 0.9},
			{ID: "c1", Class: "community", Psi: psi, Beta: 1, Omega: 0.3, Size: 3, Weight: 0.5},
		},
		M: 10, Delta: 0.2, Mu: 1, Shards: 2,
	}
	var created server.CreateSessionResponse
	if err := post(client, addr+"/v1/sessions", "", create, &created, http.StatusCreated); err != nil {
		return fmt.Errorf("create session: %w", err)
	}

	const reqID = "tracecheck-round-1"
	var round server.RoundJSON
	if err := post(client, addr+"/v1/sessions/"+created.ID+"/rounds", reqID,
		server.AdvanceRoundRequest{}, &round, http.StatusOK); err != nil {
		return fmt.Errorf("advance round: %w", err)
	}

	// The trace is retrievable by the exact id the client sent.
	raw, err := get(client, addr+"/debug/traces?id="+reqID)
	if err != nil {
		return fmt.Errorf("fetch trace: %w", err)
	}
	var tr spans.Trace
	if err := json.Unmarshal(raw, &tr); err != nil {
		return fmt.Errorf("trace does not parse: %w (%s)", err, raw)
	}
	if err := checkTree(tr); err != nil {
		return fmt.Errorf("trace %s: %w", reqID, err)
	}

	// The same trace exports as Chrome trace_event JSON.
	raw, err = get(client, addr+"/debug/traces?id="+reqID+"&format=chrome")
	if err != nil {
		return fmt.Errorf("fetch chrome trace: %w", err)
	}
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &chrome); err != nil {
		return fmt.Errorf("chrome export does not parse: %w", err)
	}
	if len(chrome.TraceEvents) < len(tr.Spans) {
		return fmt.Errorf("chrome export has %d events for %d spans", len(chrome.TraceEvents), len(tr.Spans))
	}
	return nil
}

// checkTree walks the span tree down from the HTTP root and insists every
// layer of the round is present.
func checkTree(tr spans.Trace) error {
	root, ok := tr.Root()
	if !ok {
		return fmt.Errorf("no root span among %d spans", len(tr.Spans))
	}
	if root.Name != "http rounds_advance" {
		return fmt.Errorf("root span %q, want %q", root.Name, "http rounds_advance")
	}
	children := func(id spans.SpanID) map[string]spans.SpanData {
		m := map[string]spans.SpanData{}
		for _, sd := range tr.Spans {
			if sd.Parent == id {
				m[sd.Name] = sd
			}
		}
		return m
	}
	under := children(root.ID)
	if _, ok := under["session.queue"]; !ok {
		return fmt.Errorf("no session.queue span under root")
	}
	exec, ok := under["session.execute"]
	if !ok {
		return fmt.Errorf("no session.execute span under root")
	}
	round, ok := children(exec.ID)["engine.round"]
	if !ok {
		return fmt.Errorf("no engine.round span under session.execute")
	}
	stages := children(round.ID)
	for _, want := range []string{
		"engine.stage.design", "engine.stage.contracts", "engine.stage.respond",
		"engine.stage.settle", "engine.stage.observe",
	} {
		if _, ok := stages[want]; !ok {
			return fmt.Errorf("missing stage span %q", want)
		}
	}
	shardSpans := 0
	for _, sd := range tr.Spans {
		if sd.Parent == stages["engine.stage.design"].ID && sd.Name == "engine.shard.design" {
			shardSpans++
		}
	}
	if shardSpans != 2 {
		return fmt.Errorf("got %d engine.shard.design spans, want 2", shardSpans)
	}
	return nil
}

// post issues one JSON POST (carrying reqID as X-Request-Id when set) and
// decodes the response, insisting on the expected status.
func post(client *http.Client, url, reqID string, in, out any, want int) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set(spans.HeaderRequestID, reqID)
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != want {
		return fmt.Errorf("status %d (want %d): %s", resp.StatusCode, want, raw)
	}
	if reqID != "" && resp.Header.Get(spans.HeaderRequestID) != reqID {
		return fmt.Errorf("response did not echo X-Request-Id %q (got %q)",
			reqID, resp.Header.Get(spans.HeaderRequestID))
	}
	return json.Unmarshal(raw, out)
}

// get fetches one URL, insisting on 200.
func get(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	return raw, nil
}
