package experiments

import (
	"context"
	"fmt"

	"dyncontract/internal/baseline"
	"dyncontract/internal/cluster"
	"dyncontract/internal/platform"
)

// sensitivityRounds is the simulation horizon per estimator setting.
const sensitivityRounds = 3

// RunSensitivity is an ablation on a design choice DESIGN.md calls out:
// the requester's reliance on an external malice estimator ([14], [15]).
// It sweeps estimator quality from perfect to poor and compares the
// dynamic contract against the exclusion baseline at each level.
//
// Expected shape: the dynamic contract dominates at every quality level,
// and its margin widens as the estimator degrades — exclusion drops
// honest workers on false positives and keeps undetected attackers at
// full weight, while the dynamic contract's penalties degrade gracefully.
func RunSensitivity(p *Pipeline, params Params) (*Report, error) {
	settings := []struct {
		label  string
		tp, fp float64
	}{
		{"perfect", 1.0, 0.0},
		{"good", 0.9, 0.05},
		{"mediocre", 0.7, 0.15},
		{"poor", 0.55, 0.30},
	}
	rep := &Report{
		ID:     "sensitivity",
		Title:  "policy utility vs malice-estimator quality (ablation)",
		Header: []string{"estimator", "dynamic", "exclusion", "dynamic/exclusion"},
	}
	ctx := context.Background()
	dominates := true
	var ratios []float64
	for _, s := range settings {
		est := cluster.Estimator{TruePositive: s.tp, FalsePositive: s.fp, Jitter: 0.04, Seed: p.Seed}
		probs, err := est.Estimate(p.Trace)
		if err != nil {
			return nil, fmt.Errorf("sensitivity %s: %w", s.label, err)
		}
		// Re-run the pipeline's belief-dependent pieces with the variant
		// estimates: shallow-copy the pipeline and swap MaliceProb, which
		// WorkerWeight and BuildPopulation consume.
		variant := *p
		variant.MaliceProb = probs

		pop, err := variant.BuildPopulation(params, 150)
		if err != nil {
			return nil, fmt.Errorf("sensitivity %s: %w", s.label, err)
		}
		dynLedger, err := runLedger(ctx, pop, &platform.DynamicPolicy{}, sensitivityRounds, params)
		if err != nil {
			return nil, fmt.Errorf("sensitivity %s dynamic: %w", s.label, err)
		}
		exclLedger, err := runLedger(ctx, pop, &baseline.ExcludeMalicious{Threshold: 0.5}, sensitivityRounds, params)
		if err != nil {
			return nil, fmt.Errorf("sensitivity %s exclusion: %w", s.label, err)
		}
		dyn := platform.TotalUtility(dynLedger)
		excl := platform.TotalUtility(exclLedger)
		ratio := 0.0
		if excl != 0 {
			ratio = dyn / excl
		}
		ratios = append(ratios, ratio)
		if dyn <= excl {
			dominates = false
		}
		rep.Rows = append(rep.Rows, []string{s.label, f2(dyn), f2(excl), f3(ratio)})
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"dynamic contract dominates exclusion at every estimator quality: %v", dominates))
	if len(ratios) >= 2 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"margin widens as the estimator degrades (ratio %.3f at perfect vs %.3f at poor): %v",
			ratios[0], ratios[len(ratios)-1], ratios[len(ratios)-1] >= ratios[0]))
	}
	return rep, nil
}
