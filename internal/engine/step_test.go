package engine_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"dyncontract/internal/core"
	"dyncontract/internal/effort"
	"dyncontract/internal/engine"
	"dyncontract/internal/worker"
)

// TestStepMatchesRun pins the single-round hook: N Step calls produce a
// ledger identical to one Run over N rounds — same round indices, same
// outcomes, same totals — so a serving layer stepping a session on demand
// reproduces the batch engine exactly.
func TestStepMatchesRun(t *testing.T) {
	const rounds = 4
	ctx := context.Background()

	runLedger, err := engine.RunLedger(ctx, archetypePopulation(t, 9), engine.Config{
		Policy: &designPolicy{},
		Rounds: rounds,
		Cache:  engine.NewCache(),
	})
	if err != nil {
		t.Fatal(err)
	}

	led := &engine.Ledger{}
	eng, err := engine.New(archetypePopulation(t, 9), engine.Config{
		Policy:    &designPolicy{},
		Rounds:    1, // ignored by Step; must still validate
		Cache:     engine.NewCache(),
		Observers: []engine.Observer{led},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		if err := eng.Step(ctx); err != nil {
			t.Fatalf("Step %d: %v", i, err)
		}
		if got := eng.Stepped(); got != i+1 {
			t.Fatalf("Stepped() = %d after %d steps", got, i+1)
		}
	}

	if !reflect.DeepEqual(led.Rounds, runLedger) {
		t.Errorf("Step ledger differs from Run ledger:\nstep: %+v\nrun:  %+v", led.Rounds, runLedger)
	}
}

// TestStepErrorDoesNotAdvance pins the retry contract: a round failed by
// context cancellation leaves the counter and the ledger untouched, and a
// later Step with a live context completes that same round.
func TestStepErrorDoesNotAdvance(t *testing.T) {
	led := &engine.Ledger{}
	eng, err := engine.New(archetypePopulation(t, 6), engine.Config{
		Policy:    &designPolicy{},
		Rounds:    1,
		Observers: []engine.Observer{led},
	})
	if err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := eng.Step(canceled); err == nil {
		t.Fatal("Step with canceled context succeeded")
	}
	if got := eng.Stepped(); got != 0 {
		t.Fatalf("Stepped() = %d after failed step, want 0", got)
	}
	if len(led.Rounds) != 0 {
		t.Fatalf("failed step appended %d rounds to the ledger", len(led.Rounds))
	}
	if err := eng.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(led.Rounds) != 1 || led.Rounds[0].Index != 0 {
		t.Fatalf("retried step produced ledger %+v, want one round with index 0", led.Rounds)
	}
}

// TestStepReturnsErrStopVerbatim pins the Step/Run asymmetry: Run absorbs
// ErrStop (clean completion), Step hands it to the caller, who owns the
// loop — and the stopped round still counts as completed.
func TestStepReturnsErrStopVerbatim(t *testing.T) {
	eng, err := engine.New(archetypePopulation(t, 6), engine.Config{
		Policy: &designPolicy{},
		Rounds: 1,
		Observers: []engine.Observer{engine.Hooks{
			RoundEnd: func(engine.Round) error { return engine.ErrStop },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(context.Background()); !errors.Is(err, engine.ErrStop) {
		t.Fatalf("Step = %v, want ErrStop", err)
	}
	if got := eng.Stepped(); got != 1 {
		t.Fatalf("Stepped() = %d after stopped round, want 1", got)
	}
}

// TestDesignBatch pins the batch design entry: results are index-aligned,
// identical fingerprints share one contract pointer, the shared cache
// serves repeat batches without new solves, and concurrent batches against
// one designer race-cleanly (exercised under -race).
func TestDesignBatch(t *testing.T) {
	pop := archetypePopulation(t, 6)
	cache := engine.NewCache()
	d := &engine.Designer{Cache: cache}

	var reqs []engine.DesignRequest
	for _, a := range pop.Agents {
		reqs = append(reqs, engine.DesignRequest{Agent: a, W: pop.Weights[a.ID]})
	}
	ctx := context.Background()
	got, err := d.DesignBatch(ctx, pop.Part, pop.Mu, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("DesignBatch returned %d contracts for %d requests", len(got), len(reqs))
	}
	// Archetypes repeat every 3 agents: same fingerprint, same pointer.
	for i := 3; i < len(got); i++ {
		if got[i] != got[i-3] {
			t.Errorf("request %d did not dedup against request %d", i, i-3)
		}
	}
	// A cold batch with k distinct fingerprints costs exactly k misses.
	if s := cache.Stats(); s.Misses != 3 || s.Entries != 3 {
		t.Fatalf("cold batch stats = %+v, want 3 misses / 3 entries", s)
	}

	// The batch result matches the per-agent reference design.
	for i, rq := range reqs {
		ref, err := core.Design(rq.Agent, core.Config{Part: pop.Part, Mu: pop.Mu, W: rq.W})
		if err != nil {
			t.Fatal(err)
		}
		if !got[i].Equal(ref.Contract) {
			t.Errorf("agent %s: batch contract differs from core.Design", rq.Agent.ID)
		}
	}

	// Warm batches — including concurrent ones — are all cache hits.
	misses := cache.Stats().Misses
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			_, err := d.DesignBatch(ctx, pop.Part, pop.Mu, reqs)
			done <- err
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if s := cache.Stats(); s.Misses != misses {
		t.Errorf("warm batches added misses: %d -> %d", misses, s.Misses)
	}
}

// TestDesignBatchForeignAgent checks that DesignBatch serves queries for
// agents outside any population — the serving layer's inline-spec path.
func TestDesignBatchForeignAgent(t *testing.T) {
	pop := archetypePopulation(t, 3)
	psi, err := effort.NewQuadratic(-0.03, 2.5, 0.5, pop.Part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	a, err := worker.NewMalicious("foreign", psi, 1.2, 0.4, pop.Part.YMax())
	if err != nil {
		t.Fatal(err)
	}
	d := &engine.Designer{}
	got, err := d.DesignBatch(context.Background(), pop.Part, pop.Mu, []engine.DesignRequest{{Agent: a, W: 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] == nil {
		t.Fatalf("DesignBatch = %v, want one non-nil contract", got)
	}
}
