package platform

import (
	"context"
	"fmt"
	"math"
	"testing"

	"dyncontract/internal/effort"
	"dyncontract/internal/worker"
)

// testPopulation builds nHonest honest workers, nMal non-collusive
// malicious workers, and one size-3 community, all with the standard psi.
func testPopulation(t *testing.T, nHonest, nMal int, withCommunity bool) *Population {
	t.Helper()
	psi, err := effort.NewQuadratic(-0.02, 2, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	part, err := effort.NewPartition(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	pop := &Population{
		Weights:    make(map[string]float64),
		MaliceProb: make(map[string]float64),
		Part:       part,
		Mu:         1,
	}
	for i := 0; i < nHonest; i++ {
		a, err := worker.NewHonest(fmt.Sprintf("h%02d", i), psi, 1, part.YMax())
		if err != nil {
			t.Fatal(err)
		}
		pop.Agents = append(pop.Agents, a)
		pop.Weights[a.ID] = 1
		pop.MaliceProb[a.ID] = 0.05
	}
	for i := 0; i < nMal; i++ {
		a, err := worker.NewMalicious(fmt.Sprintf("m%02d", i), psi, 1, 0.5, part.YMax())
		if err != nil {
			t.Fatal(err)
		}
		pop.Agents = append(pop.Agents, a)
		pop.Weights[a.ID] = 0.8 // biased but still useful
		pop.MaliceProb[a.ID] = 0.9
	}
	if withCommunity {
		a, err := worker.NewCommunity("comm0", psi, 1, 0.5, 3, part.YMax())
		if err != nil {
			t.Fatal(err)
		}
		pop.Agents = append(pop.Agents, a)
		pop.Weights[a.ID] = 0.5
		pop.MaliceProb[a.ID] = 0.95
	}
	return pop
}

func TestPopulationValidate(t *testing.T) {
	pop := testPopulation(t, 2, 1, true)
	if err := pop.Validate(); err != nil {
		t.Fatalf("valid population rejected: %v", err)
	}
	t.Run("empty", func(t *testing.T) {
		bad := &Population{Part: pop.Part, Mu: 1}
		if err := bad.Validate(); err == nil {
			t.Error("empty population accepted")
		}
	})
	t.Run("duplicate", func(t *testing.T) {
		bad := testPopulation(t, 1, 0, false)
		bad.Agents = append(bad.Agents, bad.Agents[0])
		if err := bad.Validate(); err == nil {
			t.Error("duplicate agent accepted")
		}
	})
	t.Run("missing weight", func(t *testing.T) {
		bad := testPopulation(t, 1, 0, false)
		delete(bad.Weights, bad.Agents[0].ID)
		if err := bad.Validate(); err == nil {
			t.Error("missing weight accepted")
		}
	})
	t.Run("bad mu", func(t *testing.T) {
		bad := testPopulation(t, 1, 0, false)
		bad.Mu = 0
		if err := bad.Validate(); err == nil {
			t.Error("mu=0 accepted")
		}
	})
}

func TestSimulateDynamicPolicy(t *testing.T) {
	pop := testPopulation(t, 3, 2, true)
	ledger, err := Simulate(context.Background(), pop, &DynamicPolicy{}, 4, Options{})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(ledger) != 4 {
		t.Fatalf("rounds = %d, want 4", len(ledger))
	}
	for _, r := range ledger {
		if len(r.Outcomes) != len(pop.Agents) {
			t.Errorf("round %d outcomes = %d, want %d", r.Index, len(r.Outcomes), len(pop.Agents))
		}
		if math.Abs(r.Utility-(r.Benefit-pop.Mu*r.Cost)) > 1e-9 {
			t.Errorf("round %d utility accounting broken", r.Index)
		}
		if r.Utility <= 0 {
			t.Errorf("round %d utility = %v, want positive for productive population", r.Index, r.Utility)
		}
		// Outcomes sorted by ID.
		for i := 1; i < len(r.Outcomes); i++ {
			if r.Outcomes[i-1].AgentID >= r.Outcomes[i].AgentID {
				t.Errorf("outcomes not sorted at %d", i)
			}
		}
		// Nobody excluded under the dynamic policy.
		for _, oc := range r.Outcomes {
			if oc.Excluded {
				t.Errorf("agent %s excluded by dynamic policy", oc.AgentID)
			}
		}
	}
	// Static population, deterministic policy: every round identical.
	if ledger[0].Utility != ledger[3].Utility {
		t.Error("static simulation drifted across rounds")
	}
}

func TestSimulateRejectsBadRounds(t *testing.T) {
	pop := testPopulation(t, 1, 0, false)
	if _, err := Simulate(context.Background(), pop, &DynamicPolicy{}, 0, Options{}); err == nil {
		t.Error("rounds=0 accepted")
	}
}

func TestSimulateContextCancellation(t *testing.T) {
	pop := testPopulation(t, 2, 0, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Simulate(ctx, pop, &DynamicPolicy{}, 3, Options{}); err == nil {
		t.Error("cancelled context accepted")
	}
}

func TestSimulateDriftChangesOutcome(t *testing.T) {
	pop := testPopulation(t, 2, 0, false)
	drift := func(round int, p *Population) {
		// The requester values feedback more over time.
		for id := range p.Weights {
			p.Weights[id] = 1 + 0.5*float64(round)
		}
	}
	ledger, err := Simulate(context.Background(), pop, &DynamicPolicy{}, 3, Options{Drift: drift})
	if err != nil {
		t.Fatal(err)
	}
	if !(ledger[2].Utility > ledger[0].Utility) {
		t.Errorf("utilities %v, %v: drift should raise utility", ledger[0].Utility, ledger[2].Utility)
	}
}

func TestSimulateDriftBreakingPopulationFails(t *testing.T) {
	pop := testPopulation(t, 1, 0, false)
	drift := func(round int, p *Population) {
		p.Mu = -1
	}
	if _, err := Simulate(context.Background(), pop, &DynamicPolicy{}, 2, Options{Drift: drift}); err == nil {
		t.Error("population-breaking drift accepted")
	}
}

func TestTotalUtility(t *testing.T) {
	tests := []struct {
		name   string
		ledger []Round
		want   float64
	}{
		{"nil ledger", nil, 0},
		{"empty ledger", []Round{}, 0},
		{"sum", []Round{{Utility: 2}, {Utility: 3.5}}, 5.5},
		{"negative rounds count", []Round{{Utility: 2}, {Utility: -5}}, -3},
		{"NaN round skipped", []Round{{Utility: 1}, {Utility: math.NaN()}, {Utility: 2}}, 3},
		{"Inf rounds skipped", []Round{{Utility: math.Inf(1)}, {Utility: math.Inf(-1)}, {Utility: 7}}, 7},
		{"all poisoned", []Round{{Utility: math.NaN()}, {Utility: math.Inf(1)}}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := TotalUtility(tc.ledger)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("TotalUtility = %v, must always be finite", got)
			}
			if got != tc.want {
				t.Errorf("TotalUtility = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestDynamicPolicyName(t *testing.T) {
	if (&DynamicPolicy{}).Name() != "dynamic-contract" {
		t.Error("unexpected policy name")
	}
}
