package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dyncontract/internal/telemetry"
)

// TestRunCacheStats pins satellite parity with cmd/platformsim: the
// -cachestats flag reports design-cache counters per experiment through
// the shared obs helper, in the exact same line format.
func TestRunCacheStats(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig8c", "-seed", "11", "-cachestats"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig8c:\n  design cache:") {
		t.Errorf("-cachestats output missing per-experiment cache line:\n%s", out)
	}
	if !strings.Contains(out, "misses (") {
		t.Errorf("cache line not in the shared format:\n%s", out)
	}
}

// TestRunMetricsJSONL checks the -metrics sink flushes one valid JSON
// object per experiment.
func TestRunMetricsJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.jsonl")
	var buf bytes.Buffer
	if err := run([]string{"-run", "fig8c,table2", "-seed", "11", "-metrics", path}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines++
		var rec telemetry.JSONLRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines, err, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != 2 {
		t.Fatalf("metrics file has %d lines, want 2 (one per experiment)", lines)
	}
}
